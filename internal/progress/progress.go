// Package progress defines the cross-engine progress callback: a single
// hook type every long-running engine (the operational explorer, the
// denotational fixpoint, the proof checker's batch mode, the assert
// sweep) reports through. The facade (pkg/csp) re-exports the types; the
// engines only ever call Emit, so a nil callback costs one branch.
package progress

import (
	"sync"
	"time"
)

// Event is one progress report. Fields are cumulative for the stage named
// unless noted; engines fill only the counters that apply to them.
type Event struct {
	// Stage identifies the reporting engine phase: "explore" (operational
	// BFS), "fixpoint" (denotational approximation chain), "prove" (proof
	// batch), "check" (assert sweep).
	Stage string
	// StatesExpanded counts transition-system states expanded so far
	// (explore stage).
	StatesExpanded int
	// Frontier is the size of the current BFS frontier (explore stage).
	Frontier int
	// Depth is the level or budget the stage just finished (explore:
	// BFS level; fixpoint: unused).
	Depth int
	// ChainIterations counts approximation-chain passes (fixpoint stage).
	ChainIterations int
	// ObligationsDischarged counts pure side conditions the validity
	// oracle accepted (prove stage).
	ObligationsDischarged int
	// Items / Total report batch progress (prove and check stages):
	// Items of Total units finished.
	Items, Total int
	// Elapsed is the wall time since the stage started.
	Elapsed time.Duration
	// Done marks the final event of the stage.
	Done bool
}

// Func observes progress events. Callbacks must be cheap and
// goroutine-safe: parallel engines invoke them from worker barriers, and
// a slow callback stalls the pipeline it is watching.
type Func func(Event)

// Emit invokes f if non-nil.
func (f Func) Emit(e Event) {
	if f != nil {
		f(e)
	}
}

// Tracker accumulates the latest Event per stage, so a host can attach
// one callback to a run and read back a consistent snapshot afterwards —
// cspserved surfaces these per-request snapshots in its JSON responses.
// The zero value is ready to use; all methods are goroutine-safe.
type Tracker struct {
	mu     sync.Mutex
	order  []string
	latest map[string]Event
}

// Func returns the callback to hand to an engine. The callback only takes
// the Tracker's lock and copies one Event, so it is cheap enough for
// worker barriers.
func (t *Tracker) Func() Func {
	return func(e Event) {
		t.mu.Lock()
		defer t.mu.Unlock()
		if t.latest == nil {
			t.latest = map[string]Event{}
		}
		if _, seen := t.latest[e.Stage]; !seen {
			t.order = append(t.order, e.Stage)
		}
		t.latest[e.Stage] = e
	}
}

// Snapshot returns the most recent event of every stage that reported, in
// first-report order. The slice is a copy; mutating it does not affect the
// Tracker.
func (t *Tracker) Snapshot() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.order))
	for _, stage := range t.order {
		out = append(out, t.latest[stage])
	}
	return out
}
