package value_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"cspsat/internal/value"
)

func TestConstructorsAndAccessors(t *testing.T) {
	if got := value.Int(42).AsInt(); got != 42 {
		t.Errorf("Int(42).AsInt() = %d", got)
	}
	if got := value.Sym("ACK").AsSym(); got != "ACK" {
		t.Errorf("Sym(ACK).AsSym() = %q", got)
	}
	if !value.Bool(true).AsBool() {
		t.Error("Bool(true).AsBool() = false")
	}
	s := value.Seq(value.Int(1), value.Int(2))
	if got := len(s.AsSeq()); got != 2 {
		t.Errorf("Seq len = %d", got)
	}
	var zero value.V
	if !zero.IsZero() {
		t.Error("zero value not IsZero")
	}
	if value.Int(0).IsZero() {
		t.Error("Int(0) wrongly IsZero")
	}
}

func TestAccessorPanicsOnWrongKind(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"AsInt on sym", func() { value.Sym("x").AsInt() }},
		{"AsSym on int", func() { value.Int(1).AsSym() }},
		{"AsBool on int", func() { value.Int(1).AsBool() }},
		{"AsSeq on int", func() { value.Int(1).AsSeq() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tc.f()
		})
	}
}

func TestSeqCopiesItsArguments(t *testing.T) {
	backing := []value.V{value.Int(1)}
	s := value.Seq(backing...)
	backing[0] = value.Int(99)
	if got := s.AsSeq()[0].AsInt(); got != 1 {
		t.Errorf("Seq aliased caller slice: got %d", got)
	}
}

func TestCompareTotalOrder(t *testing.T) {
	// Ordered sample covering all kinds and payload orderings.
	ordered := []value.V{
		value.Int(-3), value.Int(0), value.Int(7),
		value.Sym("ACK"), value.Sym("NACK"),
		value.Bool(false), value.Bool(true),
		value.Seq(), value.Seq(value.Int(1)), value.Seq(value.Int(1), value.Int(0)), value.Seq(value.Int(2)),
	}
	for i, a := range ordered {
		for j, b := range ordered {
			got := a.Compare(b)
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    value.V
		want string
	}{
		{value.Int(3), "3"},
		{value.Sym("ACK"), "ACK"},
		{value.Bool(true), "true"},
		{value.Seq(), "<>"},
		{value.Seq(value.Int(1), value.Sym("ACK")), "<1,ACK>"},
	}
	for _, tc := range cases {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("String(%#v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestKeyDisambiguatesKinds(t *testing.T) {
	// Sym("3") and Int(3) render identically but must key differently.
	if value.Sym("3").Key() == value.Int(3).Key() {
		t.Error("Key collision between Sym(3) and Int(3)")
	}
	if value.Seq(value.Int(1), value.Int(2)).Key() == value.Seq(value.Int(12)).Key() {
		t.Error("Key collision between <1,2> and <12>")
	}
}

// randomV generates a random value for property tests.
func randomV(r *rand.Rand, depth int) value.V {
	switch k := r.Intn(4); {
	case k == 0:
		return value.Int(int64(r.Intn(20) - 10))
	case k == 1:
		return value.Sym([]string{"ACK", "NACK", "GO"}[r.Intn(3)])
	case k == 2:
		return value.Bool(r.Intn(2) == 0)
	default:
		if depth <= 0 {
			return value.Int(int64(r.Intn(5)))
		}
		n := r.Intn(3)
		elems := make([]value.V, n)
		for i := range elems {
			elems[i] = randomV(r, depth-1)
		}
		return value.Seq(elems...)
	}
}

type qv struct{ V value.V }

// Generate implements quick.Generator.
func (qv) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(qv{V: randomV(r, 2)})
}

func TestCompareProperties(t *testing.T) {
	// Reflexivity & antisymmetry & Equal-consistency.
	if err := quick.Check(func(a, b qv) bool {
		ab, ba := a.V.Compare(b.V), b.V.Compare(a.V)
		if ab != -ba {
			return false
		}
		if (ab == 0) != a.V.Equal(b.V) {
			return false
		}
		return a.V.Compare(a.V) == 0
	}, nil); err != nil {
		t.Error(err)
	}
	// Transitivity.
	if err := quick.Check(func(a, b, c qv) bool {
		x, y, z := a.V, b.V, c.V
		if x.Compare(y) <= 0 && y.Compare(z) <= 0 {
			return x.Compare(z) <= 0
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
	// Key agrees with Equal.
	if err := quick.Check(func(a, b qv) bool {
		return (a.V.Key() == b.V.Key()) == a.V.Equal(b.V)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestIntRange(t *testing.T) {
	r := value.IntRange{Lo: 2, Hi: 5}
	if !r.Contains(value.Int(2)) || !r.Contains(value.Int(5)) {
		t.Error("range endpoints not contained")
	}
	if r.Contains(value.Int(1)) || r.Contains(value.Int(6)) || r.Contains(value.Sym("2")) {
		t.Error("range contains non-members")
	}
	got := r.Enumerate()
	if len(got) != 4 || got[0].AsInt() != 2 || got[3].AsInt() != 5 {
		t.Errorf("Enumerate = %v", got)
	}
	if !r.IsFinite() {
		t.Error("IntRange not finite")
	}
	empty := value.IntRange{Lo: 3, Hi: 2}
	if len(empty.Enumerate()) != 0 {
		t.Error("empty range enumerates elements")
	}
}

func TestEnumDedupAndSort(t *testing.T) {
	e := value.NewEnum(value.Sym("NACK"), value.Sym("ACK"), value.Sym("ACK"))
	got := e.Enumerate()
	if len(got) != 2 {
		t.Fatalf("Enumerate = %v, want 2 elements", got)
	}
	if got[0].AsSym() != "ACK" || got[1].AsSym() != "NACK" {
		t.Errorf("not sorted: %v", got)
	}
	if !e.Contains(value.Sym("NACK")) || e.Contains(value.Sym("GO")) {
		t.Error("membership wrong")
	}
	if e.String() != "{ACK,NACK}" {
		t.Errorf("String = %q", e.String())
	}
}

func TestNatSampling(t *testing.T) {
	n := value.Nat{}
	if got := len(n.Enumerate()); got != value.DefaultNatSample {
		t.Errorf("default sample = %d", got)
	}
	wide := value.Nat{SampleWidth: 7}
	if got := len(wide.Enumerate()); got != 7 {
		t.Errorf("sample = %d, want 7", got)
	}
	// Membership is unbounded regardless of the sample.
	if !n.Contains(value.Int(1 << 40)) {
		t.Error("NAT rejects a large natural")
	}
	if n.Contains(value.Int(-1)) {
		t.Error("NAT contains a negative")
	}
	if n.IsFinite() {
		t.Error("NAT claims to be finite")
	}
}

func TestUnionDomain(t *testing.T) {
	u := value.Union{
		A: value.IntRange{Lo: 0, Hi: 1},
		B: value.NewEnum(value.Sym("ACK"), value.Int(1)),
	}
	if !u.Contains(value.Int(0)) || !u.Contains(value.Sym("ACK")) {
		t.Error("union membership wrong")
	}
	got := u.Enumerate()
	if len(got) != 3 { // 0, 1 (deduped), ACK
		t.Errorf("Enumerate = %v, want 3 distinct", got)
	}
	if !u.IsFinite() {
		t.Error("finite union claims infinite")
	}
	inf := value.Union{A: value.Nat{}, B: value.IntRange{Lo: 0, Hi: 1}}
	if inf.IsFinite() {
		t.Error("union with NAT claims finite")
	}
}
