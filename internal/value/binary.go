package value

// Binary codec for values, shared by the artifact store codec and the
// frozen arena image (internal/closure/frozen). The encoding is canonical:
// equal values encode to identical bytes (Encode is deterministic and
// carries no framing choices), which lets consumers use the raw encoded
// bytes as an identity key. Layout per value:
//
//	kind    1 byte   (Kind)
//	int     varint
//	sym     uvarint length + bytes
//	bool    1 byte   (0 or 1)
//	seq     uvarint count + elements
//
// Decoding is pure and bounds-checked; sequence nesting is capped so a
// corrupt input cannot drive unbounded recursion.

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MaxBinaryDepth bounds value-sequence nesting on decode so corrupt bytes
// cannot drive unbounded recursion.
const MaxBinaryDepth = 64

// ErrBinary reports malformed value bytes: truncation, an unknown kind
// byte, an out-of-range length, or nesting beyond MaxBinaryDepth.
var ErrBinary = errors.New("value: malformed binary value")

// AppendBinary appends the canonical binary encoding of v to buf and
// returns the extended slice. It panics on the invalid zero V, like every
// other operation on it.
func AppendBinary(buf []byte, v V) []byte {
	buf = append(buf, byte(v.Kind()))
	switch v.Kind() {
	case KindInt:
		buf = binary.AppendVarint(buf, v.AsInt())
	case KindSym:
		s := v.AsSym()
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	case KindBool:
		if v.AsBool() {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	case KindSeq:
		elems := v.AsSeq()
		buf = binary.AppendUvarint(buf, uint64(len(elems)))
		for _, e := range elems {
			buf = AppendBinary(buf, e)
		}
	default:
		panic(fmt.Sprintf("value: cannot encode value kind %v", v.Kind()))
	}
	return buf
}

// DecodeBinary decodes one value from the front of data, returning the
// value and the number of bytes consumed. Errors wrap ErrBinary.
func DecodeBinary(data []byte) (V, int, error) {
	return decodeBinary(data, 0)
}

func binErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBinary, fmt.Sprintf(format, args...))
}

func decodeBinary(data []byte, depth int) (V, int, error) {
	if depth > MaxBinaryDepth {
		return V{}, 0, binErr("nesting deeper than %d", MaxBinaryDepth)
	}
	if len(data) == 0 {
		return V{}, 0, binErr("truncated kind byte")
	}
	k := Kind(data[0])
	pos := 1
	switch k {
	case KindInt:
		i, n := binary.Varint(data[pos:])
		if n <= 0 {
			return V{}, 0, binErr("truncated int")
		}
		return Int(i), pos + n, nil
	case KindSym:
		l, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return V{}, 0, binErr("truncated sym length")
		}
		pos += n
		if l > uint64(len(data)-pos) {
			return V{}, 0, binErr("sym length %d exceeds %d remaining bytes", l, len(data)-pos)
		}
		return Sym(string(data[pos : pos+int(l)])), pos + int(l), nil
	case KindBool:
		if pos >= len(data) {
			return V{}, 0, binErr("truncated bool")
		}
		b := data[pos]
		if b > 1 {
			return V{}, 0, binErr("bool byte %d", b)
		}
		return Bool(b == 1), pos + 1, nil
	case KindSeq:
		l, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return V{}, 0, binErr("truncated seq count")
		}
		pos += n
		if l > uint64(len(data)-pos) {
			return V{}, 0, binErr("seq count %d exceeds %d remaining bytes", l, len(data)-pos)
		}
		elems := make([]V, l)
		for i := range elems {
			v, n, err := decodeBinary(data[pos:], depth+1)
			if err != nil {
				return V{}, 0, err
			}
			elems[i] = v
			pos += n
		}
		return SeqOf(elems), pos, nil
	default:
		return V{}, 0, binErr("value kind byte %d", byte(k))
	}
}
