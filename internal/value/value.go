// Package value defines the message values that flow along CSP channels and
// the (possibly bounded) domains that input commands draw from.
//
// The paper's language is untyped: a message is "a value" and input commands
// name a set M of acceptable values (e.g. NAT, {0..3}, {ACK, NACK}). We model
// values as a small closed sum — integers, symbols, and booleans — which is
// everything the paper's examples use, and domains as finite enumerable sets.
// The paper's infinite NAT is represented by a *sampled* domain: membership is
// unbounded (any non-negative integer belongs) but enumeration is cut off at a
// configurable width so that the finite-branching engines (operational
// semantics, model checker, denotational approximation) stay finite. See
// DESIGN.md §3 for why this preserves the paper's partial-correctness claims.
package value

import (
	"fmt"
	"sort"
	"strings"
)

// Kind discriminates the closed sum of value shapes.
type Kind int

const (
	// KindInt is an integer message such as 3 or 27.
	KindInt Kind = iota + 1
	// KindSym is a symbolic message such as ACK or NACK.
	KindSym
	// KindBool is a boolean message (used by assertions, not the paper's examples).
	KindBool
	// KindSeq is a finite sequence of values. Sequences never travel on
	// channels in the paper's examples, but assertion evaluation needs them
	// as first-class values (channel histories are sequence-valued).
	KindSeq
)

func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindSym:
		return "sym"
	case KindBool:
		return "bool"
	case KindSeq:
		return "seq"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// V is a message value. The zero V is invalid; construct values with Int,
// Sym, Bool or Seq. V is comparable by Equal and totally ordered by Compare
// (ordering is by kind, then by payload) so that trace sets can be kept
// sorted and deduplicated deterministically.
type V struct {
	kind Kind
	i    int64
	s    string
	b    bool
	seq  []V
}

// Int returns an integer value.
func Int(i int64) V { return V{kind: KindInt, i: i} }

// Sym returns a symbolic value such as Sym("ACK").
func Sym(s string) V { return V{kind: KindSym, s: s} }

// Bool returns a boolean value.
func Bool(b bool) V { return V{kind: KindBool, b: b} }

// Seq returns a sequence value holding the given elements. The slice is
// copied so callers may reuse their backing array.
func Seq(elems ...V) V {
	cp := make([]V, len(elems))
	copy(cp, elems)
	return V{kind: KindSeq, seq: cp}
}

// SeqOf wraps an existing slice as a sequence value without copying.
// The caller must not mutate the slice afterwards.
func SeqOf(elems []V) V { return V{kind: KindSeq, seq: elems} }

// Kind reports the shape of the value.
func (v V) Kind() Kind { return v.kind }

// IsZero reports whether v is the invalid zero value.
func (v V) IsZero() bool { return v.kind == 0 }

// AsInt returns the integer payload; it panics if the value is not an int.
func (v V) AsInt() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("value: AsInt on %v", v))
	}
	return v.i
}

// AsSym returns the symbol payload; it panics if the value is not a symbol.
func (v V) AsSym() string {
	if v.kind != KindSym {
		panic(fmt.Sprintf("value: AsSym on %v", v))
	}
	return v.s
}

// AsBool returns the boolean payload; it panics if the value is not a bool.
func (v V) AsBool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("value: AsBool on %v", v))
	}
	return v.b
}

// AsSeq returns the sequence payload; it panics if the value is not a
// sequence. The returned slice must not be mutated.
func (v V) AsSeq() []V {
	if v.kind != KindSeq {
		panic(fmt.Sprintf("value: AsSeq on %v", v))
	}
	return v.seq
}

// Equal reports deep equality of two values.
func (v V) Equal(w V) bool { return v.Compare(w) == 0 }

// Compare totally orders values: first by kind, then by payload
// (lexicographically for sequences). It returns -1, 0, or +1.
func (v V) Compare(w V) int {
	if v.kind != w.kind {
		if v.kind < w.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindInt:
		switch {
		case v.i < w.i:
			return -1
		case v.i > w.i:
			return 1
		}
		return 0
	case KindSym:
		return strings.Compare(v.s, w.s)
	case KindBool:
		switch {
		case !v.b && w.b:
			return -1
		case v.b && !w.b:
			return 1
		}
		return 0
	case KindSeq:
		for i := 0; i < len(v.seq) && i < len(w.seq); i++ {
			if c := v.seq[i].Compare(w.seq[i]); c != 0 {
				return c
			}
		}
		switch {
		case len(v.seq) < len(w.seq):
			return -1
		case len(v.seq) > len(w.seq):
			return 1
		}
		return 0
	default:
		return 0
	}
}

// String renders the value in the paper's concrete syntax: integers and
// symbols bare, sequences in angle brackets.
func (v V) String() string {
	switch v.kind {
	case KindInt:
		return fmt.Sprintf("%d", v.i)
	case KindSym:
		return v.s
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	case KindSeq:
		parts := make([]string, len(v.seq))
		for i, e := range v.seq {
			parts[i] = e.String()
		}
		return "<" + strings.Join(parts, ",") + ">"
	default:
		return "<?invalid value?>"
	}
}

// Key returns a compact string usable as a map key. Unlike String it is
// unambiguous across kinds (e.g. Sym("3") vs Int(3)).
func (v V) Key() string {
	switch v.kind {
	case KindInt:
		return fmt.Sprintf("i%d", v.i)
	case KindSym:
		return "s" + v.s
	case KindBool:
		if v.b {
			return "bT"
		}
		return "bF"
	case KindSeq:
		var sb strings.Builder
		sb.WriteByte('q')
		for _, e := range v.seq {
			sb.WriteByte('[')
			sb.WriteString(e.Key())
			sb.WriteByte(']')
		}
		return sb.String()
	default:
		return "?"
	}
}

// Domain is a set of message values that an input command may accept.
// Domains support membership tests over their full (possibly infinite)
// extent and enumeration of a finite sample for the bounded engines.
type Domain interface {
	// Contains reports whether v belongs to the domain in its full,
	// mathematical extent (e.g. NAT contains every non-negative integer).
	Contains(v V) bool
	// Enumerate returns the finite sample of the domain used by
	// finite-branching engines, in a deterministic order.
	Enumerate() []V
	// IsFinite reports whether Enumerate covers the whole domain.
	IsFinite() bool
	// String renders the domain in the paper's notation, e.g. "NAT",
	// "{0..3}", "{ACK,NACK}".
	String() string
}

// IntRange is the finite integer domain {Lo..Hi} (inclusive).
type IntRange struct {
	Lo, Hi int64
}

// Contains implements Domain.
func (r IntRange) Contains(v V) bool {
	return v.kind == KindInt && v.i >= r.Lo && v.i <= r.Hi
}

// Enumerate implements Domain.
func (r IntRange) Enumerate() []V {
	if r.Hi < r.Lo {
		return nil
	}
	out := make([]V, 0, r.Hi-r.Lo+1)
	for i := r.Lo; i <= r.Hi; i++ {
		out = append(out, Int(i))
	}
	return out
}

// IsFinite implements Domain.
func (r IntRange) IsFinite() bool { return true }

func (r IntRange) String() string { return fmt.Sprintf("{%d..%d}", r.Lo, r.Hi) }

// Enum is a finite enumerated domain such as {ACK, NACK}.
type Enum struct {
	elems []V
}

// NewEnum builds an enumerated domain from the given values, deduplicated
// and sorted for deterministic enumeration.
func NewEnum(elems ...V) Enum {
	cp := make([]V, len(elems))
	copy(cp, elems)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Compare(cp[j]) < 0 })
	out := cp[:0]
	for i, e := range cp {
		if i == 0 || !e.Equal(cp[i-1]) {
			out = append(out, e)
		}
	}
	return Enum{elems: out}
}

// Contains implements Domain.
func (e Enum) Contains(v V) bool {
	for _, x := range e.elems {
		if x.Equal(v) {
			return true
		}
	}
	return false
}

// Enumerate implements Domain.
func (e Enum) Enumerate() []V {
	out := make([]V, len(e.elems))
	copy(out, e.elems)
	return out
}

// IsFinite implements Domain.
func (e Enum) IsFinite() bool { return true }

func (e Enum) String() string {
	parts := make([]string, len(e.elems))
	for i, x := range e.elems {
		parts[i] = x.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Nat is the paper's NAT: the infinite domain of natural numbers.
// Membership is genuinely unbounded; enumeration yields the sample
// {0..SampleWidth-1}. A zero SampleWidth enumerates the default width.
type Nat struct {
	// SampleWidth is how many naturals Enumerate yields. Zero means
	// DefaultNatSample.
	SampleWidth int
}

// DefaultNatSample is the enumeration width used by Nat when SampleWidth is
// zero. Small by design: partial-correctness assertions are value-uniform,
// so a narrow sample exercises the same control paths as the full domain
// while keeping state spaces tractable.
const DefaultNatSample = 3

// Contains implements Domain: every non-negative integer is a natural.
func (n Nat) Contains(v V) bool { return v.kind == KindInt && v.i >= 0 }

// Enumerate implements Domain, yielding the finite sample 0..width-1.
func (n Nat) Enumerate() []V {
	w := n.SampleWidth
	if w <= 0 {
		w = DefaultNatSample
	}
	out := make([]V, w)
	for i := 0; i < w; i++ {
		out[i] = Int(int64(i))
	}
	return out
}

// IsFinite implements Domain: NAT is infinite, its sample is not the whole set.
func (n Nat) IsFinite() bool { return false }

func (n Nat) String() string { return "NAT" }

// Union is the domain-theoretic union of two domains, needed for channels
// that carry messages from several sets (the protocol's wire carries
// M ∪ {ACK, NACK}).
type Union struct {
	A, B Domain
}

// Contains implements Domain.
func (u Union) Contains(v V) bool { return u.A.Contains(v) || u.B.Contains(v) }

// Enumerate implements Domain, concatenating the two samples with
// duplicates removed, preserving deterministic order.
func (u Union) Enumerate() []V {
	seen := map[string]bool{}
	var out []V
	for _, v := range append(u.A.Enumerate(), u.B.Enumerate()...) {
		k := v.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, v)
		}
	}
	return out
}

// IsFinite implements Domain.
func (u Union) IsFinite() bool { return u.A.IsFinite() && u.B.IsFinite() }

func (u Union) String() string { return u.A.String() + "∪" + u.B.String() }
