package auto_test

import (
	"testing"

	"cspsat/internal/auto"
	"cspsat/internal/paper"
)

// TestAutoJointAllProtocolGoals mirrors cspprove's first strategy: all
// assert goals as one simultaneous recursion.
func TestAutoJointAllProtocolGoals(t *testing.T) {
	prover, env := protocolProver()
	pr, err := auto.Recursive(env, []auto.Goal{
		{Name: paper.NameSender, A: paper.SenderSat()},
		{Name: paper.NameQ, A: paper.QSat()},
		{Name: paper.NameReceiver, A: paper.ReceiverSat()},
	})
	if err != nil {
		t.Fatalf("synthesis: %v", err)
	}
	if _, err := prover.Check(pr); err != nil {
		t.Fatalf("check: %v", err)
	}
}
