// Package auto synthesises proof objects for the §2.1 inference system
// automatically, for the common shapes of the paper's proofs:
//
//   - Recursive: given sat-claims for a set of (mutually) recursive
//     definitions, build the recursion-rule proof by structural descent
//     over the bodies — output and input rules along prefixes, the
//     alternative rule at choices, and hypothesis citations (bridged by the
//     consequence rule where the assertion needs transport) at recursive
//     tails. This mechanises exactly the strategy of the paper's §2.1(6)
//     example and Table 1.
//
//   - Network: given component proofs, glue them with the parallelism rule,
//     weaken with consequence, and push through hiding and definitional
//     naming — the shape of the paper's §2.2(3) six-step protocol proof.
//
// The synthesiser builds candidate proofs only; soundness rests entirely
// with internal/proof's checker, which re-validates every rule application
// and discharges the side conditions. If a claim is wrong, or outside the
// synthesiser's fragment, checking fails with a specific rule-level error.
package auto

import (
	"fmt"
	"reflect"
	"strconv"

	"cspsat/internal/assertion"
	"cspsat/internal/proof"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
)

// Goal states what to prove about one definition: the named process
// invariantly satisfies A. For a process array, A may mention the
// definition's parameter, and the synthesised claim quantifies it over the
// parameter's domain (the paper's ∀x∈M. q[x] sat S).
type Goal struct {
	Name string
	A    assertion.A
}

// maxUnfolds bounds definitional unfolding of goal-less references during
// synthesis, so a recursive tail without a goal is reported rather than
// chased forever.
const maxUnfolds = 32

// GoalError reports which goal's synthesis failed, so drivers (cspprove)
// can drop it from a joint attempt and retry with the rest.
type GoalError struct {
	Name string
	Err  error
}

func (e *GoalError) Error() string {
	return fmt.Sprintf("auto: synthesising %q: %v", e.Name, e.Err)
}

// Unwrap exposes the underlying cause.
func (e *GoalError) Unwrap() error { return e.Err }

// Recursive synthesises a recursion-rule proof establishing every goal
// simultaneously; the returned proof concludes goals[0]'s claim (the rest
// are established as part of the same rule application, as in Table 1).
func Recursive(env sem.Env, goals []Goal) (proof.Proof, error) {
	if len(goals) == 0 {
		return nil, fmt.Errorf("auto: no goals")
	}
	s := &synth{env: env, hyps: map[string]proof.Claim{}}
	defs := make([]proof.RecDef, len(goals))
	for i, g := range goals {
		def, ok := env.Module().Lookup(g.Name)
		if !ok {
			return nil, fmt.Errorf("auto: process %q not defined", g.Name)
		}
		claim := proof.Claim{A: g.A}
		if def.IsArray() {
			claim.Quants = []proof.Quant{{Var: def.Param, Dom: def.ParamDom}}
			claim.Proc = syntax.Ref{Name: g.Name, Sub: syntax.Var{Name: def.Param}}
		} else {
			claim.Proc = syntax.Ref{Name: g.Name}
		}
		s.hyps[g.Name] = claim
		defs[i] = proof.RecDef{Name: g.Name, Claim: claim}
	}
	for i, g := range goals {
		def, _ := env.Module().Lookup(g.Name)
		body := def.Body
		target := g.A
		var premise proof.Proof
		var err error
		if def.IsArray() {
			premise, err = s.prove(body, target, 0)
			if err == nil {
				premise = proof.ForAllIntro{Var: def.Param, Dom: def.ParamDom, Premise: premise}
			}
		} else {
			premise, err = s.prove(body, target, 0)
		}
		if err != nil {
			return nil, &GoalError{Name: g.Name, Err: err}
		}
		defs[i].Premise = premise
	}
	return proof.Recursion{Defs: defs, Main: 0}, nil
}

type synth struct {
	env   sem.Env
	hyps  map[string]proof.Claim
	fresh int
}

// freshVar returns a variable name free in both the process and the
// assertion.
func (s *synth) freshVar(p syntax.Proc, a assertion.A) string {
	pv := syntax.FreeVarsProc(p)
	av := assertion.FreeVars(a)
	for {
		v := "v" + strconv.Itoa(s.fresh)
		s.fresh++
		if !pv[v] && !av[v] {
			return v
		}
	}
}

// prove synthesises a proof that p sat target.
func (s *synth) prove(p syntax.Proc, target assertion.A, unfolds int) (proof.Proof, error) {
	switch t := p.(type) {
	case syntax.Stop:
		return proof.Emptiness{R: target}, nil

	case syntax.Output:
		ch, err := s.env.EvalChanRef(t.Ch)
		if err != nil {
			return nil, fmt.Errorf("output %s: %w", t.Ch, err)
		}
		eTerm, err := proof.ExprToTerm(t.Val)
		if err != nil {
			return nil, err
		}
		next, err := assertion.SubstChanCons(target, ch, eTerm)
		if err != nil {
			return nil, err
		}
		prem, err := s.prove(t.Cont, next, unfolds)
		if err != nil {
			return nil, err
		}
		return proof.OutputStep{Ch: t.Ch, Val: t.Val, R: target, Premise: prem}, nil

	case syntax.Input:
		ch, err := s.env.EvalChanRef(t.Ch)
		if err != nil {
			return nil, fmt.Errorf("input %s: %w", t.Ch, err)
		}
		v := s.freshVar(t.Cont, target)
		next, err := assertion.SubstChanCons(target, ch, assertion.Var(v))
		if err != nil {
			return nil, err
		}
		contInst := syntax.SubstProc(t.Cont, t.Var, syntax.Var{Name: v})
		prem, err := s.prove(contInst, next, unfolds)
		if err != nil {
			return nil, err
		}
		return proof.InputStep{
			Ch: t.Ch, Var: t.Var, Dom: t.Dom, Body: t.Cont,
			Fresh: v, R: target,
			Premise: proof.ForAllIntro{Var: v, Dom: t.Dom, Premise: prem},
		}, nil

	case syntax.Alt:
		l, err := s.prove(t.L, target, unfolds)
		if err != nil {
			return nil, err
		}
		r, err := s.prove(t.R, target, unfolds)
		if err != nil {
			return nil, err
		}
		return proof.Alternative{P1: l, P2: r}, nil

	case syntax.Ref:
		return s.proveRef(t, target, unfolds)

	case syntax.Par:
		return s.provePar(t, target, unfolds)

	case syntax.Hiding:
		prem, err := s.prove(t.Body, target, unfolds)
		if err != nil {
			return nil, err
		}
		return proof.ChanIntro{Channels: t.Channels, Premise: prem}, nil

	default:
		return nil, fmt.Errorf("auto: no synthesis rule for %T", p)
	}
}

// proveRef closes a branch at a process reference: by citing the hypothesis
// when the reference participates in the recursion (with a consequence
// bridge when the assertion differs), or by definitional unfolding
// otherwise.
func (s *synth) proveRef(r syntax.Ref, target assertion.A, unfolds int) (proof.Proof, error) {
	if hyp, ok := s.hyps[r.Name]; ok {
		var insts []assertion.Term
		if r.Sub != nil {
			term, err := proof.ExprToTerm(r.Sub)
			if err != nil {
				return nil, err
			}
			insts = []assertion.Term{term}
		}
		// The instantiated hypothesis assertion; bridge with consequence
		// when it is not literally the target.
		instA := hyp.A
		for i, q := range hyp.Quants {
			if i < len(insts) {
				instA = assertion.SubstVar(instA, q.Var, insts[i])
			}
		}
		cite := proof.Proof(proof.Hypothesis{Name: r.Name, Insts: insts})
		if reflect.DeepEqual(instA, target) {
			return cite, nil
		}
		return proof.Consequence{Premise: cite, To: target}, nil
	}
	if unfolds >= maxUnfolds {
		return nil, fmt.Errorf("auto: %s has no goal and unfolding exceeded %d levels; add a Goal for it", r, maxUnfolds)
	}
	body, err := s.env.Instantiate(r)
	if err != nil {
		return nil, err
	}
	prem, err := s.prove(body, target, unfolds+1)
	if err != nil {
		return nil, err
	}
	return proof.Unfold{Ref: r, Premise: prem}, nil
}

// provePar handles parallel composition when the target is a conjunction
// splitting across the two alphabets (R & S with chans(R) ⊆ X and
// chans(S) ⊆ Y), the only shape the parallelism rule proves directly.
func (s *synth) provePar(t syntax.Par, target assertion.A, unfolds int) (proof.Proof, error) {
	conj, ok := target.(assertion.And)
	if !ok {
		return nil, fmt.Errorf("auto: parallel composition needs a conjunction target (R & S); got %s — prove a conjunction and weaken with Network", target)
	}
	l, err := s.prove(t.L, conj.L, unfolds)
	if err != nil {
		return nil, err
	}
	r, err := s.prove(t.R, conj.R, unfolds)
	if err != nil {
		return nil, err
	}
	return proof.Parallelism{P1: l, P2: r, AlphaL: t.AlphaL, AlphaR: t.AlphaR}, nil
}

// Network glues component proofs into a claim about a named network
// definition: it walks the definition's body, placing the given component
// proofs at their references, applying the parallelism rule at
// compositions (concluding the conjunction of the component assertions),
// weakening to `final` with the consequence rule at the outermost point
// below any hiding, and finishing with chan and unfold — the exact shape of
// the paper's §2.2(3) proof.
func Network(env sem.Env, netName string, components map[string]proof.Proof, componentClaims map[string]assertion.A, final assertion.A) (proof.Proof, error) {
	def, ok := env.Module().Lookup(netName)
	if !ok {
		return nil, fmt.Errorf("auto: network %q not defined", netName)
	}
	if def.IsArray() {
		return nil, fmt.Errorf("auto: network %q must not be a process array", netName)
	}
	n := &netSynth{env: env, comps: components, claims: componentClaims}
	inner, innerA, err := n.glue(def.Body, 0)
	if err != nil {
		return nil, err
	}
	if !reflect.DeepEqual(innerA, final) {
		inner = proof.Consequence{Premise: inner, To: final}
	}
	// The deferred wrappers — hiding layers and the definitional unfolds
	// above them — apply outside the consequence weakening, innermost
	// first: the weakened assertion must avoid every hidden channel, and
	// each unfold must name the layer it actually unfolds.
	for _, wrap := range n.wrappers {
		inner = wrap(inner)
	}
	// Finally, conclude about the network's name rather than its body.
	return proof.Unfold{Ref: syntax.Ref{Name: netName}, Premise: inner}, nil
}

type netSynth struct {
	env    sem.Env
	comps  map[string]proof.Proof
	claims map[string]assertion.A
	// wrappers are deferred proof layers (ChanIntro and the Unfolds above
	// any hiding), recorded innermost-first during the walk.
	wrappers []func(proof.Proof) proof.Proof
}

// glue walks the network structure, returning the proof of the composed
// conjunction and the assertion it concludes. Layers above a hiding are
// deferred into n.wrappers so the final weakening can slot in beneath them.
func (n *netSynth) glue(p syntax.Proc, depth int) (proof.Proof, assertion.A, error) {
	switch t := p.(type) {
	case syntax.Ref:
		if pr, ok := n.comps[t.Name]; ok {
			a, ok := n.claims[t.Name]
			if !ok {
				return nil, nil, fmt.Errorf("auto: component %q has a proof but no recorded claim", t.Name)
			}
			return pr, a, nil
		}
		if depth >= maxUnfolds {
			return nil, nil, fmt.Errorf("auto: unfolding of %s exceeded %d levels", t, maxUnfolds)
		}
		body, err := n.env.Instantiate(t)
		if err != nil {
			return nil, nil, err
		}
		before := len(n.wrappers)
		inner, a, err := n.glue(body, depth+1)
		if err != nil {
			return nil, nil, err
		}
		if len(n.wrappers) > before {
			// A hiding below this reference was deferred; the unfold must
			// stay above it, so defer it too.
			n.wrappers = append(n.wrappers, func(pr proof.Proof) proof.Proof {
				return proof.Unfold{Ref: t, Premise: pr}
			})
			return inner, a, nil
		}
		return proof.Unfold{Ref: t, Premise: inner}, a, nil
	case syntax.Par:
		l, la, err := n.glue(t.L, depth)
		if err != nil {
			return nil, nil, err
		}
		r, ra, err := n.glue(t.R, depth)
		if err != nil {
			return nil, nil, err
		}
		return proof.Parallelism{P1: l, P2: r, AlphaL: t.AlphaL, AlphaR: t.AlphaR},
			assertion.And{L: la, R: ra}, nil
	case syntax.Hiding:
		inner, a, err := n.glue(t.Body, depth)
		if err != nil {
			return nil, nil, err
		}
		// Defer the ChanIntro: the consequence weakening must happen
		// before hiding, so the hidden channels disappear from the
		// assertion first.
		n.wrappers = append(n.wrappers, func(pr proof.Proof) proof.Proof {
			return proof.ChanIntro{Channels: t.Channels, Premise: pr}
		})
		return inner, a, nil
	default:
		return nil, nil, fmt.Errorf("auto: network glue cannot handle %T; give component proofs for it", p)
	}
}
