package auto_test

import (
	"strings"
	"testing"

	"cspsat/internal/assertion"
	"cspsat/internal/auto"
	"cspsat/internal/paper"
	"cspsat/internal/proof"
	"cspsat/internal/sem"
	"cspsat/internal/value"
)

func copierProver() *proof.Checker {
	env := sem.NewEnv(paper.CopySystem(), 2)
	c := proof.NewChecker(env, nil)
	c.Validity = assertion.ValidityConfig{MaxLen: 3}
	return c
}

func protocolProver() (*proof.Checker, sem.Env) {
	env := sem.NewEnv(paper.ProtocolSystem(2), 2)
	c := proof.NewChecker(env, nil)
	msgs := value.Domain(value.IntRange{Lo: 0, Hi: 1})
	c.Validity = assertion.ValidityConfig{
		MaxLen: 3,
		ChanDom: map[string]value.Domain{
			"wire":   value.Union{A: msgs, B: value.NewEnum(value.Sym("ACK"), value.Sym("NACK"))},
			"input":  msgs,
			"output": msgs,
		},
		DefaultDom: msgs,
	}
	return c, env
}

// TestAutoProvesCopier: the synthesiser reproduces the §2.1(6)+(10) proof
// without human guidance, and the checker accepts it.
func TestAutoProvesCopier(t *testing.T) {
	env := sem.NewEnv(paper.CopySystem(), 2)
	pr, err := auto.Recursive(env, []auto.Goal{{Name: paper.NameCopier, A: paper.CopierSat()}})
	if err != nil {
		t.Fatalf("synthesis: %v", err)
	}
	cl, err := copierProver().Check(pr)
	if err != nil {
		t.Fatalf("synthesised proof rejected: %v", err)
	}
	if cl.String() != "copier sat wire <= input" {
		t.Errorf("conclusion = %s", cl)
	}
}

func TestAutoProvesRecopierAndLengthInvariant(t *testing.T) {
	env := sem.NewEnv(paper.CopySystem(), 2)
	cases := []auto.Goal{
		{Name: paper.NameRecopier, A: paper.RecopierSat()},
		{Name: paper.NameCopier, A: paper.CopierLenSat()},
	}
	for _, g := range cases {
		pr, err := auto.Recursive(env, []auto.Goal{g})
		if err != nil {
			t.Fatalf("synthesis for %s: %v", g.Name, err)
		}
		if _, err := copierProver().Check(pr); err != nil {
			t.Errorf("synthesised proof for %q sat %s rejected: %v", g.Name, g.A, err)
		}
	}
}

// TestAutoProvesTable1 is the headline: the mutual-recursion proof of
// Table 1 — sender and the q array together — synthesised mechanically.
func TestAutoProvesTable1(t *testing.T) {
	prover, env := protocolProver()
	pr, err := auto.Recursive(env, []auto.Goal{
		{Name: paper.NameSender, A: paper.SenderSat()},
		{Name: paper.NameQ, A: paper.QSat()},
	})
	if err != nil {
		t.Fatalf("synthesis: %v", err)
	}
	cl, err := prover.Check(pr)
	if err != nil {
		t.Fatalf("synthesised Table 1 rejected: %v", err)
	}
	if cl.String() != "sender sat f(wire) <= input" {
		t.Errorf("conclusion = %s", cl)
	}
}

func TestAutoProvesReceiver(t *testing.T) {
	prover, env := protocolProver()
	pr, err := auto.Recursive(env, []auto.Goal{{Name: paper.NameReceiver, A: paper.ReceiverSat()}})
	if err != nil {
		t.Fatalf("synthesis: %v", err)
	}
	if _, err := prover.Check(pr); err != nil {
		t.Fatalf("synthesised receiver proof rejected: %v", err)
	}
}

// TestAutoProtocolNetwork assembles the full §2.2(3) proof from
// synthesised component proofs with the Network tactic.
func TestAutoProtocolNetwork(t *testing.T) {
	prover, env := protocolProver()
	senderPr, err := auto.Recursive(env, []auto.Goal{
		{Name: paper.NameSender, A: paper.SenderSat()},
		{Name: paper.NameQ, A: paper.QSat()},
	})
	if err != nil {
		t.Fatal(err)
	}
	receiverPr, err := auto.Recursive(env, []auto.Goal{{Name: paper.NameReceiver, A: paper.ReceiverSat()}})
	if err != nil {
		t.Fatal(err)
	}
	netPr, err := auto.Network(env, paper.NameProtocol,
		map[string]proof.Proof{
			paper.NameSender:   senderPr,
			paper.NameReceiver: receiverPr,
		},
		map[string]assertion.A{
			paper.NameSender:   paper.SenderSat(),
			paper.NameReceiver: paper.ReceiverSat(),
		},
		paper.ProtocolSat(),
	)
	if err != nil {
		t.Fatalf("network glue: %v", err)
	}
	cl, err := prover.Check(netPr)
	if err != nil {
		t.Fatalf("assembled protocol proof rejected: %v", err)
	}
	if cl.String() != "protocol sat output <= input" {
		t.Errorf("conclusion = %s", cl)
	}
}

// TestAutoCopyNetwork assembles the §2.1(8)/(9) proof likewise.
func TestAutoCopyNetwork(t *testing.T) {
	env := sem.NewEnv(paper.CopySystem(), 2)
	copierPr, err := auto.Recursive(env, []auto.Goal{{Name: paper.NameCopier, A: paper.CopierSat()}})
	if err != nil {
		t.Fatal(err)
	}
	recopierPr, err := auto.Recursive(env, []auto.Goal{{Name: paper.NameRecopier, A: paper.RecopierSat()}})
	if err != nil {
		t.Fatal(err)
	}
	netPr, err := auto.Network(env, paper.NameCopySys,
		map[string]proof.Proof{
			paper.NameCopier:   copierPr,
			paper.NameRecopier: recopierPr,
		},
		map[string]assertion.A{
			paper.NameCopier:   paper.CopierSat(),
			paper.NameRecopier: paper.RecopierSat(),
		},
		paper.CopyNetSat(),
	)
	if err != nil {
		t.Fatalf("network glue: %v", err)
	}
	cl, err := copierProver().Check(netPr)
	if err != nil {
		t.Fatalf("assembled copysys proof rejected: %v", err)
	}
	if cl.String() != "copysys sat output <= input" {
		t.Errorf("conclusion = %s", cl)
	}
}

// TestAutoRejectsFalseClaim: synthesis happily builds a candidate, but the
// checker must refuse it at the failing obligation.
func TestAutoRejectsFalseClaim(t *testing.T) {
	env := sem.NewEnv(paper.CopySystem(), 2)
	wrong := assertion.PrefixLE(assertion.Chan("input"), assertion.Chan("wire"))
	pr, err := auto.Recursive(env, []auto.Goal{{Name: paper.NameCopier, A: wrong}})
	if err != nil {
		t.Fatalf("synthesis should produce a candidate: %v", err)
	}
	if _, err := copierProver().Check(pr); err == nil {
		t.Fatal("false claim's synthesised proof was accepted")
	}
}

func TestAutoErrors(t *testing.T) {
	env := sem.NewEnv(paper.CopySystem(), 2)
	if _, err := auto.Recursive(env, nil); err == nil {
		t.Error("no goals accepted")
	}
	if _, err := auto.Recursive(env, []auto.Goal{{Name: "ghost", A: assertion.True()}}); err == nil {
		t.Error("undefined process accepted")
	}
	if _, err := auto.Network(env, "ghost", nil, nil, assertion.True()); err == nil {
		t.Error("undefined network accepted")
	}
	// Network over a component without a proof must say so.
	_, err := auto.Network(env, paper.NameCopySys, nil, nil, paper.CopyNetSat())
	if err == nil || !strings.Contains(err.Error(), "component") {
		// the glue walks down to copier/recopier refs and unfolds them;
		// eventually it hits Input which it cannot glue
		if err == nil {
			t.Error("network without components accepted")
		}
	}
}
