package failures

import (
	"fmt"
	"strings"

	"cspsat/internal/trace"
)

// CheckResult is the verdict of a behavioural check over a computed model:
// deadlock freedom or a refusal assertion. It is the failures-model
// analogue of check.Result — a pass is exhaustive up to the model's depth,
// a failure carries the witnessing trace and stable acceptance.
type CheckResult struct {
	// OK is true when no stable state violates the property.
	OK bool
	// Trace is where the violation occurs, when OK is false.
	Trace trace.T
	// Acceptance is the violating stable acceptance: what the process
	// offers at the bad state. Empty means a deadlock — the state refuses
	// everything.
	Acceptance Acceptance
	// Depth is the visible-trace bound the check is exhaustive up to.
	Depth int
}

func (r CheckResult) String() string {
	if r.OK {
		return fmt.Sprintf("holds on all stable states up to depth %d", r.Depth)
	}
	if len(r.Acceptance) == 0 {
		return fmt.Sprintf("DEADLOCK after %s (empty acceptance, depth %d)", r.Trace, r.Depth)
	}
	return fmt.Sprintf("VIOLATED after %s: stable state offers only %s (depth %d)",
		r.Trace, r.Acceptance, r.Depth)
}

// CheckDeadlockFree reports whether any reachable stable state refuses
// everything — the property the paper's §4 admits the trace model cannot
// express (STOP satisfies every satisfiable assertion). The returned
// counterexample is the shortest-by-exploration trace to an empty
// acceptance.
func (m *Model) CheckDeadlockFree() CheckResult {
	res := CheckResult{OK: true, Depth: m.depth}
	if t, bad := m.CanDeadlock(); bad {
		res.OK = false
		res.Trace = t
		res.Acceptance = Acceptance{}
	}
	return res
}

// CheckOffers checks the refusal assertion "the process can never refuse
// all of the named channels": after every trace, every stable state must
// offer at least one event on some channel of chans. With no channels it
// degenerates to deadlock freedom (some event must always be on offer).
// The counterexample is a stable acceptance disjoint from the channels —
// a state where the environment, listening only on chans, is refused.
func (m *Model) CheckOffers(chans []trace.Chan) CheckResult {
	res := CheckResult{OK: true, Depth: m.depth}
	if len(chans) == 0 {
		return m.CheckDeadlockFree()
	}
	want := map[trace.Chan]bool{}
	for _, c := range chans {
		want[c] = true
	}
	for _, k := range m.order {
		e := m.traces[k]
		for _, acc := range e.accs {
			offered := false
			for _, ev := range acc {
				if want[ev.Chan] {
					offered = true
					break
				}
			}
			if !offered {
				cp := make(trace.T, len(e.trace))
				copy(cp, e.trace)
				return CheckResult{OK: false, Trace: cp, Acceptance: acc, Depth: m.depth}
			}
		}
	}
	return res
}

// FormatChans renders a channel list the way assertions spell it.
func FormatChans(chans []trace.Chan) string {
	parts := make([]string, len(chans))
	for i, c := range chans {
		parts[i] = string(c)
	}
	return strings.Join(parts, ",")
}
