// Package failures implements the "more realistic model of non-determinism"
// that the paper's conclusion hopes for: the stable-failures model. A
// failure of P is a pair (s, X) — P can perform trace s, reach a *stable*
// state (one with no pending internal step), and then refuse every
// communication in X.
//
// The paper's §4 complaint is that its prefix-closure model identifies
// STOP | P with P. In this model the two come apart for *internal* choice:
// STOP |~| P has the failure (<>, Σ) — it may refuse everything — while P
// (for communicating P) does not. The trace-model identification of
// external choice remains, as it should: the paper's | merges offers.
//
// Failures are represented by acceptance families: for each trace, the set
// of initials-sets of the stable states reachable after it. (s, X) is a
// failure iff some acceptance after s is disjoint from X, so refinement
// has the classic characterisation: impl ⊑F spec iff traces(impl) ⊆
// traces(spec) and every impl acceptance after s contains some spec
// acceptance after s.
//
// Divergence (a τ-cycle) is outside the stable-failures story by
// construction: a diverging branch contributes no stable state and hence
// no failures, matching the classic model's treatment (divergence is a
// separate refinement order not implemented here).
package failures

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"cspsat/internal/op"
	"cspsat/internal/pool"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
	"cspsat/internal/trace"
)

// Acceptance is the set of communications a stable state offers, in
// canonical (sorted, deduplicated) order. The empty acceptance is a
// deadlocked stable state: it refuses everything.
type Acceptance []trace.Event

func (a Acceptance) key() string {
	parts := make([]string, len(a))
	for i, e := range a {
		parts[i] = e.String()
	}
	return strings.Join(parts, ",")
}

// idKey is the dedup identity of the acceptance: packed interned event
// ids. Equal acceptances (same sorted event list) have equal idKeys, and
// building one never re-renders events the way key does.
func (a Acceptance) idKey() string {
	b := make([]byte, 0, 4*len(a))
	for _, e := range a {
		id := e.ID()
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(b)
}

// String renders the acceptance as an event set.
func (a Acceptance) String() string { return "{" + a.key() + "}" }

// contains reports whether the acceptance offers the event.
func (a Acceptance) contains(e trace.Event) bool {
	for _, x := range a {
		if x.Chan == e.Chan && x.Msg.Equal(e.Msg) {
			return true
		}
	}
	return false
}

// subset reports a ⊆ b.
func (a Acceptance) subset(b Acceptance) bool {
	for _, e := range a {
		if !b.contains(e) {
			return false
		}
	}
	return true
}

// Model is the stable-failures semantics of one process up to a trace
// depth: its visible traces with, per trace, the acceptance family of the
// stable states reachable after it.
type Model struct {
	depth  int
	traces map[string]*entry
	order  []string
}

type entry struct {
	trace trace.T
	accs  []Acceptance
}

// Depth returns the trace-length bound the model is exhaustive up to.
func (m *Model) Depth() int { return m.depth }

// Compute explores the process and builds its stable-failures model to the
// given visible-trace depth.
func Compute(p syntax.Proc, env sem.Env, depth int) (*Model, error) {
	return ComputeContext(context.Background(), p, env, depth)
}

// ComputeContext is Compute under a context: cancellation is checked per
// explored trace and surfaces as an error wrapping csperr.ErrCanceled, the
// same discipline as every other engine.
func ComputeContext(ctx context.Context, p syntax.Proc, env sem.Env, depth int) (*Model, error) {
	m := &Model{depth: depth, traces: map[string]*entry{}}

	type node struct {
		states []op.State
		prefix trace.T
	}
	start, err := tauClosure(op.NewState(p, env))
	if err != nil {
		return nil, err
	}
	// Each queue entry's prefix is unique (children extend their parent's
	// unique prefix by distinct events), so no visited set is needed: the
	// exploration is a tree over traces, bounded by the depth cut-off.
	queue := []node{{states: start, prefix: nil}}
	for len(queue) > 0 {
		if err := pool.Canceled(ctx); err != nil {
			return nil, err
		}
		cur := queue[0]
		queue = queue[1:]
		ent := m.entryFor(cur.prefix)
		nextByEvent := map[string][]op.State{}
		var events []trace.Event
		for _, st := range cur.states {
			ts, err := op.Step(st)
			if err != nil {
				return nil, err
			}
			stable := true
			var acc Acceptance
			for _, tr := range ts {
				if tr.Tau {
					stable = false
					continue
				}
				if !acc.contains(tr.Ev) {
					acc = append(acc, tr.Ev)
				}
				k := tr.Ev.String()
				if _, seen := nextByEvent[k]; !seen {
					events = append(events, tr.Ev)
				}
				nextByEvent[k] = append(nextByEvent[k], tr.Next)
			}
			if stable {
				sort.Slice(acc, func(i, j int) bool { return acc[i].Compare(acc[j]) < 0 })
				ent.add(acc)
			}
		}
		if len(cur.prefix) >= depth {
			continue
		}
		for _, ev := range events {
			var closed []op.State
			for _, n := range nextByEvent[ev.String()] {
				cl, err := tauClosure(n)
				if err != nil {
					return nil, err
				}
				closed = append(closed, cl...)
			}
			closed = dedupe(closed)
			queue = append(queue, node{states: closed, prefix: cur.prefix.Append(ev)})
		}
	}
	return m, nil
}

func (m *Model) entryFor(t trace.T) *entry {
	k := t.IDKey()
	if e, ok := m.traces[k]; ok {
		return e
	}
	cp := make(trace.T, len(t))
	copy(cp, t)
	e := &entry{trace: cp}
	m.traces[k] = e
	m.order = append(m.order, k)
	return e
}

func (e *entry) add(a Acceptance) {
	k := a.idKey()
	for _, x := range e.accs {
		if x.idKey() == k {
			return
		}
	}
	e.accs = append(e.accs, a)
}

func tauClosure(s op.State) ([]op.State, error) {
	seen := map[string]bool{s.Key(): true}
	out := []op.State{s}
	work := []op.State{s}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		ts, err := op.Step(cur)
		if err != nil {
			return nil, err
		}
		for _, tr := range ts {
			if !tr.Tau {
				continue
			}
			k := tr.Next.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, tr.Next)
			work = append(work, tr.Next)
		}
	}
	return out, nil
}

func dedupe(ss []op.State) []op.State {
	seen := map[string]bool{}
	out := ss[:0]
	for _, s := range ss {
		k := s.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	return out
}

// Traces returns the model's traces in exploration order.
func (m *Model) Traces() []trace.T {
	out := make([]trace.T, 0, len(m.order))
	for _, k := range m.order {
		out = append(out, m.traces[k].trace)
	}
	return out
}

// Acceptances returns the acceptance family after the given trace; the
// second result is false if the trace is not a trace of the process.
func (m *Model) Acceptances(t trace.T) ([]Acceptance, bool) {
	e, ok := m.traces[t.IDKey()]
	if !ok {
		return nil, false
	}
	return e.accs, true
}

// Refuses reports whether (t, X) is a failure of the process: after t some
// stable state refuses every event of X.
func (m *Model) Refuses(t trace.T, xs []trace.Event) bool {
	e, ok := m.traces[t.IDKey()]
	if !ok {
		return false
	}
	for _, acc := range e.accs {
		disjoint := true
		for _, x := range xs {
			if acc.contains(x) {
				disjoint = false
				break
			}
		}
		if disjoint {
			return true
		}
	}
	return false
}

// CanDeadlock reports whether some trace leads to a stable state that
// refuses everything.
func (m *Model) CanDeadlock() (trace.T, bool) {
	for _, k := range m.order {
		e := m.traces[k]
		for _, acc := range e.accs {
			if len(acc) == 0 {
				return e.trace, true
			}
		}
	}
	return nil, false
}

// Counterexample describes why a failures refinement does not hold.
type Counterexample struct {
	// Trace is where the two processes come apart.
	Trace trace.T
	// ImplAcceptance, when non-nil, is an implementation acceptance with
	// no spec acceptance below it (the impl may refuse something the spec
	// cannot); when nil, the trace itself is not a spec trace.
	ImplAcceptance *Acceptance
}

func (c *Counterexample) String() string {
	if c.ImplAcceptance == nil {
		return fmt.Sprintf("impl performs %s which spec cannot", c.Trace)
	}
	return fmt.Sprintf("after %s impl may offer exactly %s, refusing more than spec allows",
		c.Trace, c.ImplAcceptance)
}

// Refines checks stable-failures refinement impl ⊑F spec on the two models
// (which must have been computed to the same depth): trace inclusion plus,
// per trace, every impl acceptance contains some spec acceptance.
func Refines(impl, spec *Model) (*Counterexample, error) {
	if impl.depth != spec.depth {
		return nil, fmt.Errorf("failures: models computed to different depths (%d vs %d)", impl.depth, spec.depth)
	}
	for _, k := range impl.order {
		ie := impl.traces[k]
		se, ok := spec.traces[k]
		if !ok {
			return &Counterexample{Trace: ie.trace}, nil
		}
		for _, ia := range ie.accs {
			ok := false
			for _, sa := range se.accs {
				if sa.subset(ia) {
					ok = true
					break
				}
			}
			if !ok {
				iaCopy := ia
				return &Counterexample{Trace: ie.trace, ImplAcceptance: &iaCopy}, nil
			}
		}
	}
	return nil, nil
}

// Equivalent checks failures equivalence: mutual refinement plus equal
// trace sets.
func Equivalent(a, b *Model) (*Counterexample, error) {
	if cex, err := Refines(a, b); cex != nil || err != nil {
		return cex, err
	}
	return Refines(b, a)
}

// String summarises the model, one line per trace, for display and tests.
func (m *Model) String() string {
	var sb strings.Builder
	for _, k := range m.order {
		e := m.traces[k]
		parts := make([]string, len(e.accs))
		for i, a := range e.accs {
			parts[i] = a.String()
		}
		sort.Strings(parts)
		fmt.Fprintf(&sb, "%s : %s\n", e.trace, strings.Join(parts, " "))
	}
	return sb.String()
}

// Divergence detection: a process diverges after trace s when a τ-cycle is
// reachable — it can engage in internal chatter forever without offering
// anything. The paper's introduction remarks that evading fairness "seems
// to be a merit"; divergence is precisely where that evasion shows: the
// protocol can retransmit NACK/resend forever, so it is correct only under
// a fairness assumption, which the stable-failures model records as a
// divergence (the failures/divergences model proper would refine this
// further).

// Diverges reports whether the process can diverge within the visible-trace
// depth, returning the shortest trace after which a τ-cycle is reachable.
func Diverges(p syntax.Proc, env sem.Env, depth int) (trace.T, bool, error) {
	type node struct {
		states []op.State
		prefix trace.T
	}
	start, err := tauClosure(op.NewState(p, env))
	if err != nil {
		return nil, false, err
	}
	queue := []node{{states: start, prefix: nil}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		cyclic, err := hasTauCycle(cur.states)
		if err != nil {
			return nil, false, err
		}
		if cyclic {
			return cur.prefix, true, nil
		}
		if len(cur.prefix) >= depth {
			continue
		}
		nextByEvent := map[string][]op.State{}
		var events []trace.Event
		for _, st := range cur.states {
			ts, err := op.Step(st)
			if err != nil {
				return nil, false, err
			}
			for _, tr := range ts {
				if tr.Tau {
					continue
				}
				k := tr.Ev.String()
				if _, seen := nextByEvent[k]; !seen {
					events = append(events, tr.Ev)
				}
				nextByEvent[k] = append(nextByEvent[k], tr.Next)
			}
		}
		for _, ev := range events {
			var closed []op.State
			for _, n := range nextByEvent[ev.String()] {
				cl, err := tauClosure(n)
				if err != nil {
					return nil, false, err
				}
				closed = append(closed, cl...)
			}
			queue = append(queue, node{states: dedupe(closed), prefix: cur.prefix.Append(ev)})
		}
	}
	return nil, false, nil
}

// hasTauCycle checks the τ-edge graph over the given (τ-closed) state set
// for a cycle, by DFS with colouring.
func hasTauCycle(states []op.State) (bool, error) {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := map[string]int{}
	var visit func(s op.State) (bool, error)
	visit = func(s op.State) (bool, error) {
		k := s.Key()
		switch colour[k] {
		case grey:
			return true, nil
		case black:
			return false, nil
		}
		colour[k] = grey
		ts, err := op.Step(s)
		if err != nil {
			return false, err
		}
		for _, tr := range ts {
			if !tr.Tau {
				continue
			}
			cyc, err := visit(tr.Next)
			if err != nil || cyc {
				return cyc, err
			}
		}
		colour[k] = black
		return false, nil
	}
	for _, s := range states {
		cyc, err := visit(s)
		if err != nil || cyc {
			return cyc, err
		}
	}
	return false, nil
}

// Nondeterminism is a witness that a process is not deterministic: after
// Trace, the event Ev is both possible (some continuation performs it) and
// refusable (some stable state refuses it).
type Nondeterminism struct {
	Trace trace.T
	Ev    trace.Event
}

func (n *Nondeterminism) String() string {
	return fmt.Sprintf("after %s the process may both accept and refuse %s", n.Trace, n.Ev)
}

// Deterministic reports whether the modelled process is deterministic in
// the classic failures sense: no event is simultaneously possible and
// refusable after the same trace. Deterministic processes are exactly
// those whose behaviour an environment can rely on; internal choice and
// races on hidden channels are the typical sources of nondeterminism.
func (m *Model) Deterministic() *Nondeterminism {
	for _, k := range m.order {
		e := m.traces[k]
		// Events possible after this trace: those whose extension is a
		// trace of the model (exploration is exhaustive to depth, so use
		// extensions present in the map; for the frontier depth the menu
		// is not recorded, so skip traces at the bound).
		if len(e.trace) >= m.depth {
			continue
		}
		for _, k2 := range m.order {
			e2 := m.traces[k2]
			if len(e2.trace) != len(e.trace)+1 || !e.trace.IsPrefixOf(e2.trace) {
				continue
			}
			ev := e2.trace[len(e.trace)]
			if m.Refuses(e.trace, []trace.Event{ev}) {
				cp := make(trace.T, len(e.trace))
				copy(cp, e.trace)
				return &Nondeterminism{Trace: cp, Ev: ev}
			}
		}
	}
	return nil
}
