package failures_test

import (
	"testing"

	"cspsat/internal/check"
	"cspsat/internal/failures"
	"cspsat/internal/paper"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
	"cspsat/internal/trace"
	"cspsat/internal/value"
)

func copierEnv() sem.Env { return sem.NewEnv(paper.CopySystem(), 2) }

func ev(c string, m int64) trace.Event {
	return trace.Event{Chan: trace.Chan(c), Msg: value.Int(m)}
}

// TestSection4DefectResolved is the headline: the trace model identifies
// STOP |~| copier with copier (the §4 defect, checkable), while the
// stable-failures model distinguishes them — exactly the "more realistic
// model of non-determinism" the conclusion hopes for.
func TestSection4DefectResolved(t *testing.T) {
	env := copierEnv()
	copier := syntax.Ref{Name: paper.NameCopier}
	ichoice := syntax.IChoice{L: syntax.Stop{}, R: copier}

	// Trace model: identical (the defect).
	ck := check.New(env, nil, 5)
	eq, err := ck.Equivalent(ichoice, copier)
	if err != nil {
		t.Fatal(err)
	}
	if !eq.OK {
		t.Fatalf("trace model should identify STOP |~| copier with copier: %s", eq)
	}

	// Failures model: distinguished.
	mi, err := failures.Compute(ichoice, env, 4)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := failures.Compute(copier, env, 4)
	if err != nil {
		t.Fatal(err)
	}
	cex, err := failures.Equivalent(mi, mc)
	if err != nil {
		t.Fatal(err)
	}
	if cex == nil {
		t.Fatal("failures model failed to distinguish STOP |~| copier from copier")
	}
	// Specifically: the internal choice may refuse everything initially...
	if !mi.Refuses(nil, []trace.Event{ev("input", 0), ev("input", 1)}) {
		t.Error("STOP |~| copier should be able to refuse all inputs")
	}
	// ...while the copier must accept some input.
	if mc.Refuses(nil, []trace.Event{ev("input", 0), ev("input", 1)}) {
		t.Error("copier must not refuse all inputs")
	}
	// And deadlock potential shows up only on the internal-choice side.
	if _, can := mi.CanDeadlock(); !can {
		t.Error("STOP |~| copier can deadlock (the STOP branch)")
	}
	if tr, can := mc.CanDeadlock(); can {
		t.Errorf("copier cannot deadlock, yet model says it can after %s", tr)
	}
}

// TestExternalChoiceStaysIdentified: the paper's own | merges offers, so
// STOP | P remains equal to P even in the failures model — the finer model
// changes exactly what should change and nothing else.
func TestExternalChoiceStaysIdentified(t *testing.T) {
	env := copierEnv()
	copier := syntax.Ref{Name: paper.NameCopier}
	alt := syntax.Alt{L: syntax.Stop{}, R: copier}
	ma, err := failures.Compute(alt, env, 4)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := failures.Compute(copier, env, 4)
	if err != nil {
		t.Fatal(err)
	}
	cex, err := failures.Equivalent(ma, mc)
	if err != nil {
		t.Fatal(err)
	}
	if cex != nil {
		t.Fatalf("STOP | copier should stay failures-equal to copier: %s", cex)
	}
}

func TestAcceptancesOfPrefixAndChoice(t *testing.T) {
	env := sem.NewEnv(syntax.NewModule(), 2)
	out := func(c string, v int64, k syntax.Proc) syntax.Proc {
		return syntax.Output{Ch: syntax.ChanRef{Name: c}, Val: syntax.IntLit{Val: v}, Cont: k}
	}
	// a!1 -> STOP | b!2 -> STOP : one stable state offering both.
	ext := syntax.Alt{L: out("a", 1, syntax.Stop{}), R: out("b", 2, syntax.Stop{})}
	m, err := failures.Compute(ext, env, 2)
	if err != nil {
		t.Fatal(err)
	}
	accs, ok := m.Acceptances(nil)
	if !ok || len(accs) != 1 || len(accs[0]) != 2 {
		t.Fatalf("external choice acceptances = %v", accs)
	}
	if m.Refuses(nil, []trace.Event{ev("a", 1)}) {
		t.Error("external choice refusing a while offering it")
	}
	if !m.Refuses(nil, []trace.Event{ev("c", 9)}) {
		t.Error("not-offered event should be refusable")
	}

	// a!1 -> STOP |~| b!2 -> STOP : two stable states, each offering one.
	internal := syntax.IChoice{L: out("a", 1, syntax.Stop{}), R: out("b", 2, syntax.Stop{})}
	mi, err := failures.Compute(internal, env, 2)
	if err != nil {
		t.Fatal(err)
	}
	accs, ok = mi.Acceptances(nil)
	if !ok || len(accs) != 2 {
		t.Fatalf("internal choice acceptances = %v", accs)
	}
	if !mi.Refuses(nil, []trace.Event{ev("a", 1)}) {
		t.Error("internal choice must be able to refuse a (by resolving right)")
	}
	if mi.Refuses(nil, []trace.Event{ev("a", 1), ev("b", 2)}) {
		t.Error("internal choice cannot refuse both branches")
	}
	// Failures refinement: the internal choice refines the external one's
	// traces but not its failures; the external refines neither direction?
	// Classic: ext ⊑F int fails (int refuses {a}); int ⊑F ext holds? ext's
	// acceptance {a,b} is not ⊆ of either singleton — wait, refinement
	// needs: every impl acceptance ⊇ some spec acceptance. impl=ext has
	// acceptance {a,b} ⊇ {a} (spec=int) ✓, so ext ⊑F int holds; and
	// impl=int has acceptance {a} which contains no spec acceptance of
	// ext ({a,b} ⊄ {a}), so int ⊑F ext fails.
	me := m
	if cex, err := failures.Refines(me, mi); err != nil || cex != nil {
		t.Errorf("ext ⊑F int should hold: %v %v", cex, err)
	}
	if cex, err := failures.Refines(mi, me); err != nil || cex == nil {
		t.Errorf("int ⊑F ext should fail: %v %v", cex, err)
	}
}

// TestDeadlockedStableStateRefusesEverything ties failures to FindDeadlocks.
func TestDeadlockedStableStateRefusesEverything(t *testing.T) {
	env := sem.NewEnv(syntax.NewModule(), 2)
	once := syntax.Output{Ch: syntax.ChanRef{Name: "out"}, Val: syntax.IntLit{Val: 7}, Cont: syntax.Stop{}}
	m, err := failures.Compute(once, env, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr, can := m.CanDeadlock()
	if !can {
		t.Fatal("out!7 -> STOP must reach a deadlocked stable state")
	}
	if tr.String() != "<out.7>" {
		t.Errorf("deadlock after %s, want <out.7>", tr)
	}
}

// TestProtocolFailuresSane: the hidden NACK loop makes some protocol states
// unstable, but the protocol still cannot refuse everything at the start.
func TestProtocolFailuresSane(t *testing.T) {
	env := sem.NewEnv(paper.ProtocolSystem(2), 2)
	m, err := failures.Compute(syntax.Ref{Name: paper.NameProtocol}, env, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Refuses(nil, []trace.Event{ev("input", 0), ev("input", 1)}) {
		t.Error("fresh protocol refusing all inputs")
	}
	if _, can := m.CanDeadlock(); can {
		t.Error("protocol deadlocks in the failures model")
	}
	// Refinement against a two-place buffer spec: after the receiver ACKs,
	// the sender may accept a second message before the first is output,
	// so the protocol behaves as a buffer of capacity two:
	//
	//	buf2      = input?x:M -> hold[x]
	//	hold[x:M] = output!x -> buf2 | input?y:M -> output!x -> hold[y]
	msgs := syntax.RangeSet{Lo: syntax.IntLit{Val: 0}, Hi: syntax.IntLit{Val: 1}}
	bufMod := syntax.NewModule()
	bufMod.MustDefine(syntax.Def{Name: "buf2", Body: syntax.Input{
		Ch: syntax.ChanRef{Name: "input"}, Var: "x", Dom: msgs,
		Cont: syntax.Ref{Name: "hold", Sub: syntax.Var{Name: "x"}},
	}})
	bufMod.MustDefine(syntax.Def{Name: "hold", Param: "x", ParamDom: msgs,
		Body: syntax.Alt{
			L: syntax.Output{Ch: syntax.ChanRef{Name: "output"}, Val: syntax.Var{Name: "x"},
				Cont: syntax.Ref{Name: "buf2"}},
			R: syntax.Input{Ch: syntax.ChanRef{Name: "input"}, Var: "y", Dom: msgs,
				Cont: syntax.Output{Ch: syntax.ChanRef{Name: "output"}, Val: syntax.Var{Name: "x"},
					Cont: syntax.Ref{Name: "hold", Sub: syntax.Var{Name: "y"}}}},
		}})
	bufEnv := sem.NewEnv(bufMod, 2)
	spec, err := failures.Compute(syntax.Ref{Name: "buf2"}, bufEnv, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The protocol is failures-EQUIVALENT to the two-place buffer: every
	// retransmission state is unstable (the hidden wire sync is always
	// pending), so the stable states on both sides match exactly. The
	// unreliable wire vanishes without residue — the protocol-correctness
	// statement the paper's partial-correctness framework cannot even
	// express.
	cex, err := failures.Equivalent(m, spec)
	if err != nil {
		t.Fatal(err)
	}
	if cex != nil {
		t.Errorf("protocol should be failures-equivalent to the two-place buffer: %s", cex)
	}
}

// TestModelDepthMismatchRejected guards the API misuse.
func TestModelDepthMismatchRejected(t *testing.T) {
	env := copierEnv()
	a, _ := failures.Compute(syntax.Stop{}, env, 2)
	b, _ := failures.Compute(syntax.Stop{}, env, 3)
	if _, err := failures.Refines(a, b); err == nil {
		t.Fatal("depth mismatch accepted")
	}
}

// TestDivergence: the protocol can livelock — receiver NACKs forever, all
// hidden — which is exactly the fairness evasion the paper's introduction
// mentions. The buffer it is failures-equivalent to cannot. Divergence is
// the observable difference between them.
func TestDivergence(t *testing.T) {
	env := sem.NewEnv(paper.ProtocolSystem(2), 2)
	tr, div, err := failures.Diverges(syntax.Ref{Name: paper.NameProtocol}, env, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !div {
		t.Fatal("the protocol can retransmit forever; divergence not found")
	}
	if len(tr) != 1 || tr[0].Chan != "input" {
		t.Errorf("shortest divergence should follow one input, got %s", tr)
	}

	// The copier system never diverges: each hidden wire event is preceded
	// by a fresh input.
	cenv := copierEnv()
	_, div, err = failures.Diverges(syntax.Ref{Name: paper.NameCopySys}, cenv, 4)
	if err != nil {
		t.Fatal(err)
	}
	if div {
		t.Error("copysys wrongly flagged divergent")
	}

	// Pure hidden loop diverges immediately.
	m := syntax.NewModule()
	m.MustDefine(syntax.Def{Name: "spin", Body: syntax.Output{
		Ch: syntax.ChanRef{Name: "c"}, Val: syntax.IntLit{Val: 0}, Cont: syntax.Ref{Name: "spin"}}})
	m.MustDefine(syntax.Def{Name: "hidden", Body: syntax.Hiding{
		Channels: []syntax.ChanItem{{Name: "c"}}, Body: syntax.Ref{Name: "spin"}}})
	henv := sem.NewEnv(m, 2)
	tr, div, err = failures.Diverges(syntax.Ref{Name: "hidden"}, henv, 2)
	if err != nil || !div || len(tr) != 0 {
		t.Errorf("hidden spin: div=%v tr=%s err=%v", div, tr, err)
	}

	// Internal choice alone introduces τ-steps but no cycle.
	ic := syntax.IChoice{L: syntax.Stop{}, R: syntax.Stop{}}
	_, div, err = failures.Diverges(ic, henv, 2)
	if err != nil || div {
		t.Errorf("τ-split flagged divergent: %v %v", div, err)
	}
}

func TestDeterministic(t *testing.T) {
	env := copierEnv()
	mc, err := failures.Compute(syntax.Ref{Name: paper.NameCopier}, env, 4)
	if err != nil {
		t.Fatal(err)
	}
	if w := mc.Deterministic(); w != nil {
		t.Errorf("copier flagged nondeterministic: %s", w)
	}
	ms, err := failures.Compute(syntax.Ref{Name: paper.NameCopySys}, env, 4)
	if err != nil {
		t.Fatal(err)
	}
	if w := ms.Deterministic(); w != nil {
		t.Errorf("copysys flagged nondeterministic: %s", w)
	}
	// Internal choice is the canonical source of nondeterminism.
	out := func(c string, v int64) syntax.Proc {
		return syntax.Output{Ch: syntax.ChanRef{Name: c}, Val: syntax.IntLit{Val: v}, Cont: syntax.Stop{}}
	}
	mi, err := failures.Compute(syntax.IChoice{L: out("a", 1), R: out("b", 2)},
		sem.NewEnv(syntax.NewModule(), 2), 3)
	if err != nil {
		t.Fatal(err)
	}
	w := mi.Deterministic()
	if w == nil {
		t.Fatal("internal choice not flagged nondeterministic")
	}
	if len(w.Trace) != 0 {
		t.Errorf("witness should be at the start: %s", w)
	}
	// The protocol, despite its hidden races, resolves to deterministic
	// visible behaviour (it equals a buffer).
	penv := sem.NewEnv(paper.ProtocolSystem(2), 2)
	mp, err := failures.Compute(syntax.Ref{Name: paper.NameProtocol}, penv, 4)
	if err != nil {
		t.Fatal(err)
	}
	if w := mp.Deterministic(); w != nil {
		t.Errorf("protocol flagged nondeterministic: %s", w)
	}
}
