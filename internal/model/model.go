// Package model names the semantic models a verification request can run
// under — the pluggable axis the paper's §4 conclusion asks for. The
// paper's own semantics is the prefix-closed trace model; it deliberately
// identifies STOP | P with P, so deadlock and refusal properties are
// invisible to it. The stable-failures model (internal/failures) is the
// first richer model behind the same API; divergences and availability
// (Lowe) slot in as further constants without another API break.
//
// The package sits at the bottom of the import graph on purpose: the
// parser (assert declarations carry a model), the checkers, the facade,
// and the wire layer all need the selector, and none of them may import
// each other for it.
package model

import "fmt"

// Model selects the semantic model a verification runs under.
type Model int

const (
	// Traces is the paper's prefix-closed trace model: the zero value, so
	// every existing call site and wire message that says nothing keeps
	// its meaning.
	Traces Model = iota
	// Failures is the stable-failures model: traces plus, per trace, the
	// acceptance family of reachable stable states. Deadlock (the empty
	// acceptance) and refusal properties become observable; refinement
	// additionally requires every impl acceptance to cover a spec one.
	Failures
)

// String names the model the way flags and wire messages spell it.
func (m Model) String() string {
	switch m {
	case Traces:
		return "traces"
	case Failures:
		return "failures"
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// Parse maps a flag or wire spelling to a Model. The empty string is the
// trace model, keeping every pre-model message valid.
func Parse(name string) (Model, error) {
	switch name {
	case "", "traces":
		return Traces, nil
	case "failures":
		return Failures, nil
	}
	return 0, fmt.Errorf("unknown semantic model %q (want traces or failures)", name)
}

// Known lists the models in order, for usage strings and docs.
func Known() []Model { return []Model{Traces, Failures} }
