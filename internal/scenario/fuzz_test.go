package scenario

import (
	"strings"
	"testing"
)

// FuzzScenarioParse pins the decoder's safety contract: arbitrary input
// either parses into scenarios or returns an error — never a panic. The
// parse path touches no global state (in particular no intern tables —
// scenario decoding happens strictly before any CSP compilation), so the
// only properties to check are no-panic and error-or-value.
func FuzzScenarioParse(f *testing.F) {
	f.Add([]byte(sampleFile))
	f.Add([]byte("- name: x\n  kind: check\n  source: |\n    p = STOP\n"))
	f.Add([]byte("key: [1, 'two', \"three\"]\n"))
	f.Add([]byte("a: &anchor 1\n"))
	f.Add([]byte("\t\n"))
	f.Add([]byte("- -\n- - -\n"))
	f.Add([]byte(deepDoc(100)))
	f.Add([]byte("a: \"unterminated\\"))
	f.Add([]byte("---\n---\n"))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		scenarios, err := Parse(data)
		if err != nil {
			if len(scenarios) != 0 {
				t.Fatalf("error %v alongside %d scenarios", err, len(scenarios))
			}
			return
		}
		// A successful parse yields validated scenarios: names unique and
		// non-empty, kinds known.
		seen := map[string]bool{}
		for _, s := range scenarios {
			if s.Name == "" || !validKinds[s.Kind] || seen[s.Name] {
				t.Fatalf("invalid scenario escaped validation: %+v", s)
			}
			seen[s.Name] = true
		}
		// Reparsing the same bytes is deterministic.
		again, err := Parse(data)
		if err != nil || len(again) != len(scenarios) {
			t.Fatalf("reparse diverged: %d scenarios then %d, err=%v", len(scenarios), len(again), err)
		}
	})
}

// FuzzYAMLSubset drives the low-level parser alone, where inputs that
// could never validate as scenarios still must not panic.
func FuzzYAMLSubset(f *testing.F) {
	f.Add("a:\n  b: [1, 2]\n  c: |\n    text\n")
	f.Add("- 'quote''d'\n- \"esc\\n\"\n")
	f.Add(strings.Repeat("- ", 40) + "x")
	f.Fuzz(func(t *testing.T, doc string) {
		v, err := ParseYAML([]byte(doc))
		if err != nil && v != nil {
			t.Fatalf("error %v alongside value %v", err, v)
		}
	})
}
