// Executing scenarios through pkg/csp and checking the outcomes: the
// cross-engine agreement rule, the refinement hierarchy rule, the
// runtime subset probe, and the scenario's own expectations.
package scenario

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"cspsat/internal/assertion"
	"cspsat/internal/trace"
	"cspsat/internal/value"
	"cspsat/pkg/csp"
)

// Defaults mirroring the CLI and server conventions.
const (
	DefaultNat    = 3
	DefaultMaxLen = 3
	// listLimit caps how many traces a golden artifact lists. Full-set
	// agreement is checked in-process on the hash-consed sets; the listing
	// is the human-readable (and diffable) sample.
	listLimit = 64
)

// HarnessSchema versions the artifact JSON layout itself, alongside the
// wire schema of the embedded pkg/csp encodings.
const HarnessSchema = 1

// Artifact is the deterministic record of one scenario run — the unit
// the golden files commit. Volatile measurements (timings, progress,
// runtime walk contents) never appear here.
type Artifact struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// SpecHash identifies the module source + options (csp.SourceHash).
	SpecHash string `json:"spec_hash,omitempty"`
	// OK is the scenario-level verdict: traces computed and engines
	// agreeing, all asserts holding, the refinement holding, all proofs
	// found. Error carries the failure when the run itself failed.
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Engines maps engine name to its trace listing (traces scenarios;
	// op and denote only — a runtime walk is sampled, not enumerated).
	Engines map[string]*csp.TraceSetJSON `json:"engines,omitempty"`
	// EnginesAgree reports that every listed deterministic engine
	// produced the identical hash-consed set (pointer-canonical Same).
	EnginesAgree *bool `json:"engines_agree,omitempty"`
	// RuntimeSubset reports the sampled walk's prefix closure was a
	// subset of the op engine's set (traces scenarios listing "runtime").
	RuntimeSubset *bool `json:"runtime_subset,omitempty"`
	// Deadlock reports a reachable stuck configuration (probed when the
	// scenario expects a verdict about it).
	Deadlock *bool `json:"deadlock,omitempty"`
	// Asserts, Refine, Proofs carry the kind-specific wire results.
	Asserts []csp.AssertResultJSON `json:"asserts,omitempty"`
	Refine  *csp.RefineResultJSON  `json:"refine,omitempty"`
	Proofs  []csp.ProveResultJSON  `json:"proofs,omitempty"`
	// Hierarchy cross-checks a failures-model refinement against the
	// trace model (⊑F must imply ⊑T).
	Hierarchy *HierarchyJSON `json:"hierarchy,omitempty"`
}

// HierarchyJSON is the refinement-hierarchy cross-check on one pair.
type HierarchyJSON struct {
	FailuresOK bool `json:"failures_ok"`
	TracesOK   bool `json:"traces_ok"`
	// Consistent is the van-Glabbeek ordering: failures refinement must
	// imply trace refinement.
	Consistent bool `json:"consistent"`
}

// Outcome pairs the artifact with the harness's own complaints: failed
// expectations, engine disagreements, hierarchy violations. An Outcome
// with problems still carries a complete artifact for diffing.
type Outcome struct {
	Artifact Artifact
	Problems []string

	// firstSet is the first deterministic engine's full result, kept for
	// exact membership checks against truncated listings.
	firstSet *csp.TraceResult
}

// Run executes one scenario. The returned error is reserved for harness
// infrastructure failures (an unreadable spec file, cancellation);
// verification failures land in the artifact and problems.
func Run(ctx context.Context, s *Scenario) (*Outcome, error) {
	out := &Outcome{Artifact: Artifact{Name: s.Name, Kind: s.Kind}}
	src, err := s.SourceText()
	if err != nil {
		return nil, err
	}
	opts := csp.Options{NatWidth: s.Nat}
	if opts.NatWidth <= 0 {
		opts.NatWidth = DefaultNat
	}
	out.Artifact.SpecHash = csp.SourceHash(src, opts)
	mod, err := csp.Load(ctx, src, opts)
	if err != nil {
		if ctx.Err() != nil {
			return nil, err
		}
		out.Artifact.Error = err.Error()
		out.checkExpect(s, nil)
		return out, nil
	}
	depth := s.Depth
	if depth <= 0 {
		depth = csp.DefaultDepth
	}

	switch s.Kind {
	case KindTraces:
		err = out.runTraces(ctx, s, mod, depth)
	case KindCheck:
		err = out.runCheck(ctx, s, mod, depth)
	case KindRefine:
		err = out.runRefine(ctx, s, mod, depth)
	case KindProve:
		err = out.runProve(ctx, s, mod, opts.NatWidth)
	}
	if err != nil {
		if ctx.Err() != nil {
			return nil, err
		}
		out.Artifact.Error = err.Error()
		out.Artifact.OK = false
	}
	out.checkExpect(s, mod)
	return out, nil
}

// runTraces computes the set on every listed engine, demands the
// deterministic engines agree on the identical canonical set, and runs
// the runtime sampler as a subset probe.
func (o *Outcome) runTraces(ctx context.Context, s *Scenario, mod *csp.Module, depth int) error {
	p, err := mod.Proc(s.Process)
	if err != nil {
		return err
	}
	o.Artifact.Engines = map[string]*csp.TraceSetJSON{}
	var results []*csp.TraceResult
	var runtimeWanted bool
	for _, name := range s.EngineList() {
		if name == "runtime" {
			runtimeWanted = true
			continue
		}
		engine, err := csp.ParseEngine(name)
		if err != nil {
			return err
		}
		res, err := mod.Traces(ctx, p, csp.EngineOptions{Engine: engine, Depth: depth})
		if err != nil {
			return fmt.Errorf("%s engine: %w", name, err)
		}
		set := csp.EncodeTraceSet(res, false, listLimit)
		o.Artifact.Engines[name] = &set
		results = append(results, res)
	}
	if len(results) > 0 {
		o.firstSet = results[0]
	}
	agree := true
	for i := 1; i < len(results); i++ {
		// Same compares the full hash-consed sets, not the capped
		// listings: pointer equality is structural equality.
		if !results[i].TraceSet().Same(results[0].TraceSet()) {
			agree = false
			o.problemf("engines %s and %s disagree on the full trace set",
				results[0].Engine, results[i].Engine)
		}
	}
	o.Artifact.EnginesAgree = &agree
	o.Artifact.OK = agree

	if runtimeWanted {
		res, err := mod.Traces(ctx, p, csp.EngineOptions{
			Engine: csp.EngineRuntime, Depth: depth,
			Seed: s.Seed, MaxEvents: s.MaxEvents,
		})
		if err != nil {
			return fmt.Errorf("runtime engine: %w", err)
		}
		// The walk itself is scheduler-dependent; the deterministic claim
		// is soundness — everything sampled is a real trace of the process.
		// The walk can outrun the enumerated depth (MaxEvents bounds it,
		// not Depth), so compare each maximal sampled trace truncated to
		// the enumeration bound; prefix closure covers the rest.
		opView := results[0].View()
		subset := true
		for _, tr := range res.View().TracesMax() {
			if len(tr) > depth {
				tr = tr[:depth]
			}
			if !opView.Contains(tr) {
				subset = false
			}
		}
		o.Artifact.RuntimeSubset = &subset
		if !subset {
			o.Artifact.OK = false
			o.problemf("runtime walk left the op trace set (engine soundness violation)")
		}
	}

	if s.Expect.Deadlock != nil {
		dls, err := mod.Deadlocks(ctx, p, csp.CheckOptions{Depth: depth})
		if err != nil {
			return err
		}
		dead := len(dls) > 0
		o.Artifact.Deadlock = &dead
	}
	return nil
}

func (o *Outcome) runCheck(ctx context.Context, s *Scenario, mod *csp.Module, depth int) error {
	mdl, err := csp.ParseModel(s.Model)
	if err != nil {
		return err
	}
	results, err := mod.CheckAll(ctx, csp.CheckOptions{Model: mdl, Depth: depth})
	if err != nil {
		return err
	}
	o.Artifact.Asserts = csp.EncodeAssertResults(results)
	o.Artifact.OK = true
	for _, r := range o.Artifact.Asserts {
		if !r.OK {
			o.Artifact.OK = false
		}
	}
	return nil
}

func (o *Outcome) runRefine(ctx context.Context, s *Scenario, mod *csp.Module, depth int) error {
	mdl, err := csp.ParseModel(s.Model)
	if err != nil {
		return err
	}
	impl, err := mod.Proc(s.Impl)
	if err != nil {
		return err
	}
	spec, err := mod.Proc(s.Spec)
	if err != nil {
		return err
	}
	r, err := mod.Refine(ctx, impl, spec, csp.CheckOptions{Model: mdl, Depth: depth})
	if err != nil {
		return err
	}
	enc := csp.EncodeRefineResult(r.RefineResult)
	o.Artifact.Refine = &enc
	o.Artifact.OK = enc.OK
	if mdl == csp.ModelFailures {
		// The hierarchy rule: ⊑F implies ⊑T. Compute the trace-model
		// verdict on the same pair and record the cross-check.
		tr, err := mod.Refine(ctx, impl, spec, csp.CheckOptions{Model: csp.ModelTraces, Depth: depth})
		if err != nil {
			return err
		}
		h := HierarchyJSON{
			FailuresOK: enc.OK,
			TracesOK:   tr.OK,
			Consistent: !enc.OK || tr.OK,
		}
		o.Artifact.Hierarchy = &h
		if !h.Consistent {
			o.problemf("hierarchy violated: %s ⊑F %s holds but ⊑T fails", s.Impl, s.Spec)
		}
	}
	return nil
}

func (o *Outcome) runProve(ctx context.Context, s *Scenario, mod *csp.Module, nat int) error {
	maxLen := s.MaxLen
	if maxLen <= 0 {
		maxLen = DefaultMaxLen
	}
	results, err := mod.ProveAsserts(ctx, csp.CheckOptions{
		Validity: &assertion.ValidityConfig{
			MaxLen: maxLen,
			// The same default domain the CLI and server use for
			// quantified obligations.
			DefaultDom: value.Union{
				A: value.Nat{SampleWidth: nat},
				B: value.NewEnum(value.Sym("ACK"), value.Sym("NACK")),
			},
		},
	}, nil)
	o.Artifact.Proofs = csp.EncodeProveResults(results)
	if err != nil {
		return err
	}
	o.Artifact.OK = true
	for _, r := range o.Artifact.Proofs {
		if !r.OK {
			o.Artifact.OK = false
		}
	}
	return nil
}

func (o *Outcome) problemf(format string, args ...any) {
	o.Problems = append(o.Problems, fmt.Sprintf(format, args...))
}

// checkExpect diffs the artifact against the scenario's expectations.
func (o *Outcome) checkExpect(s *Scenario, mod *csp.Module) {
	e := &s.Expect
	art := &o.Artifact
	if e.OK != nil && art.OK != *e.OK {
		o.problemf("expected ok=%v, got ok=%v (error %q)", *e.OK, art.OK, art.Error)
	}
	if e.Count != nil || e.MaxLen != nil || len(e.Contains) > 0 || len(e.Absent) > 0 {
		first := art.Engines[s.EngineList()[0]]
		if first == nil {
			o.problemf("trace expectations on a scenario that produced no trace set")
		} else {
			if e.Count != nil && first.Count != *e.Count {
				o.problemf("expected %d traces, got %d", *e.Count, first.Count)
			}
			if e.MaxLen != nil && first.MaxLen != *e.MaxLen {
				o.problemf("expected max trace length %d, got %d", *e.MaxLen, first.MaxLen)
			}
			o.checkMembership(s, mod)
		}
	}
	if e.Deadlock != nil {
		if art.Deadlock == nil {
			o.problemf("deadlock expectation but no deadlock probe ran")
		} else if *art.Deadlock != *e.Deadlock {
			o.problemf("expected deadlock=%v, got %v", *e.Deadlock, *art.Deadlock)
		}
	}
	if len(e.Failed) > 0 || (s.Kind == KindCheck && e.OK != nil && !*e.OK) {
		o.checkFailed(e)
	}
	if e.Witness != nil {
		switch {
		case art.Refine == nil:
			o.problemf("witness expectation on a scenario without a refinement result")
		case art.Refine.OK:
			o.problemf("expected a counterexample witness but the refinement holds")
		default:
			got := strings.Join(art.Refine.Witness, " ")
			if got != *e.Witness {
				o.problemf("expected witness %q, got %q", *e.Witness, got)
			}
		}
	}
}

// checkMembership resolves Contains/Absent against the full computed
// set, so membership is exact even when the artifact's listing is
// truncated.
func (o *Outcome) checkMembership(s *Scenario, mod *csp.Module) {
	e := &s.Expect
	if mod == nil || o.firstSet == nil || (len(e.Contains) == 0 && len(e.Absent) == 0) {
		return
	}
	view := o.firstSet.View()
	for _, raw := range e.Contains {
		t, err := ParseTrace(raw)
		if err != nil {
			o.problemf("expect.contains %q: %v", raw, err)
			continue
		}
		if !view.Contains(t) {
			o.problemf("expected trace %q in the set, not found", raw)
		}
	}
	for _, raw := range e.Absent {
		t, err := ParseTrace(raw)
		if err != nil {
			o.problemf("expect.absent %q: %v", raw, err)
			continue
		}
		if view.Contains(t) {
			o.problemf("trace %q expected absent but present", raw)
		}
	}
}

// checkFailed matches the failing asserts against Expect.Failed: every
// listed substring must match exactly one failing decl, and every
// failing decl must be matched.
func (o *Outcome) checkFailed(e *Expect) {
	var failing []string
	for _, r := range o.Artifact.Asserts {
		if !r.OK {
			failing = append(failing, r.Decl)
		}
	}
	if len(e.Failed) == 0 {
		return
	}
	matched := make([]bool, len(failing))
	for _, want := range e.Failed {
		hit := -1
		for i, decl := range failing {
			if strings.Contains(decl, want) && !matched[i] {
				hit = i
				break
			}
		}
		if hit < 0 {
			o.problemf("expected a failing assert matching %q; failing: %v", want, failing)
			continue
		}
		matched[hit] = true
	}
	for i, decl := range failing {
		if !matched[i] {
			o.problemf("assert %q failed but was not expected to", decl)
		}
	}
}

// ParseTrace parses the golden rendering of a trace: space-separated
// "chan.msg" events, "" for the empty trace. The message is an integer
// when it parses as one, a symbol otherwise; the channel may itself be a
// subscripted array element ("col[2].7" splits at the last dot).
func ParseTrace(s string) (trace.T, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	fields := strings.Fields(s)
	t := make(trace.T, 0, len(fields))
	for _, f := range fields {
		i := strings.LastIndexByte(f, '.')
		if i <= 0 || i == len(f)-1 {
			return nil, fmt.Errorf("event %q is not chan.msg", f)
		}
		ch, msg := f[:i], f[i+1:]
		var v value.V
		if n, err := strconv.ParseInt(msg, 10, 64); err == nil {
			v = value.Int(n)
		} else {
			v = value.Sym(msg)
		}
		t = append(t, trace.Event{Chan: trace.Chan(ch), Msg: v})
	}
	return t, nil
}

// SortedEngineNames lists an artifact's engines deterministically.
func (a *Artifact) SortedEngineNames() []string {
	names := make([]string, 0, len(a.Engines))
	for n := range a.Engines {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
