package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleFile = `
- name: copier-walk
  kind: traces
  file: copier.csp
  process: copier
  depth: 5
  engines: [op, denote, runtime]
  seed: 7
  expect:
    ok: true
    contains:
      - "input.0 wire.0"
- name: inline-check
  kind: check
  source: |
    p = a!1 -> p
    assert p sat 0 <= #a
  depth: 4
  expect:
    ok: true
- name: weaken
  kind: refine
  source: |
    impl = a!1 -> STOP
    spec = a!1 -> a!1 -> STOP
  impl: impl
  spec: spec
  model: failures
  expect:
    ok: false
    witness: ""
`

func TestParseScenarios(t *testing.T) {
	scenarios, err := Parse([]byte(sampleFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 3 {
		t.Fatalf("parsed %d scenarios", len(scenarios))
	}
	s := scenarios[0]
	if s.Name != "copier-walk" || s.Kind != KindTraces || s.File != "copier.csp" ||
		s.Depth != 5 || s.Seed != 7 || len(s.Engines) != 3 {
		t.Fatalf("first scenario: %+v", s)
	}
	if s.Expect.OK == nil || !*s.Expect.OK || len(s.Expect.Contains) != 1 {
		t.Fatalf("first expect: %+v", s.Expect)
	}
	if got := scenarios[1].Source; !strings.Contains(got, "assert p sat") {
		t.Fatalf("inline source: %q", got)
	}
	w := scenarios[2]
	if w.Model != "failures" || w.Expect.Witness == nil || *w.Expect.Witness != "" {
		t.Fatalf("witness scenario: %+v", w)
	}
	if w.Expect.OK == nil || *w.Expect.OK {
		t.Fatalf("witness expect: %+v", w.Expect)
	}
}

func TestParseScenarioErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"not a sequence", "name: x", "must be a sequence"},
		{"unknown key", "- name: x\n  kind: check\n  source: p = STOP\n  bogus: 1", "unknown key"},
		{"unknown expect key", "- name: x\n  kind: check\n  source: p = STOP\n  expect:\n    bogus: 1", "unknown key"},
		{"bad kind", "- name: x\n  kind: nope\n  source: p = STOP", "unknown kind"},
		{"no name", "- kind: check\n  source: p = STOP", "no name"},
		{"source and file", "- name: x\n  kind: check\n  source: p = STOP\n  file: a.csp", "exactly one"},
		{"neither source nor file", "- name: x\n  kind: check", "exactly one"},
		{"traces without process", "- name: x\n  kind: traces\n  source: p = STOP", "need a process"},
		{"refine without spec", "- name: x\n  kind: refine\n  source: p = STOP\n  impl: p", "impl and spec"},
		{"runtime without op", "- name: x\n  kind: traces\n  source: p = STOP\n  process: p\n  engines: [runtime]", "subset check"},
		{"bad engine", "- name: x\n  kind: traces\n  source: p = STOP\n  process: p\n  engines: [spin]", "unknown engine"},
		{"bad model", "- name: x\n  kind: check\n  source: p = STOP\n  model: divergences", "unknown model"},
		{"engines on check", "- name: x\n  kind: check\n  source: p = STOP\n  engines: [op, denote]", "only traces scenarios"},
		{"duplicate name", "- name: x\n  kind: check\n  source: p = STOP\n- name: x\n  kind: check\n  source: q = STOP", "duplicate scenario name"},
		{"typed field", "- name: x\n  kind: check\n  source: p = STOP\n  depth: deep", "want integer"},
		{"empty file", "# nothing here\n", "empty scenario file"},
	}
	for _, c := range cases {
		_, err := Parse([]byte(c.in))
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestLoadFileResolvesDir(t *testing.T) {
	dir := t.TempDir()
	spec := "p = a!1 -> STOP\n"
	if err := os.WriteFile(filepath.Join(dir, "tiny.csp"), []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	doc := "- name: t\n  kind: check\n  file: tiny.csp\n"
	path := filepath.Join(dir, "t.yaml")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	scenarios, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	src, err := scenarios[0].SourceText()
	if err != nil {
		t.Fatal(err)
	}
	if src != spec {
		t.Fatalf("source = %q", src)
	}
}

func TestFiles(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "gen")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{filepath.Join(dir, "b.yaml"), filepath.Join(dir, "a.yaml"), filepath.Join(sub, "c.yaml"), filepath.Join(dir, "x.golden.json")} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	files, err := Files(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{filepath.Join(dir, "a.yaml"), filepath.Join(dir, "b.yaml"), filepath.Join(sub, "c.yaml")}
	if len(files) != 3 || files[0] != want[0] || files[1] != want[1] || files[2] != want[2] {
		t.Fatalf("files = %v, want %v", files, want)
	}
	if _, err := Files(filepath.Join(dir, "none")); err == nil {
		t.Fatal("missing path: no error")
	}
}
