package scenario

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runOne(t *testing.T, doc string) *Outcome {
	t.Helper()
	scenarios, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 1 {
		t.Fatalf("want one scenario, got %d", len(scenarios))
	}
	out, err := Run(context.Background(), &scenarios[0])
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRunTracesCrossEngine(t *testing.T) {
	out := runOne(t, `
- name: copier
  kind: traces
  source: |
    copier = input?x:NAT -> wire!x -> copier
  process: copier
  depth: 4
  nat: 2
  engines: [op, denote, runtime]
  expect:
    ok: true
    maxlen: 4
    contains:
      - ""
      - "input.0 wire.0"
      - "input.1 wire.1 input.0"
    absent:
      - "wire.0"
      - "input.2"
`)
	if len(out.Problems) != 0 {
		t.Fatalf("problems: %v", out.Problems)
	}
	a := out.Artifact
	if !a.OK || a.EnginesAgree == nil || !*a.EnginesAgree {
		t.Fatalf("artifact: %+v", a)
	}
	if a.RuntimeSubset == nil || !*a.RuntimeSubset {
		t.Fatalf("runtime subset probe: %+v", a.RuntimeSubset)
	}
	op, denote := a.Engines["op"], a.Engines["denote"]
	if op == nil || denote == nil || op.Count != denote.Count || op.Count < 5 {
		t.Fatalf("engine listings: op=%+v denote=%+v", op, denote)
	}
	if a.SpecHash == "" {
		t.Fatal("missing spec hash")
	}
}

func TestRunExpectViolations(t *testing.T) {
	out := runOne(t, `
- name: wrong
  kind: traces
  source: |
    p = a!1 -> STOP
  process: p
  depth: 4
  expect:
    count: 999
    contains: ["b.2"]
    absent: ["a.1"]
`)
	if len(out.Problems) != 3 {
		t.Fatalf("want 3 expectation failures, got %v", out.Problems)
	}
}

func TestRunCheckFailedAsserts(t *testing.T) {
	out := runOne(t, `
- name: violated
  kind: check
  source: |
    p = a!1 -> a!2 -> STOP
    assert p sat #a <= 1
  depth: 5
  expect:
    ok: false
    failed: ["#a <= 1"]
`)
	if len(out.Problems) != 0 {
		t.Fatalf("problems: %v", out.Problems)
	}
	if out.Artifact.OK || len(out.Artifact.Asserts) != 1 || out.Artifact.Asserts[0].OK {
		t.Fatalf("artifact: %+v", out.Artifact)
	}
}

func TestRunRefineHierarchyAndWitness(t *testing.T) {
	// The §4 separation: STOP |~| guarded has guarded's traces but can
	// refuse everything, so ⊑T holds where ⊑F fails — and the hierarchy
	// record must mark that consistent (the converse would not be).
	out := runOne(t, `
- name: separation
  kind: refine
  source: |
    guarded = a!0 -> guarded
    weak = guarded |~| STOP
  impl: weak
  spec: guarded
  model: failures
  depth: 4
  expect:
    ok: false
    witness: ""
`)
	if len(out.Problems) != 0 {
		t.Fatalf("problems: %v", out.Problems)
	}
	a := out.Artifact
	if a.OK || a.Refine == nil || a.Refine.OK {
		t.Fatalf("refine artifact: %+v", a)
	}
	if a.Hierarchy == nil || a.Hierarchy.FailuresOK || !a.Hierarchy.TracesOK || !a.Hierarchy.Consistent {
		t.Fatalf("hierarchy: %+v", a.Hierarchy)
	}
	if a.Refine.Failure == nil || !a.Refine.Failure.Deadlock {
		t.Fatalf("failure counterexample: %+v", a.Refine.Failure)
	}
}

func TestRunDeadlockBoth(t *testing.T) {
	for _, c := range []struct {
		src  string
		want bool
	}{
		{"p = a!0 -> STOP", true},
		{"p = a!0 -> p", false},
	} {
		out := runOne(t, "- name: d\n  kind: traces\n  source: |\n    "+c.src+"\n  process: p\n  depth: 4\n  expect:\n    deadlock: "+boolStr(c.want)+"\n")
		if len(out.Problems) != 0 {
			t.Fatalf("%s: problems %v", c.src, out.Problems)
		}
		if out.Artifact.Deadlock == nil || *out.Artifact.Deadlock != c.want {
			t.Fatalf("%s: deadlock=%v", c.src, out.Artifact.Deadlock)
		}
	}
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

func TestRunLoadErrorArtifact(t *testing.T) {
	out := runOne(t, `
- name: broken
  kind: check
  source: |
    p = (((
  expect:
    ok: false
`)
	if len(out.Problems) != 0 {
		t.Fatalf("problems: %v", out.Problems)
	}
	if out.Artifact.OK || out.Artifact.Error == "" {
		t.Fatalf("artifact: %+v", out.Artifact)
	}
}

func TestGoldenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	scenarios, err := Parse([]byte(sampleRunnable))
	if err != nil {
		t.Fatal(err)
	}
	var artifacts []Artifact
	for i := range scenarios {
		out, err := Run(context.Background(), &scenarios[i])
		if err != nil {
			t.Fatal(err)
		}
		artifacts = append(artifacts, out.Artifact)
	}
	path := filepath.Join(dir, "s.golden.json")
	if err := WriteGolden(path, artifacts); err != nil {
		t.Fatal(err)
	}

	// A re-run compares clean.
	problems, err := CompareGolden(path, artifacts)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("golden self-compare: %v", problems)
	}

	// A diverged artifact is reported with its field.
	mutated := make([]Artifact, len(artifacts))
	copy(mutated, artifacts)
	mutated[0].OK = !mutated[0].OK
	problems, err = CompareGolden(path, mutated)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], `"ok"`) {
		t.Fatalf("mutation diff: %v", problems)
	}

	// Missing golden names the bless command.
	problems, err = CompareGolden(filepath.Join(dir, "other.golden.json"), artifacts)
	if err != nil || len(problems) != 1 || !strings.Contains(problems[0], "bless") {
		t.Fatalf("missing golden: %v / %v", problems, err)
	}
}

const sampleRunnable = `
- name: walk
  kind: traces
  source: |
    p = a!0 -> b!1 -> p
  process: p
  depth: 4
- name: holds
  kind: check
  source: |
    p = a!1 -> p
    assert p sat 0 <= #a
  depth: 4
`

func TestGenerateCorpusDeterministic(t *testing.T) {
	cfg := GenConfig{Seed: 11, Count: 12, PerFile: 5}
	a, skippedA, err := GenerateCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, skippedB, err := GenerateCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if skippedA != skippedB || len(a) != len(b) || len(a) != 3 {
		t.Fatalf("determinism: %d/%d files, %d/%d skips", len(a), len(b), skippedA, skippedB)
	}
	total := 0
	for i := range a {
		if a[i].Name != b[i].Name || string(a[i].Data) != string(b[i].Data) {
			t.Fatalf("file %d differs between identical runs", i)
		}
		scenarios, err := Parse(a[i].Data)
		if err != nil {
			t.Fatalf("%s does not reparse: %v", a[i].Name, err)
		}
		total += len(scenarios)
		for j := range scenarios {
			out, err := Run(context.Background(), &scenarios[j])
			if err != nil {
				t.Fatalf("%s/%s: %v", a[i].Name, scenarios[j].Name, err)
			}
			if len(out.Problems) != 0 {
				t.Fatalf("%s/%s: %v", a[i].Name, scenarios[j].Name, out.Problems)
			}
		}
	}
	if total != 12 {
		t.Fatalf("corpus holds %d scenarios, want 12", total)
	}
}

func TestGeneratedScenariosWriteLoad(t *testing.T) {
	files, _, err := GenerateCorpus(GenConfig{Seed: 3, Count: 4, PerFile: 4})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, f := range files {
		if err := os.WriteFile(filepath.Join(dir, f.Name), f.Data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	paths, err := Files(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		if _, err := LoadFile(p); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
	}
}
