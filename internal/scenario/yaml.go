// A hand-rolled strict subset of YAML, enough to express scenario files
// and nothing more. The repository takes no dependencies, and scenarios
// need exactly: block maps, block sequences (including "- key: value"
// inline map starts), flow sequences of scalars, single- and
// double-quoted strings, block literals (| and |-), comments, and plain
// scalars typed as bool/int/null/string.
//
// The subset is deliberately strict where YAML is forgiving: tabs in
// indentation are errors, duplicate keys are errors, nesting is capped,
// and anything outside the subset (anchors, aliases, flow maps, multiple
// documents, type tags) is a parse error rather than a silent
// misreading. A scenario file that parses here parses the same way under
// any conforming YAML reader.
package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// maxYAMLDepth caps block nesting; scenario files are ~4 levels deep, so
// the cap only exists to bound adversarial input (the fuzz target).
const maxYAMLDepth = 64

// Value is a parsed YAML value: map[string]Value, []Value, string,
// int64, bool, or nil.
type Value any

type yamlLine struct {
	indent  int
	content string // without indentation, comments handled per-scalar
	lineno  int
}

type yamlParser struct {
	lines []yamlLine
	raw   []string // original lines, for block literals
	pos   int
}

// ParseYAML parses one document of the YAML subset.
func ParseYAML(data []byte) (Value, error) {
	p, err := newYAMLParser(data)
	if err != nil {
		return nil, err
	}
	if p.pos >= len(p.lines) {
		return nil, nil
	}
	v, err := p.parseValue(p.lines[p.pos].indent, 0)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("line %d: unexpected content %q after document", l.lineno, l.content)
	}
	return v, nil
}

func newYAMLParser(data []byte) (*yamlParser, error) {
	raw := strings.Split(string(data), "\n")
	p := &yamlParser{raw: raw}
	for i, line := range raw {
		trimmed := strings.TrimRight(line, " \r")
		body := strings.TrimLeft(trimmed, " ")
		if body == "" || strings.HasPrefix(body, "#") {
			continue
		}
		indent := len(trimmed) - len(body)
		if strings.ContainsRune(line[:indent+1], '\t') || strings.HasPrefix(body, "\t") {
			return nil, fmt.Errorf("line %d: tab in indentation", i+1)
		}
		if body == "---" || body == "..." {
			if len(p.lines) > 0 {
				return nil, fmt.Errorf("line %d: multiple documents are not supported", i+1)
			}
			continue
		}
		p.lines = append(p.lines, yamlLine{indent: indent, content: body, lineno: i + 1})
	}
	return p, nil
}

// parseValue parses the block value whose first line is at exactly
// indent; every subsequent line of the value is at >= indent.
func (p *yamlParser) parseValue(indent, depth int) (Value, error) {
	if depth > maxYAMLDepth {
		return nil, fmt.Errorf("line %d: nesting deeper than %d levels", p.lines[p.pos].lineno, maxYAMLDepth)
	}
	l := p.lines[p.pos]
	if l.content == "-" || strings.HasPrefix(l.content, "- ") {
		return p.parseSequence(indent, depth)
	}
	if key, _, ok := splitKey(l.content); ok && key != "" {
		return p.parseMap(indent, depth)
	}
	// A single scalar line.
	p.pos++
	return parseScalar(l.content, l.lineno)
}

func (p *yamlParser) parseSequence(indent, depth int) (Value, error) {
	seq := []Value{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent || (l.content != "-" && !strings.HasPrefix(l.content, "- ")) {
			if l.indent > indent {
				return nil, fmt.Errorf("line %d: bad indentation inside sequence", l.lineno)
			}
			break
		}
		if l.content == "-" {
			// The item is the nested block on the following lines.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				seq = append(seq, nil)
				continue
			}
			item, err := p.parseValue(p.lines[p.pos].indent, depth+1)
			if err != nil {
				return nil, err
			}
			seq = append(seq, item)
			continue
		}
		// "- inline": re-inject the rest of the line at its real column so
		// "- key: value" opens a map whose siblings align under the key.
		rest := l.content[2:]
		pad := 2
		for len(rest) > 0 && rest[0] == ' ' {
			rest = rest[1:]
			pad++
		}
		if rest == "" {
			return nil, fmt.Errorf("line %d: empty sequence item", l.lineno)
		}
		p.lines[p.pos] = yamlLine{indent: indent + pad, content: rest, lineno: l.lineno}
		item, err := p.parseValue(indent+pad, depth+1)
		if err != nil {
			return nil, err
		}
		seq = append(seq, item)
	}
	return seq, nil
}

func (p *yamlParser) parseMap(indent, depth int) (Value, error) {
	m := map[string]Value{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent {
			if l.indent > indent {
				return nil, fmt.Errorf("line %d: bad indentation inside mapping", l.lineno)
			}
			break
		}
		key, rest, ok := splitKey(l.content)
		if !ok {
			return nil, fmt.Errorf("line %d: expected \"key: value\", got %q", l.lineno, l.content)
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate key %q", l.lineno, key)
		}
		switch {
		case rest == "|" || rest == "|-":
			p.pos++
			text, err := p.parseBlockLiteral(indent, l.lineno, rest == "|-")
			if err != nil {
				return nil, err
			}
			m[key] = text
		case rest != "":
			v, err := parseScalar(rest, l.lineno)
			if err != nil {
				return nil, err
			}
			m[key] = v
			p.pos++
		default:
			// Value is the nested block, or null when nothing is nested.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				m[key] = nil
				continue
			}
			v, err := p.parseValue(p.lines[p.pos].indent, depth+1)
			if err != nil {
				return nil, err
			}
			m[key] = v
		}
	}
	return m, nil
}

// parseBlockLiteral consumes the raw lines of a | literal introduced on
// line keyLine at key indent keyIndent. Literals read from p.raw, not
// p.lines: blank lines and #-prefixed lines belong to the text.
func (p *yamlParser) parseBlockLiteral(keyIndent, keyLine int, strip bool) (string, error) {
	// Find where the literal ends in the raw line numbering: the next
	// parsed line at indent <= keyIndent.
	endRaw := len(p.raw)
	if p.pos < len(p.lines) && p.lines[p.pos].indent <= keyIndent {
		return "", fmt.Errorf("line %d: block literal has no content", keyLine)
	}
	for i := p.pos; i < len(p.lines); i++ {
		if p.lines[i].indent <= keyIndent {
			endRaw = p.lines[i].lineno - 1
			break
		}
	}
	// Advance the parsed-line cursor past the literal.
	for p.pos < len(p.lines) && p.lines[p.pos].lineno <= endRaw {
		p.pos++
	}

	var body []string
	blockIndent := -1
	for i := keyLine; i < endRaw; i++ { // raw line keyLine is 0-indexed i=keyLine
		line := strings.TrimRight(p.raw[i], "\r")
		t := strings.TrimLeft(line, " ")
		if t == "" {
			body = append(body, "")
			continue
		}
		ind := len(line) - len(t)
		if blockIndent < 0 {
			if ind <= keyIndent {
				return "", fmt.Errorf("line %d: block literal content must be indented past its key", i+1)
			}
			blockIndent = ind
		}
		if ind < blockIndent {
			return "", fmt.Errorf("line %d: block literal line under-indented", i+1)
		}
		body = append(body, line[blockIndent:])
	}
	// Trailing blank lines belong to the document, not the literal.
	for len(body) > 0 && body[len(body)-1] == "" {
		body = body[:len(body)-1]
	}
	if blockIndent < 0 {
		return "", fmt.Errorf("line %d: block literal has no content", keyLine)
	}
	text := strings.Join(body, "\n")
	if !strip {
		text += "\n"
	}
	return text, nil
}

// splitKey splits "key: value" / "key:" into key and the remainder. The
// key may be double- or single-quoted; a plain key runs to the first
// colon. Returns ok=false when the line is not a mapping entry.
func splitKey(s string) (key, rest string, ok bool) {
	if s == "" {
		return "", "", false
	}
	if s[0] == '"' || s[0] == '\'' {
		q, n, err := scanQuoted(s)
		if err != nil || n >= len(s) || s[n] != ':' {
			return "", "", false
		}
		return q, strings.TrimLeft(s[n+1:], " "), true
	}
	i := strings.IndexByte(s, ':')
	if i <= 0 {
		return "", "", false
	}
	if i+1 < len(s) && s[i+1] != ' ' {
		return "", "", false // "a:b" is a plain scalar, not a mapping
	}
	key = strings.TrimSpace(s[:i])
	if key == "" || strings.ContainsAny(key, "{}[],&*!|>%@`\"'") {
		return "", "", false
	}
	return key, strings.TrimLeft(s[i+1:], " "), true
}

// parseScalar parses an inline value: flow sequence, quoted string, or
// plain scalar with an optional trailing comment.
func parseScalar(s string, lineno int) (Value, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return nil, nil
	case s[0] == '[':
		return parseFlowSeq(s, lineno)
	case s[0] == '{':
		return nil, fmt.Errorf("line %d: flow mappings are not supported", lineno)
	case s[0] == '&' || s[0] == '*' || s[0] == '!':
		return nil, fmt.Errorf("line %d: anchors, aliases, and tags are not supported", lineno)
	case s[0] == '"' || s[0] == '\'':
		q, n, err := scanQuoted(s)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineno, err)
		}
		if tail := strings.TrimSpace(s[n:]); tail != "" && !strings.HasPrefix(tail, "#") {
			return nil, fmt.Errorf("line %d: unexpected %q after quoted scalar", lineno, tail)
		}
		return q, nil
	}
	// Plain scalar: cut a trailing comment (space before '#', per YAML).
	if i := strings.Index(s, " #"); i >= 0 {
		s = strings.TrimRight(s[:i], " ")
	}
	if s == "" {
		return nil, nil
	}
	return typeScalar(s), nil
}

// typeScalar resolves a plain scalar to bool, null, int64, or string.
func typeScalar(s string) Value {
	switch s {
	case "true":
		return true
	case "false":
		return false
	case "null", "~":
		return nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n
	}
	return s
}

// parseFlowSeq parses "[a, b, c]" of scalar items.
func parseFlowSeq(s string, lineno int) (Value, error) {
	if !strings.HasSuffix(s, "]") {
		return nil, fmt.Errorf("line %d: unterminated flow sequence", lineno)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	seq := []Value{}
	if inner == "" {
		return seq, nil
	}
	for len(inner) > 0 {
		inner = strings.TrimLeft(inner, " ")
		var item Value
		if len(inner) > 0 && (inner[0] == '"' || inner[0] == '\'') {
			q, n, err := scanQuoted(inner)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineno, err)
			}
			item = q
			inner = strings.TrimLeft(inner[n:], " ")
			if len(inner) > 0 {
				if inner[0] != ',' {
					return nil, fmt.Errorf("line %d: expected ',' in flow sequence", lineno)
				}
				inner = inner[1:]
			}
		} else {
			i := strings.IndexByte(inner, ',')
			var raw string
			if i < 0 {
				raw, inner = inner, ""
			} else {
				raw, inner = inner[:i], inner[i+1:]
			}
			raw = strings.TrimSpace(raw)
			if raw == "" {
				return nil, fmt.Errorf("line %d: empty item in flow sequence", lineno)
			}
			if strings.ContainsAny(raw, "[]{}") {
				return nil, fmt.Errorf("line %d: nested flow collections are not supported", lineno)
			}
			item = typeScalar(raw)
		}
		seq = append(seq, item)
	}
	return seq, nil
}

// scanQuoted scans a leading quoted string and returns its value and the
// index just past the closing quote. Double quotes support \" \\ \n \t
// escapes; single quotes are literal, a doubled quote escaping one.
func scanQuoted(s string) (string, int, error) {
	quote := s[0]
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		c := s[i]
		switch {
		case c == quote && quote == '\'':
			if i+1 < len(s) && s[i+1] == '\'' {
				b.WriteByte('\'')
				i++
				continue
			}
			return b.String(), i + 1, nil
		case c == quote:
			return b.String(), i + 1, nil
		case c == '\\' && quote == '"':
			if i+1 >= len(s) {
				return "", 0, fmt.Errorf("unterminated escape in quoted scalar")
			}
			i++
			switch s[i] {
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				return "", 0, fmt.Errorf("unsupported escape \\%c in quoted scalar", s[i])
			}
		default:
			b.WriteByte(c)
		}
	}
	return "", 0, fmt.Errorf("unterminated quoted scalar")
}
