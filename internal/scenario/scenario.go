// Package scenario is the conformance harness: executable descriptions
// of verification runs — spec, engines, model, bounds, expectations —
// loaded from YAML files, executed through pkg/csp, and diffed against
// committed golden artifacts. cmd/cspscen is the CLI over this package;
// specs/scenarios is the committed corpus. See DESIGN.md §3.9.
package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Kinds a scenario can exercise, mirroring the /v1 endpoints.
const (
	KindTraces = "traces"
	KindCheck  = "check"
	KindRefine = "refine"
	KindProve  = "prove"
)

// Scenario is one conformance case: a spec plus the run parameters and
// the expectations the run must satisfy. Cross-engine agreement is
// implicit — every listed engine must produce the same trace set.
type Scenario struct {
	// Name identifies the scenario; unique within its file.
	Name string
	// Kind is "traces", "check", "refine", or "prove".
	Kind string
	// Source is the inline .csp module text; File a path relative to the
	// scenario file. Exactly one is set.
	Source string
	File   string
	// Engines lists the trace engines to run and compare (default
	// ["op", "denote"]; "runtime" requires "op" to be listed too, since
	// sampled runs are verified as a subset of the op set rather than
	// compared byte-for-byte).
	Engines []string
	// Model is "traces" (default) or "failures" (check and refine).
	Model string
	// Depth, Nat, MaxLen bound the run (defaults 8 / 3 / 3).
	Depth  int
	Nat    int
	MaxLen int
	// Process roots a traces scenario; Impl and Spec name a refinement.
	Process string
	Impl    string
	Spec    string
	// Seed and MaxEvents drive the runtime engine's sampler.
	Seed      int64
	MaxEvents int
	// Expect is checked against the run's outcome.
	Expect Expect

	// Dir is the directory of the file the scenario was loaded from,
	// for resolving File; set by LoadFile.
	Dir string
}

// Expect is the assertion half of a scenario. Nil pointer fields are
// unchecked; zero-length slices are unchecked.
type Expect struct {
	// OK is the overall verdict: traces computed, all asserts hold, the
	// refinement holds, all proofs found.
	OK *bool
	// Count is the exact trace count (traces scenarios, op/denote set).
	Count *int
	// MaxLen is the length of the longest trace (traces scenarios).
	MaxLen *int
	// Contains and Absent name traces, rendered "chan.msg chan.msg ...",
	// that must / must not be in the computed set ("" is the empty trace).
	Contains []string
	Absent   []string
	// Deadlock asserts whether the process can refuse its whole
	// alphabet after some trace (failures-model traces scenarios).
	Deadlock *bool
	// Failed lists assert names (1-based "assert N" labels) that must
	// fail in a check scenario; all others must hold.
	Failed []string
	// Witness is a counterexample trace a failed refinement must report.
	Witness *string
}

var validKinds = map[string]bool{KindTraces: true, KindCheck: true, KindRefine: true, KindProve: true}
var validEngines = map[string]bool{"op": true, "denote": true, "runtime": true}
var validModels = map[string]bool{"": true, "traces": true, "failures": true}

// Validate checks internal consistency; Load* call it on every scenario.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario has no name")
	}
	if !validKinds[s.Kind] {
		return fmt.Errorf("scenario %q: unknown kind %q", s.Name, s.Kind)
	}
	if (s.Source == "") == (s.File == "") {
		return fmt.Errorf("scenario %q: exactly one of source and file must be set", s.Name)
	}
	if !validModels[s.Model] {
		return fmt.Errorf("scenario %q: unknown model %q", s.Name, s.Model)
	}
	seen := map[string]bool{}
	for _, e := range s.Engines {
		if !validEngines[e] {
			return fmt.Errorf("scenario %q: unknown engine %q", s.Name, e)
		}
		if seen[e] {
			return fmt.Errorf("scenario %q: engine %q listed twice", s.Name, e)
		}
		seen[e] = true
	}
	if seen["runtime"] && !seen["op"] {
		return fmt.Errorf("scenario %q: the runtime engine needs \"op\" listed for its subset check", s.Name)
	}
	switch s.Kind {
	case KindTraces:
		if s.Process == "" {
			return fmt.Errorf("scenario %q: traces scenarios need a process", s.Name)
		}
	case KindRefine:
		if s.Impl == "" || s.Spec == "" {
			return fmt.Errorf("scenario %q: refine scenarios need impl and spec", s.Name)
		}
	}
	if s.Kind != KindTraces && len(s.Engines) > 1 {
		return fmt.Errorf("scenario %q: only traces scenarios compare engines", s.Name)
	}
	if s.Kind != KindTraces && seen["runtime"] {
		return fmt.Errorf("scenario %q: the runtime engine only drives traces scenarios", s.Name)
	}
	return nil
}

// EngineList is Engines with the default applied.
func (s *Scenario) EngineList() []string {
	if len(s.Engines) > 0 {
		return s.Engines
	}
	return []string{"op", "denote"}
}

// SourceText returns the module text, reading File when set.
func (s *Scenario) SourceText() (string, error) {
	if s.Source != "" {
		return s.Source, nil
	}
	path := s.File
	if !filepath.IsAbs(path) {
		path = filepath.Join(s.Dir, path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	return string(data), nil
}

// Parse decodes one scenario file: a YAML sequence of scenario maps.
// Every key must be known, every value well-typed, every scenario valid,
// and names unique — a file that parses is a file the runner can run.
func Parse(data []byte) ([]Scenario, error) {
	doc, err := ParseYAML(data)
	if err != nil {
		return nil, err
	}
	if doc == nil {
		return nil, fmt.Errorf("empty scenario file")
	}
	seq, ok := doc.([]Value)
	if !ok {
		return nil, fmt.Errorf("scenario file must be a sequence of scenarios")
	}
	scenarios := make([]Scenario, 0, len(seq))
	names := map[string]bool{}
	for i, item := range seq {
		m, ok := item.(map[string]Value)
		if !ok {
			return nil, fmt.Errorf("scenario %d: not a mapping", i+1)
		}
		s, err := decodeScenario(m)
		if err != nil {
			return nil, fmt.Errorf("scenario %d: %w", i+1, err)
		}
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if names[s.Name] {
			return nil, fmt.Errorf("duplicate scenario name %q", s.Name)
		}
		names[s.Name] = true
		scenarios = append(scenarios, s)
	}
	return scenarios, nil
}

// LoadFile parses path and stamps each scenario's Dir.
func LoadFile(path string) ([]Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	scenarios, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	dir := filepath.Dir(path)
	for i := range scenarios {
		scenarios[i].Dir = dir
	}
	return scenarios, nil
}

// Files lists the scenario files under a path: the file itself, or every
// *.yaml directly in or recursively under a directory, sorted.
func Files(path string) ([]string, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return []string{path}, nil
	}
	var files []string
	err = filepath.WalkDir(path, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(p, ".yaml") {
			files = append(files, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no scenario files (*.yaml)", path)
	}
	return files, nil
}

func decodeScenario(m map[string]Value) (Scenario, error) {
	var s Scenario
	d := decoder{m: m}
	s.Name = d.str("name")
	s.Kind = d.str("kind")
	s.Source = d.str("source")
	s.File = d.str("file")
	s.Engines = d.strs("engines")
	s.Model = d.str("model")
	s.Depth = d.num("depth")
	s.Nat = d.num("nat")
	s.MaxLen = d.num("maxlen")
	s.Process = d.str("process")
	s.Impl = d.str("impl")
	s.Spec = d.str("spec")
	s.Seed = d.num64("seed")
	s.MaxEvents = d.num("max_events")
	if raw, ok := m["expect"]; ok {
		em, ok := raw.(map[string]Value)
		if !ok {
			return s, fmt.Errorf("expect: not a mapping")
		}
		ed := decoder{m: em}
		s.Expect.OK = ed.boolPtr("ok")
		s.Expect.Count = ed.numPtr("count")
		s.Expect.MaxLen = ed.numPtr("maxlen")
		s.Expect.Contains = ed.strs("contains")
		s.Expect.Absent = ed.strs("absent")
		s.Expect.Deadlock = ed.boolPtr("deadlock")
		s.Expect.Failed = ed.strs("failed")
		s.Expect.Witness = ed.strPtr("witness")
		if err := ed.finish("expect"); err != nil {
			return s, err
		}
		d.used["expect"] = true
	}
	if err := d.finish("scenario"); err != nil {
		return s, err
	}
	return s, nil
}

// decoder pulls typed fields out of a parsed map, accumulating the first
// error and tracking which keys were consumed so unknown keys fail.
type decoder struct {
	m    map[string]Value
	used map[string]bool
	err  error
}

func (d *decoder) take(key string) (Value, bool) {
	if d.used == nil {
		d.used = map[string]bool{}
	}
	v, ok := d.m[key]
	if ok {
		d.used[key] = true
	}
	return v, ok
}

func (d *decoder) fail(key, want string, got Value) {
	if d.err == nil {
		d.err = fmt.Errorf("%s: want %s, got %T (%v)", key, want, got, got)
	}
}

func (d *decoder) str(key string) string {
	v, ok := d.take(key)
	if !ok || v == nil {
		return ""
	}
	s, ok := v.(string)
	if !ok {
		d.fail(key, "string", v)
		return ""
	}
	return s
}

func (d *decoder) strPtr(key string) *string {
	v, ok := d.take(key)
	if !ok {
		return nil
	}
	s, ok := v.(string)
	if !ok {
		d.fail(key, "string", v)
		return nil
	}
	return &s
}

func (d *decoder) strs(key string) []string {
	v, ok := d.take(key)
	if !ok || v == nil {
		return nil
	}
	seq, ok := v.([]Value)
	if !ok {
		d.fail(key, "sequence of strings", v)
		return nil
	}
	out := make([]string, 0, len(seq))
	for _, item := range seq {
		s, ok := item.(string)
		if !ok {
			d.fail(key, "sequence of strings", item)
			return nil
		}
		out = append(out, s)
	}
	return out
}

func (d *decoder) num(key string) int {
	return int(d.num64(key))
}

func (d *decoder) num64(key string) int64 {
	v, ok := d.take(key)
	if !ok || v == nil {
		return 0
	}
	n, ok := v.(int64)
	if !ok {
		d.fail(key, "integer", v)
		return 0
	}
	return n
}

func (d *decoder) numPtr(key string) *int {
	v, ok := d.take(key)
	if !ok {
		return nil
	}
	n, ok := v.(int64)
	if !ok {
		d.fail(key, "integer", v)
		return nil
	}
	i := int(n)
	return &i
}

func (d *decoder) boolPtr(key string) *bool {
	v, ok := d.take(key)
	if !ok {
		return nil
	}
	b, ok := v.(bool)
	if !ok {
		d.fail(key, "bool", v)
		return nil
	}
	return &b
}

// finish reports the accumulated error or the first unknown key.
func (d *decoder) finish(what string) error {
	if d.err != nil {
		return d.err
	}
	keys := make([]string, 0, len(d.m))
	for k := range d.m {
		if !d.used[k] {
			keys = append(keys, k)
		}
	}
	if len(keys) > 0 {
		sort.Strings(keys)
		return fmt.Errorf("%s: unknown key %q", what, keys[0])
	}
	return nil
}
