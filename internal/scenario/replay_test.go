package scenario

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"cspsat/internal/journal"
)

func TestReplayAgainstStub(t *testing.T) {
	// Responses differing only in volatile fields must replay clean;
	// a changed verdict must be flagged.
	recorded := `{"ok":true,"count":3,"elapsed_ms":11}` + "\n"
	served := map[string]string{
		"/v1/traces": `{"ok":true,"count":3,"elapsed_ms":99}` + "\n", // volatile-only drift
		"/v1/check":  `{"ok":false}` + "\n",                          // verdict flip
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(served[r.URL.Path]))
	}))
	defer srv.Close()

	path := filepath.Join(t.TempDir(), "j.cspj")
	w, err := journal.Create(path, journal.Meta{Schema: journal.Schema, WireSchema: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/v1/traces", "/v1/check"} {
		err := w.Append(journal.Record{
			Method: "POST", Path: p, Status: 200,
			Request:    []byte(`{"source":"p = STOP"}`),
			RespDigest: journal.Digest([]byte(recorded)),
			RespBytes:  len(recorded),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	res, err := Replay(context.Background(), path, srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 2 || res.Torn {
		t.Fatalf("replay result: %+v", res)
	}
	if len(res.Mismatches) != 1 {
		t.Fatalf("mismatches: %v", res.Mismatches)
	}
	if res.OK() {
		t.Fatal("verdict flip not detected")
	}
}

func TestCheckMeta(t *testing.T) {
	meta := journal.Meta{WireSchema: 1, StoreCodec: 3}
	if w := CheckMeta(meta, map[string]any{"wire_schema": 1.0, "store_codec": 3.0}); len(w) != 0 {
		t.Fatalf("compatible meta warned: %v", w)
	}
	w := CheckMeta(meta, map[string]any{"wire_schema": 2.0, "store_codec": 4.0})
	if len(w) != 2 {
		t.Fatalf("incompatible meta: %v", w)
	}
	// A storeless journal (codec 0) never warns about the codec.
	if w := CheckMeta(journal.Meta{WireSchema: 1}, map[string]any{"wire_schema": 1.0, "store_codec": 9.0}); len(w) != 0 {
		t.Fatalf("storeless journal warned: %v", w)
	}
}
