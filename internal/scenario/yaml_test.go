package scenario

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseYAMLDocument(t *testing.T) {
	doc := `
# corpus header comment
- name: first
  kind: traces
  depth: 5
  engines: [op, denote]
  expect:
    ok: true
    count: 63
    contains:
      - "input.0 wire.0"
      - ""
- name: second
  kind: check
  source: |
    p = a!1 -> p
    assert p sat 0 <= #a
  expect:
    ok: false
`
	v, err := ParseYAML([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	want := []Value{
		map[string]Value{
			"name": "first", "kind": "traces", "depth": int64(5),
			"engines": []Value{"op", "denote"},
			"expect": map[string]Value{
				"ok": true, "count": int64(63),
				"contains": []Value{"input.0 wire.0", ""},
			},
		},
		map[string]Value{
			"name": "second", "kind": "check",
			"source": "p = a!1 -> p\nassert p sat 0 <= #a\n",
			"expect": map[string]Value{"ok": false},
		},
	}
	if !reflect.DeepEqual(v, want) {
		t.Fatalf("parsed:\n%#v\nwant:\n%#v", v, want)
	}
}

func TestParseYAMLScalars(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"key: true", map[string]Value{"key": true}},
		{"key: false", map[string]Value{"key": false}},
		{"key: null", map[string]Value{"key": nil}},
		{"key: ~", map[string]Value{"key": nil}},
		{"key:", map[string]Value{"key": nil}},
		{"key: -42", map[string]Value{"key": int64(-42)}},
		{"key: hello world", map[string]Value{"key": "hello world"}},
		{"key: hello # comment", map[string]Value{"key": "hello"}},
		{`key: "a: b # not a comment"`, map[string]Value{"key": "a: b # not a comment"}},
		{`key: "tab\there"`, map[string]Value{"key": "tab\there"}},
		{`key: 'it''s'`, map[string]Value{"key": "it's"}},
		{"key: []", map[string]Value{"key": []Value{}}},
		{"key: [1, two, true]", map[string]Value{"key": []Value{int64(1), "two", true}}},
		{"key: a:b", map[string]Value{"key": "a:b"}},
		{"key: http://example.com/x", map[string]Value{"key": "http://example.com/x"}},
	}
	for _, c := range cases {
		v, err := ParseYAML([]byte(c.in))
		if err != nil {
			t.Errorf("%q: %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(v, c.want) {
			t.Errorf("%q: got %#v, want %#v", c.in, v, c.want)
		}
	}
}

func TestParseYAMLBlockLiteral(t *testing.T) {
	doc := "spec: |\n  p = a -> STOP\n\n  # a comment inside the spec\n  q = b -> STOP\nafter: 1\n"
	v, err := ParseYAML([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	m := v.(map[string]Value)
	want := "p = a -> STOP\n\n# a comment inside the spec\nq = b -> STOP\n"
	if m["spec"] != want {
		t.Fatalf("literal = %q, want %q", m["spec"], want)
	}
	if m["after"] != int64(1) {
		t.Fatalf("key after literal: %v", m["after"])
	}

	// |- strips the final newline.
	v, err = ParseYAML([]byte("spec: |-\n  p = STOP\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := v.(map[string]Value)["spec"]; got != "p = STOP" {
		t.Fatalf("|- literal = %q", got)
	}
}

// deepDoc nests n single-key maps, one per indentation level.
func deepDoc(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(strings.Repeat(" ", i) + "a:\n")
	}
	b.WriteString(strings.Repeat(" ", n) + "b: 1")
	return b.String()
}

func TestParseYAMLErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"tab indent", "key:\n\tnested: 1", "tab in indentation"},
		{"duplicate key", "a: 1\na: 2", "duplicate key"},
		{"flow map", "a: {b: 1}", "flow mappings"},
		{"anchor", "a: &x 1", "anchors"},
		{"alias", "a: *x", "anchors"},
		{"tag", "a: !!int 3", "anchors"},
		{"multi-doc", "a: 1\n---\nb: 2", "multiple documents"},
		{"unterminated quote", `a: "oops`, "unterminated"},
		{"unterminated flow", "a: [1, 2", "unterminated flow"},
		{"nested flow", "a: [[1]]", "nested flow"},
		{"empty literal", "a: |\nb: 1", "no content"},
		{"bad map indent", "a: 1\n   b: 2", "bad indentation"},
		{"bad seq indent", "- a\n  - b", "bad indentation"},
		{"trailing junk", `a: "x" y`, "after quoted scalar"},
		{"deep nesting", deepDoc(70), "nesting deeper"},
	}
	for _, c := range cases {
		_, err := ParseYAML([]byte(c.in))
		if err == nil {
			t.Errorf("%s: no error for %q", c.name, c.in)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestParseYAMLSequenceForms(t *testing.T) {
	doc := "- plain\n- 42\n-\n  - nested\n- key: 1\n  other: 2\n"
	v, err := ParseYAML([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	want := []Value{
		"plain", int64(42),
		[]Value{"nested"},
		map[string]Value{"key": int64(1), "other": int64(2)},
	}
	if !reflect.DeepEqual(v, want) {
		t.Fatalf("got %#v, want %#v", v, want)
	}
}
