// Golden artifacts: the committed record of what every scenario
// produced. `cspscen run` demands byte-identical agreement; `cspscen
// bless` rewrites the files. Golden files sit next to their scenario
// file as <name>.golden.json.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"cspsat/pkg/csp"
)

// GoldenFile is the serialized form: a schema-stamped artifact list.
type GoldenFile struct {
	// Schema is the pkg/csp wire schema the embedded encodings use;
	// Harness versions the artifact layout around them.
	Schema    int        `json:"schema"`
	Harness   int        `json:"harness"`
	Artifacts []Artifact `json:"artifacts"`
}

// GoldenPath maps a scenario file to its golden sibling.
func GoldenPath(scenarioPath string) string {
	return strings.TrimSuffix(scenarioPath, ".yaml") + ".golden.json"
}

// EncodeGolden renders the golden file bytes for a run's artifacts.
func EncodeGolden(artifacts []Artifact) ([]byte, error) {
	data, err := json.MarshalIndent(GoldenFile{
		Schema:    csp.WireSchema,
		Harness:   HarnessSchema,
		Artifacts: artifacts,
	}, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteGolden blesses path with the artifacts.
func WriteGolden(path string, artifacts []Artifact) error {
	data, err := EncodeGolden(artifacts)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// CompareGolden diffs a run's artifacts against the committed golden
// file. The returned problems are per-artifact and human-readable; a
// missing golden file is one problem ("bless to create").
func CompareGolden(path string, artifacts []Artifact) ([]string, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return []string{fmt.Sprintf("%s: missing golden file (run `cspscen bless` to create it)", path)}, nil
	}
	if err != nil {
		return nil, err
	}
	var committed GoldenFile
	if err := json.Unmarshal(data, &committed); err != nil {
		return nil, fmt.Errorf("%s: corrupt golden file: %w", path, err)
	}
	var problems []string
	if committed.Schema != csp.WireSchema || committed.Harness != HarnessSchema {
		problems = append(problems, fmt.Sprintf(
			"%s: golden schema %d/%d does not match this build's %d/%d (re-bless after a schema bump)",
			path, committed.Schema, committed.Harness, csp.WireSchema, HarnessSchema))
		return problems, nil
	}
	byName := map[string]*Artifact{}
	for i := range committed.Artifacts {
		byName[committed.Artifacts[i].Name] = &committed.Artifacts[i]
	}
	seen := map[string]bool{}
	for i := range artifacts {
		got := &artifacts[i]
		seen[got.Name] = true
		want, ok := byName[got.Name]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: scenario %q has no golden artifact (bless to add)", path, got.Name))
			continue
		}
		if diff := diffArtifact(got, want); diff != "" {
			problems = append(problems, fmt.Sprintf("%s: scenario %q diverged from golden: %s", path, got.Name, diff))
		}
	}
	for name := range byName {
		if !seen[name] {
			problems = append(problems, fmt.Sprintf("%s: golden artifact %q has no scenario (bless to drop)", path, name))
		}
	}
	return problems, nil
}

// diffArtifact compares two artifacts by canonical JSON and names the
// first top-level field that differs — enough to aim a human at the
// divergence without reprinting both documents.
func diffArtifact(got, want *Artifact) string {
	g, err1 := json.Marshal(got)
	w, err2 := json.Marshal(want)
	if err1 != nil || err2 != nil {
		return fmt.Sprintf("marshal: %v / %v", err1, err2)
	}
	if bytes.Equal(g, w) {
		return ""
	}
	var gm, wm map[string]json.RawMessage
	if json.Unmarshal(g, &gm) != nil || json.Unmarshal(w, &wm) != nil {
		return "artifacts differ"
	}
	for _, key := range []string{"kind", "spec_hash", "ok", "error", "engines", "engines_agree", "runtime_subset", "deadlock", "asserts", "refine", "proofs", "hierarchy"} {
		if !bytes.Equal(gm[key], wm[key]) {
			return fmt.Sprintf("field %q: got %s, golden %s", key, clip(gm[key]), clip(wm[key]))
		}
	}
	return "artifacts differ"
}

func clip(raw json.RawMessage) string {
	s := string(raw)
	if s == "" {
		s = "(absent)"
	}
	if len(s) > 160 {
		s = s[:157] + "..."
	}
	return s
}
