// Journal replay: re-issue a cspserved request journal against a live
// server and verify every response reproduces — same status, same
// normalized digest. This is the restart-determinism proof: record a
// workload with -journal, restart the server over the same store, and
// `cspscen replay` demands byte-identical behaviour (modulo the
// documented volatile fields; see internal/journal.VolatileKeys).
package scenario

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"

	"cspsat/internal/journal"
)

// ReplayResult summarises one journal replay.
type ReplayResult struct {
	// Meta is the journal's provenance header.
	Meta journal.Meta
	// Records is how many exchanges were replayed; Torn reports the
	// journal ended in a torn final record (the valid prefix was used).
	Records int
	Torn    bool
	// Mismatches lists every divergence, one line per record.
	Mismatches []string
}

// OK reports a clean replay.
func (r *ReplayResult) OK() bool { return len(r.Mismatches) == 0 }

// Replay reads a journal and re-issues every record against baseURL.
// The error covers infrastructure failures (unreadable journal,
// unreachable server); response divergences land in Mismatches.
func Replay(ctx context.Context, journalPath, baseURL string, client *http.Client) (*ReplayResult, error) {
	rr, err := journal.ReadFile(journalPath)
	if err != nil {
		return nil, err
	}
	if client == nil {
		client = http.DefaultClient
	}
	base := strings.TrimRight(baseURL, "/")
	res := &ReplayResult{Meta: rr.Meta, Records: len(rr.Records), Torn: rr.Torn}
	for _, rec := range rr.Records {
		status, body, err := issue(ctx, client, base, rec)
		if err != nil {
			return nil, fmt.Errorf("replaying seq %d %s %s: %w", rec.Seq, rec.Method, rec.Path, err)
		}
		if status != rec.Status {
			res.Mismatches = append(res.Mismatches, fmt.Sprintf(
				"seq %d %s %s: status %d, recorded %d", rec.Seq, rec.Method, rec.Path, status, rec.Status))
			continue
		}
		if got := journal.Digest(body); got != rec.RespDigest {
			res.Mismatches = append(res.Mismatches, fmt.Sprintf(
				"seq %d %s %s: response digest %s, recorded %s", rec.Seq, rec.Method, rec.Path, got[:12], rec.RespDigest[:12]))
		}
	}
	return res, nil
}

func issue(ctx context.Context, client *http.Client, base string, rec journal.Record) (int, []byte, error) {
	var body io.Reader
	if len(rec.Request) > 0 {
		body = bytes.NewReader(rec.Request)
	}
	req, err := http.NewRequestWithContext(ctx, rec.Method, base+rec.Path, body)
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, data, nil
}

// CheckMeta compares a journal's provenance against a live server's
// /v1/version document (decoded into a generic map), returning a
// warning per incompatibility. A schema mismatch makes digest
// divergence expected rather than alarming, so replayers surface this
// before the per-record verdicts.
func CheckMeta(meta journal.Meta, version map[string]any) []string {
	var warnings []string
	if ws, ok := version["wire_schema"].(float64); ok && int(ws) != meta.WireSchema {
		warnings = append(warnings, fmt.Sprintf("journal wire schema %d, server %d", meta.WireSchema, int(ws)))
	}
	if sc, ok := version["store_codec"].(float64); ok && meta.StoreCodec != 0 && uint32(sc) != meta.StoreCodec {
		warnings = append(warnings, fmt.Sprintf("journal store codec %d, server %d", meta.StoreCodec, uint32(sc)))
	}
	return warnings
}
