// Observability: request counters and latency per endpoint, admission
// pressure, the module cache, and the closure layer's intern/memo
// statistics — served as JSON at /metrics and published once to expvar
// (GET /debug/vars) under the key "cspserved".
package server

import (
	"expvar"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cspsat/internal/closure/frozen"
	"cspsat/pkg/csp"
)

// endpointCounters accumulates one endpoint's request count and latency.
type endpointCounters struct {
	count        atomic.Uint64
	errors       atomic.Uint64
	latencySumMS atomic.Int64
	latencyMaxMS atomic.Int64
}

type metrics struct {
	endpoints map[string]*endpointCounters // fixed keys, no lock needed
	models    map[string]*atomic.Uint64    // fixed keys, no lock needed

	mu       sync.Mutex
	statuses map[int]uint64

	admissionWaits   atomic.Uint64
	admissionRefused atomic.Uint64
}

func newMetrics() *metrics {
	m := &metrics{
		endpoints: map[string]*endpointCounters{},
		models:    map[string]*atomic.Uint64{},
		statuses:  map[int]uint64{},
	}
	for _, kind := range []string{"traces", "check", "prove", "refine", "batch", "version"} {
		m.endpoints[kind] = &endpointCounters{}
	}
	for _, mdl := range csp.KnownModels() {
		m.models[mdl.String()] = &atomic.Uint64{}
	}
	return m
}

// recordModel counts one model-parameterised verification (a check or
// refine execution, batch items included) against its semantic model.
func (m *metrics) recordModel(mdl csp.Model) {
	if c, ok := m.models[mdl.String()]; ok {
		c.Add(1)
	}
}

func (m *metrics) record(kind string, status int, elapsed time.Duration) {
	if ep, ok := m.endpoints[kind]; ok {
		ep.count.Add(1)
		if status >= 400 {
			ep.errors.Add(1)
		}
		ms := elapsed.Milliseconds()
		ep.latencySumMS.Add(ms)
		for {
			max := ep.latencyMaxMS.Load()
			if ms <= max || ep.latencyMaxMS.CompareAndSwap(max, ms) {
				break
			}
		}
	}
	m.mu.Lock()
	m.statuses[status]++
	m.mu.Unlock()
}

// EndpointSnapshot is one endpoint's cumulative counters.
type EndpointSnapshot struct {
	Count        uint64 `json:"count"`
	Errors       uint64 `json:"errors"`
	LatencySumMS int64  `json:"latency_sum_ms"`
	LatencyMaxMS int64  `json:"latency_max_ms"`
}

// Snapshot is the /metrics document.
type Snapshot struct {
	UptimeMS         int64                       `json:"uptime_ms"`
	Ready            bool                        `json:"ready"`
	Draining         bool                        `json:"draining"`
	Inflight         int                         `json:"inflight"`
	MaxInflight      int                         `json:"max_inflight"`
	AdmissionWaits   uint64                      `json:"admission_waits"`
	AdmissionRefused uint64                      `json:"admission_refused"`
	Endpoints        map[string]EndpointSnapshot `json:"endpoints"`
	// Models counts model-parameterised verifications (check and refine,
	// batch items included) per semantic model.
	Models      map[string]uint64    `json:"models"`
	Statuses    map[string]uint64    `json:"statuses"`
	ModuleCache csp.ModuleCacheStats `json:"module_cache"`
	Closure     csp.CacheStats       `json:"closure"`
	// Frozen reports the zero-copy arena tier: arenas mapped and their
	// resident bytes, read hits served without a thaw, and thaw counts
	// (each thaw re-interns a stored trie on a write path).
	Frozen frozen.Stats `json:"frozen"`
	// Journal reports the request log, when one is attached.
	Journal *JournalSnapshot `json:"journal,omitempty"`
}

// JournalSnapshot is the /metrics view of the request journal.
type JournalSnapshot struct {
	Path    string `json:"path"`
	Records int    `json:"records"`
	Bytes   int64  `json:"bytes"`
}

// Snapshot assembles the current metrics document.
func (s *Server) Snapshot() Snapshot {
	snap := Snapshot{
		UptimeMS:         time.Since(s.start).Milliseconds(),
		Ready:            s.Ready(),
		Draining:         s.Draining(),
		Inflight:         len(s.admit),
		MaxInflight:      cap(s.admit),
		AdmissionWaits:   s.metrics.admissionWaits.Load(),
		AdmissionRefused: s.metrics.admissionRefused.Load(),
		Endpoints:        map[string]EndpointSnapshot{},
		Models:           map[string]uint64{},
		Statuses:         map[string]uint64{},
		ModuleCache:      s.cache.Stats(),
		Closure:          csp.Stats(),
		Frozen:           frozen.Snapshot(),
	}
	if s.journal != nil {
		n, b := s.journal.Stats()
		snap.Journal = &JournalSnapshot{Path: s.journal.Path(), Records: n, Bytes: b}
	}
	keys := make([]string, 0, len(s.metrics.endpoints))
	for k := range s.metrics.endpoints {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ep := s.metrics.endpoints[k]
		snap.Endpoints[k] = EndpointSnapshot{
			Count:        ep.count.Load(),
			Errors:       ep.errors.Load(),
			LatencySumMS: ep.latencySumMS.Load(),
			LatencyMaxMS: ep.latencyMaxMS.Load(),
		}
	}
	for name, c := range s.metrics.models {
		snap.Models[name] = c.Load()
	}
	s.metrics.mu.Lock()
	for code, n := range s.metrics.statuses {
		snap.Statuses[strconv.Itoa(code)] = n
	}
	s.metrics.mu.Unlock()
	return snap
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.Draining() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":    status,
		"uptime_ms": time.Since(s.start).Milliseconds(),
	})
}

// handleReadyz is the readiness probe, distinct from /healthz liveness: a
// store-backed server is not ready until its warm boot finishes, and any
// server stops being ready once it starts draining. Load balancers route
// on this; /healthz keeps answering "am I alive" throughout.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	status := "ready"
	code := http.StatusOK
	switch {
	case !s.Ready():
		status = "starting"
		code = http.StatusServiceUnavailable
	case s.Draining():
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":    status,
		"uptime_ms": time.Since(s.start).Milliseconds(),
	})
}

// expvar's registry is global and panics on duplicate names, so only the
// process's first Server publishes there (tests construct many Servers);
// /metrics always reflects its own Server.
var expvarOnce sync.Once

func publishExpvar(s *Server) {
	expvarOnce.Do(func() {
		expvar.Publish("cspserved", expvar.Func(func() any { return s.Snapshot() }))
	})
}
