// Request decoding, verification dispatch, and response encoding for the
// /v1 endpoints. The single-run endpoints (/v1/traces, /v1/check,
// /v1/prove, /v1/refine) and /v1/batch share one execution core, so a
// batch item behaves exactly like the corresponding standalone request —
// same defaults, same module cache, same error mapping. Every response
// body carries "schema" (csp.WireSchema).
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"context"

	"cspsat/internal/assertion"
	"cspsat/internal/pool"
	"cspsat/internal/value"
	"cspsat/pkg/csp"
)

// Sentinels for request-shaped failures, mapped to 400/404 by statusFor.
var (
	errBadRequest     = errors.New("bad request")
	errUnknownProcess = errors.New("unknown process")
)

// runRequest is the body of a verification request. In a batch, Kind
// selects the endpoint; standalone endpoints imply it.
type runRequest struct {
	// Kind is "traces", "check", "prove", or "refine" (batch items only).
	Kind string `json:"kind,omitempty"`
	// Source is the .csp module text.
	Source string `json:"source"`
	// Process names the root process (/v1/traces only).
	Process string `json:"process,omitempty"`
	// Engine picks the trace engine: "op" (default), "denote", "runtime".
	Engine string `json:"engine,omitempty"`
	// Model picks the semantic model: "traces" (default), "failures"
	// (/v1/check and /v1/refine).
	Model string `json:"model,omitempty"`
	// Impl and Spec name the two processes of a refinement check
	// (/v1/refine only): does Impl refine Spec?
	Impl string `json:"impl,omitempty"`
	Spec string `json:"spec,omitempty"`
	// Depth, Nat, Workers override the server defaults when positive;
	// Workers additionally accepts -1 (csp.WorkersAuto) for machine-sized
	// pools behind the adaptive serial/parallel cutover.
	Depth   int `json:"depth,omitempty"`
	Nat     int `json:"nat,omitempty"`
	Workers int `json:"workers,omitempty"`
	// MaxOnly lists only maximal traces (/v1/traces).
	MaxOnly bool `json:"max_only,omitempty"`
	// MaxTraces lowers the server's cap on how many traces the response
	// lists (/v1/traces); it can never raise it. The response marks
	// truncated listings.
	MaxTraces int `json:"max_traces,omitempty"`
	// Seed and MaxEvents drive the runtime engine (/v1/traces).
	Seed      int64 `json:"seed,omitempty"`
	MaxEvents int   `json:"max_events,omitempty"`
	// MaxLen bounds validity obligations (/v1/prove; default 3).
	MaxLen int `json:"maxlen,omitempty"`
	// TimeoutMS lowers the request budget below the server's
	// RequestTimeout; it can never raise it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// runResponse is the body of a verification response. Error and Status
// are filled on failure (Status only inside batch results, where the
// outer HTTP status cannot carry per-item codes).
type runResponse struct {
	// Schema is the wire schema version (csp.WireSchema), stamped into
	// every /v1/* response body; see DESIGN.md §3.6 for the compatibility
	// rule.
	Schema   int    `json:"schema"`
	Kind     string `json:"kind"`
	SpecHash string `json:"spec_hash,omitempty"`
	// CacheHit reports whether the module came from the module cache.
	CacheHit bool `json:"cache_hit"`
	// OK is the overall verdict: traces computed, all asserts held, all
	// proofs found, refinement holds. A completed refinement check whose
	// verdict is "does not refine" is OK=false with HTTP 200 — the verdict
	// is the answer, not a server fault.
	OK     bool   `json:"ok"`
	Error  string `json:"error,omitempty"`
	Status int    `json:"status,omitempty"`
	// Exactly one of Traces/Asserts/Proofs/Refine is set, by Kind.
	Traces  *csp.TraceSetJSON      `json:"traces,omitempty"`
	Asserts []csp.AssertResultJSON `json:"asserts,omitempty"`
	Proofs  []csp.ProveResultJSON  `json:"proofs,omitempty"`
	Refine  *csp.RefineResultJSON  `json:"refine,omitempty"`
	// Progress is the engine's final per-stage snapshot for this request.
	Progress  []csp.ProgressEventJSON `json:"progress,omitempty"`
	ElapsedMS int64                   `json:"elapsed_ms"`
}

// newRunResponse starts a response body with the schema version stamped.
func newRunResponse(kind string) *runResponse {
	return &runResponse{Schema: csp.WireSchema, Kind: kind}
}

// execute runs one verification request on an already-derived engine
// context. It returns the response and the error used for status mapping;
// on error the response still carries Kind/SpecHash/Progress for the body.
func (s *Server) execute(ctx context.Context, kind string, req runRequest) (*runResponse, error) {
	start := time.Now()
	resp := newRunResponse(kind)
	if req.Source == "" {
		return resp, fmt.Errorf("%w: missing \"source\"", errBadRequest)
	}
	nat := req.Nat
	if nat <= 0 {
		nat = s.cfg.NatWidth
	}
	depth := req.Depth
	if depth <= 0 {
		depth = s.cfg.Depth
	}
	// A request may pin a positive count or csp.WorkersAuto (-1,
	// machine-sized pools); anything else falls back to the server default.
	workers := req.Workers
	if workers <= 0 && workers != csp.WorkersAuto {
		workers = s.cfg.Workers
	}

	mod, hash, hit, err := s.cache.Load(ctx, req.Source, csp.Options{NatWidth: nat})
	resp.SpecHash = hash
	resp.CacheHit = hit
	if err != nil {
		return resp, err
	}

	var tracker csp.ProgressTracker
	defer func() {
		resp.Progress = csp.EncodeProgress(tracker.Snapshot())
		resp.ElapsedMS = time.Since(start).Milliseconds()
	}()

	switch kind {
	case "traces":
		if req.Process == "" {
			return resp, fmt.Errorf("%w: missing \"process\"", errBadRequest)
		}
		engine, err := parseEngine(req.Engine)
		if err != nil {
			return resp, err
		}
		limit := s.cfg.MaxTraces
		if req.MaxTraces > 0 && req.MaxTraces < limit {
			limit = req.MaxTraces
		}
		// Result cache first — a warm-booted module answers without
		// parsing, let alone denoting (Module.CachedTraces never forces
		// the lazy parse; mod.Proc below does).
		if res, ok := mod.CachedTraces(engine, depth, req.Process); ok {
			set := csp.EncodeTraceSet(res, req.MaxOnly, limit)
			resp.Traces = &set
			resp.OK = true
			return resp, nil
		}
		p, err := mod.Proc(req.Process)
		if err != nil {
			return resp, fmt.Errorf("%w: %v", errUnknownProcess, err)
		}
		res, err := mod.Traces(ctx, p, csp.EngineOptions{
			Engine:    engine,
			Depth:     depth,
			Workers:   workers,
			Progress:  tracker.Func(),
			Seed:      req.Seed,
			MaxEvents: req.MaxEvents,
		})
		if err != nil {
			return resp, err
		}
		mod.StoreTraces(engine, depth, req.Process, res)
		set := csp.EncodeTraceSet(res, req.MaxOnly, limit)
		resp.Traces = &set
		resp.OK = true
		return resp, nil

	case "check":
		mdl, err := parseModel(req.Model)
		if err != nil {
			return resp, err
		}
		s.metrics.recordModel(mdl)
		// The check-verdict cache (and its persisted artifact block) holds
		// the trace-model verdicts; the failures model can flip behavioural
		// and refinement verdicts, so non-default models always recompute.
		var encoded []csp.AssertResultJSON
		ok := false
		if mdl == csp.ModelTraces {
			encoded, ok = mod.CachedCheck(depth)
		}
		if !ok {
			results, err := mod.CheckAll(ctx, csp.CheckOptions{
				Model:    mdl,
				Depth:    depth,
				Workers:  workers,
				Progress: tracker.Func(),
			})
			if err != nil {
				return resp, err
			}
			encoded = csp.EncodeAssertResults(results)
			if mdl == csp.ModelTraces {
				mod.StoreCheck(depth, encoded)
			}
		}
		resp.Asserts = encoded
		resp.OK = true
		for _, r := range encoded {
			if !r.OK {
				resp.OK = false
			}
		}
		return resp, nil

	case "refine":
		if req.Impl == "" || req.Spec == "" {
			return resp, fmt.Errorf("%w: refine needs both \"impl\" and \"spec\"", errBadRequest)
		}
		mdl, err := parseModel(req.Model)
		if err != nil {
			return resp, err
		}
		s.metrics.recordModel(mdl)
		// Result cache first: a warm-booted module answers a repeat verdict
		// without parsing (the cache key is the request's process names, so
		// the lookup never forces the lazy parse).
		if res, ok := mod.CachedRefine(mdl, depth, req.Impl, req.Spec); ok {
			resp.Refine = &res
			resp.OK = res.OK
			return resp, nil
		}
		impl, err := mod.Proc(req.Impl)
		if err != nil {
			return resp, fmt.Errorf("%w: %v", errUnknownProcess, err)
		}
		spec, err := mod.Proc(req.Spec)
		if err != nil {
			return resp, fmt.Errorf("%w: %v", errUnknownProcess, err)
		}
		r, err := mod.Refine(ctx, impl, spec, csp.CheckOptions{
			Model:   mdl,
			Depth:   depth,
			Workers: workers,
		})
		if err != nil {
			return resp, err
		}
		enc := csp.EncodeRefineResult(r.RefineResult)
		mod.StoreRefine(mdl, depth, req.Impl, req.Spec, enc)
		resp.Refine = &enc
		// A failed refinement is a structured 200-with-verdict, mirroring
		// failed proof obligations: OK=false, no error, counterexample in
		// the body.
		resp.OK = enc.OK
		return resp, nil

	case "prove":
		maxLen := req.MaxLen
		if maxLen <= 0 {
			maxLen = 3
		}
		encoded, ok := mod.CachedProve(maxLen)
		if !ok {
			results, err := mod.ProveAsserts(ctx, csp.CheckOptions{
				Workers:  workers,
				Progress: tracker.Func(),
				Validity: &assertion.ValidityConfig{
					MaxLen: maxLen,
					DefaultDom: value.Union{
						A: value.Nat{SampleWidth: nat},
						B: value.NewEnum(value.Sym("ACK"), value.Sym("NACK")),
					},
				},
			}, nil)
			encoded = csp.EncodeProveResults(results)
			resp.Proofs = encoded
			if err != nil {
				return resp, err
			}
			mod.StoreProve(maxLen, encoded)
		}
		resp.Proofs = encoded
		resp.OK = true
		for _, r := range encoded {
			if !r.OK {
				resp.OK = false
			}
		}
		return resp, nil
	}
	return resp, fmt.Errorf("%w: unknown kind %q", errBadRequest, kind)
}

func parseEngine(name string) (csp.Engine, error) {
	switch name {
	case "", "op":
		return csp.EngineOp, nil
	case "denote":
		return csp.EngineDenote, nil
	case "runtime":
		return csp.EngineRuntime, nil
	}
	return 0, fmt.Errorf("%w: unknown engine %q", errBadRequest, name)
}

func parseModel(name string) (csp.Model, error) {
	mdl, err := csp.ParseModel(name)
	if err != nil {
		return mdl, fmt.Errorf("%w: %v", errBadRequest, err)
	}
	return mdl, nil
}

// runHandler serves one single-run endpoint: decode, admit, derive the
// request context, execute, encode — and journal the exchange when the
// server records and the outcome is deterministic.
func (s *Server) runHandler(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req runRequest
		raw, ok := s.admitAndDecode(w, r, kind, &req)
		if !ok {
			return
		}
		defer s.release()
		defer s.inflight.Done()

		ctx, cancel := s.requestContext(r, req.TimeoutMS)
		defer cancel()

		started := time.Now()
		resp, err := s.execute(ctx, kind, req)
		status := statusFor(r, err)
		if err != nil {
			resp.Error = err.Error()
		}
		s.metrics.record(kind, status, time.Since(started))
		body := marshalJSON(resp)
		writeBody(w, status, body)
		s.record(r, status, raw, body)
	}
}

// batchRequest runs many requests in one HTTP call; the batch holds one
// admission slot and fans its items across Workers goroutines.
type batchRequest struct {
	Requests []runRequest `json:"requests"`
	// Workers is the item-level parallelism (default: the server's
	// worker default, at least 1).
	Workers int `json:"workers,omitempty"`
	// TimeoutMS bounds the whole batch.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

type batchResponse struct {
	// Schema is the wire schema version (csp.WireSchema).
	Schema int `json:"schema"`
	// OK is true when every item succeeded.
	OK bool `json:"ok"`
	// Results is index-aligned with the request's Requests.
	Results   []*runResponse `json:"results"`
	ElapsedMS int64          `json:"elapsed_ms"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	raw, ok := s.admitAndDecode(w, r, "batch", &req)
	if !ok {
		return
	}
	defer s.release()
	defer s.inflight.Done()

	if len(req.Requests) == 0 {
		s.metrics.record("batch", http.StatusBadRequest, 0)
		writeJSON(w, http.StatusBadRequest, &runResponse{Schema: csp.WireSchema, Kind: "batch", Error: "empty batch"})
		return
	}

	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()

	// A request may pin a positive count or csp.WorkersAuto (-1,
	// machine-sized pools); anything else falls back to the server default.
	workers := req.Workers
	if workers <= 0 && workers != csp.WorkersAuto {
		workers = s.cfg.Workers
	}

	started := time.Now()
	results := make([]*runResponse, len(req.Requests))
	// Item failures are per-result; only cancellation aborts the pool.
	_ = pool.Run(ctx, workers, len(req.Requests), func(i int) error {
		item := req.Requests[i]
		resp, err := s.execute(ctx, item.Kind, item)
		if err != nil {
			resp.Error = err.Error()
			resp.Status = statusFor(r, err)
		}
		results[i] = resp
		return pool.Canceled(ctx)
	})

	out := batchResponse{Schema: csp.WireSchema, OK: true, Results: results, ElapsedMS: time.Since(started).Milliseconds()}
	status := http.StatusOK
	for i, res := range results {
		if res == nil {
			// Never executed: the batch was canceled first.
			err := pool.Canceled(ctx)
			res = newRunResponse(req.Requests[i].Kind)
			if err != nil {
				res.Error = err.Error()
				res.Status = statusFor(r, err)
			}
			results[i] = res
		}
		if res.Error != "" || !res.OK {
			out.OK = false
		}
		// The batch's HTTP status reflects cancellation of the batch
		// itself (all-item failure classes), not individual verdicts.
		if res.Status == http.StatusGatewayTimeout ||
			res.Status == StatusClientClosedRequest ||
			res.Status == http.StatusServiceUnavailable {
			status = res.Status
		}
	}
	s.metrics.record("batch", status, time.Since(started))
	body := marshalJSON(out)
	writeBody(w, status, body)
	// A batch is journalable only when the batch itself completed: any
	// canceled/refused item makes the aggregate response load-dependent.
	if journalable(status) {
		for _, res := range results {
			if res != nil && !journalable(statusOr200(res.Status)) {
				return
			}
		}
		s.record(r, status, raw, body)
	}
}

// statusOr200 maps a batch item's Status field (zero when the item
// succeeded) to the HTTP status it stands for.
func statusOr200(status int) int {
	if status == 0 {
		return http.StatusOK
	}
	return status
}

// admitAndDecode performs the shared front half of every verification
// endpoint: refuse while draining, read and decode the JSON body, and take
// an admission slot. On success the caller owns one slot and one inflight
// count, and receives the raw body bytes for journaling. On failure it has
// already written the response.
func (s *Server) admitAndDecode(w http.ResponseWriter, r *http.Request, kind string, into any) ([]byte, bool) {
	if s.Draining() {
		s.metrics.admissionRefused.Add(1)
		s.metrics.record(kind, http.StatusServiceUnavailable, 0)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, &runResponse{Schema: csp.WireSchema, Kind: kind, Error: "server draining"})
		return nil, false
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxSourceBytes))
	if err == nil {
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		err = dec.Decode(into)
	}
	if err != nil {
		// A malformed body is a deterministic outcome of the bytes sent, so
		// the exchange is journaled like any other 400.
		s.metrics.record(kind, http.StatusBadRequest, 0)
		body := marshalJSON(&runResponse{Schema: csp.WireSchema, Kind: kind, Error: "decoding request: " + err.Error()})
		writeBody(w, http.StatusBadRequest, body)
		s.record(r, http.StatusBadRequest, raw, body)
		return nil, false
	}
	if !s.acquire(r.Context()) {
		s.metrics.admissionRefused.Add(1)
		if r.Context().Err() != nil {
			s.metrics.record(kind, StatusClientClosedRequest, 0)
			writeJSON(w, StatusClientClosedRequest, &runResponse{Schema: csp.WireSchema, Kind: kind, Error: "client closed request"})
			return nil, false
		}
		s.metrics.record(kind, http.StatusServiceUnavailable, 0)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, &runResponse{Schema: csp.WireSchema, Kind: kind, Error: "admission limit reached"})
		return nil, false
	}
	s.inflight.Add(1)
	return raw, true
}

// marshalJSON renders a response body exactly as writeJSON has always
// encoded it (no HTML escaping, trailing newline), so handlers can hold
// the bytes they serve — the journal digests the same bytes the client
// received.
func marshalJSON(body any) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(body); err != nil {
		// Responses are plain structs of encodable fields; an error here
		// is a programming bug, reported the way the streaming encoder
		// would have: an empty body.
		return nil
	}
	return buf.Bytes()
}

func writeBody(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	writeBody(w, status, marshalJSON(body))
}
