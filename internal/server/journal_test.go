package server_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"cspsat/internal/journal"
	"cspsat/internal/server"
	"cspsat/internal/store"
	"cspsat/pkg/csp"
)

// journalFile returns the single journal a server run left in dir.
func journalFile(t testing.TB, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.cspj"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Fatalf("want exactly one journal in %s, got %v", dir, matches)
	}
	return matches[0]
}

// replayRecord re-issues one journaled exchange against a handler and
// returns the status and body it produces now.
func replayRecord(t testing.TB, h http.Handler, rec journal.Record) (int, []byte) {
	t.Helper()
	req := httptest.NewRequest(rec.Method, rec.Path, bytes.NewReader(rec.Request))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w.Code, w.Body.Bytes()
}

// TestJournalRecordRestartReplay is the journal's end-to-end contract: a
// store-backed server records a mixed workload (successes, deterministic
// request errors, a batch), a second server warm boots over the same
// store, and every journaled exchange reproduces with the same status and
// the same normalized response digest.
func TestJournalRecordRestartReplay(t *testing.T) {
	storeDir, jdir := t.TempDir(), t.TempDir()
	copier := readSpec(t, "copier.csp")
	protocol := readSpec(t, "protocol.csp")

	srv1 := server.New(server.Config{StoreDir: storeDir, JournalDir: jdir, Logf: t.Logf})
	srv1.WarmBoot(context.Background())
	h1 := srv1.Handler()

	type exchange struct {
		path string
		body map[string]any
	}
	workload := []exchange{
		{"/v1/traces", map[string]any{"source": copier, "process": "copier", "depth": 5}},
		{"/v1/check", map[string]any{"source": copier, "depth": 5}},
		{"/v1/check", map[string]any{"source": protocol, "depth": 5, "model": "failures"}},
		{"/v1/prove", map[string]any{"source": copier}},
		// Deterministic failures are journaled too: a spec that does not
		// parse, and a process name the module does not define.
		{"/v1/check", map[string]any{"source": "p = (((", "depth": 4}},
		{"/v1/traces", map[string]any{"source": copier, "process": "nosuch", "depth": 4}},
		{"/v1/batch", map[string]any{"requests": []map[string]any{
			{"kind": "check", "source": copier, "depth": 4},
			{"kind": "refine", "source": protocol, "impl": "protocol", "spec": "protonet", "depth": 4},
		}}},
	}
	for _, ex := range workload {
		code, body := postRaw(t, h1, ex.path, ex.body)
		if !journalIsRecordable(code) {
			t.Fatalf("%s returned non-journalable status %d: %s", ex.path, code, body)
		}
	}
	// A request with no source (400 from execute) and a malformed body
	// (400 straight out of the decoder) — both deterministic, both journaled.
	if code, body := postRaw(t, h1, "/v1/check", nil); code != http.StatusBadRequest {
		t.Fatalf("sourceless check: code=%d body=%s", code, body)
	}
	rec := httptest.NewRecorder()
	h1.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/check", bytes.NewReader([]byte("{not json"))))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed body: code=%d", rec.Code)
	}
	wantRecords := len(workload) + 2 // workload + sourceless 400 + malformed 400

	// /metrics surfaces the journal while it is open.
	mcode, mout := get(t, h1, "/metrics")
	if mcode != http.StatusOK {
		t.Fatalf("metrics: %d", mcode)
	}
	jm, ok := mout["journal"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing journal: %v", mout)
	}
	if int(jm["records"].(float64)) != wantRecords || jm["bytes"].(float64) == 0 {
		t.Fatalf("metrics journal snapshot: %v (want %d records)", jm, wantRecords)
	}

	if err := srv1.Close(); err != nil {
		t.Fatalf("closing server: %v", err)
	}

	rr, err := journal.ReadFile(journalFile(t, jdir))
	if err != nil {
		t.Fatalf("reading journal: %v", err)
	}
	if rr.Torn {
		t.Fatalf("clean shutdown produced a torn journal: %v", rr.TornErr)
	}
	if rr.Meta.Schema != journal.Schema || rr.Meta.WireSchema != csp.WireSchema {
		t.Fatalf("meta schema stamp: %+v", rr.Meta)
	}
	if rr.Meta.StoreCodec != store.Version {
		t.Fatalf("meta store codec = %d, want %d", rr.Meta.StoreCodec, store.Version)
	}
	if rr.Meta.Go != runtime.Version() {
		t.Fatalf("meta go = %q, want %q", rr.Meta.Go, runtime.Version())
	}
	if len(rr.Records) != wantRecords {
		t.Fatalf("journal has %d records, want %d", len(rr.Records), wantRecords)
	}
	var sawError bool
	for i, r := range rr.Records {
		if r.Seq != i+1 {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
		if r.Status >= 400 {
			sawError = true
		}
	}
	if !sawError {
		t.Fatal("workload journaled no deterministic error statuses")
	}

	// The restart: a second server over the same store directory must
	// reproduce every exchange — same status, same normalized digest.
	srv2 := server.New(server.Config{StoreDir: storeDir, Logf: t.Logf})
	srv2.WarmBoot(context.Background())
	h2 := srv2.Handler()
	for _, r := range rr.Records {
		code, body := replayRecord(t, h2, r)
		if code != r.Status {
			t.Fatalf("replay %s seq %d: status %d, recorded %d", r.Path, r.Seq, code, r.Status)
		}
		if got := journal.Digest(body); got != r.RespDigest {
			t.Fatalf("replay %s seq %d: digest mismatch\nnow      %s\nrecorded %s\nbody: %s",
				r.Path, r.Seq, got, r.RespDigest, body)
		}
	}
}

// journalIsRecordable mirrors the server's deterministic-status rule for
// the test's own sanity checks.
func journalIsRecordable(status int) bool {
	switch status {
	case http.StatusOK, http.StatusBadRequest, http.StatusNotFound, http.StatusUnprocessableEntity:
		return true
	}
	return false
}

// TestJournalTornTailReplay crashes the writer mid-record (simulated by
// truncating the file) and checks the documented recovery: the valid
// prefix survives, the reader flags the tear, and the prefix still
// replays byte-identically against a fresh server.
func TestJournalTornTailReplay(t *testing.T) {
	jdir := t.TempDir()
	copier := readSpec(t, "copier.csp")

	srv1 := server.New(server.Config{JournalDir: jdir, Logf: t.Logf})
	h1 := srv1.Handler()
	for _, depth := range []int{3, 4, 5} {
		code, body := postRaw(t, h1, "/v1/check", map[string]any{"source": copier, "depth": depth})
		if code != http.StatusOK {
			t.Fatalf("check depth %d: code=%d body=%s", depth, code, body)
		}
	}
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	path := journalFile(t, jdir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	rr, err := journal.ReadFile(path)
	if err != nil {
		t.Fatalf("torn journal must still read: %v", err)
	}
	if !rr.Torn {
		t.Fatal("truncated tail not reported as torn")
	}
	if len(rr.Records) != 2 {
		t.Fatalf("torn journal has %d records, want the 2-record prefix", len(rr.Records))
	}

	srv2 := server.New(server.Config{Logf: t.Logf})
	h2 := srv2.Handler()
	for _, r := range rr.Records {
		code, body := replayRecord(t, h2, r)
		if code != r.Status {
			t.Fatalf("replay seq %d: status %d, recorded %d", r.Seq, code, r.Status)
		}
		if got := journal.Digest(body); got != r.RespDigest {
			t.Fatalf("replay seq %d: digest mismatch", r.Seq)
		}
	}
}

// TestJournalSkipsNondeterministicStatuses checks the admission rule: a
// draining server's 503 refusals never enter the journal, while a
// deterministic decode 400 does.
func TestJournalSkipsNondeterministicStatuses(t *testing.T) {
	jdir := t.TempDir()
	srv := server.New(server.Config{JournalDir: jdir, Logf: t.Logf})
	h := srv.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/check", bytes.NewReader([]byte("nope"))))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed body: code=%d", rec.Code)
	}

	srv.BeginDrain()
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/check", bytes.NewReader([]byte(`{"source":"p = STOP\n"}`))))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining server: code=%d", rec.Code)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	rr, err := journal.ReadFile(journalFile(t, jdir))
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Records) != 1 || rr.Records[0].Status != http.StatusBadRequest {
		t.Fatalf("journal records = %+v, want exactly the deterministic 400", rr.Records)
	}
}

// TestVersionEndpoint checks the provenance stamp: wire schema, store
// codec, and the store/journal attachment flags.
func TestVersionEndpoint(t *testing.T) {
	t.Run("bare", func(t *testing.T) {
		srv := server.New(server.Config{})
		code, out := get(t, srv.Handler(), "/v1/version")
		if code != http.StatusOK {
			t.Fatalf("version: %d", code)
		}
		if out["service"] != "cspserved" {
			t.Fatalf("service = %v", out["service"])
		}
		if int(out["schema"].(float64)) != csp.WireSchema || int(out["wire_schema"].(float64)) != csp.WireSchema {
			t.Fatalf("schema stamps: %v", out)
		}
		if uint32(out["store_codec"].(float64)) != store.Version {
			t.Fatalf("store_codec = %v, want %d", out["store_codec"], store.Version)
		}
		if out["store"] != false || out["journal"] != false {
			t.Fatalf("bare server attachment flags: store=%v journal=%v", out["store"], out["journal"])
		}
		if out["go"] != runtime.Version() {
			t.Fatalf("go = %v, want %s", out["go"], runtime.Version())
		}
	})

	t.Run("attached", func(t *testing.T) {
		srv := server.New(server.Config{StoreDir: t.TempDir(), JournalDir: t.TempDir(), Logf: t.Logf})
		srv.WarmBoot(context.Background())
		defer srv.Close()
		code, out := get(t, srv.Handler(), "/v1/version")
		if code != http.StatusOK {
			t.Fatalf("version: %d", code)
		}
		if out["store"] != true || out["journal"] != true {
			t.Fatalf("attached server flags: store=%v journal=%v", out["store"], out["journal"])
		}
	})
}
