// GET /v1/version: the provenance stamp. Journals and golden scenario
// artifacts are only comparable against a compatible server — same wire
// schema, same store codec — and this endpoint is how an operator (or
// scripts/scen_smoke.sh) checks that before trusting a replay verdict.
package server

import (
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"

	"cspsat/internal/store"
	"cspsat/pkg/csp"
)

// versionResponse is the GET /v1/version body. Schema stamps the response
// itself like every /v1 body; WireSchema repeats it under the explicit
// name provenance records use.
type versionResponse struct {
	Schema  int    `json:"schema"`
	Service string `json:"service"`
	// WireSchema is the version of every /v1 response body this server
	// produces (csp.WireSchema).
	WireSchema int `json:"wire_schema"`
	// StoreCodec is the artifact codec version a -store directory is
	// written with (internal/store.Version) — reported even for storeless
	// servers, since it is a property of the build.
	StoreCodec uint32 `json:"store_codec"`
	// Store and Journal report whether this server runs with a persistent
	// artifact store / a request journal attached.
	Store   bool `json:"store"`
	Journal bool `json:"journal"`
	// Go is the toolchain that built the binary.
	Go string `json:"go"`
	// Module is the main module path@version from build info, when stamped.
	Module string `json:"module,omitempty"`
	// VCSRevision and VCSTime carry the build's VCS stamp, when present.
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
}

// buildVersion assembles the build-dependent half once; it cannot change
// while the process lives.
var buildVersion = sync.OnceValue(func() versionResponse {
	v := versionResponse{
		Schema:     csp.WireSchema,
		Service:    "cspserved",
		WireSchema: csp.WireSchema,
		StoreCodec: store.Version,
		Go:         runtime.Version(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		v.Module = bi.Main.Path
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			v.Module += "@" + bi.Main.Version
		}
		for _, st := range bi.Settings {
			switch st.Key {
			case "vcs.revision":
				v.VCSRevision = st.Value
			case "vcs.time":
				v.VCSTime = st.Value
			case "vcs.modified":
				v.VCSModified = st.Value == "true"
			}
		}
	}
	return v
})

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	s.metrics.record("version", http.StatusOK, 0)
	v := buildVersion()
	v.Store = s.storeBacked
	v.Journal = s.journal != nil
	writeJSON(w, http.StatusOK, v)
}
