package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"cspsat/internal/server"
)

// postRaw drives one endpoint and returns the raw response body, for
// byte-for-byte payload comparisons.
func postRaw(t testing.TB, h http.Handler, path string, body map[string]any) (int, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", path, bytes.NewReader(raw)))
	return rec.Code, rec.Body.Bytes()
}

// payloadField extracts one response field's raw JSON encoding, the part
// of a response that must be byte-identical across a warm restart
// (elapsed_ms, progress, and cache_hit legitimately differ).
func payloadField(t testing.TB, body []byte, field string) string {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	raw, ok := m[field]
	if !ok {
		t.Fatalf("response has no %q field: %s", field, body)
	}
	return string(raw)
}

// TestReadyz checks the readiness lifecycle: storeless servers are born
// ready; store-backed servers report "starting" until WarmBoot finishes;
// draining flips any server to not-ready while /healthz stays live.
func TestReadyz(t *testing.T) {
	t.Run("storeless", func(t *testing.T) {
		srv := server.New(server.Config{})
		code, out := get(t, srv.Handler(), "/readyz")
		if code != http.StatusOK || out["status"] != "ready" {
			t.Fatalf("code=%d body=%v", code, out)
		}
	})

	t.Run("store-backed", func(t *testing.T) {
		srv := server.New(server.Config{StoreDir: t.TempDir(), Logf: t.Logf})
		code, out := get(t, srv.Handler(), "/readyz")
		if code != http.StatusServiceUnavailable || out["status"] != "starting" {
			t.Fatalf("before warm boot: code=%d body=%v", code, out)
		}
		// Liveness is independent of readiness.
		if code, _ := get(t, srv.Handler(), "/healthz"); code != http.StatusOK {
			t.Fatalf("healthz not live during warm boot: %d", code)
		}
		srv.WarmBoot(context.Background())
		if code, out := get(t, srv.Handler(), "/readyz"); code != http.StatusOK || out["status"] != "ready" {
			t.Fatalf("after warm boot: code=%d body=%v", code, out)
		}
	})

	t.Run("draining", func(t *testing.T) {
		srv := server.New(server.Config{})
		srv.BeginDrain()
		code, out := get(t, srv.Handler(), "/readyz")
		if code != http.StatusServiceUnavailable || out["status"] != "draining" {
			t.Fatalf("code=%d body=%v", code, out)
		}
	})
}

// TestStoreWarmRestart simulates the operational restart: serve requests
// against a store-backed server, build a second server over the same
// directory, warm boot it, and demand (a) the store reports hits, (b) the
// replayed responses' payloads are byte-identical, and (c) /metrics
// surfaces the store counters.
func TestStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	copier := readSpec(t, "copier.csp")
	protocol := readSpec(t, "protocol.csp")

	requests := []struct {
		path  string
		field string
		body  map[string]any
	}{
		{"/v1/traces", "traces", map[string]any{"source": copier, "process": "copier", "depth": 5}},
		{"/v1/check", "asserts", map[string]any{"source": copier, "depth": 5}},
		{"/v1/check", "asserts", map[string]any{"source": protocol, "depth": 5}},
		{"/v1/prove", "proofs", map[string]any{"source": copier}},
	}

	srv1 := server.New(server.Config{StoreDir: dir, Logf: t.Logf})
	srv1.WarmBoot(context.Background())
	cold := make([]string, len(requests))
	for i, rq := range requests {
		code, body := postRaw(t, srv1.Handler(), rq.path, rq.body)
		if code != http.StatusOK {
			t.Fatalf("cold %s: code=%d body=%s", rq.path, code, body)
		}
		cold[i] = payloadField(t, body, rq.field)
	}

	srv2 := server.New(server.Config{StoreDir: dir, Logf: t.Logf})
	loaded, skipped := srv2.WarmBoot(context.Background())
	if loaded == 0 || skipped != 0 {
		t.Fatalf("warm boot loaded=%d skipped=%d", loaded, skipped)
	}
	for i, rq := range requests {
		code, body := postRaw(t, srv2.Handler(), rq.path, rq.body)
		if code != http.StatusOK {
			t.Fatalf("warm %s: code=%d body=%s", rq.path, code, body)
		}
		if got := payloadField(t, body, rq.field); got != cold[i] {
			t.Fatalf("warm %s payload differs:\ncold %s\nwarm %s", rq.path, cold[i], got)
		}
		// The warm responses come from the rehydrated module cache.
		if hit := payloadField(t, body, "cache_hit"); hit != "true" {
			t.Fatalf("warm %s: cache_hit=%s", rq.path, hit)
		}
	}

	st := srv2.Cache().Stats()
	if st.StoreHits == 0 {
		t.Fatalf("warm server reports no store hits: %+v", st)
	}
	code, out := get(t, srv2.Handler(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	mc, ok := out["module_cache"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing module_cache: %v", out)
	}
	for _, field := range []string{"store_hits", "store_misses", "store_corrupt", "store_puts", "store_bytes_read", "store_bytes_written"} {
		if _, ok := mc[field]; !ok {
			t.Fatalf("metrics module_cache missing %s: %v", field, mc)
		}
	}
	if mc["store_hits"].(float64) == 0 {
		t.Fatalf("metrics store_hits is zero: %v", mc)
	}
	if mc["store_mapped"].(float64) == 0 {
		t.Fatalf("metrics store_mapped is zero (warm hits bypassed the mapped path): %v", mc)
	}
	// The warm responses above were served off frozen arenas without a
	// thaw, so the frozen tier reports mapped arenas and read hits.
	// (Counters are process-global; >0 is the strongest safe assertion.)
	fz, ok := out["frozen"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing frozen: %v", out)
	}
	for _, field := range []string{"arenas_opened", "arena_bytes", "hits"} {
		if v, ok := fz[field].(float64); !ok || v == 0 {
			t.Fatalf("metrics frozen %s missing or zero: %v", field, fz)
		}
	}
}

// TestStoreCorruptArtifactServes flips a byte in a stored artifact and
// checks the server recomputes: the request succeeds, the verdicts match,
// the file is quarantined, and store_corrupt is counted.
func TestStoreCorruptArtifactServes(t *testing.T) {
	dir := t.TempDir()
	copier := readSpec(t, "copier.csp")
	body := map[string]any{"source": copier, "depth": 5}

	srv1 := server.New(server.Config{StoreDir: dir, Logf: t.Logf})
	srv1.WarmBoot(context.Background())
	code, cold := postRaw(t, srv1.Handler(), "/v1/check", body)
	if code != http.StatusOK {
		t.Fatalf("cold check: %d", code)
	}

	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("store dir: %v entries, err=%v", len(entries), err)
	}
	path := filepath.Join(dir, entries[0].Name())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	srv2 := server.New(server.Config{StoreDir: dir, Logf: t.Logf})
	loaded, skipped := srv2.WarmBoot(context.Background())
	if loaded != 0 || skipped != 1 {
		t.Fatalf("warm boot over corrupt store: loaded=%d skipped=%d", loaded, skipped)
	}
	code, warm := postRaw(t, srv2.Handler(), "/v1/check", body)
	if code != http.StatusOK {
		t.Fatalf("check after corruption: code=%d body=%s", code, warm)
	}
	if payloadField(t, warm, "asserts") != payloadField(t, cold, "asserts") {
		t.Fatalf("recomputed verdicts differ from clean compute")
	}
	if st := srv2.Cache().Stats(); st.StoreCorrupt == 0 {
		t.Fatalf("corruption not counted: %+v", st)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("corrupt artifact not quarantined: %v", err)
	}
}
