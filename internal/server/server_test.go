package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"cspsat/internal/server"
)

// readSpec loads one of the paper's specs from the repository.
func readSpec(t testing.TB, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "specs", name))
	if err != nil {
		t.Fatalf("reading %s: %v", name, err)
	}
	return string(data)
}

// post drives one endpoint of a handler directly (no network), returning
// the status and decoded body. ctx, when non-nil, becomes the request
// context — the tests use it to simulate client disconnects.
func post(t testing.TB, h http.Handler, ctx context.Context, path string, body map[string]any) (int, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(raw))
	if ctx != nil {
		req = req.WithContext(ctx)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("%s: decoding response %q: %v", path, rec.Body.String(), err)
	}
	return rec.Code, out
}

func get(t testing.TB, h http.Handler, path string) (int, map[string]any) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("%s: decoding response %q: %v", path, rec.Body.String(), err)
	}
	return rec.Code, out
}

func TestEndpoints(t *testing.T) {
	srv := server.New(server.Config{})
	h := srv.Handler()
	copier := readSpec(t, "copier.csp")

	t.Run("traces", func(t *testing.T) {
		code, out := post(t, h, nil, "/v1/traces", map[string]any{
			"source": copier, "process": "copier", "depth": 4, "workers": 2,
		})
		if code != http.StatusOK || out["ok"] != true {
			t.Fatalf("code=%d body=%v", code, out)
		}
		tr := out["traces"].(map[string]any)
		if tr["engine"] != "op" || tr["count"].(float64) <= 1 {
			t.Fatalf("trace payload: %v", tr)
		}
		if out["spec_hash"] == "" {
			t.Fatal("missing spec_hash")
		}
		// The explorer must have reported progress for the response.
		if _, ok := out["progress"]; !ok {
			t.Fatalf("missing progress snapshot: %v", out)
		}
	})

	t.Run("check with module cache hit", func(t *testing.T) {
		code, out := post(t, h, nil, "/v1/check", map[string]any{"source": copier, "depth": 6})
		if code != http.StatusOK || out["ok"] != true {
			t.Fatalf("code=%d body=%v", code, out)
		}
		if n := len(out["asserts"].([]any)); n != 5 {
			t.Fatalf("want 5 assert results, got %d", n)
		}
		// Same source again: must be served from the module cache.
		_, out = post(t, h, nil, "/v1/check", map[string]any{"source": copier, "depth": 6})
		if out["cache_hit"] != true {
			t.Fatalf("second load of the same source missed the cache: %v", out)
		}
	})

	t.Run("prove", func(t *testing.T) {
		code, out := post(t, h, nil, "/v1/prove", map[string]any{"source": copier})
		if code != http.StatusOK || out["ok"] != true {
			t.Fatalf("code=%d body=%v", code, out)
		}
		methods := map[string]bool{}
		for _, p := range out["proofs"].([]any) {
			pr := p.(map[string]any)
			if pr["ok"] != true {
				t.Fatalf("unproved: %v", pr)
			}
			methods[pr["method"].(string)] = true
		}
		if !methods["network glue"] {
			t.Fatalf("no network-glue proof among %v", methods)
		}
	})

	t.Run("batch", func(t *testing.T) {
		code, out := post(t, h, nil, "/v1/batch", map[string]any{
			"requests": []map[string]any{
				{"kind": "check", "source": copier, "depth": 5},
				{"kind": "traces", "source": copier, "process": "copysys", "depth": 4},
				{"kind": "prove", "source": copier},
			},
			"workers": 3,
		})
		if code != http.StatusOK || out["ok"] != true {
			t.Fatalf("code=%d body=%v", code, out)
		}
		if n := len(out["results"].([]any)); n != 3 {
			t.Fatalf("want 3 results, got %d", n)
		}
	})

	t.Run("violated assert reports ok=false with 200", func(t *testing.T) {
		code, out := post(t, h, nil, "/v1/check", map[string]any{
			"source": "p = a!1 -> p\nassert p sat #a <= 1\n", "depth": 4,
		})
		if code != http.StatusOK || out["ok"] != false {
			t.Fatalf("code=%d body=%v", code, out)
		}
		sat := out["asserts"].([]any)[0].(map[string]any)["sat"].(map[string]any)
		if sat["counterexample"] == nil {
			t.Fatalf("missing counterexample: %v", sat)
		}
	})

	t.Run("astronomical trace set is truncated, not materialised", func(t *testing.T) {
		// The philosophers net at depth 30 holds ~3e14 traces in a tiny
		// shared trie; listing them all would OOM (and used to panic in
		// the slice preallocation). The cap must hold.
		code, out := post(t, h, nil, "/v1/traces", map[string]any{
			"source":     readSpec(t, "philosophers.csp"),
			"process":    "safe",
			"depth":      30,
			"max_traces": 50,
		})
		if code != http.StatusOK || out["ok"] != true {
			t.Fatalf("code=%d error=%v", code, out["error"])
		}
		tr := out["traces"].(map[string]any)
		if tr["truncated"] != true {
			t.Fatalf("listing not marked truncated: count=%v len=%d", tr["count"], len(tr["traces"].([]any)))
		}
		if n := len(tr["traces"].([]any)); n != 50 {
			t.Fatalf("cap not applied: %d traces listed", n)
		}
		if tr["count"].(float64) < 1e12 {
			t.Fatalf("full count not reported: %v", tr["count"])
		}
	})

	t.Run("error mapping", func(t *testing.T) {
		for _, tc := range []struct {
			path string
			body map[string]any
			want int
		}{
			{"/v1/check", map[string]any{"source": "p = (("}, http.StatusBadRequest},
			{"/v1/traces", map[string]any{"source": copier, "process": "nosuch"}, http.StatusNotFound},
			{"/v1/traces", map[string]any{"source": copier}, http.StatusBadRequest},
			{"/v1/check", map[string]any{}, http.StatusBadRequest},
			{"/v1/traces", map[string]any{"source": copier, "process": "copier", "engine": "quantum"}, http.StatusBadRequest},
			{"/v1/batch", map[string]any{"requests": []map[string]any{}}, http.StatusBadRequest},
		} {
			code, out := post(t, h, nil, tc.path, tc.body)
			if code != tc.want {
				t.Errorf("%s %v: code=%d want %d (%v)", tc.path, tc.body, code, tc.want, out)
			}
		}
	})

	t.Run("metrics", func(t *testing.T) {
		code, out := get(t, h, "/metrics")
		if code != http.StatusOK {
			t.Fatalf("metrics: %d", code)
		}
		mc := out["module_cache"].(map[string]any)
		if mc["hits"].(float64) < 1 {
			t.Fatalf("no module cache hits recorded: %v", mc)
		}
		eps := out["endpoints"].(map[string]any)
		for _, kind := range []string{"traces", "check", "prove", "batch"} {
			if eps[kind].(map[string]any)["count"].(float64) < 1 {
				t.Errorf("endpoint %s unreported: %v", kind, eps[kind])
			}
		}
		if _, ok := out["closure"].(map[string]any)["InternedNodes"]; !ok {
			t.Fatalf("closure stats missing: %v", out["closure"])
		}
	})

	t.Run("healthz", func(t *testing.T) {
		code, out := get(t, h, "/healthz")
		if code != http.StatusOK || out["status"] != "ok" {
			t.Fatalf("healthz: %d %v", code, out)
		}
	})
}

// TestRequestDeadline checks that an expiring per-request budget surfaces
// as 504 with the deadline cause in the error, not a generic cancel.
func TestRequestDeadline(t *testing.T) {
	srv := server.New(server.Config{})
	h := srv.Handler()
	mult := readSpec(t, "multiplier.csp")
	// Exploring the multiplier at depth 12 takes several seconds (its
	// states carry data, defeating the memo); the 30ms budget must cut
	// the exploration short.
	code, out := post(t, h, nil, "/v1/traces", map[string]any{
		"source": mult, "process": "multiplier", "depth": 12, "timeout_ms": 30,
	})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("code=%d error=%v", code, out["error"])
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "run deadline exceeded") {
		t.Fatalf("error does not name the deadline: %q", msg)
	}
}

// TestClientDisconnect checks that a client hanging up mid-request maps
// to 499 — and, more importantly, that the engines unwind cleanly (the
// partests suite checks shard consistency after exactly this pattern).
func TestClientDisconnect(t *testing.T) {
	srv := server.New(server.Config{})
	h := srv.Handler()
	mult := readSpec(t, "multiplier.csp")
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	code, out := post(t, h, ctx, "/v1/traces", map[string]any{
		"source": mult, "process": "multiplier", "depth": 12,
	})
	if code != server.StatusClientClosedRequest {
		t.Fatalf("code=%d error=%v", code, out["error"])
	}
}

// TestAdmissionLimit fills the semaphore with a slow request and checks
// that the excess request is refused with 503 once AdmissionWait expires.
func TestAdmissionLimit(t *testing.T) {
	srv := server.New(server.Config{
		MaxInflight:    1,
		AdmissionWait:  50 * time.Millisecond,
		RequestTimeout: 2 * time.Second,
	})
	h := srv.Handler()
	mult := readSpec(t, "multiplier.csp")

	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(started)
		// Holds the only slot for ~500ms.
		post(t, h, nil, "/v1/traces", map[string]any{
			"source": mult, "process": "multiplier", "depth": 12, "timeout_ms": 500,
		})
	}()
	<-started
	time.Sleep(100 * time.Millisecond) // let the slow request take the slot
	code, out := post(t, h, nil, "/v1/check", map[string]any{"source": readSpec(t, "copier.csp")})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("over-admission request: code=%d body=%v", code, out)
	}
	wg.Wait()
	if snap := srv.Snapshot(); snap.AdmissionRefused < 1 {
		t.Fatalf("admission refusal not counted: %+v", snap)
	}
}

// TestGracefulDrain starts a deliberately slow request, begins a drain,
// and checks the three lifecycle properties: new requests are refused
// with 503, the in-flight request still completes (here: with its own
// 504, proving it was not hard-killed by the drain), and DrainDone only
// closes after it finished.
func TestGracefulDrain(t *testing.T) {
	srv := server.New(server.Config{RequestTimeout: 2 * time.Second})
	h := srv.Handler()
	mult := readSpec(t, "multiplier.csp")

	type result struct {
		code int
		body map[string]any
	}
	slow := make(chan result, 1)
	go func() {
		code, out := post(t, h, nil, "/v1/traces", map[string]any{
			"source": mult, "process": "multiplier", "depth": 12, "timeout_ms": 600,
		})
		slow <- result{code, out}
	}()
	time.Sleep(100 * time.Millisecond) // the slow request is now in-flight

	srv.BeginDrain()
	if code, _ := get(t, h, "/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: %d", code)
	}
	code, out := post(t, h, nil, "/v1/check", map[string]any{"source": readSpec(t, "copier.csp")})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: code=%d body=%v", code, out)
	}

	done := srv.DrainDone()
	select {
	case <-done:
		t.Fatal("DrainDone closed while a request was still in flight")
	case <-time.After(50 * time.Millisecond):
	}

	r := <-slow
	if r.code != http.StatusGatewayTimeout {
		t.Fatalf("in-flight request after drain: code=%d error=%v", r.code, r.body["error"])
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("DrainDone did not close after the last request finished")
	}
}

// TestAbortCancelsInflight checks the forced half of shutdown: Abort cuts
// a running request (503, interrupted cause) and the server stays
// consistent for later traffic — the shard-validity guarantee at work.
func TestAbortCancelsInflight(t *testing.T) {
	srv := server.New(server.Config{RequestTimeout: 10 * time.Second})
	h := srv.Handler()
	mult := readSpec(t, "multiplier.csp")

	type result struct {
		code int
		body map[string]any
	}
	slow := make(chan result, 1)
	go func() {
		code, out := post(t, h, nil, "/v1/traces", map[string]any{
			"source": mult, "process": "multiplier", "depth": 12,
		})
		slow <- result{code, out}
	}()
	time.Sleep(100 * time.Millisecond)
	srv.Abort()
	r := <-slow
	if r.code != http.StatusServiceUnavailable {
		t.Fatalf("aborted request: code=%d error=%v", r.code, r.body["error"])
	}
	if msg, _ := r.body["error"].(string); !strings.Contains(msg, "run interrupted") {
		t.Fatalf("aborted request error does not name the interrupt: %q", msg)
	}
}

// TestConcurrentMixedLoad hammers every endpoint concurrently over two
// specs — the -race configuration CI runs is the acceptance criterion for
// the serving path sharing intern shards across requests.
func TestConcurrentMixedLoad(t *testing.T) {
	srv := server.New(server.Config{MaxInflight: 8, Workers: 2})
	h := srv.Handler()
	copier := readSpec(t, "copier.csp")
	protocol := readSpec(t, "protocol.csp")

	const rounds = 6
	var wg sync.WaitGroup
	errs := make(chan string, rounds*4)
	for i := 0; i < rounds; i++ {
		reqs := []struct {
			path string
			body map[string]any
		}{
			{"/v1/check", map[string]any{"source": copier, "depth": 5}},
			{"/v1/traces", map[string]any{"source": protocol, "process": "protocol", "depth": 5, "workers": 2}},
			{"/v1/batch", map[string]any{"requests": []map[string]any{
				{"kind": "check", "source": protocol, "depth": 5},
				{"kind": "traces", "source": copier, "process": "copier", "depth": 5},
			}}},
		}
		if i == 0 {
			// One prover is enough for race coverage of the prove path;
			// a prover per round multiplies the suite's wall clock for no
			// extra interleaving.
			reqs = append(reqs, struct {
				path string
				body map[string]any
			}{"/v1/prove", map[string]any{"source": copier}})
		}
		for _, req := range reqs {
			wg.Add(1)
			go func(path string, body map[string]any) {
				defer wg.Done()
				code, out := post(t, h, nil, path, body)
				if code != http.StatusOK || out["ok"] != true {
					errs <- fmt.Sprintf("%s: code=%d body=%v", path, code, out)
				}
			}(req.path, req.body)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	snap := srv.Snapshot()
	if snap.ModuleCache.Hits == 0 {
		t.Fatalf("concurrent same-spec load produced no module cache hits: %+v", snap.ModuleCache)
	}
	if snap.Closure.MemoHits == 0 {
		t.Fatalf("no operator memo hits across requests: %+v", snap.Closure)
	}
}
