// Package server is the long-running HTTP verification service over
// pkg/csp: cspserved. It turns the one-shot CLI workload — load a spec,
// run a check, exit — into a resident process that amortises the
// hash-consed intern tables across requests:
//
//   - POST /v1/traces   enumerate visible traces of a process
//   - POST /v1/check    model-check a module's assert clauses
//   - POST /v1/prove    synthesise and check §2.1-style proofs
//   - POST /v1/refine   check refinement impl ⊑ spec under a semantic
//     model ("traces" or "failures"); a failed refinement is a 200 with
//     the counterexample in the body
//   - POST /v1/batch    many of the above in one request
//   - GET  /metrics     request counters, latency, module-cache and
//     closure-cache statistics (also published to expvar)
//   - GET  /healthz     liveness + draining state
//   - /debug/pprof/...  the standard Go profiler endpoints
//
// Three properties make it safe to serve heavy concurrent traffic
// (DESIGN.md §3.3):
//
//  1. A module cache keyed by source hash: repeated specs reuse canonical
//     interned tries, so every request after the first runs against warm
//     memo tables.
//  2. Semaphore-based admission ahead of the engines' worker pools: at
//     most MaxInflight requests hold engines at once; excess requests
//     wait briefly, then are refused with 503 rather than queueing
//     unboundedly.
//  3. Per-request deadlines and cancellation causes: a request budget
//     expiring surfaces as 504 (csperr.ErrDeadline), a client hanging up
//     as 499, and a server drain as 503 (csperr.ErrInterrupted) — relying
//     on the engines' guarantee that cancellation leaves the intern
//     shards valid.
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cspsat/internal/csperr"
	"cspsat/internal/journal"
	"cspsat/internal/store"
	"cspsat/pkg/csp"
)

// StatusClientClosedRequest is the nginx-convention status for "the client
// disconnected before we could answer"; Go's stdlib has no name for it.
const StatusClientClosedRequest = 499

// Config tunes a Server. The zero value serves with the documented
// defaults.
type Config struct {
	// Depth is the default trace-length bound for requests that leave
	// depth zero (default csp.DefaultDepth).
	Depth int
	// NatWidth is the default NAT sampling width (default 3).
	NatWidth int
	// Workers is the default per-request engine worker count (default 1,
	// i.e. serial engines; concurrency then comes from serving requests
	// in parallel).
	Workers int
	// RequestTimeout bounds each request's engine time (default 30s).
	// Clients may ask for less via timeout_ms, never for more.
	RequestTimeout time.Duration
	// MaxInflight is the admission semaphore's capacity: how many
	// requests may hold engines concurrently (default 2×GOMAXPROCS).
	MaxInflight int
	// AdmissionWait is how long an arriving request waits for a semaphore
	// slot before 503 (default 10s, capped by the request budget).
	AdmissionWait time.Duration
	// CacheCapacity bounds the module cache (default
	// csp.DefaultModuleCacheCapacity).
	CacheCapacity int
	// MaxSourceBytes caps a request body (default 1 MiB).
	MaxSourceBytes int64
	// MaxTraces caps how many traces a /v1/traces response lists (default
	// 10000). Trace sets grow exponentially with depth while their tries
	// stay small, so an uncapped listing of a deep set would exhaust
	// memory long before the wire; requests may lower the cap via
	// max_traces, never raise it.
	MaxTraces int
	// StoreDir, when non-empty, attaches an on-disk artifact store as the
	// module cache's second tier (memory LRU → disk → compile): compiled
	// modules and their results survive restarts, and WarmBoot rehydrates
	// them on start. A store that cannot be opened is logged and the
	// server runs storeless — persistence is never fatal.
	StoreDir string
	// JournalDir, when non-empty, appends every deterministic /v1/*
	// request (status 200/400/404/422 — not admission refusals,
	// cancellations, or timeouts, whose outcomes depend on server load) to
	// a checksummed journal file in that directory, one file per server
	// run, recording the request body and a digest of the normalized
	// response. `cspscen replay` re-issues a journal against a restarted
	// store-backed server and verifies the responses reproduce
	// byte-identically (internal/journal documents the volatile fields
	// excluded from the digest). A journal that cannot be created is
	// logged and the server runs unjournaled — recording is never fatal.
	JournalDir string
	// Logf receives operational log lines (store warm boot, corrupt
	// artifacts). Nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Depth <= 0 {
		c.Depth = csp.DefaultDepth
	}
	if c.NatWidth <= 0 {
		c.NatWidth = 3
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.AdmissionWait <= 0 {
		c.AdmissionWait = 10 * time.Second
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 1 << 20
	}
	if c.MaxTraces <= 0 {
		c.MaxTraces = 10000
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the HTTP verification service. Construct with New; it is
// ready to serve once its Handler is mounted.
type Server struct {
	cfg     Config
	cache   *csp.ModuleCache
	admit   chan struct{}
	mux     *http.ServeMux
	metrics *metrics
	start   time.Time

	// journal, when non-nil, records deterministic request/response
	// exchanges for later replay; storeBacked feeds /v1/version.
	journal     *journal.Writer
	storeBacked bool

	// ready gates /readyz: servers without a store are born ready; a
	// store-backed server reports ready only once WarmBoot has finished
	// (successfully or not), so load balancers keep traffic off a cold
	// instance that is still rehydrating artifacts.
	ready atomic.Bool

	// hardCtx is canceled by Abort to cut every in-flight request's
	// engine context during a forced shutdown.
	hardCtx    context.Context
	hardCancel context.CancelCauseFunc

	// draining refuses new work while in-flight requests finish.
	mu       sync.Mutex
	draining bool

	// inflight tracks requests holding admission slots, so a graceful
	// shutdown can wait for the engines themselves (not just the
	// connections, which http.Server.Shutdown watches).
	inflight sync.WaitGroup
}

// New builds a Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   csp.NewModuleCache(cfg.CacheCapacity),
		admit:   make(chan struct{}, cfg.MaxInflight),
		mux:     http.NewServeMux(),
		metrics: newMetrics(),
		start:   time.Now(),
	}
	s.hardCtx, s.hardCancel = context.WithCancelCause(context.Background())

	s.ready.Store(true)
	if cfg.StoreDir != "" {
		if st, err := csp.OpenStore(cfg.StoreDir); err != nil {
			cfg.Logf("cspserved: opening store %s: %v (serving without persistence)", cfg.StoreDir, err)
		} else {
			s.cache.SetStore(st, cfg.Logf)
			s.storeBacked = true
			s.ready.Store(false) // until WarmBoot finishes
		}
	}
	if cfg.JournalDir != "" {
		if jw, err := openJournal(cfg.JournalDir, s.storeBacked, s.start); err != nil {
			cfg.Logf("cspserved: opening journal in %s: %v (serving without request log)", cfg.JournalDir, err)
		} else {
			s.journal = jw
			cfg.Logf("cspserved: journaling requests to %s", jw.Path())
		}
	}

	s.mux.HandleFunc("POST /v1/traces", s.runHandler("traces"))
	s.mux.HandleFunc("POST /v1/check", s.runHandler("check"))
	s.mux.HandleFunc("POST /v1/prove", s.runHandler("prove"))
	s.mux.HandleFunc("POST /v1/refine", s.runHandler("refine"))
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/version", s.handleVersion)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	publishExpvar(s)
	return s
}

// openJournal creates this run's journal file inside dir (created if
// missing), named by the server's start time so successive runs never
// collide and sort chronologically.
func openJournal(dir string, storeBacked bool, start time.Time) (*journal.Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	meta := journal.Meta{
		WireSchema: csp.WireSchema,
		Go:         runtime.Version(),
		Start:      start.UnixNano(),
	}
	if storeBacked {
		meta.StoreCodec = store.Version
	}
	name := fmt.Sprintf("requests-%s-%d.cspj", start.UTC().Format("20060102T150405"), os.Getpid())
	return journal.Create(filepath.Join(dir, name), meta)
}

// journalable reports whether a response with this status is a
// deterministic function of the request against this store state — the
// admission class (503), cancellation class (499/504), and internal
// faults are functions of load and timing, so recording them would make
// every faithful replay a mismatch.
func journalable(status int) bool {
	switch status {
	case http.StatusOK, http.StatusBadRequest, http.StatusNotFound, http.StatusUnprocessableEntity:
		return true
	}
	return false
}

// record journals one answered exchange; a nil journal or a non-journalable
// status makes it a no-op. Journal write trouble is logged once per cause,
// never surfaced to the client.
func (s *Server) record(r *http.Request, status int, reqBody, respBody []byte) {
	if s.journal == nil || !journalable(status) {
		return
	}
	err := s.journal.Append(journal.Record{
		Time:       time.Now().UnixNano(),
		Method:     r.Method,
		Path:       r.URL.Path,
		Status:     status,
		Request:    reqBody,
		RespDigest: journal.Digest(respBody),
		RespBytes:  len(respBody),
	})
	if err != nil {
		s.cfg.Logf("cspserved: journal append failed: %v", err)
	}
}

// Close releases the server's owned resources (today: the journal file).
// It does not drain; call BeginDrain/DrainDone first for a graceful stop.
func (s *Server) Close() error {
	if s.journal == nil {
		return nil
	}
	return s.journal.Close()
}

// Handler returns the service's root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the module cache (for tests and metrics).
func (s *Server) Cache() *csp.ModuleCache { return s.cache }

// WarmBoot rehydrates every artifact in the configured store into the
// module cache and then marks the server ready. It is safe (and a no-op
// beyond the ready flip) without a store. Store trouble during the boot is
// logged per artifact and never fatal: the server comes up ready either
// way, at worst cold.
func (s *Server) WarmBoot(ctx context.Context) (loaded, skipped int) {
	defer s.ready.Store(true)
	loaded, skipped, err := s.cache.WarmBoot(ctx)
	if err != nil {
		s.cfg.Logf("cspserved: warm boot interrupted: %v (%d loaded, %d skipped)", err, loaded, skipped)
		return loaded, skipped
	}
	if loaded+skipped > 0 {
		s.cfg.Logf("cspserved: warm boot: %d modules rehydrated, %d artifacts skipped", loaded, skipped)
	}
	return loaded, skipped
}

// Ready reports whether the server has finished warm boot (always true
// for storeless servers).
func (s *Server) Ready() bool { return s.ready.Load() }

// BeginDrain flips the server into draining mode: /healthz reports
// "draining" and new verification requests are refused with 503, while
// requests already admitted keep running. Call it when SIGTERM arrives,
// before http.Server.Shutdown.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// DrainDone returns a channel closed once every admitted request has
// finished. Callers race it against their drain deadline.
func (s *Server) DrainDone() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	return done
}

// Abort hard-cancels every in-flight request's engine context. The
// engines unwind with errors wrapping csperr.ErrCanceled and the intern
// shards stay valid; the affected requests answer 503.
func (s *Server) Abort() {
	s.hardCancel(fmt.Errorf("%w (server shutting down)", csperr.ErrInterrupted))
}

// acquire takes an admission slot, waiting up to AdmissionWait (but never
// past the request's own context). It reports false when the request
// should be refused instead of served.
func (s *Server) acquire(ctx context.Context) bool {
	select {
	case s.admit <- struct{}{}:
		return true
	default:
	}
	s.metrics.admissionWaits.Add(1)
	wait := time.NewTimer(s.cfg.AdmissionWait)
	defer wait.Stop()
	select {
	case s.admit <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	case <-wait.C:
		return false
	}
}

func (s *Server) release() { <-s.admit }

// requestContext derives the engine context for one admitted request:
// canceled by the client disconnecting (via r's context), by Abort, and
// by the per-request budget — the budget carries csperr.ErrDeadline as
// its cause so a 504 can be told apart from a 499.
func (s *Server) requestContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	budget := s.cfg.RequestTimeout
	if timeoutMS > 0 {
		if d := time.Duration(timeoutMS) * time.Millisecond; d < budget {
			budget = d
		}
	}
	ctx, cancel := context.WithCancelCause(r.Context())
	stopAbort := context.AfterFunc(s.hardCtx, func() {
		cancel(context.Cause(s.hardCtx))
	})
	tctx, tcancel := context.WithTimeoutCause(ctx, budget,
		fmt.Errorf("%w (request budget %v)", csperr.ErrDeadline, budget))
	return tctx, func() {
		tcancel()
		stopAbort()
		cancel(nil)
	}
}

// statusFor maps a verification error to the HTTP status the response
// carries. The cancellation refinements matter most in a long-running
// host: deadline → 504, client hung up → 499, server draining → 503.
func statusFor(r *http.Request, err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, csp.ErrParse):
		return http.StatusBadRequest
	case errors.Is(err, csp.ErrDeadline):
		return http.StatusGatewayTimeout
	case errors.Is(err, csp.ErrInterrupted):
		return http.StatusServiceUnavailable
	case errors.Is(err, csp.ErrCanceled):
		if r != nil && r.Context().Err() != nil {
			return StatusClientClosedRequest
		}
		return http.StatusServiceUnavailable
	case errors.Is(err, csp.ErrRefinementFailed):
		// A completed check whose verdict is "does not refine": the body
		// carries the structured verdict, mirroring failed obligations.
		return http.StatusOK
	case errors.Is(err, csp.ErrDepthExceeded):
		return http.StatusUnprocessableEntity
	case errors.Is(err, errBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, errUnknownProcess):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}
