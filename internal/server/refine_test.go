package server_test

import (
	"context"
	"net/http"
	"testing"

	"cspsat/internal/server"
)

// TestRefineEndpoint drives /v1/refine through its verdict matrix on the
// committed §4 separation spec: trace-model refinement of flaky against
// vend holds, failures-model refinement fails as a structured
// 200-with-verdict (the negative verdict is an answer, not a server
// fault), and the request-validation paths return their 4xx classes.
func TestRefineEndpoint(t *testing.T) {
	srv := server.New(server.Config{})
	h := srv.Handler()
	nondet := readSpec(t, "nondet.csp")

	t.Run("traces holds", func(t *testing.T) {
		code, out := post(t, h, nil, "/v1/refine", map[string]any{
			"source": nondet, "impl": "flaky", "spec": "vend", "depth": 5,
		})
		if code != http.StatusOK || out["ok"] != true {
			t.Fatalf("code=%d body=%v", code, out)
		}
		ref := out["refine"].(map[string]any)
		if ref["model"] != "traces" || ref["ok"] != true {
			t.Fatalf("refine payload: %v", ref)
		}
		if out["schema"].(float64) != 1 {
			t.Fatalf("missing schema stamp: %v", out)
		}
	})

	t.Run("failures refutes with counterexample", func(t *testing.T) {
		code, out := post(t, h, nil, "/v1/refine", map[string]any{
			"source": nondet, "impl": "flaky", "spec": "vend", "model": "failures", "depth": 5,
		})
		if code != http.StatusOK {
			t.Fatalf("negative verdict must be HTTP 200, got %d: %v", code, out)
		}
		if out["ok"] != false {
			t.Fatalf("failures refinement of flaky against vend should fail: %v", out)
		}
		ref := out["refine"].(map[string]any)
		if ref["model"] != "failures" || ref["ok"] != false {
			t.Fatalf("refine payload: %v", ref)
		}
		fail, ok := ref["failure"].(map[string]any)
		if !ok {
			t.Fatalf("no counterexample failure in %v", ref)
		}
		// The §4 counterexample: after <> the impl stably accepts nothing.
		if accs, ok := fail["acceptance"].([]any); ok && len(accs) != 0 {
			t.Fatalf("want the empty acceptance, got %v", accs)
		}
	})

	t.Run("missing process names", func(t *testing.T) {
		code, _ := post(t, h, nil, "/v1/refine", map[string]any{"source": nondet, "impl": "flaky"})
		if code != http.StatusBadRequest {
			t.Fatalf("want 400 for missing spec, got %d", code)
		}
	})

	t.Run("unknown process", func(t *testing.T) {
		code, _ := post(t, h, nil, "/v1/refine", map[string]any{
			"source": nondet, "impl": "flaky", "spec": "nosuch",
		})
		if code != http.StatusNotFound {
			t.Fatalf("want 404 for unknown process, got %d", code)
		}
	})

	t.Run("unknown model", func(t *testing.T) {
		code, _ := post(t, h, nil, "/v1/refine", map[string]any{
			"source": nondet, "impl": "flaky", "spec": "vend", "model": "divergences",
		})
		if code != http.StatusBadRequest {
			t.Fatalf("want 400 for unknown model, got %d", code)
		}
	})

	t.Run("metrics count per model", func(t *testing.T) {
		code, out := get(t, h, "/metrics")
		if code != http.StatusOK {
			t.Fatalf("metrics: %d", code)
		}
		models, ok := out["models"].(map[string]any)
		if !ok {
			t.Fatalf("metrics missing models: %v", out)
		}
		if models["traces"].(float64) < 1 || models["failures"].(float64) < 1 {
			t.Fatalf("per-model counters not incremented: %v", models)
		}
		eps := out["endpoints"].(map[string]any)
		if ep, ok := eps["refine"].(map[string]any); !ok || ep["count"].(float64) < 2 {
			t.Fatalf("refine endpoint counter: %v", eps)
		}
	})
}

// TestRefineWarmRestart is the acceptance bar for the refinement artifact
// kind: a verdict computed against a store-backed server must be replayed
// byte-identically by a second server warm-booted over the same directory
// — including the failing failures-model verdict — without recomputing.
func TestRefineWarmRestart(t *testing.T) {
	dir := t.TempDir()
	nondet := readSpec(t, "nondet.csp")
	requests := []map[string]any{
		{"source": nondet, "impl": "flaky", "spec": "vend", "depth": 5},
		{"source": nondet, "impl": "flaky", "spec": "vend", "model": "failures", "depth": 5},
		{"source": nondet, "impl": "vend", "spec": "vend", "model": "failures", "depth": 5},
	}

	srv1 := server.New(server.Config{StoreDir: dir, Logf: t.Logf})
	srv1.WarmBoot(context.Background())
	cold := make([]string, len(requests))
	for i, body := range requests {
		code, raw := postRaw(t, srv1.Handler(), "/v1/refine", body)
		if code != http.StatusOK {
			t.Fatalf("cold refine %d: code=%d body=%s", i, code, raw)
		}
		cold[i] = payloadField(t, raw, "refine")
	}

	srv2 := server.New(server.Config{StoreDir: dir, Logf: t.Logf})
	if loaded, _ := srv2.WarmBoot(context.Background()); loaded == 0 {
		t.Fatal("warm boot loaded nothing")
	}
	for i, body := range requests {
		code, raw := postRaw(t, srv2.Handler(), "/v1/refine", body)
		if code != http.StatusOK {
			t.Fatalf("warm refine %d: code=%d body=%s", i, code, raw)
		}
		if got := payloadField(t, raw, "refine"); got != cold[i] {
			t.Fatalf("warm refine %d payload differs:\ncold %s\nwarm %s", i, cold[i], got)
		}
		// The replay is served ahead of process resolution, so the module
		// cache must report a hit (the parse was never forced).
		if hit := payloadField(t, raw, "cache_hit"); hit != "true" {
			t.Fatalf("warm refine %d: cache_hit=%s", i, hit)
		}
	}
}
