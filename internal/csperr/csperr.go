// Package csperr defines the sentinel errors shared by every engine and
// surfaced (re-exported) by the pkg/csp facade. Engines wrap these with
// %w so callers can dispatch with errors.Is across package boundaries —
// the REPL prints friendlier guidance per class, the CLI tools map them to
// exit codes, and library users branch on them instead of matching
// strings.
//
// The package sits below parser, op, sem, proof, and repl in the import
// graph on purpose: the facade cannot be imported from the engines
// (import cycle), so the sentinels live here and pkg/csp aliases them.
package csperr

import "errors"

var (
	// ErrParse marks failures to lex, parse, or resolve a .csp source.
	ErrParse = errors.New("csp: parse error")

	// ErrDepthExceeded marks an engine giving up on a resource bound: the
	// τ-closure state cap, a non-stabilising approximation chain, or any
	// other exploration budget. The result is "unknown at this bound", not
	// a verdict.
	ErrDepthExceeded = errors.New("csp: exploration budget exceeded")

	// ErrCanceled marks an engine run cut short by context cancellation or
	// deadline. Partial results are discarded; shared caches remain valid
	// (interned nodes are immutable, so a canceled run can never corrupt
	// them).
	ErrCanceled = errors.New("csp: canceled")

	// ErrObligationFailed marks a proof rule whose pure side condition was
	// refuted by the bounded-validity oracle — the claim may still be
	// provable another way, but this proof object is wrong.
	ErrObligationFailed = errors.New("csp: proof obligation failed")

	// ErrDeadline refines ErrCanceled: the run's configured deadline
	// (-timeout, or a server request budget) expired. Errors carrying it
	// also match ErrCanceled, so errors.Is(err, ErrCanceled) stays the
	// coarse test and errors.Is(err, ErrDeadline) answers "why".
	ErrDeadline = errors.New("run deadline exceeded")

	// ErrInterrupted refines ErrCanceled: an external interrupt (Ctrl-C,
	// SIGTERM, a client hanging up, a host draining) canceled the run
	// before any deadline. Like ErrDeadline it rides alongside
	// ErrCanceled in the same wrapped error.
	ErrInterrupted = errors.New("run interrupted")

	// ErrRefinementFailed marks a completed refinement check whose verdict
	// is "does not refine" — the check itself succeeded and produced a
	// counterexample (a trace, and under the failures model a stable
	// failure (s, X)). Like ErrObligationFailed it describes a negative
	// verdict, not an engine fault: servers map it to a structured
	// 200-with-verdict, CLIs to a non-zero exit with the counterexample
	// printed.
	ErrRefinementFailed = errors.New("csp: refinement does not hold")
)
