package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cspsat/internal/closure"
	"cspsat/internal/trace"
	"cspsat/internal/value"
)

const testKey = "fedcba9876543210fedcba9876543210"

func testArtifact(key string) *Artifact {
	b := NewBuilder(key, "Q = b?x:NAT -> STOP", 3, 1754000000)
	ev := trace.Event{Chan: "b", Msg: value.Int(1)}
	b.AddTraceRoot("op", 4, "Q", closure.Prefix(ev, closure.Stop()), 0)
	b.AddCheck(4, []byte(`[]`))
	a, err := b.Artifact()
	if err != nil {
		panic(err)
	}
	return a
}

func TestStorePutGetDelete(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	art := testArtifact(testKey)
	n, err := s.Put(art)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if n <= 0 {
		t.Fatalf("Put wrote %d bytes", n)
	}
	got, rn, err := s.Get(testKey)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if rn != n {
		t.Fatalf("read %d bytes, wrote %d", rn, n)
	}
	if got.Source != art.Source || got.Key != art.Key {
		t.Fatalf("Get mismatch: %+v", got)
	}
	keys, err := s.Keys()
	if err != nil || len(keys) != 1 || keys[0] != testKey {
		t.Fatalf("Keys = %v, %v", keys, err)
	}
	if sz, err := s.Size(testKey); err != nil || sz != int64(n) {
		t.Fatalf("Size = %d, %v", sz, err)
	}
	if err := s.Delete(testKey); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, _, err := s.Get(testKey); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete: %v", err)
	}
	// Deleting again is fine.
	if err := s.Delete(testKey); err != nil {
		t.Fatalf("second Delete: %v", err)
	}
}

func TestStoreRejectsBadKeys(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"", "short", "../../../etc/passwd", "ABCDEF0123456789ABCDEF0123456789",
		"0123456789abcdef0123456789abcdeg", strings.Repeat("a", 200),
	} {
		if _, _, err := s.Get(key); err == nil || errors.Is(err, ErrNotFound) {
			t.Fatalf("Get(%q) accepted a bad key: %v", key, err)
		}
		if err := s.Delete(key); err == nil {
			t.Fatalf("Delete(%q) accepted a bad key", key)
		}
	}
}

func TestStoreCorruptAndQuarantine(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	art := testArtifact(testKey)
	if _, err := s.Put(art); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in place.
	p := s.Path(testKey)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(testKey); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get on flipped file: %v", err)
	}
	if err := s.Quarantine(testKey); err != nil {
		t.Fatalf("Quarantine: %v", err)
	}
	if _, _, err := s.Get(testKey); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after quarantine: %v", err)
	}
	if _, err := os.Stat(p + ".corrupt"); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	// Quarantined files do not show up in Keys.
	keys, err := s.Keys()
	if err != nil || len(keys) != 0 {
		t.Fatalf("Keys after quarantine = %v, %v", keys, err)
	}
}

func TestStoreWrongKeyFile(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Write an artifact whose payload key differs from its file name, as
	// if someone copied a file across addresses.
	other := "00000000000000000000000000000001"
	art := testArtifact(testKey)
	data := Encode(art)
	if err := os.WriteFile(filepath.Join(s.Dir(), other+Ext), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(other); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get with mismatched payload key: %v", err)
	}
}

func TestStorePutReplacesAtomically(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(testArtifact(testKey)); err != nil {
		t.Fatal(err)
	}
	bigger := testArtifact(testKey)
	bigger.AddProveForTest(8, []byte(`[{"name":"T","valid":true}]`))
	if _, err := s.Put(bigger); err != nil {
		t.Fatalf("replace Put: %v", err)
	}
	got, _, err := s.Get(testKey)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Proves) != 1 {
		t.Fatalf("replacement not visible: %+v", got)
	}
	// No temp droppings left behind.
	entries, _ := os.ReadDir(s.Dir())
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

// AddProveForTest lets a test append a prove block to an already-built
// artifact.
func (a *Artifact) AddProveForTest(maxLen int, results []byte) {
	a.Proves = append(a.Proves, ProveBlock{MaxLen: uint32(maxLen), Results: results})
}

// TestStoreGetMapped exercises the zero-copy load path: the mapped
// artifact must be byte-identical to the Get one, serve reads and thaw to
// the same canonical tries, and survive Close (unmap) without the arena
// having been copied. A corrupt file must error (the mapping is released
// internally) and ErrNotFound must pass through.
func TestStoreGetMapped(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	art := testArtifact(testKey)
	n, err := s.Put(art)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}

	mapped, mn, err := s.GetMapped(testKey)
	if err != nil {
		t.Fatalf("GetMapped: %v", err)
	}
	if mn != n {
		t.Fatalf("mapped %d bytes, wrote %d", mn, n)
	}
	if mapped.Source != art.Source || mapped.Key != art.Key {
		t.Fatalf("GetMapped mismatch: %+v", mapped)
	}
	if !bytes.Equal(mapped.Arena.Bytes(), art.Arena.Bytes()) {
		t.Fatalf("mapped arena image differs from built one")
	}
	// Frozen reads and the thaw both work off the mapping.
	v, err := mapped.RootView(mapped.TraceRoots[0])
	if err != nil {
		t.Fatalf("RootView: %v", err)
	}
	if v.Size() != 2 || v.MaxLen() != 1 {
		t.Fatalf("mapped view size=%d maxlen=%d", v.Size(), v.MaxLen())
	}
	sets, err := mapped.Sets()
	if err != nil {
		t.Fatalf("Sets: %v", err)
	}
	want, err := mapped.RootSet(sets, mapped.TraceRoots[0])
	if err != nil {
		t.Fatalf("RootSet: %v", err)
	}
	if !want.Same(v.Thaw()) {
		t.Fatalf("view thaw is not canonical with artifact Sets")
	}
	// Explicit Close releases the mapping exactly once; the thawed tries
	// remain valid because they live in the interner, not the mapping.
	mapped.Arena.Close()
	mapped.Arena.Close()
	if want.Size() != 2 {
		t.Fatalf("thawed set damaged by unmap")
	}

	if _, _, err := s.GetMapped("0123456789abcdef0123456789abcdef"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetMapped missing key: %v", err)
	}

	// Corrupt the stored file: GetMapped must reject it like Get does.
	path := filepath.Join(s.Dir(), testKey+Ext)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.GetMapped(testKey); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("GetMapped corrupt: %v", err)
	}
}
