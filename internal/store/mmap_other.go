//go:build !unix

package store

import "os"

// mapFile on platforms without mmap falls back to reading the whole file;
// the arena still traverses the single []byte in place, it just lives on
// the heap instead of in file-backed pages.
func mapFile(path string) ([]byte, func(), error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() {}, nil
}
