// Package store persists compiled CSP modules as content-addressed
// artifacts: the on-disk L2 tier under pkg/csp's in-memory ModuleCache.
// The paper's semantics make every artifact section a pure function of the
// module source — a prefix-closed trace set (§3) and the verdicts it
// discharges (§2.1) cannot change unless the text does — so the source
// hash the module cache already computes is the natural address, and
// artifacts never need invalidation, only garbage collection.
//
// An artifact carries the module source, a local symbol table (events by
// channel name and message value), the closure trie graph in bottom-up
// order, the named denotation roots (trace sets per process/engine/depth),
// and the check/prove verdicts as opaque wire-format blobs. Everything
// id-shaped is process-local in the live engines (trace.ChanID/EventID are
// dense first-intern-order ids), so the codec serializes by symbol *name*
// and the loader re-derives ids by re-interning through the live symbol
// tables, rebuilding tries bottom-up so loaded nodes are pointer-canonical
// with freshly computed ones (closure.FromEdges).
//
// Files are written via temp file + atomic rename and read with strict
// version, bounds, and checksum checks (codec.go); a corrupt artifact is a
// recompute, never a crash.
package store

import (
	"fmt"

	"cspsat/internal/closure"
	"cspsat/internal/trace"
	"cspsat/internal/value"
)

// Artifact is the decoded form of one stored module. It is plain data:
// decoding touches no global state, so a corrupt file is rejected (by
// checksum and bounds checks) before anything is interned.
type Artifact struct {
	// Key is the content address: the hex source hash pkg/csp computes
	// (csp.SourceHash). It is stored inside the payload too, so a file
	// renamed to the wrong address is detected.
	Key string
	// Source is the module's .csp text — small next to the tries, and
	// carrying it makes a loaded artifact self-contained: the module can
	// re-parse lazily if a request needs more than the precomputed roots.
	Source string
	// NatWidth is the load option baked into Key.
	NatWidth int
	// CreatedUnix records when the artifact was first written.
	CreatedUnix int64

	// Events is the local symbol table: every event appearing on a trie
	// edge, identified by name, referenced by index from Nodes.
	Events []EventSym
	// Nodes is the trie graph in bottom-up order: Nodes[i]'s edges refer
	// only to events by index and to children j < i, with the implicit
	// node index 0 naming the empty trie {<>} (so Nodes[i] describes node
	// index i+1).
	Nodes [][]EdgeSpec
	// TraceRoots names the precomputed trace sets.
	TraceRoots []TraceRoot
	// Checks, Proves, and Refinements hold verdict blocks in the facade's
	// stable JSON wire encodings, opaque to this package.
	Checks      []CheckBlock
	Proves      []ProveBlock
	Refinements []RefineBlock
}

// EventSym identifies one event portably: channel by rendered name,
// message by value.
type EventSym struct {
	Chan string
	Msg  value.V
}

// EdgeSpec is one trie edge: an event index into Artifact.Events and a
// child node index (0 = the empty trie).
type EdgeSpec struct {
	Event uint32
	Child uint32
}

// TraceRoot names one precomputed trace set: which process, under which
// engine and depth, denotes the trie rooted at node index Root.
type TraceRoot struct {
	// Engine is "op" or "denote" (runtime walks are sampled, not pure
	// functions of the source, and are never stored).
	Engine string
	// Depth is the trace-length bound the set was computed to.
	Depth uint32
	// Process is the root process expression, canonically rendered (a
	// plain name for the common case).
	Process string
	// Root is the node index of the set (0 = {<>}).
	Root uint32
	// Iterations preserves the approximation-chain pass count (denote
	// only), so a served result is indistinguishable from a computed one.
	Iterations uint32
}

// CheckBlock is one CheckAll outcome: the verdicts for a depth, as the
// facade's []AssertResultJSON marshaled bytes.
type CheckBlock struct {
	Depth   uint32
	Results []byte
}

// ProveBlock is one ProveAsserts outcome: the verdicts for a validity
// bound, as the facade's []ProveResultJSON marshaled bytes.
type ProveBlock struct {
	MaxLen  uint32
	Results []byte
}

// RefineBlock is one refinement verdict: impl against spec under a named
// semantic model ("traces", "failures") at a depth bound, as the facade's
// RefineResultJSON marshaled bytes. Introduced in wire version 2.
type RefineBlock struct {
	Model string
	Depth uint32
	// Impl and Spec are the two process expressions, canonically rendered.
	Impl   string
	Spec   string
	Result []byte
}

// Sets rebuilds every trie node into a canonical *closure.Set, bottom-up,
// re-interning events by name. sets[0] is the empty trie; sets[i+1]
// corresponds to Nodes[i]. Decode has already bounds-checked the graph, so
// errors here indicate a logic bug or a hand-built Artifact; they are
// reported, not panicked.
func (a *Artifact) Sets() ([]*closure.Set, error) {
	events := make([]trace.Event, len(a.Events))
	for i, es := range a.Events {
		events[i] = trace.Event{Chan: trace.Chan(es.Chan), Msg: es.Msg}
	}
	sets := make([]*closure.Set, len(a.Nodes)+1)
	sets[0] = closure.Stop()
	edges := make([]closure.Edge, 0, 8)
	for i, specs := range a.Nodes {
		edges = edges[:0]
		for _, sp := range specs {
			if int(sp.Event) >= len(events) {
				return nil, fmt.Errorf("store: node %d: event index %d out of range", i+1, sp.Event)
			}
			if int(sp.Child) > i {
				return nil, fmt.Errorf("store: node %d: forward child reference %d", i+1, sp.Child)
			}
			edges = append(edges, closure.Edge{Ev: events[sp.Event], Child: sets[sp.Child]})
		}
		sets[i+1] = closure.FromEdges(edges)
	}
	return sets, nil
}

// RootSet returns the rebuilt set for a TraceRoot given the Sets() result.
func (a *Artifact) RootSet(sets []*closure.Set, r TraceRoot) (*closure.Set, error) {
	if int(r.Root) >= len(sets) {
		return nil, fmt.Errorf("store: trace root %q: node index %d out of range", r.Process, r.Root)
	}
	return sets[r.Root], nil
}

// Builder flattens canonical Sets into an Artifact, sharing the symbol
// table and node graph across all added roots (two roots whose tries share
// subtrees share their flattened nodes too).
type Builder struct {
	art     *Artifact
	nodeIdx map[*closure.Set]uint32
	evIdx   map[trace.EventID]uint32
}

// NewBuilder starts an artifact for one module.
func NewBuilder(key, source string, natWidth int, createdUnix int64) *Builder {
	b := &Builder{
		art: &Artifact{
			Key:         key,
			Source:      source,
			NatWidth:    natWidth,
			CreatedUnix: createdUnix,
		},
		nodeIdx: map[*closure.Set]uint32{closure.Stop(): 0},
		evIdx:   map[trace.EventID]uint32{},
	}
	return b
}

// addSet flattens s (sharing already-added nodes) and returns its node
// index.
func (b *Builder) addSet(s *closure.Set) uint32 {
	if idx, ok := b.nodeIdx[s]; ok {
		return idx
	}
	s.Export(func(n *closure.Set, edges []closure.Edge) {
		if _, ok := b.nodeIdx[n]; ok {
			return
		}
		specs := make([]EdgeSpec, len(edges))
		for i, e := range edges {
			specs[i] = EdgeSpec{Event: b.eventIndex(e.Ev), Child: b.nodeIdx[e.Child]}
		}
		b.art.Nodes = append(b.art.Nodes, specs)
		b.nodeIdx[n] = uint32(len(b.art.Nodes)) // implicit +1: index 0 is {<>}
	})
	return b.nodeIdx[s]
}

func (b *Builder) eventIndex(ev trace.Event) uint32 {
	id := ev.ID()
	if idx, ok := b.evIdx[id]; ok {
		return idx
	}
	idx := uint32(len(b.art.Events))
	b.art.Events = append(b.art.Events, EventSym{Chan: string(ev.Chan), Msg: ev.Msg})
	b.evIdx[id] = idx
	return idx
}

// AddTraceRoot records one precomputed trace set.
func (b *Builder) AddTraceRoot(engine string, depth int, process string, set *closure.Set, iterations int) {
	b.art.TraceRoots = append(b.art.TraceRoots, TraceRoot{
		Engine:     engine,
		Depth:      uint32(depth),
		Process:    process,
		Root:       b.addSet(set),
		Iterations: uint32(iterations),
	})
}

// AddCheck records one CheckAll verdict block.
func (b *Builder) AddCheck(depth int, results []byte) {
	b.art.Checks = append(b.art.Checks, CheckBlock{Depth: uint32(depth), Results: results})
}

// AddProve records one ProveAsserts verdict block.
func (b *Builder) AddProve(maxLen int, results []byte) {
	b.art.Proves = append(b.art.Proves, ProveBlock{MaxLen: uint32(maxLen), Results: results})
}

// AddRefinement records one refinement verdict block.
func (b *Builder) AddRefinement(model string, depth int, impl, spec string, result []byte) {
	b.art.Refinements = append(b.art.Refinements, RefineBlock{
		Model:  model,
		Depth:  uint32(depth),
		Impl:   impl,
		Spec:   spec,
		Result: result,
	})
}

// Artifact returns the built artifact. The builder must not be reused
// afterwards.
func (b *Builder) Artifact() *Artifact { return b.art }
