// Package store persists compiled CSP modules as content-addressed
// artifacts: the on-disk L2 tier under pkg/csp's in-memory ModuleCache.
// The paper's semantics make every artifact section a pure function of the
// module source — a prefix-closed trace set (§3) and the verdicts it
// discharges (§2.1) cannot change unless the text does — so the source
// hash the module cache already computes is the natural address, and
// artifacts never need invalidation, only garbage collection.
//
// An artifact carries the module source, the closure trie graph as one
// frozen arena image (internal/closure/frozen: dense node ids, flat edge
// tables, its own local symbol table — written once at export, traversed
// in place forever after), the named denotation roots (arena node indices
// per process/engine/depth), and the check/prove/refine verdicts as opaque
// wire-format blobs. The ids baked into the image are arena-local; the
// live engines' dense trace ids are re-derived lazily on first traversal
// (frozen's bind step), and rebuilding through the interner happens only
// when a caller explicitly thaws — loads alone intern nothing.
//
// Files are written via temp file + atomic rename and read with strict
// version, bounds, and checksum checks (codec.go); a corrupt artifact is a
// recompute, never a crash.
package store

import (
	"fmt"

	"cspsat/internal/closure"
	"cspsat/internal/closure/frozen"
)

// Artifact is the decoded form of one stored module. It is plain data
// plus a validated frozen arena: decoding touches no global state, so a
// corrupt file is rejected (by checksum and bounds checks) before anything
// is interned.
type Artifact struct {
	// Key is the content address: the hex source hash pkg/csp computes
	// (csp.SourceHash). It is stored inside the payload too, so a file
	// renamed to the wrong address is detected.
	Key string
	// Source is the module's .csp text — small next to the tries, and
	// carrying it makes a loaded artifact self-contained: the module can
	// re-parse lazily if a request needs more than the precomputed roots.
	Source string
	// NatWidth is the load option baked into Key.
	NatWidth int
	// CreatedUnix records when the artifact was first written.
	CreatedUnix int64

	// Arena is the trie graph as a validated frozen image: every node of
	// every stored trace set, bottom-up, node 0 the empty trie {<>}. When
	// the artifact was decoded from an mmap'd file the image bytes alias
	// the mapping (the codec never copies them), so serving read queries
	// from the arena costs file-backed pages, not heap.
	Arena *frozen.Arena
	// TraceRoots names the precomputed trace sets by arena node index.
	TraceRoots []TraceRoot
	// Checks, Proves, and Refinements hold verdict blocks in the facade's
	// stable JSON wire encodings, opaque to this package.
	Checks      []CheckBlock
	Proves      []ProveBlock
	Refinements []RefineBlock
}

// TraceRoot names one precomputed trace set: which process, under which
// engine and depth, denotes the trie rooted at arena node Root.
type TraceRoot struct {
	// Engine is "op" or "denote" (runtime walks are sampled, not pure
	// functions of the source, and are never stored).
	Engine string
	// Depth is the trace-length bound the set was computed to.
	Depth uint32
	// Process is the root process expression, canonically rendered (a
	// plain name for the common case).
	Process string
	// Root is the arena node index of the set (0 = {<>}).
	Root uint32
	// Iterations preserves the approximation-chain pass count (denote
	// only), so a served result is indistinguishable from a computed one.
	Iterations uint32
}

// CheckBlock is one CheckAll outcome: the verdicts for a depth, as the
// facade's []AssertResultJSON marshaled bytes.
type CheckBlock struct {
	Depth   uint32
	Results []byte
}

// ProveBlock is one ProveAsserts outcome: the verdicts for a validity
// bound, as the facade's []ProveResultJSON marshaled bytes.
type ProveBlock struct {
	MaxLen  uint32
	Results []byte
}

// RefineBlock is one refinement verdict: impl against spec under a named
// semantic model ("traces", "failures") at a depth bound, as the facade's
// RefineResultJSON marshaled bytes. Introduced in wire version 2.
type RefineBlock struct {
	Model string
	Depth uint32
	// Impl and Spec are the two process expressions, canonically rendered.
	Impl   string
	Spec   string
	Result []byte
}

// RootView returns the zero-rebuild read surface of a trace root: a
// frozen view traversing the arena image in place. This is the warm-boot
// fast path — nothing is interned until the view is first traversed, and
// no trie node is ever rebuilt unless someone thaws.
func (a *Artifact) RootView(r TraceRoot) (*frozen.NodeView, error) {
	v, err := a.Arena.View(r.Root)
	if err != nil {
		return nil, fmt.Errorf("store: trace root %q: %w", r.Process, err)
	}
	return v, nil
}

// Sets rebuilds every arena node into a canonical *closure.Set, bottom-up,
// re-interning events by name — the thaw-on-write escape hatch (and the
// only path that re-interns; it runs once per arena, cached). sets[i]
// corresponds to arena node i; sets[0] is the empty trie.
func (a *Artifact) Sets() ([]*closure.Set, error) {
	if a.Arena == nil {
		return nil, fmt.Errorf("store: artifact has no arena")
	}
	return a.Arena.Thaw(), nil
}

// RootSet returns the rebuilt set for a TraceRoot given the Sets() result.
func (a *Artifact) RootSet(sets []*closure.Set, r TraceRoot) (*closure.Set, error) {
	if int(r.Root) >= len(sets) {
		return nil, fmt.Errorf("store: trace root %q: node index %d out of range", r.Process, r.Root)
	}
	return sets[r.Root], nil
}

// Builder freezes canonical Sets into an Artifact, sharing the arena's
// symbol table and node graph across all added roots (two roots whose
// tries share subtrees share their frozen nodes too).
type Builder struct {
	art *Artifact
	fz  *frozen.Builder
}

// NewBuilder starts an artifact for one module.
func NewBuilder(key, source string, natWidth int, createdUnix int64) *Builder {
	return &Builder{
		art: &Artifact{
			Key:         key,
			Source:      source,
			NatWidth:    natWidth,
			CreatedUnix: createdUnix,
		},
		fz: frozen.NewBuilder(),
	}
}

// AddTraceRoot records one precomputed trace set, freezing its trie into
// the shared arena.
func (b *Builder) AddTraceRoot(engine string, depth int, process string, set *closure.Set, iterations int) {
	b.art.TraceRoots = append(b.art.TraceRoots, TraceRoot{
		Engine:     engine,
		Depth:      uint32(depth),
		Process:    process,
		Root:       b.fz.Add(set),
		Iterations: uint32(iterations),
	})
}

// AddCheck records one CheckAll verdict block.
func (b *Builder) AddCheck(depth int, results []byte) {
	b.art.Checks = append(b.art.Checks, CheckBlock{Depth: uint32(depth), Results: results})
}

// AddProve records one ProveAsserts verdict block.
func (b *Builder) AddProve(maxLen int, results []byte) {
	b.art.Proves = append(b.art.Proves, ProveBlock{MaxLen: uint32(maxLen), Results: results})
}

// AddRefinement records one refinement verdict block.
func (b *Builder) AddRefinement(model string, depth int, impl, spec string, result []byte) {
	b.art.Refinements = append(b.art.Refinements, RefineBlock{
		Model:  model,
		Depth:  uint32(depth),
		Impl:   impl,
		Spec:   spec,
		Result: result,
	})
}

// Artifact finalises the arena image (self-validated through the same
// checks every load runs) and returns the built artifact. The builder must
// not be reused afterwards.
func (b *Builder) Artifact() (*Artifact, error) {
	arena, err := b.fz.Finish()
	if err != nil {
		return nil, err
	}
	b.art.Arena = arena
	return b.art, nil
}
