//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps path read-only and returns the bytes plus an unmap
// function. Mapped artifact bytes cost file-backed pages — evictable,
// shared across processes serving the same store — instead of heap; the
// arena traverses them in place. Empty files (no valid artifact is ever
// that small) skip the map and return an empty slice.
func mapFile(path string) ([]byte, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size == 0 {
		return nil, func() {}, nil
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("store: %s: size %d overflows int", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("store: mmap %s: %w", path, err)
	}
	return data, func() { syscall.Munmap(data) }, nil
}
