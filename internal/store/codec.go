package store

// The artifact wire format, versioned and checksummed:
//
//	magic   8 bytes  "CSPSTORE"
//	version uint32   little-endian (currently 3)
//	payload uvarint-framed sections (see encodePayload)
//	crc64   8 bytes  little-endian ECMA checksum of magic+version+payload
//
// Decode verifies the checksum over the whole prefix before looking at any
// payload byte, then bounds-checks every count, index, and length against
// the bytes actually present. The trie graph travels as one embedded
// frozen arena image, validated structurally by frozen.Open and referenced
// as a zero-copy subslice of the input — when the input is an mmap'd file,
// the decoded artifact's trie data *is* the mapping. Only a fully
// validated Artifact reaches the caller, so a truncated or bit-flipped
// file can never intern partial symbols or tries: decoding is pure, and
// interning happens later, lazily, on data that already passed validation.
//
// Integers are unsigned varints (zigzag for signed), strings and blobs are
// length-prefixed. Counts are additionally sanity-bounded by the number of
// remaining input bytes, so a corrupted count fails fast instead of
// attempting a multi-gigabyte allocation.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"

	"cspsat/internal/closure/frozen"
)

const (
	magic = "CSPSTORE"
	// Version is the current wire format version. Bump on any layout
	// change; old files then read as ErrVersionSkew and are recomputed.
	// History: 1 = initial layout; 2 = appended the Refinements section
	// (model-tagged refinement verdict blocks); 3 = the Events and Nodes
	// sections were replaced by an embedded frozen arena image (flat
	// offset-addressed trie graph, mmap-traversable without rebuilding).
	Version uint32 = 3
)

var (
	// ErrCorrupt reports a file that is not a well-formed artifact:
	// bad magic, failed checksum, truncation, or out-of-bounds structure.
	ErrCorrupt = errors.New("store: corrupt artifact")
	// ErrVersionSkew reports a well-formed file written by a different
	// codec version. Callers treat it as stale: recompute and overwrite.
	ErrVersionSkew = errors.New("store: artifact version skew")
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// Encode serializes an artifact into the versioned, checksummed wire form.
// The artifact must carry an arena (Builder.Artifact always does).
func Encode(a *Artifact) []byte {
	var w writer
	w.buf = append(w.buf, magic...)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, Version)
	w.encodePayload(a)
	sum := crc64.Checksum(w.buf, crcTable)
	w.buf = binary.LittleEndian.AppendUint64(w.buf, sum)
	return w.buf
}

type writer struct {
	buf []byte
}

func (w *writer) uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *writer) varint(v int64)   { w.buf = binary.AppendVarint(w.buf, v) }
func (w *writer) str(s string)     { w.uvarint(uint64(len(s))); w.buf = append(w.buf, s...) }
func (w *writer) bytes(b []byte)   { w.uvarint(uint64(len(b))); w.buf = append(w.buf, b...) }

func (w *writer) encodePayload(a *Artifact) {
	w.str(a.Key)
	w.str(a.Source)
	w.varint(int64(a.NatWidth))
	w.varint(a.CreatedUnix)

	if a.Arena == nil {
		panic("store: Encode on an artifact without an arena")
	}
	w.bytes(a.Arena.Bytes())

	w.uvarint(uint64(len(a.TraceRoots)))
	for _, r := range a.TraceRoots {
		w.str(r.Engine)
		w.uvarint(uint64(r.Depth))
		w.str(r.Process)
		w.uvarint(uint64(r.Root))
		w.uvarint(uint64(r.Iterations))
	}

	w.uvarint(uint64(len(a.Checks)))
	for _, c := range a.Checks {
		w.uvarint(uint64(c.Depth))
		w.bytes(c.Results)
	}

	w.uvarint(uint64(len(a.Proves)))
	for _, p := range a.Proves {
		w.uvarint(uint64(p.MaxLen))
		w.bytes(p.Results)
	}

	w.uvarint(uint64(len(a.Refinements)))
	for _, rf := range a.Refinements {
		w.str(rf.Model)
		w.uvarint(uint64(rf.Depth))
		w.str(rf.Impl)
		w.str(rf.Spec)
		w.bytes(rf.Result)
	}
}

// Decode parses and fully validates an artifact. It returns ErrCorrupt
// (possibly wrapped, with detail) for malformed input and ErrVersionSkew
// for a well-formed file from another codec version. Decode never touches
// intern tables or any other global state.
//
// The returned artifact's arena aliases data (the image subslice is taken
// zero-copy), so data must stay valid — and unmodified — for the
// artifact's lifetime. Store.GetMapped relies on exactly this to serve
// tries straight from the page cache; callers that cannot guarantee the
// backing bytes outlive the artifact should copy data first.
func Decode(data []byte) (*Artifact, error) {
	// Frame: magic + version + payload + crc64 trailer.
	if len(data) < len(magic)+4+8 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the minimal frame", ErrCorrupt, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	body, trailer := data[:len(data)-8], data[len(data)-8:]
	want := binary.LittleEndian.Uint64(trailer)
	if got := crc64.Checksum(body, crcTable); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (got %016x want %016x)", ErrCorrupt, got, want)
	}
	ver := binary.LittleEndian.Uint32(data[len(magic):])
	if ver != Version {
		return nil, fmt.Errorf("%w: file version %d, codec version %d", ErrVersionSkew, ver, Version)
	}

	r := &reader{buf: body[len(magic)+4:]}
	a, err := r.decodePayload()
	if err != nil {
		return nil, err
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(r.buf))
	}
	return a, nil
}

type reader struct {
	buf []byte
}

func (r *reader) corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

func (r *reader) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		return 0, r.corrupt("truncated uvarint (%s)", what)
	}
	r.buf = r.buf[n:]
	return v, nil
}

func (r *reader) varint(what string) (int64, error) {
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		return 0, r.corrupt("truncated varint (%s)", what)
	}
	r.buf = r.buf[n:]
	return v, nil
}

// count reads a collection length and rejects values that could not
// possibly fit in the remaining bytes (each element costs ≥1 byte).
func (r *reader) count(what string) (int, error) {
	v, err := r.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v > uint64(len(r.buf)) {
		return 0, r.corrupt("%s count %d exceeds %d remaining bytes", what, v, len(r.buf))
	}
	return int(v), nil
}

func (r *reader) str(what string) (string, error) {
	n, err := r.count(what)
	if err != nil {
		return "", err
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s, nil
}

func (r *reader) blob(what string) ([]byte, error) {
	n, err := r.count(what)
	if err != nil {
		return nil, err
	}
	var b []byte
	if n > 0 {
		b = make([]byte, n)
		copy(b, r.buf[:n])
	}
	r.buf = r.buf[n:]
	return b, nil
}

// view is blob without the copy: a capped subslice of the input, for the
// arena image whose whole point is to be traversed where it lies.
func (r *reader) view(what string) ([]byte, error) {
	n, err := r.count(what)
	if err != nil {
		return nil, err
	}
	b := r.buf[:n:n]
	r.buf = r.buf[n:]
	return b, nil
}

func (r *reader) decodePayload() (*Artifact, error) {
	a := &Artifact{}
	var err error
	if a.Key, err = r.str("key"); err != nil {
		return nil, err
	}
	if a.Source, err = r.str("source"); err != nil {
		return nil, err
	}
	nw, err := r.varint("nat width")
	if err != nil {
		return nil, err
	}
	a.NatWidth = int(nw)
	if a.CreatedUnix, err = r.varint("created"); err != nil {
		return nil, err
	}

	img, err := r.view("arena image")
	if err != nil {
		return nil, err
	}
	if a.Arena, err = frozen.Open(img); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}

	nRoots, err := r.count("trace roots")
	if err != nil {
		return nil, err
	}
	a.TraceRoots = make([]TraceRoot, nRoots)
	for i := range a.TraceRoots {
		tr := &a.TraceRoots[i]
		if tr.Engine, err = r.str("root engine"); err != nil {
			return nil, err
		}
		depth, err := r.uvarint("root depth")
		if err != nil {
			return nil, err
		}
		tr.Depth = uint32(depth)
		if tr.Process, err = r.str("root process"); err != nil {
			return nil, err
		}
		root, err := r.uvarint("root node")
		if err != nil {
			return nil, err
		}
		if root >= uint64(a.Arena.NumNodes()) {
			return nil, r.corrupt("trace root %d: node index %d out of %d", i, root, a.Arena.NumNodes())
		}
		tr.Root = uint32(root)
		iters, err := r.uvarint("root iterations")
		if err != nil {
			return nil, err
		}
		tr.Iterations = uint32(iters)
	}

	nChecks, err := r.count("checks")
	if err != nil {
		return nil, err
	}
	a.Checks = make([]CheckBlock, nChecks)
	for i := range a.Checks {
		depth, err := r.uvarint("check depth")
		if err != nil {
			return nil, err
		}
		a.Checks[i].Depth = uint32(depth)
		if a.Checks[i].Results, err = r.blob("check results"); err != nil {
			return nil, err
		}
	}

	nProves, err := r.count("proves")
	if err != nil {
		return nil, err
	}
	a.Proves = make([]ProveBlock, nProves)
	for i := range a.Proves {
		maxLen, err := r.uvarint("prove maxlen")
		if err != nil {
			return nil, err
		}
		a.Proves[i].MaxLen = uint32(maxLen)
		if a.Proves[i].Results, err = r.blob("prove results"); err != nil {
			return nil, err
		}
	}

	nRefines, err := r.count("refinements")
	if err != nil {
		return nil, err
	}
	if nRefines > 0 {
		a.Refinements = make([]RefineBlock, nRefines)
	}
	for i := range a.Refinements {
		rf := &a.Refinements[i]
		if rf.Model, err = r.str("refinement model"); err != nil {
			return nil, err
		}
		depth, err := r.uvarint("refinement depth")
		if err != nil {
			return nil, err
		}
		rf.Depth = uint32(depth)
		if rf.Impl, err = r.str("refinement impl"); err != nil {
			return nil, err
		}
		if rf.Spec, err = r.str("refinement spec"); err != nil {
			return nil, err
		}
		if rf.Result, err = r.blob("refinement result"); err != nil {
			return nil, err
		}
	}

	return a, nil
}
