package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc64"
	"math/rand"
	"reflect"
	"testing"

	"cspsat/internal/closure"
	"cspsat/internal/trace"
	"cspsat/internal/value"
)

// sampleArtifact exercises every codec shape: all value kinds (including
// nested sequences), shared trie nodes, multiple roots, and verdict blobs.
func sampleArtifact(t *testing.T) *Artifact {
	t.Helper()
	a := trace.Event{Chan: "a", Msg: value.Int(-3)}
	b := trace.Event{Chan: "b[2]", Msg: value.Sym("ACK")}
	c := trace.Event{Chan: "c", Msg: value.Bool(true)}
	d := trace.Event{Chan: "d", Msg: value.Seq(value.Int(1), value.Seq(value.Sym("x")), value.Bool(false))}

	shared := closure.Union(closure.Prefix(a, closure.Stop()), closure.Prefix(b, closure.Stop()))
	s1 := closure.Prefix(c, shared)
	s2 := closure.Union(closure.Prefix(d, shared), shared)

	bld := NewBuilder("0123456789abcdef0123456789abcdef", "P = a!3 -> STOP", 4, 1754000000)
	bld.AddTraceRoot("denote", 6, "P", s1, 3)
	bld.AddTraceRoot("op", 6, "Q", s2, 0)
	bld.AddTraceRoot("op", 2, "STOP", closure.Stop(), 0)
	bld.AddCheck(6, []byte(`[{"name":"A1","holds":true}]`))
	bld.AddProve(8, []byte(`[{"name":"T1","valid":true}]`))
	bld.AddProve(2, nil)
	bld.AddRefinement("failures", 6, "Q", "P", []byte(`{"ok":false}`))
	bld.AddRefinement("traces", 4, "P", "P", []byte(`{"ok":true}`))
	art, err := bld.Artifact()
	if err != nil {
		t.Fatalf("Artifact: %v", err)
	}
	return art
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	art := sampleArtifact(t)
	data := Encode(art)
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	// Normalize nil-vs-empty blobs before deep comparison.
	if len(got.Proves) == len(art.Proves) {
		for i := range got.Proves {
			if len(got.Proves[i].Results) == 0 && len(art.Proves[i].Results) == 0 {
				got.Proves[i].Results, art.Proves[i].Results = nil, nil
			}
		}
	}
	// The arena compares by image bytes (its in-memory struct carries lazy
	// binding state); everything else compares structurally.
	if !bytes.Equal(got.Arena.Bytes(), art.Arena.Bytes()) {
		t.Fatalf("round trip changed the arena image (%d vs %d bytes)",
			len(got.Arena.Bytes()), len(art.Arena.Bytes()))
	}
	got.Arena, art.Arena = nil, nil
	if !reflect.DeepEqual(got, art) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, art)
	}
	// Re-decode: the field comparison above nilled the arenas, and the
	// thaw below needs one.
	got, err = Decode(data)
	if err != nil {
		t.Fatalf("Decode (again): %v", err)
	}

	sets, err := got.Sets()
	if err != nil {
		t.Fatalf("Sets: %v", err)
	}
	if sets[0] != closure.Stop() {
		t.Fatalf("sets[0] is not the canonical empty trie")
	}
	for _, r := range got.TraceRoots {
		if _, err := got.RootSet(sets, r); err != nil {
			t.Fatalf("RootSet(%q): %v", r.Process, err)
		}
	}
}

// TestDecodeTruncatedPrefixes feeds Decode every proper prefix of a valid
// encoding: all must fail cleanly with ErrCorrupt (never panic) because
// the checksum can't match a truncated body.
func TestDecodeTruncatedPrefixes(t *testing.T) {
	data := Encode(sampleArtifact(t))
	for n := 0; n < len(data); n++ {
		if _, err := Decode(data[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("prefix %d/%d: got %v, want ErrCorrupt", n, len(data), err)
		}
	}
}

// TestDecodeFlippedBytes flips each byte (and a random sample of bits) and
// demands checksum-level rejection.
func TestDecodeFlippedBytes(t *testing.T) {
	data := Encode(sampleArtifact(t))
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < len(data); i++ {
		mut := make([]byte, len(data))
		copy(mut, data)
		mut[i] ^= 1 << uint(rng.Intn(8))
		a, err := Decode(mut)
		if err == nil {
			t.Fatalf("flipped byte %d decoded successfully: %+v", i, a)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersionSkew) {
			t.Fatalf("flipped byte %d: unexpected error class %v", i, err)
		}
	}
}

func TestDecodeVersionSkew(t *testing.T) {
	data := Encode(sampleArtifact(t))
	// Patch the version field and re-stamp the checksum so only the
	// version disagrees. Versions 1 and 2 are the codec's own history
	// (v2 files in a live store must read as skew → recompute+overwrite,
	// not as corrupt).
	for _, v := range []byte{1, 2, byte(Version + 1)} {
		mut := make([]byte, len(data))
		copy(mut, data)
		mut[len(magic)] = v
		body := mut[:len(mut)-8]
		sum := crc64.Checksum(body, crcTable)
		binary.LittleEndian.PutUint64(mut[len(mut)-8:], sum)
		if _, err := Decode(mut); !errors.Is(err, ErrVersionSkew) {
			t.Fatalf("version %d: got %v, want ErrVersionSkew", v, err)
		}
	}
}

// TestDecodeDoesNotIntern proves validation failure leaves the symbol
// tables untouched: a structurally corrupt payload (bad child index inside
// the arena image) with a valid checksum must be rejected before any event
// is interned.
func TestDecodeDoesNotIntern(t *testing.T) {
	bld := NewBuilder("0123456789abcdef0123456789abcdef", "src", 3, 0)
	bld.AddTraceRoot("op", 1,
		"P",
		closure.Prefix(trace.Event{Chan: "preinterned", Msg: value.Int(0)}, closure.Stop()),
		0)
	art, err := bld.Artifact()
	if err != nil {
		t.Fatalf("Artifact: %v", err)
	}
	data := Encode(art)

	// Corrupt the arena structure inside the encoded frame — point node
	// 1's single edge at a forward child — then re-stamp the CRC so
	// rejection must come from the arena's bounds checks, not the
	// checksum. The arena image starts at its own magic; its sole edge row
	// sits after the header (24 B), edgeStart ((N+1)×4), sizes (N×8), and
	// heights (N×4) sections, with the child in the row's second word.
	arenaOff := bytes.Index(data, []byte("CSPFRZN1"))
	if arenaOff < 0 {
		t.Fatalf("no arena image in encoded artifact")
	}
	n := int(binary.LittleEndian.Uint32(data[arenaOff+8:]))
	childOff := arenaOff + 24 + 4*(n+1) + 8*n + 4*n + 4
	mut := make([]byte, len(data))
	copy(mut, data)
	binary.LittleEndian.PutUint32(mut[childOff:], 9)
	sum := crc64.Checksum(mut[:len(mut)-8], crcTable)
	binary.LittleEndian.PutUint64(mut[len(mut)-8:], sum)

	before := trace.SymbolTableStats()
	if _, err := Decode(mut); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
	after := trace.SymbolTableStats()
	if before.Events != after.Events || before.Chans != after.Chans {
		t.Fatalf("rejected decode interned symbols: before %+v after %+v", before, after)
	}
}
