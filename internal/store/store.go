package store

// Store is the on-disk half: one directory, one file per artifact, named
// <key>.cspa. Writes go through a temp file in the same directory and an
// atomic rename, so readers (including a concurrently warm-booting second
// server) only ever see absent or complete files. Corrupt files are
// quarantined by renaming to <key>.cspa.corrupt so the bad bytes stay
// available for debugging without being re-read on every miss.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"cspsat/internal/closure/frozen"
)

// Ext is the artifact file extension.
const Ext = ".cspa"

// ErrNotFound reports a key with no artifact on disk.
var ErrNotFound = errors.New("store: artifact not found")

// Store is a content-addressed artifact directory. Methods are safe for
// concurrent use: atomicity comes from the filesystem (rename), not locks.
type Store struct {
	dir string
}

// Open ensures dir exists and returns a store over it.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// validKey guards against path traversal and garbage keys: a key must look
// like a hex digest (csp.SourceHash emits 64 lowercase hex chars; accept a
// sensible range so the store does not hard-code one hash width).
func validKey(key string) error {
	if len(key) < 16 || len(key) > 128 {
		return fmt.Errorf("store: invalid key %q: length %d", key, len(key))
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("store: invalid key %q: non-hex byte at %d", key, i)
		}
	}
	return nil
}

// Path returns the on-disk path an artifact for key lives at.
func (s *Store) Path(key string) string {
	return filepath.Join(s.dir, key+Ext)
}

// Put encodes and atomically writes an artifact under its own key,
// returning the number of bytes written. An existing artifact for the key
// is replaced (the content address guarantees it encodes the same module,
// possibly with more precomputed roots).
func (s *Store) Put(a *Artifact) (int, error) {
	if err := validKey(a.Key); err != nil {
		return 0, err
	}
	data := Encode(a)
	tmp, err := os.CreateTemp(s.dir, "."+a.Key+".tmp-*")
	if err != nil {
		return 0, fmt.Errorf("store: put %s: %w", a.Key, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return 0, fmt.Errorf("store: put %s: %w", a.Key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("store: put %s: %w", a.Key, err)
	}
	if err := os.Rename(tmpName, s.Path(a.Key)); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("store: put %s: %w", a.Key, err)
	}
	return len(data), nil
}

// Get reads, validates, and decodes the artifact for key, returning it and
// the number of bytes read. It returns ErrNotFound when absent, and wraps
// ErrCorrupt/ErrVersionSkew from the codec; an artifact whose payload key
// disagrees with the requested key (a renamed or cross-copied file) is
// reported as corrupt.
func (s *Store) Get(key string) (*Artifact, int, error) {
	if err := validKey(key); err != nil {
		return nil, 0, err
	}
	data, err := os.ReadFile(s.Path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return nil, 0, fmt.Errorf("store: get %s: %w", key, err)
	}
	a, err := Decode(data)
	if err != nil {
		return nil, len(data), err
	}
	if a.Key != key {
		return nil, len(data), fmt.Errorf("%w: payload key %s under file key %s", ErrCorrupt, a.Key, key)
	}
	return a, len(data), nil
}

// GetMapped is Get with the artifact's arena served zero-copy from an
// mmap of the file (falling back to a plain read where mmap is
// unavailable): the decoded trie graph aliases the mapping, so a warm boot
// touches no heap proportional to the graph and the kernel shares the
// pages across processes. The mapping is released when the returned
// artifact's arena is garbage collected (a finalizer calls munmap), or
// eagerly via Artifact.Arena.Close. Decode failures unmap before
// returning, so corrupt files leak nothing.
func (s *Store) GetMapped(key string) (*Artifact, int, error) {
	if err := validKey(key); err != nil {
		return nil, 0, err
	}
	data, unmap, err := mapFile(s.Path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return nil, 0, fmt.Errorf("store: get %s: %w", key, err)
	}
	a, err := Decode(data)
	if err != nil {
		unmap()
		return nil, len(data), err
	}
	if a.Key != key {
		unmap()
		return nil, len(data), fmt.Errorf("%w: payload key %s under file key %s", ErrCorrupt, a.Key, key)
	}
	a.Arena.AttachCloser(unmap)
	runtime.SetFinalizer(a.Arena, (*frozen.Arena).Close)
	return a, len(data), nil
}

// Delete removes the artifact for key. Deleting an absent key is not an
// error.
func (s *Store) Delete(key string) error {
	if err := validKey(key); err != nil {
		return err
	}
	if err := os.Remove(s.Path(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: delete %s: %w", key, err)
	}
	return nil
}

// Quarantine renames key's artifact to <key>.cspa.corrupt so it stops
// being read but remains available for inspection. A prior quarantined
// file for the same key is overwritten.
func (s *Store) Quarantine(key string) error {
	if err := validKey(key); err != nil {
		return err
	}
	p := s.Path(key)
	if err := os.Rename(p, p+".corrupt"); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: quarantine %s: %w", key, err)
	}
	return nil
}

// Keys lists the keys of all artifacts in the store, sorted. Temp,
// quarantined, and foreign files are ignored.
func (s *Store) Keys() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: list %s: %w", s.dir, err)
	}
	var keys []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, Ext) {
			continue
		}
		key := strings.TrimSuffix(name, Ext)
		if validKey(key) != nil {
			continue
		}
		keys = append(keys, key)
	}
	sort.Strings(keys)
	return keys, nil
}

// GC removes quarantined artifacts and temp-file droppings (left by a
// writer that died between CreateTemp and rename), returning how many
// files and bytes were reclaimed. Live artifacts are never touched.
func (s *Store) GC() (removed int, bytes int64, err error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, 0, fmt.Errorf("store: gc %s: %w", s.dir, err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !(strings.HasSuffix(name, ".corrupt") || strings.Contains(name, ".tmp-")) {
			continue
		}
		var size int64
		if fi, err := e.Info(); err == nil {
			size = fi.Size()
		}
		if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
			return removed, bytes, fmt.Errorf("store: gc %s: %w", name, err)
		}
		removed++
		bytes += size
	}
	return removed, bytes, nil
}

// Size returns the on-disk byte size of key's artifact.
func (s *Store) Size(key string) (int64, error) {
	if err := validKey(key); err != nil {
		return 0, err
	}
	fi, err := os.Stat(s.Path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return 0, err
	}
	return fi.Size(), nil
}
