package proof

// Batch checking: verify many independent proof trees concurrently. The
// proof rules never share mutable state — a Checker's env, funcs, and
// validity configuration are read-only during Check — so a batch is an
// embarrassingly parallel map, and the pool layer contributes cancellation
// and bounded workers. cspprove's individual-goal fallback and cspproof's
// paper-proof suite run through here.

import (
	"context"
	"sync/atomic"
	"time"

	"cspsat/internal/pool"
	"cspsat/internal/progress"
)

// Obligation is one unit of a batch: a named proof tree to verify.
type Obligation struct {
	Name  string
	Proof Proof
}

// BatchResult is the outcome for the same-index Obligation: the concluded
// claim (on success), the number of pure side conditions discharged along
// the way, and the verification error if the proof is wrong.
type BatchResult struct {
	Name       string
	Claim      Claim
	Discharged int
	Err        error
}

// Fork returns an independent Checker sharing this one's environment,
// function registry, and validity configuration, with the per-run fields
// (Log, Steps, Ctx) cleared. Forked checkers may run concurrently.
func (c *Checker) Fork() *Checker {
	return &Checker{env: c.env, funcs: c.funcs, Validity: c.Validity}
}

// CheckBatch verifies the obligations across a worker pool, each on a fork
// of the template checker. Results are indexed like the input regardless of
// completion order; an individual proof failing is recorded in its
// BatchResult, not returned as an error. The returned error is non-nil only
// when ctx was canceled, in which case unprocessed entries carry the
// cancellation error too. prog, when non-nil, receives a "prove" stage
// event per completed obligation and a final Done event.
func CheckBatch(ctx context.Context, template *Checker, obs []Obligation, workers int, prog progress.Func) ([]BatchResult, error) {
	start := time.Now()
	results := make([]BatchResult, len(obs))
	processed := make([]bool, len(obs)) // each index written once, read after the pool drains
	var done, discharged atomic.Int64
	// Obligations are heavyweight (a whole proof tree each), so the
	// serial/parallel cutover is just "more than one": pool spawn amortises
	// against milliseconds of checking, unlike the per-state stages of the
	// trace engines. WorkersAuto resolves to the machine size here too.
	err := pool.Run(ctx, pool.Adaptive(workers, len(obs), 2), len(obs), func(i int) error {
		ck := template.Fork()
		ck.Ctx = ctx
		cl, err := ck.Check(obs[i].Proof)
		results[i] = BatchResult{Name: obs[i].Name, Claim: cl, Discharged: ck.Discharged(), Err: err}
		processed[i] = true
		prog.Emit(progress.Event{
			Stage:                 "prove",
			Items:                 int(done.Add(1)),
			Total:                 len(obs),
			ObligationsDischarged: int(discharged.Add(int64(ck.Discharged()))),
			Elapsed:               time.Since(start),
		})
		return pool.Canceled(ctx)
	})
	if err != nil {
		for i := range results {
			if !processed[i] {
				results[i] = BatchResult{Name: obs[i].Name, Err: err}
			}
		}
		return results, err
	}
	prog.Emit(progress.Event{
		Stage:                 "prove",
		Items:                 len(obs),
		Total:                 len(obs),
		ObligationsDischarged: int(discharged.Load()),
		Elapsed:               time.Since(start),
		Done:                  true,
	})
	return results, nil
}
