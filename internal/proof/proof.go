// Package proof implements the paper's §2.1 inference system as checkable
// proof objects. A Proof is a tree whose nodes are applications of the ten
// rules — triviality, consequence, conjunction, emptiness, output, input,
// alternative, parallelism, chan, and recursion (plain, array, mutual) —
// plus the structural conveniences the paper takes from natural deduction
// (∀-introduction, hypothesis citation, instantiation, definition
// unfolding).
//
// The Checker verifies each rule application structurally, exactly as the
// rule schema demands, and discharges the non-process side conditions
// (facts like R_<> or R ⇒ S) with the bounded-validity evaluator of
// internal/assertion. A checked proof is thus machine-validated modulo the
// recorded validity bounds; the repository's encoded paper proofs
// additionally cross-check every conclusion with the model checker.
package proof

import (
	"fmt"
	"strings"

	"cspsat/internal/assertion"
	"cspsat/internal/syntax"
)

// Quant is one universal quantifier ∀x∈M binding a variable shared between
// a process and its assertion (the paper's ∀x∈M. q[x] sat S).
type Quant struct {
	Var string
	Dom syntax.SetExpr
}

// Claim is a (possibly quantified) sat-judgement: ∀Quants. Proc sat A.
type Claim struct {
	Quants []Quant
	Proc   syntax.Proc
	A      assertion.A
}

// String renders the claim in the paper's notation.
func (c Claim) String() string {
	var sb strings.Builder
	for _, q := range c.Quants {
		fmt.Fprintf(&sb, "forall %s in %s. ", q.Var, q.Dom)
	}
	sb.WriteString(c.Proc.String())
	sb.WriteString(" sat ")
	sb.WriteString(c.A.String())
	return sb.String()
}

// Proof is a node of a proof tree. Each concrete node type corresponds to
// one inference rule; the Checker computes and verifies the conclusion of
// every node rather than trusting the tree.
type Proof interface {
	// Rule returns the paper's name for the rule applied at this node.
	Rule() string
}

// Triviality is rule 1: from the (bounded) validity of T, conclude
// P sat T for any process P. T must not constrain anything Γ binds — in
// this mechanisation, T is discharged as a closed obligation.
type Triviality struct {
	P syntax.Proc
	T assertion.A
}

// Consequence is rule 2: from P sat R and the validity of R ⇒ S, conclude
// P sat S.
type Consequence struct {
	Premise Proof
	To      assertion.A
}

// Conjunction is rule 3: from P sat R and P sat S conclude P sat (R & S).
type Conjunction struct {
	P1, P2 Proof
}

// Emptiness is rule 4: from the validity of R_<> conclude STOP sat R.
type Emptiness struct {
	R assertion.A
}

// OutputStep is rule 5: from the validity of R_<> and a premise proving
// P sat R[e⌢c/c], conclude (c!e → P) sat R.
type OutputStep struct {
	Ch      syntax.ChanRef
	Val     syntax.Expr
	R       assertion.A
	Premise Proof
}

// InputStep is rule 6: from the validity of R_<> and a premise proving
// ∀v∈M. P[v/x] sat R[v⌢c/c] (v fresh), conclude (c?x:M → P) sat R.
type InputStep struct {
	Ch    syntax.ChanRef
	Var   string
	Dom   syntax.SetExpr
	Body  syntax.Proc
	Fresh string
	R     assertion.A
	// Premise proves the quantified claim ∀Fresh∈Dom. Body[Fresh/Var] sat
	// R[Fresh⌢Ch/Ch].
	Premise Proof
}

// Alternative is rule 7: from P sat R and Q sat R conclude (P | Q) sat R.
type Alternative struct {
	P1, P2 Proof
}

// Parallelism is rule 8: from P sat R and Q sat S, with every channel of R
// in P's alphabet X and every channel of S in Q's alphabet Y, conclude
// (P X‖Y Q) sat (R & S). Explicit alphabets may widen the inferred ones.
type Parallelism struct {
	P1, P2         Proof
	AlphaL, AlphaR []syntax.ChanItem // optional explicit alphabets
}

// ChanIntro is rule 9: from P sat R, with R mentioning no channel of L,
// conclude (chan L; P) sat R.
type ChanIntro struct {
	Channels []syntax.ChanItem
	Premise  Proof
}

// RecDef is one definition participating in a recursion-rule application:
// the claim to establish about the named process. For a process array the
// claim quantifies the definition's parameter.
type RecDef struct {
	// Name is the process (or process array) name, which must be defined
	// in the module.
	Name string
	// Claim is what to prove about it: for a plain process,
	// {Proc: Ref{Name}, A: R}; for an array, {Quants: [(x, M)],
	// Proc: Ref{Name, Sub: Var x}, A: S}.
	Claim Claim
	// Premise proves the claim with the defining body substituted for the
	// reference — ∀quants. Body sat A — under the hypotheses that all the
	// participating claims hold (rule 10's self-assumption).
	Premise Proof
}

// Recursion is rule 10, covering plain, array and mutual recursion: each
// participating definition's body is shown to satisfy its claim assuming
// all the claims, and each claim's R_<> is valid. The conclusion indexed by
// Main is the claim of Defs[Main].
type Recursion struct {
	Defs []RecDef
	Main int
}

// Hypothesis cites a claim assumed in scope by an enclosing Recursion
// (keyed by the defined process name), optionally instantiating its
// quantified variables with terms. Insts must be empty or instantiate
// every quantifier.
type Hypothesis struct {
	Name  string
	Insts []assertion.Term
}

// ForAllIntro packages the paper's ∀-introduction: from a premise proving a
// claim with Var free (schematically), conclude the claim quantified by
// ∀Var∈Dom.
type ForAllIntro struct {
	Var     string
	Dom     syntax.SetExpr
	Premise Proof
}

// Instantiate is ∀-elimination on a proven quantified claim: substitute
// Terms for the leading quantifiers.
type Instantiate struct {
	Premise Proof
	Terms   []assertion.Term
}

// Unfold concludes p sat R (or q[e] sat S[e/x]) from a premise about the
// definition's instantiated body. It is the degenerate, non-self-referential
// use of the recursion rule, convenient for network-assembly definitions
// like protocol ≜ chan wire; (sender ‖ receiver).
type Unfold struct {
	Ref     syntax.Ref
	Premise Proof
}

func (Triviality) Rule() string  { return "triviality" }
func (Consequence) Rule() string { return "consequence" }
func (Conjunction) Rule() string { return "conjunction" }
func (Emptiness) Rule() string   { return "emptiness" }
func (OutputStep) Rule() string  { return "output" }
func (InputStep) Rule() string   { return "input" }
func (Alternative) Rule() string { return "alternative" }
func (Parallelism) Rule() string { return "parallelism" }
func (ChanIntro) Rule() string   { return "chan" }
func (Recursion) Rule() string   { return "recursion" }
func (Hypothesis) Rule() string  { return "hypothesis" }
func (ForAllIntro) Rule() string { return "forall-intro" }
func (Instantiate) Rule() string { return "forall-elim" }
func (Unfold) Rule() string      { return "unfold" }
