package proof

import (
	"context"
	"fmt"
	"reflect"
	"strconv"
	"strings"

	"cspsat/internal/assertion"
	"cspsat/internal/csperr"
	"cspsat/internal/pool"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
	"cspsat/internal/trace"
	"cspsat/internal/value"
)

// Checker verifies proof trees against a module. It is stateful only in its
// configuration; each Check call is independent.
type Checker struct {
	env   sem.Env
	funcs *assertion.Registry
	// Validity bounds the discharge of pure obligations; its Env and Funcs
	// fields are filled in by the checker.
	Validity assertion.ValidityConfig
	// Log, when non-nil, receives one line per checked rule application.
	Log func(string)
	// Steps, when non-nil, collects every verified rule application in
	// post-order (premises before conclusions), for rendering in the
	// paper's Table-1 style; see Render.
	Steps *[]Step
	// Ctx, when non-nil, is checked at every rule application; once done,
	// Check returns an error wrapping csperr.ErrCanceled. Deep proof trees
	// and wide validity domains make single obligations slow, so the check
	// sits on the rule granularity rather than per trace.
	Ctx context.Context

	nesting    int
	discharged int
}

// Discharged reports how many pure side conditions the validity oracle
// accepted during the last Check call (the batch layer sums these into the
// progress events).
func (c *Checker) Discharged() int { return c.discharged }

// Step is one verified rule application: the claim concluded, the rule
// used, and the nesting depth of the node in the proof tree (premises sit
// one level deeper than their conclusion).
type Step struct {
	Depth int
	Rule  string
	Claim Claim
}

// NewChecker returns a checker over the module environment. funcs may be
// nil when assertions use no registered functions.
func NewChecker(env sem.Env, funcs *assertion.Registry) *Checker {
	if funcs == nil {
		funcs = assertion.NewRegistry()
	}
	return &Checker{env: env, funcs: funcs}
}

// scope carries the in-scope recursion hypotheses and the domains of
// schematically free variables during a check.
type scope struct {
	hyps    map[string]Claim
	varDoms map[string]syntax.SetExpr
}

func (s scope) withHyps(claims map[string]Claim) scope {
	out := scope{hyps: map[string]Claim{}, varDoms: s.varDoms}
	for k, v := range s.hyps {
		out.hyps[k] = v
	}
	for k, v := range claims {
		out.hyps[k] = v
	}
	return out
}

func (s scope) withVar(name string, dom syntax.SetExpr) scope {
	out := scope{hyps: s.hyps, varDoms: map[string]syntax.SetExpr{}}
	for k, v := range s.varDoms {
		out.varDoms[k] = v
	}
	out.varDoms[name] = dom
	return out
}

// Check verifies the proof tree and returns its conclusion.
func (c *Checker) Check(p Proof) (Claim, error) {
	c.discharged = 0
	return c.check(p, scope{hyps: map[string]Claim{}, varDoms: map[string]syntax.SetExpr{}})
}

func (c *Checker) log(format string, args ...any) {
	if c.Log != nil {
		c.Log(fmt.Sprintf(format, args...))
	}
}

func (c *Checker) check(p Proof, sc scope) (Claim, error) {
	if err := pool.Canceled(c.Ctx); err != nil {
		return Claim{}, err
	}
	c.nesting++
	cl, err := c.checkNode(p, sc)
	c.nesting--
	if err != nil {
		return Claim{}, err
	}
	if c.Steps != nil {
		*c.Steps = append(*c.Steps, Step{Depth: c.nesting, Rule: p.Rule(), Claim: cl})
	}
	c.log("%-12s ⊢ %s", p.Rule(), cl)
	return cl, nil
}

func (c *Checker) checkNode(p Proof, sc scope) (Claim, error) {
	switch n := p.(type) {
	case Triviality:
		if err := c.discharge(n.T, sc); err != nil {
			return Claim{}, fmt.Errorf("triviality: %w", err)
		}
		return Claim{Proc: n.P, A: n.T}, nil

	case Consequence:
		prem, err := c.check(n.Premise, sc)
		if err != nil {
			return Claim{}, err
		}
		inner := sc
		for _, q := range prem.Quants {
			inner = inner.withVar(q.Var, q.Dom)
		}
		ob := assertion.Implies{L: prem.A, R: n.To}
		if err := c.discharge(ob, inner); err != nil {
			return Claim{}, fmt.Errorf("consequence: %s: %w", ob, err)
		}
		return Claim{Quants: prem.Quants, Proc: prem.Proc, A: n.To}, nil

	case Conjunction:
		p1, err := c.check(n.P1, sc)
		if err != nil {
			return Claim{}, err
		}
		p2, err := c.check(n.P2, sc)
		if err != nil {
			return Claim{}, err
		}
		if len(p1.Quants) != 0 || len(p2.Quants) != 0 {
			return Claim{}, fmt.Errorf("conjunction: premises must be unquantified; quantify the conjunction afterwards")
		}
		if !reflect.DeepEqual(p1.Proc, p2.Proc) {
			return Claim{}, fmt.Errorf("conjunction: premises about different processes:\n  %s\n  %s", p1.Proc, p2.Proc)
		}
		return Claim{Proc: p1.Proc, A: assertion.And{L: p1.A, R: p2.A}}, nil

	case Emptiness:
		ob := assertion.EmptyAllChans(n.R)
		if err := c.discharge(ob, sc); err != nil {
			return Claim{}, fmt.Errorf("emptiness: R_<> = %s: %w", ob, err)
		}
		return Claim{Proc: syntax.Stop{}, A: n.R}, nil

	case OutputStep:
		return c.checkOutput(n, sc)

	case InputStep:
		return c.checkInput(n, sc)

	case Alternative:
		p1, err := c.check(n.P1, sc)
		if err != nil {
			return Claim{}, err
		}
		p2, err := c.check(n.P2, sc)
		if err != nil {
			return Claim{}, err
		}
		if len(p1.Quants) != 0 || len(p2.Quants) != 0 {
			return Claim{}, fmt.Errorf("alternative: premises must be unquantified")
		}
		if !reflect.DeepEqual(p1.A, p2.A) {
			return Claim{}, fmt.Errorf("alternative: premises prove different assertions:\n  %s\n  %s", p1.A, p2.A)
		}
		return Claim{Proc: syntax.Alt{L: p1.Proc, R: p2.Proc}, A: p1.A}, nil

	case Parallelism:
		return c.checkParallel(n, sc)

	case ChanIntro:
		prem, err := c.check(n.Premise, sc)
		if err != nil {
			return Claim{}, err
		}
		if len(prem.Quants) != 0 {
			return Claim{}, fmt.Errorf("chan: premise must be unquantified")
		}
		hidden, err := c.env.EvalChanItems(n.Channels)
		if err != nil {
			return Claim{}, fmt.Errorf("chan: %w", err)
		}
		for key := range assertion.FreeChans(prem.A) {
			if keyMeetsSet(key, hidden) {
				return Claim{}, fmt.Errorf("chan: assertion %s mentions hidden channel %s", prem.A, key)
			}
		}
		return Claim{Proc: syntax.Hiding{Channels: n.Channels, Body: prem.Proc}, A: prem.A}, nil

	case Recursion:
		return c.checkRecursion(n, sc)

	case Hypothesis:
		return c.checkHypothesis(n, sc)

	case ForAllIntro:
		// Paper side condition on ∀-introduction: the variable must not be
		// free in the assumptions Γ.
		for name, hyp := range sc.hyps {
			if claimFreeVars(hyp)[n.Var] {
				return Claim{}, fmt.Errorf("forall-intro: %s is free in hypothesis %s", n.Var, name)
			}
		}
		prem, err := c.check(n.Premise, sc.withVar(n.Var, n.Dom))
		if err != nil {
			return Claim{}, err
		}
		return Claim{
			Quants: append([]Quant{{Var: n.Var, Dom: n.Dom}}, prem.Quants...),
			Proc:   prem.Proc,
			A:      prem.A,
		}, nil

	case Instantiate:
		prem, err := c.check(n.Premise, sc)
		if err != nil {
			return Claim{}, err
		}
		return c.instantiate(prem, n.Terms, sc)

	case Unfold:
		return c.checkUnfold(n, sc)

	default:
		return Claim{}, fmt.Errorf("proof: unknown proof node %T", p)
	}
}

func (c *Checker) checkOutput(n OutputStep, sc scope) (Claim, error) {
	ch, err := c.env.EvalChanRef(n.Ch)
	if err != nil {
		return Claim{}, fmt.Errorf("output: schematic channel %s unsupported: %w", n.Ch, err)
	}
	eTerm, err := ExprToTerm(n.Val)
	if err != nil {
		return Claim{}, fmt.Errorf("output: %w", err)
	}
	ob := assertion.EmptyAllChans(n.R)
	if err := c.discharge(ob, sc); err != nil {
		return Claim{}, fmt.Errorf("output: R_<> = %s: %w", ob, err)
	}
	want, err := assertion.SubstChanCons(n.R, ch, eTerm)
	if err != nil {
		return Claim{}, fmt.Errorf("output: %w", err)
	}
	prem, err := c.check(n.Premise, sc)
	if err != nil {
		return Claim{}, err
	}
	if len(prem.Quants) != 0 {
		return Claim{}, fmt.Errorf("output: premise must be unquantified")
	}
	if !reflect.DeepEqual(prem.A, want) {
		return Claim{}, fmt.Errorf("output: premise proves\n  %s\nbut the rule needs R[e⌢c/c] =\n  %s", prem.A, want)
	}
	return Claim{
		Proc: syntax.Output{Ch: n.Ch, Val: n.Val, Cont: prem.Proc},
		A:    n.R,
	}, nil
}

func (c *Checker) checkInput(n InputStep, sc scope) (Claim, error) {
	ch, err := c.env.EvalChanRef(n.Ch)
	if err != nil {
		return Claim{}, fmt.Errorf("input: schematic channel %s unsupported: %w", n.Ch, err)
	}
	// Freshness: v not free in P, R (it may equal the bound x itself).
	if n.Fresh != n.Var {
		if syntax.FreeVarsProc(n.Body)[n.Fresh] {
			return Claim{}, fmt.Errorf("input: fresh variable %s is free in the body", n.Fresh)
		}
	}
	if assertion.FreeVars(n.R)[n.Fresh] {
		return Claim{}, fmt.Errorf("input: fresh variable %s is free in R", n.Fresh)
	}
	ob := assertion.EmptyAllChans(n.R)
	if err := c.discharge(ob, sc); err != nil {
		return Claim{}, fmt.Errorf("input: R_<> = %s: %w", ob, err)
	}
	wantA, err := assertion.SubstChanCons(n.R, ch, assertion.Var(n.Fresh))
	if err != nil {
		return Claim{}, fmt.Errorf("input: %w", err)
	}
	want := Claim{
		Quants: []Quant{{Var: n.Fresh, Dom: n.Dom}},
		Proc:   syntax.SubstProc(n.Body, n.Var, syntax.Var{Name: n.Fresh}),
		A:      wantA,
	}
	prem, err := c.check(n.Premise, sc)
	if err != nil {
		return Claim{}, err
	}
	if !claimsAlphaEqual(prem, want) {
		return Claim{}, fmt.Errorf("input: premise proves\n  %s\nbut the rule needs\n  %s", prem, want)
	}
	return Claim{
		Proc: syntax.Input{Ch: n.Ch, Var: n.Var, Dom: n.Dom, Cont: n.Body},
		A:    n.R,
	}, nil
}

func (c *Checker) checkParallel(n Parallelism, sc scope) (Claim, error) {
	p1, err := c.check(n.P1, sc)
	if err != nil {
		return Claim{}, err
	}
	p2, err := c.check(n.P2, sc)
	if err != nil {
		return Claim{}, err
	}
	if len(p1.Quants) != 0 || len(p2.Quants) != 0 {
		return Claim{}, fmt.Errorf("parallelism: premises must be unquantified")
	}
	par := syntax.Par{L: p1.Proc, R: p2.Proc, AlphaL: n.AlphaL, AlphaR: n.AlphaR}
	x, y, err := sem.ParAlphabets(par, c.env)
	if err != nil {
		return Claim{}, fmt.Errorf("parallelism: %w", err)
	}
	for key := range assertion.FreeChans(p1.A) {
		in, err := keyInSet(key, x)
		if err != nil {
			return Claim{}, fmt.Errorf("parallelism: %w", err)
		}
		if !in {
			return Claim{}, fmt.Errorf("parallelism: %s mentions %s outside left alphabet %s", p1.A, key, x)
		}
	}
	for key := range assertion.FreeChans(p2.A) {
		in, err := keyInSet(key, y)
		if err != nil {
			return Claim{}, fmt.Errorf("parallelism: %w", err)
		}
		if !in {
			return Claim{}, fmt.Errorf("parallelism: %s mentions %s outside right alphabet %s", p2.A, key, y)
		}
	}
	return Claim{Proc: par, A: assertion.And{L: p1.A, R: p2.A}}, nil
}

func (c *Checker) checkRecursion(n Recursion, sc scope) (Claim, error) {
	if len(n.Defs) == 0 {
		return Claim{}, fmt.Errorf("recursion: no definitions")
	}
	if n.Main < 0 || n.Main >= len(n.Defs) {
		return Claim{}, fmt.Errorf("recursion: main index %d out of range", n.Main)
	}
	hyps := map[string]Claim{}
	for _, d := range n.Defs {
		def, ok := c.env.Module().Lookup(d.Name)
		if !ok {
			return Claim{}, fmt.Errorf("recursion: process %q not defined in module", d.Name)
		}
		if err := validateRecClaim(d, def); err != nil {
			return Claim{}, err
		}
		hyps[d.Name] = d.Claim
	}
	inner := sc.withHyps(hyps)
	for _, d := range n.Defs {
		def, _ := c.env.Module().Lookup(d.Name)
		// First auxiliary inference: ∀quants. R_<>.
		obScope := inner
		for _, q := range d.Claim.Quants {
			obScope = obScope.withVar(q.Var, q.Dom)
		}
		ob := assertion.EmptyAllChans(d.Claim.A)
		if err := c.discharge(ob, obScope); err != nil {
			return Claim{}, fmt.Errorf("recursion(%s): R_<> = %s: %w", d.Name, ob, err)
		}
		// Second auxiliary inference: the body satisfies the claim under
		// the self-assumptions.
		body := def.Body
		if def.IsArray() {
			body = syntax.SubstProc(body, def.Param, syntax.Var{Name: d.Claim.Quants[0].Var})
		}
		want := Claim{Quants: d.Claim.Quants, Proc: body, A: d.Claim.A}
		prem, err := c.check(d.Premise, inner)
		if err != nil {
			return Claim{}, fmt.Errorf("recursion(%s): %w", d.Name, err)
		}
		if !claimsAlphaEqual(prem, want) {
			return Claim{}, fmt.Errorf("recursion(%s): premise proves\n  %s\nbut the rule needs\n  %s", d.Name, prem, want)
		}
	}
	return n.Defs[n.Main].Claim, nil
}

func validateRecClaim(d RecDef, def *syntax.Def) error {
	if def.IsArray() {
		if len(d.Claim.Quants) != 1 {
			return fmt.Errorf("recursion: array %q needs exactly one quantifier, got %d", d.Name, len(d.Claim.Quants))
		}
		q := d.Claim.Quants[0]
		if !reflect.DeepEqual(q.Dom, def.ParamDom) {
			return fmt.Errorf("recursion: quantifier domain %s differs from %q's parameter domain %s", q.Dom, d.Name, def.ParamDom)
		}
		wantProc := syntax.Ref{Name: d.Name, Sub: syntax.Var{Name: q.Var}}
		if !reflect.DeepEqual(d.Claim.Proc, syntax.Proc(wantProc)) {
			return fmt.Errorf("recursion: claim for array %q must be about %s, got %s", d.Name, wantProc, d.Claim.Proc)
		}
		return nil
	}
	if len(d.Claim.Quants) != 0 {
		return fmt.Errorf("recursion: plain process %q must have an unquantified claim", d.Name)
	}
	if !reflect.DeepEqual(d.Claim.Proc, syntax.Proc(syntax.Ref{Name: d.Name})) {
		return fmt.Errorf("recursion: claim for %q must be about the reference %s, got %s", d.Name, d.Name, d.Claim.Proc)
	}
	return nil
}

func (c *Checker) checkHypothesis(n Hypothesis, sc scope) (Claim, error) {
	hyp, ok := sc.hyps[n.Name]
	if !ok {
		return Claim{}, fmt.Errorf("hypothesis: %q not in scope", n.Name)
	}
	if len(n.Insts) == 0 {
		return hyp, nil
	}
	return c.instantiate(hyp, n.Insts, sc)
}

func (c *Checker) instantiate(cl Claim, terms []assertion.Term, sc scope) (Claim, error) {
	if len(terms) > len(cl.Quants) {
		return Claim{}, fmt.Errorf("forall-elim: %d terms for %d quantifiers", len(terms), len(cl.Quants))
	}
	out := cl
	for _, t := range terms {
		q := out.Quants[0]
		if err := c.checkMembership(t, q.Dom, sc); err != nil {
			return Claim{}, fmt.Errorf("forall-elim: %w", err)
		}
		e, err := TermToExpr(t)
		if err != nil {
			return Claim{}, fmt.Errorf("forall-elim: %w", err)
		}
		out = Claim{
			Quants: out.Quants[1:],
			Proc:   syntax.SubstProc(out.Proc, q.Var, e),
			A:      assertion.SubstVar(out.A, q.Var, t),
		}
	}
	return out, nil
}

// checkMembership verifies that an instantiating term denotes a member of
// the quantifier's domain: a literal is tested directly; a variable is
// accepted when its registered schematic domain is syntactically the same.
func (c *Checker) checkMembership(t assertion.Term, dom syntax.SetExpr, sc scope) error {
	switch x := t.(type) {
	case assertion.Lit:
		d, err := c.env.EvalSet(dom)
		if err != nil {
			return err
		}
		if !d.Contains(x.Val) {
			return fmt.Errorf("%v is not in %s", x.Val, dom)
		}
		return nil
	case assertion.VarT:
		vd, ok := sc.varDoms[x.Name]
		if !ok {
			return fmt.Errorf("variable %s has no domain in scope", x.Name)
		}
		if !reflect.DeepEqual(vd, dom) {
			return fmt.Errorf("variable %s ranges over %s, not %s", x.Name, vd, dom)
		}
		return nil
	default:
		return fmt.Errorf("cannot establish membership of %s in %s", t, dom)
	}
}

func (c *Checker) checkUnfold(n Unfold, sc scope) (Claim, error) {
	def, ok := c.env.Module().Lookup(n.Ref.Name)
	if !ok {
		return Claim{}, fmt.Errorf("unfold: process %q not defined", n.Ref.Name)
	}
	var body syntax.Proc
	switch {
	case def.IsArray() && n.Ref.Sub != nil:
		body = syntax.SubstProc(def.Body, def.Param, n.Ref.Sub)
	case !def.IsArray() && n.Ref.Sub == nil:
		body = def.Body
	default:
		return Claim{}, fmt.Errorf("unfold: subscript mismatch for %s", n.Ref)
	}
	prem, err := c.check(n.Premise, sc)
	if err != nil {
		return Claim{}, err
	}
	if len(prem.Quants) != 0 {
		return Claim{}, fmt.Errorf("unfold: premise must be unquantified")
	}
	if !reflect.DeepEqual(prem.Proc, body) {
		return Claim{}, fmt.Errorf("unfold: premise is about\n  %s\nbut %s unfolds to\n  %s", prem.Proc, n.Ref, body)
	}
	return Claim{Proc: n.Ref, A: prem.A}, nil
}

// discharge checks a pure obligation by bounded validity, with the
// schematic variables in scope ranging over their registered domains.
func (c *Checker) discharge(a assertion.A, sc scope) error {
	cfg := c.Validity
	cfg.Env = c.env
	cfg.Funcs = c.funcs
	if cfg.VarDom == nil {
		cfg.VarDom = map[string]value.Domain{}
	} else {
		vd := make(map[string]value.Domain, len(cfg.VarDom))
		for k, v := range cfg.VarDom {
			vd[k] = v
		}
		cfg.VarDom = vd
	}
	for v, se := range sc.varDoms {
		d, err := c.env.EvalSet(se)
		if err != nil {
			return fmt.Errorf("domain of %s: %w", v, err)
		}
		cfg.VarDom[v] = d
	}
	cex, err := assertion.Valid(a, cfg)
	if err != nil {
		return err
	}
	if cex != nil {
		return fmt.Errorf("%w: obligation %s fails at %s", csperr.ErrObligationFailed, a, cex)
	}
	c.discharged++
	return nil
}

// Alpha-equality of claims: quantified variables are canonically renamed
// before structural comparison.

func claimsAlphaEqual(a, b Claim) bool {
	if len(a.Quants) != len(b.Quants) {
		return false
	}
	ca, cb := canonClaim(a), canonClaim(b)
	return reflect.DeepEqual(ca, cb)
}

func canonClaim(c Claim) Claim {
	out := Claim{Quants: make([]Quant, len(c.Quants)), Proc: c.Proc, A: c.A}
	for i, q := range c.Quants {
		fresh := "$" + strconv.Itoa(i)
		out.Quants[i] = Quant{Var: fresh, Dom: q.Dom}
		out.Proc = syntax.SubstProc(out.Proc, q.Var, syntax.Var{Name: fresh})
		out.A = assertion.SubstVar(out.A, q.Var, assertion.Var(fresh))
	}
	return out
}

func claimFreeVars(c Claim) map[string]bool {
	fv := syntax.FreeVarsProc(c.Proc)
	for v := range assertion.FreeVars(c.A) {
		fv[v] = true
	}
	for _, q := range c.Quants {
		delete(fv, q.Var)
	}
	return fv
}

// Channel keys from assertion.FreeChans are either concrete ("wire",
// "col[2]") or wildcard ("col[*]", a symbolically subscripted array). The
// two checks below are conservative on wildcards in the direction each
// rule needs.

// keyInSet reports whether the channel key is certainly inside the set
// (needed by parallelism: channels of R must lie inside X). A wildcard is
// inside only if... it cannot be established, so it is rejected.
func keyInSet(key string, s trace.Set) (bool, error) {
	if strings.HasSuffix(key, "[*]") {
		return false, fmt.Errorf("channel array %s subscripted symbolically; cannot verify alphabet containment", key)
	}
	return s.Contains(trace.Chan(key)), nil
}

// keyMeetsSet reports whether the channel key may intersect the set
// (needed by chan: R must mention no hidden channel). A wildcard meets the
// set whenever any element of the same array does.
func keyMeetsSet(key string, s trace.Set) bool {
	if name, ok := strings.CutSuffix(key, "[*]"); ok {
		for _, c := range s.Slice() {
			if arr, _, isArr := c.ArrayName(); isArr && arr == name {
				return true
			}
		}
		return false
	}
	return s.Contains(trace.Chan(key))
}
