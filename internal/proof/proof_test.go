package proof_test

import (
	"reflect"
	"strings"
	"testing"

	"cspsat/internal/assertion"
	"cspsat/internal/paper"
	"cspsat/internal/proof"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
	"cspsat/internal/value"
)

func checker(t *testing.T) *proof.Checker {
	t.Helper()
	env := sem.NewEnv(paper.CopySystem(), 2)
	c := proof.NewChecker(env, nil)
	c.Validity = assertion.ValidityConfig{MaxLen: 3}
	return c
}

func TestExprTermRoundTrip(t *testing.T) {
	exprs := []syntax.Expr{
		syntax.IntLit{Val: 7},
		syntax.SymLit{Name: "ACK"},
		syntax.Var{Name: "x"},
		syntax.Binary{Op: syntax.OpAdd,
			L: syntax.Binary{Op: syntax.OpMul, L: syntax.Index{Name: "v", Sub: syntax.Var{Name: "i"}}, R: syntax.Var{Name: "x"}},
			R: syntax.Var{Name: "y"}},
	}
	for _, e := range exprs {
		term, err := proof.ExprToTerm(e)
		if err != nil {
			t.Fatalf("ExprToTerm(%s): %v", e, err)
		}
		back, err := proof.TermToExpr(term)
		if err != nil {
			t.Fatalf("TermToExpr(%s): %v", term, err)
		}
		if !reflect.DeepEqual(e, back) {
			t.Errorf("round trip changed %s into %s", e, back)
		}
	}
	// Terms outside the shared fragment do not project.
	if _, err := proof.TermToExpr(assertion.Len{S: assertion.Chan("wire")}); err == nil {
		t.Error("#wire projected into the process language")
	}
	if _, err := proof.TermToExpr(assertion.Lit{Val: value.Seq()}); err == nil {
		t.Error("sequence literal projected")
	}
}

func TestTrivialityRule(t *testing.T) {
	c := checker(t)
	// ⊢ wire <= wire is always true, so any process satisfies it.
	cl, err := c.Check(proof.Triviality{
		P: syntax.Ref{Name: paper.NameCopier},
		T: assertion.PrefixLE(assertion.Chan("wire"), assertion.Chan("wire")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if cl.String() != "copier sat wire <= wire" {
		t.Errorf("conclusion = %s", cl)
	}
	// A falsifiable T is rejected.
	if _, err := c.Check(proof.Triviality{
		P: syntax.Stop{},
		T: assertion.PrefixLE(assertion.Chan("wire"), assertion.Chan("input")),
	}); err == nil {
		t.Error("falsifiable T accepted by triviality")
	}
}

func TestConjunctionRule(t *testing.T) {
	c := checker(t)
	p1 := proof.Emptiness{R: paper.CopierSat()}
	p2 := proof.Emptiness{R: paper.CopierLenSat()}
	cl, err := c.Check(proof.Conjunction{P1: p1, P2: p2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cl.A.(assertion.And); !ok {
		t.Fatalf("conclusion not a conjunction: %s", cl)
	}
	// Different processes are rejected.
	bad := proof.Conjunction{
		P1: p1,
		P2: proof.Triviality{P: syntax.Ref{Name: paper.NameCopier},
			T: assertion.PrefixLE(assertion.Chan("wire"), assertion.Chan("wire"))},
	}
	if _, err := c.Check(bad); err == nil {
		t.Error("conjunction across processes accepted")
	}
}

func TestAlternativeRule(t *testing.T) {
	c := checker(t)
	r := paper.CopierSat()
	cl, err := c.Check(proof.Alternative{
		P1: proof.Emptiness{R: r},
		P2: proof.Emptiness{R: r},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cl.String() != "(STOP | STOP) sat wire <= input" {
		t.Errorf("conclusion = %s", cl)
	}
	// Different assertions rejected.
	if _, err := c.Check(proof.Alternative{
		P1: proof.Emptiness{R: r},
		P2: proof.Emptiness{R: paper.RecopierSat()},
	}); err == nil {
		t.Error("alternative with differing assertions accepted")
	}
}

func TestOutputRulePremiseShape(t *testing.T) {
	c := checker(t)
	r := paper.CopierSat() // wire <= input
	// Correct premise: STOP sat (3^wire <= input)? That is R[3^wire/wire]
	// ... which is falsifiable at the empty history, so use a premise the
	// emptiness rule can in fact discharge: R = wire <= 3^input, premise
	// R[3^wire/wire] = 3^wire <= 3^input, and R_<>: <> <= <3>.
	r2 := assertion.PrefixLE(assertion.Chan("wire"),
		assertion.Cons{Head: assertion.Int(3), Tail: assertion.Chan("input")})
	prem := proof.Emptiness{R: assertion.PrefixLE(
		assertion.Cons{Head: assertion.Int(3), Tail: assertion.Chan("wire")},
		assertion.Cons{Head: assertion.Int(3), Tail: assertion.Chan("input")})}
	cl, err := c.Check(proof.OutputStep{
		Ch:      syntax.ChanRef{Name: "wire"},
		Val:     syntax.IntLit{Val: 3},
		R:       r2,
		Premise: prem,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cl.String() != "wire!3 -> STOP sat wire <= 3^input" {
		t.Errorf("conclusion = %s", cl)
	}
	// Wrong premise assertion is rejected.
	if _, err := c.Check(proof.OutputStep{
		Ch:      syntax.ChanRef{Name: "wire"},
		Val:     syntax.IntLit{Val: 3},
		R:       r,
		Premise: proof.Emptiness{R: r},
	}); err == nil {
		t.Error("output rule accepted a premise that is not R[e^c/c]")
	}
}

func TestInputRuleFreshnessConditions(t *testing.T) {
	c := checker(t)
	r := paper.CopierSat()
	body := syntax.Output{Ch: syntax.ChanRef{Name: "wire"}, Val: syntax.Var{Name: "x"}, Cont: syntax.Stop{}}
	mk := func(fresh string) proof.InputStep {
		return proof.InputStep{
			Ch: syntax.ChanRef{Name: "input"}, Var: "x", Dom: syntax.SetName{Name: "NAT"},
			Body: body, Fresh: fresh, R: r,
			Premise: proof.ForAllIntro{Var: fresh, Dom: syntax.SetName{Name: "NAT"},
				Premise: proof.Emptiness{R: r}},
		}
	}
	// Fresh variable clashing with a free variable of the body: rejected
	// before the premise is even compared.
	bad := mk("x")
	bad.Body = syntax.Output{Ch: syntax.ChanRef{Name: "wire"}, Val: syntax.Var{Name: "v"}, Cont: syntax.Stop{}}
	bad.Fresh = "v"
	if _, err := c.Check(bad); err == nil || !strings.Contains(err.Error(), "fresh") {
		t.Errorf("freshness violation not reported: %v", err)
	}
	// Fresh variable free in R.
	bad2 := mk("v")
	bad2.R = assertion.PrefixLE(assertion.Var("v"), assertion.Chan("input"))
	if _, err := c.Check(bad2); err == nil || !strings.Contains(err.Error(), "fresh") {
		t.Errorf("freshness-in-R violation not reported: %v", err)
	}
}

func TestInstantiateRule(t *testing.T) {
	c := checker(t)
	nat := syntax.SetName{Name: "NAT"}
	// ∀v∈NAT. STOP sat wire <= v^input, then instantiate v := 2.
	quantified := proof.ForAllIntro{
		Var: "v", Dom: nat,
		Premise: proof.Emptiness{R: assertion.PrefixLE(
			assertion.Chan("wire"),
			assertion.Cons{Head: assertion.Var("v"), Tail: assertion.Chan("input")})},
	}
	cl, err := c.Check(proof.Instantiate{Premise: quantified, Terms: []assertion.Term{assertion.Int(2)}})
	if err != nil {
		t.Fatal(err)
	}
	if cl.String() != "STOP sat wire <= 2^input" {
		t.Errorf("conclusion = %s", cl)
	}
	// Out-of-domain instantiation rejected (NAT contains no symbols).
	if _, err := c.Check(proof.Instantiate{Premise: quantified,
		Terms: []assertion.Term{assertion.Sym("ACK")}}); err == nil {
		t.Error("out-of-domain instantiation accepted")
	}
	// Too many terms rejected.
	if _, err := c.Check(proof.Instantiate{Premise: quantified,
		Terms: []assertion.Term{assertion.Int(0), assertion.Int(1)}}); err == nil {
		t.Error("over-instantiation accepted")
	}
}

func TestUnfoldRule(t *testing.T) {
	c := checker(t)
	// copynet ≜ copier ‖ recopier: conclude about the name from the body.
	r := assertion.PrefixLE(assertion.Chan("wire"), assertion.Chan("wire"))
	body := proof.Triviality{
		P: syntax.Par{L: syntax.Ref{Name: paper.NameCopier}, R: syntax.Ref{Name: paper.NameRecopier}},
		T: r,
	}
	cl, err := c.Check(proof.Unfold{Ref: syntax.Ref{Name: paper.NameCopyNet}, Premise: body})
	if err != nil {
		t.Fatal(err)
	}
	if cl.String() != "copynet sat wire <= wire" {
		t.Errorf("conclusion = %s", cl)
	}
	// Premise about a different process is rejected.
	wrong := proof.Triviality{P: syntax.Stop{}, T: r}
	if _, err := c.Check(proof.Unfold{Ref: syntax.Ref{Name: paper.NameCopyNet}, Premise: wrong}); err == nil {
		t.Error("unfold with mismatched body accepted")
	}
	if _, err := c.Check(proof.Unfold{Ref: syntax.Ref{Name: "ghost"}, Premise: wrong}); err == nil {
		t.Error("unfold of undefined process accepted")
	}
}

func TestRecursionValidation(t *testing.T) {
	env := sem.NewEnv(paper.ProtocolSystem(2), 2)
	c := proof.NewChecker(env, nil)
	c.Validity = assertion.ValidityConfig{MaxLen: 2,
		DefaultDom: value.IntRange{Lo: 0, Hi: 1}}
	// Claim about an array with no quantifier: rejected.
	bad := proof.Recursion{Defs: []proof.RecDef{{
		Name:    paper.NameQ,
		Claim:   proof.Claim{Proc: syntax.Ref{Name: paper.NameQ}, A: assertion.True()},
		Premise: proof.Emptiness{R: assertion.True()},
	}}}
	if _, err := c.Check(bad); err == nil {
		t.Error("array recursion without quantifier accepted")
	}
	// Quantifier domain differing from the parameter domain: rejected.
	bad2 := proof.Recursion{Defs: []proof.RecDef{{
		Name: paper.NameQ,
		Claim: proof.Claim{
			Quants: []proof.Quant{{Var: "x", Dom: syntax.SetName{Name: "NAT"}}},
			Proc:   syntax.Ref{Name: paper.NameQ, Sub: syntax.Var{Name: "x"}},
			A:      assertion.True(),
		},
		Premise: proof.Emptiness{R: assertion.True()},
	}}}
	if _, err := c.Check(bad2); err == nil {
		t.Error("mismatched quantifier domain accepted")
	}
	// Unknown process name.
	bad3 := proof.Recursion{Defs: []proof.RecDef{{
		Name:    "ghost",
		Claim:   proof.Claim{Proc: syntax.Ref{Name: "ghost"}, A: assertion.True()},
		Premise: proof.Emptiness{R: assertion.True()},
	}}}
	if _, err := c.Check(bad3); err == nil {
		t.Error("recursion over undefined process accepted")
	}
	// Main index out of range.
	bad4 := proof.Recursion{Main: 3}
	if _, err := c.Check(bad4); err == nil {
		t.Error("empty/misindexed recursion accepted")
	}
}

func TestForAllIntroSideCondition(t *testing.T) {
	// ∀-introduction must refuse a variable free in a hypothesis in scope.
	env := sem.NewEnv(paper.CopySystem(), 2)
	c := proof.NewChecker(env, nil)
	c.Validity = assertion.ValidityConfig{MaxLen: 2}
	// Inside a recursion on copier with claim mentioning free variable k,
	// generalising over k must fail.
	rWithK := assertion.PrefixLE(
		assertion.Cons{Head: assertion.Var("k"), Tail: assertion.Chan("wire")},
		assertion.Cons{Head: assertion.Var("k"), Tail: assertion.Chan("input")})
	rec := proof.Recursion{Defs: []proof.RecDef{{
		Name:  paper.NameCopier,
		Claim: proof.Claim{Proc: syntax.Ref{Name: paper.NameCopier}, A: rWithK},
		Premise: proof.ForAllIntro{
			Var: "k", Dom: syntax.SetName{Name: "NAT"},
			Premise: proof.Hypothesis{Name: paper.NameCopier},
		},
	}}}
	_, err := c.Check(rec)
	if err == nil || !strings.Contains(err.Error(), "free in hypothesis") {
		t.Errorf("∀-intro side condition not enforced: %v", err)
	}
}

func TestClaimString(t *testing.T) {
	cl := proof.Claim{
		Quants: []proof.Quant{{Var: "x", Dom: syntax.SetName{Name: "M"}}},
		Proc:   syntax.Ref{Name: "q", Sub: syntax.Var{Name: "x"}},
		A:      assertion.True(),
	}
	if got := cl.String(); got != "forall x in M. q[x] sat true" {
		t.Errorf("Claim.String = %q", got)
	}
}

func TestRuleNames(t *testing.T) {
	names := []struct {
		p    proof.Proof
		want string
	}{
		{proof.Triviality{}, "triviality"},
		{proof.Consequence{}, "consequence"},
		{proof.Conjunction{}, "conjunction"},
		{proof.Emptiness{}, "emptiness"},
		{proof.OutputStep{}, "output"},
		{proof.InputStep{}, "input"},
		{proof.Alternative{}, "alternative"},
		{proof.Parallelism{}, "parallelism"},
		{proof.ChanIntro{}, "chan"},
		{proof.Recursion{}, "recursion"},
		{proof.Hypothesis{}, "hypothesis"},
		{proof.ForAllIntro{}, "forall-intro"},
		{proof.Instantiate{}, "forall-elim"},
		{proof.Unfold{}, "unfold"},
	}
	for _, tc := range names {
		if got := tc.p.Rule(); got != tc.want {
			t.Errorf("Rule() = %q, want %q", got, tc.want)
		}
	}
}

func TestRenderTableStyle(t *testing.T) {
	c := checker(t)
	var steps []proof.Step
	c.Steps = &steps
	if _, err := c.Check(proofsCopierLike()); err != nil {
		t.Fatal(err)
	}
	out := proof.RenderString(steps)
	// Structure: numbered lines, justifications citing premises.
	if !strings.Contains(out, "( 1)") || !strings.Contains(out, "[emptiness]") {
		t.Errorf("render:\n%s", out)
	}
	if !strings.Contains(out, "[conjunction (1,2)]") {
		t.Errorf("premise citation missing:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != len(steps) {
		t.Errorf("rendered %d lines for %d steps", lines, len(steps))
	}
}

// proofsCopierLike builds a tiny two-premise proof for render tests.
func proofsCopierLike() proof.Proof {
	return proof.Conjunction{
		P1: proof.Emptiness{R: paper.CopierSat()},
		P2: proof.Emptiness{R: paper.CopierLenSat()},
	}
}
