package proof

import (
	"fmt"

	"cspsat/internal/assertion"
	"cspsat/internal/syntax"
	"cspsat/internal/value"
)

// ExprToTerm embeds a process-language expression into the assertion
// language (the output rule substitutes the transmitted expression e into
// R). The two languages share constants, variables, arithmetic and constant
// arrays, so the embedding is total.
func ExprToTerm(e syntax.Expr) (assertion.Term, error) {
	switch x := e.(type) {
	case syntax.IntLit:
		return assertion.Int(x.Val), nil
	case syntax.SymLit:
		return assertion.Sym(x.Name), nil
	case syntax.Var:
		return assertion.Var(x.Name), nil
	case syntax.Binary:
		l, err := ExprToTerm(x.L)
		if err != nil {
			return nil, err
		}
		r, err := ExprToTerm(x.R)
		if err != nil {
			return nil, err
		}
		op, err := arithOp(x.Op)
		if err != nil {
			return nil, err
		}
		return assertion.Arith{Op: op, L: l, R: r}, nil
	case syntax.Index:
		sub, err := ExprToTerm(x.Sub)
		if err != nil {
			return nil, err
		}
		return assertion.ConstIndex{Name: x.Name, Sub: sub}, nil
	default:
		return nil, fmt.Errorf("proof: cannot embed expression %v into the assertion language", e)
	}
}

// TermToExpr projects an assertion term back into the process language,
// when it lies in the shared fragment (∀-elimination substitutes terms into
// process subscripts).
func TermToExpr(t assertion.Term) (syntax.Expr, error) {
	switch x := t.(type) {
	case assertion.Lit:
		switch x.Val.Kind() {
		case value.KindInt:
			return syntax.IntLit{Val: x.Val.AsInt()}, nil
		case value.KindSym:
			return syntax.SymLit{Name: x.Val.AsSym()}, nil
		default:
			return nil, fmt.Errorf("proof: literal %v has no process-language form", x.Val)
		}
	case assertion.VarT:
		return syntax.Var{Name: x.Name}, nil
	case assertion.Arith:
		l, err := TermToExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := TermToExpr(x.R)
		if err != nil {
			return nil, err
		}
		op, err := binOp(x.Op)
		if err != nil {
			return nil, err
		}
		return syntax.Binary{Op: op, L: l, R: r}, nil
	case assertion.ConstIndex:
		sub, err := TermToExpr(x.Sub)
		if err != nil {
			return nil, err
		}
		return syntax.Index{Name: x.Name, Sub: sub}, nil
	default:
		return nil, fmt.Errorf("proof: term %s has no process-language form", t)
	}
}

func arithOp(op syntax.BinOp) (assertion.ArithOp, error) {
	switch op {
	case syntax.OpAdd:
		return assertion.AAdd, nil
	case syntax.OpSub:
		return assertion.ASub, nil
	case syntax.OpMul:
		return assertion.AMul, nil
	case syntax.OpDiv:
		return assertion.ADiv, nil
	case syntax.OpMod:
		return assertion.AMod, nil
	default:
		return 0, fmt.Errorf("proof: unknown operator %v", op)
	}
}

func binOp(op assertion.ArithOp) (syntax.BinOp, error) {
	switch op {
	case assertion.AAdd:
		return syntax.OpAdd, nil
	case assertion.ASub:
		return syntax.OpSub, nil
	case assertion.AMul:
		return syntax.OpMul, nil
	case assertion.ADiv:
		return syntax.OpDiv, nil
	case assertion.AMod:
		return syntax.OpMod, nil
	default:
		return 0, fmt.Errorf("proof: unknown operator %v", op)
	}
}
