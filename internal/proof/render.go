package proof

import (
	"fmt"
	"io"
	"strings"
)

// Render writes checker-collected steps in the style of the paper's
// Table 1: one numbered line per verified rule application, premises
// before conclusions, with each line's justification citing the rule name
// and the step numbers of its premises:
//
//	( 1)  copier sat v^wire <= v^input              [hypothesis]
//	( 2)  copier sat wire <= v^input                [consequence (1)]
//	( 3)  wire!v -> copier sat wire <= v^input      [output (2)]
//	...
//
// Steps come from Checker.Steps in post-order with nesting depths; a
// step's premises are the maximal run of deeper steps immediately before
// it.
func Render(w io.Writer, steps []Step) error {
	premises := premiseIndices(steps)
	width := 0
	for _, s := range steps {
		if l := len(s.Claim.String()); l > width {
			width = l
		}
	}
	if width > 78 {
		width = 78
	}
	for i, s := range steps {
		just := s.Rule
		if len(premises[i]) > 0 {
			nums := make([]string, len(premises[i]))
			for j, p := range premises[i] {
				nums[j] = fmt.Sprintf("%d", p+1)
			}
			just += " (" + strings.Join(nums, ",") + ")"
		}
		if _, err := fmt.Fprintf(w, "(%2d)  %-*s  [%s]\n", i+1, width, s.Claim.String(), just); err != nil {
			return err
		}
	}
	return nil
}

// premiseIndices recovers, for each step, the indices of its direct
// premises: the steps at depth+1 since the last step at depth ≤ its own.
func premiseIndices(steps []Step) [][]int {
	out := make([][]int, len(steps))
	for i, s := range steps {
		var prems []int
		for j := i - 1; j >= 0; j-- {
			if steps[j].Depth <= s.Depth {
				break
			}
			if steps[j].Depth == s.Depth+1 {
				prems = append(prems, j)
			}
		}
		// Collected right-to-left; restore left-to-right premise order.
		for l, r := 0, len(prems)-1; l < r; l, r = l+1, r-1 {
			prems[l], prems[r] = prems[r], prems[l]
		}
		out[i] = prems
	}
	return out
}

// RenderString is Render into a string, for tests and small tools.
func RenderString(steps []Step) string {
	var sb strings.Builder
	_ = Render(&sb, steps)
	return sb.String()
}
