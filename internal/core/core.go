// Package core is the library's facade: it ties the parser, the semantic
// engines, the model checker, the proof checker and the concurrent runtime
// together behind one System type. The command-line tools and the examples
// are thin wrappers over this package.
//
// Typical use:
//
//	sys, err := core.Load(src, core.Options{})
//	res, err := sys.CheckAll(8)      // model-check every assert clause
//	run, err := sys.Run("protocol", 42, 200)  // execute on goroutines
package core

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"cspsat/internal/assertion"
	"cspsat/internal/check"
	"cspsat/internal/closure"
	"cspsat/internal/failures"
	"cspsat/internal/model"
	"cspsat/internal/op"
	"cspsat/internal/parser"
	"cspsat/internal/pool"
	"cspsat/internal/progress"
	"cspsat/internal/proof"
	"cspsat/internal/runtime"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
	"cspsat/internal/value"
)

// Options configure a System.
type Options struct {
	// NatWidth is the enumeration width of the infinite NAT domain in the
	// finite-branching engines. Zero means value.DefaultNatSample.
	NatWidth int
	// Funcs supplies the registered assertion functions; nil means the
	// default registry (which includes the paper's protocol function f).
	Funcs *assertion.Registry
}

// System is a loaded module plus everything needed to analyse it.
type System struct {
	Module  *syntax.Module
	Asserts []parser.AssertDecl

	env   sem.Env
	funcs *assertion.Registry
}

// Load parses a .csp source text into a System.
func Load(src string, opts Options) (*System, error) {
	f, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	sys := FromModule(f.Module, opts)
	sys.Asserts = f.Asserts
	return sys, nil
}

// LoadFile reads and parses a .csp file.
func LoadFile(path string, opts Options) (*System, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sys, err := Load(string(data), opts)
	if err != nil {
		return nil, fmt.Errorf("%s:%w", path, err)
	}
	return sys, nil
}

// FromModule wraps an already-constructed module.
func FromModule(m *syntax.Module, opts Options) *System {
	funcs := opts.Funcs
	if funcs == nil {
		funcs = assertion.NewRegistry()
	}
	return &System{
		Module: m,
		env:    sem.NewEnv(m, opts.NatWidth),
		funcs:  funcs,
	}
}

// Env returns the system's evaluation environment.
func (s *System) Env() sem.Env { return s.env }

// Funcs returns the system's assertion-function registry.
func (s *System) Funcs() *assertion.Registry { return s.funcs }

// Proc returns a reference to a defined process; it fails if the name is
// not defined (or is a process array, which needs a subscript).
func (s *System) Proc(name string) (syntax.Proc, error) {
	def, ok := s.Module.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("core: process %q not defined", name)
	}
	if def.IsArray() {
		return nil, fmt.Errorf("core: %q is a process array; use ProcIdx", name)
	}
	return syntax.Ref{Name: name}, nil
}

// ProcIdx returns a reference to an element of a process array.
func (s *System) ProcIdx(name string, idx int64) (syntax.Proc, error) {
	def, ok := s.Module.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("core: process %q not defined", name)
	}
	if !def.IsArray() {
		return nil, fmt.Errorf("core: %q is not a process array", name)
	}
	return syntax.Ref{Name: name, Sub: syntax.IntLit{Val: idx}}, nil
}

// Traces enumerates the visible traces of a process to the given depth.
func (s *System) Traces(p syntax.Proc, depth int) (*closure.Set, error) {
	return op.Traces(p, s.env, depth)
}

// TracesContext is Traces under a context, with the exploration's BFS
// frontier fanned across workers goroutines when workers > 1.
func (s *System) TracesContext(ctx context.Context, p syntax.Proc, depth, workers int) (*closure.Set, error) {
	return op.TracesContext(ctx, p, s.env, depth, workers)
}

// Denote computes the paper's denotational semantics of a process to the
// given trace-length window.
func (s *System) Denote(p syntax.Proc, depth int) (*closure.Set, error) {
	return sem.Denote(p, s.env, depth)
}

// DenoteContext is Denote under a context, with each approximation-chain
// pass recomputing the registered instances across workers goroutines when
// workers > 1.
func (s *System) DenoteContext(ctx context.Context, p syntax.Proc, depth, workers int) (*closure.Set, error) {
	return sem.DenoteContext(ctx, p, s.env, depth, workers)
}

// Checker returns a model checker for this system at the given depth.
func (s *System) Checker(depth int) *check.Checker {
	return check.New(s.env, s.funcs, depth)
}

// CheckerContext returns a model checker bound to ctx with the given
// exploration worker count.
func (s *System) CheckerContext(ctx context.Context, depth, workers int) *check.Checker {
	ck := check.New(s.env, s.funcs, depth)
	ck.Ctx = ctx
	ck.Workers = workers
	return ck
}

// CheckerModel is CheckerContext with the semantic model pinned.
func (s *System) CheckerModel(ctx context.Context, mdl model.Model, depth, workers int) *check.Checker {
	ck := s.CheckerContext(ctx, depth, workers)
	ck.Model = mdl
	return ck
}

// Check model-checks P sat A to the given depth.
func (s *System) Check(p syntax.Proc, a assertion.A, depth int) (check.Result, error) {
	return s.Checker(depth).Sat(p, a)
}

// AssertResult pairs a parsed assert declaration with its check outcome:
// Result for sat-asserts, Refine for refinement asserts.
type AssertResult struct {
	Decl   parser.AssertDecl
	Result check.Result
	Refine *check.RefineResult
}

// OK reports whether the assert held.
func (r AssertResult) OK() bool {
	if r.Refine != nil {
		return r.Refine.OK
	}
	return r.Result.OK
}

// CheckAll model-checks every assert declaration of the loaded file,
// expanding quantified sat-asserts over their (sampled) domains and
// checking refinement asserts by trace-set inclusion.
func (s *System) CheckAll(depth int) ([]AssertResult, error) {
	return s.CheckAllContext(context.Background(), depth, 1, nil)
}

// CheckAllContext is CheckAllModel under the trace model.
func (s *System) CheckAllContext(ctx context.Context, depth, workers int, prog progress.Func) ([]AssertResult, error) {
	return s.CheckAllModel(ctx, model.Traces, depth, workers, prog)
}

// CheckAllModel is CheckAll under a context and a semantic model: the
// assert declarations are distributed across a pool of workers goroutines
// (each check itself runs serially — asserts outnumber cores long before a
// single assert does), results come back in declaration order, and
// cancellation aborts with an error wrapping csperr.ErrCanceled. prog, when
// non-nil, receives a "check" stage event per completed assert.
//
// mdl is the run's requested model; a declaration that pins its own model
// ("assert P refines Q in failures") overrides it for that declaration.
func (s *System) CheckAllModel(ctx context.Context, mdl model.Model, depth, workers int, prog progress.Func) ([]AssertResult, error) {
	start := time.Now()
	out := make([]AssertResult, len(s.Asserts))
	var done atomic.Int64
	// Asserts are whole model checks, so like proof batches the adaptive
	// cutover is just "more than one" — and WorkersAuto resolves to the
	// machine size.
	err := pool.Run(ctx, pool.Adaptive(workers, len(s.Asserts), 2), len(s.Asserts), func(i int) error {
		decl := s.Asserts[i]
		eff := mdl
		if decl.Model != model.Traces {
			eff = decl.Model
		}
		ck := s.CheckerModel(ctx, eff, depth, 1)
		if decl.Refines != nil {
			rr, err := ck.Refines(decl.Proc, decl.Refines)
			if err != nil {
				return fmt.Errorf("core: %s: %w", decl, err)
			}
			out[i] = AssertResult{Decl: decl, Refine: &rr}
		} else {
			res, err := s.checkQuantified(ck, decl.Quants, decl.Proc, decl.A)
			if err != nil {
				return fmt.Errorf("core: %s: %w", decl, err)
			}
			out[i] = AssertResult{Decl: decl, Result: res}
		}
		prog.Emit(progress.Event{
			Stage:   "check",
			Items:   int(done.Add(1)),
			Total:   len(s.Asserts),
			Elapsed: time.Since(start),
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	prog.Emit(progress.Event{
		Stage:   "check",
		Items:   len(s.Asserts),
		Total:   len(s.Asserts),
		Elapsed: time.Since(start),
		Done:    true,
	})
	return out, nil
}

func (s *System) checkQuantified(ck *check.Checker, quants []parser.Quant, p syntax.Proc, a assertion.A) (check.Result, error) {
	if len(quants) == 0 {
		return ck.Sat(p, a)
	}
	q := quants[0]
	dom, err := s.env.EvalSet(q.Dom)
	if err != nil {
		return check.Result{}, err
	}
	var total check.Result
	total.OK = true
	total.Depth = ck.Depth()
	for _, v := range dom.Enumerate() {
		inst := syntax.SubstProc(p, q.Var, sem.ValueToExpr(v))
		instA := assertion.SubstVar(a, q.Var, assertion.Lit{Val: v})
		r, err := s.checkQuantified(ck, quants[1:], inst, instA)
		if err != nil {
			return check.Result{}, fmt.Errorf("%s=%v: %w", q.Var, v, err)
		}
		total.TracesChecked += r.TracesChecked
		if !r.OK {
			r.TracesChecked = total.TracesChecked
			return r, nil
		}
	}
	return total, nil
}

// Prover returns a proof checker for this system. The validity
// configuration bounds the discharge of pure obligations; pass nil for
// defaults (history length ≤ 3, NAT-sampled domains).
func (s *System) Prover(validity *assertion.ValidityConfig) *proof.Checker {
	c := proof.NewChecker(s.env, s.funcs)
	if validity != nil {
		c.Validity = *validity
	}
	return c
}

// Prove checks a proof object and returns its verified conclusion.
func (s *System) Prove(p proof.Proof) (proof.Claim, error) {
	return s.Prover(nil).Check(p)
}

// Failures computes the stable-failures model of a process — the §4
// extension where internal choice and deadlock potential are observable.
func (s *System) Failures(p syntax.Proc, depth int) (*failures.Model, error) {
	return failures.Compute(p, s.env, depth)
}

// FailuresContext is Failures under a context: cancellation aborts the BFS
// with an error wrapping csperr.ErrCanceled.
func (s *System) FailuresContext(ctx context.Context, p syntax.Proc, depth int) (*failures.Model, error) {
	return failures.ComputeContext(ctx, p, s.env, depth)
}

// Run executes a named process as a concurrent goroutine network.
func (s *System) Run(name string, seed int64, maxEvents int) (*runtime.Result, error) {
	p, err := s.Proc(name)
	if err != nil {
		return nil, err
	}
	return runtime.Run(p, runtime.Config{Env: s.env, Seed: seed, MaxEvents: maxEvents})
}

// RunMonitored executes a named process with a sat-monitor attached.
func (s *System) RunMonitored(name string, a assertion.A, seed int64, maxEvents int) (*runtime.Result, error) {
	p, err := s.Proc(name)
	if err != nil {
		return nil, err
	}
	return runtime.Run(p, runtime.Config{
		Env:       s.env,
		Seed:      seed,
		MaxEvents: maxEvents,
		Monitor:   runtime.MonitorSat(a, s.env, s.funcs),
	})
}

// Simulate random-walks a process for maxVisible visible events and returns
// the observed trace.
func (s *System) Simulate(p syntax.Proc, seed int64, maxVisible int) (traceStr string, err error) {
	sim := op.NewSimulator(seed)
	t, _, err := sim.Walk(op.NewState(p, s.env), maxVisible)
	if err != nil {
		return "", err
	}
	return t.String(), nil
}

// DomainOf evaluates a set expression in the system's environment —
// convenience for tools that need to enumerate message domains.
func (s *System) DomainOf(se syntax.SetExpr) (value.Domain, error) {
	return s.env.EvalSet(se)
}

// FormatAssertResults renders CheckAll results as an aligned report.
func FormatAssertResults(results []AssertResult) string {
	var sb strings.Builder
	for _, r := range results {
		status := "OK  "
		if !r.OK() {
			status = "FAIL"
		}
		if r.Refine != nil {
			fmt.Fprintf(&sb, "%s  %-70s (%s model, depth %d)\n", status, r.Decl.String(), r.Refine.Model, r.Refine.Depth)
			if !r.Refine.OK {
				if r.Refine.Failure != nil && r.Refine.Failure.ImplAcceptance != nil {
					fmt.Fprintf(&sb, "      witness: after %s impl stably offers only %s, which spec never permits\n",
						r.Refine.Witness, r.Refine.Failure.ImplAcceptance)
				} else {
					fmt.Fprintf(&sb, "      witness: impl performs %s which spec cannot\n", r.Refine.Witness)
				}
			}
			continue
		}
		if r.Result.Vacuous {
			fmt.Fprintf(&sb, "%s  %-70s (vacuous under traces model; re-check with -model failures)\n",
				status, r.Decl.String())
			continue
		}
		fmt.Fprintf(&sb, "%s  %-70s (%d traces, depth %d)\n",
			status, r.Decl.String(), r.Result.TracesChecked, r.Result.Depth)
		if !r.Result.OK {
			if r.Result.Refusal != nil {
				fmt.Fprintf(&sb, "      counterexample: %s\n", r.Result.Refusal)
			} else {
				fmt.Fprintf(&sb, "      counterexample: %s\n", r.Result.Counter)
			}
		}
	}
	return sb.String()
}
