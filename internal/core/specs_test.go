package core_test

import (
	"os"
	"path/filepath"
	"testing"

	"cspsat/internal/core"
	"cspsat/internal/paper"
)

// specPath locates a file in the repository's specs/ directory.
func specPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join("..", "..", "specs", name)
}

// TestSpecFilesMatchCanonicalText pins the on-disk spec files to the
// canonical constants in internal/paper.
func TestSpecFilesMatchCanonicalText(t *testing.T) {
	cases := []struct {
		file string
		want string
	}{
		{"copier.csp", paper.CopierSpec},
		{"protocol.csp", paper.ProtocolSpec},
		{"multiplier.csp", paper.MultiplierSpec},
	}
	for _, tc := range cases {
		data, err := os.ReadFile(specPath(t, tc.file))
		if err != nil {
			t.Fatalf("%s: %v", tc.file, err)
		}
		if string(data) != tc.want {
			t.Errorf("specs/%s has drifted from paper.%s constant", tc.file, tc.file)
		}
	}
}

// TestBuffersSpec checks the refinement demo end to end, including the
// refinement assert and its direction.
func TestBuffersSpec(t *testing.T) {
	sys, err := core.LoadFile(specPath(t, "buffers.csp"), core.Options{NatWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	results, err := sys.CheckAll(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("want 5 asserts, got %d", len(results))
	}
	for _, r := range results {
		if !r.OK() {
			t.Errorf("failed: %s", r.Decl)
		}
	}
	// The converse refinement must fail: buf2 has traces buf1 lacks.
	buf1, err := sys.Proc("buf1")
	if err != nil {
		t.Fatal(err)
	}
	buf2, err := sys.Proc("buf2")
	if err != nil {
		t.Fatal(err)
	}
	rr, err := sys.Checker(7).Refines(buf2, buf1)
	if err != nil {
		t.Fatal(err)
	}
	if rr.OK {
		t.Fatal("buf2 must not refine buf1")
	}
	if rr.Witness == nil {
		t.Fatal("failed refinement needs a witness trace")
	}
}

// TestTokenRingSpec checks the ring's round-robin invariant and
// deadlock freedom.
func TestTokenRingSpec(t *testing.T) {
	sys, err := core.LoadFile(specPath(t, "tokenring.csp"), core.Options{NatWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	results, err := sys.CheckAll(9)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.OK() {
			t.Errorf("failed: %s: %s", r.Decl, r.Result)
		}
	}
	ringSys, err := sys.Proc("sys")
	if err != nil {
		t.Fatal(err)
	}
	dls, err := sys.Checker(8).Deadlocks(ringSys)
	if err != nil {
		t.Fatal(err)
	}
	if len(dls) != 0 {
		t.Fatalf("token ring deadlocks after %s", dls[0].Trace)
	}
	// The ring is deterministic: exactly one maximal behaviour.
	traces, err := sys.Traces(ringSys, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(traces.TracesMax()); got != 1 {
		t.Errorf("token ring should be deterministic, found %d maximal traces", got)
	}
	// Runtime execution respects round-robin order.
	run, err := sys.RunMonitored("sys", sys.Asserts[0].A, 5, 40)
	if err != nil {
		t.Fatal(err)
	}
	if run.MonitorErr != nil {
		t.Fatalf("monitor: %v", run.MonitorErr)
	}
}

// TestPhilosophersSpec: the classic deadlock story, with partial
// correctness blind to it — the §4 limitation on a famous example.
func TestPhilosophersSpec(t *testing.T) {
	sys, err := core.LoadFile(specPath(t, "philosophers.csp"), core.Options{NatWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Both tables pass their (identical) sat-assertions...
	results, err := sys.CheckAll(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.OK() {
			t.Errorf("failed: %s", r.Decl)
		}
	}
	// ...but only the naive one deadlocks.
	bad, err := sys.Proc("deadlocking")
	if err != nil {
		t.Fatal(err)
	}
	good, err := sys.Proc("safe")
	if err != nil {
		t.Fatal(err)
	}
	ck := sys.Checker(6)
	dls, err := ck.Deadlocks(bad)
	if err != nil {
		t.Fatal(err)
	}
	if len(dls) == 0 {
		t.Fatal("naive table's deadlock not found")
	}
	dls, err = ck.Deadlocks(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(dls) != 0 {
		t.Fatalf("left-handed table deadlocks after %s", dls[0].Trace)
	}
	// The failures model sees it too: the naive table may refuse all eats.
	m, err := sys.Failures(bad, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, can := m.CanDeadlock(); !can {
		t.Error("failures model misses the deadlock")
	}
}
