package core_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cspsat/internal/assertion"
	"cspsat/internal/core"
	"cspsat/internal/paper"
	"cspsat/internal/proofs"
)

func TestLoadAndCheckAllCopier(t *testing.T) {
	sys, err := core.Load(paper.CopierSpec, core.Options{NatWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	results, err := sys.CheckAll(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if !r.Result.OK {
			t.Errorf("assert failed: %s: %s", r.Decl, r.Result)
		}
	}
	report := core.FormatAssertResults(results)
	if !strings.Contains(report, "OK") || strings.Contains(report, "FAIL") {
		t.Errorf("report:\n%s", report)
	}
}

func TestCheckAllQuantifiedAssert(t *testing.T) {
	sys, err := core.Load(paper.ProtocolSpec, core.Options{NatWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	results, err := sys.CheckAll(6)
	if err != nil {
		t.Fatal(err)
	}
	var sawQuantified bool
	for _, r := range results {
		if len(r.Decl.Quants) > 0 {
			sawQuantified = true
			if !r.Result.OK {
				t.Errorf("quantified assert failed: %s", r.Result)
			}
		}
	}
	if !sawQuantified {
		t.Fatal("protocol spec lost its quantified assert")
	}
}

func TestCheckAllReportsCounterexample(t *testing.T) {
	src := `
p = a!1 -> p
assert p sat #a <= 2
`
	sys, err := core.Load(src, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	results, err := sys.CheckAll(5)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Result.OK {
		t.Fatal("false assert passed")
	}
	if results[0].Result.Counter == nil {
		t.Fatal("no counterexample")
	}
	report := core.FormatAssertResults(results)
	if !strings.Contains(report, "FAIL") || !strings.Contains(report, "counterexample") {
		t.Errorf("report:\n%s", report)
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.csp")
	if err := os.WriteFile(path, []byte(paper.CopierSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := core.LoadFile(path, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := core.LoadFile(filepath.Join(dir, "missing.csp"), core.Options{}); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.csp")
	if err := os.WriteFile(bad, []byte("p = ???"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := core.LoadFile(bad, core.Options{}); err == nil {
		t.Fatal("unparsable file accepted")
	}
}

func TestProcLookups(t *testing.T) {
	sys := core.FromModule(paper.ProtocolSystem(2), core.Options{NatWidth: 2})
	if _, err := sys.Proc(paper.NameSender); err != nil {
		t.Error(err)
	}
	if _, err := sys.Proc("ghost"); err == nil {
		t.Error("undefined process accepted")
	}
	if _, err := sys.Proc(paper.NameQ); err == nil {
		t.Error("array without subscript accepted")
	}
	if _, err := sys.ProcIdx(paper.NameQ, 0); err != nil {
		t.Error(err)
	}
	if _, err := sys.ProcIdx(paper.NameSender, 0); err == nil {
		t.Error("ProcIdx on plain process accepted")
	}
}

func TestProveThroughFacade(t *testing.T) {
	sys := core.FromModule(paper.CopySystem(), core.Options{NatWidth: 2})
	cl, err := sys.Prove(proofs.CopierProof())
	if err != nil {
		t.Fatal(err)
	}
	if cl.String() != "copier sat wire <= input" {
		t.Errorf("conclusion = %s", cl)
	}
	validity := &assertion.ValidityConfig{MaxLen: 2}
	if _, err := sys.Prover(validity).Check(proofs.CopierProof()); err != nil {
		t.Errorf("custom validity config: %v", err)
	}
}

func TestRunAndSimulateThroughFacade(t *testing.T) {
	sys := core.FromModule(paper.CopySystem(), core.Options{NatWidth: 2})
	res, err := sys.Run(paper.NameCopyNet, 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != 20 {
		t.Errorf("events = %d", len(res.Events))
	}
	mon, err := sys.RunMonitored(paper.NameCopyNet, paper.CopyNetSat(), 3, 20)
	if err != nil || mon.MonitorErr != nil {
		t.Fatalf("monitored run: %v %v", err, mon.MonitorErr)
	}
	p, _ := sys.Proc(paper.NameCopier)
	s, err := sys.Simulate(p, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(s, "<input.") {
		t.Errorf("simulated trace = %s", s)
	}
	tr, err := sys.Traces(p, 3)
	if err != nil || tr.Size() == 0 {
		t.Fatalf("Traces: %v %v", tr, err)
	}
	den, err := sys.Denote(p, 3)
	if err != nil || !den.Equal(tr) {
		t.Fatalf("Denote disagrees with Traces: %v", err)
	}
}
