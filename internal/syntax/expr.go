// Package syntax defines the abstract syntax of the paper's programming
// notation (§1): value expressions, set expressions, channel references,
// process expressions, and (possibly recursive) process definitions.
//
// The AST is purely structural — evaluation of expressions and the meaning
// of processes live in internal/sem (denotational), internal/op
// (operational) and internal/runtime (executable).
package syntax

import (
	"strconv"
	"strings"
)

// Expr is a value expression: constants, variables and arithmetic, as in
// §1.1(3). Expressions never contain process or channel names.
type Expr interface {
	exprNode()
	String() string
}

// IntLit is an integer constant such as 3.
type IntLit struct{ Val int64 }

// SymLit is a symbolic constant such as ACK.
type SymLit struct{ Name string }

// Var is a variable reference such as x.
type Var struct{ Name string }

// BinOp enumerates arithmetic operators.
type BinOp int

// Arithmetic operators usable in expressions.
const (
	OpAdd BinOp = iota + 1
	OpSub
	OpMul
	OpDiv
	OpMod
)

func (op BinOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	default:
		return "?"
	}
}

// Binary is a binary arithmetic expression such as 3*x + y.
type Binary struct {
	Op   BinOp
	L, R Expr
}

// Index is a constant-array access such as v[i], referring to a declared
// value array (the multiplier's fixed vector v[1..3]).
type Index struct {
	Name string
	Sub  Expr
}

func (IntLit) exprNode() {}
func (SymLit) exprNode() {}
func (Var) exprNode()    {}
func (Binary) exprNode() {}
func (Index) exprNode()  {}

func (e IntLit) String() string { return strconv.FormatInt(e.Val, 10) }
func (e SymLit) String() string { return e.Name }
func (e Var) String() string    { return e.Name }
func (e Binary) String() string {
	return "(" + e.L.String() + " " + e.Op.String() + " " + e.R.String() + ")"
}
func (e Index) String() string { return e.Name + "[" + e.Sub.String() + "]" }

// SetExpr denotes a set of values (a message domain), as in §1.1(4).
type SetExpr interface {
	setNode()
	String() string
}

// SetName refers to a named set: the builtin NAT or a module-declared set.
type SetName struct{ Name string }

// RangeSet is the finite range {lo..hi}.
type RangeSet struct{ Lo, Hi Expr }

// EnumSet is a finite enumeration such as {ACK, NACK}.
type EnumSet struct{ Elems []Expr }

// UnionSet is the union of two set expressions.
type UnionSet struct{ A, B SetExpr }

func (SetName) setNode()  {}
func (RangeSet) setNode() {}
func (EnumSet) setNode()  {}
func (UnionSet) setNode() {}

func (s SetName) String() string  { return s.Name }
func (s RangeSet) String() string { return "{" + s.Lo.String() + ".." + s.Hi.String() + "}" }
func (s EnumSet) String() string {
	parts := make([]string, len(s.Elems))
	for i, e := range s.Elems {
		parts[i] = e.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}
func (s UnionSet) String() string { return s.A.String() + " ∪ " + s.B.String() }

// ChanRef is a (possibly subscripted) channel reference, §1.1(10)-(11):
// a plain channel "wire" has Sub == nil; "col[i-1]" carries the subscript
// expression.
type ChanRef struct {
	Name string
	Sub  Expr
}

func (c ChanRef) String() string {
	if c.Sub == nil {
		return c.Name
	}
	return c.Name + "[" + c.Sub.String() + "]"
}

// ChanItem is one entry of a channel list (§1.1(12)-(13)): a plain channel,
// a subscripted channel, or a whole channel-array range such as col[0..3].
type ChanItem struct {
	Name string
	// Sub, when non-nil, selects a single array element.
	Sub Expr
	// Lo and Hi, when non-nil, select the inclusive range Name[Lo..Hi].
	Lo, Hi Expr
}

func (c ChanItem) String() string {
	switch {
	case c.Lo != nil:
		return c.Name + "[" + c.Lo.String() + ".." + c.Hi.String() + "]"
	case c.Sub != nil:
		return c.Name + "[" + c.Sub.String() + "]"
	default:
		return c.Name
	}
}
