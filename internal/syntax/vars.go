package syntax

// Free-variable and channel-name queries over the AST, used by the proof
// rules' side conditions ("v is a fresh variable not free in P, R or c",
// "p is not free in P") and by alphabet inference.

// FreeVarsExpr adds the free variables of e to acc.
func FreeVarsExpr(e Expr, acc map[string]bool) {
	switch t := e.(type) {
	case Var:
		acc[t.Name] = true
	case Binary:
		FreeVarsExpr(t.L, acc)
		FreeVarsExpr(t.R, acc)
	case Index:
		FreeVarsExpr(t.Sub, acc)
	}
}

// FreeVarsSet adds the free variables of s to acc.
func FreeVarsSet(s SetExpr, acc map[string]bool) {
	switch t := s.(type) {
	case RangeSet:
		FreeVarsExpr(t.Lo, acc)
		FreeVarsExpr(t.Hi, acc)
	case EnumSet:
		for _, e := range t.Elems {
			FreeVarsExpr(e, acc)
		}
	case UnionSet:
		FreeVarsSet(t.A, acc)
		FreeVarsSet(t.B, acc)
	}
}

// FreeVarsProc returns the set of variables occurring free in p.
func FreeVarsProc(p Proc) map[string]bool {
	acc := map[string]bool{}
	freeVarsProc(p, acc, map[string]bool{})
	return acc
}

func freeVarsProc(p Proc, acc, bound map[string]bool) {
	collect := func(e Expr) {
		tmp := map[string]bool{}
		FreeVarsExpr(e, tmp)
		for v := range tmp {
			if !bound[v] {
				acc[v] = true
			}
		}
	}
	collectSet := func(s SetExpr) {
		tmp := map[string]bool{}
		FreeVarsSet(s, tmp)
		for v := range tmp {
			if !bound[v] {
				acc[v] = true
			}
		}
	}
	collectItems := func(items []ChanItem) {
		for _, it := range items {
			if it.Sub != nil {
				collect(it.Sub)
			}
			if it.Lo != nil {
				collect(it.Lo)
				collect(it.Hi)
			}
		}
	}
	switch t := p.(type) {
	case Stop:
	case Ref:
		if t.Sub != nil {
			collect(t.Sub)
		}
	case Output:
		if t.Ch.Sub != nil {
			collect(t.Ch.Sub)
		}
		collect(t.Val)
		freeVarsProc(t.Cont, acc, bound)
	case Input:
		if t.Ch.Sub != nil {
			collect(t.Ch.Sub)
		}
		collectSet(t.Dom)
		if bound[t.Var] {
			freeVarsProc(t.Cont, acc, bound)
		} else {
			bound[t.Var] = true
			freeVarsProc(t.Cont, acc, bound)
			delete(bound, t.Var)
		}
	case Alt:
		freeVarsProc(t.L, acc, bound)
		freeVarsProc(t.R, acc, bound)
	case IChoice:
		freeVarsProc(t.L, acc, bound)
		freeVarsProc(t.R, acc, bound)
	case Par:
		freeVarsProc(t.L, acc, bound)
		freeVarsProc(t.R, acc, bound)
		collectItems(t.AlphaL)
		collectItems(t.AlphaR)
	case Hiding:
		collectItems(t.Channels)
		freeVarsProc(t.Body, acc, bound)
	}
}

// ProcessRefs returns the names of the processes referenced (directly) by p.
func ProcessRefs(p Proc) map[string]bool {
	acc := map[string]bool{}
	var walk func(Proc)
	walk = func(p Proc) {
		switch t := p.(type) {
		case Ref:
			acc[t.Name] = true
		case Output:
			walk(t.Cont)
		case Input:
			walk(t.Cont)
		case Alt:
			walk(t.L)
			walk(t.R)
		case IChoice:
			walk(t.L)
			walk(t.R)
		case Par:
			walk(t.L)
			walk(t.R)
		case Hiding:
			walk(t.Body)
		}
	}
	walk(p)
	return acc
}

// ChanNames returns the names (array names, not individual subscripted
// channels) of the channels that occur syntactically in p, not following
// process references. It is a purely syntactic approximation; exact
// alphabets, which require evaluating subscripts and unfolding references,
// live in internal/sem.
func ChanNames(p Proc) map[string]bool {
	acc := map[string]bool{}
	var walk func(Proc)
	walk = func(p Proc) {
		switch t := p.(type) {
		case Output:
			acc[t.Ch.Name] = true
			walk(t.Cont)
		case Input:
			acc[t.Ch.Name] = true
			walk(t.Cont)
		case Alt:
			walk(t.L)
			walk(t.R)
		case IChoice:
			walk(t.L)
			walk(t.R)
		case Par:
			walk(t.L)
			walk(t.R)
		case Hiding:
			for _, it := range t.Channels {
				acc[it.Name] = true
			}
			walk(t.Body)
		}
	}
	walk(p)
	return acc
}
