package syntax

import (
	"fmt"
	"sort"
	"strings"
)

// Def is one process equation (§1.1(7)-(8)): either a plain equation
// "p = P" (Param empty) or a process-array equation "q[i:M] = Q" where
// Param is the index variable and ParamDom its range.
type Def struct {
	Name     string
	Param    string
	ParamDom SetExpr
	Body     Proc
}

// IsArray reports whether the definition is a process array.
func (d Def) IsArray() bool { return d.Param != "" }

func (d Def) String() string {
	if !d.IsArray() {
		return d.Name + " = " + d.Body.String()
	}
	return d.Name + "[" + d.Param + ":" + d.ParamDom.String() + "] = " + d.Body.String()
}

// ValueArray is a declared constant array such as the multiplier's fixed
// vector v[1..3] = [5, 3, 2]. Indexing is Lo-based and inclusive of
// Lo+len(Elems)-1.
type ValueArray struct {
	Name  string
	Lo    int64
	Elems []int64
}

// Module is a list of definitions (§1.1(9)) together with named sets and
// constant arrays that the definitions may reference. A Module is the unit
// the parser produces and every engine consumes.
type Module struct {
	defs   map[string]*Def
	order  []string
	Sets   map[string]SetExpr
	Arrays map[string]ValueArray
}

// NewModule returns an empty module.
func NewModule() *Module {
	return &Module{
		defs:   map[string]*Def{},
		Sets:   map[string]SetExpr{},
		Arrays: map[string]ValueArray{},
	}
}

// Define adds a process definition; it fails on duplicate names.
func (m *Module) Define(d Def) error {
	if _, dup := m.defs[d.Name]; dup {
		return fmt.Errorf("syntax: duplicate definition of process %q", d.Name)
	}
	cp := d
	m.defs[d.Name] = &cp
	m.order = append(m.order, d.Name)
	return nil
}

// MustDefine is Define that panics on error, for tests and examples that
// build modules in Go code.
func (m *Module) MustDefine(d Def) {
	if err := m.Define(d); err != nil {
		panic(err)
	}
}

// Lookup returns the definition of the named process.
func (m *Module) Lookup(name string) (*Def, bool) {
	d, ok := m.defs[name]
	return d, ok
}

// Names returns the defined process names in definition order.
func (m *Module) Names() []string {
	out := make([]string, len(m.order))
	copy(out, m.order)
	return out
}

// DefineSet declares a named message set (e.g. "M = {0..3}").
func (m *Module) DefineSet(name string, s SetExpr) { m.Sets[name] = s }

// DefineArray declares a constant value array (e.g. "v[1..3] = [5,3,2]").
func (m *Module) DefineArray(a ValueArray) { m.Arrays[a.Name] = a }

// String renders the module as a list of equations in the paper's notation.
func (m *Module) String() string {
	var sb strings.Builder
	setNames := make([]string, 0, len(m.Sets))
	for n := range m.Sets {
		setNames = append(setNames, n)
	}
	sort.Strings(setNames)
	for _, n := range setNames {
		fmt.Fprintf(&sb, "set %s = %s\n", n, m.Sets[n])
	}
	arrNames := make([]string, 0, len(m.Arrays))
	for n := range m.Arrays {
		arrNames = append(arrNames, n)
	}
	sort.Strings(arrNames)
	for _, n := range arrNames {
		a := m.Arrays[n]
		elems := make([]string, len(a.Elems))
		for i, e := range a.Elems {
			elems[i] = fmt.Sprintf("%d", e)
		}
		fmt.Fprintf(&sb, "const %s[%d..%d] = [%s]\n",
			a.Name, a.Lo, a.Lo+int64(len(a.Elems))-1, strings.Join(elems, ", "))
	}
	for _, n := range m.order {
		sb.WriteString(m.defs[n].String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
