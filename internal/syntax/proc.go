package syntax

import (
	"strconv"
	"sync"
)

// Proc is a process expression (§1.2). The constructors correspond one-for-
// one with the paper's forms:
//
//	STOP               Stop
//	p, q[e]            Ref
//	(c!e → P)          Output
//	(c?x:M → P)        Input
//	(P | Q)            Alt
//	(P X‖Y Q)          Par
//	(chan L; P)        Hiding
type Proc interface {
	procNode()
	String() string
}

// Stop is the process that never does anything; its only trace is <>.
type Stop struct{}

// Ref is a (possibly subscripted) process-name reference: "copier" or
// "q[y]". References are resolved against the enclosing Module's
// definitions, recursively in the usual sense (§1.1(7)-(8)).
type Ref struct {
	Name string
	Sub  Expr // nil for a plain process name
}

// Output is (c!e → P): first communicate the value of e on channel c, then
// behave like Cont.
type Output struct {
	Ch   ChanRef
	Val  Expr
	Cont Proc
}

// Input is (c?x:M → P): communicate on channel c any value of the set M,
// bind it to Var, then behave like Cont.
type Input struct {
	Ch   ChanRef
	Var  string
	Dom  SetExpr
	Cont Proc
}

// Alt is (P | Q): behave like P or like Q, the choice non-deterministic.
// In the paper's trace model this denotes the union of behaviours; the
// operational semantics offers both sides' communications from one state,
// so at stable states it behaves like external choice.
type Alt struct {
	L, R Proc
}

// IChoice is (P |~| Q): *internal* (non-deterministic) choice, the
// extension the paper's conclusion calls for. In the trace model it is
// indistinguishable from Alt — that is exactly the §4 defect — but the
// operational semantics resolves it by a silent τ-step to one side, so the
// stable-failures model (internal/failures) tells them apart:
// STOP |~| P may refuse everything, STOP | P may not.
type IChoice struct {
	L, R Proc
}

// Par is (P X‖Y Q): parallel composition with alphabets X and Y. When
// AlphaL/AlphaR are nil the alphabets are inferred from the channel names
// occurring in each side (the paper's default reading); explicit lists
// override the inference for the cases the paper glosses over ("when the
// content of the sets X and Y are clear from the context").
type Par struct {
	L, R           Proc
	AlphaL, AlphaR []ChanItem
}

// Hiding is (chan L; P): communications on the channels of L become
// internal, removed from externally recordable traces.
type Hiding struct {
	Channels []ChanItem
	Body     Proc
}

func (Stop) procNode()    {}
func (Ref) procNode()     {}
func (Output) procNode()  {}
func (Input) procNode()   {}
func (Alt) procNode()     {}
func (IChoice) procNode() {}
func (Par) procNode()     {}
func (Hiding) procNode()  {}

// The String methods render through one shared pooled buffer rather than
// by concatenation: a rendered term is the op engine's state identity, so
// exploration renders terms constantly, and per-level concatenation made
// that quadratic in term depth — dominated by parallel networks whose
// every composition node carries its full alphabet annotation. The only
// per-render allocation is the final string copy.

func (p Stop) String() string    { return render(p) }
func (p Ref) String() string     { return render(p) }
func (p Output) String() string  { return render(p) }
func (p Input) String() string   { return render(p) }
func (p Alt) String() string     { return render(p) }
func (p IChoice) String() string { return render(p) }
func (p Par) String() string     { return render(p) }
func (p Hiding) String() string  { return render(p) }

// pbuf is the append-only byte sink the renderer writes through; pooled so
// the scratch buffer is reused across renders.
type pbuf struct{ b []byte }

func (w *pbuf) WriteString(s string) { w.b = append(w.b, s...) }
func (w *pbuf) writeByte(c byte)     { w.b = append(w.b, c) }

var renderPool = sync.Pool{New: func() any { return &pbuf{b: make([]byte, 0, 512)} }}

func render(p Proc) string {
	w := renderPool.Get().(*pbuf)
	writeProc(w, p)
	out := string(w.b)
	w.b = w.b[:0]
	renderPool.Put(w)
	return out
}

func writeProc(b *pbuf, p Proc) {
	switch t := p.(type) {
	case Stop:
		b.WriteString("STOP")
	case Ref:
		b.WriteString(t.Name)
		if t.Sub != nil {
			b.writeByte('[')
			writeExpr(b, t.Sub)
			b.writeByte(']')
		}
	case Output:
		writeChanRef(b, t.Ch)
		b.writeByte('!')
		writeExpr(b, t.Val)
		b.WriteString(" -> ")
		writeCont(b, t.Cont)
	case Input:
		writeChanRef(b, t.Ch)
		b.writeByte('?')
		b.WriteString(t.Var)
		b.writeByte(':')
		b.WriteString(t.Dom.String())
		b.WriteString(" -> ")
		writeCont(b, t.Cont)
	case Alt:
		b.writeByte('(')
		writeProc(b, t.L)
		b.WriteString(" | ")
		writeProc(b, t.R)
		b.writeByte(')')
	case IChoice:
		b.writeByte('(')
		writeProc(b, t.L)
		b.WriteString(" |~| ")
		writeProc(b, t.R)
		b.writeByte(')')
	case Par:
		b.writeByte('(')
		writeProc(b, t.L)
		if t.AlphaL == nil && t.AlphaR == nil {
			b.WriteString(" || ")
		} else {
			b.WriteString(" [")
			writeChanItems(b, t.AlphaL)
			b.WriteString(" || ")
			writeChanItems(b, t.AlphaR)
			b.WriteString("] ")
		}
		writeProc(b, t.R)
		b.writeByte(')')
	case Hiding:
		b.WriteString("(chan ")
		writeChanItems(b, t.Channels)
		b.WriteString("; ")
		writeProc(b, t.Body)
		b.writeByte(')')
	default:
		b.WriteString(p.String())
	}
}

// writeCont renders a prefix continuation without extra parentheses,
// matching the paper's right-associative arrow convention.
func writeCont(b *pbuf, p Proc) {
	switch p.(type) {
	case Output, Input, Stop, Ref:
		writeProc(b, p)
	default:
		b.writeByte('(')
		writeProc(b, p)
		b.writeByte(')')
	}
}

// writeExpr appends an expression, formatting integer literals — the
// overwhelmingly common case in substituted terms and alphabet
// annotations — without going through the fmt machinery.
func writeExpr(b *pbuf, e Expr) {
	if n, ok := e.(IntLit); ok {
		b.b = strconv.AppendInt(b.b, n.Val, 10)
		return
	}
	b.WriteString(e.String())
}

func writeChanRef(b *pbuf, c ChanRef) {
	b.WriteString(c.Name)
	if c.Sub != nil {
		b.writeByte('[')
		writeExpr(b, c.Sub)
		b.writeByte(']')
	}
}

func writeChanItems(b *pbuf, items []ChanItem) {
	for i, it := range items {
		if i > 0 {
			b.writeByte(',')
		}
		b.WriteString(it.Name)
		switch {
		case it.Lo != nil:
			b.writeByte('[')
			writeExpr(b, it.Lo)
			b.WriteString("..")
			writeExpr(b, it.Hi)
			b.writeByte(']')
		case it.Sub != nil:
			b.writeByte('[')
			writeExpr(b, it.Sub)
			b.writeByte(']')
		}
	}
}

// ParAll folds a list of processes into a left-nested chain of inferred-
// alphabet parallel compositions, as in the paper's multi-process network
// (zeroes ‖ mult[1] ‖ mult[2] ‖ mult[3] ‖ last).
func ParAll(ps ...Proc) Proc {
	if len(ps) == 0 {
		return Stop{}
	}
	out := ps[0]
	for _, p := range ps[1:] {
		out = Par{L: out, R: p}
	}
	return out
}
