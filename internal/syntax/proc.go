package syntax

import "strings"

// Proc is a process expression (§1.2). The constructors correspond one-for-
// one with the paper's forms:
//
//	STOP               Stop
//	p, q[e]            Ref
//	(c!e → P)          Output
//	(c?x:M → P)        Input
//	(P | Q)            Alt
//	(P X‖Y Q)          Par
//	(chan L; P)        Hiding
type Proc interface {
	procNode()
	String() string
}

// Stop is the process that never does anything; its only trace is <>.
type Stop struct{}

// Ref is a (possibly subscripted) process-name reference: "copier" or
// "q[y]". References are resolved against the enclosing Module's
// definitions, recursively in the usual sense (§1.1(7)-(8)).
type Ref struct {
	Name string
	Sub  Expr // nil for a plain process name
}

// Output is (c!e → P): first communicate the value of e on channel c, then
// behave like Cont.
type Output struct {
	Ch   ChanRef
	Val  Expr
	Cont Proc
}

// Input is (c?x:M → P): communicate on channel c any value of the set M,
// bind it to Var, then behave like Cont.
type Input struct {
	Ch   ChanRef
	Var  string
	Dom  SetExpr
	Cont Proc
}

// Alt is (P | Q): behave like P or like Q, the choice non-deterministic.
// In the paper's trace model this denotes the union of behaviours; the
// operational semantics offers both sides' communications from one state,
// so at stable states it behaves like external choice.
type Alt struct {
	L, R Proc
}

// IChoice is (P |~| Q): *internal* (non-deterministic) choice, the
// extension the paper's conclusion calls for. In the trace model it is
// indistinguishable from Alt — that is exactly the §4 defect — but the
// operational semantics resolves it by a silent τ-step to one side, so the
// stable-failures model (internal/failures) tells them apart:
// STOP |~| P may refuse everything, STOP | P may not.
type IChoice struct {
	L, R Proc
}

// Par is (P X‖Y Q): parallel composition with alphabets X and Y. When
// AlphaL/AlphaR are nil the alphabets are inferred from the channel names
// occurring in each side (the paper's default reading); explicit lists
// override the inference for the cases the paper glosses over ("when the
// content of the sets X and Y are clear from the context").
type Par struct {
	L, R           Proc
	AlphaL, AlphaR []ChanItem
}

// Hiding is (chan L; P): communications on the channels of L become
// internal, removed from externally recordable traces.
type Hiding struct {
	Channels []ChanItem
	Body     Proc
}

func (Stop) procNode()    {}
func (Ref) procNode()     {}
func (Output) procNode()  {}
func (Input) procNode()   {}
func (Alt) procNode()     {}
func (IChoice) procNode() {}
func (Par) procNode()     {}
func (Hiding) procNode()  {}

func (Stop) String() string { return "STOP" }

func (p Ref) String() string {
	if p.Sub == nil {
		return p.Name
	}
	return p.Name + "[" + p.Sub.String() + "]"
}

func (p Output) String() string {
	return p.Ch.String() + "!" + p.Val.String() + " -> " + contString(p.Cont)
}

func (p Input) String() string {
	return p.Ch.String() + "?" + p.Var + ":" + p.Dom.String() + " -> " + contString(p.Cont)
}

// contString renders a prefix continuation without extra parentheses,
// matching the paper's right-associative arrow convention.
func contString(p Proc) string {
	switch p.(type) {
	case Output, Input, Stop, Ref:
		return p.String()
	default:
		return "(" + p.String() + ")"
	}
}

func (p Alt) String() string { return "(" + p.L.String() + " | " + p.R.String() + ")" }

func (p IChoice) String() string { return "(" + p.L.String() + " |~| " + p.R.String() + ")" }

func (p Par) String() string {
	if p.AlphaL == nil && p.AlphaR == nil {
		return "(" + p.L.String() + " || " + p.R.String() + ")"
	}
	return "(" + p.L.String() + " [" + chanItems(p.AlphaL) + " || " + chanItems(p.AlphaR) + "] " + p.R.String() + ")"
}

func chanItems(items []ChanItem) string {
	parts := make([]string, len(items))
	for i, it := range items {
		parts[i] = it.String()
	}
	return strings.Join(parts, ",")
}

func (p Hiding) String() string {
	return "(chan " + chanItems(p.Channels) + "; " + p.Body.String() + ")"
}

// ParAll folds a list of processes into a left-nested chain of inferred-
// alphabet parallel compositions, as in the paper's multi-process network
// (zeroes ‖ mult[1] ‖ mult[2] ‖ mult[3] ‖ last).
func ParAll(ps ...Proc) Proc {
	if len(ps) == 0 {
		return Stop{}
	}
	out := ps[0]
	for _, p := range ps[1:] {
		out = Par{L: out, R: p}
	}
	return out
}
