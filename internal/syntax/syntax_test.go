package syntax_test

import (
	"reflect"
	"testing"

	"cspsat/internal/syntax"
)

func v(name string) syntax.Var      { return syntax.Var{Name: name} }
func lit(i int64) syntax.IntLit     { return syntax.IntLit{Val: i} }
func ch(name string) syntax.ChanRef { return syntax.ChanRef{Name: name} }
func natSet() syntax.SetExpr        { return syntax.SetName{Name: "NAT"} }
func out(c string, e syntax.Expr, k syntax.Proc) syntax.Proc {
	return syntax.Output{Ch: ch(c), Val: e, Cont: k}
}

func TestExprString(t *testing.T) {
	e := syntax.Binary{
		Op: syntax.OpAdd,
		L:  syntax.Binary{Op: syntax.OpMul, L: syntax.Index{Name: "v", Sub: v("i")}, R: v("x")},
		R:  v("y"),
	}
	if got := e.String(); got != "((v[i] * x) + y)" {
		t.Errorf("String = %q", got)
	}
	if got := (syntax.SymLit{Name: "ACK"}).String(); got != "ACK" {
		t.Errorf("SymLit = %q", got)
	}
}

func TestProcStringFollowsPaperConventions(t *testing.T) {
	// Right-associated arrows render without parentheses.
	p := syntax.Input{Ch: ch("input"), Var: "x", Dom: natSet(),
		Cont: out("wire", v("x"), syntax.Ref{Name: "copier"})}
	if got := p.String(); got != "input?x:NAT -> wire!x -> copier" {
		t.Errorf("prefix chain = %q", got)
	}
	alt := syntax.Alt{L: syntax.Stop{}, R: syntax.Stop{}}
	if got := alt.String(); got != "(STOP | STOP)" {
		t.Errorf("alt = %q", got)
	}
	par := syntax.Par{L: syntax.Ref{Name: "p"}, R: syntax.Ref{Name: "q"}}
	if got := par.String(); got != "(p || q)" {
		t.Errorf("par = %q", got)
	}
	epar := syntax.Par{
		L: syntax.Ref{Name: "p"}, R: syntax.Ref{Name: "q"},
		AlphaL: []syntax.ChanItem{{Name: "a"}},
		AlphaR: []syntax.ChanItem{{Name: "b"}},
	}
	if got := epar.String(); got != "(p [a || b] q)" {
		t.Errorf("explicit par = %q", got)
	}
	hide := syntax.Hiding{
		Channels: []syntax.ChanItem{{Name: "col", Lo: lit(0), Hi: lit(3)}},
		Body:     syntax.Ref{Name: "network"},
	}
	if got := hide.String(); got != "(chan col[0..3]; network)" {
		t.Errorf("hiding = %q", got)
	}
}

func TestSubstProcRespectsBinders(t *testing.T) {
	// (c?x:NAT -> wire!x -> out!y -> STOP): substituting for x must stop at
	// the binder; substituting for y must proceed under it.
	body := syntax.Input{Ch: ch("c"), Var: "x", Dom: natSet(),
		Cont: out("wire", v("x"), out("out", v("y"), syntax.Stop{}))}

	sx := syntax.SubstProc(body, "x", lit(7))
	if !reflect.DeepEqual(sx, syntax.Proc(body)) {
		t.Errorf("substitution crossed the binder:\n  %s", sx)
	}
	sy := syntax.SubstProc(body, "y", lit(7))
	want := syntax.Input{Ch: ch("c"), Var: "x", Dom: natSet(),
		Cont: out("wire", v("x"), out("out", lit(7), syntax.Stop{}))}
	if !reflect.DeepEqual(sy, syntax.Proc(want)) {
		t.Errorf("substitution under binder failed:\n  got  %s\n  want %s", sy, want)
	}
}

func TestSubstProcEverywhere(t *testing.T) {
	p := syntax.Par{
		L: syntax.Ref{Name: "q", Sub: v("i")},
		R: syntax.Hiding{
			Channels: []syntax.ChanItem{{Name: "col", Sub: v("i")}},
			Body:     out("col", syntax.Binary{Op: syntax.OpAdd, L: v("i"), R: lit(1)}, syntax.Stop{}),
		},
	}
	got := syntax.SubstProc(p, "i", lit(2))
	want := syntax.Par{
		L: syntax.Ref{Name: "q", Sub: lit(2)},
		R: syntax.Hiding{
			Channels: []syntax.ChanItem{{Name: "col", Sub: lit(2)}},
			Body:     out("col", syntax.Binary{Op: syntax.OpAdd, L: lit(2), R: lit(1)}, syntax.Stop{}),
		},
	}
	if !reflect.DeepEqual(got, syntax.Proc(want)) {
		t.Errorf("got %s want %s", got, want)
	}
}

func TestSubstSetAndChanItem(t *testing.T) {
	s := syntax.RangeSet{Lo: v("i"), Hi: syntax.Binary{Op: syntax.OpAdd, L: v("i"), R: lit(2)}}
	got := syntax.SubstSet(s, "i", lit(1))
	want := syntax.RangeSet{Lo: lit(1), Hi: syntax.Binary{Op: syntax.OpAdd, L: lit(1), R: lit(2)}}
	if !reflect.DeepEqual(got, syntax.SetExpr(want)) {
		t.Errorf("SubstSet = %v", got)
	}
	item := syntax.ChanItem{Name: "col", Lo: v("i"), Hi: v("j")}
	gi := syntax.SubstChanItem(item, "i", lit(0))
	if !reflect.DeepEqual(gi.Lo, syntax.Expr(lit(0))) || !reflect.DeepEqual(gi.Hi, syntax.Expr(v("j"))) {
		t.Errorf("SubstChanItem = %v", gi)
	}
}

func TestFreeVarsProc(t *testing.T) {
	p := syntax.Input{Ch: syntax.ChanRef{Name: "row", Sub: v("i")}, Var: "x", Dom: natSet(),
		Cont: out("col", syntax.Binary{Op: syntax.OpMul, L: v("x"), R: v("k")}, syntax.Stop{})}
	fv := syntax.FreeVarsProc(p)
	if !fv["i"] || !fv["k"] || fv["x"] {
		t.Errorf("FreeVars = %v", fv)
	}
	// Shadowing: outer x is free in the channel subscript but the body's x
	// is bound.
	p2 := syntax.Input{Ch: syntax.ChanRef{Name: "c", Sub: v("x")}, Var: "x", Dom: natSet(),
		Cont: out("d", v("x"), syntax.Stop{})}
	fv2 := syntax.FreeVarsProc(p2)
	if !fv2["x"] {
		t.Errorf("subscript occurrence of x should be free: %v", fv2)
	}
}

func TestProcessRefsAndChanNames(t *testing.T) {
	p := syntax.Alt{
		L: out("wire", lit(1), syntax.Ref{Name: "sender"}),
		R: syntax.Hiding{Channels: []syntax.ChanItem{{Name: "hid"}},
			Body: syntax.Ref{Name: "q", Sub: lit(0)}},
	}
	refs := syntax.ProcessRefs(p)
	if !refs["sender"] || !refs["q"] || len(refs) != 2 {
		t.Errorf("ProcessRefs = %v", refs)
	}
	cs := syntax.ChanNames(p)
	if !cs["wire"] || !cs["hid"] {
		t.Errorf("ChanNames = %v", cs)
	}
}

func TestModuleDefineAndLookup(t *testing.T) {
	m := syntax.NewModule()
	if err := m.Define(syntax.Def{Name: "p", Body: syntax.Stop{}}); err != nil {
		t.Fatal(err)
	}
	if err := m.Define(syntax.Def{Name: "p", Body: syntax.Stop{}}); err == nil {
		t.Fatal("duplicate definition accepted")
	}
	d, ok := m.Lookup("p")
	if !ok || d.Name != "p" {
		t.Fatalf("Lookup = %v %v", d, ok)
	}
	if _, ok := m.Lookup("q"); ok {
		t.Fatal("phantom definition")
	}
	if got := m.Names(); len(got) != 1 || got[0] != "p" {
		t.Fatalf("Names = %v", got)
	}
}

func TestDefString(t *testing.T) {
	d := syntax.Def{Name: "q", Param: "x", ParamDom: syntax.SetName{Name: "M"},
		Body: syntax.Stop{}}
	if got := d.String(); got != "q[x:M] = STOP" {
		t.Errorf("Def.String = %q", got)
	}
	if !d.IsArray() {
		t.Error("array def not IsArray")
	}
}

func TestParAll(t *testing.T) {
	if _, ok := syntax.ParAll().(syntax.Stop); !ok {
		t.Error("empty ParAll should be STOP")
	}
	single := syntax.ParAll(syntax.Ref{Name: "p"})
	if !reflect.DeepEqual(single, syntax.Proc(syntax.Ref{Name: "p"})) {
		t.Error("singleton ParAll should be the process itself")
	}
	three := syntax.ParAll(syntax.Ref{Name: "a"}, syntax.Ref{Name: "b"}, syntax.Ref{Name: "c"})
	want := syntax.Par{L: syntax.Par{L: syntax.Ref{Name: "a"}, R: syntax.Ref{Name: "b"}}, R: syntax.Ref{Name: "c"}}
	if !reflect.DeepEqual(three, syntax.Proc(want)) {
		t.Errorf("ParAll = %s", three)
	}
}
