package syntax

// Substitution of value expressions for free variables. The proof rules
// (§2.1 rules 6 and 10) and the operational unfolding of definitions both
// rely on P[e/x]; substitution respects the single binder of the language,
// the input command's bound variable.
//
// Substitution is copy-on-write: subterms that do not contain x are
// returned unchanged, not rebuilt. Exploration substitutes into successor
// terms on every input step, and most of a network term is closed, so
// identity preservation keeps both the allocation rate and the slice
// identities that downstream caches (alphabet channel lists, literal
// domains) key on.

// SubstExpr returns e with every free occurrence of variable x replaced by r.
func SubstExpr(e Expr, x string, r Expr) Expr {
	out, _ := substExpr(e, x, r)
	return out
}

func substExpr(e Expr, x string, r Expr) (Expr, bool) {
	switch t := e.(type) {
	case IntLit, SymLit:
		return e, false
	case Var:
		if t.Name == x {
			return r, true
		}
		return e, false
	case Binary:
		l, cl := substExpr(t.L, x, r)
		rr, cr := substExpr(t.R, x, r)
		if !cl && !cr {
			return e, false
		}
		return Binary{Op: t.Op, L: l, R: rr}, true
	case Index:
		sub, c := substExpr(t.Sub, x, r)
		if !c {
			return e, false
		}
		return Index{Name: t.Name, Sub: sub}, true
	default:
		return e, false
	}
}

// SubstSet returns s with every free occurrence of x replaced by r.
func SubstSet(s SetExpr, x string, r Expr) SetExpr {
	out, _ := substSet(s, x, r)
	return out
}

func substSet(s SetExpr, x string, r Expr) (SetExpr, bool) {
	switch t := s.(type) {
	case SetName:
		return s, false
	case RangeSet:
		lo, cl := substExpr(t.Lo, x, r)
		hi, ch := substExpr(t.Hi, x, r)
		if !cl && !ch {
			return s, false
		}
		return RangeSet{Lo: lo, Hi: hi}, true
	case EnumSet:
		changed := false
		for _, e := range t.Elems {
			if _, c := substExpr(e, x, r); c {
				changed = true
				break
			}
		}
		if !changed {
			return s, false
		}
		elems := make([]Expr, len(t.Elems))
		for i, e := range t.Elems {
			elems[i], _ = substExpr(e, x, r)
		}
		return EnumSet{Elems: elems}, true
	case UnionSet:
		a, ca := substSet(t.A, x, r)
		b, cb := substSet(t.B, x, r)
		if !ca && !cb {
			return s, false
		}
		return UnionSet{A: a, B: b}, true
	default:
		return s, false
	}
}

// SubstChanRef substitutes inside a channel subscript.
func SubstChanRef(c ChanRef, x string, r Expr) ChanRef {
	out, _ := substChanRef(c, x, r)
	return out
}

func substChanRef(c ChanRef, x string, r Expr) (ChanRef, bool) {
	if c.Sub == nil {
		return c, false
	}
	sub, changed := substExpr(c.Sub, x, r)
	if !changed {
		return c, false
	}
	return ChanRef{Name: c.Name, Sub: sub}, true
}

// SubstChanItem substitutes inside a channel-list item.
func SubstChanItem(c ChanItem, x string, r Expr) ChanItem {
	out, _ := substChanItem(c, x, r)
	return out
}

func substChanItem(c ChanItem, x string, r Expr) (ChanItem, bool) {
	changed := false
	out := ChanItem{Name: c.Name}
	if c.Sub != nil {
		var cs bool
		out.Sub, cs = substExpr(c.Sub, x, r)
		changed = changed || cs
	}
	if c.Lo != nil {
		var cl, ch bool
		out.Lo, cl = substExpr(c.Lo, x, r)
		out.Hi, ch = substExpr(c.Hi, x, r)
		changed = changed || cl || ch
	}
	if !changed {
		return c, false
	}
	return out, true
}

// SubstProc returns p with every free occurrence of variable x replaced by
// r, respecting the binding structure: an input command (c?x:M → P) binds x
// in P, and substitution does not descend past a binder of the same name.
func SubstProc(p Proc, x string, r Expr) Proc {
	out, _ := substProc(p, x, r)
	return out
}

func substProc(p Proc, x string, r Expr) (Proc, bool) {
	switch t := p.(type) {
	case Stop:
		return p, false
	case Ref:
		if t.Sub == nil {
			return p, false
		}
		sub, changed := substExpr(t.Sub, x, r)
		if !changed {
			return p, false
		}
		return Ref{Name: t.Name, Sub: sub}, true
	case Output:
		ch, cc := substChanRef(t.Ch, x, r)
		val, cv := substExpr(t.Val, x, r)
		cont, ck := substProc(t.Cont, x, r)
		if !cc && !cv && !ck {
			return p, false
		}
		return Output{Ch: ch, Val: val, Cont: cont}, true
	case Input:
		ch, cc := substChanRef(t.Ch, x, r)
		dom, cd := substSet(t.Dom, x, r)
		cont, ck := t.Cont, false
		if t.Var != x { // x rebound: stop at the binder
			cont, ck = substProc(t.Cont, x, r)
		}
		if !cc && !cd && !ck {
			return p, false
		}
		return Input{Ch: ch, Var: t.Var, Dom: dom, Cont: cont}, true
	case Alt:
		l, cl := substProc(t.L, x, r)
		rr, cr := substProc(t.R, x, r)
		if !cl && !cr {
			return p, false
		}
		return Alt{L: l, R: rr}, true
	case IChoice:
		l, cl := substProc(t.L, x, r)
		rr, cr := substProc(t.R, x, r)
		if !cl && !cr {
			return p, false
		}
		return IChoice{L: l, R: rr}, true
	case Par:
		l, cl := substProc(t.L, x, r)
		rr, cr := substProc(t.R, x, r)
		al, cal := substItems(t.AlphaL, x, r)
		ar, car := substItems(t.AlphaR, x, r)
		if !cl && !cr && !cal && !car {
			return p, false
		}
		return Par{L: l, R: rr, AlphaL: al, AlphaR: ar}, true
	case Hiding:
		chans, cc := substItems(t.Channels, x, r)
		body, cb := substProc(t.Body, x, r)
		if !cc && !cb {
			return p, false
		}
		return Hiding{Channels: chans, Body: body}, true
	default:
		return p, false
	}
}

func substItems(items []ChanItem, x string, r Expr) ([]ChanItem, bool) {
	changed := false
	for _, it := range items {
		if _, c := substChanItem(it, x, r); c {
			changed = true
			break
		}
	}
	if !changed {
		return items, false
	}
	out := make([]ChanItem, len(items))
	for i, it := range items {
		out[i], _ = substChanItem(it, x, r)
	}
	return out, true
}
