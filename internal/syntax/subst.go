package syntax

// Substitution of value expressions for free variables. The proof rules
// (§2.1 rules 6 and 10) and the operational unfolding of definitions both
// rely on P[e/x]; substitution respects the single binder of the language,
// the input command's bound variable.

// SubstExpr returns e with every free occurrence of variable x replaced by r.
func SubstExpr(e Expr, x string, r Expr) Expr {
	switch t := e.(type) {
	case IntLit, SymLit:
		return e
	case Var:
		if t.Name == x {
			return r
		}
		return e
	case Binary:
		return Binary{Op: t.Op, L: SubstExpr(t.L, x, r), R: SubstExpr(t.R, x, r)}
	case Index:
		return Index{Name: t.Name, Sub: SubstExpr(t.Sub, x, r)}
	default:
		return e
	}
}

// SubstSet returns s with every free occurrence of x replaced by r.
func SubstSet(s SetExpr, x string, r Expr) SetExpr {
	switch t := s.(type) {
	case SetName:
		return s
	case RangeSet:
		return RangeSet{Lo: SubstExpr(t.Lo, x, r), Hi: SubstExpr(t.Hi, x, r)}
	case EnumSet:
		elems := make([]Expr, len(t.Elems))
		for i, e := range t.Elems {
			elems[i] = SubstExpr(e, x, r)
		}
		return EnumSet{Elems: elems}
	case UnionSet:
		return UnionSet{A: SubstSet(t.A, x, r), B: SubstSet(t.B, x, r)}
	default:
		return s
	}
}

// SubstChanRef substitutes inside a channel subscript.
func SubstChanRef(c ChanRef, x string, r Expr) ChanRef {
	if c.Sub == nil {
		return c
	}
	return ChanRef{Name: c.Name, Sub: SubstExpr(c.Sub, x, r)}
}

// SubstChanItem substitutes inside a channel-list item.
func SubstChanItem(c ChanItem, x string, r Expr) ChanItem {
	out := ChanItem{Name: c.Name}
	if c.Sub != nil {
		out.Sub = SubstExpr(c.Sub, x, r)
	}
	if c.Lo != nil {
		out.Lo = SubstExpr(c.Lo, x, r)
		out.Hi = SubstExpr(c.Hi, x, r)
	}
	return out
}

// SubstProc returns p with every free occurrence of variable x replaced by
// r, respecting the binding structure: an input command (c?x:M → P) binds x
// in P, and substitution does not descend past a binder of the same name.
func SubstProc(p Proc, x string, r Expr) Proc {
	switch t := p.(type) {
	case Stop:
		return p
	case Ref:
		if t.Sub == nil {
			return p
		}
		return Ref{Name: t.Name, Sub: SubstExpr(t.Sub, x, r)}
	case Output:
		return Output{
			Ch:   SubstChanRef(t.Ch, x, r),
			Val:  SubstExpr(t.Val, x, r),
			Cont: SubstProc(t.Cont, x, r),
		}
	case Input:
		out := Input{
			Ch:  SubstChanRef(t.Ch, x, r),
			Var: t.Var,
			Dom: SubstSet(t.Dom, x, r),
		}
		if t.Var == x {
			out.Cont = t.Cont // x rebound: stop
		} else {
			out.Cont = SubstProc(t.Cont, x, r)
		}
		return out
	case Alt:
		return Alt{L: SubstProc(t.L, x, r), R: SubstProc(t.R, x, r)}
	case IChoice:
		return IChoice{L: SubstProc(t.L, x, r), R: SubstProc(t.R, x, r)}
	case Par:
		out := Par{L: SubstProc(t.L, x, r), R: SubstProc(t.R, x, r)}
		if t.AlphaL != nil {
			out.AlphaL = substItems(t.AlphaL, x, r)
		}
		if t.AlphaR != nil {
			out.AlphaR = substItems(t.AlphaR, x, r)
		}
		return out
	case Hiding:
		return Hiding{Channels: substItems(t.Channels, x, r), Body: SubstProc(t.Body, x, r)}
	default:
		return p
	}
}

func substItems(items []ChanItem, x string, r Expr) []ChanItem {
	out := make([]ChanItem, len(items))
	for i, it := range items {
		out[i] = SubstChanItem(it, x, r)
	}
	return out
}
