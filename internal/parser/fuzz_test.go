package parser

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse throws arbitrary source text at the parser. The invariants:
// Parse never panics, and whenever it accepts an input, the rendered
// module reparses to a render-identical module (print∘parse is idempotent
// on the parser's own output). Seeds are the repository's .csp
// specifications plus hand-picked fragments covering every declaration
// form, so mutation starts from inputs that reach deep into the grammar.
//
// Run as a regression suite by `go test`; run `go test -fuzz=FuzzParse`
// (CI uses -fuzztime=10s) to search for new crashers. Crashers land in
// testdata/fuzz/FuzzParse and replay automatically from then on.
func FuzzParse(f *testing.F) {
	specs, _ := filepath.Glob(filepath.Join("..", "..", "specs", "*.csp"))
	for _, path := range specs {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatalf("reading seed %s: %v", path, err)
		}
		f.Add(string(src))
	}
	if len(specs) == 0 {
		f.Fatal("no seed specs found; is the specs/ directory gone?")
	}
	for _, seed := range []string{
		"",
		"p = STOP\n",
		"p = a!1 -> p\n",
		"p = a?x:{0,1} -> b!x -> p\n",
		"p = (q | r) \\ {w}\nq = w!0 -> STOP\nr = w?x:{0} -> STOP\n",
		"p = q [] r\n",
		"set M = {0, 1, 2}\n",
		"array V = [3, 1, 4]\n",
		"p[i] = a!i -> p[i+1]\n",
		"assert p sat len(tr) >= 0\n",
		"assert forall x in {0,1}. p sat #a <= #b\n",
		"assert p refines q\n",
		"-- a comment\np = STOP -- trailing\n",
		"p = a!(1+2*3) -> STOP\n",
		"p = STOP |~| a!1 -> STOP\n",
	} {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		file, err := Parse(src)
		if err != nil {
			return // rejection with an error is always acceptable
		}
		if file == nil || file.Module == nil {
			t.Fatalf("Parse returned nil file without an error")
		}
		text := file.Module.String()
		again, err := Parse(text)
		if err != nil {
			t.Fatalf("accepted input rendered to unparseable text: %v\ninput: %q\nrendered:\n%s", err, src, text)
		}
		if got := again.Module.String(); got != text {
			t.Fatalf("print∘parse not idempotent\nfirst:\n%s\nsecond:\n%s\ninput: %q", text, got, src)
		}
	})
}
