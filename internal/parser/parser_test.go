package parser_test

import (
	"reflect"
	"testing"

	"cspsat/internal/assertion"
	"cspsat/internal/paper"
	"cspsat/internal/parser"
	"cspsat/internal/syntax"
)

// TestParseCopierMatchesHandBuiltModule checks that parsing the canonical
// copier text yields exactly the AST that internal/paper constructs by hand.
func TestParseCopierMatchesHandBuiltModule(t *testing.T) {
	f, err := parser.Parse(paper.CopierSpec)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := paper.CopySystem()
	for _, name := range want.Names() {
		wd, _ := want.Lookup(name)
		gd, ok := f.Module.Lookup(name)
		if !ok {
			t.Fatalf("parsed module lacks %q", name)
		}
		if !reflect.DeepEqual(gd, wd) {
			t.Errorf("definition %q:\n  parsed %s\n  want   %s", name, gd, wd)
		}
	}
	if len(f.Asserts) != 5 {
		t.Fatalf("want 5 asserts, got %d", len(f.Asserts))
	}
	if got, want := f.Asserts[0].A, paper.CopierSat(); !reflect.DeepEqual(got, want) {
		t.Errorf("assert 0: parsed %s want %s", got, want)
	}
	if got, want := f.Asserts[1].A, paper.CopierLenSat(); !reflect.DeepEqual(got, want) {
		t.Errorf("assert 1: parsed %s want %s", got, want)
	}
}

func TestParseProtocolMatchesHandBuiltModule(t *testing.T) {
	f, err := parser.Parse(paper.ProtocolSpec)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := paper.ProtocolSystem(2)
	for _, name := range want.Names() {
		wd, _ := want.Lookup(name)
		gd, ok := f.Module.Lookup(name)
		if !ok {
			t.Fatalf("parsed module lacks %q", name)
		}
		if !reflect.DeepEqual(gd, wd) {
			t.Errorf("definition %q:\n  parsed %s\n  want   %s", name, gd, wd)
		}
	}
	if len(f.Asserts) != 4 {
		t.Fatalf("want 4 asserts, got %d", len(f.Asserts))
	}
	if got, want := f.Asserts[0].A, paper.SenderSat(); !reflect.DeepEqual(got, want) {
		t.Errorf("sender assert: parsed %s want %s", got, want)
	}
	// The quantified q[x] claim.
	q := f.Asserts[1]
	if len(q.Quants) != 1 || q.Quants[0].Var != "x" {
		t.Fatalf("q assert quantifiers: %+v", q.Quants)
	}
	if got, want := q.A, paper.QSat(); !reflect.DeepEqual(got, want) {
		t.Errorf("q assert: parsed %s want %s", got, want)
	}
	if got, want := f.Asserts[2].A, paper.ReceiverSat(); !reflect.DeepEqual(got, want) {
		t.Errorf("receiver assert: parsed %s want %s", got, want)
	}
}

func TestParseMultiplierMatchesHandBuiltModule(t *testing.T) {
	f, err := parser.Parse(paper.MultiplierSpec)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := paper.MultiplierSystem([]int64{5, 3, 2})
	for _, name := range want.Names() {
		wd, _ := want.Lookup(name)
		gd, ok := f.Module.Lookup(name)
		if !ok {
			t.Fatalf("parsed module lacks %q", name)
		}
		if !reflect.DeepEqual(gd, wd) {
			t.Errorf("definition %q:\n  parsed %s\n  want   %s", name, gd, wd)
		}
	}
	if len(f.Asserts) != 1 {
		t.Fatalf("want 1 assert, got %d", len(f.Asserts))
	}
	if got, want := f.Asserts[0].A, paper.MultiplierSat(); !reflect.DeepEqual(got, want) {
		t.Errorf("multiplier assert:\n  parsed %s\n  want   %s", got, want)
	}
}

func TestParseExplicitAlphabets(t *testing.T) {
	src := `
p = a!1 -> STOP
q = b!2 -> STOP
net = p [a,w || b,w] q
`
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d, ok := f.Module.Lookup("net")
	if !ok {
		t.Fatal("net not defined")
	}
	par, ok := d.Body.(syntax.Par)
	if !ok {
		t.Fatalf("net body is %T", d.Body)
	}
	if len(par.AlphaL) != 2 || par.AlphaL[0].Name != "a" || par.AlphaL[1].Name != "w" {
		t.Errorf("AlphaL = %v", par.AlphaL)
	}
	if len(par.AlphaR) != 2 || par.AlphaR[0].Name != "b" {
		t.Errorf("AlphaR = %v", par.AlphaR)
	}
}

func TestParsePrecedence(t *testing.T) {
	// -> binds tighter than |, which binds tighter than ||.
	src := `p = a!1 -> STOP | b!2 -> STOP || c!3 -> STOP`
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d, _ := f.Module.Lookup("p")
	par, ok := d.Body.(syntax.Par)
	if !ok {
		t.Fatalf("top is %T, want Par", d.Body)
	}
	if _, ok := par.L.(syntax.Alt); !ok {
		t.Fatalf("left of || is %T, want Alt", par.L)
	}
	if _, ok := par.R.(syntax.Output); !ok {
		t.Fatalf("right of || is %T, want Output", par.R)
	}
}

func TestParseChanExtendsRight(t *testing.T) {
	src := `p = chan w; a!1 -> w!2 -> STOP || w?x:NAT -> STOP`
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d, _ := f.Module.Lookup("p")
	h, ok := d.Body.(syntax.Hiding)
	if !ok {
		t.Fatalf("top is %T, want Hiding", d.Body)
	}
	if _, ok := h.Body.(syntax.Par); !ok {
		t.Fatalf("hiding body is %T, want Par", h.Body)
	}
}

func TestParseSequenceLiteralsAndIndexing(t *testing.T) {
	src := `
p = out!1 -> STOP
assert p sat out <= <1, 2, 3>
assert p sat #out >= 1 => out[1] == 1
`
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(f.Asserts) != 2 {
		t.Fatalf("want 2 asserts, got %d", len(f.Asserts))
	}
	cmp, ok := f.Asserts[0].A.(assertion.Cmp)
	if !ok {
		t.Fatalf("assert 0 is %T", f.Asserts[0].A)
	}
	if _, ok := cmp.R.(assertion.SeqLit); !ok {
		t.Fatalf("assert 0 RHS is %T, want SeqLit", cmp.R)
	}
	imp, ok := f.Asserts[1].A.(assertion.Implies)
	if !ok {
		t.Fatalf("assert 1 is %T", f.Asserts[1].A)
	}
	at, ok := imp.R.(assertion.Cmp).L.(assertion.At)
	if !ok {
		t.Fatalf("out[1] parsed as %T, want At", imp.R.(assertion.Cmp).L)
	}
	if ch, ok := at.S.(assertion.ChanT); !ok || ch.Name != "out" {
		t.Fatalf("At base is %v", at.S)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"missing arrow", `p = a!1 STOP`},
		{"duplicate def", "p = STOP\np = STOP"},
		{"bad channel list", `p = chan ; STOP`},
		{"const arity mismatch", `const v[1..3] = [1, 2]`},
		{"assert without sat", `p = STOP
assert p out <= input`},
		{"unterminated set", `set M = {0..`},
		{"stray token", `p = STOP )`},
		{"input without domain", `p = a?x -> STOP`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := parser.Parse(tc.src); err == nil {
				t.Fatalf("expected a parse error for %q", tc.src)
			}
		})
	}
}

func TestLineCommentsAndWhitespace(t *testing.T) {
	src := "-- leading comment\np = a!1 -> STOP -- trailing\n\n\n-- done\n"
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, ok := f.Module.Lookup("p"); !ok {
		t.Fatal("p not parsed")
	}
}

// TestRoundTripThroughString parses, renders with String(), and reparses;
// the two parses must agree. This pins the renderers and the grammar to
// each other.
func TestRoundTripThroughString(t *testing.T) {
	for _, src := range []string{paper.CopierSpec, paper.ProtocolSpec, paper.MultiplierSpec} {
		f, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		rendered := f.Module.String()
		f2, err := parser.Parse(rendered)
		if err != nil {
			t.Fatalf("reparse of rendering failed: %v\nrendering:\n%s", err, rendered)
		}
		for _, name := range f.Module.Names() {
			d1, _ := f.Module.Lookup(name)
			d2, ok := f2.Module.Lookup(name)
			if !ok {
				t.Fatalf("reparse lost %q", name)
			}
			if !reflect.DeepEqual(d1, d2) {
				t.Errorf("round trip changed %q:\n  before %s\n  after  %s", name, d1, d2)
			}
		}
	}
}

func TestParseInternalChoice(t *testing.T) {
	src := `
p = a!1 -> STOP |~| b!2 -> STOP
q = a!1 -> STOP | b!2 -> STOP |~| c!3 -> STOP
`
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d, _ := f.Module.Lookup("p")
	if _, ok := d.Body.(syntax.IChoice); !ok {
		t.Fatalf("p body is %T, want IChoice", d.Body)
	}
	// Left associative mixing: (a|b) |~| c.
	d, _ = f.Module.Lookup("q")
	ic, ok := d.Body.(syntax.IChoice)
	if !ok {
		t.Fatalf("q body is %T, want IChoice", d.Body)
	}
	if _, ok := ic.L.(syntax.Alt); !ok {
		t.Fatalf("q left is %T, want Alt", ic.L)
	}
	// Round trip through the renderer.
	f2, err := parser.Parse(f.Module.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	for _, name := range f.Module.Names() {
		d1, _ := f.Module.Lookup(name)
		d2, _ := f2.Module.Lookup(name)
		if !reflect.DeepEqual(d1, d2) {
			t.Errorf("round trip changed %q: %s vs %s", name, d1, d2)
		}
	}
}
