package parser

import (
	"fmt"

	"cspsat/internal/assertion"
	"cspsat/internal/model"
	"cspsat/internal/syntax"
	"cspsat/internal/value"
)

// Assertion parsing. Identifiers in assertion terms are ambiguous until the
// whole file is known (a bare name may be a channel, a logic variable, a
// symbol, or a constant array), so terms are first built with
// assertion.Unresolved placeholders and resolved in a second pass against
// the module's channel names and declarations.

// parseAssertDecl parses:
//
//	assert {forall IDENT in setExpr .} procref sat formula
func (p *parser) parseAssertDecl() error {
	line := p.peek().line
	p.take() // assert
	var quants []Quant
	for p.atKeyword("forall") {
		p.take()
		v, err := p.expect(tIdent)
		if err != nil {
			return err
		}
		if !p.atKeyword("in") {
			return p.errf("expected 'in' after forall %s", v.text)
		}
		p.take()
		dom, err := p.parseSetExpr()
		if err != nil {
			return err
		}
		if _, err := p.expect(tDot); err != nil {
			return err
		}
		quants = append(quants, Quant{Var: v.text, Dom: dom})
	}
	proc, err := p.parsePrefix()
	if err != nil {
		return err
	}
	if p.atKeyword("refines") {
		p.take()
		spec, err := p.parsePrefix()
		if err != nil {
			return err
		}
		if len(quants) != 0 {
			return p.errf("refinement asserts cannot be quantified")
		}
		// Optional model pin: "assert P refines Q in failures".
		var mdl model.Model
		if p.atKeyword("in") {
			p.take()
			name, err := p.expect(tIdent)
			if err != nil {
				return err
			}
			if mdl, err = model.Parse(name.text); err != nil {
				return p.errf("%v", err)
			}
		}
		p.asserts = append(p.asserts, AssertDecl{Proc: proc, Refines: spec, Model: mdl, Line: line})
		return nil
	}
	if !p.atKeyword("sat") {
		return p.errf("expected 'sat' or 'refines', found %s", p.peek())
	}
	p.take()
	// Behavioural (refusal-level) forms are top-level only: they describe
	// the whole process's stable states, so nesting them under connectives
	// or quantifiers has no meaning in any model served here.
	if a, ok, err := p.parseBehavioural(); ok {
		if err != nil {
			return err
		}
		if len(quants) != 0 {
			return p.errf("behavioural asserts cannot be quantified")
		}
		p.asserts = append(p.asserts, AssertDecl{Proc: proc, A: a, Line: line})
		return nil
	}
	a, err := p.parseFormula()
	if err != nil {
		return err
	}
	p.asserts = append(p.asserts, AssertDecl{Quants: quants, Proc: proc, A: a, Line: line})
	return nil
}

// parseBehavioural parses the refusal-level assertion forms:
//
//	deadlockfree
//	offers CHAN {, CHAN}
//
// It reports ok=false (without consuming anything) when the next token
// opens an ordinary formula instead.
func (p *parser) parseBehavioural() (assertion.A, bool, error) {
	switch {
	case p.atKeyword("deadlockfree"):
		p.take()
		return assertion.DeadlockFree{}, true, nil
	case p.atKeyword("offers"):
		p.take()
		var chans []string
		for {
			c, err := p.expect(tIdent)
			if err != nil {
				return nil, true, err
			}
			chans = append(chans, c.text)
			if !p.at(tComma) {
				break
			}
			p.take()
		}
		return assertion.Offers{Chans: chans}, true, nil
	}
	return nil, false, nil
}

// parseFormula parses an assertion with precedence:
// '=>' (right) < 'or' < '&' < comparisons.
func (p *parser) parseFormula() (assertion.A, error) {
	left, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.at(tImplies) {
		p.take()
		right, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		return assertion.Implies{L: left, R: right}, nil
	}
	return left, nil
}

func (p *parser) parseOr() (assertion.A, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("or") {
		p.take()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = assertion.Or{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (assertion.A, error) {
	left, err := p.parseFormulaUnary()
	if err != nil {
		return nil, err
	}
	for p.at(tAmp) {
		p.take()
		right, err := p.parseFormulaUnary()
		if err != nil {
			return nil, err
		}
		left = assertion.And{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseFormulaUnary() (assertion.A, error) {
	switch {
	case p.atKeyword("true"):
		p.take()
		return assertion.BoolA{Val: true}, nil
	case p.atKeyword("false"):
		p.take()
		return assertion.BoolA{Val: false}, nil
	case p.at(tBang):
		p.take()
		if _, err := p.expect(tLParen); err != nil {
			return nil, err
		}
		inner, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return assertion.Not{Body: inner}, nil
	case p.atKeyword("forall") || p.atKeyword("exists"):
		return p.parseQuantFormula()
	case p.at(tLParen):
		// Could be a parenthesised formula or a parenthesised term; try
		// the formula reading first and fall back on failure.
		save := p.pos
		p.take()
		inner, err := p.parseFormula()
		if err == nil {
			if _, err2 := p.expect(tRParen); err2 == nil {
				return inner, nil
			}
		}
		p.pos = save
		return p.parseCmp()
	default:
		return p.parseCmp()
	}
}

func (p *parser) parseQuantFormula() (assertion.A, error) {
	kw := p.take().text // forall | exists
	v, err := p.expect(tIdent)
	if err != nil {
		return nil, err
	}
	switch {
	case p.atKeyword("in"):
		p.take()
		dom, err := p.parseSetExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tDot); err != nil {
			return nil, err
		}
		body, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if kw == "forall" {
			return assertion.ForAllSet{Var: v.text, Dom: dom, Body: body}, nil
		}
		return assertion.ExistsSet{Var: v.text, Dom: dom, Body: body}, nil
	case p.at(tColon):
		p.take()
		lo, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tDotDot); err != nil {
			return nil, err
		}
		hi, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tDot); err != nil {
			return nil, err
		}
		body, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if kw == "forall" {
			return assertion.ForAllRange{Var: v.text, Lo: lo, Hi: hi, Body: body}, nil
		}
		return assertion.ExistsRange{Var: v.text, Lo: lo, Hi: hi, Body: body}, nil
	default:
		return nil, p.errf("expected 'in' or ':' after %s %s", kw, v.text)
	}
}

func (p *parser) parseCmp() (assertion.A, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	var op assertion.CmpOp
	switch p.peek().kind {
	case tEqEq:
		op = assertion.CEq
	case tNe:
		op = assertion.CNe
	case tLe:
		op = assertion.CLe
	case tLt:
		op = assertion.CLt
	case tGe:
		op = assertion.CGe
	case tGt:
		op = assertion.CGt
	default:
		return nil, p.errf("expected a comparison operator, found %s", p.peek())
	}
	p.take()
	right, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	return assertion.Cmp{Op: op, L: left, R: right}, nil
}

// parseTerm parses an assertion term. Precedence, loosest first:
// '^' (cons, right assoc) and '++' (concatenation, left assoc) over
// '+'/'-' over '*'/'/'/'%' over primaries.
func (p *parser) parseTerm() (assertion.Term, error) {
	left, err := p.parseAddTerm()
	if err != nil {
		return nil, err
	}
	switch {
	case p.at(tCaret):
		p.take()
		right, err := p.parseTerm() // right associative: x^y^s = x^(y^s)
		if err != nil {
			return nil, err
		}
		return assertion.Cons{Head: left, Tail: right}, nil
	case p.at(tCatOp):
		for p.at(tCatOp) {
			p.take()
			right, err := p.parseAddTerm()
			if err != nil {
				return nil, err
			}
			left = assertion.Cat{L: left, R: right}
		}
		return left, nil
	default:
		return left, nil
	}
}

func (p *parser) parseAddTerm() (assertion.Term, error) {
	left, err := p.parseMulTerm()
	if err != nil {
		return nil, err
	}
	for p.at(tPlus) || p.at(tMinus) {
		op := assertion.AAdd
		if p.take().kind == tMinus {
			op = assertion.ASub
		}
		right, err := p.parseMulTerm()
		if err != nil {
			return nil, err
		}
		left = assertion.Arith{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseMulTerm() (assertion.Term, error) {
	left, err := p.parsePrimTerm()
	if err != nil {
		return nil, err
	}
	for p.at(tStar) || p.at(tSlash) || p.at(tPercent) {
		var op assertion.ArithOp
		switch p.take().kind {
		case tStar:
			op = assertion.AMul
		case tSlash:
			op = assertion.ADiv
		default:
			op = assertion.AMod
		}
		right, err := p.parsePrimTerm()
		if err != nil {
			return nil, err
		}
		left = assertion.Arith{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parsePrimTerm() (assertion.Term, error) {
	switch {
	case p.at(tInt):
		return assertion.Int(p.take().val), nil

	case p.at(tMinus):
		p.take()
		t, err := p.expect(tInt)
		if err != nil {
			return nil, err
		}
		return assertion.Int(-t.val), nil

	case p.at(tHash):
		p.take()
		s, err := p.parsePrimTerm()
		if err != nil {
			return nil, err
		}
		return assertion.Len{S: s}, nil

	case p.at(tLt):
		// Sequence literal <a, b, c> or the empty sequence <>.
		p.take()
		if p.at(tGt) {
			p.take()
			return assertion.Empty(), nil
		}
		var elems []assertion.Term
		for {
			e, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
			if p.at(tComma) {
				p.take()
				continue
			}
			break
		}
		if _, err := p.expect(tGt); err != nil {
			return nil, err
		}
		return assertion.SeqLit{Elems: elems}, nil

	case p.atKeyword("sum"):
		p.take()
		v, err := p.expect(tIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tColon); err != nil {
			return nil, err
		}
		lo, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tDotDot); err != nil {
			return nil, err
		}
		hi, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tDot); err != nil {
			return nil, err
		}
		body, err := p.parsePrimTerm()
		if err != nil {
			return nil, err
		}
		return assertion.Sum{Var: v.text, Lo: lo, Hi: hi, Body: body}, nil

	case p.at(tIdent):
		name := p.take()
		switch {
		case p.at(tLParen):
			p.take()
			var args []assertion.Term
			if !p.at(tRParen) {
				for {
					a, err := p.parseTerm()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.at(tComma) {
						p.take()
						continue
					}
					break
				}
			}
			if _, err := p.expect(tRParen); err != nil {
				return nil, err
			}
			return p.parsePostfixIndex(assertion.Apply{Fn: name.text, Args: args})
		case p.at(tLBrack):
			p.take()
			sub, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tRBrack); err != nil {
				return nil, err
			}
			return p.parsePostfixIndex(assertion.Unresolved{Name: name.text, Sub: sub})
		default:
			return assertion.Unresolved{Name: name.text}, nil
		}

	case p.at(tLParen):
		p.take()
		t, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return p.parsePostfixIndex(t)

	default:
		return nil, p.errf("expected a term, found %s", p.peek())
	}
}

// parsePostfixIndex wraps a term with trailing [i] indexes: the paper's sᵢ.
// (The first subscript directly after a bare identifier is captured inside
// Unresolved instead — whether it selects a channel-array element or a
// sequence position is decided at resolution time.)
func (p *parser) parsePostfixIndex(t assertion.Term) (assertion.Term, error) {
	for p.at(tLBrack) {
		p.take()
		idx, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRBrack); err != nil {
			return nil, err
		}
		t = assertion.At{S: t, Idx: idx}
	}
	return t, nil
}

// resolveAsserts replaces Unresolved placeholders now that the whole module
// is known. Resolution rules, in order:
//
//   - a variable bound by an enclosing quantifier (or the assert's own
//     forall prefix) resolves to that variable;
//   - a name some process communicates on resolves to a channel (subscripted
//     names: the array name);
//   - a declared constant array with a subscript resolves to ConstIndex;
//   - an all-uppercase name resolves to a symbol literal;
//   - anything else resolves to a free variable.
func (p *parser) resolveAsserts() error {
	chanNames := p.moduleChanUsage()
	for i := range p.asserts {
		if p.asserts[i].A == nil {
			continue // a refinement assert has no formula to resolve
		}
		bound := map[string]bool{}
		for _, q := range p.asserts[i].Quants {
			bound[q.Var] = true
		}
		a, err := resolveFormula(p.asserts[i].A, chanNames, p.module, bound)
		if err != nil {
			return fmt.Errorf("assert at line %d: %w", p.asserts[i].Line, err)
		}
		p.asserts[i].A = a
	}
	return nil
}

// chanUsage records how the module's processes use each channel name:
// whether it appears at all, and whether it is subscripted (a channel
// array). The distinction resolves the name[i] ambiguity in assertions:
// row[j] selects an array element, output[i] indexes a plain channel's
// history.
type chanUsage struct {
	used  map[string]bool
	array map[string]bool
}

func (p *parser) moduleChanUsage() chanUsage {
	u := chanUsage{used: map[string]bool{}, array: map[string]bool{}}
	var walk func(pr syntax.Proc)
	note := func(c syntax.ChanRef) {
		u.used[c.Name] = true
		if c.Sub != nil {
			u.array[c.Name] = true
		}
	}
	noteItems := func(items []syntax.ChanItem) {
		for _, it := range items {
			u.used[it.Name] = true
			if it.Sub != nil || it.Lo != nil {
				u.array[it.Name] = true
			}
		}
	}
	walk = func(pr syntax.Proc) {
		switch t := pr.(type) {
		case syntax.Output:
			note(t.Ch)
			walk(t.Cont)
		case syntax.Input:
			note(t.Ch)
			walk(t.Cont)
		case syntax.Alt:
			walk(t.L)
			walk(t.R)
		case syntax.Par:
			walk(t.L)
			walk(t.R)
			noteItems(t.AlphaL)
			noteItems(t.AlphaR)
		case syntax.Hiding:
			noteItems(t.Channels)
			walk(t.Body)
		}
	}
	for _, name := range p.module.Names() {
		def, _ := p.module.Lookup(name)
		walk(def.Body)
	}
	return u
}

func resolveFormula(a assertion.A, chans chanUsage, m *syntax.Module, bound map[string]bool) (assertion.A, error) {
	rt := func(t assertion.Term) (assertion.Term, error) {
		return resolveTerm(t, chans, m, bound)
	}
	switch x := a.(type) {
	case assertion.BoolA:
		return x, nil
	case assertion.Cmp:
		l, err := rt(x.L)
		if err != nil {
			return nil, err
		}
		r, err := rt(x.R)
		if err != nil {
			return nil, err
		}
		return assertion.Cmp{Op: x.Op, L: l, R: r}, nil
	case assertion.Not:
		b, err := resolveFormula(x.Body, chans, m, bound)
		if err != nil {
			return nil, err
		}
		return assertion.Not{Body: b}, nil
	case assertion.And:
		l, err := resolveFormula(x.L, chans, m, bound)
		if err != nil {
			return nil, err
		}
		r, err := resolveFormula(x.R, chans, m, bound)
		if err != nil {
			return nil, err
		}
		return assertion.And{L: l, R: r}, nil
	case assertion.Or:
		l, err := resolveFormula(x.L, chans, m, bound)
		if err != nil {
			return nil, err
		}
		r, err := resolveFormula(x.R, chans, m, bound)
		if err != nil {
			return nil, err
		}
		return assertion.Or{L: l, R: r}, nil
	case assertion.Implies:
		l, err := resolveFormula(x.L, chans, m, bound)
		if err != nil {
			return nil, err
		}
		r, err := resolveFormula(x.R, chans, m, bound)
		if err != nil {
			return nil, err
		}
		return assertion.Implies{L: l, R: r}, nil
	case assertion.ForAllSet:
		b, err := resolveUnder(x.Var, x.Body, chans, m, bound)
		if err != nil {
			return nil, err
		}
		return assertion.ForAllSet{Var: x.Var, Dom: x.Dom, Body: b}, nil
	case assertion.ExistsSet:
		b, err := resolveUnder(x.Var, x.Body, chans, m, bound)
		if err != nil {
			return nil, err
		}
		return assertion.ExistsSet{Var: x.Var, Dom: x.Dom, Body: b}, nil
	case assertion.ForAllRange:
		lo, err := rt(x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := rt(x.Hi)
		if err != nil {
			return nil, err
		}
		b, err := resolveUnder(x.Var, x.Body, chans, m, bound)
		if err != nil {
			return nil, err
		}
		return assertion.ForAllRange{Var: x.Var, Lo: lo, Hi: hi, Body: b}, nil
	case assertion.ExistsRange:
		lo, err := rt(x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := rt(x.Hi)
		if err != nil {
			return nil, err
		}
		b, err := resolveUnder(x.Var, x.Body, chans, m, bound)
		if err != nil {
			return nil, err
		}
		return assertion.ExistsRange{Var: x.Var, Lo: lo, Hi: hi, Body: b}, nil
	case assertion.Pred:
		args := make([]assertion.Term, len(x.Args))
		for i, t := range x.Args {
			r, err := rt(t)
			if err != nil {
				return nil, err
			}
			args[i] = r
		}
		return assertion.Pred{Name: x.Name, Args: args}, nil
	case assertion.DeadlockFree:
		return x, nil
	case assertion.Offers:
		// The named channels must be ones the module communicates on —
		// an assertion about a channel nothing uses is a typo, and it
		// would hold vacuously forever.
		for _, c := range x.Chans {
			if !chans.used[c] {
				return nil, fmt.Errorf("offers names channel %q which no process uses", c)
			}
		}
		return x, nil
	default:
		return nil, fmt.Errorf("parser: cannot resolve formula %T", a)
	}
}

func resolveUnder(v string, body assertion.A, chans chanUsage, m *syntax.Module, bound map[string]bool) (assertion.A, error) {
	if bound[v] {
		return resolveFormula(body, chans, m, bound)
	}
	bound[v] = true
	defer delete(bound, v)
	return resolveFormula(body, chans, m, bound)
}

func resolveTerm(t assertion.Term, chans chanUsage, m *syntax.Module, bound map[string]bool) (assertion.Term, error) {
	rt := func(t assertion.Term) (assertion.Term, error) {
		return resolveTerm(t, chans, m, bound)
	}
	switch x := t.(type) {
	case assertion.Unresolved:
		if x.Sub == nil {
			switch {
			case bound[x.Name]:
				return assertion.Var(x.Name), nil
			case chans.used[x.Name]:
				return assertion.Chan(x.Name), nil
			case isSymbolName(x.Name):
				return assertion.Lit{Val: value.Sym(x.Name)}, nil
			default:
				return assertion.Var(x.Name), nil
			}
		}
		sub, err := rt(x.Sub)
		if err != nil {
			return nil, err
		}
		switch {
		case chans.array[x.Name]:
			return assertion.ChanT{Name: x.Name, Sub: sub}, nil
		case chans.used[x.Name]:
			// A subscripted plain channel indexes its history: outputᵢ.
			return assertion.At{S: assertion.Chan(x.Name), Idx: sub}, nil
		case m.Arrays[x.Name].Name == x.Name:
			return assertion.ConstIndex{Name: x.Name, Sub: sub}, nil
		default:
			return nil, fmt.Errorf("parser: %s[…] is neither a channel nor a constant array", x.Name)
		}
	case assertion.Lit, assertion.VarT, assertion.ChanT, assertion.ConstIndex:
		return t, nil
	case assertion.Cons:
		h, err := rt(x.Head)
		if err != nil {
			return nil, err
		}
		tl, err := rt(x.Tail)
		if err != nil {
			return nil, err
		}
		return assertion.Cons{Head: h, Tail: tl}, nil
	case assertion.SeqLit:
		elems := make([]assertion.Term, len(x.Elems))
		for i, e := range x.Elems {
			r, err := rt(e)
			if err != nil {
				return nil, err
			}
			elems[i] = r
		}
		return assertion.SeqLit{Elems: elems}, nil
	case assertion.Cat:
		l, err := rt(x.L)
		if err != nil {
			return nil, err
		}
		r, err := rt(x.R)
		if err != nil {
			return nil, err
		}
		return assertion.Cat{L: l, R: r}, nil
	case assertion.Len:
		s, err := rt(x.S)
		if err != nil {
			return nil, err
		}
		return assertion.Len{S: s}, nil
	case assertion.At:
		s, err := rt(x.S)
		if err != nil {
			return nil, err
		}
		i, err := rt(x.Idx)
		if err != nil {
			return nil, err
		}
		return assertion.At{S: s, Idx: i}, nil
	case assertion.Arith:
		l, err := rt(x.L)
		if err != nil {
			return nil, err
		}
		r, err := rt(x.R)
		if err != nil {
			return nil, err
		}
		return assertion.Arith{Op: x.Op, L: l, R: r}, nil
	case assertion.Sum:
		lo, err := rt(x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := rt(x.Hi)
		if err != nil {
			return nil, err
		}
		wasBound := bound[x.Var]
		bound[x.Var] = true
		body, err := rt(x.Body)
		if !wasBound {
			delete(bound, x.Var)
		}
		if err != nil {
			return nil, err
		}
		return assertion.Sum{Var: x.Var, Lo: lo, Hi: hi, Body: body}, nil
	case assertion.Apply:
		args := make([]assertion.Term, len(x.Args))
		for i, a := range x.Args {
			r, err := rt(a)
			if err != nil {
				return nil, err
			}
			args[i] = r
		}
		return assertion.Apply{Fn: x.Fn, Args: args}, nil
	default:
		return nil, fmt.Errorf("parser: cannot resolve term %T", t)
	}
}
