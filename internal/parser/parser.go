package parser

import (
	"fmt"
	"strings"

	"cspsat/internal/assertion"
	"cspsat/internal/csperr"
	"cspsat/internal/model"
	"cspsat/internal/syntax"
)

// Quant is a universal quantifier prefixed to an assert declaration:
// "assert forall x in M. q[x] sat …".
type Quant struct {
	Var string
	Dom syntax.SetExpr
}

// AssertDecl is one assert declaration: either a sat-claim
// "assert [forall …] P sat R" (Refines nil) or a refinement claim
// "assert P refines Q [in MODEL]" (A nil, Refines the specification
// process). Model pins the declaration to a semantic model: the zero
// value (traces) means "whatever model the check runs under", an explicit
// "in failures" forces the failures model even under a trace-model run.
type AssertDecl struct {
	Quants  []Quant
	Proc    syntax.Proc
	A       assertion.A
	Refines syntax.Proc
	Model   model.Model
	Line    int
}

// String renders the declaration.
func (d AssertDecl) String() string {
	var sb strings.Builder
	sb.WriteString("assert ")
	for _, q := range d.Quants {
		fmt.Fprintf(&sb, "forall %s in %s. ", q.Var, q.Dom)
	}
	if d.Refines != nil {
		fmt.Fprintf(&sb, "%s refines %s", d.Proc, d.Refines)
		if d.Model != model.Traces {
			fmt.Fprintf(&sb, " in %s", d.Model)
		}
		return sb.String()
	}
	fmt.Fprintf(&sb, "%s sat %s", d.Proc, d.A)
	return sb.String()
}

// File is a parsed .csp source: a module plus its assert declarations.
type File struct {
	Module  *syntax.Module
	Asserts []AssertDecl
}

// Parse parses a .csp source text. Lexical, syntactic, and assert-
// resolution failures all wrap csperr.ErrParse, so callers across the
// package boundary dispatch with errors.Is rather than string matching.
func Parse(src string) (*File, error) {
	f, err := parse(src)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", csperr.ErrParse, err)
	}
	return f, nil
}

func parse(src string) (*File, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, module: syntax.NewModule()}
	if err := p.parseFile(); err != nil {
		return nil, err
	}
	if err := p.resolveAsserts(); err != nil {
		return nil, err
	}
	return &File{Module: p.module, Asserts: p.asserts}, nil
}

type parser struct {
	toks    []token
	pos     int
	module  *syntax.Module
	asserts []AssertDecl
}

func (p *parser) peek() token       { return p.toks[p.pos] }
func (p *parser) at(k tokKind) bool { return p.toks[p.pos].kind == k }

func (p *parser) take() token {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k tokKind) (token, error) {
	t := p.peek()
	if t.kind != k {
		return token{}, p.errf("expected %s, found %s", k, t)
	}
	return p.take(), nil
}

func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	return fmt.Errorf("%d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

// atKeyword reports whether the current token is the given identifier.
func (p *parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tIdent && t.text == kw
}

func (p *parser) parseFile() error {
	for !p.at(tEOF) {
		switch {
		case p.atKeyword("set"):
			if err := p.parseSetDecl(); err != nil {
				return err
			}
		case p.atKeyword("const"):
			if err := p.parseConstDecl(); err != nil {
				return err
			}
		case p.atKeyword("assert"):
			if err := p.parseAssertDecl(); err != nil {
				return err
			}
		case p.at(tIdent):
			if err := p.parseProcDef(); err != nil {
				return err
			}
		default:
			return p.errf("expected a declaration, found %s", p.peek())
		}
	}
	return nil
}

// parseSetDecl parses: set IDENT = setExpr
func (p *parser) parseSetDecl() error {
	p.take() // set
	name, err := p.expect(tIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tEquals); err != nil {
		return err
	}
	se, err := p.parseSetExpr()
	if err != nil {
		return err
	}
	p.module.DefineSet(name.text, se)
	return nil
}

// parseConstDecl parses: const IDENT [ INT .. INT ] = [ INT {, INT} ]
func (p *parser) parseConstDecl() error {
	p.take() // const
	name, err := p.expect(tIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tLBrack); err != nil {
		return err
	}
	lo, err := p.parseSignedInt()
	if err != nil {
		return err
	}
	if _, err := p.expect(tDotDot); err != nil {
		return err
	}
	hi, err := p.parseSignedInt()
	if err != nil {
		return err
	}
	if _, err := p.expect(tRBrack); err != nil {
		return err
	}
	if _, err := p.expect(tEquals); err != nil {
		return err
	}
	if _, err := p.expect(tLBrack); err != nil {
		return err
	}
	var elems []int64
	for {
		v, err := p.parseSignedInt()
		if err != nil {
			return err
		}
		elems = append(elems, v)
		if p.at(tComma) {
			p.take()
			continue
		}
		break
	}
	if _, err := p.expect(tRBrack); err != nil {
		return err
	}
	if int64(len(elems)) != hi-lo+1 {
		return p.errf("const %s[%d..%d] declares %d slots but %d values given",
			name.text, lo, hi, hi-lo+1, len(elems))
	}
	p.module.DefineArray(syntax.ValueArray{Name: name.text, Lo: lo, Elems: elems})
	return nil
}

func (p *parser) parseSignedInt() (int64, error) {
	neg := false
	if p.at(tMinus) {
		p.take()
		neg = true
	}
	t, err := p.expect(tInt)
	if err != nil {
		return 0, err
	}
	if neg {
		return -t.val, nil
	}
	return t.val, nil
}

// parseProcDef parses: IDENT [ "[" IDENT ":" setExpr "]" ] "=" proc
func (p *parser) parseProcDef() error {
	name := p.take()
	def := syntax.Def{Name: name.text}
	if p.at(tLBrack) {
		p.take()
		param, err := p.expect(tIdent)
		if err != nil {
			return err
		}
		if _, err := p.expect(tColon); err != nil {
			return err
		}
		dom, err := p.parseSetExpr()
		if err != nil {
			return err
		}
		if _, err := p.expect(tRBrack); err != nil {
			return err
		}
		def.Param = param.text
		def.ParamDom = dom
	}
	if _, err := p.expect(tEquals); err != nil {
		return err
	}
	body, err := p.parseProc()
	if err != nil {
		return err
	}
	def.Body = body
	if err := p.module.Define(def); err != nil {
		return p.errf("%v", err)
	}
	return nil
}

// parseProc parses a full process expression: '||' binds loosest, then '|',
// then prefixing.
func (p *parser) parseProc() (syntax.Proc, error) {
	return p.parsePar()
}

func (p *parser) parsePar() (syntax.Proc, error) {
	left, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tParallel):
			p.take()
			right, err := p.parseAlt()
			if err != nil {
				return nil, err
			}
			left = syntax.Par{L: left, R: right}
		case p.at(tLBrack) && p.parallelAlphabetsAhead():
			p.take() // [
			alphaL, err := p.parseChanList(tParallel)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tParallel); err != nil {
				return nil, err
			}
			alphaR, err := p.parseChanList(tRBrack)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tRBrack); err != nil {
				return nil, err
			}
			right, err := p.parseAlt()
			if err != nil {
				return nil, err
			}
			left = syntax.Par{L: left, R: right, AlphaL: alphaL, AlphaR: alphaR}
		default:
			return left, nil
		}
	}
}

// parallelAlphabetsAhead distinguishes "P [a,b || c] Q" (explicit-alphabet
// parallel) from other uses of '[' by scanning for a '||' before the
// matching ']'.
func (p *parser) parallelAlphabetsAhead() bool {
	depth := 0
	for i := p.pos; i < len(p.toks); i++ {
		switch p.toks[i].kind {
		case tLBrack:
			depth++
		case tRBrack:
			depth--
			if depth == 0 {
				return false
			}
		case tParallel:
			if depth == 1 {
				return true
			}
		case tEOF:
			return false
		}
	}
	return false
}

func (p *parser) parseAlt() (syntax.Proc, error) {
	left, err := p.parsePrefix()
	if err != nil {
		return nil, err
	}
	for p.at(tBar) || p.at(tIChoiceT) {
		internal := p.take().kind == tIChoiceT
		right, err := p.parsePrefix()
		if err != nil {
			return nil, err
		}
		if internal {
			left = syntax.IChoice{L: left, R: right}
		} else {
			left = syntax.Alt{L: left, R: right}
		}
	}
	return left, nil
}

func (p *parser) parsePrefix() (syntax.Proc, error) {
	switch {
	case p.atKeyword("STOP"):
		p.take()
		return syntax.Stop{}, nil

	case p.atKeyword("chan"):
		p.take()
		list, err := p.parseChanList(tSemi)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tSemi); err != nil {
			return nil, err
		}
		body, err := p.parseProc()
		if err != nil {
			return nil, err
		}
		return syntax.Hiding{Channels: list, Body: body}, nil

	case p.at(tLParen):
		p.take()
		inner, err := p.parseProc()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return inner, nil

	case p.at(tIdent):
		return p.parseIdentProc()

	default:
		return nil, p.errf("expected a process, found %s", p.peek())
	}
}

// parseIdentProc handles the forms that start with an identifier: an output
// prefix c!e -> P, an input prefix c?x:M -> P, or a process reference
// (optionally subscripted).
func (p *parser) parseIdentProc() (syntax.Proc, error) {
	name := p.take()
	var sub syntax.Expr
	// A '[' here is a subscript unless it opens an explicit-alphabet
	// parallel bracket "P [X || Y] Q".
	if p.at(tLBrack) && !p.parallelAlphabetsAhead() {
		p.take()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRBrack); err != nil {
			return nil, err
		}
		sub = e
	}
	switch {
	case p.at(tBang):
		p.take()
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tArrow); err != nil {
			return nil, err
		}
		cont, err := p.parseArrowCont()
		if err != nil {
			return nil, err
		}
		return syntax.Output{Ch: syntax.ChanRef{Name: name.text, Sub: sub}, Val: val, Cont: cont}, nil

	case p.at(tQuery):
		p.take()
		v, err := p.expect(tIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tColon); err != nil {
			return nil, err
		}
		dom, err := p.parseSetExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tArrow); err != nil {
			return nil, err
		}
		cont, err := p.parseArrowCont()
		if err != nil {
			return nil, err
		}
		return syntax.Input{Ch: syntax.ChanRef{Name: name.text, Sub: sub}, Var: v.text, Dom: dom, Cont: cont}, nil

	default:
		return syntax.Ref{Name: name.text, Sub: sub}, nil
	}
}

// parseArrowCont parses the continuation after '->'. The arrow is right
// associative and binds tighter than '|', so the continuation is a prefix
// process, not an alternative.
func (p *parser) parseArrowCont() (syntax.Proc, error) {
	return p.parsePrefix()
}

// parseChanList parses channel items until the stop token (not consumed).
func (p *parser) parseChanList(stop tokKind) ([]syntax.ChanItem, error) {
	var out []syntax.ChanItem
	for {
		name, err := p.expect(tIdent)
		if err != nil {
			return nil, err
		}
		item := syntax.ChanItem{Name: name.text}
		if p.at(tLBrack) {
			p.take()
			first, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if p.at(tDotDot) {
				p.take()
				hi, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				item.Lo, item.Hi = first, hi
			} else {
				item.Sub = first
			}
			if _, err := p.expect(tRBrack); err != nil {
				return nil, err
			}
		}
		out = append(out, item)
		if p.at(tComma) {
			p.take()
			continue
		}
		if p.at(stop) {
			return out, nil
		}
		return nil, p.errf("expected ',' or %s in channel list, found %s", stop, p.peek())
	}
}

// parseSetExpr parses a set expression, with '\/' as union.
func (p *parser) parseSetExpr() (syntax.SetExpr, error) {
	left, err := p.parseSetAtom()
	if err != nil {
		return nil, err
	}
	for p.at(tUnion) {
		p.take()
		right, err := p.parseSetAtom()
		if err != nil {
			return nil, err
		}
		left = syntax.UnionSet{A: left, B: right}
	}
	return left, nil
}

func (p *parser) parseSetAtom() (syntax.SetExpr, error) {
	switch {
	case p.at(tIdent):
		return syntax.SetName{Name: p.take().text}, nil
	case p.at(tLBrace):
		p.take()
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.at(tDotDot) {
			p.take()
			hi, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tRBrace); err != nil {
				return nil, err
			}
			return syntax.RangeSet{Lo: first, Hi: hi}, nil
		}
		elems := []syntax.Expr{first}
		for p.at(tComma) {
			p.take()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
		}
		if _, err := p.expect(tRBrace); err != nil {
			return nil, err
		}
		return syntax.EnumSet{Elems: elems}, nil
	default:
		return nil, p.errf("expected a set expression, found %s", p.peek())
	}
}

// parseExpr parses a process-language value expression with the usual
// precedence: '*','/','%' over '+','-'.
func (p *parser) parseExpr() (syntax.Expr, error) {
	left, err := p.parseMulExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tPlus) || p.at(tMinus) {
		op := syntax.OpAdd
		if p.take().kind == tMinus {
			op = syntax.OpSub
		}
		right, err := p.parseMulExpr()
		if err != nil {
			return nil, err
		}
		left = syntax.Binary{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseMulExpr() (syntax.Expr, error) {
	left, err := p.parseAtomExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tStar) || p.at(tSlash) || p.at(tPercent) {
		var op syntax.BinOp
		switch p.take().kind {
		case tStar:
			op = syntax.OpMul
		case tSlash:
			op = syntax.OpDiv
		default:
			op = syntax.OpMod
		}
		right, err := p.parseAtomExpr()
		if err != nil {
			return nil, err
		}
		left = syntax.Binary{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAtomExpr() (syntax.Expr, error) {
	switch {
	case p.at(tInt):
		return syntax.IntLit{Val: p.take().val}, nil
	case p.at(tMinus):
		p.take()
		t, err := p.expect(tInt)
		if err != nil {
			return nil, err
		}
		return syntax.IntLit{Val: -t.val}, nil
	case p.at(tIdent):
		name := p.take()
		if p.at(tLBrack) {
			p.take()
			sub, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tRBrack); err != nil {
				return nil, err
			}
			return syntax.Index{Name: name.text, Sub: sub}, nil
		}
		if isSymbolName(name.text) {
			return syntax.SymLit{Name: name.text}, nil
		}
		return syntax.Var{Name: name.text}, nil
	case p.at(tLParen):
		p.take()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errf("expected an expression, found %s", p.peek())
	}
}

// isSymbolName reports whether an identifier denotes a symbolic constant:
// by convention, all-uppercase names (ACK, NACK) are symbols.
func isSymbolName(s string) bool {
	hasLetter := false
	for _, r := range s {
		if r >= 'a' && r <= 'z' {
			return false
		}
		if r >= 'A' && r <= 'Z' {
			hasLetter = true
		}
	}
	return hasLetter
}
