package parser_test

import (
	"reflect"
	"testing"

	"cspsat/internal/assertion"
	"cspsat/internal/model"
	"cspsat/internal/parser"
)

// TestParseModelPinnedRefinement covers the optional "in MODEL" clause on
// refinement asserts: the zero value (traces) means "whatever -model the
// check runs under", an explicit "in failures" pins the declaration.
func TestParseModelPinnedRefinement(t *testing.T) {
	src := `
p = a!1 -> STOP
q = a!1 -> STOP |~| STOP
assert q refines p
assert q refines p in failures
assert q refines p in traces
`
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(f.Asserts) != 3 {
		t.Fatalf("want 3 asserts, got %d", len(f.Asserts))
	}
	wantModels := []model.Model{model.Traces, model.Failures, model.Traces}
	for i, want := range wantModels {
		if got := f.Asserts[i].Model; got != want {
			t.Errorf("assert %d: model %s, want %s", i, got, want)
		}
		if f.Asserts[i].Refines == nil {
			t.Errorf("assert %d: not parsed as a refinement", i)
		}
	}
	// The renderer keeps the pin, and only the pin: reparse must agree.
	if got, want := f.Asserts[1].String(), "assert q refines p in failures"; got != want {
		t.Errorf("pinned assert renders %q, want %q", got, want)
	}
	if got, want := f.Asserts[0].String(), "assert q refines p"; got != want {
		t.Errorf("unpinned assert renders %q, want %q", got, want)
	}
}

// TestParseBehaviouralForms covers the refusal-level assertion forms
// introduced with the failures model: deadlockfree and offers.
func TestParseBehaviouralForms(t *testing.T) {
	src := `
p = a!1 -> b!2 -> p
assert p sat deadlockfree
assert p sat offers a,b
`
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(f.Asserts) != 2 {
		t.Fatalf("want 2 asserts, got %d", len(f.Asserts))
	}
	if _, ok := f.Asserts[0].A.(assertion.DeadlockFree); !ok {
		t.Fatalf("assert 0 parsed as %T, want DeadlockFree", f.Asserts[0].A)
	}
	off, ok := f.Asserts[1].A.(assertion.Offers)
	if !ok {
		t.Fatalf("assert 1 parsed as %T, want Offers", f.Asserts[1].A)
	}
	if !reflect.DeepEqual(off.Chans, []string{"a", "b"}) {
		t.Fatalf("offers channels %v, want [a b]", off.Chans)
	}
	for i, want := range []string{"assert p sat deadlockfree", "assert p sat offers a,b"} {
		if got := f.Asserts[i].String(); got != want {
			t.Errorf("assert %d renders %q, want %q", i, got, want)
		}
	}
	// Reparse of the rendering must agree — behavioural forms round-trip.
	for _, d := range f.Asserts {
		f2, err := parser.Parse("p = a!1 -> b!2 -> p\n" + d.String())
		if err != nil {
			t.Fatalf("reparse of %q: %v", d.String(), err)
		}
		if !reflect.DeepEqual(f2.Asserts[0].A, d.A) {
			t.Errorf("round trip changed %q to %q", d, f2.Asserts[0])
		}
	}
}

// TestParseModelErrors pins the rejection paths: unknown model names,
// quantified behavioural asserts (refusal-level forms are top-level only),
// and behavioural forms nested under connectives.
func TestParseModelErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown model", "p = STOP\nq = STOP\nassert p refines q in nondet"},
		{"quantified behavioural", "p = STOP\nassert forall x in {0..1}. p sat deadlockfree"},
		{"behavioural under connective", "p = STOP\nassert p sat deadlockfree and a <= b"},
		{"offers without channels", "p = STOP\nassert p sat offers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := parser.Parse(tc.src); err == nil {
				t.Fatalf("expected a parse error for %q", tc.src)
			}
		})
	}
}
