// Package parser reads the paper's programming notation from text. A .csp
// file is a list of declarations:
//
//	set M = {0..3}                         -- named message sets
//	const v[1..3] = [5, 3, 2]              -- constant value arrays
//	copier = input?x:NAT -> wire!x -> copier
//	q[x:M] = wire!x -> ( wire?y:{ACK} -> sender
//	                   | wire?y:{NACK} -> q[x] )
//	net = copier || recopier               -- alphabetized parallel
//	sys = chan wire; net                   -- hiding
//	assert copier sat wire <= input        -- sat-claims to check
//	assert forall x in M. q[x] sat f(wire) <= x^input
//
// The grammar follows the paper: -> is right associative and binds tighter
// than |, which binds tighter than ||; chan L; P extends as far right as
// possible; -- starts a line comment.
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates token kinds.
type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tInt
	tArrow    // ->
	tBang     // !
	tQuery    // ?
	tColon    // :
	tSemi     // ;
	tComma    // ,
	tEquals   // =
	tBar      // |
	tIChoiceT // |~|
	tParallel // ||
	tLParen   // (
	tRParen   // )
	tLBrace   // {
	tRBrace   // }
	tLBrack   // [
	tRBrack   // ]
	tDotDot   // ..
	tDot      // .
	tPlus     // +
	tMinus    // -
	tStar     // *
	tSlash    // /
	tPercent  // %
	tHash     // #
	tCaret    // ^
	tCatOp    // ++
	tLe       // <=
	tLt       // <
	tGe       // >=
	tGt       // >
	tEqEq     // ==
	tNe       // !=
	tImplies  // =>
	tAmp      // &
	tUnion    // \/ (set union)
)

var kindNames = map[tokKind]string{
	tEOF: "end of input", tIdent: "identifier", tInt: "integer",
	tArrow: "'->'", tBang: "'!'", tQuery: "'?'", tColon: "':'", tSemi: "';'",
	tComma: "','", tEquals: "'='", tBar: "'|'", tParallel: "'||'",
	tLParen: "'('", tRParen: "')'", tLBrace: "'{'", tRBrace: "'}'",
	tLBrack: "'['", tRBrack: "']'", tDotDot: "'..'", tDot: "'.'",
	tPlus: "'+'", tMinus: "'-'", tStar: "'*'", tSlash: "'/'", tPercent: "'%'",
	tHash: "'#'", tCaret: "'^'", tCatOp: "'++'", tLe: "'<='", tLt: "'<'",
	tGe: "'>='", tGt: "'>'", tEqEq: "'=='", tNe: "'!='", tImplies: "'=>'",
	tAmp: "'&'", tUnion: "'\\/'",
}

func (k tokKind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// token is one lexeme with its source position.
type token struct {
	kind tokKind
	text string
	val  int64
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tIdent || t.kind == tInt {
		return fmt.Sprintf("%q", t.text)
	}
	return t.kind.String()
}

// lexer turns source text into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("%d:%d: %s", l.line, l.col, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for {
		c, ok := l.peekByte()
		if !ok {
			return
		}
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '-' && strings.HasPrefix(l.src[l.pos:], "--"):
			for {
				c, ok := l.peekByte()
				if !ok || c == '\n' {
					break
				}
				l.advance()
			}
		default:
			return
		}
	}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	mk := func(k tokKind, text string) token {
		return token{kind: k, text: text, line: line, col: col}
	}
	c, ok := l.peekByte()
	if !ok {
		return mk(tEOF, ""), nil
	}
	switch {
	case unicode.IsLetter(rune(c)) || c == '_':
		start := l.pos
		for {
			c, ok := l.peekByte()
			if !ok || !(unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_') {
				break
			}
			l.advance()
		}
		return mk(tIdent, l.src[start:l.pos]), nil
	case unicode.IsDigit(rune(c)):
		start := l.pos
		var v int64
		for {
			c, ok := l.peekByte()
			if !ok || !unicode.IsDigit(rune(c)) {
				break
			}
			v = v*10 + int64(c-'0')
			l.advance()
		}
		t := mk(tInt, l.src[start:l.pos])
		t.val = v
		return t, nil
	}
	if l.pos+2 < len(l.src) && l.src[l.pos:l.pos+3] == "|~|" {
		l.advance()
		l.advance()
		l.advance()
		return mk(tIChoiceT, "|~|"), nil
	}
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "->":
		l.advance()
		l.advance()
		return mk(tArrow, two), nil
	case "||":
		l.advance()
		l.advance()
		return mk(tParallel, two), nil
	case "..":
		l.advance()
		l.advance()
		return mk(tDotDot, two), nil
	case "++":
		l.advance()
		l.advance()
		return mk(tCatOp, two), nil
	case "<=":
		l.advance()
		l.advance()
		return mk(tLe, two), nil
	case ">=":
		l.advance()
		l.advance()
		return mk(tGe, two), nil
	case "==":
		l.advance()
		l.advance()
		return mk(tEqEq, two), nil
	case "!=":
		l.advance()
		l.advance()
		return mk(tNe, two), nil
	case "=>":
		l.advance()
		l.advance()
		return mk(tImplies, two), nil
	case "\\/":
		l.advance()
		l.advance()
		return mk(tUnion, two), nil
	}
	l.advance()
	switch c {
	case '!':
		return mk(tBang, "!"), nil
	case '?':
		return mk(tQuery, "?"), nil
	case ':':
		return mk(tColon, ":"), nil
	case ';':
		return mk(tSemi, ";"), nil
	case ',':
		return mk(tComma, ","), nil
	case '=':
		return mk(tEquals, "="), nil
	case '|':
		return mk(tBar, "|"), nil
	case '(':
		return mk(tLParen, "("), nil
	case ')':
		return mk(tRParen, ")"), nil
	case '{':
		return mk(tLBrace, "{"), nil
	case '}':
		return mk(tRBrace, "}"), nil
	case '[':
		return mk(tLBrack, "["), nil
	case ']':
		return mk(tRBrack, "]"), nil
	case '.':
		return mk(tDot, "."), nil
	case '+':
		return mk(tPlus, "+"), nil
	case '-':
		return mk(tMinus, "-"), nil
	case '*':
		return mk(tStar, "*"), nil
	case '/':
		return mk(tSlash, "/"), nil
	case '%':
		return mk(tPercent, "%"), nil
	case '#':
		return mk(tHash, "#"), nil
	case '^':
		return mk(tCaret, "^"), nil
	case '<':
		return mk(tLt, "<"), nil
	case '>':
		return mk(tGt, ">"), nil
	case '&':
		return mk(tAmp, "&"), nil
	default:
		return token{}, l.errf("unexpected character %q", c)
	}
}

// lexAll tokenises the whole source.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tEOF {
			return out, nil
		}
	}
}
