// Package gen generates random well-formed process modules for
// property-based testing: cross-validating the denotational and
// operational engines on arbitrary terms (the paper's consistency theorem,
// fuzzed), round-tripping the parser against the renderers, and probing
// the model checker. Generated terms are closed and guarded, so every
// engine terminates on them.
package gen

import (
	"fmt"
	"math/rand"

	"cspsat/internal/syntax"
)

// Config bounds the shape of generated processes.
type Config struct {
	// Channels to draw from. Default {"a","b","c"}.
	Channels []string
	// ValueWidth: message values are drawn from {0..ValueWidth-1}.
	// Default 2.
	ValueWidth int64
	// MaxDepth bounds the AST depth. Default 5.
	MaxDepth int
	// AllowPar enables parallel composition nodes.
	AllowPar bool
	// AllowHide enables hiding nodes. At most MaxHides hiding operators
	// are generated per term (default 1): each nesting level multiplies
	// the exploration budget a literal denotational evaluation needs, so
	// unbounded nesting makes cross-engine comparisons intractable rather
	// than more informative.
	AllowHide bool
	// MaxHides bounds hiding operators per generated term; 0 means 1.
	MaxHides int
	// Defs is how many auxiliary recursive definitions to generate.
	// Default 2.
	Defs int
}

func (c Config) channels() []string {
	if len(c.Channels) == 0 {
		return []string{"a", "b", "c"}
	}
	return c.Channels
}

func (c Config) valueWidth() int64 {
	if c.ValueWidth <= 0 {
		return 2
	}
	return c.ValueWidth
}

func (c Config) maxDepth() int {
	if c.MaxDepth <= 0 {
		return 5
	}
	return c.MaxDepth
}

func (c Config) defs() int {
	if c.Defs <= 0 {
		return 2
	}
	return c.Defs
}

func (c Config) maxHides() int {
	if c.MaxHides <= 0 {
		return 1
	}
	return c.MaxHides
}

// Module generates a random module together with a main process term to
// analyse. Definitions are guarded (every self-reference sits under at
// least one communication prefix), so unfolding always makes progress.
func Module(r *rand.Rand, cfg Config) (*syntax.Module, syntax.Proc) {
	g := &generator{r: r, cfg: cfg}
	m := syntax.NewModule()
	// Generate definitions bottom-up: def i may reference defs 0..i.
	for i := 0; i < cfg.defs(); i++ {
		name := fmt.Sprintf("p%d", i)
		g.names = append(g.names, name)
		// The body must be guarded: force a prefix at the root.
		body := g.prefix(cfg.maxDepth(), true)
		m.MustDefine(syntax.Def{Name: name, Body: body})
	}
	main := g.proc(cfg.maxDepth(), false)
	return m, main
}

type generator struct {
	r     *rand.Rand
	cfg   Config
	names []string
	hides int
}

func (g *generator) chanRef() syntax.ChanRef {
	cs := g.cfg.channels()
	return syntax.ChanRef{Name: cs[g.r.Intn(len(cs))]}
}

func (g *generator) valueExpr() syntax.Expr {
	return syntax.IntLit{Val: g.r.Int63n(g.cfg.valueWidth())}
}

func (g *generator) dom() syntax.SetExpr {
	return syntax.RangeSet{
		Lo: syntax.IntLit{Val: 0},
		Hi: syntax.IntLit{Val: g.cfg.valueWidth() - 1},
	}
}

// proc generates an arbitrary process; guarded controls whether references
// are allowed bare (they are only under a prefix).
func (g *generator) proc(depth int, guarded bool) syntax.Proc {
	if depth <= 0 {
		return g.leaf(guarded)
	}
	roll := g.r.Intn(10)
	switch {
	case roll < 4:
		return g.prefix(depth, guarded)
	case roll < 5:
		return syntax.Alt{L: g.proc(depth-1, guarded), R: g.proc(depth-1, guarded)}
	case roll < 6:
		// Internal choice: trace-identical to Alt (the trace engines must
		// agree on it), operationally a τ-split.
		return syntax.IChoice{L: g.proc(depth-1, guarded), R: g.proc(depth-1, guarded)}
	case roll < 7 && g.cfg.AllowPar:
		return syntax.Par{L: g.proc(depth-1, guarded), R: g.proc(depth-1, guarded)}
	case roll < 8 && g.cfg.AllowHide && g.hides < g.cfg.maxHides():
		g.hides++
		cs := g.cfg.channels()
		return syntax.Hiding{
			Channels: []syntax.ChanItem{{Name: cs[g.r.Intn(len(cs))]}},
			Body:     g.proc(depth-1, guarded),
		}
	default:
		return g.leaf(guarded)
	}
}

// prefix generates an output or input prefix whose continuation may use
// bare references (it is now guarded).
func (g *generator) prefix(depth int, _ bool) syntax.Proc {
	cont := g.proc(depth-1, true)
	if g.r.Intn(2) == 0 {
		return syntax.Output{Ch: g.chanRef(), Val: g.valueExpr(), Cont: cont}
	}
	x := fmt.Sprintf("x%d", g.r.Intn(3))
	// The bound variable is sometimes used as the next output's value,
	// exercising substitution paths.
	if g.r.Intn(2) == 0 && depth >= 2 {
		inner := syntax.Output{Ch: g.chanRef(), Val: syntax.Var{Name: x}, Cont: g.proc(depth-2, true)}
		return syntax.Input{Ch: g.chanRef(), Var: x, Dom: g.dom(), Cont: inner}
	}
	return syntax.Input{Ch: g.chanRef(), Var: x, Dom: g.dom(), Cont: cont}
}

func (g *generator) leaf(guarded bool) syntax.Proc {
	if guarded && len(g.names) > 0 && g.r.Intn(3) > 0 {
		return syntax.Ref{Name: g.names[g.r.Intn(len(g.names))]}
	}
	return syntax.Stop{}
}
