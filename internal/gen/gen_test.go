// Fuzz-style cross-validation tests built on the random generator: the
// repository's strongest evidence that the engines implement the same
// semantics (the paper's consistency theorem, on arbitrary terms rather
// than just the worked examples).
package gen_test

import (
	"math/rand"
	"reflect"
	"testing"

	"cspsat/internal/closure"
	"cspsat/internal/failures"
	"cspsat/internal/gen"
	"cspsat/internal/op"
	"cspsat/internal/parser"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
)

// TestOpAgreesWithDenotationalOnRandomTerms compares the operational and
// denotational trace sets on hundreds of random guarded terms, including
// parallel composition and hiding.
func TestOpAgreesWithDenotationalOnRandomTerms(t *testing.T) {
	r := rand.New(rand.NewSource(20260704))
	cfgs := []struct {
		cfg gen.Config
		// exact: without hiding the two engines must agree exactly
		// (generated values always lie within the sample). With hiding the
		// denotational engine's bounded slack makes it a sound
		// under-approximation: den ⊆ op, never more.
		exact bool
		// depth is the comparison window; hiding terms use a smaller one
		// because the literal denotational evaluation materialises the
		// pre-hiding trace set, whose size is exponential in window+slack.
		depth int
	}{
		{gen.Config{}, true, 4},                                              // sequential only
		{gen.Config{AllowPar: true}, true, 3},                                // with parallel
		{gen.Config{MaxDepth: 6, AllowPar: true}, true, 3},                   // deeper
		{gen.Config{AllowPar: true, AllowHide: true, MaxDepth: 4}, false, 2}, // full language
		{gen.Config{ValueWidth: 3, AllowHide: true, MaxDepth: 4}, false, 2},  // wider values
	}
	const perCfg = 60
	for ci, tc := range cfgs {
		depth := tc.depth
		for i := 0; i < perCfg; i++ {
			m, main := gen.Module(r, tc.cfg)
			env := sem.NewEnv(m, int(tc.cfg.ValueWidth))
			// Keep the hiding slack small: random terms can nest hiding
			// around wide parallel compositions, where the materialised
			// pre-hiding set grows combinatorially with the slack. A small
			// slack stays sound (den ⊆ op), which is what the
			// hiding-enabled configurations assert.
			d := sem.NewDenoter(depth)
			d.HideSlack = 3
			d.MaxBudget = depth + 6
			den, err := d.Denote(main, env)
			if err != nil {
				t.Fatalf("cfg %d case %d: denote(%s): %v", ci, i, main, err)
			}
			ops, err := op.Traces(main, env, depth)
			if err != nil {
				t.Fatalf("cfg %d case %d: op(%s): %v", ci, i, main, err)
			}
			if tc.exact && !den.Equal(ops) {
				t.Fatalf("cfg %d case %d: engines disagree on %s\n  module:\n%s\n  den-only: %v\n  op-only:  %v",
					ci, i, main, m, den.FirstNotIn(ops), ops.FirstNotIn(den))
			}
			if !den.SubsetOf(ops) {
				t.Fatalf("cfg %d case %d: denotational set not sound on %s\n  module:\n%s\n  den-only: %v",
					ci, i, main, m, den.FirstNotIn(ops))
			}
		}
	}
}

// TestParserRoundTripOnRandomModules renders random modules with the
// String() renderers and reparses them; the ASTs must survive unchanged.
func TestParserRoundTripOnRandomModules(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	const cases = 200
	for i := 0; i < cases; i++ {
		m, main := gen.Module(r, gen.Config{AllowPar: true, AllowHide: true})
		m.MustDefine(syntax.Def{Name: "zmain", Body: main})
		text := m.String()
		f, err := parser.Parse(text)
		if err != nil {
			t.Fatalf("case %d: reparse failed: %v\n%s", i, err, text)
		}
		for _, name := range m.Names() {
			want, _ := m.Lookup(name)
			got, ok := f.Module.Lookup(name)
			if !ok {
				t.Fatalf("case %d: reparse lost %q\n%s", i, name, text)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("case %d: %q changed:\n  before %s\n  after  %s\n  source:\n%s",
					i, name, want, got, text)
			}
		}
	}
}

// TestRuntimeTracesAreOperationalOnRandomNetworks replays concurrent-run
// traces of random parallel networks against the operational semantics.
func TestRuntimeTracesAreOperationalOnRandomNetworks(t *testing.T) {
	// The runtime needs statically decomposable networks; plain parallel
	// compositions of guarded sequential terms qualify.
	r := rand.New(rand.NewSource(7))
	const cases = 40
	for i := 0; i < cases; i++ {
		m, main := gen.Module(r, gen.Config{MaxDepth: 4})
		env := sem.NewEnv(m, 2)
		set, err := op.Traces(main, env, 3)
		if err != nil {
			t.Fatalf("case %d: op(%s): %v", i, main, err)
		}
		// Spot-check: every operational trace's prefixes are present
		// (prefix closure) and the explorer is deterministic.
		set2, err := op.Traces(main, env, 3)
		if err != nil || !set.Equal(set2) {
			t.Fatalf("case %d: non-deterministic enumeration on %s", i, main)
		}
	}
}

// TestFailuresConsistentWithTraces: on random terms, the failures model's
// trace set must coincide with the operational trace set, and every
// acceptance must be a subset of the events actually possible after its
// trace — the structural sanity of the §4-extension model, fuzzed.
func TestFailuresConsistentWithTraces(t *testing.T) {
	r := rand.New(rand.NewSource(2026))
	const cases = 80
	const depth = 3
	for i := 0; i < cases; i++ {
		m, main := gen.Module(r, gen.Config{AllowPar: true, AllowHide: true, MaxDepth: 4})
		env := sem.NewEnv(m, 2)
		fm, err := failures.Compute(main, env, depth)
		if err != nil {
			t.Fatalf("case %d: failures(%s): %v", i, main, err)
		}
		ops, err := op.Traces(main, env, depth)
		if err != nil {
			t.Fatalf("case %d: op(%s): %v", i, main, err)
		}
		// Same traces.
		fset := closure.FromTraces(fm.Traces())
		if !fset.Equal(ops) {
			t.Fatalf("case %d: failures traces differ from op traces on %s\n f-only: %v\n op-only: %v",
				i, main, fset.FirstNotIn(ops), ops.FirstNotIn(fset))
		}
		// Acceptances only offer possible events.
		for _, tr := range fm.Traces() {
			if len(tr) >= depth {
				continue
			}
			accs, _ := fm.Acceptances(tr)
			for _, acc := range accs {
				for _, ev := range acc {
					if !ops.Contains(tr.Append(ev)) {
						t.Fatalf("case %d: acceptance offers impossible %s after %s on %s",
							i, ev, tr, main)
					}
				}
			}
		}
	}
}
