package gen_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"cspsat/internal/gen"
	"cspsat/pkg/csp"
)

// TestWideMatchesCommittedSpecs pins the generators to the committed spec
// files at their widths: the generated width-3 philosophers and width-4
// token ring must denote the very same canonical trace sets (pointer
// identity via Same) as specs/philosophers.csp and specs/tokenring.csp.
func TestWideMatchesCommittedSpecs(t *testing.T) {
	cases := []struct {
		file  string
		src   string
		roots []string
		depth int
	}{
		{"philosophers.csp", gen.Philosophers(3), []string{"deadlocking", "safe"}, 5},
		{"tokenring.csp", gen.TokenRing(4), []string{"sys"}, 6},
	}
	for _, c := range cases {
		data, err := os.ReadFile(filepath.Join("..", "..", "specs", c.file))
		if err != nil {
			t.Fatal(err)
		}
		committed, err := csp.Load(context.Background(), string(data), csp.Options{NatWidth: 2})
		if err != nil {
			t.Fatalf("loading %s: %v", c.file, err)
		}
		generated, err := csp.Load(context.Background(), c.src, csp.Options{NatWidth: 2})
		if err != nil {
			t.Fatalf("loading generated %s: %v", c.file, err)
		}
		for _, root := range c.roots {
			cp, err := committed.Proc(root)
			if err != nil {
				t.Fatal(err)
			}
			gp, err := generated.Proc(root)
			if err != nil {
				t.Fatalf("generated %s lacks %s: %v", c.file, root, err)
			}
			want, err := committed.Traces(context.Background(), cp, csp.EngineOptions{Depth: c.depth})
			if err != nil {
				t.Fatal(err)
			}
			got, err := generated.Traces(context.Background(), gp, csp.EngineOptions{Depth: c.depth})
			if err != nil {
				t.Fatal(err)
			}
			if !want.Set.Same(got.Set) {
				t.Errorf("%s/%s: generated spec denotes a different set (Equal=%v)",
					c.file, root, want.Set.Equal(got.Set))
			}
		}
	}
}

// TestWideScalesUp checks the generators stay loadable and analysable as
// the width grows, and that every width keeps its asserts true. The
// philosophers table is capped at width 4 here: the hidden take/put
// chatter of the interleaving product grows combinatorially, and width 5+
// belongs to benchmarks, not the test suite.
func TestWideScalesUp(t *testing.T) {
	for _, n := range []int{2, 4} {
		for name, src := range map[string]string{"philosophers": gen.Philosophers(n), "tokenring": gen.TokenRing(n + 4)} {
			mod, err := csp.Load(context.Background(), src, csp.Options{NatWidth: 2})
			if err != nil {
				t.Fatalf("%s width %d: %v", name, n, err)
			}
			results, err := mod.CheckAll(context.Background(), csp.CheckOptions{Depth: 3})
			if err != nil {
				t.Fatalf("%s width %d: %v", name, n, err)
			}
			for _, r := range results {
				if !r.OK() {
					t.Errorf("%s width %d: assert failed: %s", name, n, r.Decl)
				}
			}
		}
	}
}
