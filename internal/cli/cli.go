// Package cli carries the flag plumbing and spec loading every cspsat
// command shares, so the binaries stay thin wrappers over the pkg/csp
// facade. It registers the three uniform flags:
//
//	-timeout D   cancel the run's context after D (0 = no limit)
//	-workers N   fan the parallel engines across N goroutines
//	-stats       print closure cache/shard statistics after the run
//
// plus the usage text, argument-count checking (exit 2, matching the
// documented contract of every tool), and the "tool: error" reporting
// convention.
package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"cspsat/pkg/csp"
)

// App is one command-line tool's shared state.
type App struct {
	// Tool is the binary name used as the error-message prefix.
	Tool string

	// Timeout, Workers, Stats are the uniform flags, populated by Parse.
	Timeout time.Duration
	Workers int
	Stats   bool

	// Nat is the -nat flag when the tool registered it via NatFlag.
	Nat int
}

// New registers the uniform flags and the usage function. Call before any
// tool-specific flag definitions.
func New(tool, usage string) *App {
	a := &App{Tool: tool}
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s\n", usage)
		flag.PrintDefaults()
	}
	flag.DurationVar(&a.Timeout, "timeout", 0, "cancel the run after this duration, e.g. 30s (0 = no limit)")
	flag.IntVar(&a.Workers, "workers", 1, "goroutines for the parallel engines (values <= 1 run serially)")
	flag.BoolVar(&a.Stats, "stats", false, "print closure cache/shard statistics to stderr after the run")
	return a
}

// NatFlag registers the -nat flag with the tool's default width.
func (a *App) NatFlag(def int) {
	flag.IntVar(&a.Nat, "nat", def, "enumeration width of the NAT domain")
}

// Parse parses the command line and enforces the positional argument
// count, exiting 2 on mismatch. It returns the positional arguments.
func (a *App) Parse(nargs int) []string {
	flag.Parse()
	if flag.NArg() != nargs {
		flag.Usage()
		os.Exit(2)
	}
	return flag.Args()
}

// Context returns the run context honouring -timeout. The caller should
// defer cancel.
func (a *App) Context() (context.Context, context.CancelFunc) {
	if a.Timeout > 0 {
		return context.WithTimeout(context.Background(), a.Timeout)
	}
	return context.WithCancel(context.Background())
}

// Fatal reports a load/usage-class error ("tool: err") and exits 2.
func (a *App) Fatal(err error) {
	fmt.Fprintln(os.Stderr, a.Tool+":", err)
	os.Exit(2)
}

// Fail reports a run-class error ("tool: err") and exits 1.
func (a *App) Fail(err error) {
	fmt.Fprintln(os.Stderr, a.Tool+":", err)
	os.Exit(1)
}

// Load parses the .csp file through the facade, exiting 2 on failure.
func (a *App) Load(ctx context.Context, path string) *csp.Module {
	m, err := csp.LoadFile(ctx, path, csp.Options{NatWidth: a.Nat})
	if err != nil {
		a.Fatal(err)
	}
	return m
}

// Proc resolves a process name on the module, exiting 2 on failure.
func (a *App) Proc(m *csp.Module, name string) csp.Proc {
	p, err := m.Proc(name)
	if err != nil {
		a.Fatal(err)
	}
	return p
}

// Finish emits the -stats report to stderr when requested; call once on
// every exit path that completed a run.
func (a *App) Finish() {
	if a.Stats {
		WriteStats(os.Stderr)
	}
}

// WriteStats reports the closure layer's interning and memoisation
// effectiveness over the whole run: canonical trie nodes interned across
// the lock-striped shards, and how often the operator memo tables answered
// instead of recomputing.
func WriteStats(w io.Writer) {
	s := csp.Stats()
	fmt.Fprintf(w, "\nclosure caches: %d interned nodes across %d shards (%d hits / %d misses, %d evicted in %d rotations)\n",
		s.InternedNodes, s.Shards, s.InternHits, s.InternMisses, s.Evicted, s.Rotations)
	total := s.MemoHits + s.MemoMisses
	rate := 0.0
	if total > 0 {
		rate = float64(s.MemoHits) / float64(total) * 100
	}
	fmt.Fprintf(w, "operator memos: %d hits / %d misses (%.1f%% hit rate)\n", s.MemoHits, s.MemoMisses, rate)
	ops := make([]string, 0, len(s.Ops))
	for name := range s.Ops {
		ops = append(ops, name)
	}
	sort.Strings(ops)
	for _, name := range ops {
		o := s.Ops[name]
		fmt.Fprintf(w, "  %-10s %8d hits %8d misses\n", name, o.Hits, o.Misses)
	}
}
