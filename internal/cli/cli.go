// Package cli carries the flag plumbing and spec loading every cspsat
// command shares, so the binaries stay thin wrappers over the pkg/csp
// facade. It registers the three uniform flags:
//
//	-timeout D   cancel the run's context after D (0 = no limit)
//	-workers N   fan the parallel engines across N goroutines, or "auto"
//	             to size pools to the machine with the adaptive cutover
//	-stats       print closure cache/shard statistics after the run
//
// and offers the two uniform verification selectors for tools that opt in
// (ModelFlag / EngineFlag):
//
//	-model M     semantic model for verdicts: traces (default) or failures
//	-engine E    trace engine: op (default), denote, or runtime
//
// Older per-binary spellings (csptrace -den, cspcheck -deadlocks) keep
// working but are deprecated in favour of this pair.
//
// plus the usage text, argument-count checking (exit 2, matching the
// documented contract of every tool), and the "tool: error" reporting
// convention. App.Context additionally wires SIGINT/SIGTERM into the run
// context with distinct cancellation causes, so every binary cancels
// gracefully on Ctrl-C and its error message says whether a run died to
// the -timeout deadline or to an interrupt. cmd/cspserved reuses the same
// flag set and SignalContext for its drain-on-SIGTERM lifecycle.
package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"syscall"
	"time"

	"cspsat/internal/csperr"
	"cspsat/pkg/csp"
)

// App is one command-line tool's shared state.
type App struct {
	// Tool is the binary name used as the error-message prefix.
	Tool string

	// Timeout, Workers, Stats are the uniform flags, populated by Parse.
	Timeout time.Duration
	Workers int
	Stats   bool

	// Nat is the -nat flag when the tool registered it via NatFlag.
	Nat int

	// ModelName is the -model flag when the tool registered it via
	// ModelFlag; resolve it with Model.
	ModelName string

	// EngineName is the -engine flag when the tool registered it via
	// EngineFlag; resolve it with Engine.
	EngineName string

	// StoreDir is the -store flag when the tool registered it via
	// StoreFlag: the artifact store directory shared with cspserved.
	StoreDir string

	// statsDone makes Finish idempotent, so the failure exit paths can
	// emit the -stats report unconditionally without double-printing when
	// a tool already called Finish before deciding to exit non-zero.
	statsDone bool
}

// New registers the uniform flags and the usage function. Call before any
// tool-specific flag definitions.
func New(tool, usage string) *App {
	a := &App{Tool: tool}
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s\n", usage)
		flag.PrintDefaults()
	}
	flag.DurationVar(&a.Timeout, "timeout", 0, "cancel the run after this duration, e.g. 30s (0 = no limit)")
	a.Workers = 1
	flag.Var(workersValue{&a.Workers}, "workers",
		"goroutines for the parallel engines: a count (<= 1 runs serially) or auto (size pools to the machine; small stages still run inline)")
	flag.BoolVar(&a.Stats, "stats", false, "print closure cache/shard statistics to stderr after the run")
	return a
}

// workersValue is the -workers flag: an integer worker count, or the
// spelling "auto" for csp.WorkersAuto (machine-sized pools behind the
// adaptive serial/parallel cutover).
type workersValue struct{ v *int }

func (w workersValue) String() string {
	if w.v == nil {
		return "1"
	}
	if *w.v == csp.WorkersAuto {
		return "auto"
	}
	return strconv.Itoa(*w.v)
}

func (w workersValue) Set(s string) error {
	if s == "auto" {
		*w.v = csp.WorkersAuto
		return nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return fmt.Errorf("want a worker count or \"auto\", got %q", s)
	}
	*w.v = n
	return nil
}

// NatFlag registers the -nat flag with the tool's default width.
func (a *App) NatFlag(def int) {
	flag.IntVar(&a.Nat, "nat", def, "enumeration width of the NAT domain")
}

// ModelFlag registers the uniform -model flag: which semantic model
// verdicts are computed under. Every verification tool takes the same
// spelling, paired with -engine where the tool also picks how trace sets
// are computed.
func (a *App) ModelFlag() {
	flag.StringVar(&a.ModelName, "model", "traces",
		"semantic model for verdicts: traces (the paper's §3 model) or failures (§4 refusal-aware)")
}

// Model resolves the -model flag, exiting 2 on an unknown name.
func (a *App) Model() csp.Model {
	mdl, err := csp.ParseModel(a.ModelName)
	if err != nil {
		a.Fatal(err)
	}
	return mdl
}

// EngineFlag registers the uniform -engine flag: which engine computes
// trace sets. def is the tool's default engine name.
func (a *App) EngineFlag(def string) {
	flag.StringVar(&a.EngineName, "engine", def,
		"trace engine: op (operational explorer), denote (§3.3 approximation chain), or runtime (goroutine walk)")
}

// Engine resolves the -engine flag, exiting 2 on an unknown name.
func (a *App) Engine() csp.Engine {
	e, err := csp.ParseEngine(a.EngineName)
	if err != nil {
		a.Fatal(err)
	}
	return e
}

// StoreFlag registers the -store flag. Tools that register it load specs
// through a store-backed module cache: a spec already persisted (by a
// previous run or by cspserved) skips parse and denotation, and results
// this run computes are persisted back for the next reader.
func (a *App) StoreFlag() {
	flag.StringVar(&a.StoreDir, "store", "", "artifact store directory shared with cspserved (empty = no persistence)")
}

// Parse parses the command line and enforces the positional argument
// count, exiting 2 on mismatch. It returns the positional arguments.
func (a *App) Parse(nargs int) []string {
	flag.Parse()
	if flag.NArg() != nargs {
		flag.Usage()
		os.Exit(2)
	}
	return flag.Args()
}

// Context returns the run context honouring -timeout and the process
// signals: Ctrl-C (SIGINT) and SIGTERM cancel it, so engines unwind
// promptly through their usual cancellation paths (interned shards stay
// valid — see csperr.ErrCanceled) instead of the process dying mid-run.
// The caller should defer cancel.
//
// The two ways the context can die carry distinct causes, so the error an
// engine returns says why the run stopped: a -timeout expiry wraps
// csperr.ErrDeadline, a signal wraps csperr.ErrInterrupted, and both still
// wrap csperr.ErrCanceled for coarse errors.Is dispatch.
func (a *App) Context() (context.Context, context.CancelFunc) {
	return SignalContext(context.Background(), a.Timeout)
}

// SignalContext builds a context canceled by SIGINT/SIGTERM (cause wraps
// csperr.ErrInterrupted, naming the signal) and, when timeout > 0, by a
// deadline (cause wraps csperr.ErrDeadline, naming the budget). A second
// signal while the first is still draining kills the process hard with
// exit status 130, so a wedged engine can always be interrupted twice.
func SignalContext(parent context.Context, timeout time.Duration) (context.Context, context.CancelFunc) {
	base := parent
	cancelTimeout := context.CancelFunc(func() {})
	if timeout > 0 {
		base, cancelTimeout = context.WithTimeoutCause(base, timeout,
			fmt.Errorf("%w (-timeout %v)", csperr.ErrDeadline, timeout))
	}
	ctx, cancel := context.WithCancelCause(base)
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		select {
		case sig := <-ch:
			cancel(fmt.Errorf("%w (%v)", csperr.ErrInterrupted, sig))
			<-ch // a second signal: the user means it
			os.Exit(130)
		case <-ctx.Done():
		}
	}()
	return ctx, func() {
		signal.Stop(ch)
		cancel(nil)
		cancelTimeout()
	}
}

// Fatal reports a load/usage-class error ("tool: err") and exits 2. The
// -stats report, when requested, is emitted first: failing runs are
// exactly the ones whose cache behaviour gets inspected.
func (a *App) Fatal(err error) {
	fmt.Fprintln(os.Stderr, a.Tool+":", err)
	a.Finish()
	os.Exit(2)
}

// Fail reports a run-class error ("tool: err") and exits 1, emitting the
// -stats report like every other exit path.
func (a *App) Fail(err error) {
	fmt.Fprintln(os.Stderr, a.Tool+":", err)
	a.Finish()
	os.Exit(1)
}

// Load parses the .csp file through the facade, exiting 2 on failure.
// With -store set (via StoreFlag) the load goes through a store-backed
// module cache instead: a persisted artifact for the same source skips
// parse+denote, and results the tool stores on the module afterwards are
// persisted for cspserved and later runs. Store trouble is reported and
// degrades to a plain load — persistence is never fatal.
func (a *App) Load(ctx context.Context, path string) *csp.Module {
	opts := csp.Options{NatWidth: a.Nat}
	if a.StoreDir != "" {
		src, err := os.ReadFile(path)
		if err != nil {
			a.Fatal(err)
		}
		if st, err := csp.OpenStore(a.StoreDir); err != nil {
			fmt.Fprintf(os.Stderr, "%s: opening store %s: %v (continuing without persistence)\n", a.Tool, a.StoreDir, err)
		} else {
			cache := csp.NewModuleCache(0)
			cache.SetStore(st, func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, a.Tool+": "+format+"\n", args...)
			})
			m, _, _, err := cache.Load(ctx, string(src), opts)
			if err != nil {
				a.Fatal(fmt.Errorf("%s: %w", path, err))
			}
			return m
		}
	}
	m, err := csp.LoadFile(ctx, path, opts)
	if err != nil {
		a.Fatal(err)
	}
	return m
}

// Proc resolves a process name on the module, exiting 2 on failure.
func (a *App) Proc(m *csp.Module, name string) csp.Proc {
	p, err := m.Proc(name)
	if err != nil {
		a.Fatal(err)
	}
	return p
}

// Finish emits the -stats report to stderr when requested. It is
// idempotent, and Fail/Fatal call it themselves, so every exit path —
// success, check failure, load error — carries the report.
func (a *App) Finish() {
	if a.Stats && !a.statsDone {
		a.statsDone = true
		WriteStats(os.Stderr)
	}
}

// WriteStats reports the closure layer's interning and memoisation
// effectiveness over the whole run: canonical trie nodes interned across
// the lock-striped shards, and how often the operator memo tables answered
// instead of recomputing.
func WriteStats(w io.Writer) {
	s := csp.Stats()
	fmt.Fprintf(w, "\nclosure caches: %d interned nodes across %d shards (%d hits / %d misses, %d evicted in %d rotations)\n",
		s.InternedNodes, s.Shards, s.InternHits, s.InternMisses, s.Evicted, s.Rotations)
	total := s.MemoHits + s.MemoMisses
	rate := 0.0
	if total > 0 {
		rate = float64(s.MemoHits) / float64(total) * 100
	}
	fmt.Fprintf(w, "operator memos: %d hits / %d misses (%.1f%% hit rate)\n", s.MemoHits, s.MemoMisses, rate)
	ops := make([]string, 0, len(s.Ops))
	for name := range s.Ops {
		ops = append(ops, name)
	}
	sort.Strings(ops)
	for _, name := range ops {
		o := s.Ops[name]
		fmt.Fprintf(w, "  %-10s %8d hits %8d misses\n", name, o.Hits, o.Misses)
	}
	fmt.Fprintf(w, "symbol tables: %d chans, %d events, %d chan-sets, %d event-alphabets (append-only)\n",
		s.Symbols.Chans, s.Symbols.Events, s.Symbols.ChanSets, s.Symbols.EventSets)
}
