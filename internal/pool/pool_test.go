package pool

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"cspsat/internal/csperr"
)

// TestRunSemanticsProperty drives Run over randomized (workers, n)
// configurations and checks the contract both paths share: every item
// 0..n-1 executes exactly once, no item executes twice, and the inline
// and pooled schedules process the same item set.
func TestRunSemanticsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(100)
		workers := r.Intn(16) - 1 // includes WorkersAuto and 0
		counts := make([]atomic.Int32, n+1)
		err := Run(context.Background(), workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("trial %d (workers=%d n=%d): %v", trial, workers, n, err)
		}
		for i := 0; i < n; i++ {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("trial %d (workers=%d n=%d): item %d ran %d times", trial, workers, n, i, got)
			}
		}
	}
}

// TestRunWorkersExceedN pins the workers>n clamp: no goroutine should ever
// claim a nonexistent item, and every item still runs once.
func TestRunWorkersExceedN(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5} {
		var ran atomic.Int32
		err := Run(context.Background(), 64, n, func(i int) error {
			if i < 0 || i >= n {
				t.Errorf("n=%d: claimed out-of-range item %d", n, i)
			}
			ran.Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if int(ran.Load()) != n {
			t.Fatalf("n=%d: ran %d items", n, ran.Load())
		}
	}
}

// TestRunZeroItems: n=0 must return nil without invoking f, under any
// worker count.
func TestRunZeroItems(t *testing.T) {
	for _, w := range []int{WorkersAuto, 0, 1, 8} {
		if err := Run(context.Background(), w, 0, func(int) error {
			t.Fatal("f invoked with n=0")
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
	}
}

// TestRunErrorShortCircuitSerial pins the inline path's ordering contract:
// the first failing index is returned and no later item runs.
func TestRunErrorShortCircuitSerial(t *testing.T) {
	boom := errors.New("boom")
	var last atomic.Int32
	last.Store(-1)
	err := Run(context.Background(), 1, 100, func(i int) error {
		last.Store(int32(i))
		if i == 7 {
			return fmt.Errorf("item %d: %w", i, boom)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if last.Load() != 7 {
		t.Fatalf("serial path ran past the failing item: last=%d", last.Load())
	}
}

// TestRunErrorShortCircuitParallel checks the pooled path stops claiming
// promptly after an error: some prefix of items may run concurrently with
// the failure, but the count of items executed after the error is
// recorded must be bounded by the in-flight chunks, not the whole range.
func TestRunErrorShortCircuitParallel(t *testing.T) {
	boom := errors.New("boom")
	const n = 10000
	var after atomic.Int32
	var failed atomic.Bool
	err := Run(context.Background(), 4, n, func(i int) error {
		if failed.Load() {
			after.Add(1)
		}
		if i == 10 {
			failed.Store(true)
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	// 4 workers × one chunk each of n/(4·4) items is the worst case in
	// flight when the stop flag flips; anything near n means the flag was
	// ignored.
	if after.Load() > n/2 {
		t.Fatalf("%d items ran after the error — stop flag not honored", after.Load())
	}
}

// TestRunCancellationMidDrain cancels the context while items are
// draining and checks Run returns an ErrCanceled-wrapped error without
// running the full range.
func TestRunCancellationMidDrain(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		err := Run(ctx, workers, 100000, func(i int) error {
			if ran.Add(1) == 50 {
				cancel()
			}
			time.Sleep(10 * time.Microsecond)
			return nil
		})
		cancel()
		if !errors.Is(err, csperr.ErrCanceled) {
			t.Fatalf("workers=%d: want ErrCanceled, got %v", workers, err)
		}
		if ran.Load() == 100000 {
			t.Fatalf("workers=%d: cancellation did not stop the drain", workers)
		}
	}
}

// TestRunPanicRecovery is the regression test for the wedged-pool bug: a
// panicking item must surface as an ErrPanic-wrapped error on both the
// inline and pooled paths, with every sibling worker unwound (Run
// returns) instead of leaking claim loops.
func TestRunPanicRecovery(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			before := runtime.NumGoroutine()
			err := Run(context.Background(), workers, 1000, func(i int) error {
				if i == 13 {
					panic("engine stage exploded")
				}
				return nil
			})
			if !errors.Is(err, ErrPanic) {
				t.Fatalf("want ErrPanic, got %v", err)
			}
			// The pool must have fully drained: give the scheduler a
			// moment, then check no worker goroutines leaked.
			deadline := time.Now().Add(2 * time.Second)
			for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if g := runtime.NumGoroutine(); g > before {
				t.Fatalf("goroutines leaked after panic: %d > %d", g, before)
			}
		})
	}
}

// TestRunPanicValuePreserved: the panic value and a stack trace ride in
// the error text for diagnosis.
func TestRunPanicValuePreserved(t *testing.T) {
	err := Run(context.Background(), 2, 10, func(i int) error {
		panic(fmt.Sprintf("item-%d-panicked", i))
	})
	if err == nil || !errors.Is(err, ErrPanic) {
		t.Fatalf("want ErrPanic, got %v", err)
	}
	if msg := err.Error(); !containsAll(msg, "-panicked", "pool.") {
		t.Fatalf("panic value/stack missing from error: %q", msg)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// TestResolve pins the WorkersAuto mapping.
func TestResolve(t *testing.T) {
	if got := Resolve(WorkersAuto); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(WorkersAuto) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	for _, w := range []int{0, 1, 7} {
		if got := Resolve(w); got != w {
			t.Fatalf("Resolve(%d) = %d", w, got)
		}
	}
}

// TestAdaptive pins the cutover: below it the stage runs inline (1), at
// or above it the requested count survives, cutover 1 forces parallel,
// and cutover ≤ 0 selects the default.
func TestAdaptive(t *testing.T) {
	cases := []struct {
		workers, n, cutover, want int
	}{
		{8, DefaultSerialCutover - 1, 0, 1},
		{8, DefaultSerialCutover, 0, 8},
		{8, 3, 1, 8},   // forced parallel
		{8, 100, 0, 8}, // big stage keeps its workers
		{1, 100, 0, 1},
		{8, 5, 6, 1},
		{8, 6, 6, 8},
	}
	for _, c := range cases {
		if got := Adaptive(c.workers, c.n, c.cutover); got != c.want {
			t.Fatalf("Adaptive(%d,%d,%d) = %d, want %d", c.workers, c.n, c.cutover, got, c.want)
		}
	}
	if got := Adaptive(WorkersAuto, 1000, 0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Adaptive(auto) = %d, want GOMAXPROCS", got)
	}
}
