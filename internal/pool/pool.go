// Package pool is the shared worker-pool primitive of the parallel
// engines: run n independent work items over w goroutines, stop early on
// the first error or on context cancellation, and report cancellation as
// csperr.ErrCanceled. All parallel stages in op, sem, proof, and core are
// built from Run so they share one cancellation and error discipline.
package pool

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"cspsat/internal/csperr"
)

// Run executes f(0..n-1) across up to workers goroutines and waits for
// completion. It returns the first error any item produced, or a
// csperr.ErrCanceled-wrapped error when ctx was canceled before all items
// finished. With workers ≤ 1 (or n ≤ 1) it runs inline on the calling
// goroutine, preserving serial behavior exactly.
//
// Items are claimed from an atomic counter, so ordering across workers is
// arbitrary; callers that need deterministic output index into
// preallocated result slices by item index.
func Run(ctx context.Context, workers, n int, f func(int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := Canceled(ctx); err != nil {
				return err
			}
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		stop     atomic.Bool
	)
	record := func(err error) {
		errOnce.Do(func() { firstErr = err })
		stop.Store(true)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if err := Canceled(ctx); err != nil {
					record(err)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := f(i); err != nil {
					record(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// Canceled returns a csperr.ErrCanceled-wrapped error when ctx is done,
// nil otherwise. Engines call it at loop heads so serial paths honor
// deadlines too.
//
// When the context carries a cancellation cause (context.Cause) beyond the
// generic Canceled/DeadlineExceeded, the cause is wrapped too, so callers
// can distinguish a deadline expiry (csperr.ErrDeadline) from an external
// interrupt (csperr.ErrInterrupted) with errors.Is while still matching
// the coarse csperr.ErrCanceled.
func Canceled(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	err := ctx.Err()
	if err == nil {
		return nil
	}
	if cause := context.Cause(ctx); cause != nil && !errors.Is(err, cause) {
		return fmt.Errorf("%w: %w", csperr.ErrCanceled, cause)
	}
	return fmt.Errorf("%w: %v", csperr.ErrCanceled, err)
}
