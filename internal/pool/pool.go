// Package pool is the shared worker-pool primitive of the parallel
// engines: run n independent work items over w goroutines, stop early on
// the first error or on context cancellation, and report cancellation as
// csperr.ErrCanceled. All parallel stages in op, sem, proof, and core are
// built from Run so they share one cancellation and error discipline —
// and one cost model: the adaptive serial/parallel cutover (Adaptive)
// routes stages too small to amortise goroutine spawn through the inline
// path, so a large Workers setting never taxes a tiny workload.
package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"cspsat/internal/csperr"
)

// WorkersAuto is the sentinel worker count meaning "size the pool to the
// machine": Resolve maps it to runtime.GOMAXPROCS(0). Engines combine it
// with Adaptive, so auto parallelism on a tiny workload still runs inline.
// pkg/csp re-exports the same value for options structs and the CLI's
// -workers auto spelling.
const WorkersAuto = -1

// DefaultSerialCutover is the stage size below which Adaptive routes work
// through the inline path regardless of the requested worker count. The
// value is measured, not guessed: on the BENCH_2026-08-05 regression
// workloads the per-stage cost of spawning workers plus draining the
// barrier is ~15–60µs, which items cheaper than ~1µs each cannot repay
// until the stage holds a few dozen of them; see DESIGN.md §3.7 for the
// measurement matrix. Stages at or above the cutover keep the requested
// parallelism.
const DefaultSerialCutover = 24

// chunkTarget is the number of claim batches a stage is split into:
// claiming chunks of n/chunkTarget items off the atomic counter replaces
// per-item claims, cutting counter contention by the chunk size while
// leaving enough batches to balance uneven item costs across workers.
// The batch count is deliberately independent of the worker count (it
// only rises past chunkTarget when 2·workers exceeds it, to keep at
// least two batches per worker): if batches scaled with workers, every
// extra worker would add scheduler hand-offs to an otherwise unchanged
// stage, and on a machine with fewer cores than workers that churn is
// pure overhead — it was the residual Workers=8-vs-4 slope in the
// BENCH_2026-08-05 regression after the cutover landed.
const chunkTarget = 16

// Resolve maps a workers setting to a concrete pool size: WorkersAuto
// (any negative value) becomes runtime.GOMAXPROCS(0); everything else is
// returned unchanged. Engines call it once at entry so the rest of their
// scheduling logic sees only concrete counts.
func Resolve(workers int) int {
	if workers < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Adaptive is the serial/parallel cutover: it returns the worker count a
// stage of n items should actually use. Below the cutover it returns 1,
// selecting Run's inline path — exact serial semantics, zero goroutines —
// so an 8-worker engine costs the same as a 1-worker one on a small
// frontier or equation system. At or above the cutover the requested
// count is kept (Run itself clamps to n).
//
// cutover ≤ 0 means DefaultSerialCutover; to force the parallel path for
// any n (differential tests pin serial/parallel equivalence this way),
// pass cutover 1. Negative workers resolve via Resolve first.
func Adaptive(workers, n, cutover int) int {
	workers = Resolve(workers)
	if cutover <= 0 {
		cutover = DefaultSerialCutover
	}
	if n < cutover {
		return 1
	}
	return workers
}

// ErrPanic marks a work item that panicked. Run recovers the panic on
// both the inline and the pooled path and returns it as an error wrapping
// this sentinel (with the panic value and stack in the message), so a
// panicking engine stage unwinds through the ordinary error path — the
// pool drains, sibling workers stop, and a resident host's request
// goroutine gets an error instead of a crashed process or a wedged claim
// loop.
var ErrPanic = errors.New("csp: worker panicked")

// call invokes f(i), converting a panic into an ErrPanic-wrapped error.
func call(f func(int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: item %d: %v\n%s", ErrPanic, i, r, debug.Stack())
		}
	}()
	return f(i)
}

// Run executes f(0..n-1) across up to workers goroutines and waits for
// completion. It returns the first error any item produced, or a
// csperr.ErrCanceled-wrapped error when ctx was canceled before all items
// finished. With workers ≤ 1 (or n ≤ 1) it runs inline on the calling
// goroutine, preserving serial behavior exactly; negative workers
// (WorkersAuto) size the pool to the machine. A panicking f is recovered
// and reported as an ErrPanic-wrapped error on either path.
//
// Items are claimed from an atomic counter in chunks of roughly n/16
// (n/(2·workers) when that is smaller), so ordering across workers is
// arbitrary; callers that need deterministic output index into
// preallocated result slices by item index.
func Run(ctx context.Context, workers, n int, f func(int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := Canceled(ctx); err != nil {
				return err
			}
			if err := call(f, i); err != nil {
				return err
			}
		}
		return nil
	}
	batches := chunkTarget
	if 2*workers > batches {
		batches = 2 * workers
	}
	chunk := n / batches
	if chunk < 1 {
		chunk = 1
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		stop     atomic.Bool
	)
	record := func(err error) {
		errOnce.Do(func() { firstErr = err })
		stop.Store(true)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if err := Canceled(ctx); err != nil {
					record(err)
					return
				}
				end := int(next.Add(int64(chunk)))
				start := end - chunk
				if start >= n {
					return
				}
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					if stop.Load() {
						return
					}
					if err := call(f, i); err != nil {
						record(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// Canceled returns a csperr.ErrCanceled-wrapped error when ctx is done,
// nil otherwise. Engines call it at loop heads so serial paths honor
// deadlines too.
//
// When the context carries a cancellation cause (context.Cause) beyond the
// generic Canceled/DeadlineExceeded, the cause is wrapped too, so callers
// can distinguish a deadline expiry (csperr.ErrDeadline) from an external
// interrupt (csperr.ErrInterrupted) with errors.Is while still matching
// the coarse csperr.ErrCanceled.
func Canceled(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	err := ctx.Err()
	if err == nil {
		return nil
	}
	if cause := context.Cause(ctx); cause != nil && !errors.Is(err, cause) {
		return fmt.Errorf("%w: %w", csperr.ErrCanceled, cause)
	}
	return fmt.Errorf("%w: %v", csperr.ErrCanceled, err)
}
