package repl_test

import (
	"strings"
	"testing"

	"cspsat/internal/paper"
	"cspsat/internal/repl"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
	"cspsat/internal/trace"
	"cspsat/internal/value"
)

func newCopierREPL() *repl.REPL {
	env := sem.NewEnv(paper.CopySystem(), 2)
	return repl.New(syntax.Ref{Name: paper.NameCopier}, env, nil)
}

func TestMenuAndStep(t *testing.T) {
	r := newCopierREPL()
	menu, err := r.Menu()
	if err != nil {
		t.Fatal(err)
	}
	if len(menu) != 2 { // input.0, input.1
		t.Fatalf("initial menu = %v", menu)
	}
	if err := r.Step(menu[1]); err != nil {
		t.Fatal(err)
	}
	menu, err = r.Menu()
	if err != nil {
		t.Fatal(err)
	}
	if len(menu) != 1 || menu[0].Chan != "wire" {
		t.Fatalf("after input, menu = %v", menu)
	}
	// Stepping a disabled event is refused.
	bad := trace.Event{Chan: "output", Msg: value.Int(0)}
	if err := r.Step(bad); err == nil {
		t.Fatal("disabled event accepted")
	}
	// Undo returns to the input menu.
	if err := r.Undo(); err != nil {
		t.Fatal(err)
	}
	menu, _ = r.Menu()
	if len(menu) != 2 {
		t.Fatalf("after undo, menu = %v", menu)
	}
	if err := r.Undo(); err == nil {
		t.Fatal("undo at start accepted")
	}
}

func TestRandomAndReset(t *testing.T) {
	r := newCopierREPL()
	took, err := r.Random(6)
	if err != nil || took != 6 {
		t.Fatalf("random walk: %d %v", took, err)
	}
	if len(r.Trace()) != 6 {
		t.Fatalf("trace length %d", len(r.Trace()))
	}
	r.Reset()
	if len(r.Trace()) != 0 {
		t.Fatal("reset did not clear the trace")
	}
	// A quiescent process stops early.
	env := sem.NewEnv(syntax.NewModule(), 2)
	once := repl.New(syntax.Output{Ch: syntax.ChanRef{Name: "out"},
		Val: syntax.IntLit{Val: 1}, Cont: syntax.Stop{}}, env, nil)
	took, err = once.Random(10)
	if err != nil || took != 1 {
		t.Fatalf("once: took %d %v", took, err)
	}
}

func TestMonitors(t *testing.T) {
	r := newCopierREPL()
	r.Monitor(paper.CopierSat())
	if _, err := r.Random(4); err != nil {
		t.Fatal(err)
	}
	lines := r.CheckMonitors()
	if len(lines) != 1 || !strings.Contains(lines[0], "holds") {
		t.Fatalf("monitors: %v", lines)
	}
}

func TestAcceptances(t *testing.T) {
	env := sem.NewEnv(paper.CopySystem(), 2)
	r := repl.New(syntax.Ref{Name: paper.NameCopySys}, env, nil)
	accs, err := r.Acceptances()
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 1 || len(accs[0]) != 2 {
		t.Fatalf("initial acceptances = %v", accs)
	}
}

// TestRunScripted drives the full command loop over scripted input.
func TestRunScripted(t *testing.T) {
	r := newCopierREPL()
	r.Monitor(paper.CopierSat())
	script := strings.Join([]string{
		":help",
		"1",      // input.0
		"1",      // wire.0
		":trace", // <input.0, wire.0>
		":hist",
		":undo",
		":accept",
		":random 3",
		"zzz", // unknown input
		"99",  // out of range
		":reset",
		":quit",
	}, "\n")
	var out strings.Builder
	if err := r.Run(strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"input.0",
		"<input.0, wire.0>",
		"monitor wire <= input: holds",
		"may commit to offering",
		"took 3 steps",
		`unknown input "zzz"`,
		"choose 1..",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("transcript missing %q:\n%s", want, text)
		}
	}
	if len(r.Trace()) != 0 {
		t.Error("reset before quit should leave an empty trace")
	}
}

// TestRunEOF: end of input terminates cleanly.
func TestRunEOF(t *testing.T) {
	r := newCopierREPL()
	var out strings.Builder
	if err := r.Run(strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
}
