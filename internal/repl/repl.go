// Package repl implements an interactive process stepper: it shows the
// menu of communications a process currently offers, performs the one the
// user picks, and tracks the growing trace — the hands-on way to develop
// intuition for the paper's semantics. cmd/cspi is its terminal front end;
// the engine is I/O-abstracted for tests.
package repl

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"cspsat/internal/assertion"
	"cspsat/internal/closure"
	"cspsat/internal/csperr"
	"cspsat/internal/failures"
	"cspsat/internal/op"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
	"cspsat/internal/trace"
)

// REPL steps one process interactively.
type REPL struct {
	proc  syntax.Proc
	env   sem.Env
	funcs *assertion.Registry
	// monitors are evaluated after every step, like the runtime's.
	monitors []assertion.A

	cur trace.T
	rng *rand.Rand
}

// New builds a REPL for the process. funcs may be nil.
func New(p syntax.Proc, env sem.Env, funcs *assertion.Registry) *REPL {
	if funcs == nil {
		funcs = assertion.NewRegistry()
	}
	return &REPL{proc: p, env: env, funcs: funcs, rng: rand.New(rand.NewSource(1))}
}

// Monitor attaches an assertion displayed (and checked) after every step.
func (r *REPL) Monitor(a assertion.A) { r.monitors = append(r.monitors, a) }

// Trace returns the trace performed so far.
func (r *REPL) Trace() trace.T { return r.cur }

// Menu returns the currently enabled visible communications, sorted.
func (r *REPL) Menu() ([]trace.Event, error) {
	ts, ok, err := op.VisibleEvents(op.NewState(r.proc, r.env), r.cur)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("repl: internal error: current trace no longer valid")
	}
	seen := map[string]bool{}
	var evs []trace.Event
	for _, t := range ts {
		k := t.Ev.String()
		if !seen[k] {
			seen[k] = true
			evs = append(evs, t.Ev)
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].Compare(evs[j]) < 0 })
	return evs, nil
}

// Step performs the given event if it is currently enabled.
func (r *REPL) Step(ev trace.Event) error {
	menu, err := r.Menu()
	if err != nil {
		return err
	}
	for _, e := range menu {
		if e.Chan == ev.Chan && e.Msg.Equal(ev.Msg) {
			r.cur = r.cur.Append(ev)
			return nil
		}
	}
	return fmt.Errorf("repl: %s is not enabled here", ev)
}

// Undo removes the last step.
func (r *REPL) Undo() error {
	if len(r.cur) == 0 {
		return fmt.Errorf("repl: nothing to undo")
	}
	r.cur = r.cur[:len(r.cur)-1]
	return nil
}

// Reset returns to the initial state.
func (r *REPL) Reset() { r.cur = nil }

// Random performs up to n random enabled steps, returning how many it took
// (fewer when the process quiesces).
func (r *REPL) Random(n int) (int, error) {
	for i := 0; i < n; i++ {
		menu, err := r.Menu()
		if err != nil {
			return i, err
		}
		if len(menu) == 0 {
			return i, nil
		}
		r.cur = r.cur.Append(menu[r.rng.Intn(len(menu))])
	}
	return n, nil
}

// CheckMonitors evaluates the attached assertions against the current
// history, returning one line per monitor.
func (r *REPL) CheckMonitors() []string {
	if len(r.monitors) == 0 {
		return nil
	}
	hist := trace.Ch(r.cur)
	ctx := assertion.NewCtx(r.env, hist, r.funcs)
	out := make([]string, 0, len(r.monitors))
	for _, a := range r.monitors {
		ok, err := assertion.Eval(a, ctx)
		switch {
		case err != nil:
			out = append(out, fmt.Sprintf("monitor %s: error: %v", a, err))
		case ok:
			out = append(out, fmt.Sprintf("monitor %s: holds", a))
		default:
			out = append(out, fmt.Sprintf("monitor %s: VIOLATED", a))
		}
	}
	return out
}

// Acceptances returns the stable acceptance sets at the current point
// (what the process can commit to offering), via the failures model.
func (r *REPL) Acceptances() ([]failures.Acceptance, error) {
	m, err := failures.Compute(r.proc, r.env, len(r.cur))
	if err != nil {
		return nil, err
	}
	accs, ok := m.Acceptances(r.cur)
	if !ok {
		return nil, fmt.Errorf("repl: current trace missing from failures model")
	}
	return accs, nil
}

// friendly renders an engine error for an interactive session: the
// sentinel classes (csperr) get a recovery hint instead of the raw error
// chain, and none of them should end the session.
func friendly(err error) string {
	switch {
	case errors.Is(err, csperr.ErrDepthExceeded):
		return fmt.Sprintf("the process is too internally chatty to explore from here (%v)\nhint: :undo or :reset and try another branch", err)
	case errors.Is(err, csperr.ErrCanceled):
		return fmt.Sprintf("interrupted: %v", err)
	case errors.Is(err, csperr.ErrParse):
		return fmt.Sprintf("that input did not parse: %v", err)
	case errors.Is(err, csperr.ErrObligationFailed):
		return fmt.Sprintf("a proof obligation failed: %v", err)
	}
	return err.Error()
}

// Run drives the REPL over the given streams until :quit or EOF. Engine
// errors are reported via friendly and never abort the session; only I/O
// failures on the input stream are returned.
func (r *REPL) Run(in io.Reader, out io.Writer) error {
	sc := bufio.NewScanner(in)
	r.printState(out)
	for {
		fmt.Fprint(out, "cspi> ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == ":menu":
			r.printState(out)
		case line == ":quit" || line == ":q":
			return nil
		case line == ":trace":
			fmt.Fprintln(out, r.cur)
		case line == ":hist":
			fmt.Fprintln(out, trace.Ch(r.cur))
		case line == ":undo":
			if err := r.Undo(); err != nil {
				fmt.Fprintln(out, friendly(err))
			} else {
				r.printState(out)
			}
		case line == ":reset":
			r.Reset()
			r.printState(out)
		case line == ":accept":
			accs, err := r.Acceptances()
			if err != nil {
				fmt.Fprintln(out, friendly(err))
				continue
			}
			if len(accs) == 0 {
				fmt.Fprintln(out, "no stable state here (internal steps pending)")
			}
			for _, a := range accs {
				fmt.Fprintf(out, "may commit to offering %s\n", a)
			}
		case strings.HasPrefix(line, ":random"):
			n := 5
			if rest := strings.TrimSpace(strings.TrimPrefix(line, ":random")); rest != "" {
				if k, err := strconv.Atoi(rest); err == nil {
					n = k
				}
			}
			took, err := r.Random(n)
			if err != nil {
				fmt.Fprintln(out, friendly(err))
				continue
			}
			fmt.Fprintf(out, "took %d steps\n", took)
			r.printState(out)
		case line == ":stats":
			// Window into the process-wide closure caches. Stepping itself
			// works on offers, not trace sets, so a pure stepping session
			// reads zero — the counters move when the embedding process
			// also model-checks or denotes (e.g. a host driving the REPL
			// alongside check/proof work), and the bounded caches are what
			// keep such long-lived processes from growing without bound.
			s := closure.Stats()
			fmt.Fprintf(out, "closure caches: %d interned nodes, %d/%d intern hits/misses, %d evicted\n",
				s.InternedNodes, s.InternHits, s.InternMisses, s.Evicted)
			fmt.Fprintf(out, "operator memos: %d hits, %d misses\n", s.MemoHits, s.MemoMisses)
			fmt.Fprintf(out, "symbol tables: %d chans, %d events\n", s.Symbols.Chans, s.Symbols.Events)
		case line == ":help":
			fmt.Fprintln(out, "enter a number to perform that communication; commands: :menu :trace :hist :accept :random [n] :stats :undo :reset :quit")
		default:
			idx, err := strconv.Atoi(line)
			if err != nil {
				fmt.Fprintf(out, "unknown input %q (:help for commands)\n", line)
				continue
			}
			menu, err := r.Menu()
			if err != nil {
				fmt.Fprintln(out, friendly(err))
				continue
			}
			if idx < 1 || idx > len(menu) {
				fmt.Fprintf(out, "choose 1..%d\n", len(menu))
				continue
			}
			if err := r.Step(menu[idx-1]); err != nil {
				fmt.Fprintln(out, friendly(err))
				continue
			}
			r.printState(out)
		}
	}
}

func (r *REPL) printState(out io.Writer) {
	fmt.Fprintf(out, "trace: %s\n", r.cur)
	for _, line := range r.CheckMonitors() {
		fmt.Fprintln(out, line)
	}
	menu, err := r.Menu()
	if err != nil {
		fmt.Fprintln(out, "error:", friendly(err))
		return
	}
	if len(menu) == 0 {
		fmt.Fprintln(out, "no communication possible (STOPped or deadlocked)")
		return
	}
	for i, e := range menu {
		fmt.Fprintf(out, "  %2d) %s\n", i+1, e)
	}
}
