// The serving-path half of the cancellation guarantees: cspserved aborts
// engine runs for reasons the CLI never sees (client disconnects, request
// budgets, forced drains), all mid-exploration, all against the shared
// global intern shards. These tests drive real HTTP handlers through those
// aborts and then assert — by canonical pointer identity, like the rest of
// this package — that the shards still produce the exact baseline nodes.
// Run with -race; CI does.
package partests

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cspsat/internal/server"
	"cspsat/pkg/csp"
)

// postJSON fires one request at the handler under ctx and returns the
// status code; the body is discarded (these tests care about shard state,
// not payloads).
func postJSON(t testing.TB, h http.Handler, ctx context.Context, path, body string) int {
	t.Helper()
	req := httptest.NewRequest("POST", path, bytes.NewReader([]byte(body)))
	if ctx != nil {
		req = req.WithContext(ctx)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code
}

// TestServerDisconnectShardConsistency hammers a server with requests whose
// clients hang up mid-exploration, concurrently, and checks that (a) every
// abort is reported as 499, never as a partial result, and (b) the shards
// the aborted explorations wrote remain canonical: re-running a completed
// baseline yields the same pointer as before the storm.
func TestServerDisconnectShardConsistency(t *testing.T) {
	mod := loadSpec(t, "multiplier.csp")
	p, err := mod.Proc("multiplier")
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := mod.Traces(context.Background(), p, csp.EngineOptions{Depth: 5})
	if err != nil {
		t.Fatal(err)
	}

	srv := server.New(server.Config{MaxInflight: 8})
	h := srv.Handler()
	raw, err := os.ReadFile(filepath.Join("..", "..", "specs", "multiplier.csp"))
	if err != nil {
		t.Fatal(err)
	}
	spec := string(raw)
	body := jsonBody(t, map[string]any{
		"source": spec, "process": "multiplier", "depth": 12, "nat": 2,
	})

	// Depth 12 runs for seconds; every one of these clients disconnects
	// tens of milliseconds in, so each abort lands mid-exploration while
	// the other requests are still writing the same shards.
	const clients = 6
	var wg sync.WaitGroup
	codes := make([]int, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			timer := time.AfterFunc(time.Duration(20+10*c)*time.Millisecond, cancel)
			defer timer.Stop()
			defer cancel()
			codes[c] = postJSON(t, h, ctx, "/v1/traces", body)
		}(c)
	}
	wg.Wait()
	for c, code := range codes {
		if code != server.StatusClientClosedRequest {
			t.Errorf("client %d: code=%d, want %d", c, code, server.StatusClientClosedRequest)
		}
	}

	// The aborted runs wrote the same shards the baseline lives in; the
	// canonical node must be bit-for-bit the one from before the storm.
	after, err := mod.Traces(context.Background(), p, csp.EngineOptions{Depth: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !baseline.Set.Same(after.Set) {
		t.Fatal("canonical node changed after aborted server requests — shard state corrupted")
	}

	// And the server itself must still serve: the same spec, completed.
	okBody := jsonBody(t, map[string]any{
		"source": spec, "process": "multiplier", "depth": 4, "nat": 2,
	})
	if code := postJSON(t, h, nil, "/v1/traces", okBody); code != http.StatusOK {
		t.Fatalf("post-storm request: code=%d", code)
	}
}

func jsonBody(t testing.TB, m map[string]any) string {
	t.Helper()
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}
