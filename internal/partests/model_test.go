// Differential property tests for the semantic-model axis: on random
// generated terms, stable-failures refinement must imply trace refinement
// (the model hierarchy ⊑F ⊆ ⊑T) and never the converse, and the paper's
// §4 separation — STOP |~| P is trace-equivalent to P yet fails failures
// refinement against it — must hold on every communicating P. The failures
// models of each pair are computed concurrently, so -race additionally
// checks the explorer's shared intern tables under failures-model load.
package partests

import (
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"cspsat/internal/failures"
	"cspsat/internal/gen"
	"cspsat/internal/op"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
)

const hierarchyDepth = 3

// computePair builds the failures models of impl and spec concurrently in
// the shared env — the -race half of the test — failing on engine errors
// (generated terms are closed and guarded, so both computations terminate).
func computePair(t *testing.T, label string, impl, spec syntax.Proc, env sem.Env) (*failures.Model, *failures.Model) {
	t.Helper()
	var (
		wg     sync.WaitGroup
		fi, fs *failures.Model
		ei, es error
	)
	wg.Add(2)
	go func() { defer wg.Done(); fi, ei = failures.Compute(impl, env, hierarchyDepth) }()
	go func() { defer wg.Done(); fs, es = failures.Compute(spec, env, hierarchyDepth) }()
	wg.Wait()
	if ei != nil || es != nil {
		t.Fatalf("%s: failures compute: impl=%v spec=%v", label, ei, es)
	}
	return fi, fs
}

// TestModelHierarchyRandom draws random (impl, spec) pairs — a generated
// term against syntactic weakenings of itself — and pins the hierarchy on
// each: whenever impl ⊑F spec holds, impl ⊑T spec must hold too. The
// converse must not be universal: the batch has to contain pairs that are
// trace-refinements but not failures-refinements (internal choice with
// STOP produces them), otherwise the two orders would not be separated and
// the failures backend would be vacuous.
func TestModelHierarchyRandom(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	strict := 0 // pairs with impl ⊑T spec but impl ⋢F spec
	for i := 0; i < 120; i++ {
		m, main := gen.Module(r, gen.Config{MaxDepth: 3, Defs: 2})
		env := sem.NewEnv(m, 2)
		spec := main
		var impl syntax.Proc
		switch r.Intn(4) {
		case 0:
			impl = spec
		case 1:
			impl = syntax.IChoice{L: spec, R: syntax.Stop{}}
		case 2:
			impl = syntax.Alt{L: spec, R: syntax.Stop{}}
		default:
			impl = syntax.IChoice{L: spec, R: spec}
		}
		label := "pair/" + strconv.Itoa(i)
		fi, fs := computePair(t, label, impl, spec, env)
		cex, err := failures.Refines(fi, fs)
		if err != nil {
			t.Fatalf("%s: refines: %v", label, err)
		}
		it, err := op.Traces(impl, env, hierarchyDepth)
		if err != nil {
			t.Fatalf("%s: op impl: %v", label, err)
		}
		st, err := op.Traces(spec, env, hierarchyDepth)
		if err != nil {
			t.Fatalf("%s: op spec: %v", label, err)
		}
		tracesOK := it.SubsetOf(st)
		if cex == nil && !tracesOK {
			t.Errorf("%s: failures refinement holds but trace refinement fails — hierarchy violated\nmodule:\n%s\nimpl: %s\nspec: %s",
				label, m, impl, spec)
		}
		if tracesOK && cex != nil {
			strict++
		}
	}
	if strict == 0 {
		t.Error("no pair separated the models: every trace refinement was also a failures refinement")
	}
}

// TestSeparationSection4 is the paper's §4 example as a universal law:
// for random P with at least one visible initial, STOP |~| P refines P in
// the trace model (their trace sets coincide) but not in the failures
// model, where the internal branch to STOP shows up as the empty
// acceptance after <>.
func TestSeparationSection4(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	for i := 0; i < 60; i++ {
		m, main := gen.Module(r, gen.Config{MaxDepth: 3, Defs: 2})
		env := sem.NewEnv(m, 2)
		// Guarantee a visible initial: prefix the generated term, so STOP
		// is never trace- (or failures-) equivalent to it.
		spec := syntax.Proc(syntax.Output{
			Ch:   syntax.ChanRef{Name: "a"},
			Val:  syntax.IntLit{Val: 0},
			Cont: main,
		})
		impl := syntax.IChoice{L: syntax.Stop{}, R: spec}
		label := "sep/" + strconv.Itoa(i)

		it, err := op.Traces(impl, env, hierarchyDepth)
		if err != nil {
			t.Fatalf("%s: op impl: %v", label, err)
		}
		st, err := op.Traces(spec, env, hierarchyDepth)
		if err != nil {
			t.Fatalf("%s: op spec: %v", label, err)
		}
		if !it.Same(st) {
			t.Fatalf("%s: STOP |~| P and P have different trace sets — internal choice leaked into the trace model\nmodule:\n%s", label, m)
		}

		fi, fs := computePair(t, label, impl, spec, env)
		cex, err := failures.Refines(fi, fs)
		if err != nil {
			t.Fatalf("%s: refines: %v", label, err)
		}
		if cex == nil {
			t.Fatalf("%s: STOP |~| P ⊑F P held — the failures model cannot see the internal STOP branch\nmodule:\n%s", label, m)
		}
		if len(cex.Trace) != 0 || cex.ImplAcceptance == nil || len(*cex.ImplAcceptance) != 0 {
			t.Errorf("%s: want the empty acceptance after <> as counterexample, got %s", label, cex)
		}
		// And the other direction of the hierarchy stays intact: P ⊑F
		// STOP |~| P does hold (spec's failures include impl's behaviours
		// plus the refusal), never the converse confusion.
		if back, err := failures.Refines(fs, fi); err != nil || back != nil {
			t.Errorf("%s: P ⊑F STOP |~| P should hold (err=%v, cex=%v)", label, err, back)
		}
	}
}
