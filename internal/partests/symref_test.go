package partests

// Six-spec differential test for the interned-symbol engine. refTraces is
// a deliberately naive enumerator over op.Step: state sets keyed by
// Proc.String(), traces rendered as plain strings, no closure tries, no
// EventIDs, no bitsets, no memoisation — a second implementation of the
// paper's prefix-closed trace semantics that shares nothing with the id
// layer under test. The engine must produce exactly its trace sets on
// every spec root at the depths the parallel tests use.

import (
	"sort"
	"strings"
	"testing"

	"cspsat/internal/core"
	"cspsat/internal/op"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
	"cspsat/internal/trace"
	"cspsat/internal/value"
)

// refEventKey renders one event unambiguously (channel and message key are
// separated so sym "3" and int 3 cannot collide).
func refEventKey(e trace.Event) string {
	return string(e.Chan) + "\x01" + e.Msg.Key() + "\x00"
}

// refTauClosure expands a state to everything reachable by internal steps
// alone, deduplicating on the syntactic state key.
func refTauClosure(t *testing.T, s op.State) []op.State {
	t.Helper()
	seen := map[string]bool{s.Key(): true}
	out := []op.State{s}
	work := []op.State{s}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		ts, err := op.Step(cur)
		if err != nil {
			t.Fatalf("reference Step: %v", err)
		}
		for _, tr := range ts {
			if !tr.Tau {
				continue
			}
			k := tr.Next.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, tr.Next)
			work = append(work, tr.Next)
		}
	}
	return out
}

// refTraces enumerates the visible traces of p up to depth as a set of
// rendered strings, breadth-first over τ-closed state sets. States reached
// by the same visible event are merged (their continuations union), which
// mirrors the semantics without ever sharing code with the engine.
func refTraces(t *testing.T, p syntax.Proc, env sem.Env, depth int) map[string]bool {
	t.Helper()
	type frontier struct {
		states []op.State
		key    string
		depth  int
	}
	out := map[string]bool{"": true}
	queue := []frontier{{states: refTauClosure(t, op.NewState(p, env))}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.depth >= depth {
			continue
		}
		nextBy := map[string][]op.State{}
		for _, st := range cur.states {
			ts, err := op.Step(st)
			if err != nil {
				t.Fatalf("reference Step: %v", err)
			}
			for _, tr := range ts {
				if tr.Tau {
					continue
				}
				k := refEventKey(tr.Ev)
				nextBy[k] = append(nextBy[k], tr.Next)
			}
		}
		for ek, nexts := range nextBy {
			seen := map[string]bool{}
			var closed []op.State
			for _, n := range nexts {
				for _, c := range refTauClosure(t, n) {
					if k := c.Key(); !seen[k] {
						seen[k] = true
						closed = append(closed, c)
					}
				}
			}
			tk := cur.key + ek
			out[tk] = true
			queue = append(queue, frontier{states: closed, key: tk, depth: cur.depth + 1})
		}
	}
	return out
}

// TestInternedEngineMatchesStringReference compares the id-keyed engine's
// trace sets against refTraces on all seven specs at the standard depths.
func TestInternedEngineMatchesStringReference(t *testing.T) {
	for _, s := range specRoots {
		sys, err := core.LoadFile(specFile(s.file), core.Options{NatWidth: 2})
		if err != nil {
			t.Fatalf("loading %s: %v", s.file, err)
		}
		for _, root := range s.roots {
			t.Run(s.file+"/"+root, func(t *testing.T) {
				p, err := sys.Proc(root)
				if err != nil {
					t.Fatal(err)
				}
				got, err := sys.Traces(p, s.depth)
				if err != nil {
					t.Fatal(err)
				}
				gotKeys := map[string]bool{}
				for _, tr := range got.Traces() {
					var sb strings.Builder
					for _, e := range tr {
						sb.WriteString(refEventKey(e))
					}
					gotKeys[sb.String()] = true
				}
				want := refTraces(t, p, sys.Env(), s.depth)
				if len(gotKeys) != len(want) {
					t.Errorf("engine has %d traces, reference has %d", len(gotKeys), len(want))
				}
				for k := range want {
					if !gotKeys[k] {
						t.Errorf("reference trace missing from engine: %q", printable(k))
					}
				}
				for k := range gotKeys {
					if !want[k] {
						t.Errorf("engine trace missing from reference: %q", printable(k))
					}
				}
			})
		}
	}
}

// printable rewrites the separator bytes of a rendered trace for error
// messages, sorted output not needed — map iteration already randomises.
func printable(k string) string {
	k = strings.ReplaceAll(k, "\x01", ".")
	return strings.TrimSuffix(strings.ReplaceAll(k, "\x00", " "), " ")
}

// specFile resolves a spec name the same way loadSpec does; kept as a
// helper so the core-level loader and the facade loader agree on paths.
func specFile(name string) string {
	return "../../specs/" + name
}

// TestReferenceEnumeratorSane guards the reference itself: on a known tiny
// spec the reference trace count must match a hand-computable bound, so a
// bug that silenced both engines equally would still be caught.
func TestReferenceEnumeratorSane(t *testing.T) {
	sys, err := core.LoadFile(specFile("copier.csp"), core.Options{NatWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	p, err := sys.Proc("copier")
	if err != nil {
		t.Fatal(err)
	}
	want := refTraces(t, p, sys.Env(), 2)
	// copier = input?x -> wire!x -> copier over NAT width 2: at depth 2 the
	// traces are <>, <input.0>, <input.1>, <input.0 wire.0>, <input.1 wire.1>.
	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, printable(k))
	}
	sort.Strings(keys)
	if len(want) != 5 {
		t.Fatalf("reference found %d traces at depth 2, want 5: %q", len(want), keys)
	}
	if !want[""] || !want[refEventKey(trace.Event{Chan: "input", Msg: value.Int(0)})+refEventKey(trace.Event{Chan: "wire", Msg: value.Int(0)})] {
		t.Fatalf("reference missing expected traces: %q", keys)
	}
}
