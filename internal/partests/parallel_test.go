// Package partests holds the concurrency test layer for the parallel
// verification engine: differential tests asserting the Workers>1 paths of
// the explorer and the denoter return the *same canonical nodes* as the
// serial paths (pointer identity via Same, not just set equality),
// cancellation tests asserting prompt return without shard corruption, and
// a hammer test on the lock-striped intern tables themselves. Run with
// -race; CI does.
package partests

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"cspsat/internal/assertion"
	"cspsat/internal/closure"
	"cspsat/internal/csperr"
	"cspsat/internal/op"
	"cspsat/internal/proof"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
	"cspsat/internal/trace"
	"cspsat/internal/value"
	"cspsat/pkg/csp"
)

// specRoots names, for each of the repo's seven specs, the processes whose
// trace sets the differential tests compare across engines.
var specRoots = []struct {
	file  string
	roots []string
	depth int
}{
	{"copier.csp", []string{"copier", "copysys"}, 7},
	{"protocol.csp", []string{"protocol"}, 6},
	{"multiplier.csp", []string{"multiplier"}, 5},
	{"buffers.csp", []string{"buf1", "buf2"}, 6},
	{"philosophers.csp", []string{"deadlocking", "safe"}, 5},
	{"tokenring.csp", []string{"sys"}, 6},
	{"nondet.csp", []string{"vend", "flaky"}, 6},
}

func loadSpec(t testing.TB, name string) *csp.Module {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "specs", name))
	if err != nil {
		t.Fatalf("reading %s: %v", name, err)
	}
	mod, err := csp.Load(context.Background(), string(data), csp.Options{NatWidth: 2})
	if err != nil {
		t.Fatalf("loading %s: %v", name, err)
	}
	return mod
}

// TestParallelExploreIdentical checks the worker-pool BFS of the explorer
// against the serial recursion on every spec root: the two must return the
// same canonical node, i.e. Same must hold by pointer identity. That is
// the whole point of keeping canonicality global across shards — parallel
// results are not merely equal but interchangeable with serial ones.
func TestParallelExploreIdentical(t *testing.T) {
	for _, s := range specRoots {
		mod := loadSpec(t, s.file)
		for _, root := range s.roots {
			t.Run(s.file+"/"+root, func(t *testing.T) {
				p, err := mod.Proc(root)
				if err != nil {
					t.Fatal(err)
				}
				serial, err := mod.Traces(context.Background(), p, csp.EngineOptions{Depth: s.depth})
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{2, 4, 8} {
					par, err := mod.Traces(context.Background(), p, csp.EngineOptions{Depth: s.depth, Workers: workers})
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					if !serial.Set.Same(par.Set) {
						t.Fatalf("workers=%d: parallel explorer returned a different canonical node (Equal=%v)",
							workers, serial.Set.Equal(par.Set))
					}
				}
			})
		}
	}
}

// TestAdaptiveCutoverIdentical pins the adaptive serial/parallel cutover
// itself, on every root of all seven specs and for both engines: the
// adaptive path (wide pool, default cutover — small rounds expand inline),
// the forced-serial path (Workers 1), and the forced-parallel path
// (SerialCutover 1, every round through the pool no matter how narrow)
// must all return the same canonical node by pointer identity. A cutover
// that changed expansion order in a way the stitch or the DP did not mask
// would surface here as a Same failure.
func TestAdaptiveCutoverIdentical(t *testing.T) {
	denoteDepths := map[string]int{"multiplier.csp": 3, "tokenring.csp": 4, "philosophers.csp": 4}
	for _, s := range specRoots {
		mod := loadSpec(t, s.file)
		for _, root := range s.roots {
			t.Run(s.file+"/"+root, func(t *testing.T) {
				p, err := mod.Proc(root)
				if err != nil {
					t.Fatal(err)
				}
				env := mod.Env()

				serial := op.NewExplorer()
				serial.Workers = 1
				want, err := serial.Traces(op.NewState(p, env), s.depth)
				if err != nil {
					t.Fatal(err)
				}
				for name, x := range map[string]*op.Explorer{
					"adaptive":        {Workers: 8},
					"forced-parallel": {Workers: 8, SerialCutover: 1},
				} {
					got, err := x.Traces(op.NewState(p, env), s.depth)
					if err != nil {
						t.Fatalf("explorer %s: %v", name, err)
					}
					if !want.Same(got) {
						t.Fatalf("explorer %s: different canonical node than forced-serial (Equal=%v)",
							name, want.Equal(got))
					}
				}

				depth := s.depth
				if d, ok := denoteDepths[s.file]; ok {
					depth = d
				}
				ds := sem.NewDenoter(depth)
				ds.Workers = 1
				dwant, err := ds.Denote(p, env)
				if err != nil {
					t.Fatal(err)
				}
				for name, cutover := range map[string]int{"adaptive": 0, "forced-parallel": 1} {
					d := sem.NewDenoter(depth)
					d.Workers = 8
					d.SerialCutover = cutover
					got, err := d.Denote(p, env)
					if err != nil {
						t.Fatalf("denoter %s: %v", name, err)
					}
					if !dwant.Same(got) {
						t.Fatalf("denoter %s: different canonical node than forced-serial (Equal=%v)",
							name, dwant.Equal(got))
					}
				}
			})
		}
	}
}

// TestParallelDenoteIdentical checks the Jacobi-parallel approximation
// chain against the serial denoter, again by canonical pointer identity.
func TestParallelDenoteIdentical(t *testing.T) {
	// The literal chain materialises pre-hiding sets; keep depths modest.
	depths := map[string]int{"multiplier.csp": 3, "tokenring.csp": 4, "philosophers.csp": 4}
	for _, s := range specRoots {
		mod := loadSpec(t, s.file)
		depth := s.depth
		if d, ok := depths[s.file]; ok {
			depth = d
		}
		for _, root := range s.roots {
			t.Run(s.file+"/"+root, func(t *testing.T) {
				p, err := mod.Proc(root)
				if err != nil {
					t.Fatal(err)
				}
				serial, err := mod.Traces(context.Background(), p, csp.EngineOptions{Engine: csp.EngineDenote, Depth: depth})
				if err != nil {
					t.Fatal(err)
				}
				par, err := mod.Traces(context.Background(), p, csp.EngineOptions{Engine: csp.EngineDenote, Depth: depth, Workers: 4})
				if err != nil {
					t.Fatal(err)
				}
				if !serial.Set.Same(par.Set) {
					t.Fatalf("parallel denoter returned a different canonical node (Equal=%v)",
						serial.Set.Equal(par.Set))
				}
			})
		}
	}
}

// TestCrossEngineAgreement pins the op and denote engines to each other on
// the parallel path — both engines, both parallel, one canonical answer.
func TestCrossEngineAgreement(t *testing.T) {
	mod := loadSpec(t, "copier.csp")
	p, err := mod.Proc("copysys")
	if err != nil {
		t.Fatal(err)
	}
	o, err := mod.Traces(context.Background(), p, csp.EngineOptions{Engine: csp.EngineOp, Depth: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	d, err := mod.Traces(context.Background(), p, csp.EngineOptions{Engine: csp.EngineDenote, Depth: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Set.Same(d.Set) {
		t.Fatalf("op and denote disagree on copysys at depth 5 (Equal=%v)", o.Set.Equal(d.Set))
	}
}

// TestCancellationPrompt checks that a canceled context aborts exploration
// with an error wrapping both ErrCanceled and the caller's cause, and —
// the shard-corruption half — that the very same computation still
// produces the canonical answer afterwards: a torn intern table would
// surface as a Same failure or a race report.
func TestCancellationPrompt(t *testing.T) {
	mod := loadSpec(t, "tokenring.csp")
	p, err := mod.Proc("sys")
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := mod.Traces(context.Background(), p, csp.EngineOptions{Depth: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		for _, engine := range []csp.Engine{csp.EngineOp, csp.EngineDenote} {
			t.Run(fmt.Sprintf("%v/workers=%d", engine, workers), func(t *testing.T) {
				ctx, cancel := context.WithCancel(context.Background())
				cancel() // canceled before the engine starts: must not explore at all
				_, err := mod.Traces(ctx, p, csp.EngineOptions{Engine: engine, Depth: 6, Workers: workers})
				if err == nil {
					t.Fatal("canceled context: want error, got result")
				}
				if !errors.Is(err, csperr.ErrCanceled) || !errors.Is(err, csp.ErrCanceled) {
					t.Fatalf("error does not wrap ErrCanceled: %v", err)
				}
			})
		}
	}
	// The shards took concurrent writes from the runs above; the canonical
	// answer must be unchanged.
	after, err := mod.Traces(context.Background(), p, csp.EngineOptions{Depth: 6, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !baseline.Set.Same(after.Set) {
		t.Fatal("canonical node changed after canceled runs — shard state corrupted")
	}
}

// TestCheckAllParallel compares assert checking across a pool with the
// serial path on every spec carrying asserts.
func TestCheckAllParallel(t *testing.T) {
	for _, s := range specRoots {
		mod := loadSpec(t, s.file)
		if len(mod.Asserts()) == 0 {
			continue
		}
		t.Run(s.file, func(t *testing.T) {
			serial, err := mod.CheckAll(context.Background(), csp.CheckOptions{Depth: 5})
			if err != nil {
				t.Fatal(err)
			}
			par, err := mod.CheckAll(context.Background(), csp.CheckOptions{Depth: 5, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if len(serial) != len(par) {
				t.Fatalf("result count differs: %d vs %d", len(serial), len(par))
			}
			for i := range serial {
				if serial[i].OK() != par[i].OK() {
					t.Errorf("assert %d: serial OK=%v, parallel OK=%v", i, serial[i].OK(), par[i].OK())
				}
			}
		})
	}
}

// TestBatchProofChecking runs the copier system's machine proofs as a
// batch across workers and checks the outcomes match sequential checking,
// including the counter of discharged obligations.
func TestBatchProofChecking(t *testing.T) {
	mod := loadSpec(t, "copier.csp") // the spec parse only supplies the env shape
	prover := mod.Prover(context.Background(), csp.CheckOptions{})
	obs := make([]csp.Obligation, 8)
	for i := range obs {
		obs[i] = csp.Obligation{Name: fmt.Sprintf("triv-%d", i), Proof: proof.Triviality{P: syntax.Stop{}, T: assertion.True()}}
	}
	want := make([]csp.Claim, len(obs))
	for i, ob := range obs {
		cl, err := prover.Check(ob.Proof)
		if err != nil {
			t.Fatalf("sequential %s: %v", ob.Name, err)
		}
		want[i] = cl
	}
	got, err := mod.CheckBatch(context.Background(), obs, csp.CheckOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if r.Err != nil {
			t.Fatalf("batch %s: %v", r.Name, r.Err)
		}
		if r.Claim.String() != want[i].String() {
			t.Errorf("batch %s: claim %s, want %s", r.Name, r.Claim, want[i])
		}
	}
}

// TestShardHammer drives many goroutines through identical closure-layer
// constructions simultaneously. Global canonicality demands every
// goroutine receive the *same pointers*; the race detector additionally
// verifies the striped locking publishes nodes safely.
func TestShardHammer(t *testing.T) {
	build := func() *closure.Set {
		evs := []trace.Event{
			{Chan: "a", Msg: value.Int(0)},
			{Chan: "b", Msg: value.Int(1)},
			{Chan: "c", Msg: value.Int(2)},
		}
		s := closure.Stop()
		for d := 0; d < 5; d++ {
			branches := make([]*closure.Set, 0, len(evs))
			for _, ev := range evs {
				branches = append(branches, closure.Prefix(ev, s))
			}
			s = closure.UnionAll(branches...)
		}
		return s
	}
	const goroutines = 16
	results := make([]*closure.Set, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = build()
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if !results[0].Same(results[g]) {
			t.Fatalf("goroutine %d interned a different canonical node", g)
		}
	}
}
