// Differential tests for the frozen arena tier: on every root of all
// seven specs, an engine-computed trace set frozen to an arena image and
// reopened must answer every read query byte-identically to the live
// interned set, and must thaw back to the very same canonical node
// (pointer identity via Same). Run with -race; CI does — concurrent
// readers exercise the arena's lazy bind and thaw paths.
package partests

import (
	"context"
	"sync"
	"testing"

	"cspsat/internal/closure/frozen"
	"cspsat/pkg/csp"
)

func TestFrozenViewIdenticalOnSpecs(t *testing.T) {
	for _, s := range specRoots {
		mod := loadSpec(t, s.file)
		for _, root := range s.roots {
			t.Run(s.file+"/"+root, func(t *testing.T) {
				p, err := mod.Proc(root)
				if err != nil {
					t.Fatal(err)
				}
				res, err := mod.Traces(context.Background(), p, csp.EngineOptions{Depth: s.depth})
				if err != nil {
					t.Fatal(err)
				}
				live := res.Set

				arena, rootIdx, err := frozen.Freeze(live)
				if err != nil {
					t.Fatalf("freeze: %v", err)
				}
				// Reopen from the raw bytes: the image crossing a
				// serialization boundary is the whole point.
				reopened, err := frozen.Open(arena.Bytes())
				if err != nil {
					t.Fatalf("reopen: %v", err)
				}
				view, err := reopened.View(rootIdx)
				if err != nil {
					t.Fatal(err)
				}

				// Concurrent readers: first queries race on the lazy event
				// binding, later ones on the memoised thaw. The race
				// detector owns the verdict on both.
				var wg sync.WaitGroup
				for w := 0; w < 4; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						if view.Size() != live.Size() || view.MaxLen() != live.MaxLen() {
							t.Errorf("frozen (%d,%d) vs live (%d,%d)",
								view.Size(), view.MaxLen(), live.Size(), live.MaxLen())
						}
						gotTr, gotTrunc := view.TracesN(100)
						wantTr, wantTrunc := live.TracesN(100)
						if gotTrunc != wantTrunc || len(gotTr) != len(wantTr) {
							t.Errorf("listing shape differs")
							return
						}
						for i := range gotTr {
							if gotTr[i].Compare(wantTr[i]) != 0 {
								t.Errorf("listing diverges at %d: %v vs %v", i, gotTr[i], wantTr[i])
								return
							}
							if !view.Contains(gotTr[i]) {
								t.Errorf("frozen view denies its own trace %v", gotTr[i])
								return
							}
						}
						if !view.Thaw().Same(live) {
							t.Errorf("thaw is not pointer-canonical with the live set")
						}
					}()
				}
				wg.Wait()
			})
		}
	}
}
