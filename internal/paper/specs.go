package paper

// Canonical .csp source texts for the paper's systems, in the concrete
// syntax of internal/parser. The same systems are constructed directly as
// ASTs elsewhere in this package; the parser tests check that parsing these
// texts yields exactly those ASTs, and the specs/ directory at the
// repository root carries byte-identical copies for the command-line tools.

// CopierSpec is the §1.3(1)/§2 copier network.
const CopierSpec = `-- The copier network of the paper, section 1.3(1) and section 2:
-- two one-place buffers chained by a wire.
copier = input?x:NAT -> wire!x -> copier
recopier = wire?y:NAT -> output!y -> recopier
copynet = copier || recopier
copysys = chan wire; copynet

assert copier sat wire <= input
assert copier sat #input <= #wire + 1
assert recopier sat output <= wire
assert copynet sat output <= input
assert copysys sat output <= input
`

// ProtocolSpec is the §1.3(2)-(4)/§2.2 ACK/NACK protocol over M = {0..1}.
const ProtocolSpec = `-- The communications protocol of the paper, sections 1.3(2)-(4) and 2.2:
-- a sender retransmits each message until the receiver acknowledges it.
set M = {0..1}

sender = input?x:M -> q[x]
q[x:M] = wire!x -> ( wire?y:{ACK} -> sender
                   | wire?y:{NACK} -> q[x] )
receiver = wire?z:M -> ( wire!ACK -> output!z -> receiver
                       | wire!NACK -> receiver )
protonet = sender || receiver
protocol = chan wire; protonet

assert sender sat f(wire) <= input
assert forall x in M. q[x] sat f(wire) <= x^input
assert receiver sat output <= f(wire)
assert protocol sat output <= input
`

// MultiplierSpec is the §1.3(5) matrix-vector multiplier pipeline.
const MultiplierSpec = `-- The matrix multiplier network of the paper, section 1.3(5):
-- mult[i] folds v[i]*row[i] into a running sum flowing along col.
const v[1..3] = [5, 3, 2]

mult[i:{1..3}] = row[i]?x:NAT -> col[i-1]?y:NAT -> col[i]!(v[i]*x + y) -> mult[i]
zeroes = col[0]!0 -> zeroes
last = col[3]?y:NAT -> output!y -> last
network = zeroes || mult[1] || mult[2] || mult[3] || last
multiplier = chan col[0..3]; network

assert multiplier sat forall i:1..#output. output[i] == sum j:1..3. (v[j]*row[j][i])
`
