package paper

import "cspsat/internal/syntax"

// BufferChain generalises the paper's copier/recopier pair (§1.3(1)) to a
// pipeline of n one-place buffers connected by channels c[1..n-1], with the
// internal channels hidden:
//
//	buf[i:1..n] = c[i-1]?x:NAT -> c[i]!x -> buf[i]
//	chain  = buf[1] || buf[2] || … || buf[n]
//	system = chan c[1..n-1]; chain
//
// where c[0] is renamed "input" and c[n] is renamed "output" to keep the
// external interface fixed as n grows. It is the scaling workload for the
// benchmark harness: state space and interleaving both grow with n.
func BufferChain(n int) *syntax.Module {
	if n < 1 {
		panic("paper: BufferChain needs n >= 1")
	}
	m := syntax.NewModule()
	chanAt := func(i int) syntax.ChanRef {
		switch i {
		case 0:
			return syntax.ChanRef{Name: "input"}
		case n:
			return syntax.ChanRef{Name: "output"}
		default:
			return syntax.ChanRef{Name: "c", Sub: syntax.IntLit{Val: int64(i)}}
		}
	}
	parts := make([]syntax.Proc, 0, n)
	for i := 1; i <= n; i++ {
		name := bufName(i)
		m.MustDefine(syntax.Def{
			Name: name,
			Body: syntax.Input{
				Ch: chanAt(i - 1), Var: "x", Dom: syntax.SetName{Name: "NAT"},
				Cont: syntax.Output{Ch: chanAt(i), Val: syntax.Var{Name: "x"}, Cont: syntax.Ref{Name: name}},
			},
		})
		parts = append(parts, syntax.Ref{Name: bufName(i)})
	}
	m.MustDefine(syntax.Def{Name: NameChain, Body: syntax.ParAll(parts...)})
	body := syntax.Proc(syntax.Ref{Name: NameChain})
	if n > 1 {
		body = syntax.Hiding{
			Channels: []syntax.ChanItem{{
				Name: "c",
				Lo:   syntax.IntLit{Val: 1},
				Hi:   syntax.IntLit{Val: int64(n - 1)},
			}},
			Body: body,
		}
	}
	m.MustDefine(syntax.Def{Name: NameChainSys, Body: body})
	return m
}

// Names of the BufferChain processes.
const (
	NameChain    = "chain"
	NameChainSys = "chainsys"
)

func bufName(i int) string {
	return "buf" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}
