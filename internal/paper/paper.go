// Package paper encodes, in Go, every worked example of the paper —
// the copier network (§1.3(1), §2), the ACK/NACK communications protocol
// (§1.3(2)–(4), §2.2), and the matrix-vector multiplier pipeline (§1.3(5))
// — together with the assertions the paper states about them. Tests,
// examples and benchmarks all draw on this single encoding; the parser is
// cross-checked against it.
package paper

import (
	"cspsat/internal/assertion"
	"cspsat/internal/syntax"
)

// Process and channel names used by the examples, as in the paper.
const (
	// Copier system.
	NameCopier   = "copier"
	NameRecopier = "recopier"
	NameCopyNet  = "copynet" // copier ‖ recopier
	NameCopySys  = "copysys" // chan wire; (copier ‖ recopier)

	// Protocol.
	NameSender   = "sender"
	NameQ        = "q"
	NameReceiver = "receiver"
	NameProtoNet = "protonet" // sender ‖ receiver
	NameProtocol = "protocol" // chan wire; (sender ‖ receiver)

	// Multiplier.
	NameMult       = "mult"
	NameZeroes     = "zeroes"
	NameLast       = "last"
	NameNetwork    = "network"
	NameMultiplier = "multiplier"
)

// arrow builds the right-associated prefix chain c1 → c2 → … → tail.
func out(ch string, v syntax.Expr, cont syntax.Proc) syntax.Proc {
	return syntax.Output{Ch: syntax.ChanRef{Name: ch}, Val: v, Cont: cont}
}

func in(ch, x string, dom syntax.SetExpr, cont syntax.Proc) syntax.Proc {
	return syntax.Input{Ch: syntax.ChanRef{Name: ch}, Var: x, Dom: dom, Cont: cont}
}

func ref(name string) syntax.Proc { return syntax.Ref{Name: name} }

func nat() syntax.SetExpr { return syntax.SetName{Name: "NAT"} }

// CopySystem returns the module defining
//
//	copier   = input?x:NAT -> wire!x -> copier
//	recopier = wire?y:NAT -> output!y -> recopier
//	copynet  = copier || recopier
//	copysys  = chan wire; copynet
func CopySystem() *syntax.Module {
	m := syntax.NewModule()
	m.MustDefine(syntax.Def{
		Name: NameCopier,
		Body: in("input", "x", nat(), out("wire", syntax.Var{Name: "x"}, ref(NameCopier))),
	})
	m.MustDefine(syntax.Def{
		Name: NameRecopier,
		Body: in("wire", "y", nat(), out("output", syntax.Var{Name: "y"}, ref(NameRecopier))),
	})
	m.MustDefine(syntax.Def{
		Name: NameCopyNet,
		Body: syntax.Par{L: ref(NameCopier), R: ref(NameRecopier)},
	})
	m.MustDefine(syntax.Def{
		Name: NameCopySys,
		Body: syntax.Hiding{
			Channels: []syntax.ChanItem{{Name: "wire"}},
			Body:     ref(NameCopyNet),
		},
	})
	return m
}

// CopierSat is the paper's §2 claim "copier sat wire ≤ input".
func CopierSat() assertion.A {
	return assertion.PrefixLE(assertion.Chan("wire"), assertion.Chan("input"))
}

// CopierLenSat is the §2 claim "copier sat #input ≤ #wire + 1".
func CopierLenSat() assertion.A {
	return assertion.Cmp{
		Op: assertion.CLe,
		L:  assertion.Len{S: assertion.Chan("input")},
		R: assertion.Arith{
			Op: assertion.AAdd,
			L:  assertion.Len{S: assertion.Chan("wire")},
			R:  assertion.Int(1),
		},
	}
}

// RecopierSat is "recopier sat output ≤ wire".
func RecopierSat() assertion.A {
	return assertion.PrefixLE(assertion.Chan("output"), assertion.Chan("wire"))
}

// CopyNetSat is the §2.1 rule-8 example conclusion
// "(copier ‖ recopier) sat output ≤ input", equally valid for copysys
// after hiding (rule 9).
func CopyNetSat() assertion.A {
	return assertion.PrefixLE(assertion.Chan("output"), assertion.Chan("input"))
}

// MessageSet is the protocol's message set M. The paper leaves M abstract;
// we use the finite range {0..width-1} (width ≥ 1).
func MessageSet(width int64) syntax.SetExpr {
	return syntax.RangeSet{Lo: syntax.IntLit{Val: 0}, Hi: syntax.IntLit{Val: width - 1}}
}

// ProtocolSystem returns the module defining the §1.3(2)–(4) protocol over
// the message set M = {0..mWidth-1}:
//
//	sender = input?x:M -> q[x]
//	q[x:M] = wire!x -> ( wire?y:{ACK} -> sender
//	                   | wire?y:{NACK} -> q[x] )
//	receiver = wire?z:M -> ( wire!ACK -> output!z -> receiver
//	                       | wire!NACK -> receiver )
//	protonet = sender || receiver
//	protocol = chan wire; protonet
func ProtocolSystem(mWidth int64) *syntax.Module {
	m := syntax.NewModule()
	m.DefineSet("M", MessageSet(mWidth))
	msgs := syntax.SetName{Name: "M"}
	ackSet := syntax.EnumSet{Elems: []syntax.Expr{syntax.SymLit{Name: "ACK"}}}
	nackSet := syntax.EnumSet{Elems: []syntax.Expr{syntax.SymLit{Name: "NACK"}}}

	m.MustDefine(syntax.Def{
		Name: NameSender,
		Body: in("input", "x", msgs, syntax.Ref{Name: NameQ, Sub: syntax.Var{Name: "x"}}),
	})
	m.MustDefine(syntax.Def{
		Name:     NameQ,
		Param:    "x",
		ParamDom: msgs,
		Body: out("wire", syntax.Var{Name: "x"}, syntax.Alt{
			L: in("wire", "y", ackSet, ref(NameSender)),
			R: in("wire", "y", nackSet, syntax.Ref{Name: NameQ, Sub: syntax.Var{Name: "x"}}),
		}),
	})
	m.MustDefine(syntax.Def{
		Name: NameReceiver,
		Body: in("wire", "z", msgs, syntax.Alt{
			L: out("wire", syntax.SymLit{Name: "ACK"},
				out("output", syntax.Var{Name: "z"}, ref(NameReceiver))),
			R: out("wire", syntax.SymLit{Name: "NACK"}, ref(NameReceiver)),
		}),
	})
	m.MustDefine(syntax.Def{
		Name: NameProtoNet,
		Body: syntax.Par{L: ref(NameSender), R: ref(NameReceiver)},
	})
	m.MustDefine(syntax.Def{
		Name: NameProtocol,
		Body: syntax.Hiding{
			Channels: []syntax.ChanItem{{Name: "wire"}},
			Body:     ref(NameProtoNet),
		},
	})
	return m
}

// SenderSat is §2.2(1): "sender sat f(wire) ≤ input".
func SenderSat() assertion.A {
	return assertion.PrefixLE(
		assertion.Apply{Fn: "f", Args: []assertion.Term{assertion.Chan("wire")}},
		assertion.Chan("input"),
	)
}

// QSat is the per-element lemma of Table 1:
// "∀x∈M. q[x] sat f(wire) ≤ x⌢input". The variable x is left free here;
// checkers instantiate it over M.
func QSat() assertion.A {
	return assertion.PrefixLE(
		assertion.Apply{Fn: "f", Args: []assertion.Term{assertion.Chan("wire")}},
		assertion.Cons{Head: assertion.Var("x"), Tail: assertion.Chan("input")},
	)
}

// ReceiverSat is §2.2(2): "receiver sat output ≤ f(wire)" (the exercise).
func ReceiverSat() assertion.A {
	return assertion.PrefixLE(
		assertion.Chan("output"),
		assertion.Apply{Fn: "f", Args: []assertion.Term{assertion.Chan("wire")}},
	)
}

// ProtocolSat is §2.2(3): "protocol sat output ≤ input".
func ProtocolSat() assertion.A {
	return assertion.PrefixLE(assertion.Chan("output"), assertion.Chan("input"))
}

// MultiplierSystem returns the module for the §1.3(5) pipeline computing
// the scalar products of matrix rows with a fixed vector v[1..3]:
//
//	mult[i:1..3] = row[i]?x:NAT -> col[i-1]?y:NAT ->
//	               col[i]!(v[i]*x + y) -> mult[i]
//	zeroes = col[0]!0 -> zeroes
//	last   = col[3]?y:NAT -> output!y -> last
//	network = zeroes || mult[1] || mult[2] || mult[3] || last
//	multiplier = chan col[0..3]; network
//
// v must have exactly 3 elements (v[1], v[2], v[3]).
func MultiplierSystem(v []int64) *syntax.Module {
	if len(v) != 3 {
		panic("paper: multiplier vector must have 3 elements")
	}
	m := syntax.NewModule()
	m.DefineArray(syntax.ValueArray{Name: "v", Lo: 1, Elems: v})
	oneTo3 := syntax.RangeSet{Lo: syntax.IntLit{Val: 1}, Hi: syntax.IntLit{Val: 3}}
	i := syntax.Var{Name: "i"}

	rowI := syntax.ChanRef{Name: "row", Sub: i}
	colPrev := syntax.ChanRef{Name: "col", Sub: syntax.Binary{Op: syntax.OpSub, L: i, R: syntax.IntLit{Val: 1}}}
	colI := syntax.ChanRef{Name: "col", Sub: i}
	prod := syntax.Binary{
		Op: syntax.OpAdd,
		L:  syntax.Binary{Op: syntax.OpMul, L: syntax.Index{Name: "v", Sub: i}, R: syntax.Var{Name: "x"}},
		R:  syntax.Var{Name: "y"},
	}
	m.MustDefine(syntax.Def{
		Name:     NameMult,
		Param:    "i",
		ParamDom: oneTo3,
		Body: syntax.Input{Ch: rowI, Var: "x", Dom: nat(), Cont: syntax.Input{
			Ch: colPrev, Var: "y", Dom: nat(), Cont: syntax.Output{
				Ch: colI, Val: prod, Cont: syntax.Ref{Name: NameMult, Sub: i},
			},
		}},
	})
	m.MustDefine(syntax.Def{
		Name: NameZeroes,
		Body: syntax.Output{
			Ch:   syntax.ChanRef{Name: "col", Sub: syntax.IntLit{Val: 0}},
			Val:  syntax.IntLit{Val: 0},
			Cont: ref(NameZeroes),
		},
	})
	m.MustDefine(syntax.Def{
		Name: NameLast,
		Body: syntax.Input{
			Ch:  syntax.ChanRef{Name: "col", Sub: syntax.IntLit{Val: 3}},
			Var: "y", Dom: nat(),
			Cont: out("output", syntax.Var{Name: "y"}, ref(NameLast)),
		},
	})
	m.MustDefine(syntax.Def{
		Name: NameNetwork,
		Body: syntax.ParAll(
			ref(NameZeroes),
			syntax.Ref{Name: NameMult, Sub: syntax.IntLit{Val: 1}},
			syntax.Ref{Name: NameMult, Sub: syntax.IntLit{Val: 2}},
			syntax.Ref{Name: NameMult, Sub: syntax.IntLit{Val: 3}},
			ref(NameLast),
		),
	})
	m.MustDefine(syntax.Def{
		Name: NameMultiplier,
		Body: syntax.Hiding{
			Channels: []syntax.ChanItem{{
				Name: "col",
				Lo:   syntax.IntLit{Val: 0},
				Hi:   syntax.IntLit{Val: 3},
			}},
			Body: ref(NameNetwork),
		},
	})
	return m
}

// MultiplierSat is the paper's §2 invariant for the multiplier:
//
//	∀i: 1 ≤ i ≤ #output ⇒ outputᵢ = Σ_{j=1..3} v[j] · row[j]ᵢ
//
// expressed with a range quantifier whose upper bound is #output.
func MultiplierSat() assertion.A {
	i := assertion.Var("i")
	j := "j"
	body := assertion.Eq(
		assertion.At{S: assertion.Chan("output"), Idx: i},
		assertion.Sum{
			Var: j,
			Lo:  assertion.Int(1),
			Hi:  assertion.Int(3),
			Body: assertion.Arith{
				Op: assertion.AMul,
				L:  assertion.ConstIndex{Name: "v", Sub: assertion.Var(j)},
				R:  assertion.At{S: assertion.ChanIdx("row", assertion.Var(j)), Idx: i},
			},
		},
	)
	return assertion.ForAllRange{
		Var:  "i",
		Lo:   assertion.Int(1),
		Hi:   assertion.Len{S: assertion.Chan("output")},
		Body: body,
	}
}
