package paper_test

import (
	"strings"
	"testing"

	"cspsat/internal/op"
	"cspsat/internal/paper"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
	"cspsat/internal/trace"
	"cspsat/internal/value"
)

func TestCopySystemShape(t *testing.T) {
	m := paper.CopySystem()
	for _, name := range []string{paper.NameCopier, paper.NameRecopier, paper.NameCopyNet, paper.NameCopySys} {
		if _, ok := m.Lookup(name); !ok {
			t.Errorf("missing definition %q", name)
		}
	}
	d, _ := m.Lookup(paper.NameCopier)
	if got := d.Body.String(); got != "input?x:NAT -> wire!x -> copier" {
		t.Errorf("copier body = %q", got)
	}
}

func TestProtocolSystemShape(t *testing.T) {
	m := paper.ProtocolSystem(2)
	q, ok := m.Lookup(paper.NameQ)
	if !ok || !q.IsArray() || q.Param != "x" {
		t.Fatalf("q definition wrong: %+v", q)
	}
	if got := q.Body.String(); !strings.Contains(got, "wire?y:{ACK}") || !strings.Contains(got, "wire?y:{NACK}") {
		t.Errorf("q body = %q", got)
	}
	if _, ok := m.Sets["M"]; !ok {
		t.Error("message set M not declared")
	}
}

func TestMultiplierSystemShape(t *testing.T) {
	m := paper.MultiplierSystem([]int64{5, 3, 2})
	arr, ok := m.Arrays["v"]
	if !ok || arr.Lo != 1 || len(arr.Elems) != 3 {
		t.Fatalf("vector v wrong: %+v", arr)
	}
	mult, ok := m.Lookup(paper.NameMult)
	if !ok || !mult.IsArray() {
		t.Fatal("mult not an array definition")
	}
	defer func() {
		if recover() == nil {
			t.Error("wrong-length vector accepted")
		}
	}()
	paper.MultiplierSystem([]int64{1, 2})
}

func TestBufferChain(t *testing.T) {
	// n=1 degenerates to a single buffer with no hiding.
	m1 := paper.BufferChain(1)
	d, _ := m1.Lookup(paper.NameChainSys)
	if _, isHide := d.Body.(syntax.Hiding); isHide {
		t.Error("n=1 chain should not hide anything")
	}
	// n=3: three buffers, hidden internals, behaves like a 3-place buffer.
	m3 := paper.BufferChain(3)
	env := sem.NewEnv(m3, 2)
	set, err := op.Traces(syntax.Ref{Name: paper.NameChainSys}, env, 4)
	if err != nil {
		t.Fatal(err)
	}
	// It can absorb three inputs before any output...
	three := trace.T{}
	for i := 0; i < 3; i++ {
		three = three.Append(trace.Event{Chan: "input", Msg: value.Int(0)})
	}
	if !set.Contains(three) {
		t.Errorf("3-chain cannot absorb 3 inputs: %s", set)
	}
	// ...and every output copies an input.
	for _, tr := range set.Traces() {
		h := trace.Ch(tr)
		if !trace.IsPrefixSeq(h.Get("output"), h.Get("input")) {
			t.Fatalf("chain violates output <= input on %s", tr)
		}
	}
	// No internal channels leak.
	for _, tr := range set.Traces() {
		for _, e := range tr {
			if e.Chan != "input" && e.Chan != "output" {
				t.Fatalf("internal channel %s visible", e.Chan)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("BufferChain(0) accepted")
		}
	}()
	paper.BufferChain(0)
}

func TestSpecConstantsParseIdentically(t *testing.T) {
	// Exercised in depth by internal/parser tests; here just pin that the
	// constants are non-empty and mention their systems.
	if !strings.Contains(paper.CopierSpec, "copier =") ||
		!strings.Contains(paper.ProtocolSpec, "protocol =") ||
		!strings.Contains(paper.MultiplierSpec, "multiplier =") {
		t.Error("spec constants drifted")
	}
}
