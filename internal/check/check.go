// Package check is the model checker: it decides "P sat R" by exhaustive
// enumeration of P's traces to a depth bound, evaluating R on the channel
// histories ch(s) of every trace — which is exactly the paper's semantics
// of sat (§3.3): ρ⟦P sat R⟧ = ∀s. s ∈ ρ⟦P⟧ ⇒ (ρ + ch(s))⟦R⟧, restricted to
// traces of bounded length over the sampled message domains.
//
// A failure is therefore a genuine counterexample; a pass is exhaustive up
// to the recorded bound. The package also provides trace refinement and
// trace equivalence between processes.
package check

import (
	"context"
	"fmt"

	"cspsat/internal/assertion"
	"cspsat/internal/closure"
	"cspsat/internal/op"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
	"cspsat/internal/trace"
	"cspsat/internal/value"
)

// Violation is a counterexample to P sat R: a trace of P whose history
// falsifies R.
type Violation struct {
	Trace trace.T
	Hist  trace.History
}

func (v *Violation) String() string {
	return fmt.Sprintf("trace %s gives %s", v.Trace, v.Hist)
}

// Result reports the outcome of a Sat check.
type Result struct {
	// OK is true when every explored trace satisfied the assertion.
	OK bool
	// Counter holds the first violating trace when OK is false.
	Counter *Violation
	// TracesChecked counts the traces (including all prefixes) examined.
	TracesChecked int
	// Depth is the trace-length bound the check is exhaustive up to.
	Depth int
}

func (r Result) String() string {
	if r.OK {
		return fmt.Sprintf("sat holds on all %d traces up to depth %d", r.TracesChecked, r.Depth)
	}
	return fmt.Sprintf("sat VIOLATED: %s (after %d traces, depth %d)", r.Counter, r.TracesChecked, r.Depth)
}

// Checker bundles the pieces a Sat check needs. The zero value is not
// usable; construct with New.
type Checker struct {
	env   sem.Env
	funcs *assertion.Registry
	depth int

	// Ctx, when non-nil, bounds every trace enumeration this checker runs;
	// once done, checks return an error wrapping csperr.ErrCanceled.
	Ctx context.Context
	// Workers > 1 fans the trace exploration's BFS frontier across a
	// worker pool (see op.Explorer.Workers); the results are node-identical
	// to the serial path.
	Workers int
}

// New returns a checker over the module environment with the given trace
// depth bound. funcs may be nil when assertions use no registered functions.
func New(env sem.Env, funcs *assertion.Registry, depth int) *Checker {
	if funcs == nil {
		funcs = assertion.NewRegistry()
	}
	return &Checker{env: env, funcs: funcs, depth: depth}
}

// Env returns the checker's environment.
func (c *Checker) Env() sem.Env { return c.env }

// Funcs returns the checker's function registry.
func (c *Checker) Funcs() *assertion.Registry { return c.funcs }

// Depth returns the trace-length bound.
func (c *Checker) Depth() int { return c.depth }

// traces enumerates p's traces under the checker's context and worker
// configuration.
func (c *Checker) traces(p syntax.Proc) (*closure.Set, error) {
	ctx := c.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	return op.TracesContext(ctx, p, c.env, c.depth, c.Workers)
}

// Sat checks P sat R: every trace of p (to the depth bound) must satisfy a.
// Free variables of a must be bound in the checker's environment or
// quantified inside a; use SatForAll for the paper's implicitly quantified
// shared variables.
func (c *Checker) Sat(p syntax.Proc, a assertion.A) (Result, error) {
	traces, err := c.traces(p)
	if err != nil {
		return Result{}, fmt.Errorf("check: enumerating traces of %s: %w", p, err)
	}
	res := Result{OK: true, Depth: c.depth}
	// The history is maintained incrementally across the DFS rather than
	// recomputed as ch(s) per trace: push appends the message, pop trims it.
	hist := make(trace.History)
	ctx := assertion.NewCtx(c.env, hist, c.funcs)
	var evalErr error
	traces.WalkDFS(
		func(path trace.T) bool {
			res.TracesChecked++
			ok, err := assertion.Eval(a, ctx)
			if err != nil {
				evalErr = fmt.Errorf("check: evaluating %s after %s: %w", a, path, err)
				return false
			}
			if !ok {
				cp := make(trace.T, len(path))
				copy(cp, path)
				res.OK = false
				res.Counter = &Violation{Trace: cp, Hist: hist.Clone()}
				return false
			}
			return true
		},
		func(ev trace.Event) { hist[ev.Chan] = append(hist[ev.Chan], ev.Msg) },
		func(ev trace.Event) { hist[ev.Chan] = hist[ev.Chan][:len(hist[ev.Chan])-1] },
	)
	if evalErr != nil {
		return Result{}, evalErr
	}
	return res, nil
}

// SatForAll checks "∀x∈dom. P[x] sat R[x]" by instantiating the shared
// variable x with every value of the (sampled) domain — the paper's reading
// of a free variable occurring in both P and R.
func (c *Checker) SatForAll(x string, dom value.Domain, p syntax.Proc, a assertion.A) (Result, error) {
	var total Result
	total.OK = true
	total.Depth = c.depth
	for _, v := range dom.Enumerate() {
		inst := syntax.SubstProc(p, x, sem.ValueToExpr(v))
		instA := assertion.SubstVar(a, x, assertion.Lit{Val: v})
		r, err := c.Sat(inst, instA)
		if err != nil {
			return Result{}, fmt.Errorf("check: instance %s=%v: %w", x, v, err)
		}
		total.TracesChecked += r.TracesChecked
		if !r.OK {
			r.TracesChecked = total.TracesChecked
			return r, nil
		}
	}
	return total, nil
}

// RefineResult reports a trace-refinement check.
type RefineResult struct {
	OK bool
	// Witness is a trace of the implementation that the specification
	// cannot perform, when OK is false.
	Witness trace.T
	Depth   int
}

func (r RefineResult) String() string {
	if r.OK {
		return fmt.Sprintf("refinement holds up to depth %d", r.Depth)
	}
	return fmt.Sprintf("refinement FAILS: impl performs %s which spec cannot (depth %d)", r.Witness, r.Depth)
}

// Refines checks traces(impl) ⊆ traces(spec) up to the depth bound — trace
// refinement, the natural ordering of the paper's prefix-closure model.
func (c *Checker) Refines(impl, spec syntax.Proc) (RefineResult, error) {
	ti, err := c.traces(impl)
	if err != nil {
		return RefineResult{}, err
	}
	ts, err := c.traces(spec)
	if err != nil {
		return RefineResult{}, err
	}
	if w := ti.FirstNotIn(ts); w != nil {
		return RefineResult{OK: false, Witness: w, Depth: c.depth}, nil
	}
	return RefineResult{OK: true, Depth: c.depth}, nil
}

// Deadlocks searches for reachable stuck configurations to the depth
// bound. A sat-check cannot see them (the paper's §4 limitation: STOP
// satisfies every satisfiable assertion); this is the complementary
// analysis that can.
func (c *Checker) Deadlocks(p syntax.Proc) ([]op.Deadlock, error) {
	return op.FindDeadlocks(op.NewState(p, c.env), c.depth)
}

// Equivalent checks trace equivalence of two processes up to the depth
// bound. In the prefix-closure model equivalence is mutual refinement; the
// paper's §4 observation that STOP | P = P is checkable this way.
func (c *Checker) Equivalent(p, q syntax.Proc) (RefineResult, error) {
	r1, err := c.Refines(p, q)
	if err != nil {
		return RefineResult{}, err
	}
	if !r1.OK {
		return r1, nil
	}
	return c.Refines(q, p)
}
