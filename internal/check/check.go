// Package check is the model checker: it decides "P sat R" by exhaustive
// enumeration of P's traces to a depth bound, evaluating R on the channel
// histories ch(s) of every trace — which is exactly the paper's semantics
// of sat (§3.3): ρ⟦P sat R⟧ = ∀s. s ∈ ρ⟦P⟧ ⇒ (ρ + ch(s))⟦R⟧, restricted to
// traces of bounded length over the sampled message domains.
//
// A failure is therefore a genuine counterexample; a pass is exhaustive up
// to the recorded bound. The package also provides trace refinement and
// trace equivalence between processes.
package check

import (
	"context"
	"fmt"

	"cspsat/internal/assertion"
	"cspsat/internal/closure"
	"cspsat/internal/failures"
	"cspsat/internal/model"
	"cspsat/internal/op"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
	"cspsat/internal/trace"
	"cspsat/internal/value"
)

// Violation is a counterexample to P sat R: a trace of P whose history
// falsifies R.
type Violation struct {
	Trace trace.T
	Hist  trace.History
}

func (v *Violation) String() string {
	return fmt.Sprintf("trace %s gives %s", v.Trace, v.Hist)
}

// Result reports the outcome of a Sat check.
type Result struct {
	// OK is true when every explored trace satisfied the assertion.
	OK bool
	// Counter holds the first violating trace when OK is false and the
	// violation is a history one.
	Counter *Violation
	// Refusal holds the violating stable state when OK is false and the
	// assertion was behavioural (deadlockfree / offers) checked under the
	// failures model.
	Refusal *failures.CheckResult
	// Vacuous reports that a behavioural assertion was checked under the
	// trace model, where it holds for want of expressiveness (the paper's
	// §4: STOP satisfies every satisfiable trace assertion). OK is true
	// but the verdict says nothing about refusals.
	Vacuous bool
	// Model is the semantic model the verdict was computed under.
	Model model.Model
	// TracesChecked counts the traces (including all prefixes) examined.
	TracesChecked int
	// Depth is the trace-length bound the check is exhaustive up to.
	Depth int
}

func (r Result) String() string {
	if r.OK {
		if r.Vacuous {
			return fmt.Sprintf("sat holds vacuously under the trace model (refusals invisible; re-check with the failures model), depth %d", r.Depth)
		}
		return fmt.Sprintf("sat holds on all %d traces up to depth %d", r.TracesChecked, r.Depth)
	}
	if r.Refusal != nil {
		return fmt.Sprintf("sat VIOLATED: %s", r.Refusal)
	}
	return fmt.Sprintf("sat VIOLATED: %s (after %d traces, depth %d)", r.Counter, r.TracesChecked, r.Depth)
}

// Checker bundles the pieces a Sat check needs. The zero value is not
// usable; construct with New.
type Checker struct {
	env   sem.Env
	funcs *assertion.Registry
	depth int

	// Ctx, when non-nil, bounds every trace enumeration this checker runs;
	// once done, checks return an error wrapping csperr.ErrCanceled.
	Ctx context.Context
	// Workers > 1 fans the trace exploration's BFS frontier across a
	// worker pool (see op.Explorer.Workers); the results are node-identical
	// to the serial path.
	Workers int
	// Model selects the semantic model verdicts are computed under. The
	// zero value is the trace model of the paper; model.Failures switches
	// Refines/Equivalent to stable-failures refinement and discharges
	// behavioural assertions (deadlockfree, offers) against the failures
	// model instead of vacuously.
	Model model.Model
}

// New returns a checker over the module environment with the given trace
// depth bound. funcs may be nil when assertions use no registered functions.
func New(env sem.Env, funcs *assertion.Registry, depth int) *Checker {
	if funcs == nil {
		funcs = assertion.NewRegistry()
	}
	return &Checker{env: env, funcs: funcs, depth: depth}
}

// Env returns the checker's environment.
func (c *Checker) Env() sem.Env { return c.env }

// Funcs returns the checker's function registry.
func (c *Checker) Funcs() *assertion.Registry { return c.funcs }

// Depth returns the trace-length bound.
func (c *Checker) Depth() int { return c.depth }

// traces enumerates p's traces under the checker's context and worker
// configuration.
func (c *Checker) traces(p syntax.Proc) (*closure.Set, error) {
	ctx := c.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	return op.TracesContext(ctx, p, c.env, c.depth, c.Workers)
}

// Sat checks P sat R: every trace of p (to the depth bound) must satisfy a.
// Free variables of a must be bound in the checker's environment or
// quantified inside a; use SatForAll for the paper's implicitly quantified
// shared variables.
func (c *Checker) Sat(p syntax.Proc, a assertion.A) (Result, error) {
	if assertion.Behavioural(a) {
		return c.satBehavioural(p, a)
	}
	traces, err := c.traces(p)
	if err != nil {
		return Result{}, fmt.Errorf("check: enumerating traces of %s: %w", p, err)
	}
	res := Result{OK: true, Depth: c.depth, Model: c.Model}
	// The history is maintained incrementally across the DFS rather than
	// recomputed as ch(s) per trace: push appends the message, pop trims it.
	hist := make(trace.History)
	ctx := assertion.NewCtx(c.env, hist, c.funcs)
	var evalErr error
	traces.WalkDFS(
		func(path trace.T) bool {
			res.TracesChecked++
			ok, err := assertion.Eval(a, ctx)
			if err != nil {
				evalErr = fmt.Errorf("check: evaluating %s after %s: %w", a, path, err)
				return false
			}
			if !ok {
				cp := make(trace.T, len(path))
				copy(cp, path)
				res.OK = false
				res.Counter = &Violation{Trace: cp, Hist: hist.Clone()}
				return false
			}
			return true
		},
		func(ev trace.Event) { hist[ev.Chan] = append(hist[ev.Chan], ev.Msg) },
		func(ev trace.Event) { hist[ev.Chan] = hist[ev.Chan][:len(hist[ev.Chan])-1] },
	)
	if evalErr != nil {
		return Result{}, evalErr
	}
	return res, nil
}

// satBehavioural discharges a refusal-level assertion. Under the trace
// model the verdict is vacuously OK — traces cannot see refusals, which is
// the paper's §4 limitation this form exists to escape. Under the failures
// model the process's acceptance families are computed and checked.
func (c *Checker) satBehavioural(p syntax.Proc, a assertion.A) (Result, error) {
	if c.Model != model.Failures {
		return Result{OK: true, Vacuous: true, Depth: c.depth, Model: c.Model}, nil
	}
	fm, err := c.failuresModel(p)
	if err != nil {
		return Result{}, err
	}
	var fr failures.CheckResult
	switch x := a.(type) {
	case assertion.DeadlockFree:
		fr = fm.CheckDeadlockFree()
	case assertion.Offers:
		chans := make([]trace.Chan, len(x.Chans))
		for i, ch := range x.Chans {
			chans[i] = trace.Chan(ch)
		}
		fr = fm.CheckOffers(chans)
	default:
		return Result{}, fmt.Errorf("check: unknown behavioural assertion %T", a)
	}
	res := Result{OK: fr.OK, Depth: c.depth, Model: c.Model, TracesChecked: len(fm.Traces())}
	if !fr.OK {
		fr := fr
		res.Refusal = &fr
	}
	return res, nil
}

// failuresModel computes p's stable-failures model under the checker's
// context and depth bound.
func (c *Checker) failuresModel(p syntax.Proc) (*failures.Model, error) {
	ctx := c.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	fm, err := failures.ComputeContext(ctx, p, c.env, c.depth)
	if err != nil {
		return nil, fmt.Errorf("check: computing failures of %s: %w", p, err)
	}
	return fm, nil
}

// SatForAll checks "∀x∈dom. P[x] sat R[x]" by instantiating the shared
// variable x with every value of the (sampled) domain — the paper's reading
// of a free variable occurring in both P and R.
func (c *Checker) SatForAll(x string, dom value.Domain, p syntax.Proc, a assertion.A) (Result, error) {
	var total Result
	total.OK = true
	total.Depth = c.depth
	for _, v := range dom.Enumerate() {
		inst := syntax.SubstProc(p, x, sem.ValueToExpr(v))
		instA := assertion.SubstVar(a, x, assertion.Lit{Val: v})
		r, err := c.Sat(inst, instA)
		if err != nil {
			return Result{}, fmt.Errorf("check: instance %s=%v: %w", x, v, err)
		}
		total.TracesChecked += r.TracesChecked
		if !r.OK {
			r.TracesChecked = total.TracesChecked
			return r, nil
		}
	}
	return total, nil
}

// RefineResult reports a refinement check under some semantic model.
type RefineResult struct {
	OK bool
	// Witness is a trace of the implementation that the specification
	// cannot perform, when OK is false. Set under both models (a failures
	// counterexample always includes its trace).
	Witness trace.T
	// Failure is the violating stable failure (s, X) when OK is false and
	// the check ran under the failures model: after Witness the
	// implementation can stably refuse everything outside
	// Failure.ImplAcceptance, which no acceptance of the specification
	// permits. Nil under the trace model, and nil under the failures model
	// when the violation was already at the trace level.
	Failure *failures.Counterexample
	// Model is the semantic model the verdict was computed under.
	Model model.Model
	Depth int
}

func (r RefineResult) String() string {
	if r.OK {
		return fmt.Sprintf("%s refinement holds up to depth %d", r.Model, r.Depth)
	}
	if r.Failure != nil && r.Failure.ImplAcceptance != nil {
		return fmt.Sprintf("%s refinement FAILS: after %s impl stably offers only %s, which spec never permits (depth %d)",
			r.Model, r.Witness, r.Failure.ImplAcceptance, r.Depth)
	}
	return fmt.Sprintf("%s refinement FAILS: impl performs %s which spec cannot (depth %d)", r.Model, r.Witness, r.Depth)
}

// Refines checks refinement of impl against spec up to the depth bound
// under the checker's model: trace refinement (traces(impl) ⊆ traces(spec),
// the natural ordering of the paper's prefix-closure model) by default, or
// stable-failures refinement under model.Failures.
func (c *Checker) Refines(impl, spec syntax.Proc) (RefineResult, error) {
	if c.Model == model.Failures {
		return c.refinesFailures(impl, spec)
	}
	ti, err := c.traces(impl)
	if err != nil {
		return RefineResult{}, err
	}
	ts, err := c.traces(spec)
	if err != nil {
		return RefineResult{}, err
	}
	if w := ti.FirstNotIn(ts); w != nil {
		return RefineResult{OK: false, Witness: w, Depth: c.depth, Model: c.Model}, nil
	}
	return RefineResult{OK: true, Depth: c.depth, Model: c.Model}, nil
}

// refinesFailures checks stable-failures refinement: trace inclusion plus,
// after every shared trace, every stable acceptance of the implementation
// must include some acceptance of the specification (so the implementation
// never refuses a set the specification must accept).
func (c *Checker) refinesFailures(impl, spec syntax.Proc) (RefineResult, error) {
	fi, err := c.failuresModel(impl)
	if err != nil {
		return RefineResult{}, err
	}
	fs, err := c.failuresModel(spec)
	if err != nil {
		return RefineResult{}, err
	}
	cex, err := failures.Refines(fi, fs)
	if err != nil {
		return RefineResult{}, err
	}
	if cex != nil {
		return RefineResult{OK: false, Witness: cex.Trace, Failure: cex, Depth: c.depth, Model: c.Model}, nil
	}
	return RefineResult{OK: true, Depth: c.depth, Model: c.Model}, nil
}

// Deadlocks searches for reachable stuck configurations to the depth
// bound. A sat-check cannot see them (the paper's §4 limitation: STOP
// satisfies every satisfiable assertion); this is the complementary
// analysis that can.
func (c *Checker) Deadlocks(p syntax.Proc) ([]op.Deadlock, error) {
	return op.FindDeadlocks(op.NewState(p, c.env), c.depth)
}

// Equivalent checks trace equivalence of two processes up to the depth
// bound. In the prefix-closure model equivalence is mutual refinement; the
// paper's §4 observation that STOP | P = P is checkable this way.
func (c *Checker) Equivalent(p, q syntax.Proc) (RefineResult, error) {
	r1, err := c.Refines(p, q)
	if err != nil {
		return RefineResult{}, err
	}
	if !r1.OK {
		return r1, nil
	}
	return c.Refines(q, p)
}
