package check_test

import (
	"testing"

	"cspsat/internal/assertion"
	"cspsat/internal/check"
	"cspsat/internal/paper"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
	"cspsat/internal/value"
)

func TestCopierSatisfiesPaperClaims(t *testing.T) {
	m := paper.CopySystem()
	env := sem.NewEnv(m, 3)
	c := check.New(env, nil, 8)

	tests := []struct {
		name string
		proc string
		a    assertion.A
	}{
		{"E1 copier sat wire<=input", paper.NameCopier, paper.CopierSat()},
		{"E2 copier sat #input<=#wire+1", paper.NameCopier, paper.CopierLenSat()},
		{"E3 recopier sat output<=wire", paper.NameRecopier, paper.RecopierSat()},
		{"E4 copynet sat output<=input", paper.NameCopyNet, paper.CopyNetSat()},
		{"E4 copysys sat output<=input", paper.NameCopySys, paper.CopyNetSat()},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			res, err := c.Sat(syntax.Ref{Name: tc.proc}, tc.a)
			if err != nil {
				t.Fatalf("Sat: %v", err)
			}
			if !res.OK {
				t.Fatalf("violated: %s", res)
			}
			if res.TracesChecked < 10 {
				t.Fatalf("suspiciously few traces checked: %d", res.TracesChecked)
			}
		})
	}
}

func TestCopierViolationDetected(t *testing.T) {
	m := paper.CopySystem()
	env := sem.NewEnv(m, 3)
	c := check.New(env, nil, 6)
	// The converse claim input ≤ wire is false once input runs ahead.
	bad := assertion.PrefixLE(assertion.Chan("input"), assertion.Chan("wire"))
	res, err := c.Sat(syntax.Ref{Name: paper.NameCopier}, bad)
	if err != nil {
		t.Fatalf("Sat: %v", err)
	}
	if res.OK {
		t.Fatal("expected a counterexample for input <= wire on copier")
	}
	if res.Counter == nil || len(res.Counter.Trace) == 0 {
		t.Fatalf("counterexample missing trace: %+v", res)
	}
}

func TestProtocolSatisfiesPaperClaims(t *testing.T) {
	m := paper.ProtocolSystem(2)
	env := sem.NewEnv(m, 2)
	c := check.New(env, nil, 8)

	t.Run("E5 sender sat f(wire)<=input", func(t *testing.T) {
		res, err := c.Sat(syntax.Ref{Name: paper.NameSender}, paper.SenderSat())
		if err != nil {
			t.Fatalf("Sat: %v", err)
		}
		if !res.OK {
			t.Fatalf("violated: %s", res)
		}
	})
	t.Run("E5 lemma forall x. q[x] sat f(wire)<=x^input", func(t *testing.T) {
		dom := value.IntRange{Lo: 0, Hi: 1}
		res, err := c.SatForAll("x", dom, syntax.Ref{Name: paper.NameQ, Sub: syntax.Var{Name: "x"}}, paper.QSat())
		if err != nil {
			t.Fatalf("SatForAll: %v", err)
		}
		if !res.OK {
			t.Fatalf("violated: %s", res)
		}
	})
	t.Run("E6 receiver sat output<=f(wire)", func(t *testing.T) {
		res, err := c.Sat(syntax.Ref{Name: paper.NameReceiver}, paper.ReceiverSat())
		if err != nil {
			t.Fatalf("Sat: %v", err)
		}
		if !res.OK {
			t.Fatalf("violated: %s", res)
		}
	})
	t.Run("E7 protocol sat output<=input", func(t *testing.T) {
		res, err := c.Sat(syntax.Ref{Name: paper.NameProtocol}, paper.ProtocolSat())
		if err != nil {
			t.Fatalf("Sat: %v", err)
		}
		if !res.OK {
			t.Fatalf("violated: %s", res)
		}
		if res.TracesChecked < 10 {
			t.Fatalf("suspiciously few traces: %d", res.TracesChecked)
		}
	})
}

func TestMultiplierScalarProduct(t *testing.T) {
	m := paper.MultiplierSystem([]int64{5, 3, 2})
	env := sem.NewEnv(m, 2)
	// Depth 9 covers one full pipeline round (3 row inputs + 1 output plus
	// slack for interleavings of the second round's inputs).
	c := check.New(env, nil, 9)
	res, err := c.Sat(syntax.Ref{Name: paper.NameMultiplier}, paper.MultiplierSat())
	if err != nil {
		t.Fatalf("Sat: %v", err)
	}
	if !res.OK {
		t.Fatalf("violated: %s", res)
	}
	if res.TracesChecked < 10 {
		t.Fatalf("suspiciously few traces: %d", res.TracesChecked)
	}
}

func TestRefinementAndEquivalence(t *testing.T) {
	m := paper.CopySystem()
	env := sem.NewEnv(m, 2)
	c := check.New(env, nil, 6)

	copier := syntax.Ref{Name: paper.NameCopier}
	// E10: STOP | P is trace-equivalent to P (the §4 defect).
	r, err := c.Equivalent(syntax.Alt{L: syntax.Stop{}, R: copier}, copier)
	if err != nil {
		t.Fatalf("Equivalent: %v", err)
	}
	if !r.OK {
		t.Fatalf("STOP|copier should equal copier in the trace model: %s", r)
	}
	// STOP refines everything; copier does not refine STOP.
	r, err = c.Refines(syntax.Stop{}, copier)
	if err != nil || !r.OK {
		t.Fatalf("STOP should refine copier: %v %s", err, r)
	}
	r, err = c.Refines(copier, syntax.Stop{})
	if err != nil {
		t.Fatalf("Refines: %v", err)
	}
	if r.OK {
		t.Fatal("copier must not refine STOP")
	}
}
