package runtime_test

import (
	"errors"
	"testing"

	"cspsat/internal/assertion"
	"cspsat/internal/op"
	"cspsat/internal/paper"
	"cspsat/internal/runtime"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
	"cspsat/internal/trace"
	"cspsat/internal/value"
)

func TestRunCopierNetwork(t *testing.T) {
	m := paper.CopySystem()
	env := sem.NewEnv(m, 3)
	res, err := runtime.Run(syntax.Ref{Name: paper.NameCopyNet}, runtime.Config{
		Env: env, Seed: 1, MaxEvents: 60,
		Monitor: runtime.MonitorSat(paper.CopyNetSat(), env, nil),
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.MonitorErr != nil {
		t.Fatalf("monitor: %v", res.MonitorErr)
	}
	if res.LeafCount != 2 {
		t.Fatalf("leaf count = %d, want 2", res.LeafCount)
	}
	if len(res.Trace) != 60 {
		t.Fatalf("trace length = %d, want 60 (free-running network)", len(res.Trace))
	}
	// Every run trace must be a trace of the operational semantics.
	hist := trace.Ch(res.Trace)
	if !trace.IsPrefixSeq(hist.Get("output"), hist.Get("wire")) {
		t.Errorf("output not a prefix of wire: %s", hist)
	}
	if !trace.IsPrefixSeq(hist.Get("wire"), hist.Get("input")) {
		t.Errorf("wire not a prefix of input: %s", hist)
	}
}

func TestRunCopySysHidesWire(t *testing.T) {
	m := paper.CopySystem()
	env := sem.NewEnv(m, 3)
	res, err := runtime.Run(syntax.Ref{Name: paper.NameCopySys}, runtime.Config{
		Env: env, Seed: 7, MaxEvents: 50,
		Monitor: runtime.MonitorSat(paper.CopyNetSat(), env, nil),
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.MonitorErr != nil {
		t.Fatalf("monitor: %v", res.MonitorErr)
	}
	sawHidden := false
	for _, rec := range res.Events {
		if rec.Ev.Chan == "wire" {
			if !rec.Hidden {
				t.Fatalf("wire event not marked hidden: %v", rec)
			}
			sawHidden = true
		}
	}
	if !sawHidden {
		t.Fatal("no hidden wire events in 50 steps")
	}
	for _, ev := range res.Trace {
		if ev.Chan == "wire" {
			t.Fatalf("hidden channel leaked into visible trace: %s", res.Trace)
		}
	}
}

func TestRunProtocolMonitored(t *testing.T) {
	m := paper.ProtocolSystem(2)
	env := sem.NewEnv(m, 2)
	res, err := runtime.Run(syntax.Ref{Name: paper.NameProtocol}, runtime.Config{
		Env: env, Seed: 42, MaxEvents: 400,
		Monitor: runtime.MonitorSat(paper.ProtocolSat(), env, nil),
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.MonitorErr != nil {
		t.Fatalf("monitor: %v", res.MonitorErr)
	}
	hist := trace.Ch(res.Trace)
	if len(hist.Get("output")) == 0 {
		t.Fatal("protocol delivered nothing in 400 events")
	}
	if !trace.IsPrefixSeq(hist.Get("output"), hist.Get("input")) {
		t.Fatalf("output not a prefix of input: %s", hist)
	}
}

func TestRunMultiplierComputesScalarProducts(t *testing.T) {
	m := paper.MultiplierSystem([]int64{5, 3, 2})
	env := sem.NewEnv(m, 3)
	res, err := runtime.Run(syntax.Ref{Name: paper.NameMultiplier}, runtime.Config{
		Env: env, Seed: 3, MaxEvents: 300,
		Monitor: runtime.MonitorSat(paper.MultiplierSat(), env, nil),
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.MonitorErr != nil {
		t.Fatalf("monitor: %v", res.MonitorErr)
	}
	if res.LeafCount != 5 {
		t.Fatalf("leaf count = %d, want 5", res.LeafCount)
	}
	hist := trace.Ch(res.Trace)
	if len(hist.Get("output")) == 0 {
		t.Fatal("multiplier produced no outputs in 300 events")
	}
}

func TestMonitorCatchesViolation(t *testing.T) {
	m := paper.CopySystem()
	env := sem.NewEnv(m, 3)
	// The false claim input ≤ wire must be caught as soon as input leads.
	bad := assertion.PrefixLE(assertion.Chan("input"), assertion.Chan("wire"))
	res, err := runtime.Run(syntax.Ref{Name: paper.NameCopyNet}, runtime.Config{
		Env: env, Seed: 5, MaxEvents: 50,
		Monitor: runtime.MonitorSat(bad, env, nil),
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.MonitorErr == nil {
		t.Fatal("expected the monitor to flag the violation")
	}
	if !errors.Is(res.MonitorErr, runtime.ErrSatViolated) {
		t.Fatalf("monitor error %v does not wrap ErrSatViolated", res.MonitorErr)
	}
}

func TestQuiescenceOnStop(t *testing.T) {
	m := syntax.NewModule()
	m.MustDefine(syntax.Def{Name: "once", Body: syntax.Output{
		Ch: syntax.ChanRef{Name: "out"}, Val: syntax.IntLit{Val: 7}, Cont: syntax.Stop{},
	}})
	env := sem.NewEnv(m, 2)
	res, err := runtime.Run(syntax.Ref{Name: "once"}, runtime.Config{Env: env, Seed: 1})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.Quiescent {
		t.Fatal("expected quiescence after the single output")
	}
	want := trace.T{{Chan: "out", Msg: value.Int(7)}}
	if !res.Trace.Equal(want) {
		t.Fatalf("trace %s, want %s", res.Trace, want)
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	m := paper.ProtocolSystem(2)
	env := sem.NewEnv(m, 2)
	run := func() trace.T {
		res, err := runtime.Run(syntax.Ref{Name: paper.NameProtocol}, runtime.Config{
			Env: env, Seed: 99, MaxEvents: 200,
		})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res.Trace
	}
	a, b := run(), run()
	if !a.Equal(b) {
		t.Fatalf("same seed, different traces:\n  %s\n  %s", a, b)
	}
}

// TestRunTraceIsOpTrace replays runtime traces against the operational
// semantics: everything the concurrent execution does must be a trace the
// model admits.
func TestRunTraceIsOpTrace(t *testing.T) {
	m := paper.ProtocolSystem(2)
	env := sem.NewEnv(m, 2)
	for seed := int64(0); seed < 6; seed++ {
		res, err := runtime.Run(syntax.Ref{Name: paper.NameProtocol}, runtime.Config{
			Env: env, Seed: seed, MaxEvents: 12,
		})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		st := op.NewState(syntax.Ref{Name: paper.NameProtocol}, env)
		_, ok, err := op.VisibleEvents(st, res.Trace)
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		if !ok {
			t.Fatalf("seed %d: runtime trace %s is not an operational trace", seed, res.Trace)
		}
	}
}

func TestRunInternalChoice(t *testing.T) {
	// maybe = out!1 -> STOP |~| out!2 -> STOP: each run resolves the
	// choice internally and emits exactly one value; across seeds both
	// resolutions occur.
	m := syntax.NewModule()
	m.MustDefine(syntax.Def{Name: "maybe", Body: syntax.IChoice{
		L: syntax.Output{Ch: syntax.ChanRef{Name: "out"}, Val: syntax.IntLit{Val: 1}, Cont: syntax.Stop{}},
		R: syntax.Output{Ch: syntax.ChanRef{Name: "out"}, Val: syntax.IntLit{Val: 2}, Cont: syntax.Stop{}},
	}})
	env := sem.NewEnv(m, 2)
	seen := map[string]bool{}
	for seed := int64(0); seed < 10; seed++ {
		res, err := runtime.Run(syntax.Ref{Name: "maybe"}, runtime.Config{Env: env, Seed: seed, MaxEvents: 10})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Quiescent {
			t.Fatalf("seed %d: expected quiescence, got %v", seed, res.Events)
		}
		if len(res.Trace) != 1 || res.Trace[0].Chan != "out" {
			t.Fatalf("seed %d: trace %s", seed, res.Trace)
		}
		seen[res.Trace.String()] = true
		// The resolving τ-step is logged as hidden.
		if !res.Events[0].Hidden {
			t.Fatalf("seed %d: first event should be the hidden choice: %v", seed, res.Events)
		}
	}
	if len(seen) != 2 {
		t.Errorf("10 seeds resolved the choice one way only: %v", seen)
	}
}

// TestRuntimeBroadcast: the coordinator implements the paper's §1.2
// multiway synchronisation — one outputter, two inputters, one event.
func TestRuntimeBroadcast(t *testing.T) {
	m := syntax.NewModule()
	one := syntax.EnumSet{Elems: []syntax.Expr{syntax.IntLit{Val: 1}}}
	m.MustDefine(syntax.Def{Name: "src", Body: syntax.Output{
		Ch: syntax.ChanRef{Name: "c"}, Val: syntax.IntLit{Val: 1}, Cont: syntax.Stop{}}})
	m.MustDefine(syntax.Def{Name: "sink1", Body: syntax.Input{
		Ch: syntax.ChanRef{Name: "c"}, Var: "x", Dom: one,
		Cont: syntax.Output{Ch: syntax.ChanRef{Name: "d"}, Val: syntax.Var{Name: "x"}, Cont: syntax.Stop{}}}})
	m.MustDefine(syntax.Def{Name: "sink2", Body: syntax.Input{
		Ch: syntax.ChanRef{Name: "c"}, Var: "y", Dom: one,
		Cont: syntax.Output{Ch: syntax.ChanRef{Name: "e"}, Val: syntax.Var{Name: "y"}, Cont: syntax.Stop{}}}})
	m.MustDefine(syntax.Def{Name: "net", Body: syntax.ParAll(
		syntax.Ref{Name: "src"}, syntax.Ref{Name: "sink1"}, syntax.Ref{Name: "sink2"})})
	env := sem.NewEnv(m, 2)
	res, err := runtime.Run(syntax.Ref{Name: "net"}, runtime.Config{Env: env, Seed: 2, MaxEvents: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Quiescent || res.LeafCount != 3 {
		t.Fatalf("quiescent=%v leaves=%d", res.Quiescent, res.LeafCount)
	}
	if len(res.Trace) != 3 || res.Trace[0].Chan != "c" {
		t.Fatalf("trace = %s", res.Trace)
	}
	// The broadcast event had all three leaves as participants.
	if got := len(res.Events[0].Leaves); got != 3 {
		t.Fatalf("broadcast participants = %d, want 3", got)
	}
}
