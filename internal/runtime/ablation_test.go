package runtime_test

import (
	"sync"
	"testing"

	"cspsat/internal/assertion"
	"cspsat/internal/paper"
	"cspsat/internal/runtime"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
	"cspsat/internal/trace"
	"cspsat/internal/value"
)

// TestBufferedChannelsViolateSynchrony is the correctness ablation behind
// the runtime's coordinator design (DESIGN.md §5): implementing the
// copier's wire as a *buffered* Go channel — the "obvious" translation —
// produces observable event orders that the paper's synchronous semantics
// forbids, while the coordinator-based runtime never does.
//
// The copier satisfies #input ≤ #wire + 1 (§2, E2): it cannot accept a
// second input before relaying the first, because wire!x is a rendezvous.
// With a buffered wire the producer races ahead and the invariant breaks
// at the very first extra input.
func TestBufferedChannelsViolateSynchrony(t *testing.T) {
	// --- naive translation: buffered Go channel as the wire ---
	const bufSize = 4
	wire := make(chan int64, bufSize)
	var mu sync.Mutex
	hist := make(trace.History)
	var violation *string
	record := func(c trace.Chan, v int64) {
		mu.Lock()
		defer mu.Unlock()
		hist[c] = append(hist[c], value.Int(v))
		if len(hist["input"]) > len(hist["wire"])+1 && violation == nil {
			s := hist.String()
			violation = &s
		}
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // copier: input?x -> wire!x -> copier
		defer wg.Done()
		for i := int64(0); i < bufSize+1; i++ {
			record("input", i%3) // the input "communication"
			wire <- i % 3        // buffered: completes without a partner
		}
		close(wire)
	}()
	go func() { // recopier: wire?y -> output!y -> recopier
		defer wg.Done()
		for v := range wire {
			record("wire", v)
			record("output", v)
		}
	}()
	wg.Wait()

	if violation == nil {
		t.Fatal("buffered wire never violated #input <= #wire + 1; the ablation's premise is wrong")
	}
	t.Logf("buffered-channel violation observed: %s", *violation)

	// --- the coordinator-based runtime: same network, invariant holds ---
	env := sem.NewEnv(paper.CopySystem(), 3)
	lenInv := assertion.Cmp{
		Op: assertion.CLe,
		L:  assertion.Len{S: assertion.Chan("input")},
		R: assertion.Arith{
			Op: assertion.AAdd,
			L:  assertion.Len{S: assertion.Chan("wire")},
			R:  assertion.Int(1),
		},
	}
	for seed := int64(0); seed < 5; seed++ {
		res, err := runtime.Run(syntax.Ref{Name: paper.NameCopyNet}, runtime.Config{
			Env: env, Seed: seed, MaxEvents: 60,
			Monitor: runtime.MonitorSat(lenInv, env, nil),
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.MonitorErr != nil {
			t.Fatalf("seed %d: rendezvous runtime violated the invariant: %v", seed, res.MonitorErr)
		}
	}
}
