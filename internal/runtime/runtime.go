// Package runtime executes process networks as real Go concurrency: each
// sequential component of a parallel composition runs in its own goroutine,
// and a coordinator implements the paper's synchronous communication — one
// event c.m in which every process whose alphabet contains c participates
// simultaneously. Buffered Go channels cannot express this rendezvous (and
// point-to-point unbuffered channels cannot express multiway
// synchronisation or input/output symmetry), so goroutines exchange offers
// with the coordinator over Go channels and the coordinator picks the next
// event; see DESIGN.md §3 for the substitution note, and the runtime tests
// for a demonstration that naive buffered channels violate the paper's
// trace invariants.
//
// A Monitor can be attached to observe every communication as it happens;
// MonitorSat checks a sat-assertion before and after each visible event —
// the operational reading of the paper's "P sat R".
package runtime

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"cspsat/internal/assertion"
	"cspsat/internal/op"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
	"cspsat/internal/trace"
	"cspsat/internal/value"
)

// EventRecord is one communication performed by a running network.
type EventRecord struct {
	Ev trace.Event
	// Hidden marks events on channels concealed by chan L; they do not
	// appear in the visible trace.
	Hidden bool
	// Leaves lists the indices of the participating leaf processes.
	Leaves []int
}

// Monitor observes each communication as it happens. hist is the visible
// history *including* the event just performed (for hidden events, hist is
// unchanged). Returning an error aborts the run; the error is reported in
// Result.MonitorErr.
type Monitor func(rec EventRecord, hist trace.History) error

// Config controls a run.
type Config struct {
	// Env supplies the module. Required.
	Env sem.Env
	// Seed drives every non-deterministic choice; runs with equal seeds
	// and configs are identical.
	Seed int64
	// MaxEvents stops the run after this many communications (hidden ones
	// included). Zero means 1024.
	MaxEvents int
	// Monitor, when non-nil, observes each event.
	Monitor Monitor
}

func (c Config) maxEvents() int {
	if c.MaxEvents <= 0 {
		return 1024
	}
	return c.MaxEvents
}

// Result reports a completed run.
type Result struct {
	// Trace is the visible trace of the run.
	Trace trace.T
	// Events is the full log, hidden events included.
	Events []EventRecord
	// Quiescent is true when the network stopped because no communication
	// was possible (deadlock or completion — the paper's partial
	// correctness deliberately does not distinguish them).
	Quiescent bool
	// MonitorErr carries the monitor's error when it aborted the run.
	MonitorErr error
	// LeafCount is how many goroutines the network decomposed into.
	LeafCount int
}

// leaf is one sequential component with its fixed alphabet.
type leaf struct {
	index    int
	alphabet trace.Set
	state    op.State
}

// offerMsg is a leaf's report of its current communication capabilities.
type offerMsg struct {
	index  int
	offers []op.Offer
	err    error
}

// decision tells a leaf which communication it participated in; a nil
// decision (stop=true) shuts the leaf down.
type decision struct {
	ch   trace.Chan
	val  value.V
	stop bool
}

// Run executes the process as a concurrent network.
func Run(p syntax.Proc, cfg Config) (*Result, error) {
	leaves, hidden, err := decompose(p, cfg.Env, trace.NewSet())
	if err != nil {
		return nil, err
	}
	if len(leaves) == 0 {
		return &Result{Quiescent: true}, nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	offerCh := make(chan offerMsg)
	decCh := make([]chan decision, len(leaves))
	for i := range decCh {
		decCh[i] = make(chan decision)
	}
	for _, lf := range leaves {
		go runLeaf(lf, offerCh, decCh[lf.index])
	}
	stopAll := func() {
		for i := range decCh {
			// Each leaf is either waiting for a decision or about to send
			// an offer; drain offers until the stop lands.
			for {
				select {
				case decCh[i] <- decision{stop: true}:
				case <-offerCh:
					continue
				}
				break
			}
		}
	}

	res := &Result{LeafCount: len(leaves)}
	hist := make(trace.History)
	current := make([][]op.Offer, len(leaves))
	pending := len(leaves)

	for {
		for pending > 0 {
			m := <-offerCh
			if m.err != nil {
				stopAll()
				return nil, fmt.Errorf("runtime: leaf %d: %w", m.index, m.err)
			}
			current[m.index] = m.offers
			pending--
		}
		cands := candidates(leaves, current, hidden, rng)
		if len(cands) == 0 {
			res.Quiescent = true
			stopAll()
			return res, nil
		}
		ev := cands[rng.Intn(len(cands))]
		rec := EventRecord{
			Ev:     trace.Event{Chan: ev.ch, Msg: ev.val},
			Hidden: ev.hidden,
			Leaves: ev.parts,
		}
		res.Events = append(res.Events, rec)
		if !ev.hidden {
			res.Trace = res.Trace.Append(rec.Ev)
			hist[ev.ch] = append(hist[ev.ch], ev.val)
		}
		if cfg.Monitor != nil {
			if err := cfg.Monitor(rec, hist); err != nil {
				res.MonitorErr = err
				stopAll()
				return res, nil
			}
		}
		for _, li := range ev.parts {
			decCh[li] <- decision{ch: ev.ch, val: ev.val}
			pending++
		}
		if len(res.Events) >= cfg.maxEvents() {
			stopAll()
			return res, nil
		}
	}
}

func runLeaf(lf leaf, offerCh chan<- offerMsg, decCh <-chan decision) {
	state := lf.state
	for {
		offers, err := op.Offers(state)
		offerCh <- offerMsg{index: lf.index, offers: offers, err: err}
		if err != nil {
			// Stay alive until the coordinator's stop lands, so stopAll
			// never blocks on a vanished leaf.
			<-decCh
			return
		}
		d := <-decCh
		if d.stop {
			return
		}
		next, ok := applyDecision(offers, d)
		if !ok {
			// The coordinator only fires events every participant offered;
			// reaching here is a coordination bug, not a user error.
			panic(fmt.Sprintf("runtime: leaf %d told to perform %s.%s it never offered", lf.index, d.ch, d.val))
		}
		state = next
	}
}

func applyDecision(offers []op.Offer, d decision) (op.State, bool) {
	for _, o := range offers {
		if o.Ch != d.ch {
			continue
		}
		switch o.Kind {
		case op.OfferOut:
			if o.Val.Equal(d.val) {
				return o.Next(d.val), true
			}
		case op.OfferIn:
			if o.Dom.Contains(d.val) {
				return o.Next(d.val), true
			}
		}
	}
	return op.State{}, false
}

// candidate is one fireable communication.
type candidate struct {
	ch     trace.Chan
	val    value.V
	hidden bool
	parts  []int
}

// candidates computes every communication the network can currently
// perform: for each channel, every value all participants accept. A τ offer
// inside a single leaf is its own candidate.
func candidates(leaves []leaf, current [][]op.Offer, hidden trace.Set, rng *rand.Rand) []candidate {
	var out []candidate
	// τ offers fire alone.
	for li, offs := range current {
		for _, o := range offs {
			if o.Tau {
				out = append(out, candidate{ch: o.Ch, val: o.Val, hidden: true, parts: []int{li}})
			}
		}
	}
	// Group non-τ offers by channel.
	type chanOffers struct {
		parts  []int
		offers [][]op.Offer
	}
	byChan := map[trace.Chan]*chanOffers{}
	for li, offs := range current {
		seen := map[trace.Chan]bool{}
		perChan := map[trace.Chan][]op.Offer{}
		for _, o := range offs {
			if o.Tau {
				continue
			}
			perChan[o.Ch] = append(perChan[o.Ch], o)
			seen[o.Ch] = true
		}
		for ch, os := range perChan {
			co := byChan[ch]
			if co == nil {
				co = &chanOffers{}
				byChan[ch] = co
			}
			co.parts = append(co.parts, li)
			co.offers = append(co.offers, os)
		}
		_ = seen
	}
	chans := make([]trace.Chan, 0, len(byChan))
	for ch := range byChan {
		chans = append(chans, ch)
	}
	sort.Slice(chans, func(i, j int) bool { return chans[i] < chans[j] })
	for _, ch := range chans {
		co := byChan[ch]
		// Resolve the channel id once per round; the per-leaf alphabet and
		// hidden-set probes below are then single bit tests. An unknown id
		// (channel never interned) belongs to no set, matching Contains.
		cid, known := trace.LookupChan(ch)
		// Every leaf whose alphabet contains ch must currently offer on it.
		ready := true
		for _, lf := range leaves {
			if known && lf.alphabet.ContainsID(cid) && !offersOn(current[lf.index], ch) {
				ready = false
				break
			}
		}
		if !ready {
			continue
		}
		for _, v := range candidateValues(co.offers, rng) {
			if acceptedByAll(co.offers, v) {
				out = append(out, candidate{
					ch:     ch,
					val:    v,
					hidden: known && hidden.ContainsID(cid),
					parts:  append([]int(nil), co.parts...),
				})
			}
		}
	}
	return out
}

func offersOn(offs []op.Offer, ch trace.Chan) bool {
	for _, o := range offs {
		if !o.Tau && o.Ch == ch {
			return true
		}
	}
	return false
}

// candidateValues returns the values worth testing on a channel: every
// value some participant outputs; if all participants input, a sample of
// the first participant's domain (the paper's "highly non-determinate"
// all-input case, and the environment's free choice on an external input).
func candidateValues(offerSets [][]op.Offer, rng *rand.Rand) []value.V {
	var outs []value.V
	seen := map[string]bool{}
	for _, os := range offerSets {
		for _, o := range os {
			if o.Kind == op.OfferOut && !seen[o.Val.Key()] {
				seen[o.Val.Key()] = true
				outs = append(outs, o.Val)
			}
		}
	}
	if len(outs) > 0 {
		return outs
	}
	for _, os := range offerSets {
		for _, o := range os {
			if o.Kind == op.OfferIn {
				return o.Dom.Enumerate()
			}
		}
	}
	return nil
}

func acceptedByAll(offerSets [][]op.Offer, v value.V) bool {
	for _, os := range offerSets {
		ok := false
		for _, o := range os {
			if (o.Kind == op.OfferOut && o.Val.Equal(v)) ||
				(o.Kind == op.OfferIn && o.Dom.Contains(v)) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// decompose splits a term into its parallel leaves. Hiding above a
// composition adds its channels to the network-level hidden set; hiding
// inside a leaf is handled by the leaf's own offer computation (τ offers).
func decompose(p syntax.Proc, env sem.Env, hidden trace.Set) ([]leaf, trace.Set, error) {
	switch t := p.(type) {
	case syntax.Par:
		ls, h, err := decompose(t.L, env, hidden)
		if err != nil {
			return nil, trace.Set{}, err
		}
		rs, h2, err := decompose(t.R, env, h)
		if err != nil {
			return nil, trace.Set{}, err
		}
		for i := range rs {
			rs[i].index += len(ls)
		}
		return append(ls, rs...), h2, nil
	case syntax.Hiding:
		hs, err := env.EvalChanItems(t.Channels)
		if err != nil {
			return nil, trace.Set{}, err
		}
		return decompose(t.Body, env, hidden.Union(hs))
	case syntax.Ref:
		// Unfold definitions that merely name a network, so that e.g.
		// "protocol = chan wire; protonet" decomposes into its leaves. A
		// self-recursive definition whose unfolding never reaches a leaf
		// form is caught by op's unfold bound when the leaf first steps;
		// reference chains here are bounded by the module's size.
		body, err := env.Instantiate(t)
		if err != nil {
			return nil, trace.Set{}, err
		}
		switch body.(type) {
		case syntax.Par, syntax.Hiding:
			return decompose(body, env, hidden)
		}
		alpha, err := sem.Alphabet(t, env)
		if err != nil {
			return nil, trace.Set{}, err
		}
		return []leaf{{alphabet: alpha, state: op.NewState(t, env)}}, hidden, nil
	default:
		alpha, err := sem.Alphabet(p, env)
		if err != nil {
			return nil, trace.Set{}, err
		}
		return []leaf{{alphabet: alpha, state: op.NewState(p, env)}}, hidden, nil
	}
}

// ErrSatViolated is wrapped by MonitorSat's abort error.
var ErrSatViolated = errors.New("sat assertion violated")

// MonitorSat returns a Monitor that evaluates the assertion after every
// visible communication (the history starts empty, so "before the first"
// is covered by construction — and the module's R_<> obligations cover the
// initial point in the proof system). funcs may be nil.
func MonitorSat(a assertion.A, env sem.Env, funcs *assertion.Registry) Monitor {
	if funcs == nil {
		funcs = assertion.NewRegistry()
	}
	return func(rec EventRecord, hist trace.History) error {
		if rec.Hidden {
			return nil
		}
		ok, err := assertion.Eval(a, assertion.NewCtx(env, hist, funcs))
		if err != nil {
			return fmt.Errorf("monitor: %w", err)
		}
		if !ok {
			return fmt.Errorf("%w: %s fails after %s (history %s)", ErrSatViolated, a, rec.Ev, hist)
		}
		return nil
	}
}
