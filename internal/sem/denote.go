package sem

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"cspsat/internal/closure"
	"cspsat/internal/csperr"
	"cspsat/internal/pool"
	"cspsat/internal/progress"
	"cspsat/internal/syntax"
	"cspsat/internal/trace"
)

// Denoter computes the denotational semantics of §3.2–3.3: μ⟦P⟧ρ as a
// prefix closure, approximated to a finite trace-length window. Recursive
// definitions are given meaning exactly as the paper does — by the
// increasing approximation chain a₀ = ⟦STOP⟧, a(i+1) = ⟦P⟧(ρ[aᵢ/p]) — with
// the chain iterated until the window stabilises.
//
// Two approximation caveats, both documented in DESIGN.md §3:
//
//   - Sampling. The paper's input semantics is a union over all values of
//     M, which this engine makes finite by enumerating the sampled domain.
//     Because each side of a parallel composition is materialised
//     separately, an internal communication whose value falls outside the
//     sample (e.g. a computed partial sum exceeding the NAT width) is lost
//     at composition time.
//
//   - Hiding. (chan L; P) erases L-events, so a visible window of depth d
//     requires P explored to d plus the hidden chatter; HideSlack bounds
//     that chatter. A network that can perform unboundedly many hidden
//     events before a visible one (the protocol's NACK retransmission
//     loop) is complete only for the minimal-chatter paths within the
//     slack. Materialised trace sets grow combinatorially with window
//     depth under parallel interleaving, so the slack is deliberately
//     modest by default.
//
// The operational engine (internal/op) synchronises offers exactly and
// τ-closes with cycle detection, so it has neither limitation; use Denoter
// as the literal reference model and internal/op as the primary engine.
// Their agreement on the paper's systems is checked in tests (E12).
type Denoter struct {
	// Depth is the trace-length window: the result contains every trace of
	// the process of length ≤ Depth (subject to the caveats above).
	Depth int
	// HideSlack is the extra depth explored under each hiding operator
	// before the hidden events are erased. The default (Depth + 2)
	// suffices when hidden events accompany visible ones about one-to-one,
	// which covers the paper's copier network; raise it for chattier
	// networks at a steep cost in set size.
	HideSlack int
	// MaxBudget caps the total exploration budget regardless of hiding
	// nesting. Without it, a definition that recurses through its own
	// hiding operator would inflate its exploration budget on every chain
	// pass and never stabilise. The default is Depth + 3×HideSlack.
	MaxBudget int

	// Workers sets how many goroutines DenoteContext spreads each chain
	// pass across: the registered instances' approximations are recomputed
	// concurrently against a snapshot (Jacobi iteration) with a barrier per
	// pass, instead of in sequence (Gauss-Seidel). Both schedules converge
	// to the same least fixpoint on the finite window, so the final sets —
	// and, thanks to canonical interning, the node pointers — coincide with
	// the serial result; only the pass count may differ. Values ≤ 1 select
	// the serial path; pool.WorkersAuto sizes the pool to the machine.
	Workers int

	// SerialCutover tunes the adaptive serial/parallel cutover: a chain
	// pass over fewer registered instances than the cutover runs inline on
	// the calling goroutine — the equation system is too small to repay
	// spawning a pool per pass, which is exactly the BENCH_2026-08-05
	// small-workload regression. Zero means pool.DefaultSerialCutover; 1
	// forces every pass through the pool (for the differential tests).
	SerialCutover int

	// Progress, when non-nil, receives a "fixpoint" stage event after each
	// chain pass and a final Done event.
	Progress progress.Func

	// mu guards approx, budgets, and instances while a parallel pass has
	// workers inside eval; the maps are otherwise touched only between
	// barriers.
	mu        sync.Mutex
	approx    map[string]*closure.Set
	budgets   map[string]int
	instances map[string]instance
	iters     int
}

type instance struct {
	body syntax.Proc
	env  Env
}

// NewDenoter returns a denoter with the given trace-length window.
func NewDenoter(depth int) *Denoter {
	return &Denoter{
		Depth:     depth,
		HideSlack: depth + 2,
		MaxBudget: depth + 3*(depth+2),
		approx:    map[string]*closure.Set{},
		budgets:   map[string]int{},
		instances: map[string]instance{},
	}
}

// Iterations reports how many passes of the approximation chain the last
// Denote call needed (the paper's index i such that aᵢ = a(i+1) on the
// window).
func (d *Denoter) Iterations() int { return d.iters }

// Denote computes μ⟦p⟧env restricted to traces of length ≤ d.Depth.
func (d *Denoter) Denote(p syntax.Proc, env Env) (*closure.Set, error) {
	return d.DenoteContext(context.Background(), p, env)
}

// DenoteContext is Denote with cancellation: the chain checks ctx at every
// pass (and the pool between instances) and returns an error wrapping
// csperr.ErrCanceled promptly after ctx is done. With Workers > 1 each
// pass recomputes the registered instances concurrently.
func (d *Denoter) DenoteContext(ctx context.Context, p syntax.Proc, env Env) (*closure.Set, error) {
	// Iterate the global approximation chain: every process instance
	// reachable from p is (re)computed against the previous approximations
	// until nothing grows. Termination: each instance's set only grows, is
	// bounded by the finite set of traces of bounded length over the
	// finite sampled alphabet, instance budgets only increase and are
	// bounded by Depth plus the (finite) accumulated hiding slack, and new
	// instances are registered finitely often for the same reason the
	// alphabet walker terminates.
	start := time.Now()
	workers := pool.Resolve(d.Workers)
	d.iters = 0
	for {
		if err := pool.Canceled(ctx); err != nil {
			return nil, err
		}
		d.iters++
		changed := false
		keys := make([]string, 0, len(d.instances))
		for k := range d.instances {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		budgetsBefore := len(d.instances)
		// Snapshot each instance's budget before the pass; a budget raised
		// mid-pass means a deeper use site was discovered and forces another
		// pass, under both schedules.
		befores := make([]int, len(keys))
		insts := make([]instance, len(keys))
		for i, k := range keys {
			befores[i] = d.budgets[k]
			insts[i] = d.instances[k]
		}
		nexts := make([]*closure.Set, len(keys))
		err := pool.Run(ctx, pool.Adaptive(workers, len(keys), d.SerialCutover), len(keys), func(i int) error {
			next, err := d.eval(insts[i].body, insts[i].env, befores[i])
			if err != nil {
				return err
			}
			nexts[i] = next
			return nil
		})
		if err != nil {
			return nil, err
		}
		for i, k := range keys {
			// Union over hash-consed tries returns the canonical node, so
			// the moment the pass adds nothing (a(i+1) = aᵢ) the union IS
			// the previous approximation's node and Same short-circuits the
			// chain with a pointer comparison; Equal is the structural
			// fallback for nodes straddling a closure-cache eviction.
			next := closure.Union(nexts[i], d.approx[k])
			if !next.Same(d.approx[k]) && !next.Equal(d.approx[k]) {
				d.approx[k] = next
				changed = true
			}
			if d.budgets[k] != befores[i] {
				changed = true // a deeper use site was discovered mid-pass
			}
		}
		// The root term is evaluated exactly twice, not once per pass: the
		// first (discovery) pass registers every root-reachable instance
		// and raises their budgets — both determined by the term structure
		// alone, so repeating them is pure waste — and the stable pass
		// computes the answer against the fixed approximations. For deeply
		// composed roots (a hidden n-way parallel product) the root is the
		// most expensive term in the system; skipping its re-evaluation
		// cuts the chain's allocation rate severalfold, which is what
		// flattens the GOMAXPROCS>cores GC slope of BENCH_2026-08-05.
		if d.iters == 1 {
			if _, err := d.eval(p, env, d.Depth); err != nil {
				return nil, err
			}
		}
		d.Progress.Emit(progress.Event{
			Stage:           "fixpoint",
			ChainIterations: d.iters,
			Items:           len(keys),
			Elapsed:         time.Since(start),
		})
		if !changed && len(d.instances) == budgetsBefore {
			s, err := d.eval(p, env, d.Depth)
			if err != nil {
				return nil, err
			}
			d.Progress.Emit(progress.Event{
				Stage:           "fixpoint",
				ChainIterations: d.iters,
				Items:           len(d.instances),
				Elapsed:         time.Since(start),
				Done:            true,
			})
			return s.TruncateTo(d.Depth), nil
		}
		if d.iters > 10000 {
			return nil, fmt.Errorf("%w: sem: approximation chain did not stabilise after %d iterations", csperr.ErrDepthExceeded, d.iters)
		}
	}
}

func (d *Denoter) eval(p syntax.Proc, env Env, budget int) (*closure.Set, error) {
	if budget <= 0 {
		return closure.Stop(), nil
	}
	switch t := p.(type) {
	case syntax.Stop:
		return closure.Stop(), nil
	case syntax.Ref:
		key, err := d.refKey(t, env)
		if err != nil {
			return nil, err
		}
		// The maps are shared with concurrent workers during a parallel
		// pass; registration and budget-raising are the only map writes
		// reachable from eval, so this critical section (no operator calls
		// inside) is all the synchronisation the pass needs. Budget raises
		// are monotone max-merges, so racing raisers converge to the same
		// final budgets as any sequential order.
		d.mu.Lock()
		cur, ok := d.approx[key]
		if !ok {
			// First encounter: register the instance at a₀ = ⟦STOP⟧ and
			// let the outer chain grow it.
			d.mu.Unlock()
			body, err := env.Instantiate(t)
			if err != nil {
				return nil, err
			}
			d.mu.Lock()
			if cur, ok = d.approx[key]; !ok { // lost no race while instantiating
				cur = closure.Stop()
				d.approx[key] = cur
				d.instances[key] = instance{body: body, env: env}
			}
		}
		if budget > d.budgets[key] {
			d.budgets[key] = budget
		}
		d.mu.Unlock()
		return cur.TruncateTo(budget), nil
	case syntax.Output:
		c, err := env.EvalChanRef(t.Ch)
		if err != nil {
			return nil, err
		}
		v, err := env.EvalExpr(t.Val)
		if err != nil {
			return nil, err
		}
		cont, err := d.eval(t.Cont, env, budget-1)
		if err != nil {
			return nil, err
		}
		return closure.Prefix(trace.Event{Chan: c, Msg: v}, cont), nil
	case syntax.Input:
		c, err := env.EvalChanRef(t.Ch)
		if err != nil {
			return nil, err
		}
		dom, err := env.EvalSet(t.Dom)
		if err != nil {
			return nil, err
		}
		branches := []*closure.Set{}
		for _, v := range dom.Enumerate() {
			cont, err := d.eval(t.Cont, env.Bind(t.Var, v), budget-1)
			if err != nil {
				return nil, err
			}
			branches = append(branches, closure.Prefix(trace.Event{Chan: c, Msg: v}, cont))
		}
		return closure.UnionAll(branches...), nil
	case syntax.Alt:
		l, err := d.eval(t.L, env, budget)
		if err != nil {
			return nil, err
		}
		r, err := d.eval(t.R, env, budget)
		if err != nil {
			return nil, err
		}
		return closure.Union(l, r), nil
	case syntax.IChoice:
		// The trace model cannot distinguish internal from external
		// choice — both denote the union (the §4 defect this operator
		// exists to expose; internal/failures tells them apart).
		l, err := d.eval(t.L, env, budget)
		if err != nil {
			return nil, err
		}
		r, err := d.eval(t.R, env, budget)
		if err != nil {
			return nil, err
		}
		return closure.Union(l, r), nil
	case syntax.Par:
		return d.evalPar(t, env, budget)
	case syntax.Hiding:
		hidden, err := env.EvalChanItems(t.Channels)
		if err != nil {
			return nil, err
		}
		inner, err := d.eval(t.Body, env, d.capBudget(budget+d.HideSlack))
		if err != nil {
			return nil, err
		}
		return closure.Hide(inner, hidden).TruncateTo(budget), nil
	default:
		return nil, fmt.Errorf("sem: cannot denote process form %T", p)
	}
}

// parLeaf is one operand of a flattened parallel spine, paired with its
// inferred alphabet.
type parLeaf struct {
	p     syntax.Proc
	alpha trace.Set
}

// collectParLeaves flattens a spine of inferred-alphabet compositions into
// its operand list. A node carrying an explicit alphabet is kept whole (it
// becomes a single leaf), because the reorder in evalPar is only provably
// sound when every operand's alphabet covers its actual events — which
// inference guarantees and a declaration does not.
func collectParLeaves(p syntax.Proc, env Env, out []parLeaf) ([]parLeaf, error) {
	if t, ok := p.(syntax.Par); ok && t.AlphaL == nil && t.AlphaR == nil {
		out, err := collectParLeaves(t.L, env, out)
		if err != nil {
			return nil, err
		}
		return collectParLeaves(t.R, env, out)
	}
	a, err := Alphabet(p, env)
	if err != nil {
		return nil, err
	}
	return append(out, parLeaf{p: p, alpha: a}), nil
}

// evalPar denotes a parallel composition. Binary and explicit-alphabet
// compositions take the direct product; a fully inferred spine of three or
// more operands is folded in a greedily chosen order instead of source
// order. Alphabetized parallel is associative and commutative in the trace
// model — s is in the n-ary composition iff s↾αi ∈ Pi for every operand,
// regardless of bracketing — so the final canonical set is identical for
// any fold order, but the intermediate products are not: source order can
// put mutually independent operands first (specs/philosophers.csp lists
// the three forks before any philosopher), whose product is an
// interleaving blow-up that the next fold steps mostly discard. Starting
// from the first operand and always folding in the operand sharing the
// most channels with the accumulated alphabet keeps every intermediate
// product synchronised, which on the philosophers table cuts the trie work
// (and so the fixpoint chain's allocation rate) severalfold.
func (d *Denoter) evalPar(t syntax.Par, env Env, budget int) (*closure.Set, error) {
	leaves, err := collectParLeaves(t, env, nil)
	if err == nil && len(leaves) > 2 {
		vals := make([]*closure.Set, len(leaves))
		for i, lf := range leaves {
			// Source evaluation order, so instance discovery and budget
			// raising happen exactly as the direct fold would do them.
			if vals[i], err = d.eval(lf.p, env, budget); err != nil {
				return nil, err
			}
		}
		used := make([]bool, len(leaves))
		cur, alpha := vals[0], leaves[0].alpha
		used[0] = true
		for range leaves[1:] {
			best, shared := -1, -1
			for i, u := range used {
				if u {
					continue
				}
				if n := alpha.Intersect(leaves[i].alpha).Len(); n > shared {
					best, shared = i, n
				}
			}
			cur = closure.ParallelTo(cur, vals[best], alpha, leaves[best].alpha, budget)
			alpha = alpha.Union(leaves[best].alpha)
			used[best] = true
		}
		return cur, nil
	}
	// Binary or explicit-alphabet composition — and the fallback when
	// alphabet inference fails, so ParAlphabets can surface that error
	// with its usual context.
	x, y, err := ParAlphabets(t, env)
	if err != nil {
		return nil, err
	}
	l, err := d.eval(t.L, env, budget)
	if err != nil {
		return nil, err
	}
	r, err := d.eval(t.R, env, budget)
	if err != nil {
		return nil, err
	}
	return closure.ParallelTo(l, r, x, y, budget), nil
}

func (d *Denoter) capBudget(b int) int {
	maxB := d.MaxBudget
	if maxB <= 0 {
		maxB = d.Depth + 3*(d.Depth+2)
	}
	if b > maxB {
		return maxB
	}
	return b
}

func (d *Denoter) refKey(r syntax.Ref, env Env) (string, error) {
	if r.Sub == nil {
		return r.Name, nil
	}
	v, err := env.EvalExpr(r.Sub)
	if err != nil {
		return "", fmt.Errorf("sem: denoting %s: %w", r, err)
	}
	return r.Name + "[" + v.Key() + "]", nil
}

// Denote is a convenience wrapper computing μ⟦p⟧env to the given depth with
// a fresh Denoter.
func Denote(p syntax.Proc, env Env, depth int) (*closure.Set, error) {
	return NewDenoter(depth).Denote(p, env)
}

// DenoteContext is the context-aware convenience wrapper: a fresh Denoter
// with the given worker count (≤ 1 for serial) under ctx.
func DenoteContext(ctx context.Context, p syntax.Proc, env Env, depth, workers int) (*closure.Set, error) {
	d := NewDenoter(depth)
	d.Workers = workers
	return d.DenoteContext(ctx, p, env)
}
