package sem

import (
	"fmt"

	"cspsat/internal/closure"
	"cspsat/internal/syntax"
	"cspsat/internal/trace"
)

// Denoter computes the denotational semantics of §3.2–3.3: μ⟦P⟧ρ as a
// prefix closure, approximated to a finite trace-length window. Recursive
// definitions are given meaning exactly as the paper does — by the
// increasing approximation chain a₀ = ⟦STOP⟧, a(i+1) = ⟦P⟧(ρ[aᵢ/p]) — with
// the chain iterated until the window stabilises.
//
// Two approximation caveats, both documented in DESIGN.md §3:
//
//   - Sampling. The paper's input semantics is a union over all values of
//     M, which this engine makes finite by enumerating the sampled domain.
//     Because each side of a parallel composition is materialised
//     separately, an internal communication whose value falls outside the
//     sample (e.g. a computed partial sum exceeding the NAT width) is lost
//     at composition time.
//
//   - Hiding. (chan L; P) erases L-events, so a visible window of depth d
//     requires P explored to d plus the hidden chatter; HideSlack bounds
//     that chatter. A network that can perform unboundedly many hidden
//     events before a visible one (the protocol's NACK retransmission
//     loop) is complete only for the minimal-chatter paths within the
//     slack. Materialised trace sets grow combinatorially with window
//     depth under parallel interleaving, so the slack is deliberately
//     modest by default.
//
// The operational engine (internal/op) synchronises offers exactly and
// τ-closes with cycle detection, so it has neither limitation; use Denoter
// as the literal reference model and internal/op as the primary engine.
// Their agreement on the paper's systems is checked in tests (E12).
type Denoter struct {
	// Depth is the trace-length window: the result contains every trace of
	// the process of length ≤ Depth (subject to the caveats above).
	Depth int
	// HideSlack is the extra depth explored under each hiding operator
	// before the hidden events are erased. The default (Depth + 2)
	// suffices when hidden events accompany visible ones about one-to-one,
	// which covers the paper's copier network; raise it for chattier
	// networks at a steep cost in set size.
	HideSlack int
	// MaxBudget caps the total exploration budget regardless of hiding
	// nesting. Without it, a definition that recurses through its own
	// hiding operator would inflate its exploration budget on every chain
	// pass and never stabilise. The default is Depth + 3×HideSlack.
	MaxBudget int

	approx    map[string]*closure.Set
	budgets   map[string]int
	instances map[string]instance
	iters     int
}

type instance struct {
	body syntax.Proc
	env  Env
}

// NewDenoter returns a denoter with the given trace-length window.
func NewDenoter(depth int) *Denoter {
	return &Denoter{
		Depth:     depth,
		HideSlack: depth + 2,
		MaxBudget: depth + 3*(depth+2),
		approx:    map[string]*closure.Set{},
		budgets:   map[string]int{},
		instances: map[string]instance{},
	}
}

// Iterations reports how many passes of the approximation chain the last
// Denote call needed (the paper's index i such that aᵢ = a(i+1) on the
// window).
func (d *Denoter) Iterations() int { return d.iters }

// Denote computes μ⟦p⟧env restricted to traces of length ≤ d.Depth.
func (d *Denoter) Denote(p syntax.Proc, env Env) (*closure.Set, error) {
	// Iterate the global approximation chain: every process instance
	// reachable from p is (re)computed against the previous approximations
	// until nothing grows. Termination: each instance's set only grows, is
	// bounded by the finite set of traces of bounded length over the
	// finite sampled alphabet, instance budgets only increase and are
	// bounded by Depth plus the (finite) accumulated hiding slack, and new
	// instances are registered finitely often for the same reason the
	// alphabet walker terminates.
	d.iters = 0
	for {
		d.iters++
		changed := false
		keys := make([]string, 0, len(d.instances))
		for k := range d.instances {
			keys = append(keys, k)
		}
		budgetsBefore := len(d.instances)
		for _, k := range keys {
			inst := d.instances[k]
			before := d.budgets[k]
			next, err := d.eval(inst.body, inst.env, before)
			if err != nil {
				return nil, err
			}
			// Union over hash-consed tries returns the canonical node, so
			// the moment the pass adds nothing (a(i+1) = aᵢ) the union IS
			// the previous approximation's node and Same short-circuits the
			// chain with a pointer comparison; Equal is the structural
			// fallback for nodes straddling a closure-cache eviction.
			next = closure.Union(next, d.approx[k])
			if !next.Same(d.approx[k]) && !next.Equal(d.approx[k]) {
				d.approx[k] = next
				changed = true
			}
			if d.budgets[k] != before {
				changed = true // a deeper use site was discovered mid-pass
			}
		}
		s, err := d.eval(p, env, d.Depth)
		if err != nil {
			return nil, err
		}
		if !changed && len(d.instances) == budgetsBefore {
			return s.TruncateTo(d.Depth), nil
		}
		if d.iters > 10000 {
			return nil, fmt.Errorf("sem: approximation chain did not stabilise after %d iterations", d.iters)
		}
	}
}

func (d *Denoter) eval(p syntax.Proc, env Env, budget int) (*closure.Set, error) {
	if budget <= 0 {
		return closure.Stop(), nil
	}
	switch t := p.(type) {
	case syntax.Stop:
		return closure.Stop(), nil
	case syntax.Ref:
		key, err := d.refKey(t, env)
		if err != nil {
			return nil, err
		}
		if _, ok := d.approx[key]; !ok {
			// First encounter: register the instance at a₀ = ⟦STOP⟧ and
			// let the outer chain grow it.
			body, err := env.Instantiate(t)
			if err != nil {
				return nil, err
			}
			d.approx[key] = closure.Stop()
			d.instances[key] = instance{body: body, env: env}
		}
		if budget > d.budgets[key] {
			d.budgets[key] = budget
		}
		return d.approx[key].TruncateTo(budget), nil
	case syntax.Output:
		c, err := env.EvalChanRef(t.Ch)
		if err != nil {
			return nil, err
		}
		v, err := env.EvalExpr(t.Val)
		if err != nil {
			return nil, err
		}
		cont, err := d.eval(t.Cont, env, budget-1)
		if err != nil {
			return nil, err
		}
		return closure.Prefix(trace.Event{Chan: c, Msg: v}, cont), nil
	case syntax.Input:
		c, err := env.EvalChanRef(t.Ch)
		if err != nil {
			return nil, err
		}
		dom, err := env.EvalSet(t.Dom)
		if err != nil {
			return nil, err
		}
		branches := []*closure.Set{}
		for _, v := range dom.Enumerate() {
			cont, err := d.eval(t.Cont, env.Bind(t.Var, v), budget-1)
			if err != nil {
				return nil, err
			}
			branches = append(branches, closure.Prefix(trace.Event{Chan: c, Msg: v}, cont))
		}
		return closure.UnionAll(branches...), nil
	case syntax.Alt:
		l, err := d.eval(t.L, env, budget)
		if err != nil {
			return nil, err
		}
		r, err := d.eval(t.R, env, budget)
		if err != nil {
			return nil, err
		}
		return closure.Union(l, r), nil
	case syntax.IChoice:
		// The trace model cannot distinguish internal from external
		// choice — both denote the union (the §4 defect this operator
		// exists to expose; internal/failures tells them apart).
		l, err := d.eval(t.L, env, budget)
		if err != nil {
			return nil, err
		}
		r, err := d.eval(t.R, env, budget)
		if err != nil {
			return nil, err
		}
		return closure.Union(l, r), nil
	case syntax.Par:
		x, y, err := ParAlphabets(t, env)
		if err != nil {
			return nil, err
		}
		l, err := d.eval(t.L, env, budget)
		if err != nil {
			return nil, err
		}
		r, err := d.eval(t.R, env, budget)
		if err != nil {
			return nil, err
		}
		return closure.Parallel(l, r, x, y).TruncateTo(budget), nil
	case syntax.Hiding:
		hidden, err := env.EvalChanItems(t.Channels)
		if err != nil {
			return nil, err
		}
		inner, err := d.eval(t.Body, env, d.capBudget(budget+d.HideSlack))
		if err != nil {
			return nil, err
		}
		return closure.Hide(inner, hidden).TruncateTo(budget), nil
	default:
		return nil, fmt.Errorf("sem: cannot denote process form %T", p)
	}
}

func (d *Denoter) capBudget(b int) int {
	maxB := d.MaxBudget
	if maxB <= 0 {
		maxB = d.Depth + 3*(d.Depth+2)
	}
	if b > maxB {
		return maxB
	}
	return b
}

func (d *Denoter) refKey(r syntax.Ref, env Env) (string, error) {
	if r.Sub == nil {
		return r.Name, nil
	}
	v, err := env.EvalExpr(r.Sub)
	if err != nil {
		return "", fmt.Errorf("sem: denoting %s: %w", r, err)
	}
	return r.Name + "[" + v.Key() + "]", nil
}

// Denote is a convenience wrapper computing μ⟦p⟧env to the given depth with
// a fresh Denoter.
func Denote(p syntax.Proc, env Env, depth int) (*closure.Set, error) {
	return NewDenoter(depth).Denote(p, env)
}
