package sem_test

import (
	"testing"

	"cspsat/internal/closure"
	"cspsat/internal/op"
	"cspsat/internal/paper"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
	"cspsat/internal/trace"
)

// TestDenoteAgreesWithOperational is the repository's E12: the literal
// denotational semantics (§3.3 approximation chain) and the operational
// explorer must produce identical trace sets on the paper's systems, for
// every process and a range of depths — the analogue of the paper's
// consistency between its two semantics.
func TestDenoteAgreesWithOperational(t *testing.T) {
	systems := []struct {
		name  string
		env   sem.Env
		procs []string
	}{
		{
			name:  "copier",
			env:   sem.NewEnv(paper.CopySystem(), 2),
			procs: []string{paper.NameCopier, paper.NameRecopier, paper.NameCopyNet, paper.NameCopySys},
		},
		{
			name:  "protocol",
			env:   sem.NewEnv(paper.ProtocolSystem(2), 2),
			procs: []string{paper.NameSender, paper.NameReceiver, paper.NameProtoNet, paper.NameProtocol},
		},
	}
	for _, sys := range systems {
		for _, proc := range sys.procs {
			for _, depth := range []int{0, 1, 3, 5} {
				p := syntax.Ref{Name: proc}
				den, err := sem.Denote(p, sys.env, depth)
				if err != nil {
					t.Fatalf("%s/%s depth %d: denote: %v", sys.name, proc, depth, err)
				}
				ops, err := op.Traces(p, sys.env, depth)
				if err != nil {
					t.Fatalf("%s/%s depth %d: op: %v", sys.name, proc, depth, err)
				}
				if !den.Equal(ops) {
					w1 := den.FirstNotIn(ops)
					w2 := ops.FirstNotIn(den)
					t.Errorf("%s/%s depth %d: denotational and operational sets differ\n  den-only: %v\n  op-only:  %v",
						sys.name, proc, depth, w1, w2)
				}
			}
		}
	}
}

// TestDenoteMultiplierNeedsWideSample documents the sampling caveat: the
// denotational engine agrees with the operational one on the multiplier
// only when the NAT sample covers the partial sums that actually flow (the
// operational engine is exact regardless; see the package comment).
func TestDenoteMultiplierNeedsWideSample(t *testing.T) {
	m := paper.MultiplierSystem([]int64{1, 1, 1})
	// Row values sampled from {0,1}; partial sums reach 3. A sample width
	// of 4 covers every internal value, so the two engines agree.
	env := sem.NewEnv(m, 4)
	p := syntax.Ref{Name: paper.NameNetwork}
	const depth = 4
	den, err := sem.Denote(p, env, depth)
	if err != nil {
		t.Fatalf("denote: %v", err)
	}
	ops, err := op.Traces(p, env, depth)
	if err != nil {
		t.Fatalf("op: %v", err)
	}
	if !den.Equal(ops) {
		t.Errorf("with a covering sample the engines must agree\n den-only: %v\n op-only: %v",
			den.FirstNotIn(ops), ops.FirstNotIn(den))
	}
}

// TestDenoteStopChoiceIdentity is E10, the §4 defect: STOP | P = P in the
// prefix-closure model.
func TestDenoteStopChoiceIdentity(t *testing.T) {
	env := sem.NewEnv(paper.CopySystem(), 2)
	copier := syntax.Ref{Name: paper.NameCopier}
	withStop := syntax.Alt{L: syntax.Stop{}, R: copier}
	a, err := sem.Denote(withStop, env, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sem.Denote(copier, env, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("STOP | copier differs from copier in the trace model")
	}
}

// TestApproximationChainShape checks the §3.3 structure directly: each aᵢ
// is a subset of a(i+1), a₀ = {<>}, and the denoter reports a plausible
// stabilisation index.
func TestApproximationChainShape(t *testing.T) {
	env := sem.NewEnv(paper.CopySystem(), 2)
	copier := syntax.Ref{Name: paper.NameCopier}

	var prev *closure.Set
	for depth := 0; depth <= 6; depth++ {
		d := sem.NewDenoter(depth)
		s, err := d.Denote(copier, env)
		if err != nil {
			t.Fatal(err)
		}
		if depth == 0 && s.Size() != 1 {
			t.Errorf("a at window 0 should be {<>}, got %d traces", s.Size())
		}
		if prev != nil && !prev.SubsetOf(s) {
			t.Errorf("chain not increasing at depth %d", depth)
		}
		if d.Iterations() < 1 {
			t.Errorf("no iterations recorded at depth %d", depth)
		}
		prev = s
	}
}

func TestDenoteHidingSlack(t *testing.T) {
	// copysys hides the wire: each visible output needs 2 hidden wire
	// events' worth of slack; the default HideSlack must suffice for the
	// visible window to be complete (cross-checked against op).
	env := sem.NewEnv(paper.CopySystem(), 2)
	p := syntax.Ref{Name: paper.NameCopySys}
	den, err := sem.Denote(p, env, 4)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := op.Traces(p, env, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !den.Equal(ops) {
		t.Errorf("hiding slack insufficient: den-only %v, op-only %v",
			den.FirstNotIn(ops), ops.FirstNotIn(den))
	}
}

func TestAlphabetInference(t *testing.T) {
	env := sem.NewEnv(paper.ProtocolSystem(2), 2)
	a, err := sem.Alphabet(syntax.Ref{Name: paper.NameSender}, env)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Contains("input") || !a.Contains("wire") || a.Contains("output") {
		t.Errorf("sender alphabet = %s", a)
	}
	b, err := sem.Alphabet(syntax.Ref{Name: paper.NameReceiver}, env)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Contains("wire") || !b.Contains("output") || b.Contains("input") {
		t.Errorf("receiver alphabet = %s", b)
	}
	// Hiding removes channels from the externally visible alphabet.
	c, err := sem.Alphabet(syntax.Ref{Name: paper.NameProtocol}, env)
	if err != nil {
		t.Fatal(err)
	}
	if c.Contains("wire") || !c.Contains("input") || !c.Contains("output") {
		t.Errorf("protocol alphabet = %s", c)
	}
}

func TestAlphabetMultiplierInstances(t *testing.T) {
	env := sem.NewEnv(paper.MultiplierSystem([]int64{5, 3, 2}), 2)
	a, err := sem.Alphabet(syntax.Ref{Name: paper.NameMult, Sub: syntax.IntLit{Val: 2}}, env)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"row[2]", "col[1]", "col[2]"} {
		if !a.Contains(trace.Chan(want)) {
			t.Errorf("mult[2] alphabet missing %s: %s", want, a)
		}
	}
	if a.Contains("row[1]") || a.Contains("col[0]") {
		t.Errorf("mult[2] alphabet too wide: %s", a)
	}
}

func TestAlphabetDependsOnInputRejected(t *testing.T) {
	// r = c?x:NAT -> d[x]!0 -> r : the channel depends on an input value
	// drawn from an infinite domain; inference must fail with a helpful
	// error rather than guess.
	m := syntax.NewModule()
	m.MustDefine(syntax.Def{Name: "r", Body: syntax.Input{
		Ch: syntax.ChanRef{Name: "c"}, Var: "x", Dom: syntax.SetName{Name: "NAT"},
		Cont: syntax.Output{
			Ch:   syntax.ChanRef{Name: "d", Sub: syntax.Var{Name: "x"}},
			Val:  syntax.IntLit{Val: 0},
			Cont: syntax.Ref{Name: "r"},
		},
	}})
	env := sem.NewEnv(m, 2)
	if _, err := sem.Alphabet(syntax.Ref{Name: "r"}, env); err == nil {
		t.Fatal("value-dependent alphabet over NAT accepted")
	}
	// With a finite domain the union over the domain is exact.
	m2 := syntax.NewModule()
	m2.MustDefine(syntax.Def{Name: "r", Body: syntax.Input{
		Ch: syntax.ChanRef{Name: "c"}, Var: "x",
		Dom: syntax.RangeSet{Lo: syntax.IntLit{Val: 0}, Hi: syntax.IntLit{Val: 1}},
		Cont: syntax.Output{
			Ch:   syntax.ChanRef{Name: "d", Sub: syntax.Var{Name: "x"}},
			Val:  syntax.IntLit{Val: 0},
			Cont: syntax.Ref{Name: "r"},
		},
	}})
	a, err := sem.Alphabet(syntax.Ref{Name: "r"}, sem.NewEnv(m2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Contains("d[0]") || !a.Contains("d[1]") || !a.Contains("c") {
		t.Errorf("finite-domain alphabet = %s", a)
	}
}

// TestDenoteRecursionThroughHidingTerminates is the regression test for the
// budget-inflation bug: a definition that recurses through its own hiding
// operator must not grow its exploration budget on every approximation pass
// (MaxBudget caps it), and the chain must stabilise.
func TestDenoteRecursionThroughHidingTerminates(t *testing.T) {
	m := syntax.NewModule()
	// p = a!1 -> (chan h; h!0 -> p): the recursive call sits under hiding.
	m.MustDefine(syntax.Def{Name: "p", Body: syntax.Output{
		Ch: syntax.ChanRef{Name: "a"}, Val: syntax.IntLit{Val: 1},
		Cont: syntax.Hiding{
			Channels: []syntax.ChanItem{{Name: "h"}},
			Body: syntax.Output{Ch: syntax.ChanRef{Name: "h"}, Val: syntax.IntLit{Val: 0},
				Cont: syntax.Ref{Name: "p"}},
		},
	}})
	env := sem.NewEnv(m, 2)
	d := sem.NewDenoter(4)
	den, err := d.Denote(syntax.Ref{Name: "p"}, env)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := op.Traces(syntax.Ref{Name: "p"}, env, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The visible behaviour is a.1 repeated; both engines agree.
	if !den.Equal(ops) {
		t.Errorf("den-only %v, op-only %v", den.FirstNotIn(ops), ops.FirstNotIn(den))
	}
	if d.Iterations() > 100 {
		t.Errorf("chain took %d iterations; budget cap not effective", d.Iterations())
	}
}
