package sem_test

import (
	"errors"
	"strings"
	"testing"

	"cspsat/internal/paper"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
	"cspsat/internal/trace"
	"cspsat/internal/value"
)

func env(t *testing.T) sem.Env {
	t.Helper()
	return sem.NewEnv(syntax.NewModule(), 3)
}

func TestEvalExprArithmetic(t *testing.T) {
	e := env(t).Bind("x", value.Int(4)).Bind("y", value.Int(3))
	cases := []struct {
		expr syntax.Expr
		want int64
	}{
		{syntax.IntLit{Val: 7}, 7},
		{syntax.Var{Name: "x"}, 4},
		{syntax.Binary{Op: syntax.OpAdd, L: syntax.Var{Name: "x"}, R: syntax.Var{Name: "y"}}, 7},
		{syntax.Binary{Op: syntax.OpSub, L: syntax.Var{Name: "x"}, R: syntax.Var{Name: "y"}}, 1},
		{syntax.Binary{Op: syntax.OpMul, L: syntax.Var{Name: "x"}, R: syntax.Var{Name: "y"}}, 12},
		{syntax.Binary{Op: syntax.OpDiv, L: syntax.Var{Name: "x"}, R: syntax.IntLit{Val: 2}}, 2},
		{syntax.Binary{Op: syntax.OpMod, L: syntax.Var{Name: "x"}, R: syntax.Var{Name: "y"}}, 1},
	}
	for _, tc := range cases {
		got, err := e.EvalExpr(tc.expr)
		if err != nil {
			t.Fatalf("%v: %v", tc.expr, err)
		}
		if got.AsInt() != tc.want {
			t.Errorf("%v = %v, want %d", tc.expr, got, tc.want)
		}
	}
}

func TestEvalExprErrors(t *testing.T) {
	e := env(t)
	if _, err := e.EvalExpr(syntax.Var{Name: "nope"}); !errors.Is(err, sem.ErrUnbound) {
		t.Errorf("unbound variable error = %v", err)
	}
	div0 := syntax.Binary{Op: syntax.OpDiv, L: syntax.IntLit{Val: 1}, R: syntax.IntLit{Val: 0}}
	if _, err := e.EvalExpr(div0); err == nil {
		t.Error("division by zero accepted")
	}
	sym := syntax.Binary{Op: syntax.OpAdd, L: syntax.SymLit{Name: "ACK"}, R: syntax.IntLit{Val: 1}}
	if _, err := e.EvalExpr(sym); err == nil {
		t.Error("arithmetic on symbols accepted")
	}
}

func TestEvalConstArray(t *testing.T) {
	m := syntax.NewModule()
	m.DefineArray(syntax.ValueArray{Name: "v", Lo: 1, Elems: []int64{5, 3, 2}})
	e := sem.NewEnv(m, 3)
	got, err := e.EvalExpr(syntax.Index{Name: "v", Sub: syntax.IntLit{Val: 2}})
	if err != nil || got.AsInt() != 3 {
		t.Fatalf("v[2] = %v, %v", got, err)
	}
	if _, err := e.EvalExpr(syntax.Index{Name: "v", Sub: syntax.IntLit{Val: 0}}); err == nil {
		t.Error("below-range subscript accepted")
	}
	if _, err := e.EvalExpr(syntax.Index{Name: "v", Sub: syntax.IntLit{Val: 4}}); err == nil {
		t.Error("above-range subscript accepted")
	}
	if _, err := e.EvalExpr(syntax.Index{Name: "w", Sub: syntax.IntLit{Val: 1}}); err == nil {
		t.Error("unknown array accepted")
	}
}

func TestEvalSet(t *testing.T) {
	m := syntax.NewModule()
	m.DefineSet("M", syntax.RangeSet{Lo: syntax.IntLit{Val: 0}, Hi: syntax.IntLit{Val: 2}})
	e := sem.NewEnv(m, 5)

	nat, err := e.EvalSet(syntax.SetName{Name: "NAT"})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(nat.Enumerate()); got != 5 {
		t.Errorf("NAT sample = %d, want env width 5", got)
	}
	named, err := e.EvalSet(syntax.SetName{Name: "M"})
	if err != nil {
		t.Fatal(err)
	}
	if !named.Contains(value.Int(2)) || named.Contains(value.Int(3)) {
		t.Error("named set membership wrong")
	}
	enum, err := e.EvalSet(syntax.EnumSet{Elems: []syntax.Expr{syntax.SymLit{Name: "ACK"}}})
	if err != nil || !enum.Contains(value.Sym("ACK")) {
		t.Errorf("enum set: %v %v", enum, err)
	}
	union, err := e.EvalSet(syntax.UnionSet{A: syntax.SetName{Name: "M"},
		B: syntax.EnumSet{Elems: []syntax.Expr{syntax.SymLit{Name: "ACK"}}}})
	if err != nil || !union.Contains(value.Sym("ACK")) || !union.Contains(value.Int(0)) {
		t.Errorf("union set: %v %v", union, err)
	}
	if _, err := e.EvalSet(syntax.SetName{Name: "NOPE"}); err == nil {
		t.Error("unknown set accepted")
	}
}

func TestEvalChanRefAndItems(t *testing.T) {
	e := env(t).Bind("i", value.Int(2))
	c, err := e.EvalChanRef(syntax.ChanRef{Name: "col", Sub: syntax.Binary{
		Op: syntax.OpSub, L: syntax.Var{Name: "i"}, R: syntax.IntLit{Val: 1}}})
	if err != nil || string(c) != "col[1]" {
		t.Fatalf("EvalChanRef = %q, %v", c, err)
	}
	set, err := e.EvalChanItems([]syntax.ChanItem{
		{Name: "wire"},
		{Name: "col", Lo: syntax.IntLit{Val: 0}, Hi: syntax.IntLit{Val: 2}},
		{Name: "row", Sub: syntax.Var{Name: "i"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"wire", "col[0]", "col[1]", "col[2]", "row[2]"} {
		if !set.Contains(trace.Chan(want)) {
			t.Errorf("missing %s in %s", want, set)
		}
	}
	if set.Len() != 5 {
		t.Errorf("set size = %d", set.Len())
	}
}

func TestInstantiate(t *testing.T) {
	m := paper.ProtocolSystem(2)
	e := sem.NewEnv(m, 2)
	// q[1] instantiates the body with x:=1.
	body, err := e.Instantiate(syntax.Ref{Name: paper.NameQ, Sub: syntax.IntLit{Val: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.String(), "wire!1") {
		t.Errorf("instantiated body = %s", body)
	}
	// Out-of-domain subscript rejected.
	if _, err := e.Instantiate(syntax.Ref{Name: paper.NameQ, Sub: syntax.IntLit{Val: 9}}); err == nil {
		t.Error("subscript outside M accepted")
	}
	// Array without subscript, plain with subscript, unknown name.
	if _, err := e.Instantiate(syntax.Ref{Name: paper.NameQ}); err == nil {
		t.Error("array without subscript accepted")
	}
	if _, err := e.Instantiate(syntax.Ref{Name: paper.NameSender, Sub: syntax.IntLit{Val: 0}}); err == nil {
		t.Error("plain process with subscript accepted")
	}
	if _, err := e.Instantiate(syntax.Ref{Name: "ghost"}); err == nil {
		t.Error("undefined process accepted")
	}
}

func TestBindShadowing(t *testing.T) {
	e := env(t).Bind("x", value.Int(1)).Bind("x", value.Int(2))
	v, ok := e.LookupVar("x")
	if !ok || v.AsInt() != 2 {
		t.Fatalf("shadowed lookup = %v %v", v, ok)
	}
	if got := e.Fingerprint([]string{"x", "y"}); got != "x=i2;y=?;" {
		t.Errorf("Fingerprint = %q", got)
	}
}
