package sem_test

// Differential testing of the three engines on randomly generated
// processes: the literal denotational semantics (this package), the
// exhaustive operational explorer (internal/op), and the scheduled
// executor (internal/runtime). The paper's consistency claim, fuzzed:
// up to the depth bound the denotational and operational trace sets
// coincide, and every trace an actual scheduled run can produce lies in
// the denotation.
//
// Batches are structured around the two documented approximation caveats
// of the Denoter (see denote.go): hide-free terms admit a strict equality
// check; terms with hiding are checked in the direction that must hold
// unconditionally (denotational ⊆ operational) plus runtime containment
// with a chatter budget inside the hide slack.

import (
	"math/rand"
	"strconv"
	"testing"

	"cspsat/internal/closure"
	"cspsat/internal/gen"
	"cspsat/internal/op"
	"cspsat/internal/runtime"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
)

const (
	diffDepth = 3 // trace-length window for the engine comparison
	runSeeds  = 3 // scheduled runs per generated process
)

// denoteBoth computes the denotational and operational sets at diffDepth,
// failing the test on evaluation errors (generated terms are closed and
// guarded, so every engine must terminate on them).
func denoteBoth(t *testing.T, label string, m *syntax.Module, main syntax.Proc) (*closure.Set, *closure.Set, sem.Env) {
	t.Helper()
	env := sem.NewEnv(m, 2)
	den, err := sem.Denote(main, env, diffDepth)
	if err != nil {
		t.Fatalf("%s: denote: %v\nmodule:\n%s", label, err, m)
	}
	ops, err := op.Traces(main, env, diffDepth)
	if err != nil {
		t.Fatalf("%s: op: %v\nmodule:\n%s", label, err, m)
	}
	return den, ops, env
}

// checkRuntimeContained executes the process under the scheduler with a
// few seeds and asserts the visible trace of every run is in the
// denotation. MaxEvents counts hidden events too, so the total chatter of
// a run is bounded by the window and stays inside the denoter's hide
// slack — the containment is exact, not best-effort.
func checkRuntimeContained(t *testing.T, label string, den *closure.Set, main syntax.Proc, env sem.Env, m *syntax.Module) {
	t.Helper()
	for seed := int64(0); seed < runSeeds; seed++ {
		res, err := runtime.Run(main, runtime.Config{Env: env, Seed: seed, MaxEvents: diffDepth})
		if err != nil {
			t.Fatalf("%s seed %d: run: %v\nmodule:\n%s", label, seed, err, m)
		}
		if !den.Contains(res.Trace) {
			t.Errorf("%s seed %d: scheduled run produced %v, not in the denotation %v\nmodule:\n%s",
				label, seed, res.Trace, den, m)
		}
	}
}

// TestDifferentialSequential: 200+ random sequential hide-free terms; the
// denotational and operational sets must be identical, and scheduled runs
// must land inside them.
func TestDifferentialSequential(t *testing.T) {
	r := rand.New(rand.NewSource(201))
	for i := 0; i < 220; i++ {
		m, main := gen.Module(r, gen.Config{MaxDepth: 4, Defs: 2})
		label := "seq/" + strconv.Itoa(i)
		den, ops, env := denoteBoth(t, label, m, main)
		if !den.Equal(ops) {
			t.Fatalf("%s: engines disagree\n den-only: %v\n op-only:  %v\nmodule:\n%s",
				label, den.FirstNotIn(ops), ops.FirstNotIn(den), m)
		}
		checkRuntimeContained(t, label, den, main, env, m)
	}
}

// TestDifferentialParallel: random terms with parallel composition but no
// hiding. Both engines are exact here (no chatter, and the value sample
// covers every literal the generator can emit), so equality is still the
// required outcome.
func TestDifferentialParallel(t *testing.T) {
	r := rand.New(rand.NewSource(202))
	for i := 0; i < 100; i++ {
		m, main := gen.Module(r, gen.Config{MaxDepth: 4, AllowPar: true})
		label := "par/" + strconv.Itoa(i)
		den, ops, env := denoteBoth(t, label, m, main)
		if !den.Equal(ops) {
			t.Fatalf("%s: engines disagree\n den-only: %v\n op-only:  %v\nmodule:\n%s",
				label, den.FirstNotIn(ops), ops.FirstNotIn(den), m)
		}
		checkRuntimeContained(t, label, den, main, env, m)
	}
}

// TestDifferentialHiding: random terms with hiding (and parallelism). The
// denoter's hide slack makes it potentially incomplete for chatter-heavy
// paths, so the unconditional direction is soundness: everything the
// denotational engine claims must be operationally realisable. Scheduled
// runs bound their chatter by MaxEvents ≤ slack, so their containment in
// the denotation is also unconditional.
func TestDifferentialHiding(t *testing.T) {
	r := rand.New(rand.NewSource(203))
	exact := 0
	for i := 0; i < 100; i++ {
		m, main := gen.Module(r, gen.Config{MaxDepth: 4, AllowPar: true, AllowHide: true})
		label := "hide/" + strconv.Itoa(i)
		den, ops, env := denoteBoth(t, label, m, main)
		if w := den.FirstNotIn(ops); w != nil {
			t.Fatalf("%s: denotational trace %v is not operationally realisable\nmodule:\n%s", label, w, m)
		}
		if den.Equal(ops) {
			exact++
		}
		checkRuntimeContained(t, label, den, main, env, m)
	}
	// The slack default covers ordinary terms; if almost none compare
	// exactly equal the slack (or the denoter) has regressed.
	if exact < 80 {
		t.Errorf("only %d/100 hiding terms denoted exactly; hide slack regressed?", exact)
	}
}

// TestDifferentialRuntimeDeterminism: equal seeds must reproduce equal
// traces — the property that makes the runtime usable as a differential
// witness at all.
func TestDifferentialRuntimeDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(204))
	for i := 0; i < 40; i++ {
		m, main := gen.Module(r, gen.Config{MaxDepth: 4, AllowPar: true})
		env := sem.NewEnv(m, 2)
		a, err := runtime.Run(main, runtime.Config{Env: env, Seed: 7, MaxEvents: 6})
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		b, err := runtime.Run(main, runtime.Config{Env: env, Seed: 7, MaxEvents: 6})
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if !a.Trace.Equal(b.Trace) {
			t.Fatalf("iter %d: equal seeds diverged: %v vs %v\nmodule:\n%s", i, a.Trace, b.Trace, m)
		}
	}
}
