package sem

import (
	"errors"
	"fmt"

	"cspsat/internal/syntax"
	"cspsat/internal/trace"
)

// maxAlphabetUnfolds bounds how many distinct (process, argument) instances
// the alphabet computation will unfold before concluding that the channel
// set is not statically determinable (e.g. a counter process q[x] that
// recurses as q[x+1] while indexing channels by x).
const maxAlphabetUnfolds = 512

// Alphabet computes the set of channels a process (expression) may ever
// communicate on — the paper's X and Y in (P X‖Y Q). Channel subscripts are
// evaluated under the environment; process references are unfolded to a
// fixed point over their instantiations. It fails when a channel subscript
// depends on a value that is only known at communication time (an
// input-bound variable); such compositions need explicit alphabets.
func Alphabet(p syntax.Proc, env Env) (trace.Set, error) {
	a := &alphaWalker{visited: map[string]bool{}}
	out := trace.NewSet()
	if err := a.walk(p, env, &out); err != nil {
		return trace.Set{}, err
	}
	return out, nil
}

type alphaWalker struct {
	visited map[string]bool
}

func (a *alphaWalker) walk(p syntax.Proc, env Env, acc *trace.Set) error {
	switch t := p.(type) {
	case syntax.Stop:
		return nil
	case syntax.Ref:
		key := t.Name
		if t.Sub != nil {
			v, err := env.EvalExpr(t.Sub)
			if err != nil {
				return fmt.Errorf("sem: alphabet of %s: %w", t, err)
			}
			key = t.Name + "[" + v.Key() + "]"
		}
		if a.visited[key] {
			return nil
		}
		if len(a.visited) >= maxAlphabetUnfolds {
			return fmt.Errorf("sem: alphabet computation exceeded %d unfoldings at %s; give explicit alphabets", maxAlphabetUnfolds, t)
		}
		a.visited[key] = true
		body, err := env.Instantiate(t)
		if err != nil {
			return err
		}
		return a.walk(body, env, acc)
	case syntax.Output:
		c, err := env.EvalChanRef(t.Ch)
		if err != nil {
			return fmt.Errorf("sem: alphabet: %w", err)
		}
		acc.Add(c)
		return a.walk(t.Cont, env, acc)
	case syntax.Input:
		c, err := env.EvalChanRef(t.Ch)
		if err != nil {
			return fmt.Errorf("sem: alphabet: %w", err)
		}
		acc.Add(c)
		dom, err := env.EvalSet(t.Dom)
		if err != nil {
			return err
		}
		if dom.IsFinite() {
			// The continuation may depend on the bound variable (e.g. the
			// sender's q[x]); enumerating the finite domain keeps the
			// union of alphabets exact. The shared visited set bounds the
			// cost to one visit per distinct process instance.
			for _, v := range dom.Enumerate() {
				if err := a.walk(t.Cont, env.Bind(t.Var, v), acc); err != nil {
					return err
				}
			}
			return nil
		}
		// Infinite domain: walk unbound. If a channel subscript (or a
		// process-array index) downstream genuinely depends on the bound
		// variable the walk fails with ErrUnbound, which is exactly the
		// case where inference is impossible and explicit alphabets are
		// required; probing with a sample value would silently compute a
		// wrong alphabet instead.
		if err := a.walk(t.Cont, env, acc); err != nil {
			if errors.Is(err, ErrUnbound) {
				return fmt.Errorf("sem: alphabet depends on input variable %q drawn from infinite %s; give explicit alphabets: %w", t.Var, dom, err)
			}
			return err
		}
		return nil
	case syntax.Alt:
		if err := a.walk(t.L, env, acc); err != nil {
			return err
		}
		return a.walk(t.R, env, acc)
	case syntax.IChoice:
		if err := a.walk(t.L, env, acc); err != nil {
			return err
		}
		return a.walk(t.R, env, acc)
	case syntax.Par:
		// The alphabet of a composition is the union of the two sides'.
		// Walk the sides with the same walker (sharing the visited set),
		// so recursive definitions that contain compositions terminate;
		// explicit alphabets are taken at face value.
		if t.AlphaL != nil {
			s, err := env.EvalChanItems(t.AlphaL)
			if err != nil {
				return err
			}
			acc.AddSet(s)
		} else if err := a.walk(t.L, env, acc); err != nil {
			return err
		}
		if t.AlphaR != nil {
			s, err := env.EvalChanItems(t.AlphaR)
			if err != nil {
				return err
			}
			acc.AddSet(s)
		} else if err := a.walk(t.R, env, acc); err != nil {
			return err
		}
		return nil
	case syntax.Hiding:
		// Hidden channels are still "used" by the body but are not
		// externally visible; for composition purposes the alphabet of
		// (chan L; P) excludes L.
		hidden, err := env.EvalChanItems(t.Channels)
		if err != nil {
			return err
		}
		inner := trace.NewSet()
		if err := a.walk(t.Body, env, &inner); err != nil {
			return err
		}
		acc.AddSet(inner.Minus(hidden))
		return nil
	default:
		return fmt.Errorf("sem: alphabet of unknown process form %T", p)
	}
}

// ParAlphabets returns the alphabets X and Y of a parallel composition,
// either the explicitly declared ones or, when absent, the inferred channel
// sets of each side.
func ParAlphabets(p syntax.Par, env Env) (x, y trace.Set, err error) {
	if p.AlphaL != nil {
		x, err = env.EvalChanItems(p.AlphaL)
	} else {
		x, err = Alphabet(p.L, env)
	}
	if err != nil {
		return trace.Set{}, trace.Set{}, err
	}
	if p.AlphaR != nil {
		y, err = env.EvalChanItems(p.AlphaR)
	} else {
		y, err = Alphabet(p.R, env)
	}
	if err != nil {
		return trace.Set{}, trace.Set{}, err
	}
	return x, y, nil
}
