// Package sem gives meaning to the syntax: environments and expression
// evaluation (the paper's ρ, §3.2), alphabet computation for parallel
// composition, and the denotational semantic function μ mapping process
// expressions to prefix closures via the paper's §3.3 approximation chain.
package sem

import (
	"errors"
	"fmt"
	"sync"

	"cspsat/internal/syntax"
	"cspsat/internal/trace"
	"cspsat/internal/value"
)

// ErrUnbound is wrapped by evaluation errors caused by an unbound variable,
// so callers (notably alphabet inference) can distinguish "needs a binding"
// from genuine failures.
var ErrUnbound = errors.New("unbound variable")

// Env is an environment ρ: it carries the enclosing module (process
// definitions, named sets, constant arrays), the current variable bindings,
// and the sample width used for the infinite NAT domain. Env is a small
// value; Bind returns an extended copy, so environments form a persistent
// chain and may be captured freely by continuations.
type Env struct {
	module   *syntax.Module
	natWidth int
	vars     *binding
	chanSets *chanSetCache
}

// chanSetCache memoizes EvalChanItems for literal channel lists and
// EvalSet for binding-independent set expressions, keyed by slice identity
// (and set name). The op engine stamps every parallel composition in every
// successor term with its (literal) alphabet items, and copy-on-write
// substitution preserves the identity of closed subterms, so exploration
// resolves the same few lists and domains once per state without this
// cache and once per module with it. The keys' element pointers keep the
// slices alive, so an address is never recycled under a live entry. All
// environments derived from one NewEnv share the cache; the cached values
// evaluate the same under any bindings (and NatWidth, which NAT depends
// on, is fixed at NewEnv time).
type chanSetCache struct {
	m    sync.Map // chanItemsKey → trace.Set
	doms sync.Map // string (set name) or enumKey → value.Domain
}

type chanItemsKey struct {
	first *syntax.ChanItem
	n     int
}

type enumKey struct {
	first *syntax.Expr
	n     int
}

// literalChanItems reports whether every subscript in the list is absent or
// a literal — the condition under which the list's channel set cannot
// depend on the environment's bindings.
func literalChanItems(items []syntax.ChanItem) bool {
	lit := func(e syntax.Expr) bool {
		if e == nil {
			return true
		}
		_, ok := e.(syntax.IntLit)
		return ok
	}
	for _, it := range items {
		if !lit(it.Sub) || !lit(it.Lo) || !lit(it.Hi) {
			return false
		}
	}
	return true
}

type binding struct {
	name string
	val  value.V
	next *binding
}

// NewEnv returns an environment over the given module. natWidth sets the
// enumeration width of NAT (0 means value.DefaultNatSample).
func NewEnv(m *syntax.Module, natWidth int) Env {
	return Env{module: m, natWidth: natWidth, chanSets: &chanSetCache{}}
}

// Module returns the enclosing module.
func (e Env) Module() *syntax.Module { return e.module }

// NatWidth returns the NAT sample width in effect.
func (e Env) NatWidth() int {
	if e.natWidth <= 0 {
		return value.DefaultNatSample
	}
	return e.natWidth
}

// Bind returns e extended with x ↦ v (the paper's ρ[v/x]).
func (e Env) Bind(x string, v value.V) Env {
	e.vars = &binding{name: x, val: v, next: e.vars}
	return e
}

// LookupVar returns the value bound to x, if any.
func (e Env) LookupVar(x string) (value.V, bool) {
	for b := e.vars; b != nil; b = b.next {
		if b.name == x {
			return b.val, true
		}
	}
	return value.V{}, false
}

// Fingerprint renders the bindings of the given variables, for use in
// visited-state keys. Variables without bindings are rendered as "?".
func (e Env) Fingerprint(vars []string) string {
	out := ""
	for _, x := range vars {
		v, ok := e.LookupVar(x)
		if ok {
			out += x + "=" + v.Key() + ";"
		} else {
			out += x + "=?;"
		}
	}
	return out
}

// EvalExpr evaluates a value expression under the environment.
func (e Env) EvalExpr(x syntax.Expr) (value.V, error) {
	switch t := x.(type) {
	case syntax.IntLit:
		return value.Int(t.Val), nil
	case syntax.SymLit:
		return value.Sym(t.Name), nil
	case syntax.Var:
		v, ok := e.LookupVar(t.Name)
		if !ok {
			return value.V{}, fmt.Errorf("sem: %w %q", ErrUnbound, t.Name)
		}
		return v, nil
	case syntax.Binary:
		l, err := e.EvalExpr(t.L)
		if err != nil {
			return value.V{}, err
		}
		r, err := e.EvalExpr(t.R)
		if err != nil {
			return value.V{}, err
		}
		if l.Kind() != value.KindInt || r.Kind() != value.KindInt {
			return value.V{}, fmt.Errorf("sem: arithmetic on non-integers %v %s %v", l, t.Op, r)
		}
		return evalArith(t.Op, l.AsInt(), r.AsInt())
	case syntax.Index:
		arr, ok := e.module.Arrays[t.Name]
		if !ok {
			return value.V{}, fmt.Errorf("sem: unknown constant array %q", t.Name)
		}
		iv, err := e.EvalExpr(t.Sub)
		if err != nil {
			return value.V{}, err
		}
		if iv.Kind() != value.KindInt {
			return value.V{}, fmt.Errorf("sem: non-integer subscript %v for %s", iv, t.Name)
		}
		i := iv.AsInt() - arr.Lo
		if i < 0 || i >= int64(len(arr.Elems)) {
			return value.V{}, fmt.Errorf("sem: subscript %d out of range for %s[%d..%d]",
				iv.AsInt(), arr.Name, arr.Lo, arr.Lo+int64(len(arr.Elems))-1)
		}
		return value.Int(arr.Elems[i]), nil
	default:
		return value.V{}, fmt.Errorf("sem: cannot evaluate expression %v", x)
	}
}

func evalArith(op syntax.BinOp, l, r int64) (value.V, error) {
	switch op {
	case syntax.OpAdd:
		return value.Int(l + r), nil
	case syntax.OpSub:
		return value.Int(l - r), nil
	case syntax.OpMul:
		return value.Int(l * r), nil
	case syntax.OpDiv:
		if r == 0 {
			return value.V{}, fmt.Errorf("sem: division by zero")
		}
		return value.Int(l / r), nil
	case syntax.OpMod:
		if r == 0 {
			return value.V{}, fmt.Errorf("sem: modulo by zero")
		}
		return value.Int(l % r), nil
	default:
		return value.V{}, fmt.Errorf("sem: unknown operator %v", op)
	}
}

// EvalSet evaluates a set expression to a message domain. Named sets and
// all-literal enumerations — the overwhelmingly common input domains — are
// cached, since exploration re-evaluates each input's domain on every
// state visit; domains are immutable, so the cached value is shared.
func (e Env) EvalSet(s syntax.SetExpr) (value.Domain, error) {
	if e.chanSets != nil {
		switch t := s.(type) {
		case syntax.SetName:
			if v, ok := e.chanSets.doms.Load(t.Name); ok {
				return v.(value.Domain), nil
			}
			d, err := e.evalSet(s)
			if err != nil {
				return nil, err
			}
			e.chanSets.doms.Store(t.Name, d)
			return d, nil
		case syntax.EnumSet:
			if len(t.Elems) == 0 || !literalExprs(t.Elems) {
				break
			}
			key := enumKey{first: &t.Elems[0], n: len(t.Elems)}
			if v, ok := e.chanSets.doms.Load(key); ok {
				return v.(value.Domain), nil
			}
			d, err := e.evalSet(s)
			if err != nil {
				return nil, err
			}
			e.chanSets.doms.Store(key, d)
			return d, nil
		}
	}
	return e.evalSet(s)
}

// literalExprs reports whether every expression is a literal, so that
// evaluation cannot depend on the environment's bindings.
func literalExprs(es []syntax.Expr) bool {
	for _, e := range es {
		switch e.(type) {
		case syntax.IntLit, syntax.SymLit:
		default:
			return false
		}
	}
	return true
}

func (e Env) evalSet(s syntax.SetExpr) (value.Domain, error) {
	switch t := s.(type) {
	case syntax.SetName:
		if t.Name == "NAT" {
			return value.Nat{SampleWidth: e.NatWidth()}, nil
		}
		inner, ok := e.module.Sets[t.Name]
		if !ok {
			return nil, fmt.Errorf("sem: unknown set %q", t.Name)
		}
		return e.EvalSet(inner)
	case syntax.RangeSet:
		lo, err := e.EvalExpr(t.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := e.EvalExpr(t.Hi)
		if err != nil {
			return nil, err
		}
		if lo.Kind() != value.KindInt || hi.Kind() != value.KindInt {
			return nil, fmt.Errorf("sem: non-integer range bounds %v..%v", lo, hi)
		}
		return value.IntRange{Lo: lo.AsInt(), Hi: hi.AsInt()}, nil
	case syntax.EnumSet:
		elems := make([]value.V, len(t.Elems))
		for i, x := range t.Elems {
			v, err := e.EvalExpr(x)
			if err != nil {
				return nil, err
			}
			elems[i] = v
		}
		return value.NewEnum(elems...), nil
	case syntax.UnionSet:
		a, err := e.EvalSet(t.A)
		if err != nil {
			return nil, err
		}
		b, err := e.EvalSet(t.B)
		if err != nil {
			return nil, err
		}
		return value.Union{A: a, B: b}, nil
	default:
		return nil, fmt.Errorf("sem: cannot evaluate set expression %v", s)
	}
}

// EvalChanRef resolves a channel reference to a concrete channel identity,
// evaluating the subscript if present.
func (e Env) EvalChanRef(c syntax.ChanRef) (trace.Chan, error) {
	if c.Sub == nil {
		return trace.Chan(c.Name), nil
	}
	v, err := e.EvalExpr(c.Sub)
	if err != nil {
		return "", fmt.Errorf("sem: channel %s: %w", c.Name, err)
	}
	if v.Kind() != value.KindInt {
		return "", fmt.Errorf("sem: non-integer channel subscript %v for %s", v, c.Name)
	}
	return trace.Sub(c.Name, v.AsInt()), nil
}

// EvalChanItems resolves a channel list (names, subscripted names, and
// array ranges such as col[0..3]) to a concrete channel set. Literal lists
// are cached by slice identity and the cached set is returned shared, so
// the result must be treated as read-only — callers that need to mutate it
// must Clone first (trace.Set's Add methods write through the backing
// array).
func (e Env) EvalChanItems(items []syntax.ChanItem) (trace.Set, error) {
	cacheable := e.chanSets != nil && len(items) > 0 && literalChanItems(items)
	var key chanItemsKey
	if cacheable {
		key = chanItemsKey{first: &items[0], n: len(items)}
		if v, ok := e.chanSets.m.Load(key); ok {
			return v.(trace.Set), nil
		}
	}
	out, err := e.evalChanItems(items)
	if err != nil {
		return out, err
	}
	if cacheable {
		e.chanSets.m.Store(key, out)
	}
	return out, nil
}

func (e Env) evalChanItems(items []syntax.ChanItem) (trace.Set, error) {
	out := trace.NewSet()
	for _, it := range items {
		switch {
		case it.Lo != nil:
			lo, err := e.EvalExpr(it.Lo)
			if err != nil {
				return trace.Set{}, err
			}
			hi, err := e.EvalExpr(it.Hi)
			if err != nil {
				return trace.Set{}, err
			}
			if lo.Kind() != value.KindInt || hi.Kind() != value.KindInt {
				return trace.Set{}, fmt.Errorf("sem: non-integer channel range %s", it)
			}
			for i := lo.AsInt(); i <= hi.AsInt(); i++ {
				out.Add(trace.Sub(it.Name, i))
			}
		case it.Sub != nil:
			c, err := e.EvalChanRef(syntax.ChanRef{Name: it.Name, Sub: it.Sub})
			if err != nil {
				return trace.Set{}, err
			}
			out.Add(c)
		default:
			out.Add(trace.Chan(it.Name))
		}
	}
	return out, nil
}

// Instantiate resolves a process reference to the body of its definition
// with the array parameter (if any) substituted by its evaluated value, the
// paper's §1.2(3). It returns the instantiated body.
func (e Env) Instantiate(r syntax.Ref) (syntax.Proc, error) {
	def, ok := e.module.Lookup(r.Name)
	if !ok {
		return nil, fmt.Errorf("sem: undefined process %q", r.Name)
	}
	if def.IsArray() {
		if r.Sub == nil {
			return nil, fmt.Errorf("sem: process array %q used without subscript", r.Name)
		}
		v, err := e.EvalExpr(r.Sub)
		if err != nil {
			return nil, fmt.Errorf("sem: instantiating %s: %w", r, err)
		}
		dom, err := e.EvalSet(def.ParamDom)
		if err != nil {
			return nil, err
		}
		if !dom.Contains(v) {
			return nil, fmt.Errorf("sem: subscript %v of %s outside its range %s", v, r.Name, dom)
		}
		return syntax.SubstProc(def.Body, def.Param, valueToExpr(v)), nil
	}
	if r.Sub != nil {
		return nil, fmt.Errorf("sem: process %q is not an array but used with subscript", r.Name)
	}
	return def.Body, nil
}

// ValueToExpr turns an evaluated value back into a literal expression, for
// substituting communicated values into continuation terms (the paper's
// P^x_v in rule 6).
func ValueToExpr(v value.V) syntax.Expr { return valueToExpr(v) }

// valueToExpr turns an evaluated value back into a literal expression for
// substitution into process bodies.
func valueToExpr(v value.V) syntax.Expr {
	switch v.Kind() {
	case value.KindInt:
		return syntax.IntLit{Val: v.AsInt()}
	case value.KindSym:
		return syntax.SymLit{Name: v.AsSym()}
	default:
		// Booleans and sequences never occur as process-array indices in
		// the language; render via symbol to keep substitution total.
		return syntax.SymLit{Name: v.String()}
	}
}
