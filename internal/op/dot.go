package op

import (
	"fmt"
	"sort"
	"strings"
)

// DotLTS renders the labelled transition system reachable from s, explored
// breadth-first to the given number of transitions deep, as a Graphviz
// digraph. Visible communications label solid edges; τ-steps are dashed.
// States are deduplicated by behaviour, so recursive processes draw as
// cycles. Useful for seeing a spec: `csptrace -dot file.csp proc | dot -Tsvg`.
func DotLTS(s State, depth int) (string, error) {
	type edgeRec struct {
		from, to int
		label    string
		tau      bool
	}
	ids := map[string]int{}
	var labels []string
	var edges []edgeRec
	idOf := func(st State) (int, bool) {
		k := st.Key()
		if id, ok := ids[k]; ok {
			return id, false
		}
		id := len(labels)
		ids[k] = id
		labels = append(labels, st.Proc.String())
		return id, true
	}

	rootID, _ := idOf(s)
	type item struct {
		st State
		d  int
		id int
	}
	queue := []item{{st: s, d: 0, id: rootID}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.d >= depth {
			continue
		}
		ts, err := Step(cur.st)
		if err != nil {
			return "", err
		}
		for _, tr := range ts {
			nid, fresh := idOf(tr.Next)
			edges = append(edges, edgeRec{from: cur.id, to: nid, label: tr.Ev.String(), tau: tr.Tau})
			if fresh {
				queue = append(queue, item{st: tr.Next, d: cur.d + 1, id: nid})
			}
		}
	}

	// Deduplicate parallel edges (same endpoints+label can arise from
	// distinct resolutions).
	seen := map[string]bool{}
	var uniq []edgeRec
	for _, e := range edges {
		k := fmt.Sprintf("%d>%d>%s>%v", e.from, e.to, e.label, e.tau)
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, e)
		}
	}
	sort.Slice(uniq, func(i, j int) bool {
		if uniq[i].from != uniq[j].from {
			return uniq[i].from < uniq[j].from
		}
		if uniq[i].to != uniq[j].to {
			return uniq[i].to < uniq[j].to
		}
		return uniq[i].label < uniq[j].label
	})

	var sb strings.Builder
	sb.WriteString("digraph lts {\n")
	sb.WriteString("  rankdir=LR;\n  node [shape=circle, fontsize=10];\n")
	for id, l := range labels {
		short := l
		const maxLabel = 40
		if len(short) > maxLabel {
			short = short[:maxLabel] + "…"
		}
		shape := "circle"
		if id == 0 {
			shape = "doublecircle"
		}
		fmt.Fprintf(&sb, "  n%d [shape=%s, label=%q];\n", id, shape, fmt.Sprintf("s%d", id))
		fmt.Fprintf(&sb, "  // s%d = %s\n", id, short)
	}
	for _, e := range uniq {
		style := ""
		label := e.label
		if e.tau {
			style = ", style=dashed, color=gray40"
			label = "τ " + label
		}
		fmt.Fprintf(&sb, "  n%d -> n%d [label=%q%s];\n", e.from, e.to, label, style)
	}
	sb.WriteString("}\n")
	return sb.String(), nil
}
