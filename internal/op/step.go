// Package op gives the language a small-step operational semantics: a
// labelled transition system whose labels are the paper's communications
// c.m, with hidden communications (inside chan L; P) appearing as τ-steps.
// The traces it enumerates coincide with the denotational prefix-closure
// semantics of internal/sem (cross-checked in tests, mirroring the paper's
// §3 consistency argument), but exploration scales better and yields
// counterexample traces and a step-by-step simulator.
//
// Communication offers, not transitions, are the primitive: an output
// offers one concrete value, while an input offers its whole (possibly
// infinite) domain. Synchronisation inside a parallel composition matches
// offers exactly — an output of value 17 meets an input of NAT even when
// the engine's NAT *sample* is narrower — and only unsynchronised external
// inputs are sampled, when offers are expanded into concrete transitions at
// the boundary. This keeps internal dataflow (e.g. the multiplier's partial
// sums) exact regardless of the sample width.
package op

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"cspsat/internal/sem"
	"cspsat/internal/syntax"
	"cspsat/internal/trace"
	"cspsat/internal/value"
)

// State is a configuration of the transition system: a process term plus
// the environment binding its free variables. Communicated values are
// substituted into terms, so terms stay closed and states compare by their
// rendered form.
type State struct {
	Proc syntax.Proc
	Env  sem.Env
}

// NewState returns the initial state of a process under an environment.
func NewState(p syntax.Proc, env sem.Env) State { return State{Proc: p, Env: env} }

// Key returns a canonical identity for the state. Terms are closed (input
// values are substituted in), so the rendered term determines behaviour.
func (s State) Key() string { return s.Proc.String() }

// OfferKind discriminates output offers (one concrete value) from input
// offers (a domain of acceptable values).
type OfferKind int

// Offer kinds.
const (
	OfferOut OfferKind = iota + 1
	OfferIn
)

// Offer is one communication capability of a state: on channel Ch, either
// the concrete value Val (OfferOut) or any value of Dom (OfferIn). Tau
// marks offers hidden by an enclosing chan L; they are complete internal
// events, always OfferOut. Next yields the successor state for the value
// actually communicated.
type Offer struct {
	Ch   trace.Chan
	Kind OfferKind
	Tau  bool
	Val  value.V
	Dom  value.Domain
	next func(v value.V) State
}

// Next returns the successor state when value v is communicated. For an
// output offer, v must be the offered value.
func (o Offer) Next(v value.V) State { return o.next(v) }

// String renders the offer for diagnostics.
func (o Offer) String() string {
	s := string(o.Ch)
	switch o.Kind {
	case OfferOut:
		s += "!" + o.Val.String()
	case OfferIn:
		s += "?" + o.Dom.String()
	}
	if o.Tau {
		return "τ(" + s + ")"
	}
	return s
}

// Transition is one concrete step: the communication that occurs, whether
// it is hidden (τ), and the successor state.
type Transition struct {
	Ev   trace.Event
	Tau  bool
	Next State
}

// String renders the transition label; hidden events are wrapped in τ(·).
func (t Transition) String() string {
	if t.Tau {
		return "τ(" + t.Ev.String() + ")"
	}
	return t.Ev.String()
}

// maxUnfold bounds consecutive definition unfoldings within a single Offers
// call, so that unguarded recursion (p ≜ p, or p ≜ (p | q)) is reported
// rather than looping forever.
const maxUnfold = 256

// Offers returns every communication offer enabled in state s.
func Offers(s State) ([]Offer, error) {
	var out []Offer
	if err := offers(s.Proc, s.Env, 0, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// offerScratch recycles the offer buffers the recursion fills: exploration
// computes offers on every state visit and discards them immediately, so
// pooling them (and the per-composition merge scratch) takes the slice
// churn out of the GC's hands.
var offerScratch = sync.Pool{New: func() any { s := make([]Offer, 0, 16); return &s }}

// Step returns every concrete transition enabled in state s,
// deterministically ordered. Unsynchronised input offers are expanded over
// their sampled domains here, at the external boundary.
func Step(s State) ([]Transition, error) {
	sp := offerScratch.Get().(*[]Offer)
	defer func() {
		*sp = (*sp)[:0]
		offerScratch.Put(sp)
	}()
	if err := offers(s.Proc, s.Env, 0, sp); err != nil {
		return nil, err
	}
	var ts []Transition
	for _, o := range *sp {
		switch o.Kind {
		case OfferOut:
			ts = append(ts, Transition{
				Ev:   trace.Event{Chan: o.Ch, Msg: o.Val},
				Tau:  o.Tau,
				Next: o.Next(o.Val),
			})
		case OfferIn:
			for _, v := range o.Dom.Enumerate() {
				ts = append(ts, Transition{
					Ev:   trace.Event{Chan: o.Ch, Msg: v},
					Tau:  o.Tau,
					Next: o.Next(v),
				})
			}
		}
	}
	sort.Sort(&tsByLabel{ts: ts, keys: make([]string, len(ts))})
	return ts, nil
}

// tsByLabel orders transitions visible-first, then by event, then by
// successor key. The key tiebreak only applies to transitions sharing an
// event, so keys are rendered lazily and at most once per transition —
// rendering is the successor term's full text, far too expensive to repeat
// on every comparison (or to run eagerly for the common all-distinct case).
type tsByLabel struct {
	ts   []Transition
	keys []string
}

func (s *tsByLabel) Len() int { return len(s.ts) }
func (s *tsByLabel) Swap(i, j int) {
	s.ts[i], s.ts[j] = s.ts[j], s.ts[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}
func (s *tsByLabel) key(i int) string {
	if s.keys[i] == "" {
		s.keys[i] = s.ts[i].Next.Key()
	}
	return s.keys[i]
}
func (s *tsByLabel) Less(i, j int) bool {
	if s.ts[i].Tau != s.ts[j].Tau {
		return !s.ts[i].Tau
	}
	if c := s.ts[i].Ev.Compare(s.ts[j].Ev); c != 0 {
		return c < 0
	}
	return strings.Compare(s.key(i), s.key(j)) < 0
}

// offers appends every communication offer enabled by p to *dst. The
// append-into shape lets Alt and the prefix forms contribute offers with no
// slice allocation at all, and lets Par and Hiding carve their operands'
// offers out of dst as spans instead of materialising fresh slices.
func offers(p syntax.Proc, env sem.Env, unfolds int, dst *[]Offer) error {
	switch t := p.(type) {
	case syntax.Stop:
		return nil

	case syntax.Ref:
		if unfolds >= maxUnfold {
			return fmt.Errorf("op: unguarded recursion: %d consecutive unfoldings at %s", unfolds, t)
		}
		body, err := env.Instantiate(t)
		if err != nil {
			return err
		}
		return offers(body, env, unfolds+1, dst)

	case syntax.Output:
		c, err := env.EvalChanRef(t.Ch)
		if err != nil {
			return err
		}
		v, err := env.EvalExpr(t.Val)
		if err != nil {
			return err
		}
		cont := t.Cont
		*dst = append(*dst, Offer{
			Ch:   c,
			Kind: OfferOut,
			Val:  v,
			next: func(value.V) State { return State{Proc: cont, Env: env} },
		})
		return nil

	case syntax.Input:
		c, err := env.EvalChanRef(t.Ch)
		if err != nil {
			return err
		}
		dom, err := env.EvalSet(t.Dom)
		if err != nil {
			return err
		}
		cont, varName := t.Cont, t.Var
		*dst = append(*dst, Offer{
			Ch:   c,
			Kind: OfferIn,
			Dom:  dom,
			next: func(v value.V) State {
				// The paper's P^x_v of rule 6: substitute the communicated
				// value into the continuation term, keeping terms closed.
				return State{Proc: syntax.SubstProc(cont, varName, sem.ValueToExpr(v)), Env: env}
			},
		})
		return nil

	case syntax.Alt:
		// In the trace model (P | Q) denotes the union of behaviours; the
		// enabled first offers are those of either side.
		if err := offers(t.L, env, unfolds, dst); err != nil {
			return err
		}
		return offers(t.R, env, unfolds, dst)

	case syntax.IChoice:
		// Internal choice resolves by a silent step to one side — the
		// time-dependent non-determinism the paper's conclusion describes.
		// The τ-events carry branch indices on the pseudo-channel TauChan
		// for the step log; they never become visible.
		left, right := t.L, t.R
		*dst = append(*dst,
			Offer{Ch: trace.TauChan, Kind: OfferOut, Tau: true, Val: value.Int(0),
				next: func(value.V) State { return State{Proc: left, Env: env} }},
			Offer{Ch: trace.TauChan, Kind: OfferOut, Tau: true, Val: value.Int(1),
				next: func(value.V) State { return State{Proc: right, Env: env} }})
		return nil

	case syntax.Par:
		return offersPar(t, env, unfolds, dst)

	case syntax.Hiding:
		return offersHiding(t, env, unfolds, dst)

	default:
		return fmt.Errorf("op: cannot step process form %T", p)
	}
}

// hideCtx is the context shared by every rewrapped offer of one hiding
// visit. Offer continuations capture only a pointer to it (plus the inner
// continuation), keeping the per-offer closure small — exploration mints
// these closures on every state visit, so their size sets the GC rate.
type hideCtx struct {
	channels []syntax.ChanItem
}

func (c *hideCtx) rewrap(on func(value.V) State, v value.V) State {
	n := on(v)
	return State{Proc: syntax.Hiding{Channels: c.channels, Body: n.Proc}, Env: n.Env}
}

func offersHiding(t syntax.Hiding, env sem.Env, unfolds int, dst *[]Offer) error {
	hidden, err := env.EvalChanItems(t.Channels)
	if err != nil {
		return err
	}
	base := len(*dst)
	if err := offers(t.Body, env, unfolds, dst); err != nil {
		return err
	}
	ctx := &hideCtx{channels: t.Channels}
	sp := offerScratch.Get().(*[]Offer)
	out := (*sp)[:0]
	for _, o := range (*dst)[base:] {
		on := o.next
		rewrap := func(v value.V) State { return ctx.rewrap(on, v) }
		if !hidden.Contains(o.Ch) {
			out = append(out, Offer{Ch: o.Ch, Kind: o.Kind, Tau: o.Tau, Val: o.Val, Dom: o.Dom, next: rewrap})
			continue
		}
		switch o.Kind {
		case OfferOut:
			out = append(out, Offer{Ch: o.Ch, Kind: OfferOut, Tau: true, Val: o.Val, next: rewrap})
		case OfferIn:
			// A lone input on a hidden channel: the communication happens
			// internally with a non-determinate value; expand over the
			// sampled domain as internal τ events.
			for _, v := range o.Dom.Enumerate() {
				out = append(out, Offer{Ch: o.Ch, Kind: OfferOut, Tau: true, Val: v, next: rewrap})
			}
		}
	}
	*dst = append((*dst)[:base], out...)
	*sp = out[:0]
	offerScratch.Put(sp)
	return nil
}

// parCtx is the context shared by every offer of one parallel-composition
// visit; as with hideCtx, per-offer continuations capture only the pointer
// and the two inner continuations.
type parCtx struct {
	l, r           syntax.Proc
	alphaL, alphaR []syntax.ChanItem
	env            sem.Env
}

func (c *parCtx) rejoin(ln, rn func(value.V) State, v value.V) State {
	lp, rp := c.l, c.r
	if ln != nil {
		lp = ln(v).Proc
	}
	if rn != nil {
		rp = rn(v).Proc
	}
	return State{Proc: syntax.Par{L: lp, R: rp, AlphaL: c.alphaL, AlphaR: c.alphaR}, Env: c.env}
}

func offersPar(t syntax.Par, env sem.Env, unfolds int, dst *[]Offer) error {
	x, y, err := sem.ParAlphabets(t, env)
	if err != nil {
		return err
	}
	// Keep the (possibly explicit) alphabets on the successor terms, so
	// they are not re-inferred from the narrowed residual processes: the
	// alphabet of a network is fixed at composition time, not per state.
	alphaL, alphaR := t.AlphaL, t.AlphaR
	if alphaL == nil {
		alphaL = itemsOf(x)
	}
	if alphaR == nil {
		alphaR = itemsOf(y)
	}
	// Both sides' offers land in dst as adjacent spans; the combined offers
	// are assembled in a pooled scratch (reading the spans) and then written
	// back over them.
	base := len(*dst)
	if err := offers(t.L, env, unfolds, dst); err != nil {
		return err
	}
	mid := len(*dst)
	if err := offers(t.R, env, unfolds, dst); err != nil {
		return err
	}
	l, r := (*dst)[base:mid], (*dst)[mid:]
	ctx := &parCtx{l: t.L, r: t.R, alphaL: alphaL, alphaR: alphaR, env: env}
	rejoin := func(ln, rn func(value.V) State) func(value.V) State {
		return func(v value.V) State { return ctx.rejoin(ln, rn, v) }
	}
	sp := offerScratch.Get().(*[]Offer)
	out := (*sp)[:0]
	for _, lo := range l {
		if lo.Tau || !y.Contains(lo.Ch) {
			// τ-steps and channels private to the left interleave.
			out = append(out, Offer{Ch: lo.Ch, Kind: lo.Kind, Tau: lo.Tau, Val: lo.Val, Dom: lo.Dom, next: rejoin(lo.next, nil)})
			continue
		}
		// Shared channel: needs a matching offer on the right.
		for _, ro := range r {
			if ro.Tau || ro.Ch != lo.Ch {
				continue
			}
			if synced, ok := syncOffers(lo, ro, rejoin(lo.next, ro.next)); ok {
				out = append(out, synced)
			}
		}
	}
	for _, ro := range r {
		if ro.Tau || !x.Contains(ro.Ch) {
			out = append(out, Offer{Ch: ro.Ch, Kind: ro.Kind, Tau: ro.Tau, Val: ro.Val, Dom: ro.Dom, next: rejoin(nil, ro.next)})
		}
		// Shared offers were handled (or refused) in the left pass.
	}
	*dst = append((*dst)[:base], out...)
	*sp = out[:0]
	offerScratch.Put(sp)
	return nil
}

// syncOffers combines two offers on the same shared channel into the joint
// offer of the synchronised communication, per the paper: "one of them
// determines the value transmitted by an output c!e and the other is
// prepared to accept any value by an input c?x:M". Output–output
// synchronisation requires equal values; input–input intersects domains.
func syncOffers(a, b Offer, next func(value.V) State) (Offer, bool) {
	switch {
	case a.Kind == OfferOut && b.Kind == OfferOut:
		if !a.Val.Equal(b.Val) {
			return Offer{}, false
		}
		return Offer{Ch: a.Ch, Kind: OfferOut, Val: a.Val, next: next}, true
	case a.Kind == OfferOut && b.Kind == OfferIn:
		if !b.Dom.Contains(a.Val) {
			return Offer{}, false
		}
		return Offer{Ch: a.Ch, Kind: OfferOut, Val: a.Val, next: next}, true
	case a.Kind == OfferIn && b.Kind == OfferOut:
		if !a.Dom.Contains(b.Val) {
			return Offer{}, false
		}
		return Offer{Ch: a.Ch, Kind: OfferOut, Val: b.Val, next: next}, true
	default:
		return Offer{Ch: a.Ch, Kind: OfferIn, Dom: IntersectDomain{A: a.Dom, B: b.Dom}, next: next}, true
	}
}

// IntersectDomain is the meet of two message domains, arising when two
// inputs synchronise on a shared channel.
type IntersectDomain struct {
	A, B value.Domain
}

// Contains implements value.Domain.
func (d IntersectDomain) Contains(v value.V) bool { return d.A.Contains(v) && d.B.Contains(v) }

// Enumerate implements value.Domain: the union of both samples, filtered by
// joint membership, deduplicated.
func (d IntersectDomain) Enumerate() []value.V {
	seen := map[string]bool{}
	var out []value.V
	for _, v := range append(d.A.Enumerate(), d.B.Enumerate()...) {
		if d.Contains(v) && !seen[v.Key()] {
			seen[v.Key()] = true
			out = append(out, v)
		}
	}
	return out
}

// IsFinite implements value.Domain.
func (d IntersectDomain) IsFinite() bool { return d.A.IsFinite() || d.B.IsFinite() }

func (d IntersectDomain) String() string { return d.A.String() + "∩" + d.B.String() }

func itemsOf(s trace.Set) []syntax.ChanItem {
	cs := s.Slice()
	items := make([]syntax.ChanItem, 0, len(cs))
	for _, c := range cs {
		if name, sub, ok := c.ArrayName(); ok {
			items = append(items, syntax.ChanItem{Name: name, Sub: syntax.IntLit{Val: sub}})
		} else {
			items = append(items, syntax.ChanItem{Name: string(c)})
		}
	}
	return items
}
