// Package op gives the language a small-step operational semantics: a
// labelled transition system whose labels are the paper's communications
// c.m, with hidden communications (inside chan L; P) appearing as τ-steps.
// The traces it enumerates coincide with the denotational prefix-closure
// semantics of internal/sem (cross-checked in tests, mirroring the paper's
// §3 consistency argument), but exploration scales better and yields
// counterexample traces and a step-by-step simulator.
//
// Communication offers, not transitions, are the primitive: an output
// offers one concrete value, while an input offers its whole (possibly
// infinite) domain. Synchronisation inside a parallel composition matches
// offers exactly — an output of value 17 meets an input of NAT even when
// the engine's NAT *sample* is narrower — and only unsynchronised external
// inputs are sampled, when offers are expanded into concrete transitions at
// the boundary. This keeps internal dataflow (e.g. the multiplier's partial
// sums) exact regardless of the sample width.
package op

import (
	"fmt"
	"sort"
	"strings"

	"cspsat/internal/sem"
	"cspsat/internal/syntax"
	"cspsat/internal/trace"
	"cspsat/internal/value"
)

// State is a configuration of the transition system: a process term plus
// the environment binding its free variables. Communicated values are
// substituted into terms, so terms stay closed and states compare by their
// rendered form.
type State struct {
	Proc syntax.Proc
	Env  sem.Env
}

// NewState returns the initial state of a process under an environment.
func NewState(p syntax.Proc, env sem.Env) State { return State{Proc: p, Env: env} }

// Key returns a canonical identity for the state. Terms are closed (input
// values are substituted in), so the rendered term determines behaviour.
func (s State) Key() string { return s.Proc.String() }

// OfferKind discriminates output offers (one concrete value) from input
// offers (a domain of acceptable values).
type OfferKind int

// Offer kinds.
const (
	OfferOut OfferKind = iota + 1
	OfferIn
)

// Offer is one communication capability of a state: on channel Ch, either
// the concrete value Val (OfferOut) or any value of Dom (OfferIn). Tau
// marks offers hidden by an enclosing chan L; they are complete internal
// events, always OfferOut. Next yields the successor state for the value
// actually communicated.
type Offer struct {
	Ch   trace.Chan
	Kind OfferKind
	Tau  bool
	Val  value.V
	Dom  value.Domain
	next func(v value.V) State
}

// Next returns the successor state when value v is communicated. For an
// output offer, v must be the offered value.
func (o Offer) Next(v value.V) State { return o.next(v) }

// String renders the offer for diagnostics.
func (o Offer) String() string {
	s := string(o.Ch)
	switch o.Kind {
	case OfferOut:
		s += "!" + o.Val.String()
	case OfferIn:
		s += "?" + o.Dom.String()
	}
	if o.Tau {
		return "τ(" + s + ")"
	}
	return s
}

// Transition is one concrete step: the communication that occurs, whether
// it is hidden (τ), and the successor state.
type Transition struct {
	Ev   trace.Event
	Tau  bool
	Next State
}

// String renders the transition label; hidden events are wrapped in τ(·).
func (t Transition) String() string {
	if t.Tau {
		return "τ(" + t.Ev.String() + ")"
	}
	return t.Ev.String()
}

// maxUnfold bounds consecutive definition unfoldings within a single Offers
// call, so that unguarded recursion (p ≜ p, or p ≜ (p | q)) is reported
// rather than looping forever.
const maxUnfold = 256

// Offers returns every communication offer enabled in state s.
func Offers(s State) ([]Offer, error) {
	return offers(s.Proc, s.Env, 0)
}

// Step returns every concrete transition enabled in state s,
// deterministically ordered. Unsynchronised input offers are expanded over
// their sampled domains here, at the external boundary.
func Step(s State) ([]Transition, error) {
	offs, err := Offers(s)
	if err != nil {
		return nil, err
	}
	var ts []Transition
	for _, o := range offs {
		switch o.Kind {
		case OfferOut:
			ts = append(ts, Transition{
				Ev:   trace.Event{Chan: o.Ch, Msg: o.Val},
				Tau:  o.Tau,
				Next: o.Next(o.Val),
			})
		case OfferIn:
			for _, v := range o.Dom.Enumerate() {
				ts = append(ts, Transition{
					Ev:   trace.Event{Chan: o.Ch, Msg: v},
					Tau:  o.Tau,
					Next: o.Next(v),
				})
			}
		}
	}
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Tau != ts[j].Tau {
			return !ts[i].Tau
		}
		if c := ts[i].Ev.Compare(ts[j].Ev); c != 0 {
			return c < 0
		}
		return strings.Compare(ts[i].Next.Key(), ts[j].Next.Key()) < 0
	})
	return ts, nil
}

func offers(p syntax.Proc, env sem.Env, unfolds int) ([]Offer, error) {
	switch t := p.(type) {
	case syntax.Stop:
		return nil, nil

	case syntax.Ref:
		if unfolds >= maxUnfold {
			return nil, fmt.Errorf("op: unguarded recursion: %d consecutive unfoldings at %s", unfolds, t)
		}
		body, err := env.Instantiate(t)
		if err != nil {
			return nil, err
		}
		return offers(body, env, unfolds+1)

	case syntax.Output:
		c, err := env.EvalChanRef(t.Ch)
		if err != nil {
			return nil, err
		}
		v, err := env.EvalExpr(t.Val)
		if err != nil {
			return nil, err
		}
		cont := t.Cont
		return []Offer{{
			Ch:   c,
			Kind: OfferOut,
			Val:  v,
			next: func(value.V) State { return State{Proc: cont, Env: env} },
		}}, nil

	case syntax.Input:
		c, err := env.EvalChanRef(t.Ch)
		if err != nil {
			return nil, err
		}
		dom, err := env.EvalSet(t.Dom)
		if err != nil {
			return nil, err
		}
		cont, varName := t.Cont, t.Var
		return []Offer{{
			Ch:   c,
			Kind: OfferIn,
			Dom:  dom,
			next: func(v value.V) State {
				// The paper's P^x_v of rule 6: substitute the communicated
				// value into the continuation term, keeping terms closed.
				return State{Proc: syntax.SubstProc(cont, varName, sem.ValueToExpr(v)), Env: env}
			},
		}}, nil

	case syntax.Alt:
		// In the trace model (P | Q) denotes the union of behaviours; the
		// enabled first offers are those of either side.
		l, err := offers(t.L, env, unfolds)
		if err != nil {
			return nil, err
		}
		r, err := offers(t.R, env, unfolds)
		if err != nil {
			return nil, err
		}
		return append(l, r...), nil

	case syntax.IChoice:
		// Internal choice resolves by a silent step to one side — the
		// time-dependent non-determinism the paper's conclusion describes.
		// The τ-events carry branch indices on the pseudo-channel TauChan
		// for the step log; they never become visible.
		left, right := t.L, t.R
		return []Offer{
			{Ch: trace.TauChan, Kind: OfferOut, Tau: true, Val: value.Int(0),
				next: func(value.V) State { return State{Proc: left, Env: env} }},
			{Ch: trace.TauChan, Kind: OfferOut, Tau: true, Val: value.Int(1),
				next: func(value.V) State { return State{Proc: right, Env: env} }},
		}, nil

	case syntax.Par:
		return offersPar(t, env, unfolds)

	case syntax.Hiding:
		return offersHiding(t, env, unfolds)

	default:
		return nil, fmt.Errorf("op: cannot step process form %T", p)
	}
}

func offersHiding(t syntax.Hiding, env sem.Env, unfolds int) ([]Offer, error) {
	hidden, err := env.EvalChanItems(t.Channels)
	if err != nil {
		return nil, err
	}
	inner, err := offers(t.Body, env, unfolds)
	if err != nil {
		return nil, err
	}
	out := make([]Offer, 0, len(inner))
	for _, o := range inner {
		o := o
		rewrap := func(v value.V) State {
			n := o.Next(v)
			return State{Proc: syntax.Hiding{Channels: t.Channels, Body: n.Proc}, Env: n.Env}
		}
		if !hidden.Contains(o.Ch) {
			out = append(out, Offer{Ch: o.Ch, Kind: o.Kind, Tau: o.Tau, Val: o.Val, Dom: o.Dom, next: rewrap})
			continue
		}
		switch o.Kind {
		case OfferOut:
			out = append(out, Offer{Ch: o.Ch, Kind: OfferOut, Tau: true, Val: o.Val, next: rewrap})
		case OfferIn:
			// A lone input on a hidden channel: the communication happens
			// internally with a non-determinate value; expand over the
			// sampled domain as internal τ events.
			for _, v := range o.Dom.Enumerate() {
				v := v
				out = append(out, Offer{Ch: o.Ch, Kind: OfferOut, Tau: true, Val: v, next: rewrap})
			}
		}
	}
	return out, nil
}

func offersPar(t syntax.Par, env sem.Env, unfolds int) ([]Offer, error) {
	x, y, err := sem.ParAlphabets(t, env)
	if err != nil {
		return nil, err
	}
	// Keep the (possibly explicit) alphabets on the successor terms, so
	// they are not re-inferred from the narrowed residual processes: the
	// alphabet of a network is fixed at composition time, not per state.
	alphaL, alphaR := t.AlphaL, t.AlphaR
	if alphaL == nil {
		alphaL = itemsOf(x)
	}
	if alphaR == nil {
		alphaR = itemsOf(y)
	}
	l, err := offers(t.L, env, unfolds)
	if err != nil {
		return nil, err
	}
	r, err := offers(t.R, env, unfolds)
	if err != nil {
		return nil, err
	}
	rejoin := func(ln, rn func(value.V) State) func(value.V) State {
		return func(v value.V) State {
			var lp, rp syntax.Proc
			if ln == nil {
				lp = t.L
			} else {
				lp = ln(v).Proc
			}
			if rn == nil {
				rp = t.R
			} else {
				rp = rn(v).Proc
			}
			return State{Proc: syntax.Par{L: lp, R: rp, AlphaL: alphaL, AlphaR: alphaR}, Env: env}
		}
	}
	var out []Offer
	for _, lo := range l {
		lo := lo
		if lo.Tau || !y.Contains(lo.Ch) {
			// τ-steps and channels private to the left interleave.
			out = append(out, Offer{Ch: lo.Ch, Kind: lo.Kind, Tau: lo.Tau, Val: lo.Val, Dom: lo.Dom, next: rejoin(lo.next, nil)})
			continue
		}
		// Shared channel: needs a matching offer on the right.
		for _, ro := range r {
			ro := ro
			if ro.Tau || ro.Ch != lo.Ch {
				continue
			}
			if synced, ok := syncOffers(lo, ro, rejoin(lo.next, ro.next)); ok {
				out = append(out, synced)
			}
		}
	}
	for _, ro := range r {
		ro := ro
		if ro.Tau || !x.Contains(ro.Ch) {
			out = append(out, Offer{Ch: ro.Ch, Kind: ro.Kind, Tau: ro.Tau, Val: ro.Val, Dom: ro.Dom, next: rejoin(nil, ro.next)})
		}
		// Shared offers were handled (or refused) in the left pass.
	}
	return out, nil
}

// syncOffers combines two offers on the same shared channel into the joint
// offer of the synchronised communication, per the paper: "one of them
// determines the value transmitted by an output c!e and the other is
// prepared to accept any value by an input c?x:M". Output–output
// synchronisation requires equal values; input–input intersects domains.
func syncOffers(a, b Offer, next func(value.V) State) (Offer, bool) {
	switch {
	case a.Kind == OfferOut && b.Kind == OfferOut:
		if !a.Val.Equal(b.Val) {
			return Offer{}, false
		}
		return Offer{Ch: a.Ch, Kind: OfferOut, Val: a.Val, next: next}, true
	case a.Kind == OfferOut && b.Kind == OfferIn:
		if !b.Dom.Contains(a.Val) {
			return Offer{}, false
		}
		return Offer{Ch: a.Ch, Kind: OfferOut, Val: a.Val, next: next}, true
	case a.Kind == OfferIn && b.Kind == OfferOut:
		if !a.Dom.Contains(b.Val) {
			return Offer{}, false
		}
		return Offer{Ch: a.Ch, Kind: OfferOut, Val: b.Val, next: next}, true
	default:
		return Offer{Ch: a.Ch, Kind: OfferIn, Dom: IntersectDomain{A: a.Dom, B: b.Dom}, next: next}, true
	}
}

// IntersectDomain is the meet of two message domains, arising when two
// inputs synchronise on a shared channel.
type IntersectDomain struct {
	A, B value.Domain
}

// Contains implements value.Domain.
func (d IntersectDomain) Contains(v value.V) bool { return d.A.Contains(v) && d.B.Contains(v) }

// Enumerate implements value.Domain: the union of both samples, filtered by
// joint membership, deduplicated.
func (d IntersectDomain) Enumerate() []value.V {
	seen := map[string]bool{}
	var out []value.V
	for _, v := range append(d.A.Enumerate(), d.B.Enumerate()...) {
		if d.Contains(v) && !seen[v.Key()] {
			seen[v.Key()] = true
			out = append(out, v)
		}
	}
	return out
}

// IsFinite implements value.Domain.
func (d IntersectDomain) IsFinite() bool { return d.A.IsFinite() || d.B.IsFinite() }

func (d IntersectDomain) String() string { return d.A.String() + "∩" + d.B.String() }

func itemsOf(s trace.Set) []syntax.ChanItem {
	cs := s.Slice()
	items := make([]syntax.ChanItem, 0, len(cs))
	for _, c := range cs {
		if name, sub, ok := c.ArrayName(); ok {
			items = append(items, syntax.ChanItem{Name: name, Sub: syntax.IntLit{Val: sub}})
		} else {
			items = append(items, syntax.ChanItem{Name: string(c)})
		}
	}
	return items
}
