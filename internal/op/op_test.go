package op_test

import (
	"strings"
	"testing"

	"cspsat/internal/op"
	"cspsat/internal/paper"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
	"cspsat/internal/trace"
	"cspsat/internal/value"
)

func natDom() syntax.SetExpr { return syntax.SetName{Name: "NAT"} }

func outP(c string, e syntax.Expr, k syntax.Proc) syntax.Proc {
	return syntax.Output{Ch: syntax.ChanRef{Name: c}, Val: e, Cont: k}
}

func inP(c, x string, dom syntax.SetExpr, k syntax.Proc) syntax.Proc {
	return syntax.Input{Ch: syntax.ChanRef{Name: c}, Var: x, Dom: dom, Cont: k}
}

func emptyEnv(width int) sem.Env { return sem.NewEnv(syntax.NewModule(), width) }

func TestStepOutputAndInput(t *testing.T) {
	env := emptyEnv(3)
	p := outP("c", syntax.IntLit{Val: 5}, syntax.Stop{})
	ts, err := op.Step(op.NewState(p, env))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 || ts[0].Ev.String() != "c.5" || ts[0].Tau {
		t.Fatalf("output step = %v", ts)
	}
	next, err := op.Step(ts[0].Next)
	if err != nil || len(next) != 0 {
		t.Fatalf("STOP has transitions: %v %v", next, err)
	}

	q := inP("c", "x", natDom(), outP("d", syntax.Var{Name: "x"}, syntax.Stop{}))
	ts, err = op.Step(op.NewState(q, env))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 { // sampled NAT width 3 at the external boundary
		t.Fatalf("input fan-out = %d", len(ts))
	}
	// The value is substituted into the continuation.
	for _, tr := range ts {
		if !strings.Contains(tr.Next.Proc.String(), "d!"+tr.Ev.Msg.String()) {
			t.Errorf("continuation %s does not carry %s", tr.Next.Proc, tr.Ev.Msg)
		}
	}
}

// TestParSyncExactOutsideSample is the decisive offer-semantics test: an
// internal output whose value lies outside the NAT sample must still
// synchronise with an input of NAT — only external inputs are sampled.
func TestParSyncExactOutsideSample(t *testing.T) {
	env := emptyEnv(2) // sample = {0,1}
	left := outP("c", syntax.IntLit{Val: 17}, syntax.Stop{})
	right := inP("c", "x", natDom(), outP("d", syntax.Var{Name: "x"}, syntax.Stop{}))
	par := syntax.Par{L: left, R: right}
	ts, err := op.Step(op.NewState(par, env))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 || ts[0].Ev.String() != "c.17" {
		t.Fatalf("sync outside sample failed: %v", ts)
	}
	// And the received 17 flows onward.
	after, err := op.Step(ts[0].Next)
	if err != nil || len(after) != 1 || after[0].Ev.String() != "d.17" {
		t.Fatalf("value propagation: %v %v", after, err)
	}
}

func TestParRefusesUnmatchedSharedEvent(t *testing.T) {
	env := emptyEnv(2)
	// Both sides share channel c but offer different values.
	par := syntax.Par{
		L: outP("c", syntax.IntLit{Val: 1}, syntax.Stop{}),
		R: outP("c", syntax.IntLit{Val: 2}, syntax.Stop{}),
	}
	ts, err := op.Step(op.NewState(par, env))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 0 {
		t.Fatalf("mismatched outputs synchronised: %v", ts)
	}
	// Same value: exactly one joint event.
	par2 := syntax.Par{
		L: outP("c", syntax.IntLit{Val: 1}, syntax.Stop{}),
		R: outP("c", syntax.IntLit{Val: 1}, syntax.Stop{}),
	}
	ts, err = op.Step(op.NewState(par2, env))
	if err != nil || len(ts) != 1 {
		t.Fatalf("matched outputs: %v %v", ts, err)
	}
}

func TestParInputInputIntersection(t *testing.T) {
	env := emptyEnv(4)
	// c?x:{0..2} composed with c?y:{1..3}: the joint input accepts {1,2}.
	par := syntax.Par{
		L: inP("c", "x", syntax.RangeSet{Lo: syntax.IntLit{Val: 0}, Hi: syntax.IntLit{Val: 2}}, syntax.Stop{}),
		R: inP("c", "y", syntax.RangeSet{Lo: syntax.IntLit{Val: 1}, Hi: syntax.IntLit{Val: 3}}, syntax.Stop{}),
	}
	ts, err := op.Step(op.NewState(par, env))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, tr := range ts {
		got[tr.Ev.String()] = true
	}
	if len(got) != 2 || !got["c.1"] || !got["c.2"] {
		t.Fatalf("input∩input events = %v", got)
	}
}

func TestHidingMakesTauAndLoneInputSampled(t *testing.T) {
	env := emptyEnv(2)
	h := syntax.Hiding{
		Channels: []syntax.ChanItem{{Name: "c"}},
		Body:     inP("c", "x", natDom(), syntax.Stop{}),
	}
	ts, err := op.Step(op.NewState(h, env))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("lone hidden input fan-out = %d", len(ts))
	}
	for _, tr := range ts {
		if !tr.Tau {
			t.Errorf("hidden event not τ: %v", tr)
		}
	}
}

func TestUnguardedRecursionDetected(t *testing.T) {
	m := syntax.NewModule()
	m.MustDefine(syntax.Def{Name: "p", Body: syntax.Ref{Name: "p"}})
	env := sem.NewEnv(m, 2)
	if _, err := op.Step(op.NewState(syntax.Ref{Name: "p"}, env)); err == nil {
		t.Fatal("unguarded recursion not detected")
	}
}

func TestTracesArePrefixClosedAndDeterministic(t *testing.T) {
	env := sem.NewEnv(paper.ProtocolSystem(2), 2)
	p := syntax.Ref{Name: paper.NameProtocol}
	a, err := op.Traces(p, env, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := op.Traces(p, env, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("trace enumeration not deterministic")
	}
	for _, tr := range a.Traces() {
		for _, pfx := range tr.Prefixes() {
			if !a.Contains(pfx) {
				t.Fatalf("prefix %s of %s missing", pfx, tr)
			}
		}
	}
}

func TestTauCycleTerminates(t *testing.T) {
	// p = chan c; q where q = c!0 -> q : pure hidden divergence. The
	// explorer must terminate with just the empty trace.
	m := syntax.NewModule()
	m.MustDefine(syntax.Def{Name: "q", Body: outP("c", syntax.IntLit{Val: 0}, syntax.Ref{Name: "q"})})
	m.MustDefine(syntax.Def{Name: "p", Body: syntax.Hiding{
		Channels: []syntax.ChanItem{{Name: "c"}},
		Body:     syntax.Ref{Name: "q"},
	}})
	env := sem.NewEnv(m, 2)
	s, err := op.Traces(syntax.Ref{Name: "p"}, env, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 1 {
		t.Fatalf("diverging process has %d traces, want 1 (<>)", s.Size())
	}
}

func TestTauClosureStateCap(t *testing.T) {
	// A counter that counts up on a hidden channel never repeats a state;
	// the τ-closure cap must fire rather than hang.
	m := syntax.NewModule()
	m.MustDefine(syntax.Def{
		Name: "count", Param: "n", ParamDom: syntax.SetName{Name: "NAT"},
		Body: outP("c", syntax.Var{Name: "n"}, syntax.Ref{
			Name: "count",
			Sub:  syntax.Binary{Op: syntax.OpAdd, L: syntax.Var{Name: "n"}, R: syntax.IntLit{Val: 1}},
		}),
	})
	m.MustDefine(syntax.Def{Name: "p", Body: syntax.Hiding{
		Channels: []syntax.ChanItem{{Name: "c"}},
		Body:     syntax.Ref{Name: "count", Sub: syntax.IntLit{Val: 0}},
	}})
	env := sem.NewEnv(m, 2)
	x := op.NewExplorer()
	x.MaxTauStates = 64
	_, err := x.Traces(op.NewState(syntax.Ref{Name: "p"}, env), 3)
	if err == nil || !strings.Contains(err.Error(), "τ-closure") {
		t.Fatalf("cap did not fire: %v", err)
	}
}

func TestVisibleEventsMenu(t *testing.T) {
	env := sem.NewEnv(paper.CopySystem(), 2)
	st := op.NewState(syntax.Ref{Name: paper.NameCopySys}, env)
	// After <input.1> the system can input again or output 1.
	menu, ok, err := op.VisibleEvents(st, trace.T{{Chan: "input", Msg: value.Int(1)}})
	if err != nil || !ok {
		t.Fatalf("VisibleEvents: %v %v", ok, err)
	}
	events := map[string]bool{}
	for _, m := range menu {
		events[m.Ev.String()] = true
	}
	for _, want := range []string{"input.0", "input.1", "output.1"} {
		if !events[want] {
			t.Errorf("menu missing %s: %v", want, events)
		}
	}
	// A trace the process cannot perform is rejected.
	_, ok, err = op.VisibleEvents(st, trace.T{{Chan: "output", Msg: value.Int(1)}})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("impossible trace accepted")
	}
}

func TestSimulatorWalks(t *testing.T) {
	env := sem.NewEnv(paper.ProtocolSystem(2), 2)
	sim := op.NewSimulator(7)
	visible, log, err := sim.Walk(op.NewState(syntax.Ref{Name: paper.NameProtocol}, env), 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(visible) != 6 {
		t.Fatalf("visible = %s", visible)
	}
	if len(log) < len(visible) {
		t.Fatalf("log shorter than visible trace")
	}
	// Determinism under seed.
	sim2 := op.NewSimulator(7)
	v2, _, err := sim2.Walk(op.NewState(syntax.Ref{Name: paper.NameProtocol}, env), 6)
	if err != nil || !visible.Equal(v2) {
		t.Fatalf("same seed, different walks: %s vs %s", visible, v2)
	}
}

func TestSimulatorDetectsHiddenDivergence(t *testing.T) {
	m := syntax.NewModule()
	m.MustDefine(syntax.Def{Name: "q", Body: outP("c", syntax.IntLit{Val: 0}, syntax.Ref{Name: "q"})})
	m.MustDefine(syntax.Def{Name: "p", Body: syntax.Hiding{
		Channels: []syntax.ChanItem{{Name: "c"}},
		Body:     syntax.Ref{Name: "q"},
	}})
	env := sem.NewEnv(m, 2)
	sim := op.NewSimulator(1)
	sim.MaxTauRun = 32
	_, _, err := sim.Walk(op.NewState(syntax.Ref{Name: "p"}, env), 3)
	if err == nil || !strings.Contains(err.Error(), "divergence") {
		t.Fatalf("divergence not flagged: %v", err)
	}
}

func TestOfferStrings(t *testing.T) {
	env := emptyEnv(2)
	offs, err := op.Offers(op.NewState(inP("c", "x", natDom(), syntax.Stop{}), env))
	if err != nil || len(offs) != 1 {
		t.Fatalf("offers: %v %v", offs, err)
	}
	if got := offs[0].String(); got != "c?NAT" {
		t.Errorf("input offer String = %q", got)
	}
	offs, err = op.Offers(op.NewState(outP("c", syntax.IntLit{Val: 3}, syntax.Stop{}), env))
	if err != nil || offs[0].String() != "c!3" {
		t.Errorf("output offer String = %q (%v)", offs[0].String(), err)
	}
}

func TestIntersectDomain(t *testing.T) {
	d := op.IntersectDomain{
		A: value.IntRange{Lo: 0, Hi: 5},
		B: value.Nat{SampleWidth: 3},
	}
	if !d.Contains(value.Int(4)) || d.Contains(value.Int(6)) || d.Contains(value.Int(-1)) {
		t.Error("membership wrong")
	}
	if !d.IsFinite() {
		t.Error("intersection with a finite side must be finite")
	}
	got := d.Enumerate()
	// Union of samples filtered by joint membership: {0..5} ∪ {0,1,2} → 0..5.
	if len(got) != 6 {
		t.Errorf("Enumerate = %v", got)
	}
}

func TestFindDeadlocks(t *testing.T) {
	// The crossing network: each side insists on its own first step.
	m := syntax.NewModule()
	one := syntax.EnumSet{Elems: []syntax.Expr{syntax.IntLit{Val: 1}}}
	m.MustDefine(syntax.Def{Name: "p", Body: outP("s", syntax.IntLit{Val: 1},
		inP("c", "x", one, syntax.Ref{Name: "p"}))})
	m.MustDefine(syntax.Def{Name: "q", Body: outP("c", syntax.IntLit{Val: 1},
		inP("s", "y", one, syntax.Ref{Name: "q"}))})
	m.MustDefine(syntax.Def{Name: "net", Body: syntax.Par{L: syntax.Ref{Name: "p"}, R: syntax.Ref{Name: "q"}}})
	env := sem.NewEnv(m, 2)
	dls, err := op.FindDeadlocks(op.NewState(syntax.Ref{Name: "net"}, env), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(dls) == 0 {
		t.Fatal("crossing network's deadlock not found")
	}
	if len(dls[0].Trace) != 0 {
		t.Errorf("deadlock should be immediate, found after %s", dls[0].Trace)
	}

	// The protocol never deadlocks within the bound.
	penv := sem.NewEnv(paper.ProtocolSystem(2), 2)
	dls, err = op.FindDeadlocks(op.NewState(syntax.Ref{Name: paper.NameProtocol}, penv), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(dls) != 0 {
		t.Fatalf("protocol deadlocks: %v after %s", dls[0].State.Proc, dls[0].Trace)
	}

	// A process that stops after one step deadlocks (by design) after it:
	// partial correctness cannot distinguish this from the crossing bug.
	m2 := syntax.NewModule()
	m2.MustDefine(syntax.Def{Name: "once", Body: outP("out", syntax.IntLit{Val: 7}, syntax.Stop{})})
	env2 := sem.NewEnv(m2, 2)
	dls, err = op.FindDeadlocks(op.NewState(syntax.Ref{Name: "once"}, env2), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(dls) != 1 || len(dls[0].Trace) != 1 {
		t.Fatalf("expected one deadlock after <out.7>, got %v", dls)
	}
}

func TestDotLTS(t *testing.T) {
	env := sem.NewEnv(paper.CopySystem(), 1)
	g, err := op.DotLTS(op.NewState(syntax.Ref{Name: paper.NameCopySys}, env), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"digraph lts", "doublecircle", "input.0", "τ wire.0", "style=dashed"} {
		if !strings.Contains(g, want) {
			t.Errorf("dot output missing %q:\n%s", want, g)
		}
	}
	// Recursion closes the cycle: state count stays finite and small.
	if n := strings.Count(g, "shape=circle"); n > 8 {
		t.Errorf("copysys LTS should be tiny, got %d states", n)
	}
}

// TestMultiwayBroadcast exercises the paper's §1.2 note: "a channel may
// have a single process which outputs on it and many other processes which
// input from it. All such inputs occur simultaneously with the output."
// Synchronisation must thread through nested compositions.
func TestMultiwayBroadcast(t *testing.T) {
	env := emptyEnv(2)
	one := syntax.EnumSet{Elems: []syntax.Expr{syntax.IntLit{Val: 1}}}
	a := outP("c", syntax.IntLit{Val: 1}, syntax.Stop{})
	b := inP("c", "x", one, outP("d", syntax.Var{Name: "x"}, syntax.Stop{}))
	c := inP("c", "y", one, outP("e", syntax.Var{Name: "y"}, syntax.Stop{}))
	net := syntax.Par{L: syntax.Par{L: a, R: b}, R: c}

	ts, err := op.Step(op.NewState(net, env))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 || ts[0].Ev.String() != "c.1" {
		t.Fatalf("broadcast initial step = %v", ts)
	}
	// Both receivers got the value simultaneously: d.1 and e.1 now
	// interleave freely.
	set, err := op.Traces(net, env, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<c.1, d.1, e.1>", "<c.1, e.1, d.1>"} {
		found := false
		for _, tr := range set.Traces() {
			if tr.String() == want {
				found = true
			}
		}
		if !found {
			t.Errorf("missing broadcast continuation %s in %s", want, set)
		}
	}
	// And nothing can happen before the three-way sync.
	if set.Contains(trace.T{{Chan: "d", Msg: value.Int(1)}}) {
		t.Error("receiver ran ahead of the broadcast")
	}
}

// TestAllInputChannel is the §1.2 note's second half: when every connected
// process inputs, the communication still happens "with a highly
// non-determinate result" — any jointly acceptable value.
func TestAllInputChannel(t *testing.T) {
	env := emptyEnv(3)
	b := inP("c", "x", syntax.RangeSet{Lo: syntax.IntLit{Val: 0}, Hi: syntax.IntLit{Val: 2}}, syntax.Stop{})
	c := inP("c", "y", syntax.RangeSet{Lo: syntax.IntLit{Val: 1}, Hi: syntax.IntLit{Val: 4}}, syntax.Stop{})
	net := syntax.Par{L: b, R: c}
	ts, err := op.Step(op.NewState(net, env))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, tr := range ts {
		got[tr.Ev.String()] = true
	}
	if !got["c.1"] || !got["c.2"] || got["c.0"] || got["c.3"] {
		t.Fatalf("all-input events = %v, want exactly the intersection {1,2}", got)
	}
}
