package op

import (
	"strconv"

	"cspsat/internal/trace"
)

// Deadlock is a reachable stuck configuration: after Trace, the network can
// be in a state (State) from which no communication — visible or hidden —
// is possible. STOP-ing by design and deadlocking by accident look the
// same in the trace model (the paper's §4 limitation); this detector
// reports both, with the stuck residual term for diagnosis.
type Deadlock struct {
	Trace trace.T
	State State
}

// FindDeadlocks explores the transition system to the visible-depth bound
// and returns every minimal deadlock found: one entry per distinct stuck
// state, with a shortest trace reaching it. The search shares the
// explorer's τ-closure and divergence guards.
func FindDeadlocks(s State, depth int) ([]Deadlock, error) {
	x := NewExplorer()
	var out []Deadlock
	seenStuck := map[string]bool{}
	visited := map[string]bool{}

	type item struct {
		states []State
		prefix trace.T
	}
	start, err := x.tauClosure(s)
	if err != nil {
		return nil, err
	}
	queue := []item{{states: start, prefix: nil}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		// A state is stuck when it enables nothing at all.
		nextByEvent := map[string][]State{}
		var events []trace.Event
		for _, st := range cur.states {
			ts, err := Step(st)
			if err != nil {
				return nil, err
			}
			if len(ts) == 0 {
				key := st.Key()
				if !seenStuck[key] {
					seenStuck[key] = true
					cp := make(trace.T, len(cur.prefix))
					copy(cp, cur.prefix)
					out = append(out, Deadlock{Trace: cp, State: st})
				}
				continue
			}
			if len(cur.prefix) >= depth {
				continue
			}
			for _, tr := range ts {
				if tr.Tau {
					continue // τ-successors are already inside the closure
				}
				k := tr.Ev.String()
				if _, ok := nextByEvent[k]; !ok {
					events = append(events, tr.Ev)
				}
				nextByEvent[k] = append(nextByEvent[k], tr.Next)
			}
		}
		for _, ev := range events {
			succs := nextByEvent[ev.String()]
			var closed []State
			sig := ""
			for _, n := range succs {
				cl, err := x.tauClosure(n)
				if err != nil {
					return nil, err
				}
				closed = append(closed, cl...)
			}
			closed = dedupeStates(closed)
			for _, c := range closed {
				sig += c.Key() + "\x01"
			}
			key := strconv.Itoa(len(cur.prefix)+1) + "\x02" + sig
			if visited[key] {
				continue
			}
			visited[key] = true
			queue = append(queue, item{states: closed, prefix: cur.prefix.Append(ev)})
		}
	}
	return out, nil
}
