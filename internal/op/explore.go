package op

import (
	"context"
	"fmt"

	"cspsat/internal/closure"
	"cspsat/internal/csperr"
	"cspsat/internal/pool"
	"cspsat/internal/progress"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
	"cspsat/internal/trace"
)

// Explorer enumerates the visible traces of a process by exhaustive search
// of its transition system. Hidden (τ) steps are closed over transparently:
// a visible trace of (chan L; P) is a trace of P with the L-communications
// erased, exactly the paper's (chan L; P) = P\L.
//
// An Explorer is not safe for concurrent use by multiple goroutines (its
// memo is unguarded); the parallelism knob is Workers, which fans the BFS
// frontier of a single TracesContext call across a worker pool.
type Explorer struct {
	// MaxTauStates caps how many distinct states a single τ-closure may
	// visit before exploration fails; it guards against state explosion in
	// heavily hidden networks. Zero means DefaultMaxTauStates.
	MaxTauStates int

	// Workers sets how many goroutines TracesContext spreads the BFS
	// frontier across. Values ≤ 1 select the serial recursive path;
	// pool.WorkersAuto sizes the pool to the machine. The parallel path
	// produces node-identical results (same canonical pointers) as the
	// serial one: the stripe-sharded closure operators are
	// order-independent, and discovery order is kept deterministic by a
	// sequential stitch at each depth barrier.
	Workers int

	// SerialCutover tunes the adaptive serial/parallel cutover of the
	// parallel path: a BFS level or DP round with fewer items than the
	// cutover is expanded inline on the calling goroutine instead of
	// across the pool, so Workers: 8 on a tiny spec costs the same as
	// Workers: 1. Zero means pool.DefaultSerialCutover; 1 forces every
	// round through the pool (the differential tests pin serial/parallel
	// equivalence this way).
	SerialCutover int

	// Progress, when non-nil, receives "explore" stage events after each
	// BFS level (states expanded so far, frontier size, elapsed wall time)
	// and a final Done event. Callbacks must be cheap and goroutine-safe.
	Progress progress.Func

	// memo caches set(state, budget) by comparable struct key — the
	// budget plus the explorer-local dense id of the state — so a lookup
	// neither allocates nor hashes the full state string (ids finish the
	// string→id migration of DESIGN.md §3.4 inside the explorer).
	memo map[memoKey]*closure.Set
	// ids interns state keys to the dense ids memo keys use. Both maps
	// are confined to the exploring goroutine (the parallel path touches
	// them only between pool barriers).
	ids map[string]uint32
}

// memoKey identifies one memo entry: a remaining trace-length budget and
// the explorer-local id of the state it was computed from.
type memoKey struct {
	depth int
	state uint32
}

// stateID interns a state key to the explorer-local dense id used in memo
// keys. Not safe for concurrent use; callers hold the single-goroutine
// discipline of memo itself.
func (x *Explorer) stateID(key string) uint32 {
	if id, ok := x.ids[key]; ok {
		return id
	}
	if x.ids == nil {
		x.ids = map[string]uint32{}
	}
	id := uint32(len(x.ids))
	x.ids[key] = id
	return id
}

// DefaultMaxTauStates is the default τ-closure state cap.
const DefaultMaxTauStates = 1 << 16

// NewExplorer returns an explorer with default limits.
func NewExplorer() *Explorer {
	return &Explorer{memo: map[memoKey]*closure.Set{}}
}

// Traces returns the set of visible traces of length ≤ depth from state s,
// as a prefix closure. The result is exact over the sampled message
// domains: every trace of the (sampled) process of that length appears, and
// nothing else.
func (x *Explorer) Traces(s State, depth int) (*closure.Set, error) {
	return x.TracesContext(context.Background(), s, depth)
}

// TracesContext is Traces with cancellation: the exploration checks ctx at
// every state expansion and returns an error wrapping csperr.ErrCanceled
// promptly after ctx is done. Partially computed results are discarded;
// the shared closure caches remain valid (interned nodes are immutable).
// With Workers > 1 the BFS frontier is expanded in parallel, and the
// adaptive cutover (SerialCutover) keeps rounds too small to amortise the
// pool on the calling goroutine.
func (x *Explorer) TracesContext(ctx context.Context, s State, depth int) (*closure.Set, error) {
	if x.memo == nil {
		x.memo = map[memoKey]*closure.Set{}
	}
	if pool.Resolve(x.Workers) > 1 {
		return x.tracesParallel(ctx, s, depth)
	}
	return x.tracesFrom(ctx, s, depth)
}

func (x *Explorer) tracesFrom(ctx context.Context, s State, depth int) (*closure.Set, error) {
	if depth <= 0 {
		return closure.Stop(), nil
	}
	if err := pool.Canceled(ctx); err != nil {
		return nil, err
	}
	key := memoKey{depth: depth, state: x.stateID(s.Key())}
	if cached, ok := x.memo[key]; ok {
		return cached, nil
	}
	reach, err := x.tauClosure(s)
	if err != nil {
		return nil, err
	}
	branches := []*closure.Set{}
	for _, st := range reach {
		ts, err := Step(st)
		if err != nil {
			return nil, err
		}
		for _, tr := range ts {
			if tr.Tau {
				continue // already folded into reach
			}
			sub, err := x.tracesFrom(ctx, tr.Next, depth-1)
			if err != nil {
				return nil, err
			}
			branches = append(branches, closure.Prefix(tr.Ev, sub))
		}
	}
	out := closure.UnionAll(branches...)
	x.memo[key] = out
	return out, nil
}

// tauClosure returns every state reachable from s by zero or more τ-steps,
// including s itself. τ-cycles (hidden divergence) terminate the closure
// without error: in the paper's partial-correctness model a diverging
// branch simply contributes no further visible traces.
func (x *Explorer) tauClosure(s State) ([]State, error) {
	limit := x.MaxTauStates
	if limit <= 0 {
		limit = DefaultMaxTauStates
	}
	seen := map[string]bool{s.Key(): true}
	out := []State{s}
	work := []State{s}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		ts, err := Step(cur)
		if err != nil {
			return nil, err
		}
		for _, tr := range ts {
			if !tr.Tau {
				continue
			}
			k := tr.Next.Key()
			if seen[k] {
				continue
			}
			if len(seen) >= limit {
				return nil, fmt.Errorf("%w: op: τ-closure exceeded %d states; network too internally chatty or diverging", csperr.ErrDepthExceeded, limit)
			}
			seen[k] = true
			out = append(out, tr.Next)
			work = append(work, tr.Next)
		}
	}
	return out, nil
}

// Traces is a convenience wrapper enumerating visible traces of process p
// under env to the given depth with a fresh explorer.
func Traces(p syntax.Proc, env sem.Env, depth int) (*closure.Set, error) {
	return NewExplorer().Traces(NewState(p, env), depth)
}

// TracesContext is the context-aware convenience wrapper: a fresh explorer
// with the given worker count (≤ 1 for serial) under ctx.
func TracesContext(ctx context.Context, p syntax.Proc, env sem.Env, depth, workers int) (*closure.Set, error) {
	x := NewExplorer()
	x.Workers = workers
	return x.TracesContext(ctx, NewState(p, env), depth)
}

// VisibleEvents returns the visible communications enabled after trace t
// from initial state s — the "menu" a simulator offers. The boolean result
// reports whether t is actually a trace of the process.
func VisibleEvents(s State, t trace.T) ([]Transition, bool, error) {
	x := NewExplorer()
	states := []State{s}
	for _, want := range t {
		var nextStates []State
		for _, st := range states {
			reach, err := x.tauClosure(st)
			if err != nil {
				return nil, false, err
			}
			for _, rs := range reach {
				ts, err := Step(rs)
				if err != nil {
					return nil, false, err
				}
				for _, tr := range ts {
					if !tr.Tau && tr.Ev.Chan == want.Chan && tr.Ev.Msg.Equal(want.Msg) {
						nextStates = append(nextStates, tr.Next)
					}
				}
			}
		}
		if len(nextStates) == 0 {
			return nil, false, nil
		}
		states = dedupeStates(nextStates)
	}
	var menu []Transition
	seen := map[string]bool{}
	for _, st := range states {
		reach, err := x.tauClosure(st)
		if err != nil {
			return nil, false, err
		}
		for _, rs := range reach {
			ts, err := Step(rs)
			if err != nil {
				return nil, false, err
			}
			for _, tr := range ts {
				if tr.Tau {
					continue
				}
				k := tr.Ev.String() + "\x00" + tr.Next.Key()
				if !seen[k] {
					seen[k] = true
					menu = append(menu, tr)
				}
			}
		}
	}
	return menu, true, nil
}

func dedupeStates(ss []State) []State {
	seen := map[string]bool{}
	out := ss[:0]
	for _, s := range ss {
		k := s.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	return out
}
