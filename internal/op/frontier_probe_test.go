package op_test

import (
	"context"
	"fmt"
	"os"
	"testing"

	"cspsat/internal/core"
	"cspsat/internal/gen"
	"cspsat/internal/op"
)

func TestFrontierSizes(t *testing.T) {
	if os.Getenv("FRONTIER_PROBE") == "" {
		t.Skip("probe disabled")
	}
	for _, spec := range []struct {
		file, root string
		depth      int
	}{
		{"../../specs/tokenring.csp", "sys", 6},
		{"../../specs/philosophers.csp", "safe", 5},
	} {
		sys, err := core.LoadFile(spec.file, core.Options{NatWidth: 2})
		if err != nil {
			t.Fatal(err)
		}
		probeRoot(t, sys, spec.root, spec.depth)
	}
	for _, spec := range []struct {
		name, src, root string
		depth           int
	}{
		{"phil4", gen.Philosophers(4), "safe", 9},
		{"ring8", gen.TokenRing(8), "sys", 8},
	} {
		sys, err := core.Load(spec.src, core.Options{NatWidth: 2})
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "== %s\n", spec.name)
		probeRoot(t, sys, spec.root, spec.depth)
	}
}

func probeRoot(t *testing.T, sys *core.System, root string, depth int) {
	t.Helper()
	p, err := sys.Proc(root)
	if err != nil {
		t.Fatal(err)
	}
	op.SetFrontierProbe(func(level, n int) { fmt.Fprintf(os.Stderr, "%s level=%d n=%d\n", root, level, n) })
	defer op.SetFrontierProbe(nil)
	x := &op.Explorer{Workers: 8}
	if _, err := x.TracesContext(context.Background(), op.NewState(p, sys.Env()), depth); err != nil {
		t.Fatal(err)
	}
}
