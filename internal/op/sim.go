package op

import (
	"fmt"
	"math/rand"

	"cspsat/internal/trace"
)

// Simulator performs random walks over the transition system, producing
// concrete execution traces. Useful for smoke-testing large networks whose
// exhaustive exploration is too expensive, and as the engine of cmd/cspsim.
type Simulator struct {
	rng *rand.Rand
	// MaxTauRun caps consecutive τ-steps taken within one visible step, so
	// a walk cannot disappear into hidden divergence.
	MaxTauRun int
}

// NewSimulator returns a simulator seeded deterministically.
func NewSimulator(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed)), MaxTauRun: 1024}
}

// StepRecord is one observed step of a random walk.
type StepRecord struct {
	Ev  trace.Event
	Tau bool
}

// Walk runs a random walk of at most maxVisible visible communications from
// state s. It returns the visible trace observed and the full step log
// (including τ-steps). The walk stops early at a state with no transitions
// (deadlock/termination — which partial correctness deliberately does not
// distinguish) or when the τ-run cap is hit.
func (sim *Simulator) Walk(s State, maxVisible int) (trace.T, []StepRecord, error) {
	var visible trace.T
	var log []StepRecord
	tauRun := 0
	for len(visible) < maxVisible {
		ts, err := Step(s)
		if err != nil {
			return visible, log, err
		}
		if len(ts) == 0 {
			return visible, log, nil
		}
		tr := ts[sim.rng.Intn(len(ts))]
		log = append(log, StepRecord{Ev: tr.Ev, Tau: tr.Tau})
		if tr.Tau {
			tauRun++
			if tauRun > sim.MaxTauRun {
				return visible, log, fmt.Errorf("op: %d consecutive τ-steps; suspected hidden divergence", tauRun)
			}
		} else {
			tauRun = 0
			visible = visible.Append(tr.Ev)
		}
		s = tr.Next
	}
	return visible, log, nil
}
