package op

// Parallel trace exploration: the Workers>1 path of TracesContext. The
// serial explorer is a memoized depth-bounded recursion over (state,
// budget); this file computes the same function as a two-phase parallel
// schedule:
//
//  1. Level-synchronised BFS discovery. Each depth level's frontier is
//     expanded (τ-closure + Step) concurrently across the pool, then the
//     results are stitched sequentially in frontier order, so the set of
//     discovered states, their first-discovery levels, and each state's
//     visible-transition list are all deterministic.
//
//  2. Bottom-up dynamic program over budgets, one pool barrier per budget:
//     set(s, 0) = {<>} and set(s, b) = ⋃ Prefix(ev, set(s', b−1)) over the
//     visible transitions s —ev→ s'. A state first discovered at level l is
//     only ever queried at budgets ≤ depth−l, and all its successors were
//     indexed during discovery, so every set(s', b−1) a barrier round reads
//     was published by the previous round (or is the budget-0 base case).
//
// The result is node-identical to the serial path: the closure operators
// return canonical interned nodes, union is order-independent on canonical
// operands, and both paths enumerate exactly the same transitions. The
// differential test in partests asserts the Same-pointer equality.

import (
	"context"
	"time"

	"cspsat/internal/closure"
	"cspsat/internal/pool"
	"cspsat/internal/progress"
	"cspsat/internal/trace"
)

// visEdge is one visible transition discovered during the BFS: the event
// plus the record of the successor state.
type visEdge struct {
	ev   trace.Event
	next *stateRec
}

// stateRec is the per-state record of a parallel exploration.
type stateRec struct {
	key   string
	state State
	level int       // BFS level of first discovery
	vis   []visEdge // visible transitions, in deterministic stitch order
	sets  []*closure.Set
}

func (x *Explorer) tracesParallel(ctx context.Context, s State, depth int) (*closure.Set, error) {
	if depth <= 0 {
		return closure.Stop(), nil
	}
	if cached, ok := x.memo[exploreMemoKey(depth, s.Key())]; ok {
		return cached, nil
	}
	start := time.Now()

	root := &stateRec{key: s.Key(), state: s}
	discovered := map[string]*stateRec{root.key: root}
	order := []*stateRec{root}
	frontier := []*stateRec{root}
	expanded := 0

	// Phase 1: discovery. expansion carries one frontier state's visible
	// transitions out of the parallel section; workers write only their own
	// index, and the stitch below is sequential.
	type expansion struct {
		evs   []trace.Event
		nexts []State
	}
	for level := 0; level < depth && len(frontier) > 0; level++ {
		results := make([]expansion, len(frontier))
		err := pool.Run(ctx, x.Workers, len(frontier), func(i int) error {
			reach, err := x.tauClosure(frontier[i].state)
			if err != nil {
				return err
			}
			var ex expansion
			for _, st := range reach {
				ts, err := Step(st)
				if err != nil {
					return err
				}
				for _, tr := range ts {
					if tr.Tau {
						continue // folded into reach
					}
					ex.evs = append(ex.evs, tr.Ev)
					ex.nexts = append(ex.nexts, tr.Next)
				}
			}
			results[i] = ex
			return nil
		})
		if err != nil {
			return nil, err
		}
		expanded += len(frontier)
		var next []*stateRec
		for i, rec := range frontier {
			ex := results[i]
			for j := range ex.evs {
				k := ex.nexts[j].Key()
				nr, ok := discovered[k]
				if !ok {
					nr = &stateRec{key: k, state: ex.nexts[j], level: level + 1}
					discovered[k] = nr
					order = append(order, nr)
					next = append(next, nr)
				}
				rec.vis = append(rec.vis, visEdge{ev: ex.evs[j], next: nr})
			}
		}
		x.Progress.Emit(progress.Event{
			Stage:          "explore",
			StatesExpanded: expanded,
			Frontier:       len(next),
			Depth:          level + 1,
			Elapsed:        time.Since(start),
		})
		frontier = next
	}

	// Phase 2: bottom-up DP over budgets. Budget b only reads sets written
	// at budget b−1, and the pool.Run barrier between rounds publishes
	// those writes, so workers never race on a record.
	for _, rec := range order {
		rec.sets = make([]*closure.Set, depth+1)
		rec.sets[0] = closure.Stop()
	}
	for b := 1; b <= depth; b++ {
		var work []*stateRec
		for _, rec := range order {
			if rec.level <= depth-b {
				work = append(work, rec)
			}
		}
		err := pool.Run(ctx, x.Workers, len(work), func(i int) error {
			rec := work[i]
			branches := make([]*closure.Set, 0, len(rec.vis))
			for _, e := range rec.vis {
				branches = append(branches, closure.Prefix(e.ev, e.next.sets[b-1]))
			}
			rec.sets[b] = closure.UnionAll(branches...)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	// The DP computed tracesFrom(s, b) for every discovered state and every
	// budget it can be asked at; fold it all into the serial memo so a later
	// Traces call (serial or parallel) on this explorer reuses it.
	for _, rec := range order {
		for b := 1; b <= depth-rec.level; b++ {
			if rec.sets[b] != nil {
				x.memo[exploreMemoKey(b, rec.key)] = rec.sets[b]
			}
		}
	}
	x.Progress.Emit(progress.Event{
		Stage:          "explore",
		StatesExpanded: expanded,
		Elapsed:        time.Since(start),
		Done:           true,
	})
	return root.sets[depth], nil
}
