package op

// Parallel trace exploration: the Workers>1 path of TracesContext. The
// serial explorer is a memoized depth-bounded recursion over (state,
// budget); this file computes the same function as a two-phase parallel
// schedule:
//
//  1. Level-synchronised BFS discovery. Each depth level's frontier is
//     expanded (τ-closure + Step) concurrently across the pool, then the
//     results are stitched sequentially in frontier order, so the set of
//     discovered states, their first-discovery levels, and each state's
//     visible-transition list are all deterministic.
//
//  2. Bottom-up dynamic program over budgets, one pool barrier per budget:
//     set(s, 0) = {<>} and set(s, b) = ⋃ Prefix(ev, set(s', b−1)) over the
//     visible transitions s —ev→ s'. A state first discovered at level l is
//     only ever queried at budgets ≤ depth−l, and all its successors were
//     indexed during discovery, so every set(s', b−1) a barrier round reads
//     was published by the previous round (or is the budget-0 base case).
//
// The result is node-identical to the serial path: the closure operators
// return canonical interned nodes, union is order-independent on canonical
// operands, and both paths enumerate exactly the same transitions. The
// differential test in partests asserts the Same-pointer equality.

import (
	"context"
	"time"

	"cspsat/internal/closure"
	"cspsat/internal/pool"
	"cspsat/internal/progress"
	"cspsat/internal/trace"
)

// visEdge is one visible transition discovered during the BFS: the event
// plus the record of the successor state.
type visEdge struct {
	ev   trace.Event
	next *stateRec
}

// stateRec is the per-state record of a parallel exploration.
type stateRec struct {
	key   string
	id    uint32 // explorer-local interned id (memo keys)
	state State
	level int       // BFS level of first discovery
	vis   []visEdge // visible transitions, in deterministic stitch order
	sets  []*closure.Set
	need  []bool // which budgets the DP must actually compute
}

func (x *Explorer) tracesParallel(ctx context.Context, s State, depth int) (*closure.Set, error) {
	if depth <= 0 {
		return closure.Stop(), nil
	}
	rootKey := s.Key()
	if cached, ok := x.memo[memoKey{depth: depth, state: x.stateID(rootKey)}]; ok {
		return cached, nil
	}
	workers := pool.Resolve(x.Workers)
	start := time.Now()

	root := &stateRec{key: rootKey, id: x.stateID(rootKey), state: s}
	discovered := map[string]*stateRec{root.key: root}
	order := []*stateRec{root}
	frontier := []*stateRec{root}
	expanded := 0

	// Phase 1: discovery. expansion carries one frontier state's visible
	// transitions out of the parallel section; workers write only their own
	// index, and the stitch below is sequential. Each level sizes its pool
	// through the adaptive cutover: a frontier too small to repay goroutine
	// spawn expands inline, so worker count never taxes a narrow level.
	type expansion struct {
		evs   []trace.Event
		nexts []State
	}
	for level := 0; level < depth && len(frontier) > 0; level++ {
		if frontierProbe != nil {
			frontierProbe(level, len(frontier))
		}
		results := make([]expansion, len(frontier))
		err := pool.Run(ctx, pool.Adaptive(workers, len(frontier), x.SerialCutover), len(frontier), func(i int) error {
			reach, err := x.tauClosure(frontier[i].state)
			if err != nil {
				return err
			}
			var ex expansion
			for _, st := range reach {
				ts, err := Step(st)
				if err != nil {
					return err
				}
				for _, tr := range ts {
					if tr.Tau {
						continue // folded into reach
					}
					ex.evs = append(ex.evs, tr.Ev)
					ex.nexts = append(ex.nexts, tr.Next)
				}
			}
			results[i] = ex
			return nil
		})
		if err != nil {
			return nil, err
		}
		expanded += len(frontier)
		var next []*stateRec
		for i, rec := range frontier {
			ex := results[i]
			for j := range ex.evs {
				k := ex.nexts[j].Key()
				nr, ok := discovered[k]
				if !ok {
					nr = &stateRec{key: k, id: x.stateID(k), state: ex.nexts[j], level: level + 1}
					discovered[k] = nr
					order = append(order, nr)
					next = append(next, nr)
				}
				rec.vis = append(rec.vis, visEdge{ev: ex.evs[j], next: nr})
			}
		}
		x.Progress.Emit(progress.Event{
			Stage:          "explore",
			StatesExpanded: expanded,
			Frontier:       len(next),
			Depth:          level + 1,
			Elapsed:        time.Since(start),
		})
		frontier = next
	}

	// Demand marking: which (state, budget) pairs does the root actually
	// need? The serial recursion only ever memoizes set(s', d−|path|) for
	// paths it walks; computing every budget 1..depth−level per state (the
	// old schedule) did strictly more Prefix/Union work than the serial
	// path on chain-shaped graphs — measurably slower on narrow specs.
	// Budgets strictly decrease along edges, so the worklist terminates on
	// cyclic graphs too, and marks exactly the pairs the recursion would.
	for _, rec := range order {
		rec.sets = make([]*closure.Set, depth+1)
		rec.sets[0] = closure.Stop()
		rec.need = make([]bool, depth+1)
	}
	root.need[depth] = true
	type demand struct {
		rec *stateRec
		b   int
	}
	stack := []demand{{root, depth}}
	for len(stack) > 0 {
		d := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if d.b <= 1 {
			continue // successors are budget-0 base cases
		}
		for _, e := range d.rec.vis {
			if !e.next.need[d.b-1] {
				e.next.need[d.b-1] = true
				stack = append(stack, demand{e.next, d.b - 1})
			}
		}
	}

	// Phase 2: bottom-up DP over budgets. Budget b only reads sets written
	// at budget b−1, and the pool.Run barrier between rounds publishes
	// those writes, so workers never race on a record. Each round sizes
	// its pool through the adaptive cutover, like discovery.
	for b := 1; b <= depth; b++ {
		var work []*stateRec
		for _, rec := range order {
			if rec.need[b] {
				work = append(work, rec)
			}
		}
		err := pool.Run(ctx, pool.Adaptive(workers, len(work), x.SerialCutover), len(work), func(i int) error {
			rec := work[i]
			branches := make([]*closure.Set, 0, len(rec.vis))
			for _, e := range rec.vis {
				branches = append(branches, closure.Prefix(e.ev, e.next.sets[b-1]))
			}
			rec.sets[b] = closure.UnionAll(branches...)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	// The DP computed tracesFrom(s, b) for every discovered state and every
	// budget it can be asked at; fold it all into the serial memo so a later
	// Traces call (serial or parallel) on this explorer reuses it.
	for _, rec := range order {
		for b := 1; b <= depth-rec.level; b++ {
			if rec.sets[b] != nil {
				x.memo[memoKey{depth: b, state: rec.id}] = rec.sets[b]
			}
		}
	}
	x.Progress.Emit(progress.Event{
		Stage:          "explore",
		StatesExpanded: expanded,
		Elapsed:        time.Since(start),
		Done:           true,
	})
	return root.sets[depth], nil
}

// frontierProbe, when non-nil, observes each discovery level's frontier
// size; set only by tests measuring cutover thresholds.
var frontierProbe func(level, n int)
