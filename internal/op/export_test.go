package op

// SetFrontierProbe exposes the discovery-level probe to external tests.
func SetFrontierProbe(f func(level, n int)) { frontierProbe = f }
