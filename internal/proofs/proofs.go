// Package proofs contains machine-encoded versions of every proof the
// paper presents (and the one it leaves as an exercise):
//
//   - §2.1(6): copier sat wire ≤ input (the "read this proof backwards"
//     example), plus the analogous recopier proof
//   - §2.1(8)/(9): (copier ‖ recopier) sat output ≤ input, preserved by
//     chan wire
//   - §2.2(1) / Table 1: sender sat f(wire) ≤ input, by mutual recursion
//     with ∀x∈M. q[x] sat f(wire) ≤ x⌢input
//   - §2.2(2): receiver sat output ≤ f(wire) (the exercise)
//   - §2.2(3): protocol sat output ≤ input (the six-step proof)
//   - §2.1(4): STOP sat wire ≤ input (emptiness examples)
//
// Each function returns a proof object for internal/proof.Checker; the
// tests check them and cross-validate every conclusion with the model
// checker.
package proofs

import (
	"cspsat/internal/assertion"
	"cspsat/internal/paper"
	"cspsat/internal/proof"
	"cspsat/internal/syntax"
)

func wire() assertion.Term   { return assertion.Chan("wire") }
func input() assertion.Term  { return assertion.Chan("input") }
func output() assertion.Term { return assertion.Chan("output") }

func fOf(t assertion.Term) assertion.Term {
	return assertion.Apply{Fn: "f", Args: []assertion.Term{t}}
}

func cons(h, t assertion.Term) assertion.Term { return assertion.Cons{Head: h, Tail: t} }

func le(l, r assertion.Term) assertion.A { return assertion.PrefixLE(l, r) }

func nat() syntax.SetExpr { return syntax.SetName{Name: "NAT"} }

// StopSatExample is the §2.1(4) example: ⊢ STOP sat wire ≤ input, because
// <> ≤ <>.
func StopSatExample() proof.Proof {
	return proof.Emptiness{R: le(wire(), input())}
}

// CopierProof is the §2.1(6)+(10) example proof that
// copier sat wire ≤ input. Read §2.1(6) backwards:
//
//	copier sat wire ≤ input                                (hypothesis)
//	copier sat v⌢wire ≤ v⌢input                            (consequence)
//	(wire!v → copier) sat wire ≤ v⌢input                   (output)
//	∀v∈NAT. (wire!v → copier) sat wire ≤ v⌢input           (∀-intro)
//	(input?x:NAT → wire!x → copier) sat wire ≤ input       (input)
//	copier sat wire ≤ input                                (recursion)
func CopierProof() proof.Proof {
	r := le(wire(), input()) // R = wire ≤ input
	v := assertion.Var("v")

	step4 := proof.Consequence{
		Premise: proof.Hypothesis{Name: paper.NameCopier},
		To:      le(cons(v, wire()), cons(v, input())),
	}
	step3 := proof.OutputStep{
		Ch:      syntax.ChanRef{Name: "wire"},
		Val:     syntax.Var{Name: "v"},
		R:       le(wire(), cons(v, input())),
		Premise: step4,
	}
	step2 := proof.ForAllIntro{Var: "v", Dom: nat(), Premise: step3}
	step1 := proof.InputStep{
		Ch:      syntax.ChanRef{Name: "input"},
		Var:     "x",
		Dom:     nat(),
		Body:    syntax.Output{Ch: syntax.ChanRef{Name: "wire"}, Val: syntax.Var{Name: "x"}, Cont: syntax.Ref{Name: paper.NameCopier}},
		Fresh:   "v",
		R:       r,
		Premise: step2,
	}
	return proof.Recursion{
		Defs: []proof.RecDef{{
			Name:    paper.NameCopier,
			Claim:   proof.Claim{Proc: syntax.Ref{Name: paper.NameCopier}, A: r},
			Premise: step1,
		}},
	}
}

// RecopierProof proves recopier sat output ≤ wire, the mirror image of
// CopierProof.
func RecopierProof() proof.Proof {
	r := le(output(), wire())
	v := assertion.Var("v")

	inner := proof.Consequence{
		Premise: proof.Hypothesis{Name: paper.NameRecopier},
		To:      le(cons(v, output()), cons(v, wire())),
	}
	outStep := proof.OutputStep{
		Ch:      syntax.ChanRef{Name: "output"},
		Val:     syntax.Var{Name: "v"},
		R:       le(output(), cons(v, wire())),
		Premise: inner,
	}
	body := proof.InputStep{
		Ch:      syntax.ChanRef{Name: "wire"},
		Var:     "y",
		Dom:     nat(),
		Body:    syntax.Output{Ch: syntax.ChanRef{Name: "output"}, Val: syntax.Var{Name: "y"}, Cont: syntax.Ref{Name: paper.NameRecopier}},
		Fresh:   "v",
		R:       r,
		Premise: proof.ForAllIntro{Var: "v", Dom: nat(), Premise: outStep},
	}
	return proof.Recursion{
		Defs: []proof.RecDef{{
			Name:    paper.NameRecopier,
			Claim:   proof.Claim{Proc: syntax.Ref{Name: paper.NameRecopier}, A: r},
			Premise: body,
		}},
	}
}

// CopyNetworkProof is the §2.1(8)/(9) example: from the two copier proofs,
// by parallelism and consequence, (copier ‖ recopier) sat output ≤ input;
// by chan, the conclusion survives hiding the wire; the module's named
// networks copynet and copysys are concluded by unfolding.
func CopyNetworkProof() proof.Proof {
	par := proof.Parallelism{P1: CopierProof(), P2: RecopierProof()}
	net := proof.Unfold{
		Ref:     syntax.Ref{Name: paper.NameCopyNet},
		Premise: par,
	}
	weaker := proof.Consequence{Premise: net, To: le(output(), input())}
	hidden := proof.ChanIntro{
		Channels: []syntax.ChanItem{{Name: "wire"}},
		Premise:  weaker,
	}
	return proof.Unfold{Ref: syntax.Ref{Name: paper.NameCopySys}, Premise: hidden}
}

// mSet is the protocol's message set as referenced in its module.
func mSet() syntax.SetExpr { return syntax.SetName{Name: "M"} }

func ackSet() syntax.SetExpr {
	return syntax.EnumSet{Elems: []syntax.Expr{syntax.SymLit{Name: "ACK"}}}
}

func nackSet() syntax.SetExpr {
	return syntax.EnumSet{Elems: []syntax.Expr{syntax.SymLit{Name: "NACK"}}}
}

// SenderTable1Proof is Table 1: the mutual-recursion proof that
//
//	sender sat f(wire) ≤ input
//	∀x∈M.  q[x] sat f(wire) ≤ x⌢input
//
// following the paper's displayed steps (1)–(21) exactly; the table's
// numbered steps are cited in comments.
func SenderTable1Proof() proof.Proof {
	x := assertion.Var("x")
	senderR := le(fOf(wire()), input())                // f(wire) ≤ input
	qS := le(fOf(wire()), cons(x, input()))            // f(wire) ≤ x⌢input
	altR := le(fOf(cons(x, wire())), cons(x, input())) // f(x⌢wire) ≤ x⌢input

	// Steps (2)-(4): (input?x:M → q[x]) sat f(wire) ≤ input.
	senderBody := proof.InputStep{
		Ch:    syntax.ChanRef{Name: "input"},
		Var:   "x",
		Dom:   mSet(),
		Body:  syntax.Ref{Name: paper.NameQ, Sub: syntax.Var{Name: "x"}},
		Fresh: "v",
		R:     senderR,
		Premise: proof.ForAllIntro{ // ∀v∈M. q[v] sat f(wire) ≤ v⌢input
			Var: "v", Dom: mSet(),
			Premise: proof.Hypothesis{Name: paper.NameQ, Insts: []assertion.Term{assertion.Var("v")}},
		},
	}

	// Steps (8)-(11): y∈{ACK} branch — sender's assumption transported
	// through f(x⌢ACK⌢wire) = x⌢f(wire).
	ackBranch := proof.InputStep{ // step (15)
		Ch:    syntax.ChanRef{Name: "wire"},
		Var:   "y",
		Dom:   ackSet(),
		Body:  syntax.Ref{Name: paper.NameSender},
		Fresh: "y",
		R:     altR,
		Premise: proof.ForAllIntro{ // step (11)
			Var: "y", Dom: ackSet(),
			Premise: proof.Consequence{ // step (10)
				Premise: proof.Hypothesis{Name: paper.NameSender}, // step (1)
				To:      le(fOf(cons(x, cons(assertion.Var("y"), wire()))), cons(x, input())),
			},
		},
	}

	// Steps (12)-(16): y∈{NACK} branch — q[x]'s assumption transported
	// through f(x⌢NACK⌢wire) = f(wire).
	nackBranch := proof.InputStep{ // step (16)
		Ch:    syntax.ChanRef{Name: "wire"},
		Var:   "y",
		Dom:   nackSet(),
		Body:  syntax.Ref{Name: paper.NameQ, Sub: syntax.Var{Name: "x"}},
		Fresh: "y",
		R:     altR,
		Premise: proof.ForAllIntro{ // step (13)
			Var: "y", Dom: nackSet(),
			Premise: proof.Consequence{ // step (12)
				Premise: proof.Hypothesis{Name: paper.NameQ, Insts: []assertion.Term{x}}, // step (7)
				To:      le(fOf(cons(x, cons(assertion.Var("y"), wire()))), cons(x, input())),
			},
		},
	}

	// Steps (17)-(19): the alternative, then the output prefix wire!x.
	qBody := proof.ForAllIntro{ // step (21)
		Var: "x", Dom: mSet(),
		Premise: proof.OutputStep{ // step (19)
			Ch:      syntax.ChanRef{Name: "wire"},
			Val:     syntax.Var{Name: "x"},
			R:       qS,
			Premise: proof.Alternative{P1: ackBranch, P2: nackBranch}, // step (17)
		},
	}

	return proof.Recursion{
		Defs: []proof.RecDef{
			{
				Name:    paper.NameSender,
				Claim:   proof.Claim{Proc: syntax.Ref{Name: paper.NameSender}, A: senderR},
				Premise: senderBody,
			},
			{
				Name: paper.NameQ,
				Claim: proof.Claim{
					Quants: []proof.Quant{{Var: "x", Dom: mSet()}},
					Proc:   syntax.Ref{Name: paper.NameQ, Sub: syntax.Var{Name: "x"}},
					A:      qS,
				},
				Premise: qBody,
			},
		},
		Main: 0,
	}
}

// ReceiverProof is §2.2(2), "left as an exercise": receiver sat
// output ≤ f(wire), by recursion on receiver's definition.
func ReceiverProof() proof.Proof {
	v := assertion.Var("v")
	r := le(output(), fOf(wire()))                 // output ≤ f(wire)
	afterMsg := le(output(), fOf(cons(v, wire()))) // output ≤ f(v⌢wire)

	// ACK branch: wire!ACK → output!v → receiver.
	ackInner := proof.Consequence{
		Premise: proof.Hypothesis{Name: paper.NameReceiver},
		To:      le(cons(v, output()), fOf(cons(v, cons(assertion.Sym("ACK"), wire())))),
	}
	ackOut := proof.OutputStep{
		Ch:      syntax.ChanRef{Name: "output"},
		Val:     syntax.Var{Name: "v"},
		R:       le(output(), fOf(cons(v, cons(assertion.Sym("ACK"), wire())))),
		Premise: ackInner,
	}
	ackBranch := proof.OutputStep{
		Ch:      syntax.ChanRef{Name: "wire"},
		Val:     syntax.SymLit{Name: "ACK"},
		R:       afterMsg,
		Premise: ackOut,
	}

	// NACK branch: wire!NACK → receiver.
	nackBranch := proof.OutputStep{
		Ch:  syntax.ChanRef{Name: "wire"},
		Val: syntax.SymLit{Name: "NACK"},
		R:   afterMsg,
		Premise: proof.Consequence{
			Premise: proof.Hypothesis{Name: paper.NameReceiver},
			To:      le(output(), fOf(cons(v, cons(assertion.Sym("NACK"), wire())))),
		},
	}

	alt := syntax.Alt{
		L: syntax.Output{Ch: syntax.ChanRef{Name: "wire"}, Val: syntax.SymLit{Name: "ACK"},
			Cont: syntax.Output{Ch: syntax.ChanRef{Name: "output"}, Val: syntax.Var{Name: "z"}, Cont: syntax.Ref{Name: paper.NameReceiver}}},
		R: syntax.Output{Ch: syntax.ChanRef{Name: "wire"}, Val: syntax.SymLit{Name: "NACK"}, Cont: syntax.Ref{Name: paper.NameReceiver}},
	}
	body := proof.InputStep{
		Ch:    syntax.ChanRef{Name: "wire"},
		Var:   "z",
		Dom:   mSet(),
		Body:  alt,
		Fresh: "v",
		R:     r,
		Premise: proof.ForAllIntro{
			Var: "v", Dom: mSet(),
			Premise: proof.Alternative{P1: ackBranch, P2: nackBranch},
		},
	}
	return proof.Recursion{
		Defs: []proof.RecDef{{
			Name:    paper.NameReceiver,
			Claim:   proof.Claim{Proc: syntax.Ref{Name: paper.NameReceiver}, A: r},
			Premise: body,
		}},
	}
}

// ProtocolProof is §2.2(3), the six-step proof that
// protocol sat output ≤ input:
//
//	(1) sender sat f(wire) ≤ input            (Table 1)
//	(2) receiver sat output ≤ f(wire)         (the exercise)
//	(3) (sender ‖ receiver) sat (1) & (2)     (parallelism)
//	(4) (sender ‖ receiver) sat output ≤ input (consequence, trans ≤)
//	(5) chan wire; … sat output ≤ input       (chan)
//	(6) protocol sat output ≤ input           (definition unfolding)
func ProtocolProof() proof.Proof {
	par := proof.Parallelism{P1: SenderTable1Proof(), P2: ReceiverProof()} // (3)
	net := proof.Unfold{Ref: syntax.Ref{Name: paper.NameProtoNet}, Premise: par}
	weaker := proof.Consequence{Premise: net, To: le(output(), input())} // (4)
	hidden := proof.ChanIntro{                                           // (5)
		Channels: []syntax.ChanItem{{Name: "wire"}},
		Premise:  weaker,
	}
	return proof.Unfold{Ref: syntax.Ref{Name: paper.NameProtocol}, Premise: hidden} // (6)
}
