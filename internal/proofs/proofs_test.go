package proofs_test

import (
	"reflect"
	"testing"

	"cspsat/internal/assertion"
	"cspsat/internal/check"
	"cspsat/internal/paper"
	"cspsat/internal/proof"
	"cspsat/internal/proofs"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
	"cspsat/internal/value"
)

// copierChecker returns a proof checker configured for the copier module.
func copierChecker(t *testing.T) *proof.Checker {
	t.Helper()
	env := sem.NewEnv(paper.CopySystem(), 2)
	c := proof.NewChecker(env, nil)
	c.Validity = assertion.ValidityConfig{MaxLen: 3}
	return c
}

// protocolChecker returns a proof checker for the protocol module, with
// channel domains covering the data messages and the ACK/NACK signals.
func protocolChecker(t *testing.T) *proof.Checker {
	t.Helper()
	env := sem.NewEnv(paper.ProtocolSystem(2), 2)
	c := proof.NewChecker(env, nil)
	msgs := value.Domain(value.IntRange{Lo: 0, Hi: 1})
	wireDom := value.Union{A: msgs, B: value.NewEnum(value.Sym("ACK"), value.Sym("NACK"))}
	c.Validity = assertion.ValidityConfig{
		MaxLen: 3,
		ChanDom: map[string]value.Domain{
			"wire":   wireDom,
			"input":  msgs,
			"output": msgs,
		},
		DefaultDom: msgs,
	}
	return c
}

func TestStopSatExample(t *testing.T) {
	c := copierChecker(t)
	cl, err := c.Check(proofs.StopSatExample())
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	want := proof.Claim{Proc: syntax.Stop{}, A: paper.CopierSat()}
	if !reflect.DeepEqual(cl, want) {
		t.Fatalf("conclusion %s, want %s", cl, want)
	}
}

func TestCopierProof(t *testing.T) {
	c := copierChecker(t)
	cl, err := c.Check(proofs.CopierProof())
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if cl.String() != "copier sat wire <= input" {
		t.Fatalf("conclusion: %s", cl)
	}
}

func TestRecopierProof(t *testing.T) {
	c := copierChecker(t)
	cl, err := c.Check(proofs.RecopierProof())
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if cl.String() != "recopier sat output <= wire" {
		t.Fatalf("conclusion: %s", cl)
	}
}

func TestCopyNetworkProof(t *testing.T) {
	c := copierChecker(t)
	cl, err := c.Check(proofs.CopyNetworkProof())
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if cl.String() != "copysys sat output <= input" {
		t.Fatalf("conclusion: %s", cl)
	}
}

func TestSenderTable1Proof(t *testing.T) {
	c := protocolChecker(t)
	cl, err := c.Check(proofs.SenderTable1Proof())
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if cl.String() != "sender sat f(wire) <= input" {
		t.Fatalf("conclusion: %s", cl)
	}
}

func TestReceiverProof(t *testing.T) {
	c := protocolChecker(t)
	cl, err := c.Check(proofs.ReceiverProof())
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if cl.String() != "receiver sat output <= f(wire)" {
		t.Fatalf("conclusion: %s", cl)
	}
}

func TestProtocolProof(t *testing.T) {
	c := protocolChecker(t)
	cl, err := c.Check(proofs.ProtocolProof())
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if cl.String() != "protocol sat output <= input" {
		t.Fatalf("conclusion: %s", cl)
	}
}

// TestProvenClaimsModelCheck cross-validates every machine-checked
// conclusion with the model checker, the repository's analogue of the
// paper's §3 consistency theorem.
func TestProvenClaimsModelCheck(t *testing.T) {
	copyEnv := sem.NewEnv(paper.CopySystem(), 2)
	copyCk := check.New(copyEnv, nil, 7)
	protoEnv := sem.NewEnv(paper.ProtocolSystem(2), 2)
	protoCk := check.New(protoEnv, nil, 7)

	cases := []struct {
		name string
		ck   *check.Checker
		proc syntax.Proc
		a    assertion.A
	}{
		{"copier", copyCk, syntax.Ref{Name: paper.NameCopier}, paper.CopierSat()},
		{"recopier", copyCk, syntax.Ref{Name: paper.NameRecopier}, paper.RecopierSat()},
		{"copysys", copyCk, syntax.Ref{Name: paper.NameCopySys}, paper.CopyNetSat()},
		{"sender", protoCk, syntax.Ref{Name: paper.NameSender}, paper.SenderSat()},
		{"receiver", protoCk, syntax.Ref{Name: paper.NameReceiver}, paper.ReceiverSat()},
		{"protocol", protoCk, syntax.Ref{Name: paper.NameProtocol}, paper.ProtocolSat()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := tc.ck.Sat(tc.proc, tc.a)
			if err != nil {
				t.Fatalf("Sat: %v", err)
			}
			if !res.OK {
				t.Fatalf("model checker disagrees with proof: %s", res)
			}
		})
	}
}

// TestBogusProofsRejected feeds the checker rule applications with broken
// side conditions and expects each to be refused.
func TestBogusProofsRejected(t *testing.T) {
	t.Run("emptiness needs R_<>", func(t *testing.T) {
		c := copierChecker(t)
		// #wire >= 1 is false of empty histories.
		bad := assertion.Cmp{Op: assertion.CGe, L: assertion.Len{S: assertion.Chan("wire")}, R: assertion.Int(1)}
		if _, err := c.Check(proof.Emptiness{R: bad}); err == nil {
			t.Fatal("emptiness with false R_<> must be rejected")
		}
	})
	t.Run("consequence needs valid implication", func(t *testing.T) {
		c := copierChecker(t)
		base := proof.Emptiness{R: paper.CopierSat()}
		// wire <= input does not imply input <= wire.
		bad := proof.Consequence{Premise: base, To: assertion.PrefixLE(assertion.Chan("input"), assertion.Chan("wire"))}
		if _, err := c.Check(bad); err == nil {
			t.Fatal("consequence with invalid implication must be rejected")
		}
	})
	t.Run("chan must not hide mentioned channels", func(t *testing.T) {
		c := copierChecker(t)
		base := proof.Emptiness{R: paper.CopierSat()} // mentions wire
		bad := proof.ChanIntro{Channels: []syntax.ChanItem{{Name: "wire"}}, Premise: base}
		if _, err := c.Check(bad); err == nil {
			t.Fatal("chan hiding a mentioned channel must be rejected")
		}
	})
	t.Run("hypothesis must be in scope", func(t *testing.T) {
		c := copierChecker(t)
		if _, err := c.Check(proof.Hypothesis{Name: "copier"}); err == nil {
			t.Fatal("free-floating hypothesis must be rejected")
		}
	})
	t.Run("parallelism alphabet containment", func(t *testing.T) {
		c := copierChecker(t)
		// Claim about recopier's output attached to copier's side.
		p1 := proof.Emptiness{R: assertion.PrefixLE(assertion.Chan("output"), assertion.Chan("input"))}
		p2 := proof.Emptiness{R: paper.RecopierSat()}
		bad := proof.Parallelism{
			P1: p1, P2: p2,
			AlphaL: []syntax.ChanItem{{Name: "input"}, {Name: "wire"}},
			AlphaR: []syntax.ChanItem{{Name: "wire"}, {Name: "output"}},
		}
		if _, err := c.Check(bad); err == nil {
			t.Fatal("parallelism with out-of-alphabet assertion must be rejected")
		}
	})
	t.Run("recursion premise must match body", func(t *testing.T) {
		c := copierChecker(t)
		bad := proof.Recursion{Defs: []proof.RecDef{{
			Name:    paper.NameCopier,
			Claim:   proof.Claim{Proc: syntax.Ref{Name: paper.NameCopier}, A: paper.CopierSat()},
			Premise: proof.Emptiness{R: paper.CopierSat()}, // proves STOP sat R, not body sat R
		}}}
		if _, err := c.Check(bad); err == nil {
			t.Fatal("recursion with mismatched premise must be rejected")
		}
	})
}
