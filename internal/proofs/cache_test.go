package proofs_test

import (
	"testing"

	"cspsat/internal/check"
	"cspsat/internal/closure"
	"cspsat/internal/paper"
	"cspsat/internal/proof"
	"cspsat/internal/proofs"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
)

// TestProofsIndependentOfClosureCaches re-checks the paper's copier proof
// and model-checks its conclusion with the closure-layer caches warm, then
// cold (after ResetCaches), then warm again. The interning and memo tables
// are a transparent optimisation: every outcome must be identical, and the
// warm rerun must actually be answered from the caches.
func TestProofsIndependentOfClosureCaches(t *testing.T) {
	run := func() (proof.Claim, check.Result) {
		c := copierChecker(t)
		cl, err := c.Check(proofs.CopierProof())
		if err != nil {
			t.Fatalf("check: %v", err)
		}
		ck := check.New(sem.NewEnv(paper.CopySystem(), 2), nil, 6)
		res, err := ck.Sat(syntax.Ref{Name: paper.NameCopier}, cl.A)
		if err != nil {
			t.Fatalf("model check: %v", err)
		}
		return cl, res
	}

	warm1, sat1 := run()
	closure.ResetCaches()
	cold, satCold := run()
	before := closure.Stats()
	warm2, satWarm := run()
	after := closure.Stats()

	for _, cl := range []proof.Claim{cold, warm2} {
		if cl.String() != warm1.String() {
			t.Fatalf("proof conclusion changed across cache states: %s vs %s", warm1, cl)
		}
	}
	if sat1.OK != satCold.OK || sat1.OK != satWarm.OK || !sat1.OK {
		t.Fatalf("model-check verdict changed across cache states: %v / %v / %v",
			sat1.OK, satCold.OK, satWarm.OK)
	}
	if after.MemoHits <= before.MemoHits {
		t.Fatal("warm rerun hit no operator memos; interning is not engaged on the proof path")
	}
}
