package trace

// Symbol interning: the finite channel and event vocabularies of a spec are
// mapped once to dense integer ids, and the closure engine's hot paths run
// on the ids instead of re-deriving string keys per operation. A ChanID
// names a channel, an EventID names a communication c.m; both are assigned
// densely in first-intern order by sharded symbol tables, so they double as
// bit positions (channel bitsets in set.go) and as compact memo-key
// components (internal/closure).
//
// The tables are append-only and process-global. Ids are stable for the
// lifetime of the process: interning the same channel or event always
// returns the same id, and — unlike the closure package's intern/memo
// tables — the symbol tables are never evicted or reset, not even by
// closure.ResetCaches. Live bitsets and interned trie edges embed ids, so
// recycling one would silently change set membership; the price is that a
// host which parses an unbounded stream of distinct channel names grows its
// symbol tables monotonically. Specs have small fixed vocabularies, so
// occupancy (see SymbolTableStats) stays in the hundreds.
//
// Concurrency: forward maps (name → id) are sharded under RWMutexes; the
// reverse direction (id → name) is a chunked append-only store whose spine
// and length are published with atomics, so reverse lookups — the per-edge
// probes of the closure walkers — take no lock at all. An id handed to
// another goroutine carries the usual Go happens-before edge from whatever
// synchronisation handed it over, which is what makes the lock-free read
// safe.

import (
	"math/bits"
	"slices"
	"sync"
	"sync/atomic"

	"cspsat/internal/value"
)

// ChanID is the dense interned identity of a channel. Ids are assigned in
// first-intern order starting at 0 and are stable for the process lifetime.
type ChanID uint32

// EventID is the dense interned identity of a communication c.m.
type EventID uint32

// ChanSetID is the interned identity of a channel set's membership: two
// Sets have the same ChanSetID iff they contain the same channels. Used as
// a compact memo-key component by the closure operators.
type ChanSetID uint32

// EventSetID is the interned identity of a sorted event-id list (a chatter
// alphabet); same-membership lists share one id.
type EventSetID uint32

const (
	symShards    = 32
	symShardMask = symShards - 1

	symChunkBits = 8
	symChunkLen  = 1 << symChunkBits
)

const (
	symFNVOffset uint64 = 14695981039346656037
	symFNVPrime  uint64 = 1099511628211
)

func symHashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * symFNVPrime
	}
	return h
}

func symHashUint(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * symFNVPrime
		v >>= 8
	}
	return h
}

// symStore is an append-only id → value array stored as fixed-size chunks
// hanging off an atomically published spine. Appends serialise on mu;
// reads are lock-free: a reader holding a valid id loads the spine pointer
// (which only ever grows, and every published spine contains every chunk a
// previously returned id lives in) and indexes directly.
type symStore[V any] struct {
	mu    sync.Mutex
	count atomic.Uint32
	spine atomic.Pointer[[]*[symChunkLen]V]
}

func (s *symStore[V]) append(v V) uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := s.count.Load()
	ci, off := int(i>>symChunkBits), i&(symChunkLen-1)
	sp := s.spine.Load()
	if sp == nil || ci == len(*sp) {
		var grown []*[symChunkLen]V
		if sp != nil {
			grown = make([]*[symChunkLen]V, len(*sp), len(*sp)+1)
			copy(grown, *sp)
		}
		grown = append(grown, new([symChunkLen]V))
		sp = &grown
		s.spine.Store(sp)
	}
	(*sp)[ci][off] = v
	s.count.Store(i + 1)
	return i
}

func (s *symStore[V]) at(i uint32) V {
	sp := s.spine.Load()
	return (*sp)[i>>symChunkBits][i&(symChunkLen-1)]
}

func (s *symStore[V]) len() int { return int(s.count.Load()) }

// --- channel table ---

type chanShard struct {
	mu sync.RWMutex
	m  map[Chan]ChanID
}

var chanTab = struct {
	shards [symShards]chanShard
	store  symStore[Chan]
}{}

func init() {
	for i := range chanTab.shards {
		chanTab.shards[i].m = make(map[Chan]ChanID)
	}
	for i := range eventTab.shards {
		eventTab.shards[i].m = make(map[evKey]EventID)
	}
	chanSetTab.small = make(map[chanSetKey]ChanSetID)
	chanSetTab.big = make(map[string]ChanSetID)
	eventSetTab.m = make(map[string]EventSetID)
}

func chanShardOf(c Chan) *chanShard {
	return &chanTab.shards[int(symHashString(symFNVOffset, string(c)))&symShardMask]
}

// ID interns the channel, returning its dense id. The first caller for a
// given name assigns the id; every later call returns the same one.
func (c Chan) ID() ChanID {
	sh := chanShardOf(c)
	sh.mu.RLock()
	id, ok := sh.m[c]
	sh.mu.RUnlock()
	if ok {
		return id
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if id, ok := sh.m[c]; ok {
		return id
	}
	id = ChanID(chanTab.store.append(c))
	sh.m[c] = id
	return id
}

// LookupChan returns the channel's id without interning; ok is false when
// the channel has never been interned (in which case it cannot belong to
// any bitset either).
func LookupChan(c Chan) (ChanID, bool) {
	sh := chanShardOf(c)
	sh.mu.RLock()
	id, ok := sh.m[c]
	sh.mu.RUnlock()
	return id, ok
}

// ChanByID returns the channel named by a previously interned id.
func ChanByID(id ChanID) Chan { return chanTab.store.at(uint32(id)) }

// NumChans returns the number of distinct channels interned so far.
func NumChans() int { return chanTab.store.len() }

// --- event table ---

// evKey is the comparable forward-map key for an event. value.V is not
// comparable (sequences carry a slice), so the payload is flattened: the
// scalar kinds map to their fields directly and sequences (which never
// travel on channels in the paper's examples) fall back to the canonical
// string key.
type evKey struct {
	c    ChanID
	kind value.Kind
	i    int64
	b    bool
	s    string
}

func (k evKey) hash() uint64 {
	h := symHashUint(symFNVOffset, uint64(k.c))
	h = symHashUint(h, uint64(k.kind))
	h = symHashUint(h, uint64(k.i))
	if k.b {
		h = symHashUint(h, 1)
	}
	return symHashString(h, k.s)
}

func eventInternKey(c ChanID, m value.V) evKey {
	k := evKey{c: c, kind: m.Kind()}
	switch m.Kind() {
	case value.KindInt:
		k.i = m.AsInt()
	case value.KindSym:
		k.s = m.AsSym()
	case value.KindBool:
		k.b = m.AsBool()
	default:
		k.s = m.Key()
	}
	return k
}

type eventEntry struct {
	ev Event
	ch ChanID
}

type eventShard struct {
	mu sync.RWMutex
	m  map[evKey]EventID
}

var eventTab = struct {
	shards [symShards]eventShard
	store  symStore[eventEntry]
}{}

// ID interns the event, returning its dense id. Warm calls (channel and
// event already interned, scalar message) allocate nothing.
func (e Event) ID() EventID {
	cid := e.Chan.ID()
	k := eventInternKey(cid, e.Msg)
	sh := &eventTab.shards[int(k.hash())&symShardMask]
	sh.mu.RLock()
	id, ok := sh.m[k]
	sh.mu.RUnlock()
	if ok {
		return id
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if id, ok := sh.m[k]; ok {
		return id
	}
	id = EventID(eventTab.store.append(eventEntry{ev: e, ch: cid}))
	sh.m[k] = id
	return id
}

// LookupID returns the event's id without interning; ok is false when the
// event was never interned — in which case no interned trie contains it.
func (e Event) LookupID() (EventID, bool) {
	cid, ok := LookupChan(e.Chan)
	if !ok {
		return 0, false
	}
	k := eventInternKey(cid, e.Msg)
	sh := &eventTab.shards[int(k.hash())&symShardMask]
	sh.mu.RLock()
	id, ok := sh.m[k]
	sh.mu.RUnlock()
	return id, ok
}

// EventByID returns the event named by a previously interned id.
func EventByID(id EventID) Event { return eventTab.store.at(uint32(id)).ev }

// EventChanID returns the channel id of a previously interned event — the
// closure walkers' per-edge probe, lock-free by construction of symStore.
func EventChanID(id EventID) ChanID { return eventTab.store.at(uint32(id)).ch }

// NumEvents returns the number of distinct events interned so far.
func NumEvents() int { return eventTab.store.len() }

// --- channel-set identity ---

// chanSetKey inlines up to four bitset words (256 channel ids), which
// covers every realistic spec without allocating on the warm path; wider
// sets fall back to a packed-string key.
type chanSetKey struct {
	n              uint8
	w0, w1, w2, w3 uint64
}

var chanSetTab = struct {
	mu    sync.RWMutex
	small map[chanSetKey]ChanSetID
	big   map[string]ChanSetID
	next  ChanSetID
}{}

func packWords(ws []uint64) string {
	b := make([]byte, 0, 8*len(ws))
	for _, w := range ws {
		b = append(b, byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return string(b)
}

// ID interns the set's membership, returning a process-stable identity:
// equal sets share one ChanSetID. Warm calls on sets of ≤ 256 channel ids
// allocate nothing.
func (s Set) ID() ChanSetID {
	if len(s.words) <= 4 {
		var k chanSetKey
		k.n = uint8(len(s.words))
		switch len(s.words) {
		case 4:
			k.w3 = s.words[3]
			fallthrough
		case 3:
			k.w2 = s.words[2]
			fallthrough
		case 2:
			k.w1 = s.words[1]
			fallthrough
		case 1:
			k.w0 = s.words[0]
		}
		chanSetTab.mu.RLock()
		id, ok := chanSetTab.small[k]
		chanSetTab.mu.RUnlock()
		if ok {
			return id
		}
		chanSetTab.mu.Lock()
		defer chanSetTab.mu.Unlock()
		if id, ok := chanSetTab.small[k]; ok {
			return id
		}
		id = chanSetTab.next
		chanSetTab.next++
		chanSetTab.small[k] = id
		return id
	}
	key := packWords(s.words)
	chanSetTab.mu.RLock()
	id, ok := chanSetTab.big[key]
	chanSetTab.mu.RUnlock()
	if ok {
		return id
	}
	chanSetTab.mu.Lock()
	defer chanSetTab.mu.Unlock()
	if id, ok := chanSetTab.big[key]; ok {
		return id
	}
	id = chanSetTab.next
	chanSetTab.next++
	chanSetTab.big[key] = id
	return id
}

// NumChanSets returns the number of distinct channel-set memberships
// interned so far.
func NumChanSets() int {
	chanSetTab.mu.RLock()
	defer chanSetTab.mu.RUnlock()
	return len(chanSetTab.small) + len(chanSetTab.big)
}

// --- event-set identity ---

var eventSetTab = struct {
	mu sync.RWMutex
	m  map[string]EventSetID
}{}

// InternEventIDs interns a list of event ids (a chatter alphabet) and
// returns its identity: lists with the same elements share one id. The
// input is canonicalised here — order and duplicates do not matter — so
// memo keys built from the result are content-addressed. The input slice
// is not modified.
func InternEventIDs(ids []EventID) EventSetID {
	canonical := slices.IsSorted(ids)
	for i := 1; canonical && i < len(ids); i++ {
		canonical = ids[i] != ids[i-1]
	}
	if !canonical {
		ids = slices.Clone(ids)
		slices.Sort(ids)
		ids = slices.Compact(ids)
	}
	b := make([]byte, 0, 4*len(ids))
	for _, id := range ids {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	key := string(b)
	eventSetTab.mu.RLock()
	id, ok := eventSetTab.m[key]
	eventSetTab.mu.RUnlock()
	if ok {
		return id
	}
	eventSetTab.mu.Lock()
	defer eventSetTab.mu.Unlock()
	if id, ok := eventSetTab.m[key]; ok {
		return id
	}
	id = EventSetID(len(eventSetTab.m))
	eventSetTab.m[key] = id
	return id
}

// NumEventSets returns the number of distinct chatter alphabets interned
// so far.
func NumEventSets() int {
	eventSetTab.mu.RLock()
	defer eventSetTab.mu.RUnlock()
	return len(eventSetTab.m)
}

// SymbolStats is an occupancy snapshot of the process-global symbol
// tables, surfaced through closure.Stats for hosts watching memory health.
// The tables are append-only (never evicted or reset), so every counter is
// monotone over the process lifetime.
type SymbolStats struct {
	// Chans / Events count the distinct channels and communications
	// interned so far.
	Chans  int
	Events int
	// ChanSets / EventSets count the distinct set memberships interned as
	// memo-key identities.
	ChanSets  int
	EventSets int
}

// SymbolTableStats returns the current symbol-table occupancy.
func SymbolTableStats() SymbolStats {
	return SymbolStats{
		Chans:     NumChans(),
		Events:    NumEvents(),
		ChanSets:  NumChanSets(),
		EventSets: NumEventSets(),
	}
}

// popcountWords is shared by Set.Len; kept here with the other bit helpers.
func popcountWords(ws []uint64) int {
	n := 0
	for _, w := range ws {
		n += bits.OnesCount64(w)
	}
	return n
}
