package trace

import "testing"

// TestSetOperationsDoNotAlias is the regression test for the Set aliasing
// contract (see the type comment in set.go): every exported Set-returning
// operation allocates fresh storage, so mutating a result never changes an
// operand and mutating an operand never changes a previously computed
// result. The hazard it guards against is the map-wrapping value type: a
// careless `out := s` inside an operation would share storage and make a
// later Add on the result silently corrupt the input — which, now that
// channel sets serve as memo-table keys in internal/closure, would poison
// cached operator results.
func TestSetOperationsDoNotAlias(t *testing.T) {
	snapshot := func(s Set) map[Chan]bool {
		out := map[Chan]bool{}
		for _, c := range s.Slice() {
			out[c] = true
		}
		return out
	}
	unchanged := func(t *testing.T, label string, s Set, want map[Chan]bool) {
		t.Helper()
		if s.Len() != len(want) {
			t.Fatalf("%s: operand mutated: %v", label, s)
		}
		for c := range want {
			if !s.Contains(c) {
				t.Fatalf("%s: operand lost %q: %v", label, c, s)
			}
		}
	}

	a := NewSet("x", "y")
	b := NewSet("y", "z")
	aWant, bWant := snapshot(a), snapshot(b)

	results := map[string]Set{
		"Union":     a.Union(b),
		"Intersect": a.Intersect(b),
		"Minus":     a.Minus(b),
		"With":      a.With("w"),
		"Clone":     a.Clone(),
	}
	for label, r := range results {
		// Mutating the result must not touch either operand.
		r.Add("poison")
		unchanged(t, label+" then Add(result)", a, aWant)
		unchanged(t, label+" then Add(result)", b, bWant)
	}

	// Conversely, mutating an operand must not change results computed
	// before the mutation.
	u := a.Union(b)
	w := a.With("w")
	c := a.Clone()
	k := a.Key()
	a.Add("late")
	if u.Contains("late") || w.Contains("late") || c.Contains("late") {
		t.Fatal("mutating an operand leaked into a previously computed result")
	}
	if k == a.Key() {
		t.Fatal("Key must reflect the mutation on the operand itself")
	}

	// The zero Set participates in the same contract.
	var zero Set
	z := zero.With("only")
	if zero.Len() != 0 || z.Len() != 1 {
		t.Fatalf("With on the zero set: zero=%v result=%v", zero, z)
	}
	if got := zero.Union(NewSet("q")); got.Len() != 1 || zero.Len() != 0 {
		t.Fatalf("Union on the zero set aliased: zero=%v got=%v", zero, got)
	}
}

// TestSetKeyCanonical: equal sets have equal keys, distinct sets distinct
// keys, and the key is insensitive to construction order — the property the
// closure memo tables depend on.
func TestSetKeyCanonical(t *testing.T) {
	if NewSet("a", "b").Key() != NewSet("b", "a").Key() {
		t.Fatal("Key must not depend on insertion order")
	}
	if NewSet("a", "b").Key() == NewSet("a").Key() {
		t.Fatal("distinct sets must have distinct keys")
	}
	if NewSet().Key() != (Set{}).Key() {
		t.Fatal("empty and zero sets must share a key")
	}
	// The separator must prevent concatenation ambiguity: {"ab"} ≠ {"a","b"}.
	if NewSet("ab").Key() == NewSet("a", "b").Key() {
		t.Fatal(`{"ab"} and {"a","b"} must have distinct keys`)
	}
}
