// Package trace implements the paper's §3 vocabulary of observations: a
// communication is a pair c.m of a channel name and a message value, a trace
// is a finite sequence of communications, and ch(s) maps a trace to the
// per-channel histories that the assertion language reads.
//
// Channels are identified by their rendered name: a plain channel is "wire",
// an element of a channel array is "col[2]". Subscripted channels are fully
// evaluated before they reach this package, so identity is plain string
// equality, exactly as in the paper where col[0..3] denotes four distinct
// channels.
package trace

import (
	"sort"
	"strconv"
	"strings"

	"cspsat/internal/value"
)

// Chan is the identity of a single channel. Use Sub to render an element of
// a channel array.
type Chan string

// TauChan is the pseudo-channel labelling the silent steps of internal
// choice (P |~| Q) in the operational semantics. Events on it are always
// hidden; it is not a communicable channel and never appears in visible
// traces or histories.
const TauChan Chan = "τ"

// Sub renders the subscripted channel name c[i], e.g. Sub("col", 2) = "col[2]".
func Sub(name string, i int64) Chan {
	return Chan(name + "[" + strconv.FormatInt(i, 10) + "]")
}

// ArrayName splits a channel identity into its array name and subscript.
// For a plain channel it returns (name, 0, false).
func (c Chan) ArrayName() (name string, sub int64, ok bool) {
	s := string(c)
	open := strings.IndexByte(s, '[')
	if open < 0 || !strings.HasSuffix(s, "]") {
		return s, 0, false
	}
	n, err := strconv.ParseInt(s[open+1:len(s)-1], 10, 64)
	if err != nil {
		return s, 0, false
	}
	return s[:open], n, true
}

// Event is one communication c.m: message m passing on channel c. The paper
// does not distinguish direction — transmission and receipt are the same
// event — and neither do we.
type Event struct {
	Chan Chan
	Msg  value.V
}

// String renders the event in the paper's "c.m" notation.
func (e Event) String() string { return string(e.Chan) + "." + e.Msg.String() }

// Compare totally orders events by channel then message.
func (e Event) Compare(f Event) int {
	if c := strings.Compare(string(e.Chan), string(f.Chan)); c != 0 {
		return c
	}
	return e.Msg.Compare(f.Msg)
}

// T is a trace: a finite sequence of communications, oldest first.
// The nil trace is the empty trace <>.
type T []Event

// String renders the trace in the paper's angle-bracket notation,
// e.g. <input.27, wire.27, input.0>.
func (t T) String() string {
	parts := make([]string, len(t))
	for i, e := range t {
		parts[i] = e.String()
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

// Append returns a new trace extending t by e; t is not modified and the
// result never aliases t's backing array (so traces can be shared freely
// across a breadth-first exploration frontier).
func (t T) Append(e Event) T {
	out := make(T, len(t)+1)
	copy(out, t)
	out[len(t)] = e
	return out
}

// Equal reports whether two traces are identical event sequences.
func (t T) Equal(u T) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i].Chan != u[i].Chan || !t[i].Msg.Equal(u[i].Msg) {
			return false
		}
	}
	return true
}

// Compare orders traces lexicographically (with shorter prefixes first),
// giving trace sets a canonical order.
func (t T) Compare(u T) int {
	for i := 0; i < len(t) && i < len(u); i++ {
		if c := t[i].Compare(u[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	default:
		return 0
	}
}

// IsPrefixOf reports the paper's s ≤ t on traces: t begins with s.
func (t T) IsPrefixOf(u T) bool {
	if len(t) > len(u) {
		return false
	}
	for i := range t {
		if t[i].Chan != u[i].Chan || !t[i].Msg.Equal(u[i].Msg) {
			return false
		}
	}
	return true
}

// Prefixes returns all prefixes of t including <> and t itself, shortest
// first. Each returned trace shares t's backing array.
func (t T) Prefixes() []T {
	out := make([]T, len(t)+1)
	for i := 0; i <= len(t); i++ {
		out[i] = t[:i]
	}
	return out
}

// Hide implements the paper's s\C: the trace formed from t by omitting every
// communication on a channel in C.
func (t T) Hide(c Set) T {
	var out T
	for _, e := range t {
		if !c.Contains(e.Chan) {
			out = append(out, e)
		}
	}
	return out
}

// ProjectOnto restricts t to the communications on channels in X. It equals
// t.Hide(complement of X); the paper writes it s\(A−X) and uses it to define
// alphabetized parallel composition.
func (t T) ProjectOnto(x Set) T {
	var out T
	for _, e := range t {
		if x.Contains(e.Chan) {
			out = append(out, e)
		}
	}
	return out
}

// Channels returns the set of channels on which t communicates.
func (t T) Channels() Set {
	s := NewSet()
	for _, e := range t {
		s.Add(e.Chan)
	}
	return s
}

// Key returns a canonical string identity for the trace, for use as a map key.
func (t T) Key() string {
	var sb strings.Builder
	for _, e := range t {
		sb.WriteString(string(e.Chan))
		sb.WriteByte(':')
		sb.WriteString(e.Msg.Key())
		sb.WriteByte(';')
	}
	return sb.String()
}

// IDKey returns a compact canonical identity for the trace: the packed
// interned event ids, 4 bytes per event. Equal traces have equal IDKeys
// (and vice versa) for the process lifetime, since event ids are stable.
// Prefer this over Key for map keys on hot paths — it is one small
// allocation and never re-renders channel names or message payloads.
func (t T) IDKey() string {
	b := make([]byte, 0, 4*len(t))
	for _, e := range t {
		id := e.ID()
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(b)
}

// History is ch(s): a finite map from channel to the sequence of messages
// communicated on that channel, in order. Channels absent from the map have
// the empty history, matching the paper's ch(s)(c) = <> for unused c.
type History map[Chan][]value.V

// Ch computes the paper's ch(s) for a trace. All per-channel sequences
// share one backing array sized up front (traces are short, so the extra
// scan per distinct channel is cheaper than regrowing per-channel slices);
// the three-index subslices keep them from stepping on each other if a
// caller appends.
func Ch(t T) History {
	h := make(History, 4)
	if len(t) == 0 {
		return h
	}
	buf := make([]value.V, 0, len(t))
	for i, e := range t {
		if _, done := h[e.Chan]; done {
			continue
		}
		start := len(buf)
		buf = append(buf, e.Msg)
		for _, f := range t[i+1:] {
			if f.Chan == e.Chan {
				buf = append(buf, f.Msg)
			}
		}
		h[e.Chan] = buf[start:len(buf):len(buf)]
	}
	return h
}

// Get returns the message sequence for channel c (empty if none).
func (h History) Get(c Chan) []value.V { return h[c] }

// Len returns the paper's #c for channel c.
func (h History) Len(c Chan) int { return len(h[c]) }

// At returns the paper's c_i, the i-th message on channel c with 1-based
// indexing as in the paper; ok is false when i is out of range.
func (h History) At(c Chan, i int) (value.V, bool) {
	seq := h[c]
	if i < 1 || i > len(seq) {
		return value.V{}, false
	}
	return seq[i-1], true
}

// Channels returns the channels with a non-empty history, sorted.
func (h History) Channels() []Chan {
	out := make([]Chan, 0, len(h))
	for c := range h {
		if len(h[c]) > 0 {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the history deterministically, e.g. "input=<27,0>, wire=<27>".
func (h History) String() string {
	cs := h.Channels()
	parts := make([]string, 0, len(cs))
	for _, c := range cs {
		parts = append(parts, string(c)+"="+value.SeqOf(h[c]).String())
	}
	if len(parts) == 0 {
		return "(all channels empty)"
	}
	return strings.Join(parts, ", ")
}

// Clone returns a deep copy of the history.
func (h History) Clone() History {
	out := make(History, len(h))
	for c, seq := range h {
		cp := make([]value.V, len(seq))
		copy(cp, seq)
		out[c] = cp
	}
	return out
}

// IsPrefixSeq reports the paper's s ≤ t on value sequences: t begins with s.
func IsPrefixSeq(s, t []value.V) bool {
	if len(s) > len(t) {
		return false
	}
	for i := range s {
		if !s[i].Equal(t[i]) {
			return false
		}
	}
	return true
}
