package trace

import (
	"math/bits"
	"strings"
)

// Set is a finite set of channel identities, used for process alphabets and
// hiding lists (the paper's X, Y, L, C). The zero Set is empty and usable.
//
// Representation: a bitset over the process-global dense ChanID space (see
// sym.go) — word i bit j holds channel id 64i+j. Membership by id is a
// single bit probe (ContainsID), and Union/Intersect/Minus run in O(words)
// regardless of how many channels the sets hold, which is what the closure
// engine's hiding/ignore/parallel walkers lean on. The string API (Add,
// Contains, Slice, Key, …) is unchanged; names are resolved through the
// symbol table at the boundary.
//
// Aliasing contract: a Set is a small struct wrapping a slice, so copying
// the struct shares the underlying storage. Add/AddID/AddSet are therefore
// construction-phase operations only: they may be called while a set is
// being built, before the set is returned, stored, or otherwise shared.
// Every exported operation that returns a Set (NewSet, With, Union,
// Intersect, Minus, Clone, and the Slice-derived constructors elsewhere)
// allocates fresh storage that never aliases its inputs, so results may be
// mutated with Add without affecting the operands — and mutating an operand
// never changes a previously computed result. TestSetOperationsDoNotAlias
// guards this contract. To extend a set that may already be shared, use
// With, which copies.
//
// Invariant: words is normalized — empty, or its last word is non-zero —
// so Equal and ID can compare word-for-word.
type Set struct {
	words []uint64
}

// trimWords drops trailing zero words, restoring the normalization
// invariant after an operation that may have cleared the top word.
func trimWords(ws []uint64) []uint64 {
	for len(ws) > 0 && ws[len(ws)-1] == 0 {
		ws = ws[:len(ws)-1]
	}
	return ws
}

// NewSet returns a set containing the given channels.
func NewSet(cs ...Chan) Set {
	var s Set
	for _, c := range cs {
		s.Add(c)
	}
	return s
}

// Add inserts c, interning it if needed and growing the backing words on
// first use. Add mutates the receiver's storage in place and must only be
// used on sets the caller constructed and has not yet shared (see the type
// comment); use With for a non-mutating extension.
func (s *Set) Add(c Chan) {
	s.AddID(c.ID())
}

// AddID inserts a channel by its interned id; same aliasing rules as Add.
func (s *Set) AddID(id ChanID) {
	w := int(id >> 6)
	if w >= len(s.words) {
		grown := make([]uint64, w+1)
		copy(grown, s.words)
		s.words = grown
	}
	s.words[w] |= 1 << (id & 63)
}

// AddSet inserts every channel of t in O(words); same aliasing rules as Add.
func (s *Set) AddSet(t Set) {
	if len(t.words) > len(s.words) {
		grown := make([]uint64, len(t.words))
		copy(grown, s.words)
		s.words = grown
	}
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// With returns a new set containing the receiver's channels plus cs. The
// receiver is never modified and the result never aliases it, so With is
// safe on shared sets where Add is not.
func (s Set) With(cs ...Chan) Set {
	out := s.Clone()
	for _, c := range cs {
		out.Add(c)
	}
	return out
}

// Contains reports membership. A channel that was never interned anywhere
// in the process cannot belong to any set, so the lookup does not intern.
func (s Set) Contains(c Chan) bool {
	id, ok := LookupChan(c)
	return ok && s.ContainsID(id)
}

// ContainsID reports membership by interned id: one bit probe.
func (s Set) ContainsID(id ChanID) bool {
	w := int(id >> 6)
	return w < len(s.words) && s.words[w]&(1<<(id&63)) != 0
}

// Len returns the number of channels in the set.
func (s Set) Len() int { return popcountWords(s.words) }

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	a, b := s.words, t.words
	if len(b) > len(a) {
		a, b = b, a
	}
	out := make([]uint64, len(a))
	copy(out, a)
	for i, w := range b {
		out[i] |= w
	}
	return Set{words: out} // both inputs normalized, so the top word is non-zero
}

// Intersect returns s ∩ t (the channels connecting two parallel processes).
func (s Set) Intersect(t Set) Set {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = s.words[i] & t.words[i]
	}
	return Set{words: trimWords(out)}
}

// Minus returns s − t (the channels private to one side of a parallel
// composition).
func (s Set) Minus(t Set) Set {
	out := make([]uint64, len(s.words))
	for i, w := range s.words {
		if i < len(t.words) {
			out[i] = w &^ t.words[i]
		} else {
			out[i] = w
		}
	}
	return Set{words: trimWords(out)}
}

// Equal reports set equality: word-for-word, thanks to normalization.
func (s Set) Equal(t Set) bool {
	if len(s.words) != len(t.words) {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports s ⊆ t.
func (s Set) SubsetOf(t Set) bool {
	for i, w := range s.words {
		if w == 0 {
			continue
		}
		if i >= len(t.words) || w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// IDs returns the member channel ids in ascending id order.
func (s Set) IDs() []ChanID {
	out := make([]ChanID, 0, s.Len())
	for i, w := range s.words {
		base := ChanID(i << 6)
		for w != 0 {
			out = append(out, base+ChanID(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return out
}

// Slice returns the channels in sorted name order.
func (s Set) Slice() []Chan {
	ids := s.IDs()
	out := make([]Chan, len(ids))
	for i, id := range ids {
		out[i] = ChanByID(id)
	}
	// Ids are assigned in first-intern order, not name order, so sort.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Key returns a canonical string identity for the set: two sets have equal
// keys iff they contain the same channels. Retained for display-adjacent
// callers; the memoized closure operators key on the denser ID().
func (s Set) Key() string {
	cs := s.Slice()
	var sb strings.Builder
	for _, c := range cs {
		sb.WriteString(string(c))
		sb.WriteByte('\x00')
	}
	return sb.String()
}

// String renders the set in the paper's brace notation, e.g. "{input, wire}".
func (s Set) String() string {
	cs := s.Slice()
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = string(c)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	if len(s.words) == 0 {
		return Set{}
	}
	out := make([]uint64, len(s.words))
	copy(out, s.words)
	return Set{words: out}
}
