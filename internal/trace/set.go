package trace

import (
	"sort"
	"strings"
)

// Set is a finite set of channel identities, used for process alphabets and
// hiding lists (the paper's X, Y, L, C). The zero Set is empty and usable.
//
// Aliasing contract: a Set is a small struct wrapping a map, so copying the
// struct shares the underlying storage. Add is therefore a
// construction-phase operation only: it may be called while a set is being
// built, before the set is returned, stored, or otherwise shared. Every
// exported operation that returns a Set (NewSet, With, Union, Intersect,
// Minus, Clone, and the Slice-derived constructors elsewhere) allocates
// fresh storage that never aliases its inputs, so results may be mutated
// with Add without affecting the operands — and mutating an operand never
// changes a previously computed result. TestSetOperationsDoNotAlias guards
// this contract. To extend a set that may already be shared, use With,
// which copies.
type Set struct {
	m map[Chan]bool
}

// NewSet returns a set containing the given channels.
func NewSet(cs ...Chan) Set {
	s := Set{m: make(map[Chan]bool, len(cs))}
	for _, c := range cs {
		s.m[c] = true
	}
	return s
}

// Add inserts c, allocating the underlying map on first use. Add mutates
// the receiver's storage in place and must only be used on sets the caller
// constructed and has not yet shared (see the type comment); use With for
// a non-mutating extension.
func (s *Set) Add(c Chan) {
	if s.m == nil {
		s.m = make(map[Chan]bool)
	}
	s.m[c] = true
}

// With returns a new set containing the receiver's channels plus cs. The
// receiver is never modified and the result never aliases it, so With is
// safe on shared sets where Add is not.
func (s Set) With(cs ...Chan) Set {
	out := make(map[Chan]bool, len(s.m)+len(cs))
	for c := range s.m {
		out[c] = true
	}
	for _, c := range cs {
		out[c] = true
	}
	return Set{m: out}
}

// Contains reports membership.
func (s Set) Contains(c Chan) bool { return s.m[c] }

// Len returns the number of channels in the set.
func (s Set) Len() int { return len(s.m) }

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	out := NewSet()
	for c := range s.m {
		out.Add(c)
	}
	for c := range t.m {
		out.Add(c)
	}
	return out
}

// Intersect returns s ∩ t (the channels connecting two parallel processes).
func (s Set) Intersect(t Set) Set {
	out := NewSet()
	for c := range s.m {
		if t.m[c] {
			out.Add(c)
		}
	}
	return out
}

// Minus returns s − t (the channels private to one side of a parallel
// composition).
func (s Set) Minus(t Set) Set {
	out := NewSet()
	for c := range s.m {
		if !t.m[c] {
			out.Add(c)
		}
	}
	return out
}

// Equal reports set equality.
func (s Set) Equal(t Set) bool {
	if len(s.m) != len(t.m) {
		return false
	}
	for c := range s.m {
		if !t.m[c] {
			return false
		}
	}
	return true
}

// SubsetOf reports s ⊆ t.
func (s Set) SubsetOf(t Set) bool {
	for c := range s.m {
		if !t.m[c] {
			return false
		}
	}
	return true
}

// Slice returns the channels in sorted order.
func (s Set) Slice() []Chan {
	out := make([]Chan, 0, len(s.m))
	for c := range s.m {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Key returns a canonical string identity for the set: two sets have equal
// keys iff they contain the same channels. Used as a cache key by the
// memoized closure operators, whose results depend on a channel set only
// through its membership.
func (s Set) Key() string {
	cs := s.Slice()
	var sb strings.Builder
	for _, c := range cs {
		sb.WriteString(string(c))
		sb.WriteByte('\x00')
	}
	return sb.String()
}

// String renders the set in the paper's brace notation, e.g. "{input, wire}".
func (s Set) String() string {
	cs := s.Slice()
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = string(c)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	out := NewSet()
	for c := range s.m {
		out.Add(c)
	}
	return out
}
