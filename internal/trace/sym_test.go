package trace

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"cspsat/internal/value"
)

// TestChanIDStableAndDistinct pins the interning contract: the same name
// always yields the same id, distinct names distinct ids, and ChanByID
// round-trips.
func TestChanIDStableAndDistinct(t *testing.T) {
	a, b := Chan("symtest_a"), Chan("symtest_b")
	ida, idb := a.ID(), b.ID()
	if ida == idb {
		t.Fatalf("distinct channels interned to the same id %d", ida)
	}
	if got := a.ID(); got != ida {
		t.Fatalf("Chan.ID unstable: %d then %d", ida, got)
	}
	if got := ChanByID(ida); got != a {
		t.Fatalf("ChanByID(%d) = %q, want %q", ida, got, a)
	}
	if id, ok := LookupChan(a); !ok || id != ida {
		t.Fatalf("LookupChan(%q) = %d,%v want %d,true", a, id, ok, ida)
	}
	if _, ok := LookupChan(Chan("symtest_never_interned_via_id")); ok {
		t.Fatal("LookupChan interned a channel it should only look up")
	}
}

// TestEventIDRoundTrip checks that event interning round-trips through
// EventByID and that EventChanID agrees with interning the channel alone.
func TestEventIDRoundTrip(t *testing.T) {
	evs := []Event{
		{Chan: "symtest_e", Msg: value.Int(3)},
		{Chan: "symtest_e", Msg: value.Int(4)},
		{Chan: "symtest_e", Msg: value.Sym("three")},
		{Chan: "symtest_e", Msg: value.Bool(true)},
		{Chan: "symtest_e", Msg: value.Seq(value.Int(1), value.Int(2))},
		{Chan: "symtest_f", Msg: value.Int(3)},
	}
	ids := map[EventID]bool{}
	for _, e := range evs {
		id := e.ID()
		if ids[id] {
			t.Fatalf("event %s shares an id with a distinct event", e)
		}
		ids[id] = true
		back := EventByID(id)
		if back.Chan != e.Chan || !back.Msg.Equal(e.Msg) {
			t.Fatalf("EventByID(%d) = %s, want %s", id, back, e)
		}
		if EventChanID(id) != e.Chan.ID() {
			t.Fatalf("EventChanID(%d) disagrees with %q.ID()", id, e.Chan)
		}
		if got, ok := e.LookupID(); !ok || got != id {
			t.Fatalf("LookupID(%s) = %d,%v want %d,true", e, got, ok, id)
		}
	}
	if _, ok := (Event{Chan: "symtest_never", Msg: value.Int(9)}).LookupID(); ok {
		t.Fatal("LookupID interned an event it should only look up")
	}
}

// TestConcurrentInterning hammers the sharded tables from many goroutines
// interning overlapping name sets; every goroutine must observe the same
// name→id assignment. Run under -race in CI.
func TestConcurrentInterning(t *testing.T) {
	const goroutines, names = 8, 100
	results := make([][]ChanID, goroutines)
	evResults := make([][]EventID, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids := make([]ChanID, names)
			eids := make([]EventID, names)
			for i := range ids {
				name := fmt.Sprintf("symtest_conc_%d", i)
				ids[i] = Chan(name).ID()
				eids[i] = Event{Chan: Chan(name), Msg: value.Int(int64(i % 4))}.ID()
			}
			results[g] = ids
			evResults[g] = eids
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range results[0] {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d interned chan %d as %d, goroutine 0 as %d", g, i, results[g][i], results[0][i])
			}
			if evResults[g][i] != evResults[0][i] {
				t.Fatalf("goroutine %d interned event %d as %d, goroutine 0 as %d", g, i, evResults[g][i], evResults[0][i])
			}
		}
	}
}

// TestSetIDCanonical checks that set interning is by content, not by
// construction order or aliasing.
func TestSetIDCanonical(t *testing.T) {
	a := NewSet("symtest_s1", "symtest_s2", "symtest_s3")
	var b Set
	for _, n := range []string{"symtest_s3", "symtest_s1", "symtest_s2", "symtest_s1"} {
		b.Add(Chan(n))
	}
	if a.ID() != b.ID() {
		t.Fatalf("equal sets interned to different ids %d and %d", a.ID(), b.ID())
	}
	c := NewSet("symtest_s1", "symtest_s2")
	if a.ID() == c.ID() {
		t.Fatal("distinct sets share a ChanSetID")
	}
	if NewSet().ID() == c.ID() {
		t.Fatal("empty set shares an id with a non-empty set")
	}
}

// TestBitsetOpsAgainstMapModel drives the bitset Set operations against a
// map[string]bool model over randomized inputs, including channels whose
// ids straddle word boundaries (the generator interns well over 64 names).
func TestBitsetOpsAgainstMapModel(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	universe := make([]Chan, 150)
	for i := range universe {
		universe[i] = Chan(fmt.Sprintf("symtest_u%03d", i))
		universe[i].ID() // force ids across several bitset words
	}
	randPair := func() (Set, map[string]bool) {
		var s Set
		m := map[string]bool{}
		for i, n := 0, r.Intn(20); i < n; i++ {
			c := universe[r.Intn(len(universe))]
			s.Add(c)
			m[string(c)] = true
		}
		return s, m
	}
	check := func(label string, got Set, want map[string]bool) {
		t.Helper()
		if got.Len() != len(want) {
			t.Fatalf("%s: Len = %d, model has %d", label, got.Len(), len(want))
		}
		for _, c := range universe {
			if got.Contains(c) != want[string(c)] {
				t.Fatalf("%s: Contains(%s) = %v, model says %v", label, c, got.Contains(c), want[string(c)])
			}
		}
		names := got.Slice()
		sorted := sort.SliceIsSorted(names, func(i, j int) bool { return names[i] < names[j] })
		if !sorted {
			t.Fatalf("%s: Slice not sorted: %q", label, names)
		}
	}
	for i := 0; i < 300; i++ {
		a, ma := randPair()
		b, mb := randPair()
		mu, mi, md := map[string]bool{}, map[string]bool{}, map[string]bool{}
		for k := range ma {
			mu[k] = true
			if mb[k] {
				mi[k] = true
			} else {
				md[k] = true
			}
		}
		for k := range mb {
			mu[k] = true
		}
		check("union", a.Union(b), mu)
		check("intersect", a.Intersect(b), mi)
		check("minus", a.Minus(b), md)
		if got, want := a.SubsetOf(b), len(md) == 0; got != want {
			t.Fatalf("SubsetOf = %v, model says %v (a=%s b=%s)", got, want, a, b)
		}
		if got, want := a.Equal(b), len(ma) == len(mb) && len(md) == 0; got != want {
			t.Fatalf("Equal = %v, model says %v", got, want)
		}
		ids := a.IDs()
		if len(ids) != len(ma) {
			t.Fatalf("IDs returned %d ids, model has %d", len(ids), len(ma))
		}
		for _, id := range ids {
			if !ma[string(ChanByID(id))] {
				t.Fatalf("IDs yielded %s which the model lacks", ChanByID(id))
			}
		}
	}
}

// TestTraceIDKey checks IDKey distinguishes what Key distinguishes.
func TestTraceIDKey(t *testing.T) {
	e1 := Event{Chan: "symtest_k", Msg: value.Int(1)}
	e2 := Event{Chan: "symtest_k", Msg: value.Int(2)}
	t1 := T{e1, e2}
	t2 := T{e2, e1}
	if t1.IDKey() == t2.IDKey() {
		t.Fatal("IDKey collides for distinct traces")
	}
	if t1.IDKey() != (T{e1, e2}).IDKey() {
		t.Fatal("IDKey unstable for equal traces")
	}
	if len(t1.IDKey()) != 8 {
		t.Fatalf("IDKey of a 2-event trace is %d bytes, want 8", len(t1.IDKey()))
	}
}

// TestInternEventIDsCanonical checks alphabet interning ignores order and
// duplicates, matching what Ignore's memo key relies on.
func TestInternEventIDsCanonical(t *testing.T) {
	a := Event{Chan: "symtest_ia", Msg: value.Int(0)}.ID()
	b := Event{Chan: "symtest_ib", Msg: value.Int(0)}.ID()
	id1 := InternEventIDs([]EventID{a, b})
	id2 := InternEventIDs([]EventID{b, a, a})
	if id1 != id2 {
		t.Fatalf("same alphabet interned to %d and %d", id1, id2)
	}
	if id1 == InternEventIDs([]EventID{a}) {
		t.Fatal("distinct alphabets share an EventSetID")
	}
}

// TestSymbolStatsMonotonic checks the counters only grow: interning is
// append-only and survives closure-cache resets by design (DESIGN.md §3.4).
func TestSymbolStatsMonotonic(t *testing.T) {
	before := SymbolTableStats()
	Chan("symtest_mono_new").ID()
	after := SymbolTableStats()
	if after.Chans <= before.Chans {
		t.Fatalf("chan count did not grow: %d -> %d", before.Chans, after.Chans)
	}
	if after.Events < before.Events || after.ChanSets < before.ChanSets || after.EventSets < before.EventSets {
		t.Fatal("symbol counters decreased; tables must be append-only")
	}
}
