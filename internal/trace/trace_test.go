package trace_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"cspsat/internal/trace"
	"cspsat/internal/value"
)

func ev(c string, m int64) trace.Event {
	return trace.Event{Chan: trace.Chan(c), Msg: value.Int(m)}
}

func tr(events ...trace.Event) trace.T { return trace.T(events) }

func TestSubAndArrayName(t *testing.T) {
	c := trace.Sub("col", 2)
	if c != "col[2]" {
		t.Fatalf("Sub = %q", c)
	}
	name, sub, ok := c.ArrayName()
	if !ok || name != "col" || sub != 2 {
		t.Fatalf("ArrayName = %q %d %v", name, sub, ok)
	}
	name, _, ok = trace.Chan("wire").ArrayName()
	if ok || name != "wire" {
		t.Fatalf("plain ArrayName = %q %v", name, ok)
	}
	if _, _, ok := trace.Chan("weird[x]").ArrayName(); ok {
		t.Fatal("non-numeric subscript accepted")
	}
}

func TestTraceStringAndEventString(t *testing.T) {
	if got := tr().String(); got != "<>" {
		t.Errorf("empty trace = %q", got)
	}
	got := tr(ev("input", 27), ev("wire", 27)).String()
	if got != "<input.27, wire.27>" {
		t.Errorf("trace = %q", got)
	}
}

func TestAppendDoesNotAlias(t *testing.T) {
	base := tr(ev("a", 1))
	t1 := base.Append(ev("b", 2))
	t2 := base.Append(ev("c", 3))
	if t1[1].Chan != "b" || t2[1].Chan != "c" {
		t.Fatalf("Append aliased backing arrays: %s %s", t1, t2)
	}
	if len(base) != 1 {
		t.Fatalf("base mutated: %s", base)
	}
}

func TestPrefixOrder(t *testing.T) {
	s := tr(ev("a", 1), ev("b", 2))
	long := tr(ev("a", 1), ev("b", 2), ev("c", 3))
	if !tr().IsPrefixOf(s) || !s.IsPrefixOf(s) || !s.IsPrefixOf(long) {
		t.Error("expected prefixes rejected")
	}
	if long.IsPrefixOf(s) {
		t.Error("longer accepted as prefix of shorter")
	}
	diff := tr(ev("a", 1), ev("b", 9))
	if diff.IsPrefixOf(long) {
		t.Error("mismatching trace accepted as prefix")
	}
}

func TestPrefixes(t *testing.T) {
	s := tr(ev("a", 1), ev("b", 2))
	ps := s.Prefixes()
	if len(ps) != 3 {
		t.Fatalf("Prefixes count = %d", len(ps))
	}
	for i, p := range ps {
		if len(p) != i || !p.IsPrefixOf(s) {
			t.Errorf("prefix %d = %s", i, p)
		}
	}
}

func TestHideAndProject(t *testing.T) {
	s := tr(ev("input", 1), ev("wire", 1), ev("output", 1), ev("wire", 2))
	hidden := s.Hide(trace.NewSet("wire"))
	if hidden.String() != "<input.1, output.1>" {
		t.Errorf("Hide = %s", hidden)
	}
	proj := s.ProjectOnto(trace.NewSet("wire"))
	if proj.String() != "<wire.1, wire.2>" {
		t.Errorf("ProjectOnto = %s", proj)
	}
	// Hide and ProjectOnto partition the trace's events.
	if len(hidden)+len(proj) != len(s) {
		t.Error("hide/project do not partition")
	}
}

func TestChHistories(t *testing.T) {
	// The paper's §3.3 worked example.
	s := tr(ev("input", 27), ev("wire", 27), ev("input", 0), ev("wire", 0), ev("input", 3))
	h := trace.Ch(s)
	wantIn := []value.V{value.Int(27), value.Int(0), value.Int(3)}
	if !reflect.DeepEqual(h.Get("input"), wantIn) {
		t.Errorf("ch(s)(input) = %v", h.Get("input"))
	}
	wantWire := []value.V{value.Int(27), value.Int(0)}
	if !reflect.DeepEqual(h.Get("wire"), wantWire) {
		t.Errorf("ch(s)(wire) = %v", h.Get("wire"))
	}
	if h.Len("nonesuch") != 0 {
		t.Error("unused channel has non-empty history")
	}
	// 1-based indexing as in the paper.
	v, ok := h.At("input", 1)
	if !ok || v.AsInt() != 27 {
		t.Errorf("input_1 = %v %v", v, ok)
	}
	if _, ok := h.At("input", 0); ok {
		t.Error("At(0) accepted")
	}
	if _, ok := h.At("input", 4); ok {
		t.Error("At past end accepted")
	}
}

func TestHistoryStringDeterministic(t *testing.T) {
	h := trace.Ch(tr(ev("b", 2), ev("a", 1)))
	if got := h.String(); got != "a=<1>, b=<2>" {
		t.Errorf("History.String = %q", got)
	}
	if got := (trace.History{}).String(); got != "(all channels empty)" {
		t.Errorf("empty history = %q", got)
	}
}

func TestHistoryClone(t *testing.T) {
	h := trace.Ch(tr(ev("a", 1)))
	c := h.Clone()
	h["a"][0] = value.Int(9)
	if c.Get("a")[0].AsInt() != 1 {
		t.Error("Clone shares backing array")
	}
}

func TestSetOperations(t *testing.T) {
	x := trace.NewSet("input", "wire")
	y := trace.NewSet("wire", "output")
	if got := x.Intersect(y); got.Len() != 1 || !got.Contains("wire") {
		t.Errorf("Intersect = %s", got)
	}
	if got := x.Union(y); got.Len() != 3 {
		t.Errorf("Union = %s", got)
	}
	if got := x.Minus(y); got.Len() != 1 || !got.Contains("input") {
		t.Errorf("Minus = %s", got)
	}
	if !x.Intersect(y).SubsetOf(x) {
		t.Error("intersection not subset")
	}
	if x.Equal(y) || !x.Equal(x.Clone()) {
		t.Error("Equal wrong")
	}
	if got := y.String(); got != "{output, wire}" {
		t.Errorf("String = %q", got)
	}
	var zero trace.Set
	if zero.Contains("wire") || zero.Len() != 0 {
		t.Error("zero Set not empty")
	}
	zero.Add("wire")
	if !zero.Contains("wire") {
		t.Error("Add on zero Set failed")
	}
}

// Property tests for the §3.4 lemma (d) ingredient:
// ch(s)(c) = ch(s\C)(c) whenever c ∉ C.

type qtrace struct{ T trace.T }

// Generate implements quick.Generator: random traces over 3 channels and
// small ints.
func (qtrace) Generate(r *rand.Rand, _ int) reflect.Value {
	chans := []string{"a", "b", "c"}
	n := r.Intn(8)
	out := make(trace.T, n)
	for i := range out {
		out[i] = ev(chans[r.Intn(len(chans))], int64(r.Intn(4)))
	}
	return reflect.ValueOf(qtrace{T: out})
}

func TestChHideLemma(t *testing.T) {
	hideB := trace.NewSet("b")
	if err := quick.Check(func(q qtrace) bool {
		full := trace.Ch(q.T)
		hidden := trace.Ch(q.T.Hide(hideB))
		// Unhidden channels keep their histories...
		if !reflect.DeepEqual(full.Get("a"), hidden.Get("a")) {
			return false
		}
		if !reflect.DeepEqual(full.Get("c"), hidden.Get("c")) {
			return false
		}
		// ...and the hidden channel's history vanishes.
		return hidden.Len("b") == 0
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestProjectHidePartition(t *testing.T) {
	set := trace.NewSet("a", "c")
	if err := quick.Check(func(q qtrace) bool {
		return len(q.T.ProjectOnto(set))+len(q.T.Hide(set)) == len(q.T)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestTraceCompareIsTotalOrder(t *testing.T) {
	if err := quick.Check(func(a, b, c qtrace) bool {
		if a.T.Compare(b.T) != -b.T.Compare(a.T) {
			return false
		}
		if (a.T.Compare(b.T) == 0) != a.T.Equal(b.T) {
			return false
		}
		if a.T.Compare(b.T) <= 0 && b.T.Compare(c.T) <= 0 && a.T.Compare(c.T) > 0 {
			return false
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyAgreesWithEqual(t *testing.T) {
	if err := quick.Check(func(a, b qtrace) bool {
		return (a.T.Key() == b.T.Key()) == a.T.Equal(b.T)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestIsPrefixSeq(t *testing.T) {
	a := []value.V{value.Int(1), value.Int(2)}
	b := []value.V{value.Int(1), value.Int(2), value.Int(3)}
	if !trace.IsPrefixSeq(nil, a) || !trace.IsPrefixSeq(a, a) || !trace.IsPrefixSeq(a, b) {
		t.Error("expected prefixes rejected")
	}
	if trace.IsPrefixSeq(b, a) || trace.IsPrefixSeq([]value.V{value.Int(2)}, a) {
		t.Error("non-prefixes accepted")
	}
}
