package journal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func testMeta() Meta {
	return Meta{WireSchema: 1, StoreCodec: 3, Go: "go-test", Start: 42}
}

func writeTestJournal(t *testing.T, records int) (path string, recs []Record) {
	t.Helper()
	path = filepath.Join(t.TempDir(), "j.cspj")
	w, err := Create(path, testMeta())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := 0; i < records; i++ {
		rec := Record{
			Time:       int64(1000 + i),
			Method:     "POST",
			Path:       "/v1/check",
			Status:     200,
			Request:    []byte(`{"source":"p = a!1 -> p\n","depth":` + string(rune('4'+i)) + `}`),
			RespDigest: Digest([]byte(`{"ok":true,"n":` + string(rune('0'+i)) + `}`)),
			RespBytes:  20 + i,
		}
		if err := w.Append(rec); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		rec.Seq = i + 1
		recs = append(recs, rec)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return path, recs
}

func TestRoundTrip(t *testing.T) {
	path, want := writeTestJournal(t, 5)
	res, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if res.Torn {
		t.Fatalf("clean journal read as torn: %v", res.TornErr)
	}
	if res.Meta.Schema != Schema || res.Meta.WireSchema != 1 || res.Meta.StoreCodec != 3 || res.Meta.Go != "go-test" {
		t.Fatalf("meta mangled: %+v", res.Meta)
	}
	if len(res.Records) != len(want) {
		t.Fatalf("got %d records, want %d", len(res.Records), len(want))
	}
	for i, rec := range res.Records {
		w := want[i]
		if rec.Seq != w.Seq || rec.Method != w.Method || rec.Path != w.Path ||
			rec.Status != w.Status || !bytes.Equal(rec.Request, w.Request) ||
			rec.RespDigest != w.RespDigest || rec.RespBytes != w.RespBytes {
			t.Errorf("record %d mangled:\ngot  %+v\nwant %+v", i, rec, w)
		}
	}
}

func TestCreateRefusesExisting(t *testing.T) {
	path, _ := writeTestJournal(t, 1)
	if _, err := Create(path, testMeta()); err == nil {
		t.Fatal("Create over an existing journal succeeded; journals are immutable history")
	}
}

// TestTornFinalRecord is the crash-tolerance contract: truncating the file
// at every byte position inside the final frame must read back the full
// valid prefix with Torn set — never an error, never a short prefix, and
// never the damaged record.
func TestTornFinalRecord(t *testing.T) {
	path, want := writeTestJournal(t, 3)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Read(data)
	if err != nil || len(full.Records) != 3 {
		t.Fatalf("baseline read: %v (%d records)", err, len(full.Records))
	}

	// The header's extent: an empty journal is exactly magic + meta frame.
	emptyPath := filepath.Join(t.TempDir(), "empty.cspj")
	we, err := Create(emptyPath, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	we.Close()
	empty, err := os.ReadFile(emptyPath)
	if err != nil {
		t.Fatal(err)
	}
	headerEnd := len(empty)

	// Try every truncation point: cuts inside the header must fail as
	// corrupt, cuts anywhere in record territory must yield the intact
	// prefix plus Torn.
	for cut := len(data) - 1; cut > 0; cut-- {
		res, err := Read(data[:cut])
		if err != nil {
			if cut < headerEnd && errors.Is(err, ErrCorrupt) {
				continue
			}
			t.Fatalf("cut %d: %v", cut, err)
		}
		if cut < headerEnd {
			t.Fatalf("cut %d inside the header read back clean", cut)
		}
		if len(res.Records) == 3 && !res.Torn {
			t.Fatalf("cut %d: truncated journal read back complete", cut)
		}
		if len(res.Records) > 3 {
			t.Fatalf("cut %d: invented records", cut)
		}
		if res.Torn && res.TornErr == nil {
			t.Fatalf("cut %d: torn without a cause", cut)
		}
		if res.Torn && !errors.Is(res.TornErr, ErrTorn) {
			t.Fatalf("cut %d: torn cause %v does not wrap ErrTorn", cut, res.TornErr)
		}
		for i, rec := range res.Records {
			if rec.RespDigest != want[i].RespDigest {
				t.Fatalf("cut %d: surviving record %d mangled", cut, i)
			}
		}
	}
}

// TestMidFileCorruption: flipping a byte in a non-final record is not
// tearing — the read must fail loudly rather than silently dropping the
// records behind the damage.
func TestMidFileCorruption(t *testing.T) {
	path, _ := writeTestJournal(t, 3)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte early in the first record's payload (past magic + header
	// frame; the records carry distinctive JSON, so offset len(data)/3 is
	// safely inside record territory but before the final frame).
	mut := append([]byte(nil), data...)
	mut[len(mut)/3] ^= 0x40
	res, err := Read(mut)
	if err == nil {
		// The flip may have landed in the final record after all; then it
		// must at least be reported torn.
		if !res.Torn {
			t.Fatal("corrupt journal read back clean")
		}
		return
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestBadMagic(t *testing.T) {
	for _, data := range [][]byte{nil, []byte("x"), []byte("CSPJRNL9morebytes")} {
		if _, err := Read(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("Read(%q) = %v, want ErrCorrupt", data, err)
		}
	}
}

func TestNormalizeStripsVolatileKeys(t *testing.T) {
	a := []byte(`{"ok":true,"elapsed_ms":12,"cache_hit":false,"results":[{"ok":true,"elapsed_ms":7,"progress":[{"stage":"x"}]}]}`)
	b := []byte(`{"results":[{"progress":[],"elapsed_ms":99,"ok":true}],"cache_hit":true,"ok":true,"elapsed_ms":1}`)
	if Digest(a) != Digest(b) {
		t.Fatalf("normalization is not timing-blind:\n%s\n%s", Normalize(a), Normalize(b))
	}
	c := []byte(`{"ok":false,"elapsed_ms":12}`)
	if Digest(a) == Digest(c) {
		t.Fatal("normalization erased a verdict difference")
	}
}

func TestNormalizeKeyOrderAndNumbers(t *testing.T) {
	a := []byte(`{"b":2,"a":1.50,"c":[1,2,3]}`)
	b := []byte(`{"a":1.50,"c":[1,2,3],"b":2}`)
	if !bytes.Equal(Normalize(a), Normalize(b)) {
		t.Fatalf("key order leaked into normal form: %s vs %s", Normalize(a), Normalize(b))
	}
	// json.Number must preserve the literal (1.50 stays 1.50, not 1.5).
	if !bytes.Contains(Normalize(a), []byte("1.50")) {
		t.Fatalf("number literal rewritten: %s", Normalize(a))
	}
}

func TestNormalizeNonJSON(t *testing.T) {
	raw := []byte("not json at all")
	if !bytes.Equal(Normalize(raw), raw) {
		t.Fatal("non-JSON body rewritten")
	}
	trailing := []byte(`{"ok":true} extra`)
	if !bytes.Equal(Normalize(trailing), trailing) {
		t.Fatal("trailing-garbage body rewritten")
	}
}

func TestWriterStats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.cspj")
	w, err := Create(path, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if n, b := w.Stats(); n != 0 || b <= int64(len(Magic)) {
		t.Fatalf("fresh stats (%d, %d)", n, b)
	}
	if err := w.Append(Record{Method: "POST", Path: "/v1/check"}); err != nil {
		t.Fatal(err)
	}
	n, b := w.Stats()
	if n != 1 {
		t.Fatalf("records = %d, want 1", n)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != b {
		t.Fatalf("stats bytes %d, file %v %v", b, fi.Size(), err)
	}
}
