// Package journal implements cspserved's append-only request log: a
// checksummed, uvarint-framed record of every deterministic /v1/* request
// the server answered, with a digest of the response it gave. The journal
// exists to make the store's reproducibility claim checkable — replay the
// journal against a warm-restarted server (internal/scenario.Replay,
// `cspscen replay`) and every response must normalize to the same bytes.
//
// File layout:
//
//	"CSPJRNL1"                                the 8-byte magic
//	frame(meta JSON)                          provenance header (Meta)
//	frame(record JSON) ...                    one frame per request
//
// where frame(p) = uvarint(len(p)) | p | crc64(p), the CRC computed with
// the ECMA polynomial over the payload bytes only — the same trailer
// discipline as the artifact store's codec. Payloads are JSON rather than
// packed binary: journals are diagnostic artifacts first, and `jq` over an
// extracted payload beats a format document.
//
// The writer appends frames under a mutex and never seeks, so a crash (or
// a SIGKILL mid-write) can only leave a torn *final* frame. The reader is
// correspondingly tolerant: a trailing frame that is incomplete or fails
// its checksum is skipped and reported via Torn/TornErr, while a bad frame
// with more data after it is corruption, not tearing, and fails the read.
package journal

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"sort"
	"sync"
)

// Magic identifies a journal file; the trailing 1 is the format version.
const Magic = "CSPJRNL1"

// Schema is the version stamped into Meta; bump on any record-shape change
// that old readers would misinterpret.
const Schema = 1

var (
	// ErrCorrupt reports a malformed journal: bad magic, or a damaged
	// frame that is not the final one (tearing can only damage the tail).
	ErrCorrupt = errors.New("journal: corrupt")
	// ErrTorn is the cause recorded in ReadResult.TornErr when the final
	// frame was incomplete; it never fails a read.
	ErrTorn = errors.New("journal: torn final record")
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// Meta is the journal's provenance header, written once at creation: which
// server wrote it, with which wire schema and store codec, on which
// toolchain — the stamp that lets a replay refuse a journal recorded
// against an incompatible build.
type Meta struct {
	// Schema is the journal format version (the package constant).
	Schema int `json:"schema"`
	// WireSchema is csp.WireSchema at recording time: the version of the
	// response bodies the digests were computed over.
	WireSchema int `json:"wire_schema"`
	// StoreCodec is the artifact store's codec version at recording time
	// (internal/store.Version), 0 when the server ran storeless.
	StoreCodec uint32 `json:"store_codec"`
	// Go is the recording process's toolchain (runtime.Version()).
	Go string `json:"go"`
	// Start is the recording server's start time, Unix nanoseconds.
	Start int64 `json:"start_unix_ns"`
}

// Record is one journaled request/response exchange. The response itself
// is not retained — only its length and the digest of its normalized body
// — so journals stay proportional to request traffic, not to trace-set
// listings.
type Record struct {
	// Seq numbers records from 1 within one journal file.
	Seq int `json:"seq"`
	// Time is the wall-clock receipt time, Unix nanoseconds. Informational
	// only; replay ignores it.
	Time int64 `json:"unix_ns"`
	// Method and Path identify the endpoint ("POST", "/v1/check").
	Method string `json:"method"`
	Path   string `json:"path"`
	// Status is the HTTP status the server answered with.
	Status int `json:"status"`
	// Request is the raw request body as received.
	Request []byte `json:"request"`
	// RespDigest is hex SHA-256 over Normalize(response body).
	RespDigest string `json:"resp_digest"`
	// RespBytes is the raw (un-normalized) response body length.
	RespBytes int `json:"resp_bytes"`
}

// VolatileKeys are the response-body JSON keys Normalize strips, at any
// nesting depth, before digesting: fields that legitimately differ between
// a recording and a faithful replay. Everything else — verdicts, traces,
// counterexamples, refusals, schema stamps — must reproduce byte-for-byte.
//
//	elapsed_ms  wall-clock timing
//	progress    engine progress snapshots (timing-dependent)
//	cache_hit   whether the module was already resident — a replay against
//	            a warm-booted store answers true where the recording's
//	            first contact answered false, by design
var VolatileKeys = map[string]bool{
	"elapsed_ms": true,
	"progress":   true,
	"cache_hit":  true,
}

// Normalize renders a response body into its canonical comparable form:
// JSON re-marshaled with sorted keys and the VolatileKeys stripped at
// every depth. Non-JSON input is returned as-is — such a body has no
// volatile fields to forgive, so raw equality is the right comparison.
func Normalize(body []byte) []byte {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return body
	}
	// Trailing garbage after the JSON document: not a wire body we ever
	// produce; compare raw.
	if _, err := dec.Token(); err != io.EOF {
		return body
	}
	out, err := json.Marshal(stripVolatile(v))
	if err != nil {
		return body
	}
	return out
}

func stripVolatile(v any) any {
	switch t := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out := make(map[string]any, len(t))
		for _, k := range keys {
			if VolatileKeys[k] {
				continue
			}
			out[k] = stripVolatile(t[k])
		}
		return out
	case []any:
		for i := range t {
			t[i] = stripVolatile(t[i])
		}
		return t
	default:
		return v
	}
}

// Digest returns the hex SHA-256 of the normalized body — the value
// recorded in Record.RespDigest and recomputed by replay.
func Digest(body []byte) string {
	sum := sha256.Sum256(Normalize(body))
	return hex.EncodeToString(sum[:])
}

// Writer appends frames to one journal file. Safe for concurrent use; the
// file is opened O_APPEND and every frame is written with a single Write
// call, so records from concurrent requests interleave whole, never
// byte-wise.
type Writer struct {
	mu       sync.Mutex
	f        *os.File
	seq      int
	bytes    int64
	path     string
	writeErr error
}

// Create opens a new journal file at path (failing if it exists — journals
// are immutable history, one file per server run) and writes the magic and
// meta header.
func Create(path string, meta Meta) (*Writer, error) {
	meta.Schema = Schema
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	w := &Writer{f: f, path: path}
	payload, err := json.Marshal(meta)
	if err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	buf := append([]byte(Magic), frame(payload)...)
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	w.bytes = int64(len(buf))
	return w, nil
}

// frame wraps a payload as uvarint(len) | payload | crc64(payload).
func frame(payload []byte) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint64(buf, crc64.Checksum(payload, crcTable))
}

// Append journals one record, assigning its sequence number. A write error
// is returned, remembered, and repeated by every later Append — a journal
// that lost a record must not pretend to be complete.
func (w *Writer) Append(rec Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.writeErr != nil {
		return w.writeErr
	}
	w.seq++
	rec.Seq = w.seq
	payload, err := json.Marshal(rec)
	if err != nil {
		w.writeErr = err
		return err
	}
	buf := frame(payload)
	if _, err := w.f.Write(buf); err != nil {
		w.writeErr = fmt.Errorf("journal: appending record %d: %w", rec.Seq, err)
		return w.writeErr
	}
	w.bytes += int64(len(buf))
	return nil
}

// Stats reports the writer's cumulative record and byte counts (header
// included), for /metrics.
func (w *Writer) Stats() (records int, bytes int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq, w.bytes
}

// Path returns the journal file's path.
func (w *Writer) Path() string { return w.path }

// Close flushes and closes the journal file.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// ReadResult is a decoded journal: the provenance header, every intact
// record in order, and whether a torn final record was skipped.
type ReadResult struct {
	Meta    Meta
	Records []Record
	// Torn reports that the file ended in an incomplete or checksum-failed
	// final frame, which was skipped; TornErr says what was wrong with it.
	// The valid prefix in Records is unaffected.
	Torn    bool
	TornErr error
}

// ReadFile decodes a journal file. Damage confined to the final frame —
// the only damage an append-only writer's crash can cause — is tolerated
// and reported via Torn; anything else (bad magic, a damaged frame with
// complete frames after it) returns an error wrapping ErrCorrupt.
func ReadFile(path string) (*ReadResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Read(data)
}

// Read decodes a journal from bytes; see ReadFile.
func Read(data []byte) (*ReadResult, error) {
	if len(data) < len(Magic) || string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	rest := data[len(Magic):]
	res := &ReadResult{}
	first := true
	for len(rest) > 0 {
		payload, remaining, err := readFrame(rest)
		if err != nil {
			// An append-only writer's crash can only truncate, so a damaged
			// frame is tearing exactly when it is the last thing in the
			// file: an incomplete frame sees nothing beyond itself, and a
			// checksum mismatch with zero bytes after the frame is a
			// partially flushed tail. A bad checksum with more frames
			// behind it — or any damage to the meta header — is corruption.
			if first {
				return nil, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
			}
			if len(remaining) > 0 {
				return nil, fmt.Errorf("%w: record %d: %v (%d bytes follow)",
					ErrCorrupt, len(res.Records)+1, err, len(remaining))
			}
			res.Torn = true
			res.TornErr = fmt.Errorf("%w: %v", ErrTorn, err)
			return res, nil
		}
		if first {
			first = false
			if err := json.Unmarshal(payload, &res.Meta); err != nil {
				return nil, fmt.Errorf("%w: decoding meta: %v", ErrCorrupt, err)
			}
			if res.Meta.Schema != Schema {
				return nil, fmt.Errorf("%w: journal schema %d, reader schema %d", ErrCorrupt, res.Meta.Schema, Schema)
			}
			rest = remaining
			continue
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			// An intact checksum over an undecodable payload is corruption
			// even at the tail: tearing truncates, it does not rewrite.
			return nil, fmt.Errorf("%w: decoding record %d: %v", ErrCorrupt, len(res.Records)+1, err)
		}
		res.Records = append(res.Records, rec)
		rest = remaining
	}
	if first {
		return nil, fmt.Errorf("%w: missing meta header", ErrCorrupt)
	}
	return res, nil
}

// readFrame decodes one uvarint-framed, CRC-trailed payload from the front
// of data. On a checksum mismatch it still reports the bytes following the
// complete frame, so the caller can tell a partially flushed tail (nothing
// follows) from mid-file corruption (later frames follow).
func readFrame(data []byte) (payload, rest []byte, err error) {
	n, used := binary.Uvarint(data)
	if used <= 0 {
		return nil, nil, errors.New("incomplete frame length")
	}
	if n > uint64(len(data)-used) {
		return nil, nil, fmt.Errorf("frame claims %d payload bytes, %d remain", n, len(data)-used)
	}
	payload = data[used : used+int(n)]
	rest = data[used+int(n):]
	if len(rest) < 8 {
		return nil, nil, errors.New("incomplete frame checksum")
	}
	want := binary.LittleEndian.Uint64(rest[:8])
	if got := crc64.Checksum(payload, crcTable); got != want {
		return payload, rest[8:], fmt.Errorf("frame checksum mismatch (got %016x, want %016x)", got, want)
	}
	return payload, rest[8:], nil
}
