package laws_test

import (
	"math/rand"
	"testing"

	"cspsat/internal/gen"
	"cspsat/internal/laws"
	"cspsat/internal/paper"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
)

// TestLawsOnPaperProcesses validates the whole catalogue against the
// paper's own processes.
func TestLawsOnPaperProcesses(t *testing.T) {
	env := sem.NewEnv(paper.CopySystem(), 2)
	pool := []syntax.Proc{
		syntax.Stop{},
		syntax.Ref{Name: paper.NameCopier},
		syntax.Ref{Name: paper.NameRecopier},
		syntax.Output{Ch: syntax.ChanRef{Name: "h"}, Val: syntax.IntLit{Val: 1},
			Cont: syntax.Ref{Name: paper.NameCopier}},
	}
	if err := laws.CheckAll(env, pool, 4); err != nil {
		t.Fatal(err)
	}
}

// TestLawsOnRandomProcesses validates the catalogue against randomly
// generated guarded terms (sequential, to keep tuple enumeration cheap).
func TestLawsOnRandomProcesses(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for round := 0; round < 8; round++ {
		m, main := gen.Module(r, gen.Config{MaxDepth: 3})
		env := sem.NewEnv(m, 2)
		_, second := gen.Module(r, gen.Config{MaxDepth: 3})
		_ = second
		pool := []syntax.Proc{syntax.Stop{}, main}
		if err := laws.CheckAll(env, pool, 3); err != nil {
			t.Fatalf("round %d: %v\nmodule:\n%s", round, err, m)
		}
	}
}

// TestLawCheckRejectsNonLaw: the checker must be able to refute, not just
// confirm — a deliberately wrong "law" gets a counterexample.
func TestLawCheckRejectsNonLaw(t *testing.T) {
	env := sem.NewEnv(paper.CopySystem(), 2)
	bogus := laws.Law{
		Name:  "everything-is-stop",
		Arity: 1,
		LHS:   func(ps []syntax.Proc) syntax.Proc { return ps[0] },
		RHS:   func([]syntax.Proc) syntax.Proc { return syntax.Stop{} },
	}
	err := laws.Check(bogus, env, []syntax.Proc{syntax.Ref{Name: paper.NameCopier}}, 4)
	if err == nil {
		t.Fatal("bogus law accepted")
	}
	// Arity mismatch is reported.
	if err := laws.Check(bogus, env, nil, 4); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

// TestHidingNotDistributiveOverPar documents a NON-law: hiding does not in
// general distribute over parallel composition (hiding a synchronisation
// channel on one side only frees that side to run ahead). The checker must
// find the counterexample.
func TestHidingNotDistributiveOverPar(t *testing.T) {
	m := syntax.NewModule()
	// p = a!1 -> h!1 -> STOP performs a visible step before offering the
	// sync; q = h?x:{1} -> b!1 -> STOP waits for it. Jointly, b cannot
	// precede a; with the hiding split per-side, q's lone hidden input
	// fires immediately and <b.1> becomes possible.
	m.MustDefine(syntax.Def{Name: "p", Body: syntax.Output{
		Ch: syntax.ChanRef{Name: "a"}, Val: syntax.IntLit{Val: 1},
		Cont: syntax.Output{Ch: syntax.ChanRef{Name: "h"}, Val: syntax.IntLit{Val: 1}, Cont: syntax.Stop{}},
	}})
	m.MustDefine(syntax.Def{Name: "q", Body: syntax.Input{
		Ch: syntax.ChanRef{Name: "h"}, Var: "x",
		Dom:  syntax.EnumSet{Elems: []syntax.Expr{syntax.IntLit{Val: 1}}},
		Cont: syntax.Output{Ch: syntax.ChanRef{Name: "b"}, Val: syntax.IntLit{Val: 1}, Cont: syntax.Stop{}},
	}})
	env := sem.NewEnv(m, 2)
	notALaw := laws.Law{
		Name:  "hide-distributes-over-par",
		Arity: 2,
		LHS: func(ps []syntax.Proc) syntax.Proc {
			return syntax.Hiding{Channels: []syntax.ChanItem{{Name: "h"}},
				Body: syntax.Par{L: ps[0], R: ps[1]}}
		},
		RHS: func(ps []syntax.Proc) syntax.Proc {
			return syntax.Par{
				L: syntax.Hiding{Channels: []syntax.ChanItem{{Name: "h"}}, Body: ps[0]},
				R: syntax.Hiding{Channels: []syntax.ChanItem{{Name: "h"}}, Body: ps[1]},
			}
		},
	}
	insts := []syntax.Proc{syntax.Ref{Name: "p"}, syntax.Ref{Name: "q"}}
	if err := laws.Check(notALaw, env, insts, 4); err == nil {
		t.Fatal("hiding wrongly distributes over parallel")
	}
}
