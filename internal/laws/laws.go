// Package laws catalogues the algebraic laws that the paper's prefix-
// closure model validates — the equations that make the trace model a
// process algebra — and provides a checker that verifies each law on
// concrete instantiations by comparing trace sets.
//
// The catalogue doubles as executable documentation of the model's §4
// peculiarities: "STOP is a unit of |" is exactly the unrealistic treatment
// of non-determinism the conclusion complains about, and it is checkable
// here rather than merely asserted.
package laws

import (
	"fmt"

	"cspsat/internal/op"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
)

// Law is a named trace equivalence schema over metavariables P, Q, R…
// (instantiated with concrete processes when checked).
type Law struct {
	Name string
	// Arity is how many process metavariables the law takes.
	Arity int
	// LHS and RHS build the two sides from the instantiation.
	LHS, RHS func(ps []syntax.Proc) syntax.Proc
	// Note records the paper connection, if any.
	Note string
}

func hide(name string, p syntax.Proc) syntax.Proc {
	return syntax.Hiding{Channels: []syntax.ChanItem{{Name: name}}, Body: p}
}

func hide2(n1, n2 string, p syntax.Proc) syntax.Proc {
	return syntax.Hiding{Channels: []syntax.ChanItem{{Name: n1}, {Name: n2}}, Body: p}
}

// All returns the law catalogue. The hiding laws use the fixed channel
// names "h" and "k"; instantiations may or may not communicate on them.
func All() []Law {
	return []Law{
		{
			Name: "alt-idempotent", Arity: 1,
			LHS: func(ps []syntax.Proc) syntax.Proc { return syntax.Alt{L: ps[0], R: ps[0]} },
			RHS: func(ps []syntax.Proc) syntax.Proc { return ps[0] },
		},
		{
			Name: "alt-commutative", Arity: 2,
			LHS: func(ps []syntax.Proc) syntax.Proc { return syntax.Alt{L: ps[0], R: ps[1]} },
			RHS: func(ps []syntax.Proc) syntax.Proc { return syntax.Alt{L: ps[1], R: ps[0]} },
		},
		{
			Name: "alt-associative", Arity: 3,
			LHS: func(ps []syntax.Proc) syntax.Proc {
				return syntax.Alt{L: syntax.Alt{L: ps[0], R: ps[1]}, R: ps[2]}
			},
			RHS: func(ps []syntax.Proc) syntax.Proc {
				return syntax.Alt{L: ps[0], R: syntax.Alt{L: ps[1], R: ps[2]}}
			},
		},
		{
			Name: "alt-unit-stop", Arity: 1,
			LHS:  func(ps []syntax.Proc) syntax.Proc { return syntax.Alt{L: syntax.Stop{}, R: ps[0]} },
			RHS:  func(ps []syntax.Proc) syntax.Proc { return ps[0] },
			Note: "the §4 defect: STOP | P is identically P in the prefix-closure model",
		},
		{
			Name: "ichoice-equals-alt-in-traces", Arity: 2,
			LHS:  func(ps []syntax.Proc) syntax.Proc { return syntax.IChoice{L: ps[0], R: ps[1]} },
			RHS:  func(ps []syntax.Proc) syntax.Proc { return syntax.Alt{L: ps[0], R: ps[1]} },
			Note: "the trace model cannot see the difference; internal/failures can",
		},
		{
			Name: "ichoice-unit-stop", Arity: 1,
			LHS:  func(ps []syntax.Proc) syntax.Proc { return syntax.IChoice{L: syntax.Stop{}, R: ps[0]} },
			RHS:  func(ps []syntax.Proc) syntax.Proc { return ps[0] },
			Note: "the §4 defect in its sharpest form",
		},
		{
			Name: "par-commutative", Arity: 2,
			LHS: func(ps []syntax.Proc) syntax.Proc { return syntax.Par{L: ps[0], R: ps[1]} },
			RHS: func(ps []syntax.Proc) syntax.Proc { return syntax.Par{L: ps[1], R: ps[0]} },
		},
		{
			Name: "par-associative", Arity: 3,
			LHS: func(ps []syntax.Proc) syntax.Proc {
				return syntax.Par{L: syntax.Par{L: ps[0], R: ps[1]}, R: ps[2]}
			},
			RHS: func(ps []syntax.Proc) syntax.Proc {
				return syntax.Par{L: ps[0], R: syntax.Par{L: ps[1], R: ps[2]}}
			},
			Note: "with inferred (own-channel) alphabets",
		},
		{
			Name: "par-unit-stop", Arity: 1,
			LHS:  func(ps []syntax.Proc) syntax.Proc { return syntax.Par{L: ps[0], R: syntax.Stop{}} },
			RHS:  func(ps []syntax.Proc) syntax.Proc { return ps[0] },
			Note: "STOP's inferred alphabet is empty, so it constrains nothing",
		},
		{
			Name: "hide-stop", Arity: 0,
			LHS: func([]syntax.Proc) syntax.Proc { return hide("h", syntax.Stop{}) },
			RHS: func([]syntax.Proc) syntax.Proc { return syntax.Stop{} },
		},
		{
			Name: "hide-hide-fuses", Arity: 1,
			LHS:  func(ps []syntax.Proc) syntax.Proc { return hide("h", hide("k", ps[0])) },
			RHS:  func(ps []syntax.Proc) syntax.Proc { return hide2("h", "k", ps[0]) },
			Note: "chan L; chan K; P = chan L∪K; P",
		},
		{
			Name: "hide-idempotent", Arity: 1,
			LHS: func(ps []syntax.Proc) syntax.Proc { return hide("h", hide("h", ps[0])) },
			RHS: func(ps []syntax.Proc) syntax.Proc { return hide("h", ps[0]) },
		},
		{
			Name: "hide-distributes-over-alt", Arity: 2,
			LHS: func(ps []syntax.Proc) syntax.Proc {
				return hide("h", syntax.Alt{L: ps[0], R: ps[1]})
			},
			RHS: func(ps []syntax.Proc) syntax.Proc {
				return syntax.Alt{L: hide("h", ps[0]), R: hide("h", ps[1])}
			},
			Note: "§3.1: P\\C distributes through unions",
		},
		{
			Name: "prefix-distributes-over-alt", Arity: 2,
			LHS: func(ps []syntax.Proc) syntax.Proc {
				return syntax.Output{Ch: syntax.ChanRef{Name: "z"}, Val: syntax.IntLit{Val: 0},
					Cont: syntax.Alt{L: ps[0], R: ps[1]}}
			},
			RHS: func(ps []syntax.Proc) syntax.Proc {
				return syntax.Alt{
					L: syntax.Output{Ch: syntax.ChanRef{Name: "z"}, Val: syntax.IntLit{Val: 0}, Cont: ps[0]},
					R: syntax.Output{Ch: syntax.ChanRef{Name: "z"}, Val: syntax.IntLit{Val: 0}, Cont: ps[1]},
				}
			},
			Note: "§3.1: (a → ∪Pₓ) = ∪(a → Pₓ)",
		},
	}
}

// Check verifies one law on one instantiation by comparing the visible
// trace sets of both sides to the given depth. A nil error means the two
// sides are trace-equivalent up to that depth.
func Check(l Law, env sem.Env, insts []syntax.Proc, depth int) error {
	if len(insts) != l.Arity {
		return fmt.Errorf("laws: %s takes %d processes, got %d", l.Name, l.Arity, len(insts))
	}
	lhs, rhs := l.LHS(insts), l.RHS(insts)
	ls, err := op.Traces(lhs, env, depth)
	if err != nil {
		return fmt.Errorf("laws: %s lhs: %w", l.Name, err)
	}
	rs, err := op.Traces(rhs, env, depth)
	if err != nil {
		return fmt.Errorf("laws: %s rhs: %w", l.Name, err)
	}
	if w := ls.FirstNotIn(rs); w != nil {
		return fmt.Errorf("laws: %s fails: %s performs %s, %s cannot", l.Name, lhs, w, rhs)
	}
	if w := rs.FirstNotIn(ls); w != nil {
		return fmt.Errorf("laws: %s fails: %s performs %s, %s cannot", l.Name, rhs, w, lhs)
	}
	return nil
}

// CheckAll verifies every law in the catalogue against every instantiation
// drawn (with repetition) from the given process pool.
func CheckAll(env sem.Env, pool []syntax.Proc, depth int) error {
	for _, l := range All() {
		if err := checkOnPool(l, env, pool, depth); err != nil {
			return err
		}
	}
	return nil
}

func checkOnPool(l Law, env sem.Env, pool []syntax.Proc, depth int) error {
	if l.Arity == 0 {
		return Check(l, env, nil, depth)
	}
	// Enumerate all tuples from the pool (pool sizes are small in tests).
	idx := make([]int, l.Arity)
	for {
		insts := make([]syntax.Proc, l.Arity)
		for i, j := range idx {
			insts[i] = pool[j]
		}
		if err := Check(l, env, insts, depth); err != nil {
			return err
		}
		i := 0
		for ; i < l.Arity; i++ {
			idx[i]++
			if idx[i] < len(pool) {
				break
			}
			idx[i] = 0
		}
		if i == l.Arity {
			return nil
		}
	}
}
