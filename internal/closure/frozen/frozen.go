// Package frozen implements the zero-copy arena tier of the closure layer:
// a trie graph flattened once — at compile/export time — into a single
// offset-addressed byte image that later processes mmap (or read whole)
// and traverse directly, with no pointers to fix up, no nodes to re-intern,
// and no per-node heap objects. It is the move FDR-style checkers make when
// compiled state spaces outgrow what rebuild-on-boot can amortise: the
// image *is* the data structure.
//
// # Image layout
//
// All integers little-endian; node ids are dense uint32 indices in
// bottom-up order (children strictly precede parents), node 0 is the empty
// trie {<>}:
//
//	magic     8 bytes  "CSPFRZN1"
//	nodes     uint32   N ≥ 1 (node 0 included)
//	edges     uint32   E
//	events    uint32   K
//	reserved  uint32   must be 0
//	edgeStart (N+1) × uint32   node i's edges are edge rows edgeStart[i]..edgeStart[i+1]
//	sizes     N × uint64       per-node trace counts (saturating at MaxInt)
//	heights   N × uint32       per-node longest-trace lengths
//	edges     E × 8 bytes      (event uint32, child uint32), sorted by event per node
//	events    K × variable     uvarint chan length, chan bytes, value binary
//
// Every section offset is a pure function of (N, E) and the event table
// runs to the end of the image, so the layout self-describes without an
// offset directory, and Open can bounds-check the whole graph — monotone
// edgeStart, sorted in-range events, strictly backward child references,
// size/height consistency — before any traversal touches it.
//
// # Purity and binding
//
// Open validates everything and interns nothing: corrupt bytes are
// rejected without a single symbol or trie node entering the process-global
// tables, the same property the store codec's Decode has. The only
// intern-table contact is *binding* — resolving the arena's local event
// indices to the live process's dense trace.EventIDs — which happens
// lazily, once, on first traversal of an already-validated arena (it
// interns event symbols exactly as loading the module source would, and
// never touches the trie interner).
//
// Per-node edges are stored sorted by local event index, and membership
// probes binary-search that order directly. Depth-first listings must
// instead visit edges in *live* event-id order to match what a rebuilt
// interned set yields (byte-identical responses, including truncated
// ones). When binding finds the local order already monotone in live ids —
// the common case for a process that boots from the store before computing
// anything — traversal reads the edge rows as they lie; otherwise binding
// materialises one permutation over the edge table and traversal reads
// through it.
package frozen

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"cspsat/internal/closure"
	"cspsat/internal/trace"
	"cspsat/internal/value"
)

const (
	magic = "CSPFRZN1"

	headerLen  = 8 + 4*4
	edgeRowLen = 8
)

// ErrMalformed reports bytes that are not a well-formed arena image:
// truncation, bad magic, out-of-bounds indices, unsorted edges, or
// inconsistent precomputed sizes. Store-level concerns (checksums,
// versioning) belong to the caller; this is the structural layer.
var ErrMalformed = errors.New("frozen: malformed arena image")

func malformed(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrMalformed, fmt.Sprintf(format, args...))
}

// Arena is a validated frozen trie image plus the lazy live-process
// binding. The image bytes are referenced, never copied — they may live in
// an mmap'd region (see AttachCloser) — and an Arena is safe for
// concurrent use once Open returns.
type Arena struct {
	data []byte

	nNodes int
	nEdges int

	offEdgeStart int
	offSizes     int
	offHeights   int
	offEdges     int

	// events is the decoded local symbol table (index → event by name).
	// Decoding strings is part of validation; interning them is not.
	events []trace.Event

	bindOnce sync.Once
	ids      []trace.EventID           // local event index → live id
	byID     map[trace.EventID]uint32  // live id → local event index
	order    []uint32                  // edge-table permutation, nil when local order is live order

	thawOnce sync.Once
	thawed   []*closure.Set

	closer   func()
	closerMu sync.Mutex
}

// Open validates data as an arena image and returns an Arena traversing it
// in place. data is retained; callers must not mutate it afterwards. Open
// touches no intern table: malformed bytes are rejected with ErrMalformed
// before anything global could be polluted, and even a successful Open
// leaves binding to the first traversal.
func Open(data []byte) (*Arena, error) {
	if len(data) < headerLen {
		return nil, malformed("%d bytes is shorter than the %d-byte header", len(data), headerLen)
	}
	if string(data[:len(magic)]) != magic {
		return nil, malformed("bad magic")
	}
	n64 := binary.LittleEndian.Uint32(data[8:])
	e64 := binary.LittleEndian.Uint32(data[12:])
	k64 := binary.LittleEndian.Uint32(data[16:])
	if r := binary.LittleEndian.Uint32(data[20:]); r != 0 {
		return nil, malformed("reserved word %d", r)
	}
	if n64 == 0 {
		return nil, malformed("zero nodes (node 0, the empty trie, is mandatory)")
	}
	n, e, k := uint64(n64), uint64(e64), uint64(k64)

	// Section offsets, computed in uint64 so a hostile header cannot
	// overflow into a bogus in-bounds layout.
	offEdgeStart := uint64(headerLen)
	offSizes := offEdgeStart + 4*(n+1)
	offHeights := offSizes + 8*n
	offEdges := offHeights + 4*n
	offEvents := offEdges + edgeRowLen*e
	if offEvents > uint64(len(data)) {
		return nil, malformed("fixed sections need %d bytes, image has %d", offEvents, len(data))
	}
	// Every event entry occupies at least two bytes (channel length plus a
	// value kind byte), so a count exceeding the remaining bytes is corrupt
	// — checked here so allocations below are bounded by the input size.
	if k > (uint64(len(data))-offEvents+1)/2 {
		return nil, malformed("event count %d cannot fit in %d remaining bytes", k, uint64(len(data))-offEvents)
	}

	a := &Arena{
		data:         data,
		nNodes:       int(n64),
		nEdges:       int(e64),
		offEdgeStart: int(offEdgeStart),
		offSizes:     int(offSizes),
		offHeights:   int(offHeights),
		offEdges:     int(offEdges),
	}

	// Edge ranges: monotone, exhaustive, and empty for node 0.
	if a.edgeStart(0) != 0 {
		return nil, malformed("edgeStart[0] = %d", a.edgeStart(0))
	}
	if a.edgeStart(1) != 0 {
		return nil, malformed("node 0 must be the empty trie, has %d edges", a.edgeStart(1))
	}
	for i := 0; i < a.nNodes; i++ {
		if a.edgeStart(i) > a.edgeStart(i+1) {
			return nil, malformed("edgeStart not monotone at node %d", i)
		}
	}
	if a.edgeStart(a.nNodes) != uint32(a.nEdges) {
		return nil, malformed("edgeStart[%d] = %d, edge count %d", a.nNodes, a.edgeStart(a.nNodes), a.nEdges)
	}

	// Edge rows: events sorted strictly per node and in range, children
	// strictly backward (bottom-up acyclicity); precomputed sizes and
	// heights must agree with the graph they summarise, so every later
	// O(1) answer off those tables is as trustworthy as a recomputation.
	if a.sizeAt(0) != 1 {
		return nil, malformed("node 0 size %d, want 1", a.sizeAt(0))
	}
	if a.heightAt(0) != 0 {
		return nil, malformed("node 0 height %d, want 0", a.heightAt(0))
	}
	for i := 1; i < a.nNodes; i++ {
		lo, hi := int(a.edgeStart(i)), int(a.edgeStart(i+1))
		wantSize := uint64(1)
		wantHeight := uint32(0)
		prevEv := int64(-1)
		for j := lo; j < hi; j++ {
			ev, child := a.edgeAt(j)
			if int64(ev) <= prevEv {
				return nil, malformed("node %d edges not strictly sorted by event", i)
			}
			prevEv = int64(ev)
			if ev >= k64 {
				return nil, malformed("node %d: event index %d out of %d", i, ev, k64)
			}
			if child >= uint32(i) {
				return nil, malformed("node %d: forward child reference %d", i, child)
			}
			wantSize = satAddU64(wantSize, a.sizeAt(int(child)))
			if h := a.heightAt(int(child)) + 1; h > wantHeight {
				wantHeight = h
			}
		}
		if a.sizeAt(i) != wantSize {
			return nil, malformed("node %d size %d, children sum to %d", i, a.sizeAt(i), wantSize)
		}
		if a.heightAt(i) != wantHeight {
			return nil, malformed("node %d height %d, children give %d", i, a.heightAt(i), wantHeight)
		}
	}

	// Event table: exactly K entries, consuming exactly the remaining
	// bytes, every entry distinct (the binary value encoding is canonical,
	// so raw encoded bytes are an identity — duplicates would alias one
	// live id and diverge from the thawed rebuild).
	a.events = make([]trace.Event, 0, k)
	seen := make(map[string]struct{}, k)
	pos := int(offEvents)
	for i := uint64(0); i < k; i++ {
		start := pos
		l, un := binary.Uvarint(data[pos:])
		if un <= 0 {
			return nil, malformed("event %d: truncated channel length", i)
		}
		pos += un
		if l > uint64(len(data)-pos) {
			return nil, malformed("event %d: channel length %d exceeds %d remaining bytes", i, l, len(data)-pos)
		}
		ch := string(data[pos : pos+int(l)])
		pos += int(l)
		v, vn, err := value.DecodeBinary(data[pos:])
		if err != nil {
			return nil, malformed("event %d: %v", i, err)
		}
		pos += vn
		if _, dup := seen[string(data[start:pos])]; dup {
			return nil, malformed("event %d: duplicate of an earlier event", i)
		}
		seen[string(data[start:pos])] = struct{}{}
		a.events = append(a.events, trace.Event{Chan: trace.Chan(ch), Msg: v})
	}
	if pos != len(data) {
		return nil, malformed("%d trailing bytes after event table", len(data)-pos)
	}

	arenasOpened.Add(1)
	arenaBytes.Add(int64(len(data)))
	return a, nil
}

// satAddU64 mirrors the interner's saturating trace-count arithmetic
// (closure.satAdd) at the image's width.
func satAddU64(a, b uint64) uint64 {
	const max = uint64(math.MaxInt)
	if a > max-b {
		return max
	}
	return a + b
}

func (a *Arena) edgeStart(i int) uint32 {
	return binary.LittleEndian.Uint32(a.data[a.offEdgeStart+4*i:])
}

func (a *Arena) sizeAt(i int) uint64 {
	return binary.LittleEndian.Uint64(a.data[a.offSizes+8*i:])
}

func (a *Arena) heightAt(i int) uint32 {
	return binary.LittleEndian.Uint32(a.data[a.offHeights+4*i:])
}

func (a *Arena) edgeAt(j int) (event, child uint32) {
	row := a.data[a.offEdges+edgeRowLen*j:]
	return binary.LittleEndian.Uint32(row), binary.LittleEndian.Uint32(row[4:])
}

// Bytes returns the underlying image, for embedding in a store payload.
// Callers must treat it as read-only.
func (a *Arena) Bytes() []byte { return a.data }

// NumNodes returns the node count, node 0 (the empty trie) included.
func (a *Arena) NumNodes() int { return a.nNodes }

// NumEdges returns the total edge count.
func (a *Arena) NumEdges() int { return a.nEdges }

// NumEvents returns the size of the local event symbol table.
func (a *Arena) NumEvents() int { return len(a.events) }

// AttachCloser registers a release hook for the image's backing storage
// (munmap, typically). It runs at most once, when the Arena is garbage
// collected — the store layer arranges that via a finalizer — or when
// Close is called explicitly.
func (a *Arena) AttachCloser(close func()) {
	a.closerMu.Lock()
	a.closer = close
	a.closerMu.Unlock()
}

// Close releases the backing storage if a closer was attached. The Arena
// must not be used afterwards.
func (a *Arena) Close() {
	a.closerMu.Lock()
	c := a.closer
	a.closer = nil
	a.closerMu.Unlock()
	if c != nil {
		c()
	}
}

// bind resolves local event indices to live ids, once. It runs only on
// arenas that passed Open, so the events it interns are exactly the spec's
// own vocabulary — the same symbols loading the source would intern.
func (a *Arena) bind() {
	a.bindOnce.Do(func() {
		binds.Add(1)
		a.ids = make([]trace.EventID, len(a.events))
		a.byID = make(map[trace.EventID]uint32, len(a.events))
		for i, ev := range a.events {
			id := ev.ID()
			a.ids[i] = id
			a.byID[id] = uint32(i)
		}
		// Live traversal order: per node, ascending live id. If the local
		// storage order already agrees — it does whenever this process
		// first met these events through this arena — traversal reads the
		// edge rows directly and the permutation is never built.
		sorted := true
		for i := 1; i < a.nNodes && sorted; i++ {
			lo, hi := int(a.edgeStart(i)), int(a.edgeStart(i+1))
			for j := lo + 1; j < hi; j++ {
				evPrev, _ := a.edgeAt(j - 1)
				ev, _ := a.edgeAt(j)
				if a.ids[ev] < a.ids[evPrev] {
					sorted = false
					break
				}
			}
		}
		if sorted {
			return
		}
		order := make([]uint32, a.nEdges)
		for j := range order {
			order[j] = uint32(j)
		}
		for i := 1; i < a.nNodes; i++ {
			lo, hi := int(a.edgeStart(i)), int(a.edgeStart(i+1))
			seg := order[lo:hi]
			sort.Slice(seg, func(x, y int) bool {
				ex, _ := a.edgeAt(int(seg[x]))
				ey, _ := a.edgeAt(int(seg[y]))
				return a.ids[ex] < a.ids[ey]
			})
		}
		a.order = order
	})
}

// liveEdge returns the pos-th edge of the node range [lo,hi) in live
// event-id traversal order.
func (a *Arena) liveEdge(pos int) (event, child uint32) {
	if a.order != nil {
		pos = int(a.order[pos])
	}
	return a.edgeAt(pos)
}

// Thaw rebuilds every node into a canonical interned *closure.Set,
// bottom-up — the write-side escape hatch, and the exact path the v2 codec
// took on every boot. It runs once per Arena; repeated calls return the
// cached slice, and concurrent thaws of the same logical trie converge on
// the same pointers because the interner is canonical.
func (a *Arena) Thaw() []*closure.Set {
	a.thawOnce.Do(func() {
		thaws.Add(1)
		thawedNodes.Add(int64(a.nNodes))
		sets := make([]*closure.Set, a.nNodes)
		sets[0] = closure.Stop()
		edges := make([]closure.Edge, 0, 8)
		for i := 1; i < a.nNodes; i++ {
			lo, hi := int(a.edgeStart(i)), int(a.edgeStart(i+1))
			edges = edges[:0]
			for j := lo; j < hi; j++ {
				ev, child := a.edgeAt(j)
				edges = append(edges, closure.Edge{Ev: a.events[ev], Child: sets[child]})
			}
			sets[i] = closure.FromEdges(edges)
		}
		a.thawed = sets
	})
	return a.thawed
}

// View returns the closure.View over node idx. The returned view is one
// small heap object per call; hosts hold one per root, not per query.
func (a *Arena) View(idx uint32) (*NodeView, error) {
	if int(idx) >= a.nNodes {
		return nil, fmt.Errorf("frozen: node index %d out of %d", idx, a.nNodes)
	}
	return &NodeView{a: a, idx: idx}, nil
}

// NodeView is a closure.View reading one frozen node (and the subgraph
// under it) directly off the arena image. Size, MaxLen, and Contains are
// allocation-free after the arena's one-time binding.
type NodeView struct {
	a   *Arena
	idx uint32
}

var _ closure.View = (*NodeView)(nil)

// Arena returns the arena the view reads from.
func (v *NodeView) Arena() *Arena { return v.a }

// Size returns the node's trace count, clamped at MaxInt exactly like the
// interner's saturating counter.
func (v *NodeView) Size() int {
	s := v.a.sizeAt(int(v.idx))
	if s > uint64(math.MaxInt) {
		return math.MaxInt
	}
	return int(s)
}

// MaxLen returns the length of the node's longest trace.
func (v *NodeView) MaxLen() int { return int(v.a.heightAt(int(v.idx))) }

// Contains reports membership by walking the flat edge table. Like
// Set.Contains it never interns: events are resolved through the lazy
// binding (live id → local index) and unbound events cannot be members.
func (v *NodeView) Contains(t trace.T) bool {
	v.a.bind()
	n := int(v.idx)
	for _, e := range t {
		id, ok := e.LookupID()
		if !ok {
			return false
		}
		local, ok := v.a.byID[id]
		if !ok {
			return false
		}
		lo, hi := int(v.a.edgeStart(n)), int(v.a.edgeStart(n+1))
		// Binary search the node's storage order (sorted by local index).
		found := false
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			ev, child := v.a.edgeAt(mid)
			switch {
			case ev < local:
				lo = mid + 1
			case ev > local:
				hi = mid
			default:
				n = int(child)
				found = true
				lo = hi
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Traces returns every trace in canonical order; see Set.Traces for the
// materialisation caveat.
func (v *NodeView) Traces() []trace.T {
	out, _ := v.TracesN(0)
	return out
}

// TracesN mirrors Set.TracesN on the frozen graph: the same DFS in live
// event-id order (so truncated listings keep the same members a rebuilt
// set would keep), sorted canonically at the end.
func (v *NodeView) TracesN(limit int) ([]trace.T, bool) {
	v.a.bind()
	prealloc := v.Size()
	if limit > 0 && limit < prealloc {
		prealloc = limit
	}
	if prealloc < 0 || prealloc > 1<<16 {
		prealloc = 1 << 16
	}
	out := make([]trace.T, 0, prealloc)
	truncated := false
	var walk func(n int, pfx trace.T) bool
	walk = func(n int, pfx trace.T) bool {
		if limit > 0 && len(out) == limit {
			truncated = true
			return false
		}
		cp := make(trace.T, len(pfx))
		copy(cp, pfx)
		out = append(out, cp)
		for j := int(v.a.edgeStart(n)); j < int(v.a.edgeStart(n + 1)); j++ {
			ev, child := v.a.liveEdge(j)
			if !walk(int(child), append(pfx, v.a.events[ev])) {
				return false
			}
		}
		return true
	}
	walk(int(v.idx), nil)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out, truncated
}

// TracesMax returns the maximal traces in canonical order.
func (v *NodeView) TracesMax() []trace.T {
	out, _ := v.TracesMaxN(0)
	return out
}

// TracesMaxN mirrors Set.TracesMaxN on the frozen graph.
func (v *NodeView) TracesMaxN(limit int) ([]trace.T, bool) {
	v.a.bind()
	var out []trace.T
	truncated := false
	var walk func(n int, pfx trace.T) bool
	walk = func(n int, pfx trace.T) bool {
		lo, hi := int(v.a.edgeStart(n)), int(v.a.edgeStart(n+1))
		if lo == hi {
			if limit > 0 && len(out) == limit {
				truncated = true
				return false
			}
			cp := make(trace.T, len(pfx))
			copy(cp, pfx)
			out = append(out, cp)
			return true
		}
		for j := lo; j < hi; j++ {
			ev, child := v.a.liveEdge(j)
			if !walk(int(child), append(pfx, v.a.events[ev])) {
				return false
			}
		}
		return true
	}
	walk(int(v.idx), nil)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out, truncated
}

// WalkDFS mirrors Set.WalkDFS on the frozen graph, visiting edges in live
// event-id order.
func (v *NodeView) WalkDFS(visit func(path trace.T) bool, push, pop func(ev trace.Event)) bool {
	v.a.bind()
	var path trace.T
	var walk func(n int) bool
	walk = func(n int) bool {
		if !visit(path) {
			return false
		}
		for j := int(v.a.edgeStart(n)); j < int(v.a.edgeStart(n + 1)); j++ {
			evIdx, child := v.a.liveEdge(j)
			ev := v.a.events[evIdx]
			if push != nil {
				push(ev)
			}
			path = append(path, ev)
			ok := walk(int(child))
			path = path[:len(path)-1]
			if pop != nil {
				pop(ev)
			}
			if !ok {
				return false
			}
		}
		return true
	}
	return walk(int(v.idx))
}

// Thaw rebuilds the whole arena through the interner (once, cached) and
// returns this node's canonical set.
func (v *NodeView) Thaw() *closure.Set { return v.a.Thaw()[v.idx] }

// --- process-wide counters (surfaced through /metrics) ---

var (
	arenasOpened atomic.Int64
	arenaBytes   atomic.Int64
	binds        atomic.Int64
	thaws        atomic.Int64
	thawedNodes  atomic.Int64
	viewHits     atomic.Int64
)

// CountHit records one read query answered from a frozen view without a
// thaw; hosts call it where they route reads (pkg/csp's TraceResult.View).
func CountHit() { viewHits.Add(1) }

// Stats is a snapshot of the process-wide frozen-tier counters.
type Stats struct {
	// ArenasOpened counts successful Opens; ArenaBytes sums their image
	// sizes (the frozen tier's resident footprint — file-backed pages when
	// mmap'd, heap bytes otherwise).
	ArenasOpened int64 `json:"arenas_opened"`
	ArenaBytes   int64 `json:"arena_bytes"`
	// Binds counts lazy event-id bindings (≤ ArenasOpened; an arena whose
	// views are never traversed never binds).
	Binds int64 `json:"binds"`
	// Hits counts read queries served from frozen views without a thaw.
	Hits int64 `json:"hits"`
	// Thaws counts arenas rebuilt through the interner on a write path;
	// ThawedNodes sums the nodes those rebuilds re-interned.
	Thaws       int64 `json:"thaws"`
	ThawedNodes int64 `json:"thawed_nodes"`
}

// Snapshot returns the current counter values.
func Snapshot() Stats {
	return Stats{
		ArenasOpened: arenasOpened.Load(),
		ArenaBytes:   arenaBytes.Load(),
		Binds:        binds.Load(),
		Hits:         viewHits.Load(),
		Thaws:        thaws.Load(),
		ThawedNodes:  thawedNodes.Load(),
	}
}
