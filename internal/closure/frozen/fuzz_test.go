package frozen

import (
	"math/rand"
	"testing"

	"cspsat/internal/trace"
)

// FuzzOpen feeds arbitrary bytes to the arena validator. The contract on
// untrusted input: Open may only return an error — no panics, no index
// escapes, and not one symbol interned into the process-global tables.
// Inputs that *do* validate get fully traversed, which must also not
// panic (traversal is entitled to trust Open's checks; the fuzzer's job
// is to find an image that passes them and still breaks).
func FuzzOpen(f *testing.F) {
	// Seed with a genuine image and light mutations of it so the fuzzer
	// starts at the format's doorstep rather than in magic-check land.
	rng := rand.New(rand.NewSource(3))
	s := randomSet(rng, testEvents(), 6, 4)
	a, _, err := Freeze(s)
	if err != nil {
		f.Fatalf("Freeze: %v", err)
	}
	img := a.Bytes()
	f.Add(append([]byte{}, img...))
	f.Add(append([]byte{}, img[:len(img)/2]...))
	for _, i := range []int{9, 13, 17, 25, len(img) - 3} {
		mut := append([]byte{}, img...)
		mut[i] ^= 0x40
		f.Add(mut)
	}
	f.Add([]byte("CSPFRZN1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		evBefore, chBefore := trace.NumEvents(), trace.NumChans()
		arena, err := Open(data)
		if err != nil {
			if arena != nil {
				t.Fatalf("Open returned both an arena and %v", err)
			}
			if trace.NumEvents() != evBefore || trace.NumChans() != chBefore {
				t.Fatalf("failed Open interned symbols")
			}
			return
		}
		// A validated arena must survive full traversal of every node.
		for i := 0; i < arena.NumNodes(); i++ {
			v, err := arena.View(uint32(i))
			if err != nil {
				t.Fatalf("View(%d): %v", i, err)
			}
			traces := v.Traces()
			if len(traces) == 0 {
				t.Fatalf("node %d: prefix-closed set without the empty trace", i)
			}
			for _, tr := range traces {
				if !v.Contains(tr) {
					t.Fatalf("node %d: listed trace %v not a member", i, tr)
				}
			}
			if got := v.Size(); v.MaxLen() == 0 && got != 1 {
				t.Fatalf("node %d: height 0 but size %d", i, got)
			}
		}
		// And thaw to canonical sets that agree with the frozen listings.
		sets := arena.Thaw()
		for i, set := range sets {
			v, _ := arena.View(uint32(i))
			if set.Size() != v.Size() || set.MaxLen() != v.MaxLen() {
				t.Fatalf("node %d: thawed (%d,%d) vs frozen (%d,%d)",
					i, set.Size(), set.MaxLen(), v.Size(), v.MaxLen())
			}
		}
	})
}
