package frozen

import (
	"math/rand"
	"reflect"
	"testing"

	"cspsat/internal/closure"
	"cspsat/internal/trace"
	"cspsat/internal/value"
)

func testEvents() []trace.Event {
	return []trace.Event{
		{Chan: "a", Msg: value.Int(0)},
		{Chan: "a", Msg: value.Int(1)},
		{Chan: "b", Msg: value.Sym("ACK")},
		{Chan: "c[2]", Msg: value.Bool(true)},
		{Chan: "d", Msg: value.SeqOf([]value.V{value.Int(3), value.Sym("x")})},
	}
}

func randomSet(rng *rand.Rand, events []trace.Event, traces, maxLen int) *closure.Set {
	s := closure.Stop()
	for i := 0; i < traces; i++ {
		t := closure.Stop()
		for j := rng.Intn(maxLen + 1); j > 0; j-- {
			t = closure.Prefix(events[rng.Intn(len(events))], t)
		}
		s = closure.Union(s, t)
	}
	return s
}

// mustFreeze freezes s and returns its view.
func mustFreeze(t *testing.T, s *closure.Set) *NodeView {
	t.Helper()
	a, idx, err := Freeze(s)
	if err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	v, err := a.View(idx)
	if err != nil {
		t.Fatalf("View: %v", err)
	}
	return v
}

// assertViewMatches demands the frozen view and the live set answer every
// View method identically — the package's core contract.
func assertViewMatches(t *testing.T, v *NodeView, s *closure.Set) {
	t.Helper()
	if v.Size() != s.Size() {
		t.Fatalf("Size: frozen %d, live %d", v.Size(), s.Size())
	}
	if v.MaxLen() != s.MaxLen() {
		t.Fatalf("MaxLen: frozen %d, live %d", v.MaxLen(), s.MaxLen())
	}
	if got, want := v.Traces(), s.Traces(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Traces: frozen %v, live %v", got, want)
	}
	if got, want := v.TracesMax(), s.TracesMax(); !reflect.DeepEqual(got, want) {
		t.Fatalf("TracesMax: frozen %v, live %v", got, want)
	}
	for _, limit := range []int{0, 1, 2, 3, s.Size() - 1, s.Size(), s.Size() + 5} {
		g, gt := v.TracesN(limit)
		w, wt := s.TracesN(limit)
		if gt != wt || !reflect.DeepEqual(g, w) {
			t.Fatalf("TracesN(%d): frozen (%v,%v), live (%v,%v)", limit, g, gt, w, wt)
		}
		g, gt = v.TracesMaxN(limit)
		w, wt = s.TracesMaxN(limit)
		if gt != wt || !reflect.DeepEqual(g, w) {
			t.Fatalf("TracesMaxN(%d): frozen (%v,%v), live (%v,%v)", limit, g, gt, w, wt)
		}
	}
	for _, tr := range s.Traces() {
		if !v.Contains(tr) {
			t.Fatalf("Contains(%v): frozen says no, live set holds it", tr)
		}
	}
	// WalkDFS event-for-event: same visits, same push/pop sequence.
	type step struct {
		kind string
		ev   trace.Event
		path string
	}
	record := func(view closure.View) []step {
		var log []step
		view.WalkDFS(
			func(p trace.T) bool { log = append(log, step{kind: "visit", path: p.String()}); return true },
			func(e trace.Event) { log = append(log, step{kind: "push", ev: e}) },
			func(e trace.Event) { log = append(log, step{kind: "pop", ev: e}) },
		)
		return log
	}
	if got, want := record(v), record(s); !reflect.DeepEqual(got, want) {
		t.Fatalf("WalkDFS: frozen %v, live %v", got, want)
	}
}

// TestFrozenViewDifferential pins frozen traversal byte-identical to the
// live interned set, and thaw pointer-canonical (Same), over random sets.
func TestFrozenViewDifferential(t *testing.T) {
	events := testEvents()
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 150; i++ {
		s := randomSet(rng, events, rng.Intn(10), 6)
		v := mustFreeze(t, s)
		assertViewMatches(t, v, s)
		if !v.Thaw().Same(s) {
			t.Fatalf("Thaw is not pointer-canonical with the original set")
		}
		// Non-member probes: mutate members.
		for _, tr := range s.Traces() {
			probe := append(append(trace.T{}, tr...), trace.Event{Chan: "zz", Msg: value.Int(99)})
			if v.Contains(probe) != s.Contains(probe) {
				t.Fatalf("Contains(%v) disagrees", probe)
			}
		}
		if v.Contains(trace.T{{Chan: "never-interned-chan", Msg: value.Int(7)}}) {
			t.Fatalf("Contains accepted an event that labels no edge")
		}
	}
}

// TestBuilderSharesSubtrees: two roots sharing structure share frozen
// nodes, and both views stay faithful.
func TestBuilderSharesSubtrees(t *testing.T) {
	ev := testEvents()
	base := closure.Union(closure.Prefix(ev[0], closure.Stop()), closure.Prefix(ev[1], closure.Stop()))
	p := closure.Prefix(ev[2], base)
	q := closure.Prefix(ev[3], base)

	b := NewBuilder()
	pi := b.Add(p)
	qi := b.Add(q)
	if pi == qi {
		t.Fatalf("distinct roots froze to the same node")
	}
	a, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	// p's nodes: stop, two prefix children... base, p. q adds only itself.
	if a.NumNodes() >= p.Size()+q.Size() {
		t.Fatalf("no sharing: %d nodes for overlapping roots", a.NumNodes())
	}
	pv, _ := a.View(pi)
	qv, _ := a.View(qi)
	assertViewMatches(t, pv, p)
	assertViewMatches(t, qv, q)
	if !pv.Thaw().Same(p) || !qv.Thaw().Same(q) {
		t.Fatalf("shared-arena thaw not canonical")
	}
}

// TestOpenPureOnCorrupt: every truncation and every single bit flip of a
// valid image must either decode to an equally-valid arena (flips in dead
// bytes don't exist here — sizes, offsets, and events are all load-bearing)
// or error out, never panic, and never intern a symbol.
func TestOpenPureOnCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := randomSet(rng, testEvents(), 8, 5)
	a, _, err := Freeze(s)
	if err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	img := a.Bytes()

	check := func(data []byte) {
		t.Helper()
		evBefore, chBefore := trace.NumEvents(), trace.NumChans()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Open panicked: %v", r)
				}
			}()
			Open(data)
		}()
		if trace.NumEvents() != evBefore || trace.NumChans() != chBefore {
			t.Fatalf("Open interned symbols (events %d→%d, chans %d→%d)",
				evBefore, trace.NumEvents(), chBefore, trace.NumChans())
		}
	}

	for cut := 0; cut <= len(img); cut += 3 {
		check(img[:cut])
	}
	for i := 0; i < len(img); i++ {
		for bit := 0; bit < 8; bit += 3 {
			mut := append([]byte{}, img...)
			mut[i] ^= 1 << bit
			check(mut)
		}
	}
}

// TestOpenRejects exercises specific structural violations.
func TestOpenRejects(t *testing.T) {
	if _, err := Open(nil); err == nil {
		t.Fatalf("Open(nil) succeeded")
	}
	if _, err := Open([]byte("CSPFRZN1")); err == nil {
		t.Fatalf("header-only image succeeded")
	}
	if _, err := Open([]byte("NOTMAGIC\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00")); err == nil {
		t.Fatalf("bad magic succeeded")
	}
}

// TestFrozenReadsAllocationFree guards the hot path the issue targets:
// after the one-time bind, Size/MaxLen/Contains off a frozen node are
// 0 allocs/op. Scalar-message events only: sequence messages pay a string
// key on LookupID, on the live set exactly as here (the PR4 warm-path
// contract this extends).
func TestFrozenReadsAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := randomSet(rng, testEvents()[:4], 12, 6)
	v := mustFreeze(t, s)
	member := s.TracesMax()[0]
	v.Contains(member) // force bind outside the measured window

	for _, g := range []struct {
		name string
		fn   func()
	}{
		{"Size", func() { v.Size() }},
		{"MaxLen", func() { v.MaxLen() }},
		{"Contains", func() { v.Contains(member) }},
	} {
		if got := testing.AllocsPerRun(200, g.fn); got > 0 {
			t.Errorf("%s allocates %v/op on the frozen path", g.name, got)
		}
	}
}

// TestLivePermutationOrder forces the case where the arena's local event
// order disagrees with live event-id order: bind must build the
// permutation and listings must still match a rebuilt set exactly.
func TestLivePermutationOrder(t *testing.T) {
	ev := testEvents()
	s := closure.Union(
		closure.Prefix(ev[3], closure.Prefix(ev[0], closure.Stop())),
		closure.Union(closure.Prefix(ev[1], closure.Stop()), closure.Prefix(ev[4], closure.Stop())),
	)
	// Build an arena whose event table is ordered by first DFS encounter
	// from a different root shape, then reverse the live-id relationship by
	// hand: re-encode the image with the event table permuted.
	a, idx, err := Freeze(s)
	if err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	v, _ := a.View(idx)
	assertViewMatches(t, v, s)

	// Directly exercise a permuted arena: rebuild via builder adding events
	// in reverse first-seen order by freezing a mirror structure first.
	b := NewBuilder()
	mirror := closure.Union(
		closure.Prefix(ev[4], closure.Stop()),
		closure.Union(closure.Prefix(ev[1], closure.Stop()), closure.Prefix(ev[3], closure.Stop())),
	)
	b.Add(mirror)
	root := b.Add(s)
	a2, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	v2, _ := a2.View(root)
	assertViewMatches(t, v2, s)
	if !v2.Thaw().Same(s) {
		t.Fatalf("permuted-order thaw not canonical")
	}
}

// TestViewInterface: *NodeView satisfies closure.View and the empty-trie
// node behaves like Stop.
func TestViewInterface(t *testing.T) {
	a, _, err := Freeze(closure.Stop())
	if err != nil {
		t.Fatalf("Freeze(Stop): %v", err)
	}
	v, err := a.View(0)
	if err != nil {
		t.Fatalf("View(0): %v", err)
	}
	var view closure.View = v
	if view.Size() != 1 || view.MaxLen() != 0 {
		t.Fatalf("empty trie: Size %d MaxLen %d", view.Size(), view.MaxLen())
	}
	if !view.Contains(nil) {
		t.Fatalf("empty trie does not contain the empty trace")
	}
	if !view.Thaw().Same(closure.Stop()) {
		t.Fatalf("empty trie thaw is not Stop")
	}
	if _, err := a.View(99); err == nil {
		t.Fatalf("out-of-range View succeeded")
	}
}
