package frozen

import (
	"encoding/binary"
	"fmt"
	"sort"

	"cspsat/internal/closure"
	"cspsat/internal/trace"
	"cspsat/internal/value"
)

// Builder flattens canonical interned sets into one arena image. Roots
// added to the same builder share the node graph and event table (two sets
// sharing subtrees share their frozen nodes too), exactly like the tries
// shared pointers while live. Freezing happens once, at export time; the
// assembled image is then the cheap thing to load forever after.
type Builder struct {
	nodeIdx map[*closure.Set]uint32
	evIdx   map[trace.EventID]uint32
	events  []trace.Event

	// Per node: its edge list (sorted by local event index), trace count,
	// and height. Node 0 (the empty trie) is pre-seeded.
	nodeEdges [][]builderEdge
	sizes     []uint64
	heights   []uint32
}

type builderEdge struct {
	event uint32
	child uint32
}

// NewBuilder starts an empty arena holding only node 0, the empty trie.
func NewBuilder() *Builder {
	return &Builder{
		nodeIdx:   map[*closure.Set]uint32{closure.Stop(): 0},
		evIdx:     map[trace.EventID]uint32{},
		nodeEdges: [][]builderEdge{nil},
		sizes:     []uint64{1},
		heights:   []uint32{0},
	}
}

// Add flattens s into the arena (children first, sharing already-added
// nodes) and returns its node index.
func (b *Builder) Add(s *closure.Set) uint32 {
	if idx, ok := b.nodeIdx[s]; ok {
		return idx
	}
	s.Export(func(n *closure.Set, edges []closure.Edge) {
		if _, ok := b.nodeIdx[n]; ok {
			return
		}
		rows := make([]builderEdge, len(edges))
		for i, e := range edges {
			rows[i] = builderEdge{event: b.eventIndex(e.Ev), child: b.nodeIdx[e.Child]}
		}
		// The trie stores edges sorted by live event id; the image stores
		// them sorted by local event index so membership probes can binary
		// search without binding.
		sort.Slice(rows, func(i, j int) bool { return rows[i].event < rows[j].event })
		b.nodeIdx[n] = uint32(len(b.nodeEdges))
		b.nodeEdges = append(b.nodeEdges, rows)
		b.sizes = append(b.sizes, uint64(n.Size()))
		b.heights = append(b.heights, uint32(n.MaxLen()))
	})
	return b.nodeIdx[s]
}

func (b *Builder) eventIndex(ev trace.Event) uint32 {
	id := ev.ID()
	if idx, ok := b.evIdx[id]; ok {
		return idx
	}
	idx := uint32(len(b.events))
	b.events = append(b.events, ev)
	b.evIdx[id] = idx
	return idx
}

// NumNodes returns the node count so far, node 0 included.
func (b *Builder) NumNodes() int { return len(b.nodeEdges) }

// Finish assembles the image and re-opens it through the same validator
// every untrusted load goes through — a freshly frozen arena is proven
// loadable before it is ever written. The builder must not be used after.
func (b *Builder) Finish() (*Arena, error) {
	nEdges := 0
	for _, rows := range b.nodeEdges {
		nEdges += len(rows)
	}
	n := len(b.nodeEdges)

	size := headerLen + 4*(n+1) + 8*n + 4*n + edgeRowLen*nEdges
	data := make([]byte, 0, size+16*len(b.events))
	data = append(data, magic...)
	data = binary.LittleEndian.AppendUint32(data, uint32(n))
	data = binary.LittleEndian.AppendUint32(data, uint32(nEdges))
	data = binary.LittleEndian.AppendUint32(data, uint32(len(b.events)))
	data = binary.LittleEndian.AppendUint32(data, 0)

	start := uint32(0)
	for _, rows := range b.nodeEdges {
		data = binary.LittleEndian.AppendUint32(data, start)
		start += uint32(len(rows))
	}
	data = binary.LittleEndian.AppendUint32(data, start)
	for _, s := range b.sizes {
		data = binary.LittleEndian.AppendUint64(data, s)
	}
	for _, h := range b.heights {
		data = binary.LittleEndian.AppendUint32(data, h)
	}
	for _, rows := range b.nodeEdges {
		for _, e := range rows {
			data = binary.LittleEndian.AppendUint32(data, e.event)
			data = binary.LittleEndian.AppendUint32(data, e.child)
		}
	}
	for _, ev := range b.events {
		data = binary.AppendUvarint(data, uint64(len(ev.Chan)))
		data = append(data, ev.Chan...)
		data = value.AppendBinary(data, ev.Msg)
	}

	a, err := Open(data)
	if err != nil {
		return nil, fmt.Errorf("frozen: self-check of freshly built arena failed: %w", err)
	}
	return a, nil
}

// Freeze is the one-set convenience: a single root frozen into its own
// arena, returning the arena and the root's node index.
func Freeze(s *closure.Set) (*Arena, uint32, error) {
	b := NewBuilder()
	idx := b.Add(s)
	a, err := b.Finish()
	if err != nil {
		return nil, 0, err
	}
	return a, idx, nil
}
