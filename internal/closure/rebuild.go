package closure

// Export/FromEdges: the serialization seam of the trie layer. A Set's
// graph structure can be walked out as plain (event, child) edge lists and
// rebuilt later — in another process — through the ordinary interning
// path, so loaded nodes are pointer-canonical with freshly built ones.
// Event identity crosses the process boundary by *name* (trace.Event
// carries the channel string and message value); the dense EventIDs baked
// into edges are process-local and are re-derived on rebuild by
// re-interning each event through the live symbol tables (internal/trace
// sym.go). internal/store's codec is the only intended caller.

import "cspsat/internal/trace"

// Edge is one outgoing edge of a trie node in its portable form: the event
// by name and the canonical child. The dense event id is deliberately
// absent — it is process-local.
type Edge struct {
	Ev    trace.Event
	Child *Set
}

// Export enumerates the distinct nodes reachable from p in bottom-up
// (children-first) order, each exactly once, ending with p's own node.
// visit receives the node's *Set facade and its outgoing edges (empty for
// the leaf {<>}); every Child passed to visit was itself visited earlier,
// so a serializer can refer to children by their visit index. The edges
// slice is only valid for the duration of the call.
func (p *Set) Export(visit func(n *Set, edges []Edge)) {
	seen := map[*node]bool{}
	var edges []Edge
	var walk func(n *node)
	walk = func(n *node) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, e := range n.edges {
			walk(e.child)
		}
		edges = edges[:0]
		for _, e := range n.edges {
			edges = append(edges, Edge{Ev: e.ev, Child: e.child.wrap()})
		}
		visit(n.wrap(), edges)
	}
	walk(p.root)
}

// FromEdges returns the canonical node with the given outgoing edges,
// interning each event to its dense id first. It is the inverse of one
// Export visit: rebuilding a trie bottom-up through FromEdges yields a Set
// that is Same (pointer-identical) as an equal freshly built one, memo
// entries and all. Duplicate events are merged by union, and edges may
// arrive in any order.
func FromEdges(edges []Edge) *Set {
	if len(edges) == 0 {
		return Stop()
	}
	out := make([]edge, len(edges))
	for i, e := range edges {
		out[i] = edge{id: e.Ev.ID(), ev: e.Ev, child: e.Child.root}
	}
	return intern(sortEdges(out)).wrap()
}
