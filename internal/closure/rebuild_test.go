package closure

import (
	"math/rand"
	"testing"

	"cspsat/internal/trace"
	"cspsat/internal/value"
)

// exportFlatten serializes a set the way internal/store's codec does:
// nodes in visit order, edges referring to children by visit index.
type flatNode struct {
	events   []trace.Event
	children []int
}

func exportFlatten(t *testing.T, s *Set) (nodes []flatNode, root int) {
	t.Helper()
	idx := map[*Set]int{}
	s.Export(func(n *Set, edges []Edge) {
		fn := flatNode{}
		for _, e := range edges {
			ci, ok := idx[e.Child]
			if !ok {
				t.Fatalf("Export visited a parent before its child %p", e.Child)
			}
			fn.events = append(fn.events, e.Ev)
			fn.children = append(fn.children, ci)
		}
		idx[n] = len(nodes)
		nodes = append(nodes, fn)
	})
	return nodes, len(nodes) - 1
}

func rebuildFlat(nodes []flatNode, root int) *Set {
	sets := make([]*Set, len(nodes))
	for i, fn := range nodes {
		edges := make([]Edge, len(fn.events))
		for j := range fn.events {
			edges[j] = Edge{Ev: fn.events[j], Child: sets[fn.children[j]]}
		}
		sets[i] = FromEdges(edges)
	}
	return sets[root]
}

func randomSet(rng *rand.Rand, events []trace.Event, traces, maxLen int) *Set {
	s := Stop()
	for i := 0; i < traces; i++ {
		t := Stop()
		for j := rng.Intn(maxLen + 1); j > 0; j-- {
			t = Prefix(events[rng.Intn(len(events))], t)
		}
		s = Union(s, t)
	}
	return s
}

// TestExportRebuildCanonical round-trips random sets through the flatten /
// rebuild cycle and demands pointer identity, not just equality: rebuilt
// nodes must re-intern onto the canonical originals.
func TestExportRebuildCanonical(t *testing.T) {
	events := []trace.Event{
		{Chan: "a", Msg: value.Int(0)},
		{Chan: "a", Msg: value.Int(1)},
		{Chan: "b", Msg: value.Sym("ACK")},
		{Chan: "c[2]", Msg: value.Bool(true)},
	}
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 200; i++ {
		s := randomSet(rng, events, rng.Intn(8), 6)
		nodes, root := exportFlatten(t, s)
		got := rebuildFlat(nodes, root)
		if !got.Same(s) {
			t.Fatalf("rebuild of %v is not pointer-canonical (got %v)", s, got)
		}
	}
}

// TestExportVisitsEachNodeOnce checks the dedup contract on a set with
// heavy sharing (every node reachable along many paths).
func TestExportVisitsEachNodeOnce(t *testing.T) {
	a := trace.Event{Chan: "a", Msg: value.Int(0)}
	b := trace.Event{Chan: "b", Msg: value.Int(0)}
	s := Stop()
	for i := 0; i < 6; i++ {
		s = Union(Prefix(a, s), Prefix(b, s))
	}
	seen := map[*Set]int{}
	visits := 0
	s.Export(func(n *Set, _ []Edge) {
		seen[n]++
		visits++
	})
	for n, c := range seen {
		if c != 1 {
			t.Fatalf("node %p visited %d times", n, c)
		}
	}
	if visits != len(seen) {
		t.Fatalf("visits %d != distinct nodes %d", visits, len(seen))
	}
}

// TestFromEdgesMergesDuplicates: duplicate events union their children,
// matching the operator layer's sortEdges contract.
func TestFromEdgesMergesDuplicates(t *testing.T) {
	a := trace.Event{Chan: "a", Msg: value.Int(0)}
	b := trace.Event{Chan: "b", Msg: value.Int(1)}
	x := Prefix(b, Stop())
	y := Prefix(a, Stop())
	got := FromEdges([]Edge{{Ev: a, Child: x}, {Ev: a, Child: y}})
	want := Union(Prefix(a, x), Prefix(a, y))
	if !got.Same(want) {
		t.Fatalf("duplicate-edge merge: got %v want %v", got, want)
	}
	if FromEdges(nil) != Stop() {
		t.Fatalf("FromEdges(nil) is not the canonical Stop")
	}
}
