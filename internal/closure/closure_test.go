package closure_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"cspsat/internal/closure"
	"cspsat/internal/trace"
	"cspsat/internal/value"
)

func ev(c string, m int64) trace.Event {
	return trace.Event{Chan: trace.Chan(c), Msg: value.Int(m)}
}

// qset generates random prefix closures by inserting random traces.
type qset struct{ S *closure.Set }

// Generate implements quick.Generator.
func (qset) Generate(r *rand.Rand, _ int) reflect.Value {
	b := closure.NewBuilder()
	chans := []string{"a", "b", "h"}
	for i, n := 0, r.Intn(6); i < n; i++ {
		t := make(trace.T, r.Intn(5))
		for j := range t {
			t[j] = ev(chans[r.Intn(len(chans))], int64(r.Intn(3)))
		}
		b.Add(t)
	}
	return reflect.ValueOf(qset{S: b.Set()})
}

// isPrefixClosed checks the defining property directly on the trace list.
func isPrefixClosed(s *closure.Set) bool {
	for _, t := range s.Traces() {
		for _, p := range t.Prefixes() {
			if !s.Contains(p) {
				return false
			}
		}
	}
	return true
}

func TestStopIsUnitClosure(t *testing.T) {
	s := closure.Stop()
	if s.Size() != 1 || !s.Contains(nil) || s.MaxLen() != 0 {
		t.Fatalf("Stop: size=%d maxlen=%d", s.Size(), s.MaxLen())
	}
}

// Theorem (§3.1): (a → P) is a prefix closure; <> ∈ it; a⌢s ∈ it iff s ∈ P.
func TestPrefixTheorem(t *testing.T) {
	if err := quick.Check(func(q qset) bool {
		a := ev("a", 0)
		p := closure.Prefix(a, q.S)
		if !p.Contains(nil) || !isPrefixClosed(p) {
			return false
		}
		for _, s := range q.S.Traces() {
			if !p.Contains(append(trace.T{a}, s...)) {
				return false
			}
		}
		return p.Size() == q.S.Size()+1
	}, nil); err != nil {
		t.Error(err)
	}
}

// Theorem (§3.1): prefix closures are closed under union and intersection,
// and {<>} ⊆ P for every closure P.
func TestUnionIntersectClosure(t *testing.T) {
	if err := quick.Check(func(q1, q2 qset) bool {
		u := closure.Union(q1.S, q2.S)
		i := closure.Intersect(q1.S, q2.S)
		if !isPrefixClosed(u) || !isPrefixClosed(i) {
			return false
		}
		if !closure.Stop().SubsetOf(i) {
			return false
		}
		// u contains exactly the traces of either operand.
		for _, s := range q1.S.Traces() {
			if !u.Contains(s) {
				return false
			}
		}
		for _, s := range q2.S.Traces() {
			if !u.Contains(s) {
				return false
			}
		}
		for _, s := range u.Traces() {
			if !q1.S.Contains(s) && !q2.S.Contains(s) {
				return false
			}
		}
		// i contains exactly the common traces.
		for _, s := range i.Traces() {
			if !q1.S.Contains(s) || !q2.S.Contains(s) {
				return false
			}
		}
		return i.SubsetOf(u)
	}, nil); err != nil {
		t.Error(err)
	}
}

// Theorem (§3.1): (a → ∪ₓ Pₓ) = ∪ₓ (a → Pₓ)  — distributivity of prefixing.
func TestPrefixDistributesThroughUnion(t *testing.T) {
	if err := quick.Check(func(q1, q2 qset) bool {
		a := ev("a", 1)
		lhs := closure.Prefix(a, closure.Union(q1.S, q2.S))
		rhs := closure.Union(closure.Prefix(a, q1.S), closure.Prefix(a, q2.S))
		return lhs.Equal(rhs)
	}, nil); err != nil {
		t.Error(err)
	}
}

// Theorem (§3.1): P\C is a prefix closure and distributes through unions.
func TestHideClosureAndDistributivity(t *testing.T) {
	hidden := trace.NewSet("h")
	if err := quick.Check(func(q1, q2 qset) bool {
		h1 := closure.Hide(q1.S, hidden)
		if !isPrefixClosed(h1) {
			return false
		}
		// Pointwise: s\C ∈ P\C for every s ∈ P, and nothing else.
		for _, s := range q1.S.Traces() {
			if !h1.Contains(s.Hide(hidden)) {
				return false
			}
		}
		lhs := closure.Hide(closure.Union(q1.S, q2.S), hidden)
		rhs := closure.Union(closure.Hide(q1.S, hidden), closure.Hide(q2.S, hidden))
		return lhs.Equal(rhs)
	}, nil); err != nil {
		t.Error(err)
	}
}

// Theorem (§3.1): P ⇑ C is a prefix closure, contains P, and distributes
// through unions (at a fixed interleaving budget).
func TestIgnoreClosureAndDistributivity(t *testing.T) {
	chatter := []trace.Event{ev("z", 0), ev("z", 1)}
	const budget = 4
	if err := quick.Check(func(q1, q2 qset) bool {
		ig := closure.Ignore(q1.S.TruncateTo(budget), chatter, budget)
		if !isPrefixClosed(ig) {
			return false
		}
		for _, s := range q1.S.TruncateTo(budget).Traces() {
			if !ig.Contains(s) {
				return false
			}
		}
		lhs := closure.Ignore(closure.Union(q1.S, q2.S), chatter, budget)
		rhs := closure.Union(closure.Ignore(q1.S, chatter, budget), closure.Ignore(q2.S, chatter, budget))
		return lhs.Equal(rhs)
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// The paper defines P X‖Y Q = (P ⇑ (Y−X)) ∩ (Q ⇑ (X−Y)). The product-walk
// implementation must agree with the literal definition.
func TestParallelMatchesIgnoreIntersection(t *testing.T) {
	x := trace.NewSet("a", "h")
	y := trace.NewSet("b", "h")
	// Chatter alphabets: the events the other side may perform alone.
	chatterB := []trace.Event{ev("b", 0), ev("b", 1), ev("b", 2)}
	chatterA := []trace.Event{ev("a", 0), ev("a", 1), ev("a", 2)}
	if err := quick.Check(func(qp, qq qset) bool {
		// Restrict operands to their own alphabets.
		p := projectSet(qp.S, x)
		q := projectSet(qq.S, y)
		budget := p.MaxLen() + q.MaxLen()
		lhs := closure.Parallel(p, q, x, y)
		rhs := closure.Intersect(
			closure.Ignore(p, chatterB, budget),
			closure.Ignore(q, chatterA, budget),
		)
		return lhs.Equal(rhs)
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// projectSet keeps only traces entirely over channels in x (pointwise
// projection would not preserve membership semantics for this test's use).
func projectSet(s *closure.Set, x trace.Set) *closure.Set {
	b := closure.NewBuilder()
	for _, t := range s.Traces() {
		ok := true
		for _, e := range t {
			if !x.Contains(e.Chan) {
				ok = false
				break
			}
		}
		if ok {
			b.Add(t)
		}
	}
	return b.Set()
}

// Parallel with disjoint alphabets is free interleaving; with identical
// alphabets it is intersection.
func TestParallelExtremes(t *testing.T) {
	x := trace.NewSet("a")
	if err := quick.Check(func(q1, q2 qset) bool {
		p := projectSet(q1.S, x)
		q := projectSet(q2.S, x)
		same := closure.Parallel(p, q, x, x)
		return same.Equal(closure.Intersect(p, q))
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
	// Disjoint alphabets: every interleaving of a trace of P with a trace
	// of Q appears.
	p := closure.Prefix(ev("a", 1), closure.Stop())
	q := closure.Prefix(ev("b", 2), closure.Stop())
	par := closure.Parallel(p, q, trace.NewSet("a"), trace.NewSet("b"))
	for _, want := range []trace.T{
		{},
		{ev("a", 1)},
		{ev("b", 2)},
		{ev("a", 1), ev("b", 2)},
		{ev("b", 2), ev("a", 1)},
	} {
		if !par.Contains(want) {
			t.Errorf("interleaving %s missing", want)
		}
	}
	if par.Size() != 5 {
		t.Errorf("size = %d, want 5", par.Size())
	}
}

// Shared channels synchronise: an event offered by only one side is refused.
func TestParallelSynchronisation(t *testing.T) {
	x := trace.NewSet("w")
	p := closure.Prefix(ev("w", 1), closure.Stop())
	q := closure.Union(
		closure.Prefix(ev("w", 1), closure.Stop()),
		closure.Prefix(ev("w", 2), closure.Stop()),
	)
	par := closure.Parallel(p, q, x, x)
	if !par.Contains(trace.T{ev("w", 1)}) {
		t.Error("matching event refused")
	}
	if par.Contains(trace.T{ev("w", 2)}) {
		t.Error("unmatched event allowed")
	}
}

func TestSubsetAndFirstNotIn(t *testing.T) {
	small := closure.Prefix(ev("a", 1), closure.Stop())
	big := closure.Union(small, closure.Prefix(ev("b", 2), closure.Stop()))
	if !small.SubsetOf(big) || big.SubsetOf(small) {
		t.Error("SubsetOf wrong")
	}
	w := big.FirstNotIn(small)
	if w == nil || !w.Equal(trace.T{ev("b", 2)}) {
		t.Errorf("FirstNotIn = %v", w)
	}
	if small.FirstNotIn(big) != nil {
		t.Error("witness for a subset")
	}
}

func TestTruncateTo(t *testing.T) {
	if err := quick.Check(func(q qset) bool {
		tr3 := q.S.TruncateTo(3)
		if tr3.MaxLen() > 3 || !isPrefixClosed(tr3) || !tr3.SubsetOf(q.S) {
			return false
		}
		// Truncation at or above the height is identity.
		return q.S.TruncateTo(q.S.MaxLen()).Equal(q.S)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestWalkDFSMaintainsHistoryAndAborts(t *testing.T) {
	s := closure.FromTraces([]trace.T{
		{ev("a", 1), ev("b", 2)},
		{ev("a", 1), ev("a", 3)},
	})
	depth := 0
	count := 0
	completed := s.WalkDFS(func(path trace.T) bool {
		if len(path) != depth {
			t.Fatalf("path length %d, push/pop depth %d", len(path), depth)
		}
		count++
		return true
	}, func(trace.Event) { depth++ }, func(trace.Event) { depth-- })
	if !completed || count != s.Size() {
		t.Fatalf("visited %d of %d, completed=%v", count, s.Size(), completed)
	}
	// Abort stops the whole walk.
	count = 0
	completed = s.WalkDFS(func(path trace.T) bool {
		count++
		return count < 2
	}, nil, nil)
	if completed || count != 2 {
		t.Fatalf("abort: visited %d, completed=%v", count, completed)
	}
}

func TestFixComputesRecursiveClosure(t *testing.T) {
	// p = a!1 -> p: the chain a₀={<>}, a₁={<>,<a.1>}, … must reach all
	// traces aⁿ up to the window and report the iteration count.
	f := func(p *closure.Set) *closure.Set {
		return closure.Prefix(ev("a", 1), p)
	}
	fix, iters := closure.Fix(f, 5)
	if fix.Size() != 6 || fix.MaxLen() != 5 {
		t.Fatalf("fix: size=%d maxlen=%d", fix.Size(), fix.MaxLen())
	}
	if iters < 5 || iters > 7 {
		t.Errorf("iterations = %d, want ≈ depth", iters)
	}
	// The chain is increasing: each truncation is a subset of the result.
	if !closure.Stop().SubsetOf(fix) {
		t.Error("a₀ not below fixpoint")
	}
}

func TestChannelsAndString(t *testing.T) {
	s := closure.FromTraces([]trace.T{{ev("a", 1), ev("b", 2)}})
	cs := s.Channels()
	if cs.Len() != 2 || !cs.Contains("a") || !cs.Contains("b") {
		t.Errorf("Channels = %s", cs)
	}
	if got := s.String(); got == "" {
		t.Error("empty String")
	}
}

func TestBuilderAddsPrefixes(t *testing.T) {
	b := closure.NewBuilder()
	b.Add(trace.T{ev("a", 1), ev("b", 2), ev("c", 3)})
	s := b.Set()
	if s.Size() != 4 {
		t.Fatalf("size = %d, want 4 (trace + prefixes)", s.Size())
	}
	if !isPrefixClosed(s) {
		t.Fatal("builder output not prefix-closed")
	}
}
