// Package closure implements the paper's §3.1 denotational domain: prefix
// closures, i.e. prefix-closed sets of traces, together with the semantic
// operators the paper defines on them —
//
//	(a → P)        prefixing
//	P ∪ Q          union (the meaning of the alternative P | Q)
//	P \ C          hiding (the meaning of chan C; P)
//	P ⇑ C          "ignore": interleaving with arbitrary chatter on C
//	P X‖Y Q        alphabetized parallel = (P ⇑ (Y−X)) ∩ (Q ⇑ (X−Y))
//
// A mathematical prefix closure is usually infinite; this package represents
// the finite approximations a₀ ⊆ a₁ ⊆ … that the paper itself uses to give
// meaning to recursion (§3.3). A Set holds finitely many traces and is
// prefix-closed by construction: the representation is a trie whose every
// node is a member, so closure under prefixes can never be violated.
//
// The trie is hash-consed (see intern.go): structurally equal subtrees are
// pointer-identical, every operator is memoized on the interned node
// pointers of its operands, and Size/MaxLen are precomputed per node. The
// paper's approximation chains recompute the same subterms on every pass,
// so the memo tables turn the chain's later passes into cache lookups and
// let Fix detect stabilisation with a pointer comparison.
package closure

import (
	"sort"
	"strings"

	"cspsat/internal/trace"
)

// Set is a finite prefix-closed set of traces. The zero value is not usable;
// construct with Stop, Prefix, Union, etc. Sets are immutable once built and
// may be shared freely, including across goroutines.
type Set struct {
	root *node
}

func eventKey(e trace.Event) string { return string(e.Chan) + "\x00" + e.Msg.Key() }

// Stop returns {<>}, the denotation of STOP: the process that never
// communicates.
func Stop() *Set { return &Set{root: emptyNode} }

// Prefix returns (a → P) = {<>} ∪ { a⌢s | s ∈ P }, the paper's prefixing
// operator. The result shares P's nodes.
func Prefix(a trace.Event, p *Set) *Set {
	return &Set{root: intern([]edge{{key: eventKey(a), ev: a, child: p.root}})}
}

// Union returns P ∪ Q, the denotation of the alternative (P | Q). Subtrees
// present in only one operand are shared, not copied, and the merge is
// memoized on the operand pair.
func Union(p, q *Set) *Set {
	return &Set{root: unionNodes(p.root, q.root)}
}

// UnionAll returns the union of all the given sets; with no arguments it
// returns Stop() (the unit {<>}, which is a subset of every prefix closure).
func UnionAll(sets ...*Set) *Set {
	out := Stop()
	for _, s := range sets {
		out = Union(out, s)
	}
	return out
}

func unionNodes(a, b *node) *node {
	if a == b || b == emptyNode {
		return a
	}
	if a == emptyNode {
		return b
	}
	// Union is commutative; canonicalise the key so P∪Q and Q∪P share one
	// memo entry. The arbitrary-but-fixed pointer order is fine as a
	// canonical form because the entry only lives as long as the pointers.
	k := nodePair{a, b}
	if nodeLess(b, a) {
		k = nodePair{b, a}
	}
	if v, ok := unionMemo.get(k); ok {
		return v
	}
	out := make([]edge, 0, len(a.edges)+len(b.edges))
	i, j := 0, 0
	for i < len(a.edges) && j < len(b.edges) {
		ae, be := a.edges[i], b.edges[j]
		switch {
		case ae.key < be.key:
			out = append(out, ae)
			i++
		case be.key < ae.key:
			out = append(out, be)
			j++
		default:
			out = append(out, edge{key: ae.key, ev: ae.ev, child: unionNodes(ae.child, be.child)})
			i, j = i+1, j+1
		}
	}
	out = append(out, a.edges[i:]...)
	out = append(out, b.edges[j:]...)
	n := intern(out)
	unionMemo.put(k, n)
	return n
}

// nodeLess gives a stable total order on nodes (their creation index),
// used only to canonicalise symmetric memo keys.
func nodeLess(a, b *node) bool { return a.id < b.id }

// Hide returns P \ C: every trace of P with its communications on channels
// of C omitted (the paper's s\C lifted pointwise). The result is again
// prefix-closed. Note the approximation caveat: if P is only complete up to
// depth d, P\C is only guaranteed complete up to the depth d minus the
// hidden chatter — callers compensate by exploring P deeper (see sem).
func Hide(p *Set, c trace.Set) *Set {
	return &Set{root: hideNode(p.root, c, c.Key())}
}

func hideNode(n *node, c trace.Set, ck string) *node {
	if len(n.edges) == 0 {
		return n
	}
	mk := nodeStrKey{n: n, s: ck}
	if v, ok := hideMemo.get(mk); ok {
		return v
	}
	var out []edge
	var collapsed []*node
	for _, e := range n.edges {
		h := hideNode(e.child, c, ck)
		if c.Contains(e.ev.Chan) {
			// Hidden event: its (hidden) subtree collapses into this node.
			collapsed = append(collapsed, h)
		} else {
			out = append(out, edge{key: e.key, ev: e.ev, child: h})
		}
	}
	res := intern(out) // out is already sorted: it is a subsequence of n.edges
	for _, h := range collapsed {
		res = unionNodes(res, h)
	}
	hideMemo.put(mk, res)
	return res
}

// Ignore returns the paper's P ⇑ C: the set of traces formed by interleaving
// a trace of P with an arbitrary sequence of communications on the channels
// of C, which P "ignores". Since arbitrary chatter is infinite, the chatter
// alphabet is given explicitly (the events that may occur on C) and the
// result is truncated to traces of length ≤ maxLen. P must not communicate
// on any channel of the chatter alphabet.
func Ignore(p *Set, chatter []trace.Event, maxLen int) *Set {
	ch := make([]edge, len(chatter))
	var kb strings.Builder
	for i, ce := range chatter {
		ch[i] = edge{key: eventKey(ce), ev: ce}
		kb.WriteString(ch[i].key)
		kb.WriteByte('\x01')
	}
	sort.Slice(ch, func(i, j int) bool { return ch[i].key < ch[j].key })
	return &Set{root: ignoreNode(p.root, ch, kb.String(), maxLen)}
}

// ignoreNode computes one state of the interleaving: from trie node src with
// budget steps left, either advance src along one of its own edges or emit a
// chatter event and stay at src. chatter is sorted by key; ckey identifies
// the chatter alphabet in the memo table.
func ignoreNode(src *node, chatter []edge, ckey string, budget int) *node {
	if budget <= 0 {
		return emptyNode
	}
	if len(src.edges) == 0 && len(chatter) == 0 {
		return emptyNode
	}
	mk := nodeStrIntKey{n: src, s: ckey, i: budget}
	if v, ok := ignoreMemo.get(mk); ok {
		return v
	}
	out := make([]edge, 0, len(src.edges)+len(chatter))
	for _, e := range src.edges {
		out = append(out, edge{key: e.key, ev: e.ev, child: ignoreNode(e.child, chatter, ckey, budget-1)})
	}
	for _, ce := range chatter {
		out = append(out, edge{key: ce.key, ev: ce.ev, child: ignoreNode(src, chatter, ckey, budget-1)})
	}
	// The two groups are each sorted but may interleave (and, if the caller
	// violates the disjointness precondition, collide — handled by union).
	n := intern(sortEdges(out))
	ignoreMemo.put(mk, n)
	return n
}

// Parallel returns P X‖Y Q, the paper's alphabetized parallel composition:
// the traces s over X ∪ Y such that s↾X ∈ P and s↾Y ∈ Q. Communication on a
// channel of X ∩ Y requires simultaneous participation of both processes;
// channels private to one side interleave freely. This is computed directly
// as a product walk over the two tries, which is equivalent to the paper's
// (P ⇑ (Y−X)) ∩ (Q ⇑ (X−Y)) definition but avoids materialising the
// interleavings (see TestParallelMatchesIgnoreIntersection for the
// equivalence check). The walk is memoized on the pair of interned nodes,
// so the same (P-state, Q-state) product is computed once ever per
// alphabet pair, within and across Parallel calls.
func Parallel(p, q *Set, x, y trace.Set) *Set {
	xy := x.Key() + "\x02" + y.Key()
	return &Set{root: parallelNodes(p.root, q.root, x, y, xy)}
}

func parallelNodes(a, b *node, x, y trace.Set, xy string) *node {
	if len(a.edges) == 0 && len(b.edges) == 0 {
		return emptyNode
	}
	mk := parKey{a: a, b: b, xy: xy}
	if v, ok := parallelMemo.get(mk); ok {
		return v
	}
	var out []edge
	for _, e := range a.edges {
		c := e.ev.Chan
		// When P communicates outside its own alphabet X the paper's
		// composition is not defined; treat the event as private to P (X is
		// extended implicitly), exactly as the pre-interning walk did.
		if y.Contains(c) {
			// Shared channel: requires Q to offer the same event.
			be, ok := b.get(e.key)
			if !ok {
				continue
			}
			out = append(out, edge{key: e.key, ev: e.ev, child: parallelNodes(e.child, be.child, x, y, xy)})
		} else {
			// Private to P.
			out = append(out, edge{key: e.key, ev: e.ev, child: parallelNodes(e.child, b, x, y, xy)})
		}
	}
	for _, e := range b.edges {
		if x.Contains(e.ev.Chan) {
			continue // shared (or P-side) events handled above
		}
		out = append(out, edge{key: e.key, ev: e.ev, child: parallelNodes(a, e.child, x, y, xy)})
	}
	n := intern(sortEdges(out))
	parallelMemo.put(mk, n)
	return n
}

// Intersect returns P ∩ Q. Prefix closures are closed under intersection
// (§3.1), and the paper's parallel operator is defined via ∩.
func Intersect(p, q *Set) *Set {
	return &Set{root: intersectNodes(p.root, q.root)}
}

func intersectNodes(a, b *node) *node {
	if a == b {
		return a
	}
	if a == emptyNode || b == emptyNode {
		return emptyNode
	}
	k := nodePair{a, b}
	if nodeLess(b, a) {
		k = nodePair{b, a}
	}
	if v, ok := intersectMemo.get(k); ok {
		return v
	}
	var out []edge
	i, j := 0, 0
	for i < len(a.edges) && j < len(b.edges) {
		ae, be := a.edges[i], b.edges[j]
		switch {
		case ae.key < be.key:
			i++
		case be.key < ae.key:
			j++
		default:
			out = append(out, edge{key: ae.key, ev: ae.ev, child: intersectNodes(ae.child, be.child)})
			i, j = i+1, j+1
		}
	}
	n := intern(out)
	intersectMemo.put(k, n)
	return n
}

// Contains reports whether t ∈ P.
func (p *Set) Contains(t trace.T) bool {
	n := p.root
	for _, e := range t {
		ed, ok := n.get(eventKey(e))
		if !ok {
			return false
		}
		n = ed.child
	}
	return true
}

// Size returns the number of traces in the set (the empty trace counts).
// Precomputed at interning time, so this is O(1).
func (p *Set) Size() int { return p.root.size }

// MaxLen returns the length of the longest trace in the set. Precomputed at
// interning time, so this is O(1).
func (p *Set) MaxLen() int { return p.root.height }

// Traces returns every trace in the set in canonical (lexicographic) order.
// Sharing makes the member count exponential in the trie's height, so for
// sets that may be deep, materialise with TracesN instead: Traces on a set
// with more members than memory holds cannot succeed.
func (p *Set) Traces() []trace.T {
	out, _ := p.TracesN(0)
	return out
}

// TracesN returns at most limit traces of the set, sorted lexicographically
// among themselves, and whether the listing was truncated. limit <= 0 means
// unlimited. A truncated listing is a prefix-closed subset (the walk visits
// every prefix of a trace before the trace), but which members survive
// depends on internal edge order, not on trace order.
func (p *Set) TracesN(limit int) ([]trace.T, bool) {
	prealloc := p.root.size
	if limit > 0 && limit < prealloc {
		prealloc = limit
	}
	if prealloc < 0 || prealloc > 1<<16 {
		prealloc = 1 << 16
	}
	out := make([]trace.T, 0, prealloc)
	truncated := false
	var walk func(n *node, pfx trace.T) bool
	walk = func(n *node, pfx trace.T) bool {
		if limit > 0 && len(out) == limit {
			truncated = true
			return false
		}
		cp := make(trace.T, len(pfx))
		copy(cp, pfx)
		out = append(out, cp)
		for _, e := range n.edges {
			if !walk(e.child, append(pfx, e.ev)) {
				return false
			}
		}
		return true
	}
	walk(p.root, nil)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out, truncated
}

// WalkDFS traverses the set depth-first in unspecified order. visit is
// called once per member trace (including <>), with the current path, which
// is only valid for the duration of the call; returning false aborts the
// whole walk. push and pop, when non-nil, bracket each descent along an
// event, letting callers maintain incremental state (e.g. channel
// histories) without re-deriving it per trace. WalkDFS reports whether the
// traversal ran to completion.
func (p *Set) WalkDFS(visit func(path trace.T) bool, push, pop func(ev trace.Event)) bool {
	var path trace.T
	var walk func(n *node) bool
	walk = func(n *node) bool {
		if !visit(path) {
			return false
		}
		for _, e := range n.edges {
			if push != nil {
				push(e.ev)
			}
			path = append(path, e.ev)
			ok := walk(e.child)
			path = path[:len(path)-1]
			if pop != nil {
				pop(e.ev)
			}
			if !ok {
				return false
			}
		}
		return true
	}
	return walk(p.root)
}

// TracesMax returns the maximal traces (those with no extension in the set),
// useful for compact display.
func (p *Set) TracesMax() []trace.T {
	out, _ := p.TracesMaxN(0)
	return out
}

// TracesMaxN is TracesN restricted to maximal traces (those that are not a
// proper prefix of another member): at most limit of them, sorted among
// themselves, plus a truncation flag. limit <= 0 means unlimited.
func (p *Set) TracesMaxN(limit int) ([]trace.T, bool) {
	var out []trace.T
	truncated := false
	var walk func(n *node, pfx trace.T) bool
	walk = func(n *node, pfx trace.T) bool {
		if len(n.edges) == 0 {
			if limit > 0 && len(out) == limit {
				truncated = true
				return false
			}
			cp := make(trace.T, len(pfx))
			copy(cp, pfx)
			out = append(out, cp)
			return true
		}
		for _, e := range n.edges {
			if !walk(e.child, append(pfx, e.ev)) {
				return false
			}
		}
		return true
	}
	walk(p.root, nil)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out, truncated
}

// Same reports whether two sets are represented by the same interned node —
// a pointer comparison. Same(q) implies Equal(q); the converse holds as
// long as neither representation predates a cache eviction or reset, which
// is why Equal keeps a structural fallback.
func (p *Set) Same(q *Set) bool { return p.root == q.root }

// Equal reports whether two sets contain exactly the same traces. With
// hash-consing this is usually the O(1) pointer comparison; the structural
// walk only runs for sets whose nodes straddle a cache eviction, and even
// then the cached hash, size, and height reject unequal subtrees early.
func (p *Set) Equal(q *Set) bool { return nodesEqual(p.root, q.root) }

func nodesEqual(a, b *node) bool {
	if a == b {
		return true
	}
	if a.hash != b.hash || a.size != b.size || a.height != b.height || len(a.edges) != len(b.edges) {
		return false
	}
	for i := range a.edges {
		if a.edges[i].key != b.edges[i].key || !nodesEqual(a.edges[i].child, b.edges[i].child) {
			return false
		}
	}
	return true
}

// SubsetOf reports P ⊆ Q, i.e. trace refinement of P by Q's traces. Shared
// interned subtrees compare in O(1), and verdicts are memoized, so repeated
// refinement checks over a growing approximation chain stay cheap.
func (p *Set) SubsetOf(q *Set) bool { return nodeSubset(p.root, q.root) }

func nodeSubset(a, b *node) bool {
	if a == b || a == emptyNode {
		return true
	}
	if a.size > b.size || a.height > b.height {
		return false
	}
	k := nodePair{a, b}
	if v, ok := subsetMemo.get(k); ok {
		return v
	}
	res := true
	for _, e := range a.edges {
		be, ok := b.get(e.key)
		if !ok || !nodeSubset(e.child, be.child) {
			res = false
			break
		}
	}
	subsetMemo.put(k, res)
	return res
}

// FirstNotIn returns a witness trace in P but not in Q, or nil if P ⊆ Q.
func (p *Set) FirstNotIn(q *Set) trace.T {
	return firstNotIn(p.root, q.root, nil)
}

func firstNotIn(a, b *node, pfx trace.T) trace.T {
	if a == b {
		return nil
	}
	// Edges are interned in key order, so the walk is deterministic and the
	// witness reproducible without sorting.
	for _, e := range a.edges {
		be, ok := b.get(e.key)
		ext := append(pfx, e.ev)
		if !ok {
			cp := make(trace.T, len(ext))
			copy(cp, ext)
			return cp
		}
		if w := firstNotIn(e.child, be.child, ext); w != nil {
			return w
		}
	}
	return nil
}

// TruncateTo returns the subset of traces with length ≤ depth (the paper's
// finite approximation restricted to a window). Subtrees that already fit
// within the window are shared, not copied, and the cached per-node height
// makes the fit test O(1).
func (p *Set) TruncateTo(depth int) *Set {
	if p.root.height <= depth {
		return p
	}
	return &Set{root: truncated(p.root, depth)}
}

func truncated(src *node, budget int) *node {
	if src.height <= budget {
		return src
	}
	if budget <= 0 {
		return emptyNode
	}
	mk := nodeIntKey{n: src, i: budget}
	if v, ok := truncMemo.get(mk); ok {
		return v
	}
	out := make([]edge, len(src.edges))
	for i, e := range src.edges {
		out[i] = edge{key: e.key, ev: e.ev, child: truncated(e.child, budget-1)}
	}
	n := intern(out)
	truncMemo.put(mk, n)
	return n
}

// Channels returns the set of channels appearing anywhere in the set. The
// walk visits each shared subtree once.
func (p *Set) Channels() trace.Set {
	s := trace.NewSet()
	seen := map[*node]bool{}
	var walk func(n *node)
	walk = func(n *node) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, e := range n.edges {
			s.Add(e.ev.Chan)
			walk(e.child)
		}
	}
	walk(p.root)
	return s
}

// String renders the maximal traces, one per line, capped for readability.
func (p *Set) String() string {
	ms := p.TracesMax()
	const maxShown = 16
	var sb strings.Builder
	sb.WriteString("{")
	for i, t := range ms {
		if i == maxShown {
			sb.WriteString(" …")
			break
		}
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(" ")
		sb.WriteString(t.String())
	}
	sb.WriteString(" }")
	return sb.String()
}

// Fix computes the paper's §3.3 approximation chain for a recursive
// definition p ≜ P: a₀ = STOP, a(i+1) = F(aᵢ), where F is the semantic
// functional of the defining expression. Iteration proceeds until the
// approximation restricted to traces of length ≤ depth stops growing, which
// is exactly ⋃ᵢ aᵢ truncated at the window — the set of all traces of the
// recursive process up to that length. It returns the fixed point and the
// number of iterations taken.
//
// Because Union over interned tries returns the canonical node — and in
// particular returns cur's own node the moment F adds nothing new — the
// stabilisation test is the pointer comparison Same on the happy path, with
// Equal as the structural fallback across cache evictions.
func Fix(f func(*Set) *Set, depth int) (*Set, int) {
	cur := Stop()
	for i := 1; ; i++ {
		next := f(cur).TruncateTo(depth)
		next = Union(next, cur) // the chain is increasing; keep it so under truncation
		if next.Same(cur) || next.Equal(cur) {
			return cur, i
		}
		cur = next
	}
}
