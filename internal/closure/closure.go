// Package closure implements the paper's §3.1 denotational domain: prefix
// closures, i.e. prefix-closed sets of traces, together with the semantic
// operators the paper defines on them —
//
//	(a → P)        prefixing
//	P ∪ Q          union (the meaning of the alternative P | Q)
//	P \ C          hiding (the meaning of chan C; P)
//	P ⇑ C          "ignore": interleaving with arbitrary chatter on C
//	P X‖Y Q        alphabetized parallel = (P ⇑ (Y−X)) ∩ (Q ⇑ (X−Y))
//
// A mathematical prefix closure is usually infinite; this package represents
// the finite approximations a₀ ⊆ a₁ ⊆ … that the paper itself uses to give
// meaning to recursion (§3.3). A Set holds finitely many traces and is
// prefix-closed by construction: the representation is a trie whose every
// node is a member, so closure under prefixes can never be violated.
//
// The trie is hash-consed (see intern.go): structurally equal subtrees are
// pointer-identical, every operator is memoized on the interned node
// pointers of its operands, and Size/MaxLen are precomputed per node. The
// paper's approximation chains recompute the same subterms on every pass,
// so the memo tables turn the chain's later passes into cache lookups and
// let Fix detect stabilisation with a pointer comparison.
package closure

import (
	"cmp"
	"slices"
	"sort"
	"strings"
	"sync"

	"cspsat/internal/trace"
)

// Set is a finite prefix-closed set of traces. The zero value is not usable;
// construct with Stop, Prefix, Union, etc. Sets are immutable once built and
// may be shared freely, including across goroutines.
type Set struct {
	root *node
}

// Stop returns {<>}, the denotation of STOP: the process that never
// communicates.
func Stop() *Set { return emptyNode.wrap() }

// Prefix returns (a → P) = {<>} ∪ { a⌢s | s ∈ P }, the paper's prefixing
// operator. The result shares P's nodes. The event is interned to its
// dense id (see internal/trace sym.go); on warm symbols a hit in the
// intern table allocates nothing at all — no string key, no edge list,
// and the *Set wrapper comes from the node's cache.
func Prefix(a trace.Event, p *Set) *Set {
	return internPrefix(a.ID(), a, p.root).wrap()
}

// Union returns P ∪ Q, the denotation of the alternative (P | Q). Subtrees
// present in only one operand are shared, not copied, and the merge is
// memoized on the operand pair.
func Union(p, q *Set) *Set {
	return unionNodes(p.root, q.root).wrap()
}

// UnionAll returns the union of all the given sets; with no arguments it
// returns Stop() (the unit {<>}, which is a subset of every prefix
// closure). Rather than left-folding Union — which interns k−1 transient
// intermediate nodes and burns k−1 memo entries per distinct operand list
// — it k-way-merges all operands' edge lists at once under a single memo
// entry keyed on the (sorted, deduplicated) operand node ids.
func UnionAll(sets ...*Set) *Set {
	switch len(sets) {
	case 0:
		return Stop()
	case 1:
		return sets[0]
	}
	ops := make([]*node, 0, len(sets))
	for _, s := range sets {
		if s.root != emptyNode {
			ops = append(ops, s.root)
		}
	}
	return unionAllNodes(dedupNodes(ops)).wrap()
}

// dedupNodes sorts operands by creation id and drops duplicates in place,
// canonicalising the operand list (union is commutative and idempotent).
func dedupNodes(ns []*node) []*node {
	slices.SortFunc(ns, func(a, b *node) int { return cmp.Compare(a.id, b.id) })
	out := ns[:0]
	for _, n := range ns {
		if len(out) > 0 && out[len(out)-1] == n {
			continue
		}
		out = append(out, n)
	}
	return out
}

func packNodeIDs(ns []*node) string {
	b := make([]byte, 0, 8*len(ns))
	for _, n := range ns {
		id := n.id
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24),
			byte(id>>32), byte(id>>40), byte(id>>48), byte(id>>56))
	}
	return string(b)
}

// unionAllNodes merges k operand nodes (sorted by id, deduplicated, none
// empty unless k ≤ 1) by advancing a cursor per operand over the sorted
// edge lists: each distinct event id contributes one output edge whose
// child is the recursive union of every operand child reached by that
// event. One memo entry covers the whole k-ary merge.
func unionAllNodes(ns []*node) *node {
	switch len(ns) {
	case 0:
		return emptyNode
	case 1:
		return ns[0]
	case 2:
		return unionNodes(ns[0], ns[1])
	}
	k := nodeListKey{ids: packNodeIDs(ns)}
	if v, ok := unionAllMemo.get(k); ok {
		return v
	}
	idx := make([]int, len(ns))
	var out []edge
	var children []*node
	for {
		const noEvent = ^trace.EventID(0)
		min := noEvent
		for oi, n := range ns {
			if idx[oi] < len(n.edges) {
				if id := n.edges[idx[oi]].id; id < min {
					min = id
				}
			}
		}
		if min == noEvent {
			break
		}
		children = children[:0]
		var ev trace.Event
		for oi, n := range ns {
			if idx[oi] < len(n.edges) && n.edges[idx[oi]].id == min {
				children = append(children, n.edges[idx[oi]].child)
				ev = n.edges[idx[oi]].ev
				idx[oi]++
			}
		}
		out = append(out, edge{id: min, ev: ev, child: unionAllNodes(dedupNodes(children))})
	}
	n := intern(out)
	unionAllMemo.put(k, n)
	return n
}

func unionNodes(a, b *node) *node {
	if a == b || b == emptyNode {
		return a
	}
	if a == emptyNode {
		return b
	}
	// Union is commutative; canonicalise the key so P∪Q and Q∪P share one
	// memo entry. The arbitrary-but-fixed pointer order is fine as a
	// canonical form because the entry only lives as long as the pointers.
	k := nodePair{a, b}
	if nodeLess(b, a) {
		k = nodePair{b, a}
	}
	if v, ok := unionMemo.get(k); ok {
		return v
	}
	out := make([]edge, 0, len(a.edges)+len(b.edges))
	i, j := 0, 0
	for i < len(a.edges) && j < len(b.edges) {
		ae, be := a.edges[i], b.edges[j]
		switch {
		case ae.id < be.id:
			out = append(out, ae)
			i++
		case be.id < ae.id:
			out = append(out, be)
			j++
		default:
			out = append(out, edge{id: ae.id, ev: ae.ev, child: unionNodes(ae.child, be.child)})
			i, j = i+1, j+1
		}
	}
	out = append(out, a.edges[i:]...)
	out = append(out, b.edges[j:]...)
	n := intern(out)
	unionMemo.put(k, n)
	return n
}

// nodeLess gives a stable total order on nodes (their creation index),
// used only to canonicalise symmetric memo keys.
func nodeLess(a, b *node) bool { return a.id < b.id }

// Hide returns P \ C: every trace of P with its communications on channels
// of C omitted (the paper's s\C lifted pointwise). The result is again
// prefix-closed. Note the approximation caveat: if P is only complete up to
// depth d, P\C is only guaranteed complete up to the depth d minus the
// hidden chatter — callers compensate by exploring P deeper (see sem).
func Hide(p *Set, c trace.Set) *Set {
	return hideNode(p.root, c, c.ID()).wrap()
}

func hideNode(n *node, c trace.Set, cid trace.ChanSetID) *node {
	if len(n.edges) == 0 {
		return n
	}
	mk := hideKey{n: n, c: cid}
	if v, ok := hideMemo.get(mk); ok {
		return v
	}
	var out []edge
	var collapsed []*node
	for _, e := range n.edges {
		h := hideNode(e.child, c, cid)
		if c.ContainsID(trace.EventChanID(e.id)) {
			// Hidden event: its (hidden) subtree collapses into this node.
			collapsed = append(collapsed, h)
		} else {
			out = append(out, edge{id: e.id, ev: e.ev, child: h})
		}
	}
	res := intern(out) // out is already sorted: it is a subsequence of n.edges
	for _, h := range collapsed {
		res = unionNodes(res, h)
	}
	hideMemo.put(mk, res)
	return res
}

// Ignore returns the paper's P ⇑ C: the set of traces formed by interleaving
// a trace of P with an arbitrary sequence of communications on the channels
// of C, which P "ignores". Since arbitrary chatter is infinite, the chatter
// alphabet is given explicitly (the events that may occur on C) and the
// result is truncated to traces of length ≤ maxLen. P must not communicate
// on any channel of the chatter alphabet.
func Ignore(p *Set, chatter []trace.Event, maxLen int) *Set {
	ch := make([]edge, len(chatter))
	for i, ce := range chatter {
		ch[i] = edge{id: ce.ID(), ev: ce}
	}
	slices.SortFunc(ch, func(a, b edge) int { return cmp.Compare(a.id, b.id) })
	ids := make([]trace.EventID, len(ch))
	for i, e := range ch {
		ids[i] = e.id
	}
	alpha := trace.InternEventIDs(ids)
	return ignoreNode(p.root, ch, alpha, maxLen).wrap()
}

// ignoreNode computes one state of the interleaving: from trie node src with
// budget steps left, either advance src along one of its own edges or emit a
// chatter event and stay at src. chatter is sorted by event id; alpha is the
// chatter alphabet's interned identity in the memo table.
func ignoreNode(src *node, chatter []edge, alpha trace.EventSetID, budget int) *node {
	if budget <= 0 {
		return emptyNode
	}
	if len(src.edges) == 0 && len(chatter) == 0 {
		return emptyNode
	}
	mk := ignoreKey{n: src, alpha: alpha, i: int32(budget)}
	if v, ok := ignoreMemo.get(mk); ok {
		return v
	}
	out := make([]edge, 0, len(src.edges)+len(chatter))
	for _, e := range src.edges {
		out = append(out, edge{id: e.id, ev: e.ev, child: ignoreNode(e.child, chatter, alpha, budget-1)})
	}
	for _, ce := range chatter {
		out = append(out, edge{id: ce.id, ev: ce.ev, child: ignoreNode(src, chatter, alpha, budget-1)})
	}
	// The two groups are each sorted but may interleave (and, if the caller
	// violates the disjointness precondition, collide — handled by union).
	n := intern(sortEdges(out))
	ignoreMemo.put(mk, n)
	return n
}

// Parallel returns P X‖Y Q, the paper's alphabetized parallel composition:
// the traces s over X ∪ Y such that s↾X ∈ P and s↾Y ∈ Q. Communication on a
// channel of X ∩ Y requires simultaneous participation of both processes;
// channels private to one side interleave freely. This is computed directly
// as a product walk over the two tries, which is equivalent to the paper's
// (P ⇑ (Y−X)) ∩ (Q ⇑ (X−Y)) definition but avoids materialising the
// interleavings (see TestParallelMatchesIgnoreIntersection for the
// equivalence check). The walk is memoized on the pair of interned nodes,
// so the same (P-state, Q-state) product is computed once ever per
// alphabet pair, within and across Parallel calls.
func Parallel(p, q *Set, x, y trace.Set) *Set {
	return parallelNodes(p.root, q.root, x, y, x.ID(), y.ID()).wrap()
}

func parallelNodes(a, b *node, x, y trace.Set, xid, yid trace.ChanSetID) *node {
	if len(a.edges) == 0 && len(b.edges) == 0 {
		return emptyNode
	}
	mk := parKey{a: a, b: b, x: xid, y: yid}
	if v, ok := parallelMemo.get(mk); ok {
		return v
	}
	var out []edge
	for _, e := range a.edges {
		// When P communicates outside its own alphabet X the paper's
		// composition is not defined; treat the event as private to P (X is
		// extended implicitly), exactly as the pre-interning walk did.
		if y.ContainsID(trace.EventChanID(e.id)) {
			// Shared channel: requires Q to offer the same event.
			be, ok := b.get(e.id)
			if !ok {
				continue
			}
			out = append(out, edge{id: e.id, ev: e.ev, child: parallelNodes(e.child, be.child, x, y, xid, yid)})
		} else {
			// Private to P.
			out = append(out, edge{id: e.id, ev: e.ev, child: parallelNodes(e.child, b, x, y, xid, yid)})
		}
	}
	for _, e := range b.edges {
		if x.ContainsID(trace.EventChanID(e.id)) {
			continue // shared (or P-side) events handled above
		}
		out = append(out, edge{id: e.id, ev: e.ev, child: parallelNodes(a, e.child, x, y, xid, yid)})
	}
	n := intern(sortEdges(out))
	parallelMemo.put(mk, n)
	return n
}

// ParallelTo returns Parallel(p, q, x, y).TruncateTo(budget) without ever
// materialising the truncated-away depths. A product trace consumes a step
// of P, of Q, or (on a shared channel) of both, so product height reaches
// a.height+b.height — for equal-depth operands, twice what a depth-bounded
// caller keeps. Threading the budget through the walk prunes that deep half
// before it allocates, which is what the denoter's fixpoint chain needs: its
// every approximation is budget-truncated anyway. Trace sets are prefix
// closed, so cutting the walk at length `budget` yields exactly the
// truncation of the full product, and the result interns to the very same
// canonical node.
func ParallelTo(p, q *Set, x, y trace.Set, budget int) *Set {
	return parallelBounded(p.root, q.root, x, y, x.ID(), y.ID(), budget).wrap()
}

func parallelBounded(a, b *node, x, y trace.Set, xid, yid trace.ChanSetID, budget int) *node {
	if len(a.edges) == 0 && len(b.edges) == 0 {
		return emptyNode
	}
	if budget <= 0 {
		return emptyNode
	}
	if a.height+b.height <= budget {
		// The bound cannot bind anywhere below here; the unbounded memo
		// shares this subproduct across all sufficient budgets.
		return parallelNodes(a, b, x, y, xid, yid)
	}
	// The shallow fringe — bounded products at budgets 1 and 2 — holds most
	// of the walk's distinct (a, b, budget) triples but each is a near-flat
	// edge merge, cheaper to recompute than to table: a memo entry there
	// costs more map allocation than the walk it saves, and the fixpoint
	// chain's GC bill tracks exactly that allocation.
	memoize := budget > 2
	var mk parBoundKey
	if memoize {
		mk = parBoundKey{a: a, b: b, x: xid, y: yid, i: int32(budget)}
		if v, ok := parBoundMemo.get(mk); ok {
			return v
		}
	}
	// The walk's edge lists are mostly intern hits (the product revisits the
	// same subproducts through many interleavings), so they are built in a
	// pooled scratch and interned copy-on-miss: the allocation rate of the
	// fixpoint chain — hence its GC bill on GOMAXPROCS > cores — tracks the
	// miss count, not the walk size.
	sp := edgeScratch.Get().(*[]edge)
	out := (*sp)[:0]
	for _, e := range a.edges {
		if y.ContainsID(trace.EventChanID(e.id)) {
			be, ok := b.get(e.id)
			if !ok {
				continue
			}
			out = append(out, edge{id: e.id, ev: e.ev, child: parallelBounded(e.child, be.child, x, y, xid, yid, budget-1)})
		} else {
			out = append(out, edge{id: e.id, ev: e.ev, child: parallelBounded(e.child, b, x, y, xid, yid, budget-1)})
		}
	}
	for _, e := range b.edges {
		if x.ContainsID(trace.EventChanID(e.id)) {
			continue
		}
		out = append(out, edge{id: e.id, ev: e.ev, child: parallelBounded(a, e.child, x, y, xid, yid, budget-1)})
	}
	n := internCopy(sortEdges(out))
	*sp = out[:0]
	edgeScratch.Put(sp)
	if memoize {
		parBoundMemo.put(mk, n)
	}
	return n
}

// edgeScratch pools edge buffers for the bounded product walk. Each frame
// checks one out for the duration of its own edge list only (child frames
// draw their own), so buffers never alias across the recursion.
var edgeScratch = sync.Pool{New: func() any { s := make([]edge, 0, 16); return &s }}

// Intersect returns P ∩ Q. Prefix closures are closed under intersection
// (§3.1), and the paper's parallel operator is defined via ∩.
func Intersect(p, q *Set) *Set {
	return intersectNodes(p.root, q.root).wrap()
}

func intersectNodes(a, b *node) *node {
	if a == b {
		return a
	}
	if a == emptyNode || b == emptyNode {
		return emptyNode
	}
	k := nodePair{a, b}
	if nodeLess(b, a) {
		k = nodePair{b, a}
	}
	if v, ok := intersectMemo.get(k); ok {
		return v
	}
	var out []edge
	i, j := 0, 0
	for i < len(a.edges) && j < len(b.edges) {
		ae, be := a.edges[i], b.edges[j]
		switch {
		case ae.id < be.id:
			i++
		case be.id < ae.id:
			j++
		default:
			out = append(out, edge{id: ae.id, ev: ae.ev, child: intersectNodes(ae.child, be.child)})
			i, j = i+1, j+1
		}
	}
	n := intern(out)
	intersectMemo.put(k, n)
	return n
}

// Contains reports whether t ∈ P. Events are looked up without interning:
// an event that was never interned cannot label any trie edge.
func (p *Set) Contains(t trace.T) bool {
	n := p.root
	for _, e := range t {
		id, ok := e.LookupID()
		if !ok {
			return false
		}
		ed, ok := n.get(id)
		if !ok {
			return false
		}
		n = ed.child
	}
	return true
}

// Size returns the number of traces in the set (the empty trace counts).
// Precomputed at interning time, so this is O(1).
func (p *Set) Size() int { return p.root.size }

// MaxLen returns the length of the longest trace in the set. Precomputed at
// interning time, so this is O(1).
func (p *Set) MaxLen() int { return p.root.height }

// Traces returns every trace in the set in canonical (lexicographic) order.
// Sharing makes the member count exponential in the trie's height, so for
// sets that may be deep, materialise with TracesN instead: Traces on a set
// with more members than memory holds cannot succeed.
func (p *Set) Traces() []trace.T {
	out, _ := p.TracesN(0)
	return out
}

// TracesN returns at most limit traces of the set, sorted lexicographically
// among themselves, and whether the listing was truncated. limit <= 0 means
// unlimited. A truncated listing is a prefix-closed subset (the walk visits
// every prefix of a trace before the trace), but which members survive
// depends on internal edge order, not on trace order.
func (p *Set) TracesN(limit int) ([]trace.T, bool) {
	prealloc := p.root.size
	if limit > 0 && limit < prealloc {
		prealloc = limit
	}
	if prealloc < 0 || prealloc > 1<<16 {
		prealloc = 1 << 16
	}
	out := make([]trace.T, 0, prealloc)
	truncated := false
	var walk func(n *node, pfx trace.T) bool
	walk = func(n *node, pfx trace.T) bool {
		if limit > 0 && len(out) == limit {
			truncated = true
			return false
		}
		cp := make(trace.T, len(pfx))
		copy(cp, pfx)
		out = append(out, cp)
		for _, e := range n.edges {
			if !walk(e.child, append(pfx, e.ev)) {
				return false
			}
		}
		return true
	}
	walk(p.root, nil)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out, truncated
}

// WalkDFS traverses the set depth-first in unspecified order. visit is
// called once per member trace (including <>), with the current path, which
// is only valid for the duration of the call; returning false aborts the
// whole walk. push and pop, when non-nil, bracket each descent along an
// event, letting callers maintain incremental state (e.g. channel
// histories) without re-deriving it per trace. WalkDFS reports whether the
// traversal ran to completion.
func (p *Set) WalkDFS(visit func(path trace.T) bool, push, pop func(ev trace.Event)) bool {
	var path trace.T
	var walk func(n *node) bool
	walk = func(n *node) bool {
		if !visit(path) {
			return false
		}
		for _, e := range n.edges {
			if push != nil {
				push(e.ev)
			}
			path = append(path, e.ev)
			ok := walk(e.child)
			path = path[:len(path)-1]
			if pop != nil {
				pop(e.ev)
			}
			if !ok {
				return false
			}
		}
		return true
	}
	return walk(p.root)
}

// TracesMax returns the maximal traces (those with no extension in the set),
// useful for compact display.
func (p *Set) TracesMax() []trace.T {
	out, _ := p.TracesMaxN(0)
	return out
}

// TracesMaxN is TracesN restricted to maximal traces (those that are not a
// proper prefix of another member): at most limit of them, sorted among
// themselves, plus a truncation flag. limit <= 0 means unlimited.
func (p *Set) TracesMaxN(limit int) ([]trace.T, bool) {
	var out []trace.T
	truncated := false
	var walk func(n *node, pfx trace.T) bool
	walk = func(n *node, pfx trace.T) bool {
		if len(n.edges) == 0 {
			if limit > 0 && len(out) == limit {
				truncated = true
				return false
			}
			cp := make(trace.T, len(pfx))
			copy(cp, pfx)
			out = append(out, cp)
			return true
		}
		for _, e := range n.edges {
			if !walk(e.child, append(pfx, e.ev)) {
				return false
			}
		}
		return true
	}
	walk(p.root, nil)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out, truncated
}

// Same reports whether two sets are represented by the same interned node —
// a pointer comparison. Same(q) implies Equal(q); the converse holds as
// long as neither representation predates a cache eviction or reset, which
// is why Equal keeps a structural fallback.
func (p *Set) Same(q *Set) bool { return p.root == q.root }

// Equal reports whether two sets contain exactly the same traces. With
// hash-consing this is usually the O(1) pointer comparison; the structural
// walk only runs for sets whose nodes straddle a cache eviction, and even
// then the cached hash, size, and height reject unequal subtrees early.
func (p *Set) Equal(q *Set) bool { return nodesEqual(p.root, q.root) }

func nodesEqual(a, b *node) bool {
	if a == b {
		return true
	}
	if a.hash != b.hash || a.size != b.size || a.height != b.height || len(a.edges) != len(b.edges) {
		return false
	}
	for i := range a.edges {
		if a.edges[i].id != b.edges[i].id || !nodesEqual(a.edges[i].child, b.edges[i].child) {
			return false
		}
	}
	return true
}

// SubsetOf reports P ⊆ Q, i.e. trace refinement of P by Q's traces. Shared
// interned subtrees compare in O(1), and verdicts are memoized, so repeated
// refinement checks over a growing approximation chain stay cheap.
func (p *Set) SubsetOf(q *Set) bool { return nodeSubset(p.root, q.root) }

func nodeSubset(a, b *node) bool {
	if a == b || a == emptyNode {
		return true
	}
	if a.size > b.size || a.height > b.height {
		return false
	}
	k := nodePair{a, b}
	if v, ok := subsetMemo.get(k); ok {
		return v
	}
	res := true
	for _, e := range a.edges {
		be, ok := b.get(e.id)
		if !ok || !nodeSubset(e.child, be.child) {
			res = false
			break
		}
	}
	subsetMemo.put(k, res)
	return res
}

// FirstNotIn returns a witness trace in P but not in Q, or nil if P ⊆ Q.
func (p *Set) FirstNotIn(q *Set) trace.T {
	return firstNotIn(p.root, q.root, nil)
}

func firstNotIn(a, b *node, pfx trace.T) trace.T {
	if a == b {
		return nil
	}
	// Edges are interned in event-id order, so the walk is deterministic
	// for a given interning history and the witness reproducible without
	// sorting (though a different id-assignment order may pick a different
	// — equally valid — witness).
	for _, e := range a.edges {
		be, ok := b.get(e.id)
		ext := append(pfx, e.ev)
		if !ok {
			cp := make(trace.T, len(ext))
			copy(cp, ext)
			return cp
		}
		if w := firstNotIn(e.child, be.child, ext); w != nil {
			return w
		}
	}
	return nil
}

// TruncateTo returns the subset of traces with length ≤ depth (the paper's
// finite approximation restricted to a window). Subtrees that already fit
// within the window are shared, not copied, and the cached per-node height
// makes the fit test O(1).
func (p *Set) TruncateTo(depth int) *Set {
	if p.root.height <= depth {
		return p
	}
	return truncated(p.root, depth).wrap()
}

func truncated(src *node, budget int) *node {
	if src.height <= budget {
		return src
	}
	if budget <= 0 {
		return emptyNode
	}
	mk := nodeIntKey{n: src, i: budget}
	if v, ok := truncMemo.get(mk); ok {
		return v
	}
	out := make([]edge, len(src.edges))
	for i, e := range src.edges {
		out[i] = edge{id: e.id, ev: e.ev, child: truncated(e.child, budget-1)}
	}
	n := intern(out)
	truncMemo.put(mk, n)
	return n
}

// Channels returns the set of channels appearing anywhere in the set. The
// walk visits each shared subtree once.
func (p *Set) Channels() trace.Set {
	s := trace.NewSet()
	seen := map[*node]bool{}
	var walk func(n *node)
	walk = func(n *node) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, e := range n.edges {
			s.AddID(trace.EventChanID(e.id))
			walk(e.child)
		}
	}
	walk(p.root)
	return s
}

// String renders the maximal traces, one per line, capped for readability.
func (p *Set) String() string {
	ms := p.TracesMax()
	const maxShown = 16
	var sb strings.Builder
	sb.WriteString("{")
	for i, t := range ms {
		if i == maxShown {
			sb.WriteString(" …")
			break
		}
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(" ")
		sb.WriteString(t.String())
	}
	sb.WriteString(" }")
	return sb.String()
}

// Fix computes the paper's §3.3 approximation chain for a recursive
// definition p ≜ P: a₀ = STOP, a(i+1) = F(aᵢ), where F is the semantic
// functional of the defining expression. Iteration proceeds until the
// approximation restricted to traces of length ≤ depth stops growing, which
// is exactly ⋃ᵢ aᵢ truncated at the window — the set of all traces of the
// recursive process up to that length. It returns the fixed point and the
// number of iterations taken.
//
// Because Union over interned tries returns the canonical node — and in
// particular returns cur's own node the moment F adds nothing new — the
// stabilisation test is the pointer comparison Same on the happy path, with
// Equal as the structural fallback across cache evictions.
func Fix(f func(*Set) *Set, depth int) (*Set, int) {
	cur := Stop()
	for i := 1; ; i++ {
		next := f(cur).TruncateTo(depth)
		next = Union(next, cur) // the chain is increasing; keep it so under truncation
		if next.Same(cur) || next.Equal(cur) {
			return cur, i
		}
		cur = next
	}
}
