// Package closure implements the paper's §3.1 denotational domain: prefix
// closures, i.e. prefix-closed sets of traces, together with the semantic
// operators the paper defines on them —
//
//	(a → P)        prefixing
//	P ∪ Q          union (the meaning of the alternative P | Q)
//	P \ C          hiding (the meaning of chan C; P)
//	P ⇑ C          "ignore": interleaving with arbitrary chatter on C
//	P X‖Y Q        alphabetized parallel = (P ⇑ (Y−X)) ∩ (Q ⇑ (X−Y))
//
// A mathematical prefix closure is usually infinite; this package represents
// the finite approximations a₀ ⊆ a₁ ⊆ … that the paper itself uses to give
// meaning to recursion (§3.3). A Set holds finitely many traces and is
// prefix-closed by construction: the representation is a trie whose every
// node is a member, so closure under prefixes can never be violated.
package closure

import (
	"sort"
	"strings"

	"cspsat/internal/trace"
)

// Set is a finite prefix-closed set of traces. The zero value is not usable;
// construct with Stop, Prefix, Union, etc. Sets are immutable once built and
// may be shared freely.
type Set struct {
	root *node
}

type node struct {
	// children maps an event key to the outgoing edge. A trie node is
	// itself a member of the set (its path from the root), which is what
	// makes every Set prefix-closed by construction.
	children map[string]edge
}

type edge struct {
	ev    trace.Event
	child *node
}

func newNode() *node { return &node{children: map[string]edge{}} }

func eventKey(e trace.Event) string { return string(e.Chan) + "\x00" + e.Msg.Key() }

// Stop returns {<>}, the denotation of STOP: the process that never
// communicates.
func Stop() *Set { return &Set{root: newNode()} }

// Nodes are immutable once their constructing operation returns, so all
// operators share subtrees freely instead of cloning: Prefix is O(1),
// Union is proportional to the overlap of the two tries only.

// Prefix returns (a → P) = {<>} ∪ { a⌢s | s ∈ P }, the paper's prefixing
// operator. The result shares P's nodes.
func Prefix(a trace.Event, p *Set) *Set {
	r := newNode()
	r.children[eventKey(a)] = edge{ev: a, child: p.root}
	return &Set{root: r}
}

// Union returns P ∪ Q, the denotation of the alternative (P | Q). Subtrees
// present in only one operand are shared, not copied.
func Union(p, q *Set) *Set {
	return &Set{root: mergeNodes(p.root, q.root)}
}

// UnionAll returns the union of all the given sets; with no arguments it
// returns Stop() (the unit {<>}, which is a subset of every prefix closure).
func UnionAll(sets ...*Set) *Set {
	out := Stop()
	for _, s := range sets {
		out = Union(out, s)
	}
	return out
}

func mergeNodes(a, b *node) *node {
	if a == b {
		return a
	}
	if len(a.children) == 0 {
		return b
	}
	if len(b.children) == 0 {
		return a
	}
	out := newNode()
	for k, e := range a.children {
		out.children[k] = e
	}
	for k, e := range b.children {
		if ex, ok := out.children[k]; ok {
			out.children[k] = edge{ev: e.ev, child: mergeNodes(ex.child, e.child)}
		} else {
			out.children[k] = e
		}
	}
	return out
}

// Hide returns P \ C: every trace of P with its communications on channels
// of C omitted (the paper's s\C lifted pointwise). The result is again
// prefix-closed. Note the approximation caveat: if P is only complete up to
// depth d, P\C is only guaranteed complete up to the depth d minus the
// hidden chatter — callers compensate by exploring P deeper (see sem).
func Hide(p *Set, c trace.Set) *Set {
	r := newNode()
	hideInto(p.root, c, r)
	return &Set{root: r}
}

func hideInto(src *node, c trace.Set, dst *node) {
	for k, e := range src.children {
		if c.Contains(e.ev.Chan) {
			// Hidden event: its subtree collapses into dst.
			hideInto(e.child, c, dst)
			continue
		}
		ex, ok := dst.children[k]
		if !ok {
			ex = edge{ev: e.ev, child: newNode()}
			dst.children[k] = ex
		}
		hideInto(e.child, c, ex.child)
	}
}

// Ignore returns the paper's P ⇑ C: the set of traces formed by interleaving
// a trace of P with an arbitrary sequence of communications on the channels
// of C, which P "ignores". Since arbitrary chatter is infinite, the chatter
// alphabet is given explicitly (the events that may occur on C) and the
// result is truncated to traces of length ≤ maxLen. P must not communicate
// on any channel of the chatter alphabet.
func Ignore(p *Set, chatter []trace.Event, maxLen int) *Set {
	r := newNode()
	ignoreInto(p.root, chatter, maxLen, r)
	return &Set{root: r}
}

func ignoreInto(src *node, chatter []trace.Event, budget int, dst *node) {
	if budget <= 0 {
		return
	}
	// Either take a real event of P...
	for k, e := range src.children {
		ex, ok := dst.children[k]
		if !ok {
			ex = edge{ev: e.ev, child: newNode()}
			dst.children[k] = ex
		}
		ignoreInto(e.child, chatter, budget-1, ex.child)
	}
	// ...or an ignored chatter event, staying at the same P-node.
	for _, ce := range chatter {
		k := eventKey(ce)
		ex, ok := dst.children[k]
		if !ok {
			ex = edge{ev: ce, child: newNode()}
			dst.children[k] = ex
		}
		ignoreInto(src, chatter, budget-1, ex.child)
	}
}

// Parallel returns P X‖Y Q, the paper's alphabetized parallel composition:
// the traces s over X ∪ Y such that s↾X ∈ P and s↾Y ∈ Q. Communication on a
// channel of X ∩ Y requires simultaneous participation of both processes;
// channels private to one side interleave freely. This is computed directly
// as a product walk over the two tries, which is equivalent to the paper's
// (P ⇑ (Y−X)) ∩ (Q ⇑ (X−Y)) definition but avoids materialising the
// interleavings (see TestParallelMatchesIgnoreIntersection for the
// equivalence check).
func Parallel(p, q *Set, x, y trace.Set) *Set {
	r := newNode()
	memo := map[[2]*node]*node{}
	parallelInto(p.root, q.root, x, y, r, memo)
	return &Set{root: r}
}

func parallelInto(a, b *node, x, y trace.Set, dst *node, memo map[[2]*node]*node) {
	// memo prevents exponential re-expansion when the same (a,b) state is
	// reached along different interleavings: the computed subtree is shared.
	key := [2]*node{a, b}
	if done, ok := memo[key]; ok {
		// Merge the memoised subtree into dst.
		for k, e := range done.children {
			if ex, ok := dst.children[k]; ok {
				dst.children[k] = edge{ev: e.ev, child: mergeNodes(ex.child, e.child)}
			} else {
				dst.children[k] = e
			}
		}
		return
	}
	memo[key] = dst
	for k, e := range a.children {
		c := e.ev.Chan
		if !x.Contains(c) {
			// P communicating outside its own alphabet: the paper's
			// composition is only defined when P communicates on X; treat
			// the event as private to P (X is extended implicitly).
		}
		if y.Contains(c) {
			// Shared channel: requires Q to offer the same event.
			be, ok := b.children[k]
			if !ok {
				continue
			}
			child := step(dst, e.ev, k)
			parallelInto(e.child, be.child, x, y, child, memo)
		} else {
			// Private to P.
			child := step(dst, e.ev, k)
			parallelInto(e.child, b, x, y, child, memo)
		}
	}
	for k, e := range b.children {
		c := e.ev.Chan
		if x.Contains(c) {
			continue // shared (or P-side) events handled above
		}
		child := step(dst, e.ev, k)
		parallelInto(a, e.child, x, y, child, memo)
	}
}

func step(dst *node, ev trace.Event, k string) *node {
	ex, ok := dst.children[k]
	if !ok {
		ex = edge{ev: ev, child: newNode()}
		dst.children[k] = ex
	}
	return ex.child
}

// Intersect returns P ∩ Q. Prefix closures are closed under intersection
// (§3.1), and the paper's parallel operator is defined via ∩.
func Intersect(p, q *Set) *Set {
	r := newNode()
	intersectInto(p.root, q.root, r)
	return &Set{root: r}
}

func intersectInto(a, b, dst *node) {
	for k, e := range a.children {
		be, ok := b.children[k]
		if !ok {
			continue
		}
		ex := edge{ev: e.ev, child: newNode()}
		dst.children[k] = ex
		intersectInto(e.child, be.child, ex.child)
	}
}

// Contains reports whether t ∈ P.
func (p *Set) Contains(t trace.T) bool {
	n := p.root
	for _, e := range t {
		ed, ok := n.children[eventKey(e)]
		if !ok {
			return false
		}
		n = ed.child
	}
	return true
}

// Size returns the number of traces in the set (the empty trace counts).
func (p *Set) Size() int { return p.root.size() }

func (n *node) size() int {
	s := 1
	for _, e := range n.children {
		s += e.child.size()
	}
	return s
}

// MaxLen returns the length of the longest trace in the set.
func (p *Set) MaxLen() int { return p.root.height() }

func (n *node) height() int {
	h := 0
	for _, e := range n.children {
		if ch := 1 + e.child.height(); ch > h {
			h = ch
		}
	}
	return h
}

// Traces returns every trace in the set in canonical (lexicographic) order.
func (p *Set) Traces() []trace.T {
	var out []trace.T
	var walk func(n *node, pfx trace.T)
	walk = func(n *node, pfx trace.T) {
		cp := make(trace.T, len(pfx))
		copy(cp, pfx)
		out = append(out, cp)
		for _, e := range n.children {
			walk(e.child, append(pfx, e.ev))
		}
	}
	walk(p.root, nil)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// WalkDFS traverses the set depth-first in unspecified order. visit is
// called once per member trace (including <>), with the current path, which
// is only valid for the duration of the call; returning false aborts the
// whole walk. push and pop, when non-nil, bracket each descent along an
// event, letting callers maintain incremental state (e.g. channel
// histories) without re-deriving it per trace. WalkDFS reports whether the
// traversal ran to completion.
func (p *Set) WalkDFS(visit func(path trace.T) bool, push, pop func(ev trace.Event)) bool {
	var path trace.T
	var walk func(n *node) bool
	walk = func(n *node) bool {
		if !visit(path) {
			return false
		}
		for _, e := range n.children {
			if push != nil {
				push(e.ev)
			}
			path = append(path, e.ev)
			ok := walk(e.child)
			path = path[:len(path)-1]
			if pop != nil {
				pop(e.ev)
			}
			if !ok {
				return false
			}
		}
		return true
	}
	return walk(p.root)
}

// TracesMax returns the maximal traces (those with no extension in the set),
// useful for compact display.
func (p *Set) TracesMax() []trace.T {
	var out []trace.T
	var walk func(n *node, pfx trace.T)
	walk = func(n *node, pfx trace.T) {
		if len(n.children) == 0 {
			cp := make(trace.T, len(pfx))
			copy(cp, pfx)
			out = append(out, cp)
			return
		}
		for _, e := range n.children {
			walk(e.child, append(pfx, e.ev))
		}
	}
	walk(p.root, nil)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Equal reports whether two sets contain exactly the same traces.
func (p *Set) Equal(q *Set) bool { return nodesEqual(p.root, q.root) }

func nodesEqual(a, b *node) bool {
	if len(a.children) != len(b.children) {
		return false
	}
	for k, e := range a.children {
		be, ok := b.children[k]
		if !ok || !nodesEqual(e.child, be.child) {
			return false
		}
	}
	return true
}

// SubsetOf reports P ⊆ Q, i.e. trace refinement of P by Q's traces.
func (p *Set) SubsetOf(q *Set) bool { return nodeSubset(p.root, q.root) }

func nodeSubset(a, b *node) bool {
	for k, e := range a.children {
		be, ok := b.children[k]
		if !ok || !nodeSubset(e.child, be.child) {
			return false
		}
	}
	return true
}

// FirstNotIn returns a witness trace in P but not in Q, or nil if P ⊆ Q.
func (p *Set) FirstNotIn(q *Set) trace.T {
	return firstNotIn(p.root, q.root, nil)
}

func firstNotIn(a, b *node, pfx trace.T) trace.T {
	// Deterministic order for reproducible counterexamples.
	keys := make([]string, 0, len(a.children))
	for k := range a.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := a.children[k]
		be, ok := b.children[k]
		ext := append(pfx, e.ev)
		if !ok {
			cp := make(trace.T, len(ext))
			copy(cp, ext)
			return cp
		}
		if w := firstNotIn(e.child, be.child, ext); w != nil {
			return w
		}
	}
	return nil
}

// TruncateTo returns the subset of traces with length ≤ depth (the paper's
// finite approximation restricted to a window). Subtrees that already fit
// within the window are shared, not copied.
func (p *Set) TruncateTo(depth int) *Set {
	heights := map[*node]int{}
	return &Set{root: truncated(p.root, depth, heights)}
}

func truncated(src *node, budget int, heights map[*node]int) *node {
	if heightMemo(src, heights) <= budget {
		return src
	}
	out := newNode()
	if budget <= 0 {
		return out
	}
	for k, e := range src.children {
		out.children[k] = edge{ev: e.ev, child: truncated(e.child, budget-1, heights)}
	}
	return out
}

func heightMemo(n *node, heights map[*node]int) int {
	if h, ok := heights[n]; ok {
		return h
	}
	h := 0
	for _, e := range n.children {
		if ch := 1 + heightMemo(e.child, heights); ch > h {
			h = ch
		}
	}
	heights[n] = h
	return h
}

// Channels returns the set of channels appearing anywhere in the set.
func (p *Set) Channels() trace.Set {
	s := trace.NewSet()
	var walk func(n *node)
	walk = func(n *node) {
		for _, e := range n.children {
			s.Add(e.ev.Chan)
			walk(e.child)
		}
	}
	walk(p.root)
	return s
}

// String renders the maximal traces, one per line, capped for readability.
func (p *Set) String() string {
	ms := p.TracesMax()
	const maxShown = 16
	var sb strings.Builder
	sb.WriteString("{")
	for i, t := range ms {
		if i == maxShown {
			sb.WriteString(" …")
			break
		}
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(" ")
		sb.WriteString(t.String())
	}
	sb.WriteString(" }")
	return sb.String()
}

// Fix computes the paper's §3.3 approximation chain for a recursive
// definition p ≜ P: a₀ = STOP, a(i+1) = F(aᵢ), where F is the semantic
// functional of the defining expression. Iteration proceeds until the
// approximation restricted to traces of length ≤ depth stops growing, which
// is exactly ⋃ᵢ aᵢ truncated at the window — the set of all traces of the
// recursive process up to that length. It returns the fixed point and the
// number of iterations taken.
func Fix(f func(*Set) *Set, depth int) (*Set, int) {
	cur := Stop()
	for i := 1; ; i++ {
		next := f(cur).TruncateTo(depth)
		next = Union(next, cur) // the chain is increasing; keep it so under truncation
		if next.Equal(cur) {
			return cur, i
		}
		cur = next
	}
}
