package closure

// Hash-consing for trie nodes. Every node reachable from a *Set is
// canonical: it was produced by intern, which returns the one retained node
// for each distinct (sorted) edge list. Because children are interned
// before their parents, structural equality of subtrees coincides with
// pointer equality as long as the canonical node is still retained, which
// makes Equal/SubsetOf near-O(1) pointer walks on the common path and lets
// Size/MaxLen be precomputed per node at construction time.
//
// Retention is bounded: the intern table and every operator memo table use
// two-generation eviction (see gen2 below), so a long-running host (the
// cspi REPL, cspexperiments, a server loop) cannot accumulate canonical
// nodes without bound. Eviction never invalidates a node — nodes are
// immutable and remain correct forever — it only means a later structurally
// equal construction may mint a fresh pointer, so Equal falls back to a
// structural walk when the pointer test fails.
//
// All tables are guarded by a single package mutex, taken only inside the
// short leaf helpers in this file (never while calling back into operator
// code), so the package is safe for concurrent use.

import (
	"sort"
	"sync"

	"cspsat/internal/trace"
)

// node is an immutable hash-consed trie node. edges is sorted by key and
// never mutated after intern publishes the node.
type node struct {
	edges  []edge
	id     uint64 // unique creation index, for canonical symmetric memo keys
	hash   uint64
	size   int // number of member traces in the tree-unfolding (≥ 1 for <>)
	height int // length of the longest member trace
}

type edge struct {
	key   string
	ev    trace.Event
	child *node
}

// get returns the outgoing edge for an event key, by binary search over the
// sorted edge list.
func (n *node) get(k string) (edge, bool) {
	lo, hi := 0, len(n.edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.edges[mid].key < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.edges) && n.edges[lo].key == k {
		return n.edges[lo], true
	}
	return edge{}, false
}

// emptyNode is the canonical {<>}; it is pinned and never evicted.
var emptyNode = &node{hash: fnvOffset, size: 1, height: 0}

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func hashBytes(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

func hashUint(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
	return h
}

func hashEdges(edges []edge) uint64 {
	h := fnvOffset
	for _, e := range edges {
		h = hashBytes(h, e.key)
		h = hashUint(h, e.child.hash)
	}
	return h
}

// gen2 is a two-generation bounded table. Inserts go to the current
// generation; when it fills, the previous generation is dropped and the
// current one takes its place. A lookup that hits the previous generation
// promotes the entry, so the working set survives rotation and only cold
// entries age out. The scheme bounds retained entries to 2×limit with O(1)
// amortized maintenance (no LRU list, no per-entry clocks).
type gen2[K comparable, V any] struct {
	cur, old map[K]V
	limit    int
	hits     uint64
	misses   uint64
	evicted  uint64
	rotated  uint64
}

func newGen2[K comparable, V any](limit int) *gen2[K, V] {
	return &gen2[K, V]{cur: make(map[K]V), old: make(map[K]V), limit: limit}
}

func (g *gen2[K, V]) get(k K) (V, bool) {
	if v, ok := g.cur[k]; ok {
		g.hits++
		return v, true
	}
	if v, ok := g.old[k]; ok {
		g.hits++
		g.promote(k, v)
		return v, true
	}
	g.misses++
	var zero V
	return zero, false
}

func (g *gen2[K, V]) put(k K, v V) {
	g.promote(k, v)
}

func (g *gen2[K, V]) promote(k K, v V) {
	g.cur[k] = v
	if len(g.cur) >= g.limit {
		g.rotated++
		g.evicted += uint64(len(g.old))
		g.old = g.cur
		g.cur = make(map[K]V)
	}
}

func (g *gen2[K, V]) len() int { return len(g.cur) + len(g.old) }

func (g *gen2[K, V]) reset() {
	g.cur = make(map[K]V)
	g.old = make(map[K]V)
}

// Default per-generation budgets. A node is ~5 words plus its edge list, so
// the intern default bounds canonical-node retention to a few hundred MB in
// the worst case and far less in practice; memo entries are a key plus a
// pointer. Both are adjustable via SetCacheBudget.
const (
	defaultInternBudget = 1 << 18
	defaultMemoBudget   = 1 << 18
)

// opMemo couples a gen2 with the name reported by Stats.
type opMemo[K comparable] struct {
	name string
	tab  *gen2[K, *node]
}

var (
	mu          sync.Mutex
	nextNodeID  uint64 // 0 is emptyNode
	internTab   = newGen2[uint64, []*node](defaultInternBudget)
	internStats struct{ hits, misses uint64 }

	unionMemo     = opMemo[[2]*node]{name: "union", tab: newGen2[[2]*node, *node](defaultMemoBudget)}
	intersectMemo = opMemo[[2]*node]{name: "intersect", tab: newGen2[[2]*node, *node](defaultMemoBudget)}
	hideMemo      = opMemo[nodeStrKey]{name: "hide", tab: newGen2[nodeStrKey, *node](defaultMemoBudget)}
	ignoreMemo    = opMemo[nodeStrIntKey]{name: "ignore", tab: newGen2[nodeStrIntKey, *node](defaultMemoBudget)}
	parallelMemo  = opMemo[parKey]{name: "parallel", tab: newGen2[parKey, *node](defaultMemoBudget)}
	truncMemo     = opMemo[nodeIntKey]{name: "truncate", tab: newGen2[nodeIntKey, *node](defaultMemoBudget)}

	subsetMemo = newGen2[[2]*node, bool](defaultMemoBudget)
)

type nodeStrKey struct {
	n *node
	s string
}

type nodeIntKey struct {
	n *node
	i int
}

type nodeStrIntKey struct {
	n *node
	s string
	i int
}

type parKey struct {
	a, b *node
	xy   string
}

// intern returns the canonical node for the given edge list, which must be
// sorted by key, free of duplicate keys, and built over canonical children.
// The caller must not retain or mutate edges after the call if the interned
// node may share it.
func intern(edges []edge) *node {
	if len(edges) == 0 {
		return emptyNode
	}
	h := hashEdges(edges)
	mu.Lock()
	defer mu.Unlock()
	bucket, _ := internTab.get(h)
	for _, cand := range bucket {
		if edgesIdentical(cand.edges, edges) {
			internStats.hits++
			return cand
		}
	}
	internStats.misses++
	size, height := 1, 0
	for _, e := range edges {
		size += e.child.size
		if ch := 1 + e.child.height; ch > height {
			height = ch
		}
	}
	nextNodeID++
	n := &node{edges: edges, id: nextNodeID, hash: h, size: size, height: height}
	internTab.put(h, append(bucket, n))
	return n
}

// edgesIdentical reports structural equality of two sorted edge lists over
// canonical children (so child comparison is pointer comparison).
func edgesIdentical(a, b []edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].key != b[i].key || a[i].child != b[i].child {
			return false
		}
	}
	return true
}

func countInternedLocked() int {
	n := 0
	for _, bucket := range internTab.cur {
		n += len(bucket)
	}
	for h, bucket := range internTab.old {
		if _, dup := internTab.cur[h]; dup {
			continue // promoted buckets appear in both generations
		}
		n += len(bucket)
	}
	return n
}

func memoGet[K comparable](m opMemo[K], k K) (*node, bool) {
	mu.Lock()
	defer mu.Unlock()
	return m.tab.get(k)
}

func memoPut[K comparable](m opMemo[K], k K, v *node) {
	mu.Lock()
	defer mu.Unlock()
	m.tab.put(k, v)
}

// sortEdges sorts an edge list in place by key and merges duplicate keys by
// unioning their children (duplicates arise when two construction paths
// produce the same event, e.g. a hidden subtree collapsing onto a sibling).
// It returns the (possibly shortened) list.
func sortEdges(edges []edge) []edge {
	sort.Slice(edges, func(i, j int) bool { return edges[i].key < edges[j].key })
	out := edges[:0]
	for _, e := range edges {
		if len(out) > 0 && out[len(out)-1].key == e.key {
			out[len(out)-1].child = unionNodes(out[len(out)-1].child, e.child)
			continue
		}
		out = append(out, e)
	}
	return out
}

// OpStats reports one memo table's effectiveness.
type OpStats struct {
	Hits   uint64
	Misses uint64
}

// CacheStats is a snapshot of the interning and memoization counters, for
// benchmark harnesses and long-running hosts watching cache health.
type CacheStats struct {
	// InternedNodes is the number of canonical nodes currently retained by
	// the intern table (live Sets may additionally pin evicted nodes).
	InternedNodes int
	// InternHits / InternMisses count intern lookups that returned an
	// existing canonical node vs minted a new one.
	InternHits   uint64
	InternMisses uint64
	// Evicted is the cumulative number of intern-table entries dropped by
	// generation rotation (entries are hash buckets, almost always holding
	// one node each); Rotations counts the rotations themselves.
	Evicted   uint64
	Rotations uint64
	// MemoHits / MemoMisses aggregate the operator memo tables; Ops breaks
	// them down per operator (union, intersect, hide, ignore, parallel,
	// truncate, subset).
	MemoHits   uint64
	MemoMisses uint64
	Ops        map[string]OpStats
}

// Stats returns a snapshot of the interning and operator-memo counters.
func Stats() CacheStats {
	mu.Lock()
	defer mu.Unlock()
	s := CacheStats{
		InternedNodes: countInternedLocked(),
		InternHits:    internStats.hits,
		InternMisses:  internStats.misses,
		Evicted:       internTab.evicted,
		Rotations:     internTab.rotated,
		Ops:           map[string]OpStats{},
	}
	record := func(name string, hits, misses uint64) {
		s.Ops[name] = OpStats{Hits: hits, Misses: misses}
		s.MemoHits += hits
		s.MemoMisses += misses
	}
	record(unionMemo.name, unionMemo.tab.hits, unionMemo.tab.misses)
	record(intersectMemo.name, intersectMemo.tab.hits, intersectMemo.tab.misses)
	record(hideMemo.name, hideMemo.tab.hits, hideMemo.tab.misses)
	record(ignoreMemo.name, ignoreMemo.tab.hits, ignoreMemo.tab.misses)
	record(parallelMemo.name, parallelMemo.tab.hits, parallelMemo.tab.misses)
	record(truncMemo.name, truncMemo.tab.hits, truncMemo.tab.misses)
	record("subset", subsetMemo.hits, subsetMemo.misses)
	return s
}

// ResetCaches empties the intern and memo tables and zeroes the counters.
// Existing Sets remain valid (their nodes are immutable); they merely stop
// being canonical, so sets built before and after the reset compare by
// structural walk rather than pointer equality. Intended for tests and
// cold-cache benchmarking.
func ResetCaches() {
	mu.Lock()
	defer mu.Unlock()
	internTab.reset()
	internTab.hits, internTab.misses, internTab.evicted, internTab.rotated = 0, 0, 0, 0
	internStats = struct{ hits, misses uint64 }{}
	for _, t := range []*gen2[[2]*node, *node]{unionMemo.tab, intersectMemo.tab} {
		t.reset()
		t.hits, t.misses, t.evicted, t.rotated = 0, 0, 0, 0
	}
	hideMemo.tab.reset()
	hideMemo.tab.hits, hideMemo.tab.misses = 0, 0
	ignoreMemo.tab.reset()
	ignoreMemo.tab.hits, ignoreMemo.tab.misses = 0, 0
	parallelMemo.tab.reset()
	parallelMemo.tab.hits, parallelMemo.tab.misses = 0, 0
	truncMemo.tab.reset()
	truncMemo.tab.hits, truncMemo.tab.misses = 0, 0
	subsetMemo.reset()
	subsetMemo.hits, subsetMemo.misses = 0, 0
}

// SetCacheBudget adjusts the per-generation entry budgets of the intern
// table and the operator memo tables (each retains at most twice its
// budget). Values ≤ 0 restore the defaults. Lower budgets trade memo
// effectiveness for a tighter memory ceiling in long-running hosts; the
// change applies to subsequent inserts and does not drop current entries.
func SetCacheBudget(internNodes, memoEntries int) {
	if internNodes <= 0 {
		internNodes = defaultInternBudget
	}
	if memoEntries <= 0 {
		memoEntries = defaultMemoBudget
	}
	mu.Lock()
	defer mu.Unlock()
	internTab.limit = internNodes
	unionMemo.tab.limit = memoEntries
	intersectMemo.tab.limit = memoEntries
	hideMemo.tab.limit = memoEntries
	ignoreMemo.tab.limit = memoEntries
	parallelMemo.tab.limit = memoEntries
	truncMemo.tab.limit = memoEntries
	subsetMemo.limit = memoEntries
}
