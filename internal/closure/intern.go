package closure

// Hash-consing for trie nodes. Every node reachable from a *Set is
// canonical: it was produced by intern, which returns the one retained node
// for each distinct (sorted) edge list. Because children are interned
// before their parents, structural equality of subtrees coincides with
// pointer equality as long as the canonical node is still retained, which
// makes Equal/SubsetOf near-O(1) pointer walks on the common path and lets
// Size/MaxLen be precomputed per node at construction time.
//
// Retention is bounded: the intern table and every operator memo table use
// two-generation eviction (see gen2 below), so a long-running host (the
// cspi REPL, cspexperiments, a server loop) cannot accumulate canonical
// nodes without bound. Eviction never invalidates a node — nodes are
// immutable and remain correct forever — it only means a later structurally
// equal construction may mint a fresh pointer, so Equal falls back to a
// structural walk when the pointer test fails.
//
// Both the intern table and the memo tables are lock-striped across
// NumShards shards so the parallel engines (op's frontier workers, sem's
// concurrent approximation chains, proof batching) do not serialize on one
// package mutex. The stripe is a pure function of the key's hash — the
// node hash for interning, a derived key hash for memos — so every distinct
// edge list maps to exactly one shard and pointer-canonicality remains
// global, not merely per-shard: two goroutines interning the same edge list
// land on the same shard mutex and one of them wins. Locks are taken only
// inside the short leaf helpers in this file (never while calling back into
// operator code), so lock ordering is trivially acyclic and the package is
// safe for concurrent use.
//
// Cross-shard publication is safe by happens-before transitivity: a parent
// node's edge list is built over already-interned children, and any reader
// that obtains the parent does so under the parent's shard mutex, which the
// interning goroutine released only after the children were fully written.

import (
	"cmp"
	"slices"
	"sync"
	"sync/atomic"

	"cspsat/internal/trace"
)

// node is an immutable hash-consed trie node. edges is sorted by key and
// never mutated after intern publishes the node.
type node struct {
	edges  []edge
	id     uint64 // unique creation index, for canonical symmetric memo keys
	hash   uint64
	size   int // number of member traces in the tree-unfolding (≥ 1 for <>)
	height int // length of the longest member trace

	// wrapped caches the node's *Set facade. Sets are immutable one-field
	// views, so every operator that resolves to the same canonical node may
	// hand out the same wrapper instead of allocating a fresh one.
	wrapped atomic.Pointer[Set]
}

// wrap returns the cached *Set for the node, creating it at most once.
func (n *node) wrap() *Set {
	if s := n.wrapped.Load(); s != nil {
		return s
	}
	s := &Set{root: n}
	if n.wrapped.CompareAndSwap(nil, s) {
		return s
	}
	return n.wrapped.Load()
}

// edge carries the interned event id (the sort/compare key), the event
// itself for rendering walks, and the canonical child.
type edge struct {
	id    trace.EventID
	ev    trace.Event
	child *node
}

// get returns the outgoing edge for an event id, by binary search over the
// sorted edge list.
func (n *node) get(id trace.EventID) (edge, bool) {
	lo, hi := 0, len(n.edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.edges[mid].id < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.edges) && n.edges[lo].id == id {
		return n.edges[lo], true
	}
	return edge{}, false
}

// emptyNode is the canonical {<>}; it is pinned and never evicted.
var emptyNode = &node{hash: fnvOffset, size: 1, height: 0}

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func hashBytes(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

func hashUint(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
	return h
}

func hashEdges(edges []edge) uint64 {
	h := fnvOffset
	for _, e := range edges {
		h = hashUint(h, uint64(e.id))
		h = hashUint(h, e.child.hash)
	}
	return h
}

// NumShards is the number of lock stripes the intern and memo tables are
// split across. It is a power of two; the stripe for a key is a pure
// function of the key's hash, which is what keeps canonicality global (see
// the package comment). 32 stripes keeps contention negligible up to the
// worker counts the engines use while costing only a few KB of mutexes.
const NumShards = 32

const shardMask = NumShards - 1

// shardIndex folds the high bits of an FNV hash into the stripe index so
// keys that differ only above the mask still spread.
func shardIndex(h uint64) int {
	return int((h ^ (h >> 16) ^ (h >> 32)) & shardMask)
}

// gen2 is a two-generation bounded table. Inserts go to the current
// generation; when it fills, the previous generation is dropped and the
// current one takes its place. A lookup that hits the previous generation
// promotes the entry, so the working set survives rotation and only cold
// entries age out. The scheme bounds retained entries to 2×limit with O(1)
// amortized maintenance (no LRU list, no per-entry clocks). A gen2 is not
// itself synchronized; its owning shard's mutex guards it.
type gen2[K comparable, V any] struct {
	cur, old map[K]V
	limit    int
	hits     uint64
	misses   uint64
	evicted  uint64
	rotated  uint64
}

func newGen2[K comparable, V any](limit int) *gen2[K, V] {
	return &gen2[K, V]{cur: make(map[K]V), old: make(map[K]V), limit: limit}
}

func (g *gen2[K, V]) get(k K) (V, bool) {
	if v, ok := g.cur[k]; ok {
		g.hits++
		return v, true
	}
	if v, ok := g.old[k]; ok {
		g.hits++
		g.promote(k, v)
		return v, true
	}
	g.misses++
	var zero V
	return zero, false
}

func (g *gen2[K, V]) put(k K, v V) {
	g.promote(k, v)
}

func (g *gen2[K, V]) promote(k K, v V) {
	g.cur[k] = v
	if len(g.cur) >= g.limit {
		g.rotated++
		g.evicted += uint64(len(g.old))
		g.old = g.cur
		g.cur = make(map[K]V)
	}
}

func (g *gen2[K, V]) reset() {
	// Keep already-empty generations: a reset sweep touches every memo
	// table across every stripe, and most of them are empty in any given
	// workload — re-making ~2×NumShards maps per table would dominate the
	// allocation profile of ResetCaches-per-iteration callers.
	if len(g.cur) > 0 {
		g.cur = make(map[K]V)
	}
	if len(g.old) > 0 {
		g.old = make(map[K]V)
	}
	g.hits, g.misses, g.evicted, g.rotated = 0, 0, 0, 0
}

// Default total entry budgets (split evenly across the stripes). A node is
// ~5 words plus its edge list, so the intern default bounds canonical-node
// retention to a few hundred MB in the worst case and far less in practice;
// memo entries are a key plus a pointer. Both are adjustable via
// SetCacheBudget.
const (
	defaultInternBudget = 1 << 18
	defaultMemoBudget   = 1 << 18
)

// perShardLimit splits a total entry budget across the stripes, rounding up
// so no stripe gets a zero (degenerate) generation.
func perShardLimit(total int) int {
	per := (total + NumShards - 1) / NumShards
	if per < 1 {
		per = 1
	}
	return per
}

// internShard is one stripe of the intern table: a bucket map from node
// hash to the canonical nodes with that hash, plus this stripe's share of
// the hit/miss counters.
type internShard struct {
	mu     sync.Mutex
	tab    *gen2[uint64, []*node]
	hits   uint64
	misses uint64
}

var (
	internShards [NumShards]internShard
	nextNodeID   atomic.Uint64 // 0 is emptyNode
)

func init() {
	per := perShardLimit(defaultInternBudget)
	for i := range internShards {
		internShards[i].tab = newGen2[uint64, []*node](per)
	}
}

// shardKey is the constraint on memo keys: comparable (map key) and able to
// name its stripe. The stripe hash folds in the node creation ids rather
// than the node hashes so distinct nodes with colliding hashes still spread.
type shardKey interface {
	comparable
	shardHash() uint64
}

// nodePair keys the symmetric binary memos (union, intersect, subset);
// callers canonicalise the order by node id before lookup.
type nodePair struct{ a, b *node }

func (k nodePair) shardHash() uint64 {
	return hashUint(hashUint(fnvOffset, k.a.id), k.b.id)
}

// hideKey keys the hide memo: the node plus the interned identity of the
// hidden channel set — a pointer and a uint32, no string materialisation.
type hideKey struct {
	n *node
	c trace.ChanSetID
}

func (k hideKey) shardHash() uint64 {
	return hashUint(hashUint(fnvOffset, k.n.id), uint64(k.c))
}

type nodeIntKey struct {
	n *node
	i int
}

func (k nodeIntKey) shardHash() uint64 {
	return hashUint(hashUint(fnvOffset, k.n.id), uint64(k.i))
}

// ignoreKey keys the ignore memo: node, interned chatter-alphabet identity,
// and remaining budget.
type ignoreKey struct {
	n     *node
	alpha trace.EventSetID
	i     int32
}

func (k ignoreKey) shardHash() uint64 {
	return hashUint(hashUint(hashUint(fnvOffset, k.n.id), uint64(k.alpha)), uint64(uint32(k.i)))
}

// parKey keys the parallel memo on the node pair and the interned
// identities of the two alphabets.
type parKey struct {
	a, b *node
	x, y trace.ChanSetID
}

func (k parKey) shardHash() uint64 {
	h := hashUint(hashUint(fnvOffset, k.a.id), k.b.id)
	return hashUint(h, uint64(k.x)<<32|uint64(k.y))
}

// parBoundKey keys the budget-bounded parallel memo. The budget only joins
// the key when the bound can actually bind (a.height+b.height > budget);
// shallower products fall through to the unbounded parallelMemo, which
// shares entries across budgets.
type parBoundKey struct {
	a, b *node
	x, y trace.ChanSetID
	i    int32
}

func (k parBoundKey) shardHash() uint64 {
	h := hashUint(hashUint(fnvOffset, k.a.id), k.b.id)
	h = hashUint(h, uint64(k.x)<<32|uint64(k.y))
	return hashUint(h, uint64(uint32(k.i)))
}

// nodeListKey keys the k-way UnionAll memo: the packed creation ids of the
// (sorted, deduplicated) operand nodes. Node ids are never reused, so the
// key stays unambiguous across cache evictions.
type nodeListKey struct {
	ids string
}

func (k nodeListKey) shardHash() uint64 {
	return hashBytes(fnvOffset, k.ids)
}

// stripedMemo is a lock-striped memo table: NumShards independently locked
// gen2 generations, stripe chosen by the key's shardHash. V is *node for
// the operator memos and bool for the subset-verdict memo.
type stripedMemo[K shardKey, V any] struct {
	name   string
	stripe [NumShards]struct {
		mu  sync.Mutex
		tab *gen2[K, V]
	}
}

func newStripedMemo[K shardKey, V any](name string) *stripedMemo[K, V] {
	m := &stripedMemo[K, V]{name: name}
	per := perShardLimit(defaultMemoBudget)
	for i := range m.stripe {
		m.stripe[i].tab = newGen2[K, V](per)
	}
	return m
}

func (m *stripedMemo[K, V]) get(k K) (V, bool) {
	s := &m.stripe[shardIndex(k.shardHash())]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tab.get(k)
}

func (m *stripedMemo[K, V]) put(k K, v V) {
	s := &m.stripe[shardIndex(k.shardHash())]
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tab.put(k, v)
}

// counters sums this memo's hit/miss/eviction counters across stripes.
func (m *stripedMemo[K, V]) counters() (hits, misses, evicted, rotated uint64) {
	for i := range m.stripe {
		s := &m.stripe[i]
		s.mu.Lock()
		hits += s.tab.hits
		misses += s.tab.misses
		evicted += s.tab.evicted
		rotated += s.tab.rotated
		s.mu.Unlock()
	}
	return
}

func (m *stripedMemo[K, V]) reset() {
	for i := range m.stripe {
		s := &m.stripe[i]
		s.mu.Lock()
		s.tab.reset()
		s.mu.Unlock()
	}
}

func (m *stripedMemo[K, V]) setLimit(total int) {
	per := perShardLimit(total)
	for i := range m.stripe {
		s := &m.stripe[i]
		s.mu.Lock()
		s.tab.limit = per
		s.mu.Unlock()
	}
}

var (
	unionMemo     = newStripedMemo[nodePair, *node]("union")
	unionAllMemo  = newStripedMemo[nodeListKey, *node]("unionAll")
	intersectMemo = newStripedMemo[nodePair, *node]("intersect")
	hideMemo      = newStripedMemo[hideKey, *node]("hide")
	ignoreMemo    = newStripedMemo[ignoreKey, *node]("ignore")
	parallelMemo  = newStripedMemo[parKey, *node]("parallel")
	parBoundMemo  = newStripedMemo[parBoundKey, *node]("parallelTo")
	truncMemo     = newStripedMemo[nodeIntKey, *node]("truncate")
	subsetMemo    = newStripedMemo[nodePair, bool]("subset")
)

// intern returns the canonical node for the given edge list, which must be
// sorted by key, free of duplicate keys, and built over canonical children.
// satAdd adds two non-negative trace counts, saturating at MaxInt.
func satAdd(a, b int) int {
	const maxInt = int(^uint(0) >> 1)
	if a > maxInt-b {
		return maxInt
	}
	return a + b
}

// The caller must not retain or mutate edges after the call if the interned
// node may share it. Only the one stripe owning the hash is locked, so
// interns of unrelated nodes proceed in parallel.
func intern(edges []edge) *node {
	if len(edges) == 0 {
		return emptyNode
	}
	h := hashEdges(edges)
	sh := &internShards[shardIndex(h)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	bucket, _ := sh.tab.get(h)
	for _, cand := range bucket {
		if edgesIdentical(cand.edges, edges) {
			sh.hits++
			return cand
		}
	}
	sh.misses++
	size, height := 1, 0
	for _, e := range edges {
		// Trie sharing makes member counts exponential in depth, so the sum
		// saturates instead of wrapping: a deep parallel composition easily
		// exceeds MaxInt members while the trie itself stays tiny.
		size = satAdd(size, e.child.size)
		if ch := 1 + e.child.height; ch > height {
			height = ch
		}
	}
	n := &node{edges: edges, id: nextNodeID.Add(1), hash: h, size: size, height: height}
	sh.tab.put(h, append(bucket, n))
	return n
}

// internCopy is intern for callers that reuse their edge buffer: edges may
// be a scratch slice the caller recycles after the call. On a hit nothing
// is retained; on a miss an exact-size copy is interned, never edges
// itself — which also sheds the append slack a growing scratch carries.
func internCopy(edges []edge) *node {
	if len(edges) == 0 {
		return emptyNode
	}
	h := hashEdges(edges)
	sh := &internShards[shardIndex(h)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	bucket, _ := sh.tab.get(h)
	for _, cand := range bucket {
		if edgesIdentical(cand.edges, edges) {
			sh.hits++
			return cand
		}
	}
	sh.misses++
	cp := make([]edge, len(edges))
	copy(cp, edges)
	size, height := 1, 0
	for _, e := range cp {
		size = satAdd(size, e.child.size)
		if ch := 1 + e.child.height; ch > height {
			height = ch
		}
	}
	n := &node{edges: cp, id: nextNodeID.Add(1), hash: h, size: size, height: height}
	sh.tab.put(h, append(bucket, n))
	return n
}

// internPrefix is intern specialised to the single-edge nodes Prefix
// builds. On a hit — the steady state of every fixpoint iteration — no
// edge slice is materialised at all; the probe works from the scalars.
func internPrefix(id trace.EventID, ev trace.Event, child *node) *node {
	h := hashUint(hashUint(fnvOffset, uint64(id)), child.hash)
	sh := &internShards[shardIndex(h)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	bucket, _ := sh.tab.get(h)
	for _, cand := range bucket {
		if len(cand.edges) == 1 && cand.edges[0].id == id && cand.edges[0].child == child {
			sh.hits++
			return cand
		}
	}
	sh.misses++
	n := &node{
		edges:  []edge{{id: id, ev: ev, child: child}},
		id:     nextNodeID.Add(1),
		hash:   h,
		size:   satAdd(1, child.size),
		height: 1 + child.height,
	}
	sh.tab.put(h, append(bucket, n))
	return n
}

// edgesIdentical reports structural equality of two sorted edge lists over
// canonical children (so child comparison is pointer comparison).
func edgesIdentical(a, b []edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].id != b[i].id || a[i].child != b[i].child {
			return false
		}
	}
	return true
}

func countInternedLocked(tab *gen2[uint64, []*node]) int {
	n := 0
	for _, bucket := range tab.cur {
		n += len(bucket)
	}
	for h, bucket := range tab.old {
		if _, dup := tab.cur[h]; dup {
			continue // promoted buckets appear in both generations
		}
		n += len(bucket)
	}
	return n
}

// sortEdges sorts an edge list in place by event id and merges duplicate
// ids by unioning their children (duplicates arise when two construction
// paths produce the same event, e.g. a hidden subtree collapsing onto a
// sibling). It returns the (possibly shortened) list.
func sortEdges(edges []edge) []edge {
	slices.SortFunc(edges, func(a, b edge) int { return cmp.Compare(a.id, b.id) })
	out := edges[:0]
	for _, e := range edges {
		if len(out) > 0 && out[len(out)-1].id == e.id {
			out[len(out)-1].child = unionNodes(out[len(out)-1].child, e.child)
			continue
		}
		out = append(out, e)
	}
	return out
}

// OpStats reports one memo table's effectiveness.
type OpStats struct {
	Hits   uint64
	Misses uint64
}

// CacheStats is a snapshot of the interning and memoization counters,
// aggregated across the lock stripes, for benchmark harnesses and
// long-running hosts watching cache health.
type CacheStats struct {
	// Shards is the number of lock stripes (NumShards), for display.
	Shards int
	// InternedNodes is the number of canonical nodes currently retained by
	// the intern table (live Sets may additionally pin evicted nodes).
	InternedNodes int
	// InternHits / InternMisses count intern lookups that returned an
	// existing canonical node vs minted a new one.
	InternHits   uint64
	InternMisses uint64
	// Evicted is the cumulative number of intern-table entries dropped by
	// generation rotation (entries are hash buckets, almost always holding
	// one node each); Rotations counts the rotations themselves, summed
	// over stripes.
	Evicted   uint64
	Rotations uint64
	// MemoHits / MemoMisses aggregate the operator memo tables; Ops breaks
	// them down per operator (union, unionAll, intersect, hide, ignore,
	// parallel, truncate, subset).
	MemoHits   uint64
	MemoMisses uint64
	Ops        map[string]OpStats
	// Symbols is the occupancy of the process-global symbol tables
	// (channels, events, set identities). Unlike the intern and memo
	// tables above, the symbol tables are append-only and survive
	// ResetCaches — interned ids must stay stable for the lifetime of any
	// bitset or trie edge that embeds them.
	Symbols trace.SymbolStats
}

// Stats returns a snapshot of the interning and operator-memo counters.
// Stripes are locked one at a time, so a snapshot taken while engines run
// is internally consistent per stripe but only approximately so globally —
// fine for the monitoring it serves.
func Stats() CacheStats {
	s := CacheStats{Shards: NumShards, Ops: map[string]OpStats{}}
	for i := range internShards {
		sh := &internShards[i]
		sh.mu.Lock()
		s.InternedNodes += countInternedLocked(sh.tab)
		s.InternHits += sh.hits
		s.InternMisses += sh.misses
		s.Evicted += sh.tab.evicted
		s.Rotations += sh.tab.rotated
		sh.mu.Unlock()
	}
	record := func(name string, hits, misses uint64) {
		s.Ops[name] = OpStats{Hits: hits, Misses: misses}
		s.MemoHits += hits
		s.MemoMisses += misses
	}
	uh, um, _, _ := unionMemo.counters()
	record(unionMemo.name, uh, um)
	uah, uam, _, _ := unionAllMemo.counters()
	record(unionAllMemo.name, uah, uam)
	ih, im, _, _ := intersectMemo.counters()
	record(intersectMemo.name, ih, im)
	hh, hm, _, _ := hideMemo.counters()
	record(hideMemo.name, hh, hm)
	gh, gm, _, _ := ignoreMemo.counters()
	record(ignoreMemo.name, gh, gm)
	ph, pm, _, _ := parallelMemo.counters()
	record(parallelMemo.name, ph, pm)
	pbh, pbm, _, _ := parBoundMemo.counters()
	record(parBoundMemo.name, pbh, pbm)
	th, tm, _, _ := truncMemo.counters()
	record(truncMemo.name, th, tm)
	sh, sm, _, _ := subsetMemo.counters()
	record(subsetMemo.name, sh, sm)
	s.Symbols = trace.SymbolTableStats()
	return s
}

// ResetCaches empties the intern and memo tables and zeroes the counters.
// Existing Sets remain valid (their nodes are immutable); they merely stop
// being canonical, so sets built before and after the reset compare by
// structural walk rather than pointer equality. The symbol tables in
// internal/trace are deliberately NOT reset: event and channel ids are
// embedded in live bitsets and trie edges and must stay stable for the
// process lifetime (see DESIGN.md §3.4). Intended for tests and
// cold-cache benchmarking; resetting while engines run concurrently is
// safe (each stripe is locked for its wipe) but makes the hit counters
// meaningless for that run.
func ResetCaches() {
	for i := range internShards {
		sh := &internShards[i]
		sh.mu.Lock()
		sh.tab.reset()
		sh.hits, sh.misses = 0, 0
		sh.mu.Unlock()
	}
	unionMemo.reset()
	unionAllMemo.reset()
	intersectMemo.reset()
	hideMemo.reset()
	ignoreMemo.reset()
	parallelMemo.reset()
	parBoundMemo.reset()
	truncMemo.reset()
	subsetMemo.reset()
}

// SetCacheBudget adjusts the total entry budgets of the intern table and
// the operator memo tables; each budget is split evenly across the stripes,
// and each stripe retains at most twice its share, so total retention is
// bounded by 2×budget plus rounding slack of at most 2×NumShards entries.
// Values ≤ 0 restore the defaults. Lower budgets trade memo effectiveness
// for a tighter memory ceiling in long-running hosts; the change applies to
// subsequent inserts and does not drop current entries.
func SetCacheBudget(internNodes, memoEntries int) {
	if internNodes <= 0 {
		internNodes = defaultInternBudget
	}
	if memoEntries <= 0 {
		memoEntries = defaultMemoBudget
	}
	per := perShardLimit(internNodes)
	for i := range internShards {
		sh := &internShards[i]
		sh.mu.Lock()
		sh.tab.limit = per
		sh.mu.Unlock()
	}
	unionMemo.setLimit(memoEntries)
	unionAllMemo.setLimit(memoEntries)
	intersectMemo.setLimit(memoEntries)
	hideMemo.setLimit(memoEntries)
	ignoreMemo.setLimit(memoEntries)
	parallelMemo.setLimit(memoEntries)
	parBoundMemo.setLimit(memoEntries)
	truncMemo.setLimit(memoEntries)
	subsetMemo.setLimit(memoEntries)
}
