package closure_test

// Differential tests for the symbol-interned engine: the id-keyed trie
// (edges keyed by trace.EventID, alphabets as channel bitsets, memo keys
// packed into small structs) must produce exactly the trace sets of the
// string-keyed reference implementation in laws_prop_test.go, which
// materialises sets as plain maps keyed by rendered trace strings and
// never touches ids, bitsets, or interning. The allocation guards then pin
// the point of the id layer: warm-path operators allocate no per-event
// strings.

import (
	"math/rand"
	"testing"

	"cspsat/internal/closure"
	"cspsat/internal/trace"
)

// TestPropComposedOpsMatchReference composes operators (the shapes the
// denotational engine builds: hide-of-union, intersect-of-hides, parallel
// over prefixed operands) and compares each composite against the same
// composition of reference operators.
func TestPropComposedOpsMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(424242))
	for i := 0; i < propIters; i++ {
		p := randClosure(r, []string{"a", "w"}, 3, 4)
		q := randClosure(r, []string{"w", "b"}, 3, 4)
		rp, rq := refFrom(p), refFrom(q)
		hide := trace.NewSet("w")

		sameSet(t, "hide(union)",
			closure.Hide(closure.Union(p, q), hide),
			refHide(refUnion(rp, rq), hide))

		sameSet(t, "intersect(hide,hide)",
			closure.Intersect(closure.Hide(p, hide), closure.Hide(q, hide)),
			refIntersect(refHide(rp, hide), refHide(rq, hide)))

		x, y := trace.NewSet("a", "w"), trace.NewSet("w", "b")
		par := closure.Parallel(p, q, x, y)
		maxLen := par.MaxLen()
		sameSet(t, "hide(parallel)",
			closure.Hide(par, hide),
			refHide(refParallel(rp, rq, x, y, maxLen), hide))

		pre := closure.Prefix(ev("a", 1), closure.Union(p, q))
		rpre := refFrom(pre) // Prefix has no composite reference; re-enumerate
		sameSet(t, "truncate(prefix(union))",
			pre.TruncateTo(2),
			refTruncate(rpre, 2))
	}
}

// refTruncate filters the reference set to traces of length ≤ depth.
func refTruncate(a refSet, depth int) refSet {
	out := newRef()
	for _, tr := range a.m {
		if len(tr) <= depth {
			out.add(tr)
		}
	}
	return out
}

// TestPropUnionAllKWay pins the k-way UnionAll merge three ways: it equals
// the reference union of all operands, it returns the very node the
// pairwise Union fold returns (canonical interning makes them pointer-
// identical, which the parallel explorer's stitch relies on), and it is
// insensitive to operand order and duplication.
func TestPropUnionAllKWay(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for i := 0; i < propIters; i++ {
		k := 3 + r.Intn(5)
		sets := make([]*closure.Set, k)
		ref := newRef()
		fold := closure.Stop()
		for j := range sets {
			sets[j] = randClosure(r, []string{"a", "b", "w"}, 3, 3)
			ref = refUnion(ref, refFrom(sets[j]))
			fold = closure.Union(fold, sets[j])
		}
		got := closure.UnionAll(sets...)
		if !got.Same(fold) {
			t.Fatalf("iter %d: UnionAll(%d) and pairwise fold returned different canonical nodes", i, k)
		}
		sameSet(t, "unionAll", got, ref)

		shuffled := make([]*closure.Set, 0, 2*k)
		shuffled = append(shuffled, sets...)
		shuffled = append(shuffled, sets...) // duplicates must be absorbed
		r.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
		if again := closure.UnionAll(shuffled...); !again.Same(got) {
			t.Fatalf("iter %d: UnionAll not order/duplication-insensitive", i)
		}
	}
}

// TestHotPathAllocationGuards pins the tentpole's claim: on warm symbols
// (channel, event, and set identities already interned) the hot operators
// allocate no per-event strings. The bounds are exact allocation budgets —
// Prefix may allocate its one-edge list and the *Set wrapper, memoized
// Union/Hide only the wrapper, membership tests nothing — so any
// reintroduced per-event key materialisation fails the guard.
func TestHotPathAllocationGuards(t *testing.T) {
	a := ev("allocA", 1)
	p := closure.Prefix(ev("allocB", 2), closure.Stop())
	q := closure.Prefix(ev("allocC", 3), closure.Stop())
	hide := trace.NewSet("allocB")
	tr := trace.T{ev("allocB", 2)}
	cid := trace.Chan("allocB").ID()

	// Warm every path (and the symbol tables) before measuring.
	_ = closure.Prefix(a, p)
	_ = closure.Union(p, q)
	_ = closure.Hide(p, hide)
	_ = p.Contains(tr)
	_ = hide.ID()

	guards := []struct {
		name  string
		limit float64
		fn    func()
	}{
		{"Event.ID warm", 0, func() { _ = a.ID() }},
		{"Set.ContainsID", 0, func() { _ = hide.ContainsID(cid) }},
		{"Set.ID warm", 0, func() { _ = hide.ID() }},
		{"Contains warm", 0, func() { _ = p.Contains(tr) }},
		{"Prefix warm", 2, func() { _ = closure.Prefix(a, p) }},
		{"Union memoized", 1, func() { _ = closure.Union(p, q) }},
		{"Hide memoized", 1, func() { _ = closure.Hide(p, hide) }},
	}
	for _, g := range guards {
		if got := testing.AllocsPerRun(200, g.fn); got > g.limit {
			t.Errorf("%s: %.2f allocs/op, want ≤ %.0f", g.name, got, g.limit)
		}
	}
}
