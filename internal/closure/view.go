package closure

import "cspsat/internal/trace"

// View is the read-only traversal surface of a prefix-closed trace set,
// implemented both by the live hash-consed *Set and by frozen arena nodes
// (internal/closure/frozen) that serve the same queries straight off an
// mmap-able flat image without rebuilding anything through the interner.
//
// The contract: a frozen node view and the *Set obtained by thawing it
// answer every View method identically — same sizes, same membership, same
// trace listings in the same order (listings are canonically sorted, and
// truncated listings agree because both traversals visit edges in live
// event-id order). Engines that need to build new sets on top of a view
// call Thaw, the only method that may touch the interner.
type View interface {
	// Size returns the number of traces in the set (the empty trace
	// counts), saturating at MaxInt.
	Size() int
	// MaxLen returns the length of the longest trace in the set.
	MaxLen() int
	// Contains reports whether t is a member. It never interns: an event
	// that was never interned cannot label any edge, live or frozen.
	Contains(t trace.T) bool
	// Traces returns every trace in canonical (lexicographic) order.
	Traces() []trace.T
	// TracesN returns at most limit traces (limit <= 0: unlimited), sorted
	// among themselves, and whether the listing was truncated.
	TracesN(limit int) ([]trace.T, bool)
	// TracesMax returns the maximal traces in canonical order.
	TracesMax() []trace.T
	// TracesMaxN is TracesN restricted to maximal traces.
	TracesMaxN(limit int) ([]trace.T, bool)
	// WalkDFS traverses the set depth-first; see Set.WalkDFS for the
	// callback contract.
	WalkDFS(visit func(path trace.T) bool, push, pop func(ev trace.Event)) bool
	// Thaw returns the canonical interned *Set holding the same traces —
	// the write-side escape hatch. A *Set thaws to itself; a frozen view
	// rebuilds bottom-up through the interner (once per arena, cached), so
	// thawed sets are pointer-canonical (Same) with freshly computed ones.
	Thaw() *Set
}

// Thaw returns p itself: a live set is already interned. It completes the
// View contract on *Set.
func (p *Set) Thaw() *Set { return p }

var _ View = (*Set)(nil)
