package closure_test

// Property-based tests for the §3 algebraic laws, run against randomized
// processes. Operands are random finite prefix closures — exactly the
// denotations of random finite processes over a small alphabet — and every
// law is checked two ways: on the interned (hash-consed) implementation
// itself, and by comparing each interned operator against an independent
// reference implementation that materialises trace sets as plain maps and
// never touches the interning machinery. A divergence between the two
// implementations is thus caught even if both sides of an algebraic law
// are wrong in the same way.

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"cspsat/internal/closure"
	"cspsat/internal/trace"
)

// propIters is the number of random processes each law is checked on.
const propIters = 250

// --- reference implementation: trace sets as maps, no interning ---

// refSet is a prefix-closed trace set materialised as a map from trace key
// to trace. It is the executable form of the paper's definition, kept
// deliberately naive.
type refSet struct{ m map[string]trace.T }

func newRef() refSet { return refSet{m: map[string]trace.T{}} }

// add inserts t and every prefix of t.
func (r refSet) add(t trace.T) {
	for _, p := range t.Prefixes() {
		cp := make(trace.T, len(p))
		copy(cp, p)
		r.m[cp.Key()] = cp
	}
}

func refFrom(s *closure.Set) refSet {
	r := newRef()
	for _, t := range s.Traces() {
		r.add(t)
	}
	return r
}

func refUnion(a, b refSet) refSet {
	out := newRef()
	for k, t := range a.m {
		out.m[k] = t
	}
	for k, t := range b.m {
		out.m[k] = t
	}
	return out
}

func refIntersect(a, b refSet) refSet {
	out := newRef()
	for k, t := range a.m {
		if _, ok := b.m[k]; ok {
			out.m[k] = t
		}
	}
	return out
}

func refHide(a refSet, c trace.Set) refSet {
	out := newRef()
	for _, t := range a.m {
		out.add(t.Hide(c))
	}
	return out
}

// refIgnore enumerates every trace over P's events plus the chatter events,
// up to maxLen, and keeps those whose chatter-free projection is in P.
func refIgnore(a refSet, chatter []trace.Event, maxLen int) refSet {
	chatterChans := trace.NewSet()
	for _, e := range chatter {
		chatterChans.Add(e.Chan)
	}
	universe := append(refEvents(a), chatter...)
	out := newRef()
	var walk func(t trace.T)
	walk = func(t trace.T) {
		if _, ok := a.m[t.Hide(chatterChans).Key()]; ok {
			out.add(t)
		}
		if len(t) >= maxLen {
			return
		}
		for _, e := range universe {
			walk(t.Append(e))
		}
	}
	walk(nil)
	return out
}

// refParallel is the paper's definition verbatim: the traces s over X ∪ Y
// with s↾X ∈ P and s↾Y ∈ Q, enumerated over the events of both operands.
func refParallel(a, b refSet, x, y trace.Set, maxLen int) refSet {
	universe := append(refEvents(a), refEvents(b)...)
	out := newRef()
	var walk func(t trace.T)
	walk = func(t trace.T) {
		_, inA := a.m[t.ProjectOnto(x).Key()]
		_, inB := b.m[t.ProjectOnto(y).Key()]
		if inA && inB {
			out.add(t)
		}
		if len(t) >= maxLen {
			return
		}
		for _, e := range universe {
			walk(t.Append(e))
		}
	}
	walk(nil)
	return out
}

func refEvents(a refSet) []trace.Event {
	seen := map[string]trace.Event{}
	for _, t := range a.m {
		for _, e := range t {
			seen[string(e.Chan)+"\x00"+e.Msg.Key()] = e
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]trace.Event, len(keys))
	for i, k := range keys {
		out[i] = seen[k]
	}
	return out
}

func (r refSet) keys() string {
	ks := make([]string, 0, len(r.m))
	for k := range r.m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return strings.Join(ks, "\n")
}

func internedKeys(s *closure.Set) string {
	ks := make([]string, 0, s.Size())
	for _, t := range s.Traces() {
		ks = append(ks, t.Key())
	}
	sort.Strings(ks)
	return strings.Join(ks, "\n")
}

// sameSet fails the test if the interned set and the reference set differ.
func sameSet(t *testing.T, label string, got *closure.Set, want refSet) {
	t.Helper()
	if internedKeys(got) != want.keys() {
		t.Fatalf("%s: interned result differs from reference\ninterned: %v\nreference: %v",
			label, got, want.keys())
	}
}

// randClosure builds a random prefix closure over the given channels with
// traces of length ≤ maxLen — the denotation of a random finite process.
func randClosure(r *rand.Rand, chans []string, maxLen, maxTraces int) *closure.Set {
	b := closure.NewBuilder()
	for i, n := 0, r.Intn(maxTraces+1); i < n; i++ {
		t := make(trace.T, r.Intn(maxLen+1))
		for j := range t {
			t[j] = ev(chans[r.Intn(len(chans))], int64(r.Intn(2)))
		}
		b.Add(t)
	}
	return b.Set()
}

// TestPropClosureInvariance: every operator's result is prefix-closed
// (§3.1 — prefix closures are closed under each semantic operation).
func TestPropClosureInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	chatter := []trace.Event{ev("k", 0), ev("k", 1)}
	for i := 0; i < propIters; i++ {
		p := randClosure(r, []string{"a", "w"}, 3, 4)
		q := randClosure(r, []string{"w", "b"}, 3, 4)
		hide := trace.NewSet("w")
		for label, s := range map[string]*closure.Set{
			"prefix":    closure.Prefix(ev("a", 1), p),
			"union":     closure.Union(p, q),
			"intersect": closure.Intersect(p, q),
			"hide":      closure.Hide(p, hide),
			"ignore":    closure.Ignore(p, chatter, 4),
			"parallel":  closure.Parallel(p, q, trace.NewSet("a", "w"), trace.NewSet("w", "b")),
			"truncate":  closure.Union(p, q).TruncateTo(2),
		} {
			if !isPrefixClosed(s) {
				t.Fatalf("iter %d: %s result not prefix-closed: %v", i, label, s)
			}
		}
	}
}

// TestPropUnionLaws: commutativity, associativity, idempotence of ∪, its
// unit {<>}, and agreement with the reference implementation.
func TestPropUnionLaws(t *testing.T) {
	r := rand.New(rand.NewSource(102))
	for i := 0; i < propIters; i++ {
		p := randClosure(r, []string{"a", "b", "w"}, 3, 4)
		q := randClosure(r, []string{"a", "b", "w"}, 3, 4)
		s := randClosure(r, []string{"a", "b", "w"}, 3, 4)
		if !closure.Union(p, q).Equal(closure.Union(q, p)) {
			t.Fatalf("iter %d: union not commutative", i)
		}
		if !closure.Union(closure.Union(p, q), s).Equal(closure.Union(p, closure.Union(q, s))) {
			t.Fatalf("iter %d: union not associative", i)
		}
		if !closure.Union(p, p).Same(p) {
			t.Fatalf("iter %d: union not idempotent (or not canonical)", i)
		}
		if !closure.Union(p, closure.Stop()).Same(p) {
			t.Fatalf("iter %d: {<>} not the unit of union", i)
		}
		sameSet(t, "union vs reference", closure.Union(p, q), refUnion(refFrom(p), refFrom(q)))
	}
}

// TestPropIntersectLaws: ∩ laws and reference agreement, plus the size
// identity |P∪Q| + |P∩Q| = |P| + |Q| tying the cached sizes together.
func TestPropIntersectLaws(t *testing.T) {
	r := rand.New(rand.NewSource(103))
	for i := 0; i < propIters; i++ {
		p := randClosure(r, []string{"a", "b", "w"}, 3, 4)
		q := randClosure(r, []string{"a", "b", "w"}, 3, 4)
		if !closure.Intersect(p, q).Equal(closure.Intersect(q, p)) {
			t.Fatalf("iter %d: intersect not commutative", i)
		}
		if !closure.Intersect(p, p).Same(p) {
			t.Fatalf("iter %d: intersect not idempotent (or not canonical)", i)
		}
		if got := closure.Union(p, q).Size() + closure.Intersect(p, q).Size(); got != p.Size()+q.Size() {
			t.Fatalf("iter %d: |P∪Q|+|P∩Q| = %d, want %d", i, got, p.Size()+q.Size())
		}
		sameSet(t, "intersect vs reference", closure.Intersect(p, q), refIntersect(refFrom(p), refFrom(q)))
	}
}

// TestPropHideLaws: Hide(Hide(P,C),D) = Hide(P,C∪D), hiding nothing is the
// identity, and reference agreement.
func TestPropHideLaws(t *testing.T) {
	r := rand.New(rand.NewSource(104))
	for i := 0; i < propIters; i++ {
		p := randClosure(r, []string{"a", "b", "w"}, 4, 5)
		c := trace.NewSet("w")
		d := trace.NewSet("b")
		lhs := closure.Hide(closure.Hide(p, c), d)
		rhs := closure.Hide(p, c.Union(d))
		if !lhs.Equal(rhs) {
			t.Fatalf("iter %d: Hide(Hide(P,C),D) = %v ≠ Hide(P,C∪D) = %v", i, lhs, rhs)
		}
		if !closure.Hide(p, trace.NewSet()).Same(p) {
			t.Fatalf("iter %d: hiding ∅ not the identity (or not canonical)", i)
		}
		sameSet(t, "hide vs reference", closure.Hide(p, c), refHide(refFrom(p), c))
	}
}

// TestPropIgnoreVsReference: the interned ⇑ agrees with the naive
// enumerate-and-filter reading of the paper's definition.
func TestPropIgnoreVsReference(t *testing.T) {
	r := rand.New(rand.NewSource(105))
	chatter := []trace.Event{ev("k", 0), ev("k", 1)}
	for i := 0; i < propIters; i++ {
		p := randClosure(r, []string{"a", "w"}, 2, 3)
		const budget = 3
		sameSet(t, "ignore vs reference", closure.Ignore(p, chatter, budget),
			refIgnore(refFrom(p), chatter, budget))
	}
}

// TestPropParallelDefinition checks the paper's defining identity
// P X‖Y Q = (P ⇑ (Y−X)) ∩ (Q ⇑ (X−Y)) on random operands, and the product
// walk against the reference projection semantics.
func TestPropParallelDefinition(t *testing.T) {
	r := rand.New(rand.NewSource(106))
	x := trace.NewSet("a", "w")
	y := trace.NewSet("w", "b")
	// Chatter alphabets: every event the other side can perform on its
	// private channels (values are drawn from {0,1} by randClosure).
	chatterYmX := []trace.Event{ev("b", 0), ev("b", 1)}
	chatterXmY := []trace.Event{ev("a", 0), ev("a", 1)}
	for i := 0; i < propIters; i++ {
		p := randClosure(r, []string{"a", "w"}, 2, 3)
		q := randClosure(r, []string{"w", "b"}, 2, 3)
		par := closure.Parallel(p, q, x, y)
		budget := p.MaxLen() + q.MaxLen()
		viaIgnore := closure.Intersect(
			closure.Ignore(p, chatterYmX, budget),
			closure.Ignore(q, chatterXmY, budget),
		)
		if !par.Equal(viaIgnore) {
			t.Fatalf("iter %d: product walk %v ≠ (P⇑(Y−X)) ∩ (Q⇑(X−Y)) %v\n p-only: %v\n q-only: %v",
				i, par, viaIgnore, par.FirstNotIn(viaIgnore), viaIgnore.FirstNotIn(par))
		}
		sameSet(t, "parallel vs reference", par,
			refParallel(refFrom(p), refFrom(q), x, y, budget))
	}
}

// TestPropParallelToIsTruncatedParallel pins the budget-bounded product to
// its definition: for every budget — binding, exactly sufficient, and slack
// — ParallelTo must return the very same canonical node as the unbounded
// product followed by truncation.
func TestPropParallelToIsTruncatedParallel(t *testing.T) {
	r := rand.New(rand.NewSource(107))
	x := trace.NewSet("a", "w")
	y := trace.NewSet("w", "b")
	for i := 0; i < propIters; i++ {
		p := randClosure(r, []string{"a", "w"}, 2, 3)
		q := randClosure(r, []string{"w", "b"}, 2, 3)
		full := closure.Parallel(p, q, x, y)
		for budget := 0; budget <= p.MaxLen()+q.MaxLen()+1; budget++ {
			bounded := closure.ParallelTo(p, q, x, y, budget)
			want := full.TruncateTo(budget)
			if !bounded.Same(want) {
				t.Fatalf("iter %d budget %d: ParallelTo %v not canonical with truncated product %v (Equal=%v)",
					i, budget, bounded, want, bounded.Equal(want))
			}
		}
	}
}

// TestPropSubsetEqualConsistency ties SubsetOf, Equal, Same, FirstNotIn and
// the monotonicity of union together on random operands.
func TestPropSubsetEqualConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(107))
	for i := 0; i < propIters; i++ {
		p := randClosure(r, []string{"a", "b", "w"}, 3, 4)
		q := randClosure(r, []string{"a", "b", "w"}, 3, 4)
		u := closure.Union(p, q)
		if !p.SubsetOf(u) || !q.SubsetOf(u) {
			t.Fatalf("iter %d: operands not subsets of their union", i)
		}
		if w := p.FirstNotIn(u); w != nil {
			t.Fatalf("iter %d: FirstNotIn found %v despite P ⊆ P∪Q", i, w)
		}
		if p.SubsetOf(q) != closure.Union(p, q).Equal(q) {
			t.Fatalf("iter %d: SubsetOf disagrees with P∪Q = Q", i)
		}
		if (p.SubsetOf(q) && q.SubsetOf(p)) != p.Equal(q) {
			t.Fatalf("iter %d: mutual subset disagrees with Equal", i)
		}
		if p.Equal(q) && !p.Same(q) {
			t.Fatalf("iter %d: equal sets built in one session should be canonical (Same)", i)
		}
	}
}

// TestPropInterningCanonical: structurally equal sets built through
// different operator paths share one canonical root, and an interned
// rebuild after ResetCaches still compares Equal (structural fallback).
func TestPropInterningCanonical(t *testing.T) {
	r := rand.New(rand.NewSource(108))
	for i := 0; i < 50; i++ {
		p := randClosure(r, []string{"a", "b"}, 3, 4)
		q := randClosure(r, []string{"a", "b"}, 3, 4)
		viaOps := closure.Union(p, q)
		viaBuilder := closure.FromTraces(append(p.Traces(), q.Traces()...))
		if !viaOps.Same(viaBuilder) {
			t.Fatalf("iter %d: same set via ops and via builder is not pointer-canonical", i)
		}
	}
	p := closure.FromTraces([]trace.T{{ev("a", 0), ev("b", 1)}})
	closure.ResetCaches()
	rebuilt := closure.FromTraces([]trace.T{{ev("a", 0), ev("b", 1)}})
	if p.Same(rebuilt) {
		t.Fatal("a reset must mint fresh canonical nodes")
	}
	if !p.Equal(rebuilt) || !p.SubsetOf(rebuilt) || !rebuilt.SubsetOf(p) {
		t.Fatal("structural Equal/SubsetOf must survive a cache reset")
	}

	// Sets that straddle an eviction (not just a reset) must also compare
	// structurally: shrink the budgets so rebuilding evicts p's nodes.
	closure.SetCacheBudget(8, 8)
	defer closure.SetCacheBudget(0, 0)
	var churn []*closure.Set
	for i := 0; i < 64; i++ {
		churn = append(churn, closure.FromTraces([]trace.T{{ev("a", int64(i%2)), ev("b", int64(i))}}))
	}
	_ = churn
	again := closure.FromTraces([]trace.T{{ev("a", 0), ev("b", 1)}})
	if !p.Equal(again) {
		t.Fatal("Equal must hold across evictions")
	}
	if closure.Stats().Rotations == 0 {
		t.Fatal("expected the shrunken intern table to rotate")
	}
}
