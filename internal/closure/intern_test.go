package closure_test

// Tests for the hash-consing machinery itself: canonical-node sharing,
// operator memo hits, the Stats counters, and the bounded two-generation
// eviction policy. The algebraic behaviour of the operators is covered by
// closure_test.go and laws_prop_test.go; this file pins down the cache
// contract those tests rely on.

import (
	"fmt"
	"testing"

	"cspsat/internal/closure"
	"cspsat/internal/trace"
)

// TestInternSharing: structurally equal sets built independently share one
// canonical root, so Equal degenerates to a pointer comparison.
func TestInternSharing(t *testing.T) {
	mk := func() *closure.Set {
		return closure.FromTraces([]trace.T{
			{ev("a", 1), ev("b", 2)},
			{ev("a", 1), ev("c", 3)},
			{ev("b", 2)},
		})
	}
	p, q := mk(), mk()
	if !p.Same(q) {
		t.Fatal("independently built equal sets must share a canonical root")
	}
	// Shared subtrees too: the suffix {<>, <b.2>} under a.1 and at the top
	// level is one node, which Channels() must visit only once (covered
	// implicitly — this just pins the observable sharing effects).
	if !closure.Union(p, q).Same(p) {
		t.Fatal("union of a set with itself must return the canonical node")
	}
}

// TestOperatorMemoHits: repeating an operator call on the same interned
// operands is answered from the memo table.
func TestOperatorMemoHits(t *testing.T) {
	closure.ResetCaches()
	p := closure.FromTraces([]trace.T{{ev("a", 1), ev("w", 2), ev("b", 3)}})
	q := closure.FromTraces([]trace.T{{ev("w", 2), ev("b", 3)}})
	x := trace.NewSet("a", "w", "b")
	y := trace.NewSet("w", "b")

	run := func() {
		closure.Union(p, q)
		closure.Union(q, p) // symmetric key: must hit the same entry
		closure.Intersect(p, q)
		closure.Hide(p, trace.NewSet("w"))
		closure.Ignore(q, []trace.Event{ev("a", 1)}, 4)
		closure.Parallel(p, q, x, y)
	}
	run()
	before := closure.Stats()
	run()
	after := closure.Stats()

	for op, b := range before.Ops {
		a := after.Ops[op]
		if a.Misses != b.Misses {
			t.Errorf("%s: repeat run recomputed (%d → %d misses)", op, b.Misses, a.Misses)
		}
	}
	if after.MemoHits <= before.MemoHits {
		t.Errorf("repeat run produced no memo hits (%d → %d)", before.MemoHits, after.MemoHits)
	}
	if hits := after.Ops["union"].Hits; hits < 2 {
		t.Errorf("union memo hits = %d, want ≥ 2 (symmetric key must unify P∪Q and Q∪P)", hits)
	}
}

// TestStatsCounters: InternedNodes tracks table contents and ResetCaches
// zeroes everything.
func TestStatsCounters(t *testing.T) {
	closure.ResetCaches()
	if s := closure.Stats(); s.InternedNodes != 0 || s.MemoHits != 0 || s.MemoMisses != 0 {
		t.Fatalf("stats not zero after reset: %+v", s)
	}
	_ = closure.FromTraces([]trace.T{{ev("a", 1)}, {ev("b", 2), ev("c", 3)}})
	s := closure.Stats()
	// Nodes: empty is pre-interned and not table-resident; expect the three
	// distinct non-trivial nodes of the trie (root, <b>-subtree, <b c>-leaf
	// shares empty... exact count depends on sharing), so just require > 0
	// and that a rebuild adds nothing.
	if s.InternedNodes == 0 {
		t.Fatal("building a set interned no nodes")
	}
	_ = closure.FromTraces([]trace.T{{ev("a", 1)}, {ev("b", 2), ev("c", 3)}})
	if s2 := closure.Stats(); s2.InternedNodes != s.InternedNodes {
		t.Fatalf("rebuilding an existing set changed node count: %d → %d", s.InternedNodes, s2.InternedNodes)
	} else if s2.InternHits <= s.InternHits {
		t.Fatalf("rebuilding an existing set produced no intern hits")
	}
}

// TestBoundedEviction: with a tiny budget the table rotates and sheds old
// entries instead of growing without bound, and semantic operations remain
// correct on sets whose nodes straddle evictions.
func TestBoundedEviction(t *testing.T) {
	closure.ResetCaches()
	closure.SetCacheBudget(16, 16)
	defer closure.SetCacheBudget(0, 0)

	keep := closure.FromTraces([]trace.T{{ev("a", 1), ev("b", 2)}})
	var last *closure.Set
	for i := 0; i < 500; i++ {
		last = closure.FromTraces([]trace.T{{ev("x", int64(i)), ev("y", int64(i+1))}})
	}
	s := closure.Stats()
	if s.Rotations == 0 || s.Evicted == 0 {
		t.Fatalf("500 distinct sets under a 16-node budget must rotate and evict: %+v", s)
	}
	if s.InternedNodes > 3*16 {
		t.Fatalf("interned nodes = %d, exceeds the 2×limit retention bound (plus slack)", s.InternedNodes)
	}

	// keep's nodes were almost certainly evicted; the semantics must not
	// notice. A rebuilt twin compares Equal (structural fallback) and all
	// operators still work.
	twin := closure.FromTraces([]trace.T{{ev("a", 1), ev("b", 2)}})
	if !keep.Equal(twin) || !keep.SubsetOf(twin) || !twin.SubsetOf(keep) {
		t.Fatal("Equal/SubsetOf must survive eviction of canonical nodes")
	}
	u := closure.Union(keep, last)
	if u.Size() != keep.Size()+last.Size()-1 {
		t.Fatalf("union across evicted operands has size %d, want %d", u.Size(), keep.Size()+last.Size()-1)
	}
}

// TestResetCachesIsolation: a reset invalidates canonical identity (Same)
// but never semantic identity (Equal); fresh results are again canonical.
func TestResetCachesIsolation(t *testing.T) {
	p := closure.FromTraces([]trace.T{{ev("a", 1)}})
	closure.ResetCaches()
	q := closure.FromTraces([]trace.T{{ev("a", 1)}})
	if p.Same(q) {
		t.Fatal("reset must mint fresh canonical nodes")
	}
	if !p.Equal(q) {
		t.Fatal("reset must not affect structural equality")
	}
	if !closure.FromTraces([]trace.T{{ev("a", 1)}}).Same(q) {
		t.Fatal("post-reset builds must be canonical among themselves")
	}
}

// TestConcurrentOperators exercises the package mutex: many goroutines
// interleave builds and operators on overlapping operands. Run under
// -race this is the aliasing/locking regression test for the cache layer.
func TestConcurrentOperators(t *testing.T) {
	closure.ResetCaches()
	base := closure.FromTraces([]trace.T{{ev("a", 1), ev("w", 2)}, {ev("w", 2), ev("b", 3)}})
	done := make(chan error)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 200; i++ {
				p := closure.FromTraces([]trace.T{{ev("a", int64(g)), ev("b", int64(i%5))}})
				u := closure.Union(p, base)
				if !p.SubsetOf(u) || !base.SubsetOf(u) {
					done <- fmt.Errorf("goroutine %d iter %d: union lost an operand", g, i)
					return
				}
				closure.Hide(u, trace.NewSet("w"))
				closure.Intersect(u, base)
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
