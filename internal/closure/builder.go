package closure

import "cspsat/internal/trace"

// Builder accumulates traces into a prefix-closed set. Adding a trace
// implicitly adds all its prefixes (they are the nodes along its path), so
// the result is a prefix closure regardless of insertion order.
type Builder struct {
	root *node
}

// NewBuilder returns an empty builder (its Set is {<>}).
func NewBuilder() *Builder { return &Builder{root: newNode()} }

// Add inserts t (and, implicitly, every prefix of t).
func (b *Builder) Add(t trace.T) {
	n := b.root
	for _, e := range t {
		k := eventKey(e)
		ed, ok := n.children[k]
		if !ok {
			ed = edge{ev: e, child: newNode()}
			n.children[k] = ed
		}
		n = ed.child
	}
}

// Set returns the built set. The builder must not be used afterwards.
func (b *Builder) Set() *Set {
	s := &Set{root: b.root}
	b.root = nil
	return s
}

// FromTraces builds a prefix closure containing the given traces and all
// their prefixes.
func FromTraces(ts []trace.T) *Set {
	b := NewBuilder()
	for _, t := range ts {
		b.Add(t)
	}
	return b.Set()
}
