package closure

import (
	"cmp"
	"slices"

	"cspsat/internal/trace"
)

// Builder accumulates traces into a prefix-closed set. Adding a trace
// implicitly adds all its prefixes (they are the nodes along its path), so
// the result is a prefix closure regardless of insertion order. The builder
// works on a private mutable scratch trie; Set interns it bottom-up into
// the canonical hash-consed representation.
type Builder struct {
	root *bnode
}

// bnode is the mutable construction-time counterpart of the interned node.
type bnode struct {
	children map[trace.EventID]bedge
}

type bedge struct {
	ev    trace.Event
	child *bnode
}

func newBnode() *bnode { return &bnode{children: map[trace.EventID]bedge{}} }

// NewBuilder returns an empty builder (its Set is {<>}).
func NewBuilder() *Builder { return &Builder{root: newBnode()} }

// Add inserts t (and, implicitly, every prefix of t).
func (b *Builder) Add(t trace.T) {
	n := b.root
	for _, e := range t {
		id := e.ID()
		ed, ok := n.children[id]
		if !ok {
			ed = bedge{ev: e, child: newBnode()}
			n.children[id] = ed
		}
		n = ed.child
	}
}

// Set returns the built set. The builder must not be used afterwards.
func (b *Builder) Set() *Set {
	s := internScratch(b.root).wrap()
	b.root = nil
	return s
}

func internScratch(n *bnode) *node {
	edges := make([]edge, 0, len(n.children))
	for id, e := range n.children {
		edges = append(edges, edge{id: id, ev: e.ev, child: internScratch(e.child)})
	}
	slices.SortFunc(edges, func(a, b edge) int { return cmp.Compare(a.id, b.id) })
	return intern(edges)
}

// FromTraces builds a prefix closure containing the given traces and all
// their prefixes.
func FromTraces(ts []trace.T) *Set {
	b := NewBuilder()
	for _, t := range ts {
		b.Add(t)
	}
	return b.Set()
}
