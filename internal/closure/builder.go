package closure

import (
	"sort"

	"cspsat/internal/trace"
)

// Builder accumulates traces into a prefix-closed set. Adding a trace
// implicitly adds all its prefixes (they are the nodes along its path), so
// the result is a prefix closure regardless of insertion order. The builder
// works on a private mutable scratch trie; Set interns it bottom-up into
// the canonical hash-consed representation.
type Builder struct {
	root *bnode
}

// bnode is the mutable construction-time counterpart of the interned node.
type bnode struct {
	children map[string]bedge
}

type bedge struct {
	ev    trace.Event
	child *bnode
}

func newBnode() *bnode { return &bnode{children: map[string]bedge{}} }

// NewBuilder returns an empty builder (its Set is {<>}).
func NewBuilder() *Builder { return &Builder{root: newBnode()} }

// Add inserts t (and, implicitly, every prefix of t).
func (b *Builder) Add(t trace.T) {
	n := b.root
	for _, e := range t {
		k := eventKey(e)
		ed, ok := n.children[k]
		if !ok {
			ed = bedge{ev: e, child: newBnode()}
			n.children[k] = ed
		}
		n = ed.child
	}
}

// Set returns the built set. The builder must not be used afterwards.
func (b *Builder) Set() *Set {
	s := &Set{root: internScratch(b.root)}
	b.root = nil
	return s
}

func internScratch(n *bnode) *node {
	edges := make([]edge, 0, len(n.children))
	for k, e := range n.children {
		edges = append(edges, edge{key: k, ev: e.ev, child: internScratch(e.child)})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].key < edges[j].key })
	return intern(edges)
}

// FromTraces builds a prefix closure containing the given traces and all
// their prefixes.
func FromTraces(ts []trace.T) *Set {
	b := NewBuilder()
	for _, t := range ts {
		b.Add(t)
	}
	return b.Set()
}
